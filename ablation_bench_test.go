package repro

// Ablation benchmarks for the design choices called out in EXPERIMENTS.md and
// the future-work extensions: replication versus plain interval mappings,
// general mappings versus interval mappings, the heuristic's components
// (greedy construction alone, annealing budgets), and the candidate-set
// binary search versus a linear scan.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algo/heur"
	"repro/internal/algo/interval"
	"repro/internal/general"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/repl"
	"repro/internal/workload"
)

// BenchmarkAblationReplication compares the plain Theorem 3 DP against the
// replicated-interval DP on a bottleneck-heavy fully homogeneous instance,
// reporting the achieved periods as custom metrics.
func BenchmarkAblationReplication(b *testing.B) {
	inst := pipeline.Instance{
		Apps: []pipeline.Application{{
			Stages: []pipeline.Stage{{Work: 2, Out: 1}, {Work: 18, Out: 1}, {Work: 2, Out: 1}},
			In:     1, Weight: 1,
		}},
		Platform: pipeline.NewHomogeneousPlatform(6, []float64{2}, 4, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	b.Run("plain-interval", func(b *testing.B) {
		var period float64
		for i := 0; i < b.N; i++ {
			_, t, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap)
			if err != nil {
				b.Fatal(err)
			}
			period = t
		}
		b.ReportMetric(period, "period")
	})
	b.Run("replicated", func(b *testing.B) {
		var period float64
		for i := 0; i < b.N; i++ {
			_, t, err := repl.MinPeriodFullyHom(&inst, pipeline.Overlap)
			if err != nil {
				b.Fatal(err)
			}
			period = t
		}
		b.ReportMetric(period, "period")
	})
}

// BenchmarkAblationGeneralVsInterval compares the optimal general mapping
// (processor sharing allowed) against the optimal interval mapping on a
// communication-free instance — quantifying what the paper's interval
// restriction costs.
func BenchmarkAblationGeneralVsInterval(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	inst := workload.MustInstance(rng, workload.Config{
		Apps: 2, MinStages: 3, MaxStages: 4, Procs: 3, Modes: 1,
		Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 0, MaxSpeed: 4,
	})
	b.Run("interval-dp", func(b *testing.B) {
		var period float64
		for i := 0; i < b.N; i++ {
			_, t, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap)
			if err != nil {
				b.Fatal(err)
			}
			period = t
		}
		b.ReportMetric(period, "period")
	})
	b.Run("general-exact", func(b *testing.B) {
		var period float64
		for i := 0; i < b.N; i++ {
			_, t, err := general.ExactMinPeriod(&inst, 100_000_000)
			if err != nil {
				b.Fatal(err)
			}
			period = t
		}
		b.ReportMetric(period, "period")
	})
	b.Run("general-lpt", func(b *testing.B) {
		var period float64
		for i := 0; i < b.N; i++ {
			_, t, err := general.LPT(&inst)
			if err != nil {
				b.Fatal(err)
			}
			period = t
		}
		b.ReportMetric(period, "period")
	})
}

// BenchmarkAblationHeuristicBudget sweeps the annealing budget on a het
// platform, reporting achieved period per budget: the quality/time
// trade-off of the future-work heuristic.
func BenchmarkAblationHeuristicBudget(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	inst := workload.MustInstance(rng, workload.Config{
		Apps: 3, MinStages: 3, MaxStages: 6, Procs: 12, Modes: 3,
		Class: pipeline.FullyHeterogeneous, MaxWork: 12, MaxData: 6, MaxSpeed: 9, MaxBandwidth: 4,
	})
	for _, iters := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			var period float64
			for i := 0; i < b.N; i++ {
				r := rand.New(rand.NewSource(1))
				_, t, err := heur.MinPeriod(r, &inst, mapping.Interval, pipeline.Overlap,
					heur.Options{Iters: iters, Restarts: 2})
				if err != nil {
					b.Fatal(err)
				}
				period = t
			}
			b.ReportMetric(period, "period")
		})
	}
}

// BenchmarkAblationReplicatedSimulator measures the round-robin executor
// against the plain one on the same (lifted) mapping: the cost of
// replication support in the substrate.
func BenchmarkAblationReplicatedSimulator(b *testing.B) {
	rng := rand.New(rand.NewSource(79))
	inst := workload.StreamingCenter(10)
	m, err := workload.RandomMapping(rng, &inst)
	if err != nil {
		b.Fatal(err)
	}
	rm := repl.Lift(&m)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Simulate(&inst, &m, Overlap, SimOptions{Datasets: 1000}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replicated-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SimulateReplicated(&inst, &rm, Overlap, SimOptions{Datasets: 1000}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
