GO ?= go

.PHONY: all build test check fmt vet race bench experiments serve clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is what CI runs: formatting, static analysis, full test suite.
check: fmt vet test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# race runs the race detector over the concurrent packages: the batch
# engine and its consumers (pareto sweeps, the experiment table drivers,
# the HTTP server, the public SolveBatch API).
race:
	$(GO) test -race ./internal/batch/ ./internal/pareto/ ./internal/experiments/ ./internal/server/ .

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# experiments regenerates the paper-versus-measured record (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/pipebench

# serve runs the solver HTTP service locally (see cmd/pipeserved -h).
serve:
	$(GO) run ./cmd/pipeserved

clean:
	$(GO) clean ./...
