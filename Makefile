GO ?= go

.PHONY: all build test check fmt vet race bench bench-corpus diff fuzz-smoke experiments serve clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is what CI runs: formatting, static analysis, full test suite.
check: fmt vet test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# race runs the race detector over the concurrent packages: the compiled
# plan layer, the batch engine and its consumers (pareto sweeps, the
# experiment table drivers, the HTTP server, the public SolveBatch API).
race:
	$(GO) test -race ./internal/plan/ ./internal/batch/ ./internal/pareto/ ./internal/experiments/ ./internal/server/ ./internal/diffcheck/ .

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-corpus regenerates the committed solver baseline BENCH_solver.json
# (per-variant one-shot and plan-reuse ns/op + allocs + cache hit rate over
# the seeded corpus; 100 iterations keep the plan-speedup ratios stable).
bench-corpus:
	$(GO) test -bench=Corpus -benchtime=100x -run=^$$ .

# diff runs the differential verification corpus (dispatcher vs brute
# force vs simulator; see EXPERIMENTS.md section DIFF).
diff:
	$(GO) run ./cmd/pipebench -exp diff -instances 1080

# fuzz-smoke runs each jobspec fuzz target briefly, as CI does.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=^FuzzFileRoundTrip$$ -fuzztime=30s ./internal/jobspec/
	$(GO) test -run=^$$ -fuzz=^FuzzFloatJSON$$ -fuzztime=30s ./internal/jobspec/

# experiments regenerates the paper-versus-measured record (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/pipebench

# serve runs the solver HTTP service locally (see cmd/pipeserved -h).
serve:
	$(GO) run ./cmd/pipeserved

clean:
	$(GO) clean ./...
