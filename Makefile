GO ?= go

.PHONY: all build test check fmt vet lint vuln race bench bench-corpus bench-diff diff chaos load fuzz-smoke experiments serve gateway clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is what CI runs: build, formatting, static analysis (go vet + the
# pipelint invariant suite), full test suite.
check: build fmt lint test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs go vet plus the repo-specific pipelint analyzer suite
# (internal/lint): memoalias, ctxflow, errclass, floatcmp, determinism.
# See internal/lint's package docs for the invariant each one guards and
# how to suppress a finding with a justification.
lint: vet
	$(GO) run ./cmd/pipelint ./...

# vuln scans dependencies for known vulnerabilities. govulncheck lives in
# golang.org/x/vuln, which this dependency-free module cannot pin via a
# go.mod tool directive without breaking offline builds, so the tool is
# expected on PATH (CI installs a pinned version; see the lint job).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it pinned)"; \
	fi

# race runs the race detector over the concurrent packages — the compiled
# plan layer, the batch engine and its consumers (pareto sweeps, the
# experiment table drivers, the HTTP server, the gateway fan-out, the
# public SolveBatch API) — plus the solver core, the scenario generator,
# and the chaos injector, whose package tests exercise them from
# concurrent batch workers.
race:
	$(GO) test -race ./internal/core/ ./internal/gen/ ./internal/plan/ ./internal/batch/ ./internal/pareto/ ./internal/experiments/ ./internal/server/ ./internal/gateway/ ./internal/diffcheck/ ./internal/chaos/ .

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-corpus regenerates the committed solver baseline BENCH_solver.json
# (per-variant one-shot and plan-reuse ns/op + allocs + cache hit rate over
# the seeded corpus; 100 iterations keep the plan-speedup ratios stable).
bench-corpus:
	$(GO) test -bench=Corpus -benchtime=100x -run=^$$ .

# bench-diff is the performance regression gate: it times a fresh run of
# the corpus variants (same seeded workload as bench-corpus) and fails if
# any variant's ns/op exceeds 2x its committed BENCH_solver.json value.
# CI runs it before regenerating the baseline artifact.
bench-diff:
	$(GO) run ./cmd/pipebench -exp benchdiff

# diff runs the differential verification corpus (dispatcher vs brute
# force vs simulator; see EXPERIMENTS.md section DIFF).
diff:
	$(GO) run ./cmd/pipebench -exp diff -instances 1080

# chaos runs the fault-tolerance experiment (seeded fault chains, re-solve
# latency, degraded rate, shed burst; see EXPERIMENTS.md section CHAOS).
chaos:
	$(GO) run ./cmd/pipebench -exp chaos -instances 36

# load runs the service-level load experiment: an in-process pipegateway
# over three pipeserved replicas under zipf and uniform batch traffic,
# dueling the three cache policies and regenerating BENCH_service.json
# (see EXPERIMENTS.md section LOAD).
load:
	$(GO) run ./cmd/pipebench -exp load

# fuzz-smoke runs each jobspec fuzz target briefly, as CI does.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=^FuzzFileRoundTrip$$ -fuzztime=30s ./internal/jobspec/
	$(GO) test -run=^$$ -fuzz=^FuzzFloatJSON$$ -fuzztime=30s ./internal/jobspec/

# experiments regenerates the paper-versus-measured record (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/pipebench

# serve runs the solver HTTP service locally (see cmd/pipeserved -h).
serve:
	$(GO) run ./cmd/pipeserved

# gateway runs the sharded front door locally against replicas named in
# REPLICAS, e.g.
#   make gateway REPLICAS="http://localhost:8081,http://localhost:8082"
# (see cmd/pipegateway -h for routing, retry, and stats-merging flags).
gateway:
	$(GO) run ./cmd/pipegateway -replicas "$(REPLICAS)"

clean:
	$(GO) clean ./...
