package batch

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// fig1Jobs builds a mixed workload over the motivating example: the four
// Section 2 headline requests plus an energy sweep, several of them exact
// duplicates.
func fig1Jobs(inst *pipeline.Instance) []Job {
	reqs := []core.Request{
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Latency},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Energy,
			PeriodBounds: core.UniformBounds(inst, 2)},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period}, // dup of 0
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Energy,
			PeriodBounds: core.UniformBounds(inst, 3)},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Energy,
			PeriodBounds: core.UniformBounds(inst, 2)}, // dup of 2
	}
	jobs := make([]Job, len(reqs))
	for i, r := range reqs {
		jobs[i] = Job{Inst: inst, Req: r}
	}
	return jobs
}

// TestMatchesSequentialInOrder is the engine's core contract: results come
// back in input order and are bit-identical to calling core.Solve job by
// job.
func TestMatchesSequentialInOrder(t *testing.T) {
	inst := pipeline.MotivatingExample()
	jobs := fig1Jobs(&inst)

	want := make([]JobResult, len(jobs))
	for i, job := range jobs {
		res, err := core.Solve(job.Inst, job.Req)
		want[i] = JobResult{Result: res, Err: err}
	}
	for _, workers := range []int{1, 2, 8} {
		got, stats := Solve(jobs, Options{Workers: workers})
		if len(got) != len(jobs) {
			t.Fatalf("workers=%d: %d results for %d jobs", workers, len(got), len(jobs))
		}
		for i := range got {
			if !errors.Is(got[i].Err, want[i].Err) {
				t.Fatalf("workers=%d job %d: error %v, sequential %v", workers, i, got[i].Err, want[i].Err)
			}
			if !reflect.DeepEqual(got[i].Result, want[i].Result) {
				t.Errorf("workers=%d job %d: result differs from sequential Solve\ngot  %+v\nwant %+v",
					workers, i, got[i].Result, want[i].Result)
			}
		}
		if stats.Jobs != len(jobs) {
			t.Errorf("workers=%d: stats.Jobs = %d, want %d", workers, stats.Jobs, len(jobs))
		}
	}
}

// TestCacheDedup checks that exact duplicate jobs are solved once and the
// hits show up in the stats.
func TestCacheDedup(t *testing.T) {
	inst := pipeline.MotivatingExample()
	req := core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Energy,
		PeriodBounds: core.UniformBounds(&inst, 2)}
	const n = 16
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Inst: &inst, Req: req}
	}
	results, stats := Solve(jobs, Options{Workers: 8})
	if stats.CacheHits != n-1 {
		t.Errorf("CacheHits = %d, want %d", stats.CacheHits, n-1)
	}
	if stats.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", stats.Errors)
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[i].Result, results[0].Result) {
			t.Fatalf("job %d result differs from job 0", i)
		}
	}
	// The copies must be independent: mutating one mapping must not leak
	// into another job's result.
	results[0].Result.Mapping.Apps[0].Intervals[0].Proc = 99
	if results[1].Result.Mapping.Apps[0].Intervals[0].Proc == 99 {
		t.Error("cache hit shares mapping memory with another job")
	}
	total := 0
	for _, c := range stats.Methods {
		total += c
	}
	if total != n || len(stats.Methods) != 1 {
		t.Errorf("Methods = %v, want one method counted %d times", stats.Methods, n)
	}
}

// TestErrorPropagation mixes solvable, infeasible and malformed jobs and
// checks each error lands on its own slot without stopping the batch.
func TestErrorPropagation(t *testing.T) {
	inst := pipeline.MotivatingExample()
	jobs := []Job{
		{Inst: &inst, Req: core.Request{Rule: mapping.Interval, Objective: core.Period}},
		// Energy without period bounds: ErrUnsupported (Section 3.5).
		{Inst: &inst, Req: core.Request{Rule: mapping.Interval, Objective: core.Energy}},
		// Period bound below the optimum: ErrInfeasible.
		{Inst: &inst, Req: core.Request{Rule: mapping.Interval, Objective: core.Energy,
			PeriodBounds: core.UniformBounds(&inst, 0.01)}},
		// Wrong bounds arity: plain validation error.
		{Inst: &inst, Req: core.Request{Rule: mapping.Interval, Objective: core.Energy,
			PeriodBounds: []float64{1}}},
		{Inst: &inst, Req: core.Request{Rule: mapping.Interval, Objective: core.Latency}},
	}
	results, stats := Solve(jobs, Options{Workers: 4})
	if results[0].Err != nil || results[4].Err != nil {
		t.Fatalf("good jobs failed: %v, %v", results[0].Err, results[4].Err)
	}
	if !errors.Is(results[1].Err, core.ErrUnsupported) {
		t.Errorf("job 1 error = %v, want ErrUnsupported", results[1].Err)
	}
	if !errors.Is(results[2].Err, core.ErrInfeasible) {
		t.Errorf("job 2 error = %v, want ErrInfeasible", results[2].Err)
	}
	if results[3].Err == nil {
		t.Error("job 3 with mismatched bounds arity did not fail")
	}
	if stats.Errors != 3 {
		t.Errorf("stats.Errors = %d, want 3", stats.Errors)
	}
	// Failed slots carry the zero Result, exactly like sequential Solve
	// (nil mapping slice, not an empty one).
	for _, i := range []int{1, 2, 3} {
		if !reflect.DeepEqual(results[i].Result, core.Result{}) {
			t.Errorf("job %d: failed slot Result = %+v, want zero value", i, results[i].Result)
		}
	}
}

// TestShardSpread checks every cache shard is reachable from hex keys.
func TestShardSpread(t *testing.T) {
	const hex = "0123456789abcdef"
	seen := make(map[int]bool)
	for _, a := range []byte(hex) {
		for _, b := range []byte(hex) {
			sh := shardIndex(string([]byte{a, b}), numShards)
			if sh < 0 || sh >= numShards {
				t.Fatalf("shardIndex(%c%c) = %d out of range", a, b, sh)
			}
			seen[sh] = true
		}
	}
	if len(seen) != numShards {
		t.Errorf("only %d of %d shards reachable", len(seen), numShards)
	}
}

// TestSharedCacheAcrossBatches reuses one Cache over two Solve calls: the
// second batch must be answered entirely from the cache.
func TestSharedCacheAcrossBatches(t *testing.T) {
	inst := pipeline.MotivatingExample()
	jobs := fig1Jobs(&inst)
	cache := NewCache()
	first, s1 := Solve(jobs, Options{Cache: cache, Workers: 4})
	second, s2 := Solve(jobs, Options{Cache: cache, Workers: 4})
	if s2.CacheHits != len(jobs) {
		t.Errorf("second batch CacheHits = %d, want %d", s2.CacheHits, len(jobs))
	}
	if s1.CacheHits >= len(jobs) {
		t.Errorf("first batch CacheHits = %d, want < %d", s1.CacheHits, len(jobs))
	}
	for i := range jobs {
		if !reflect.DeepEqual(first[i].Result, second[i].Result) {
			t.Fatalf("job %d: cached result differs from first run", i)
		}
	}
	if cache.Len() == 0 {
		t.Error("cache is empty after two batches")
	}
}

// TestNoDedup checks the cache can be switched off.
func TestNoDedup(t *testing.T) {
	inst := pipeline.MotivatingExample()
	jobs := fig1Jobs(&inst)
	results, stats := Solve(jobs, Options{NoDedup: true, Workers: 4})
	if stats.CacheHits != 0 {
		t.Errorf("CacheHits = %d with NoDedup", stats.CacheHits)
	}
	if !reflect.DeepEqual(results[0].Result, results[3].Result) {
		t.Error("duplicate jobs disagree without dedup")
	}
}

// TestDedupGroupsBeforeDispatch checks duplicates are collapsed before
// they reach the pool: a batch of N identical jobs on a single worker
// performs exactly one computation, so no worker ever parks behind an
// in-flight duplicate.
func TestDedupGroupsBeforeDispatch(t *testing.T) {
	inst := pipeline.MotivatingExample()
	req := core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period}
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Inst: &inst, Req: req}
	}
	cache := NewCache()
	_, stats := Solve(jobs, Options{Workers: 1, Cache: cache})
	if stats.CacheHits != len(jobs)-1 {
		t.Errorf("CacheHits = %d, want %d", stats.CacheHits, len(jobs)-1)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d keys, want 1", cache.Len())
	}
}

// TestEmptyBatch must not hang or panic.
func TestEmptyBatch(t *testing.T) {
	results, stats := Solve(nil, Options{})
	if len(results) != 0 || stats.Jobs != 0 {
		t.Fatalf("empty batch: %d results, stats %+v", len(results), stats)
	}
}

// TestKeyDiscriminates checks the canonical key separates every request
// field that changes solver behaviour, including bound nil-ness, and is
// stable for identical inputs.
func TestKeyDiscriminates(t *testing.T) {
	inst := pipeline.MotivatingExample()
	base := core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period}
	if Key(&inst, base) != Key(&inst, base) {
		t.Fatal("identical jobs got different keys")
	}
	inst2 := inst.Clone()
	if Key(&inst, base) != Key(&inst2, base) {
		t.Fatal("cloned instance got a different key")
	}
	variants := []core.Request{
		{Rule: mapping.OneToOne, Model: pipeline.Overlap, Objective: core.Period},
		{Rule: mapping.Interval, Model: pipeline.NoOverlap, Objective: core.Period},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Latency},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period, PeriodBounds: []float64{1, 2}},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period, LatencyBounds: []float64{1, 2}},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period, EnergyBudget: 10},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period, Seed: 7},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period, ExactLimit: 10},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period, HeurIters: 10},
		{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period, HeurRestarts: 10},
	}
	seen := map[string]int{Key(&inst, base): -1}
	for i, v := range variants {
		k := Key(&inst, v)
		if j, dup := seen[k]; dup {
			t.Errorf("request variants %d and %d collide", i, j)
		}
		seen[k] = i
	}
	inst3 := inst.Clone()
	inst3.Apps[0].Stages[0].Work++
	if _, dup := seen[Key(&inst3, base)]; dup {
		t.Error("changed instance collides with an existing key")
	}
}

// TestConcurrentStress hammers one shared instance from many workers; run
// with -race this is the pool's data-race check (core.Solve must treat the
// instance as read-only).
func TestConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst := workload.MustInstance(rng, workload.Config{
		Apps: 2, MinStages: 2, MaxStages: 3, Procs: 8, Modes: 2,
		Class: pipeline.CommHomogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 6,
	})
	var jobs []Job
	for x := 1; x <= 12; x++ {
		jobs = append(jobs, Job{Inst: &inst, Req: core.Request{
			Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Energy,
			PeriodBounds: core.UniformBounds(&inst, float64(x)),
		}})
		jobs = append(jobs, Job{Inst: &inst, Req: core.Request{
			Rule: mapping.OneToOne, Model: pipeline.Overlap, Objective: core.Period,
		}})
	}
	results, stats := Solve(jobs, Options{Workers: 8})
	// All one-to-one period jobs are identical: 11 dedup hits expected.
	if stats.CacheHits < 11 {
		t.Errorf("CacheHits = %d, want >= 11", stats.CacheHits)
	}
	for i, r := range results {
		if r.Err != nil && !errors.Is(r.Err, core.ErrInfeasible) {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
}
