package batch

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// solvedResult is a small distinguishable Result for direct cache tests.
func solvedResult(v float64) core.Result {
	return core.Result{
		Value:   v,
		Mapping: mapping.Mapping{Apps: []mapping.AppMapping{{Intervals: []mapping.PlacedInterval{{From: 0, To: 1, Proc: int(v), Mode: 0}}}}},
		Method:  core.MethodExact,
		Optimal: true,
	}
}

// hexKey fabricates a distinct cache key from n (keys are arbitrary byte
// strings; the canonical encoding is opaque to the cache).
func hexKey(n int) string {
	return fmt.Sprintf("%064x", n)
}

// TestCacheCapNeverExceeded inserts far more distinct keys than the cap and
// checks the invariant holds after every insertion, with evictions counted.
func TestCacheCapNeverExceeded(t *testing.T) {
	const cap = 50
	c := NewCacheCap(cap)
	for n := 0; n < 10*cap; n++ {
		c.do(hexKey(n), func() (core.Result, error) { return solvedResult(float64(n)), nil })
		if got := c.Len(); got > cap {
			t.Fatalf("after %d inserts: Len = %d exceeds cap %d", n+1, got, cap)
		}
	}
	s := c.Stats()
	if s.Entries > cap || s.Entries == 0 {
		t.Errorf("Stats.Entries = %d, want in (0, %d]", s.Entries, cap)
	}
	if s.Evictions < int64(9*cap) {
		t.Errorf("Evictions = %d, want >= %d", s.Evictions, 9*cap)
	}
	if s.Misses != int64(10*cap) {
		t.Errorf("Misses = %d, want %d", s.Misses, 10*cap)
	}
	if s.Cap != cap {
		t.Errorf("Stats.Cap = %d, want %d", s.Cap, cap)
	}
}

// shardKeys returns a generator of distinct keys all hashing to the given
// shard of an n-shard cache.
func shardKeys(shard, n int) func(int) string {
	return func(k int) string {
		for i := 0; ; i++ {
			key := fmt.Sprintf("key-%d-%d", k, i)
			if shardIndex(key, n) == shard {
				return key
			}
		}
	}
}

// TestCacheLRUOrder checks that touching an entry protects it from
// eviction ahead of colder entries in the same shard. Shard 0 is an LRU
// leader under the default adaptive policy, so its eviction order is pure
// LRU regardless of the duel's state.
func TestCacheLRUOrder(t *testing.T) {
	shardKey := shardKeys(0, numShards)
	c := NewCacheCap(numShards * 2) // quota of 2 entries per shard
	compute := func(v float64) func() (core.Result, error) {
		return func() (core.Result, error) { return solvedResult(v), nil }
	}
	c.do(shardKey(1), compute(1))
	c.do(shardKey(2), compute(2))
	c.do(shardKey(1), compute(1)) // touch 1: now 2 is the LRU entry
	c.do(shardKey(3), compute(3)) // evicts 2
	if _, _, hit := c.do(shardKey(1), compute(1)); !hit {
		t.Error("recently used key 1 was evicted")
	}
	if _, _, hit := c.do(shardKey(2), compute(2)); hit {
		t.Error("least recently used key 2 survived past the quota")
	}
}

// TestCacheSmallCapKeepsEveryShardUseful is the small-cap satellite
// regression: NewCacheCap(n) with n below the shard count used to hand
// most shards a zero quota, so entries landing there were evicted at
// publish — memoization and late-arrival single-flight silently vanished
// for most keys. The fix shrinks the effective shard count to the cap, so
// every live shard retains at least one entry.
func TestCacheSmallCapKeepsEveryShardUseful(t *testing.T) {
	const cap = 5
	c := NewCacheCap(cap)
	// cap distinct keys must all be retained: no shard may evict while the
	// cache as a whole is under its cap.
	for n := 0; n < cap; n++ {
		c.do(hexKey(n), func() (core.Result, error) { return solvedResult(float64(n)), nil })
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("%d evictions while holding %d entries under cap %d", ev, cap, cap)
	}
	if got := c.Len(); got != cap {
		t.Fatalf("Len = %d after %d distinct inserts, want %d", got, cap, cap)
	}
	for n := 0; n < cap; n++ {
		if _, _, hit := c.do(hexKey(n), func() (core.Result, error) {
			t.Errorf("key %d recomputed under cap", n)
			return core.Result{}, nil
		}); !hit {
			t.Errorf("key %d: miss on a retained entry", n)
		}
	}

	// The hard cap invariant must still hold under churn.
	for n := 0; n < 50; n++ {
		c.do(hexKey(100+n), func() (core.Result, error) { return solvedResult(1), nil })
		if got := c.Len(); got > cap {
			t.Fatalf("Len = %d exceeds small cap %d", got, cap)
		}
	}

	// Late-arrival single-flight still works at small caps: a waiter
	// arriving while a key is in flight must join it, not recompute.
	c2 := NewCacheCap(3)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c2.do(hexKey(0), func() (core.Result, error) {
			close(started)
			<-release
			return solvedResult(7), nil
		})
	}()
	<-started
	joined := make(chan bool, 1)
	go func() {
		_, _, hit := c2.do(hexKey(0), func() (core.Result, error) {
			return solvedResult(-1), nil
		})
		joined <- hit
	}()
	close(release)
	<-done
	if !<-joined {
		t.Error("late arrival at small cap recomputed instead of joining the in-flight entry")
	}
}

// TestCacheCapOne pins the degenerate single-entry cache: it must behave
// as a 1-entry LRU, never exceed its cap, and still answer repeats.
func TestCacheCapOne(t *testing.T) {
	c := NewCacheCap(1)
	c.do(hexKey(1), func() (core.Result, error) { return solvedResult(1), nil })
	if _, _, hit := c.do(hexKey(1), func() (core.Result, error) { return core.Result{}, nil }); !hit {
		t.Error("sole entry not retained at cap 1")
	}
	c.do(hexKey(2), func() (core.Result, error) { return solvedResult(2), nil })
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d at cap 1", got)
	}
	if _, _, hit := c.do(hexKey(2), func() (core.Result, error) { return core.Result{}, nil }); !hit {
		t.Error("newest entry evicted in favour of the displaced one")
	}
}

// TestCacheCostEviction pins cost-aware replacement: under PolicyCost the
// victim is the cheapest-to-recompute entry, not the least recently used
// one.
func TestCacheCostEviction(t *testing.T) {
	c := NewCacheCapPolicy(numShards*2, PolicyCost) // quota of 2 per shard
	shardKey := shardKeys(0, numShards)
	expensive := func() (core.Result, error) {
		time.Sleep(20 * time.Millisecond)
		return solvedResult(1), nil
	}
	cheap := func() (core.Result, error) { return solvedResult(2), nil }

	c.do(shardKey(1), expensive)
	c.do(shardKey(2), cheap)
	// Touch the cheap entry so it is MRU: LRU would evict key 1, cost-aware
	// must evict key 2 anyway.
	c.do(shardKey(2), cheap)
	c.do(shardKey(3), cheap) // forces an eviction in shard 0
	if _, _, hit := c.do(shardKey(1), func() (core.Result, error) {
		t.Error("expensive entry recomputed")
		return core.Result{}, nil
	}); !hit {
		t.Error("cost-aware eviction dropped the expensive entry")
	}
	if _, _, hit := c.do(shardKey(2), cheap); hit {
		t.Error("cheap MRU entry survived cost-aware eviction")
	}
}

// TestCacheSetDueling pins the adaptive policy's steering: misses
// concentrated in one leader group must swing the selector so followers
// adopt the other group's policy.
func TestCacheSetDueling(t *testing.T) {
	c := NewCacheCap(numShards * 2)
	if got := c.Stats().FollowerPolicy; got != "lru" {
		t.Fatalf("initial FollowerPolicy = %q, want lru (selector at midpoint)", got)
	}
	// Shard 0 is an LRU leader, shard numShards-1 a cost leader (one leader
	// per eight shards on each side, assigned from the ends).
	lruLeaderKey := shardKeys(0, numShards)
	costLeaderKey := shardKeys(numShards-1, numShards)

	// Hammer the LRU leader with distinct keys: every miss votes against
	// LRU, driving the selector past the midpoint.
	for n := 0; n <= pselThreshold+1; n++ {
		c.do(lruLeaderKey(1000+n), func() (core.Result, error) { return solvedResult(1), nil })
	}
	s := c.Stats()
	if s.FollowerPolicy != "cost" {
		t.Fatalf("FollowerPolicy = %q (selector %d) after %d LRU-leader misses, want cost",
			s.FollowerPolicy, s.PolicySelector, pselThreshold+2)
	}
	if s.LeaderLRUMisses == 0 || s.LeaderCostMisses != 0 {
		t.Errorf("leader traffic split wrong: lru misses %d, cost misses %d",
			s.LeaderLRUMisses, s.LeaderCostMisses)
	}

	// Now hammer the cost leader: the duel must swing back.
	for n := 0; n <= pselMax; n++ {
		c.do(costLeaderKey(2000+n), func() (core.Result, error) { return solvedResult(1), nil })
	}
	if got := c.Stats().FollowerPolicy; got != "lru" {
		t.Fatalf("FollowerPolicy = %q after cost-leader miss storm, want lru", got)
	}

	// Pinned policies ignore the duel entirely.
	for _, p := range []Policy{PolicyLRU, PolicyCost} {
		cp := NewCacheCapPolicy(8, p)
		if got := cp.Stats().FollowerPolicy; got != p.String() {
			t.Errorf("pinned %v: FollowerPolicy = %q", p, got)
		}
	}
}

// TestParsePolicyRoundTrip pins the Policy wire names shared by the cmd/
// tools.
func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyAdaptive, PolicyLRU, PolicyCost} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyAdaptive {
		t.Errorf("ParsePolicy(\"\") = %v, %v, want adaptive default", p, err)
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

// TestCacheUnboundedByDefault pins NewCache's unbounded behaviour.
func TestCacheUnboundedByDefault(t *testing.T) {
	c := NewCache()
	for n := 0; n < 500; n++ {
		c.do(hexKey(n), func() (core.Result, error) { return solvedResult(1), nil })
	}
	if got := c.Len(); got != 500 {
		t.Fatalf("Len = %d, want 500", got)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("Evictions = %d on an unbounded cache", ev)
	}
}

// TestCachePanicDoesNotDeadlockWaiters is the satellite bugfix regression:
// a panic inside compute must close the ready channel so every concurrent
// waiter on the key unblocks with the panic re-published as an error.
func TestCachePanicDoesNotDeadlockWaiters(t *testing.T) {
	c := NewCache()
	key := hexKey(7)

	started := make(chan struct{})
	release := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		_, err, _ := c.do(key, func() (core.Result, error) {
			close(started)
			<-release
			panic("poisoned request")
		})
		first <- err
	}()
	<-started

	const waiters = 8
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err, hit := c.do(key, func() (core.Result, error) {
				t.Error("waiter ran compute despite in-flight entry")
				return core.Result{}, nil
			})
			if !hit {
				t.Error("waiter did not join the in-flight computation")
			}
			errs <- err
		}()
	}
	close(release)
	wg.Wait()
	close(errs)

	if err := <-first; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("computing caller error = %v, want re-published panic", err)
	}
	for err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("waiter error = %v, want re-published panic", err)
		}
	}
}

// TestSolvePanicConfinedToSlot checks a panic inside a memoized
// computation surfaces as that key's error (with the panic value in the
// message), while an ordinary batch on the same cache keeps working.
func TestSolvePanicConfinedToSlot(t *testing.T) {
	cache := NewCache()
	_, err, _ := cache.do(hexKey(1), func() (core.Result, error) { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("cache.do returned %v, want panic error", err)
	}
	inst := pipeline.MotivatingExample()
	good := core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period}
	results, stats := Solve([]Job{{Inst: &inst, Req: good}}, Options{Cache: cache})
	if results[0].Err != nil || stats.Errors != 0 {
		t.Fatalf("batch on a cache with a poisoned key failed: %v", results[0].Err)
	}
}

// TestCacheReturnsIndependentCopies is the aliasing satellite regression:
// mutating a Result returned by the cache must not corrupt the memoized
// mapping observed by a later hit.
func TestCacheReturnsIndependentCopies(t *testing.T) {
	c := NewCache()
	key := hexKey(3)
	first, err, _ := c.do(key, func() (core.Result, error) { return solvedResult(5), nil })
	if err != nil {
		t.Fatal(err)
	}
	want := solvedResult(5)
	first.Mapping.Apps[0].Intervals[0].Proc = 99
	first.Value = -1

	second, err, hit := c.do(key, func() (core.Result, error) {
		t.Fatal("cache miss after mutation: entry was lost")
		return core.Result{}, nil
	})
	if err != nil || !hit {
		t.Fatalf("second lookup: err=%v hit=%v", err, hit)
	}
	if !reflect.DeepEqual(second, want) {
		t.Errorf("cache hit corrupted by caller mutation:\ngot  %+v\nwant %+v", second, want)
	}
	second.Mapping.Apps[0].Intervals[0].Mode = 42
	third, _, _ := c.do(key, func() (core.Result, error) { return core.Result{}, nil })
	if !reflect.DeepEqual(third, want) {
		t.Error("second mutation leaked into the memoized value")
	}
}

// TestBoundedCacheConcurrentMixedWorkload hammers a small bounded cache
// from many goroutines with overlapping key ranges (run with -race). The
// entry cap must hold at every probe and afterwards, and results must stay
// consistent per key.
func TestBoundedCacheConcurrentMixedWorkload(t *testing.T) {
	const cap = 64
	c := NewCacheCap(cap)
	stop := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if got := c.Len(); got > cap {
					t.Errorf("Len = %d exceeds cap %d under load", got, cap)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for n := 0; n < 400; n++ {
				k := rng.Intn(3 * cap)
				res, err, _ := c.do(hexKey(k), func() (core.Result, error) {
					if k%7 == 0 {
						return core.Result{}, core.ErrInfeasible
					}
					return solvedResult(float64(k)), nil
				})
				if k%7 == 0 {
					if err == nil {
						t.Errorf("key %d: expected stable error", k)
					}
				} else if err != nil || res.Value != float64(k) {
					t.Errorf("key %d: res=%g err=%v", k, res.Value, err)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	probeWG.Wait()
	if got := c.Len(); got > cap {
		t.Fatalf("final Len = %d exceeds cap %d", got, cap)
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Error("no evictions under a workload 3x the cap")
	}
}

// TestSolveCtxPreCancelled checks a cancelled context marks every slot with
// ctx.Err() without running the solver.
func TestSolveCtxPreCancelled(t *testing.T) {
	inst := pipeline.MotivatingExample()
	jobs := fig1Jobs(&inst)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, noDedup := range []bool{false, true} {
		results, stats := SolveCtx(ctx, jobs, Options{Workers: 2, NoDedup: noDedup})
		if stats.Errors != len(jobs) {
			t.Errorf("noDedup=%v: Errors = %d, want %d", noDedup, stats.Errors, len(jobs))
		}
		for i, r := range results {
			if r.Err != context.Canceled {
				t.Errorf("noDedup=%v job %d: Err = %v, want context.Canceled", noDedup, i, r.Err)
			}
			if !reflect.DeepEqual(r.Result, core.Result{}) {
				t.Errorf("noDedup=%v job %d: cancelled slot carries a result", noDedup, i)
			}
		}
	}
}

// TestSolveCtxCancelMidBatch cancels while a batch is in flight: the call
// must return promptly with every slot filled by either a real result or
// ctx.Err(), and a cancelled re-run must not hang.
func TestSolveCtxCancelMidBatch(t *testing.T) {
	inst := pipeline.MotivatingExample()
	var jobs []Job
	for x := 1; x <= 64; x++ {
		jobs = append(jobs, Job{Inst: &inst, Req: core.Request{
			Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Energy,
			PeriodBounds: core.UniformBounds(&inst, 1+float64(x)/16),
		}})
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var results []JobResult
	go func() {
		defer close(done)
		results, _ = SolveCtx(ctx, jobs, Options{Workers: 2})
	}()
	cancel()
	<-done
	for i, r := range results {
		if r.Err != nil && r.Err != context.Canceled {
			t.Errorf("job %d: unexpected error %v", i, r.Err)
		}
		if r.Err == nil && r.Result.Mapping.Apps == nil {
			t.Errorf("job %d: nil mapping on a successful slot", i)
		}
	}
}

// TestSolveCtxBackgroundMatchesSolve pins that SolveCtx with a background
// context is exactly Solve.
func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	inst := pipeline.MotivatingExample()
	jobs := fig1Jobs(&inst)
	got, _ := SolveCtx(context.Background(), jobs, Options{Workers: 4})
	want, _ := Solve(jobs, Options{Workers: 4})
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %d: SolveCtx differs from Solve", i)
		}
	}
}
