package batch

import (
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// keyWriter appends a canonical binary encoding of a job to a pooled
// buffer. Every field is written with an explicit length or presence tag so
// that no two distinct (instance, request) pairs share an encoding: floats
// are written as their IEEE-754 bit patterns (so 0 and -0 differ, and NaN
// payloads are preserved), slices are length-prefixed, and nil slices are
// distinguished from empty ones because the nil-ness of Request bounds is
// semantically meaningful to the solver ("unconstrained" versus
// "constrained"). The encoding itself is the map key — exact by
// construction, no hashing cost, and the string(buf) conversion is the only
// allocation per lookup.
type keyWriter struct {
	buf []byte
}

var keyPool = sync.Pool{New: func() any {
	return &keyWriter{buf: make([]byte, 0, 512)}
}}

func (k *keyWriter) u64(v uint64) {
	k.buf = binary.LittleEndian.AppendUint64(k.buf, v)
}

func (k *keyWriter) i64(v int64)   { k.u64(uint64(v)) }
func (k *keyWriter) f64(v float64) { k.u64(math.Float64bits(v)) }

func (k *keyWriter) str(s string) {
	k.u64(uint64(len(s)))
	k.buf = append(k.buf, s...)
}

// floats writes a slice with a presence tag: nil and empty encode
// differently.
func (k *keyWriter) floats(xs []float64) {
	if xs == nil {
		k.u64(0)
		return
	}
	k.u64(1)
	k.u64(uint64(len(xs)))
	for _, x := range xs {
		k.f64(x)
	}
}

func (k *keyWriter) matrix(m [][]float64) {
	k.u64(uint64(len(m)))
	for _, row := range m {
		k.floats(row)
	}
}

// done snapshots the encoding into an immutable string key and returns the
// writer to the pool.
func (k *keyWriter) done() string {
	s := string(k.buf)
	k.buf = k.buf[:0]
	keyPool.Put(k)
	return s
}

// Key returns a stable canonical key identifying a (instance, request)
// pair: two jobs receive the same key exactly when every field that can
// influence core.Solve (and the cosmetic names carried into reports) is
// identical. The key is the canonical byte encoding itself, so equality is
// exact by construction.
func Key(inst *pipeline.Instance, req core.Request) string {
	k := keyPool.Get().(*keyWriter)
	k.instance(inst)

	k.i64(int64(req.Rule))
	k.i64(int64(req.Model))
	k.i64(int64(req.Objective))
	k.floats(req.PeriodBounds)
	k.floats(req.LatencyBounds)
	k.f64(req.EnergyBudget)
	k.i64(req.ExactLimit)
	k.i64(req.Seed)
	k.i64(int64(req.HeurIters))
	k.i64(int64(req.HeurRestarts))

	return k.done()
}

// PlanKey returns the canonical key of a compiled plan's inputs: the
// instance plus the rule and communication model fixed at compile time.
// Jobs sharing a PlanKey can be answered by one compiled plan (see
// internal/plan); like Key, it is the canonical byte encoding itself.
func PlanKey(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel) string {
	k := keyPool.Get().(*keyWriter)
	k.instance(inst)
	k.i64(int64(rule))
	k.i64(int64(model))
	return k.done()
}

// instance streams the canonical instance encoding: every field that can
// influence the solver plus the cosmetic names carried into reports.
func (k *keyWriter) instance(inst *pipeline.Instance) {
	k.u64(uint64(len(inst.Apps)))
	for a := range inst.Apps {
		app := &inst.Apps[a]
		k.str(app.Name)
		k.f64(app.Weight)
		k.f64(app.In)
		k.u64(uint64(len(app.Stages)))
		for _, st := range app.Stages {
			k.f64(st.Work)
			k.f64(st.Out)
		}
	}
	k.u64(uint64(len(inst.Platform.Processors)))
	for u := range inst.Platform.Processors {
		pr := &inst.Platform.Processors[u]
		k.str(pr.Name)
		k.floats(pr.Speeds)
	}
	k.matrix(inst.Platform.Bandwidth)
	k.matrix(inst.Platform.InBandwidth)
	k.matrix(inst.Platform.OutBandwidth)
	k.f64(inst.Energy.Static)
	k.f64(inst.Energy.Alpha)
}
