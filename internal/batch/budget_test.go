package batch

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// TestSolveBudgetDegrades pins the degraded-mode contract end to end: a
// per-job budget no solve can meet answers every job from the reduced
// effort path, tagged Preempted (and Degraded where the cell is NP-hard),
// with no error — graceful degradation, never silent. Preempted results
// must not poison the cache: a budget-free batch over the same cache
// re-solves cleanly.
func TestSolveBudgetDegrades(t *testing.T) {
	mi := pipeline.MotivatingExample()
	jobs := []Job{
		{Inst: &mi, Req: core.Request{Rule: mapping.Interval, Objective: core.Period, Seed: 1}},
		{Inst: &mi, Req: core.Request{Rule: mapping.Interval, Objective: core.Latency, Seed: 1}},
	}
	cache := NewCache()
	results, stats := Solve(jobs, Options{Cache: cache, SolveBudget: time.Nanosecond})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d under budget: %v", i, r.Err)
		}
		if !r.Result.Preempted {
			t.Fatalf("job %d not preempted under a 1ns budget: %+v", i, r.Result)
		}
	}
	if stats.Preempted != len(jobs) {
		t.Fatalf("stats.Preempted = %d, want %d", stats.Preempted, len(jobs))
	}
	if stats.Errors != 0 {
		t.Fatalf("budgeted batch reported %d errors", stats.Errors)
	}

	// Cache purity: the preempted results were not retained, so the same
	// jobs without a budget solve fresh and come back clean.
	results2, stats2 := Solve(jobs, Options{Cache: cache})
	for i, r := range results2 {
		if r.Err != nil {
			t.Fatalf("budget-free job %d: %v", i, r.Err)
		}
		if r.Result.Preempted {
			t.Fatalf("budget-free job %d got a cached preempted result", i)
		}
	}
	if stats2.Preempted != 0 {
		t.Fatalf("budget-free stats.Preempted = %d", stats2.Preempted)
	}

	// Clean results ARE retained: a third pass is all cache hits and
	// bit-identical.
	results3, stats3 := Solve(jobs, Options{Cache: cache})
	if stats3.CacheHits != len(jobs) {
		t.Fatalf("third pass: %d cache hits, want %d", stats3.CacheHits, len(jobs))
	}
	for i := range results3 {
		if results3[i].Result.Value != results2[i].Result.Value {
			t.Fatalf("job %d: cached value %g != fresh value %g", i, results3[i].Result.Value, results2[i].Result.Value)
		}
	}
}

// TestSolveBudgetDegradedStats pins that Stats.Degraded counts heuristic
// results on NP-hard cells even without a wall-clock budget (deterministic
// ExactLimit degradation), which IS cacheable.
func TestSolveBudgetDegradedStats(t *testing.T) {
	mi := pipeline.MotivatingExample()
	jobs := []Job{{Inst: &mi, Req: core.Request{
		Rule: mapping.Interval, Objective: core.Period, ExactLimit: 1, Seed: 1, HeurIters: 50, HeurRestarts: 1,
	}}}
	cache := NewCache()
	results, stats := Solve(jobs, Options{Cache: cache})
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if !results[0].Result.Degraded || results[0].Result.Preempted {
		t.Fatalf("want Degraded && !Preempted, got %+v", results[0].Result)
	}
	if stats.Degraded != 1 || stats.Preempted != 0 {
		t.Fatalf("stats Degraded/Preempted = %d/%d, want 1/0", stats.Degraded, stats.Preempted)
	}
	if lb := results[0].Result.LowerBound; lb <= 0 || lb > results[0].Result.Value {
		t.Fatalf("degraded lower bound %g not in (0, %g]", lb, results[0].Result.Value)
	}
	// Deterministic degradation is cache-safe: the repeat is a hit.
	_, stats2 := Solve(jobs, Options{Cache: cache})
	if stats2.CacheHits != 1 {
		t.Fatalf("deterministic degraded result was not cached: %+v", stats2)
	}
	if stats2.Degraded != 1 {
		t.Fatalf("cached degraded result lost its flag: %+v", stats2)
	}
}
