package batch

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// TestPlanTierSingleFlight asserts the cache's plan tier compiles each
// distinct (instance, rule, comm) triple exactly once under concurrent
// demand and shares the one plan.
func TestPlanTierSingleFlight(t *testing.T) {
	inst := pipeline.MotivatingExample()
	c := NewCache()
	const goroutines = 16
	var wg sync.WaitGroup
	plans := make([]any, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pl, err, _ := c.PlanFor(&inst, mapping.Interval, pipeline.Overlap)
			if err != nil {
				t.Errorf("PlanFor: %v", err)
				return
			}
			plans[g] = pl
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if plans[g] != plans[0] {
			t.Fatalf("goroutine %d received a different plan object", g)
		}
	}
	st := c.Stats()
	if st.PlanEntries != 1 {
		t.Errorf("PlanEntries = %d, want 1", st.PlanEntries)
	}
	if st.PlanMisses != 1 || st.PlanHits != goroutines-1 {
		t.Errorf("plan tier hits/misses = %d/%d, want %d/1", st.PlanHits, st.PlanMisses, goroutines-1)
	}
	if got := st.PlanHitRate(); got <= 0.9 {
		t.Errorf("PlanHitRate = %g, want > 0.9", got)
	}
}

// TestPlanTierCompileError asserts an invalid instance's compilation error
// is memoized and returned to every caller, like a result-tier error.
func TestPlanTierCompileError(t *testing.T) {
	inst := pipeline.MotivatingExample()
	inst.Apps[0].Stages[0].Work = -1
	c := NewCache()
	for i := 0; i < 2; i++ {
		pl, err, hit := c.PlanFor(&inst, mapping.Interval, pipeline.Overlap)
		if err == nil || pl != nil {
			t.Fatalf("call %d: PlanFor accepted an invalid instance (plan %v)", i, pl)
		}
		if hit != (i == 1) {
			t.Errorf("call %d: hit = %v", i, hit)
		}
	}
}

// TestPlanTierEviction bounds the plan tier: flooding a capped cache with
// distinct instances must evict, never exceed the cap.
func TestPlanTierEviction(t *testing.T) {
	const cap = 3
	c := NewCacheCap(cap)
	for i := 0; i < 2*cap; i++ {
		inst := pipeline.MotivatingExample()
		inst.Apps[0].Weight = float64(i + 1) // distinct canonical keys
		if _, err, _ := c.PlanFor(&inst, mapping.Interval, pipeline.Overlap); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.PlanEntries > cap {
		t.Errorf("PlanEntries = %d, want <= %d", st.PlanEntries, cap)
	}
	if st.PlanEvictions != cap {
		t.Errorf("PlanEvictions = %d, want %d", st.PlanEvictions, cap)
	}
}

// TestBatchPlanStats asserts a batch over one instance compiles exactly one
// plan and that later batches sharing the cache reuse it, with the counts
// surfaced in Stats.
func TestBatchPlanStats(t *testing.T) {
	inst := pipeline.MotivatingExample()
	jobs := []Job{
		{Inst: &inst, Req: core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period}},
		{Inst: &inst, Req: core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Latency}},
		{Inst: &inst, Req: core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Energy,
			PeriodBounds: core.UniformBounds(&inst, 2)}},
	}
	c := NewCache()
	_, stats := Solve(jobs, Options{Cache: c})
	if stats.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", stats.Errors)
	}
	if stats.PlanCompiles != 1 || stats.PlanReuses != len(jobs)-1 {
		t.Errorf("first batch PlanCompiles/PlanReuses = %d/%d, want 1/%d",
			stats.PlanCompiles, stats.PlanReuses, len(jobs)-1)
	}
	// A new query on the same instance through the same cache: the plan is
	// already there, so no compilation at all.
	more := []Job{{Inst: &inst, Req: core.Request{Rule: mapping.Interval, Model: pipeline.Overlap,
		Objective: core.Energy, PeriodBounds: core.UniformBounds(&inst, 3)}}}
	_, stats = Solve(more, Options{Cache: c})
	if stats.PlanCompiles != 0 || stats.PlanReuses != 1 {
		t.Errorf("second batch PlanCompiles/PlanReuses = %d/%d, want 0/1",
			stats.PlanCompiles, stats.PlanReuses)
	}
	// Repeating the whole first batch is answered by the result tier: the
	// plan tier is not even consulted.
	_, stats = Solve(jobs, Options{Cache: c})
	if stats.CacheHits != len(jobs) {
		t.Errorf("repeat batch CacheHits = %d, want %d", stats.CacheHits, len(jobs))
	}
	if stats.PlanCompiles != 0 || stats.PlanReuses != 0 {
		t.Errorf("repeat batch PlanCompiles/PlanReuses = %d/%d, want 0/0",
			stats.PlanCompiles, stats.PlanReuses)
	}
}

// TestBatchPlanValidationError asserts an invalid instance surfaces the
// same validation error through the planned batch path as a direct solve.
func TestBatchPlanValidationError(t *testing.T) {
	inst := pipeline.MotivatingExample()
	inst.Apps[0].Stages[0].Work = -1
	req := core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period}
	_, want := core.Solve(&inst, req)
	if want == nil {
		t.Fatal("core.Solve accepted an invalid instance")
	}
	results, stats := Solve([]Job{{Inst: &inst, Req: req}}, Options{})
	if stats.Errors != 1 || results[0].Err == nil {
		t.Fatalf("batch did not surface the validation error: %+v", results[0])
	}
	if !strings.Contains(results[0].Err.Error(), want.Error()) {
		t.Errorf("batch error %q does not carry the validation error %q", results[0].Err, want)
	}
}
