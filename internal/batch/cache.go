package batch

import (
	"sync"

	"repro/internal/core"
)

// numShards bounds lock contention. Keys are lowercase SHA-256 hex, so the
// shard index decodes the first two nibbles (256 uniform values, and 256 is
// a multiple of numShards) rather than using the raw byte, whose 16
// possible values would reach only half the shards.
const numShards = 32

func shardOf(key string) int {
	return int(hexNibble(key[0])<<4|hexNibble(key[1])) % numShards
}

func hexNibble(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

// Cache memoizes solver results by canonical job key. It is safe for
// concurrent use and performs single-flight deduplication: when several
// workers ask for the same key at once, exactly one runs the solver and the
// others block until its result is published. A Cache can outlive a single
// Solve call — hand the same Cache to successive batches (via
// Options.Cache) to reuse results across calls, e.g. between the points of
// two Pareto sweeps over overlapping candidate sets.
//
// The zero value is not usable; call NewCache.
type Cache struct {
	shards [numShards]cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

// cacheEntry is a single-flight slot: ready is closed once res/err are
// final, so waiters never observe a partially written result.
type cacheEntry struct {
	ready chan struct{}
	res   core.Result
	err   error
}

// NewCache returns an empty memoization cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry)
	}
	return c
}

// Len returns the number of memoized keys (including in-flight ones).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// do returns the result for key, computing it with compute on first
// arrival. hit reports whether an existing (possibly still in-flight)
// computation was reused. The returned Result is the shared stored value —
// callers must clone before handing it out.
func (c *Cache) do(key string, compute func() (core.Result, error)) (res core.Result, err error, hit bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		<-e.ready
		return e.res, e.err, true
	}
	e := &cacheEntry{ready: make(chan struct{})}
	sh.m[key] = e
	sh.mu.Unlock()

	e.res, e.err = compute()
	close(e.ready)
	return e.res, e.err, false
}
