package batch

import (
	"container/list"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/plan"
)

// numShards bounds lock contention. Keys are raw canonical byte encodings
// (see key.go), which are highly structured — nearby jobs share long
// prefixes — so the shard index comes from an FNV-1a hash of the whole key
// rather than from any fixed byte positions.
const numShards = 32

// shardIndex hashes a key onto one of n shards (FNV-1a over the whole
// canonical encoding).
func shardIndex(key string, n int) int {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211 // FNV-1a prime
	}
	return int(h % uint64(n))
}

// Policy selects the replacement policy of a bounded cache.
//
// The cache's shards play the role of the sets in a set-dueling cache
// (the DRRIP design): under PolicyAdaptive a few leader shards are pinned
// to LRU, a few to cost-aware replacement, and every other shard follows
// whichever leader group is currently missing less, steered by a
// saturating policy-selector counter. Cost-aware replacement evicts the
// entry that was cheapest to compute — each entry's solve duration is
// recorded when its result is published — so under pressure the cache
// prefers to forget results it can recompute quickly and keeps the ones
// that took real work. PolicyLRU and PolicyCost pin every shard to one
// policy; they exist mainly so the load benchmark can duel the pinned
// policies against the adaptive one.
type Policy uint8

const (
	// PolicyAdaptive set-duels LRU against cost-aware eviction and steers
	// follower shards to the current winner. The default.
	PolicyAdaptive Policy = iota
	// PolicyLRU evicts the least recently used entry everywhere.
	PolicyLRU
	// PolicyCost evicts the cheapest-to-recompute entry everywhere.
	PolicyCost
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyAdaptive:
		return "adaptive"
	case PolicyLRU:
		return "lru"
	case PolicyCost:
		return "cost"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy is the inverse of String, shared by the cmd/ tools.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "adaptive", "":
		return PolicyAdaptive, nil
	case "lru":
		return PolicyLRU, nil
	case "cost":
		return PolicyCost, nil
	}
	return 0, fmt.Errorf("batch: unknown cache policy %q (want adaptive, lru or cost)", s)
}

// Set-dueling constants: a 10-bit saturating selector (the DRRIP PSEL
// width) initialized at its midpoint, and one leader shard per four
// shards on each side of the duel. Hardware DRRIP dedicates ~32 leader
// sets out of thousands; this cache has only numShards sets total, so a
// 1-in-8 ratio would leave four sets per monitor — too little traffic
// for the selector to converge reliably. A 1-in-4 ratio both feeds the
// selector more signal and bounds the damage of a mis-steered duel: at
// most half the shards (the followers) can ever run the losing policy,
// so the adaptive cache stays within a quarter of the policy gap of the
// winner no matter what the selector does.
const (
	pselMax       = 1<<10 - 1
	pselThreshold = pselMax / 2
	leaderRatio   = 4
)

// Shard roles in the duel. Followers consult the selector; leaders are
// pinned so their miss streams keep feeding it.
const (
	roleFollower = iota
	roleLeaderLRU
	roleLeaderCost
)

// Cache memoizes solver results by canonical job key. It is safe for
// concurrent use and performs single-flight deduplication: when several
// workers ask for the same key at once, exactly one runs the solver and the
// others block until its result is published. A Cache can outlive a single
// Solve call — hand the same Cache to successive batches (via
// Options.Cache) to reuse results across calls, e.g. between the points of
// two Pareto sweeps over overlapping candidate sets, or for the whole life
// of a server process.
//
// A cache built with NewCacheCap is bounded: once the configured entry cap
// is reached entries are evicted according to the configured Policy, so a
// shared cache can serve a long-running process without growing without
// bound. The cap is a hard invariant — the cache never holds more than cap
// entries, even transiently — which is kept simple by allowing in-flight
// entries to be evicted too: waiters already hold the entry and still
// receive its result; only the single-flight dedup for late arrivals on
// that key is lost. When the cap is smaller than the shard count the cache
// shrinks its effective shard count to the cap instead of handing some
// shards a zero quota, so every shard retains at least one entry and small
// caps keep both memoization and late-arrival single-flight.
//
// Beyond final results, a Cache carries a second tier: compiled plans
// (internal/plan), memoized by the canonical (instance, rule, comm) key.
// The result tier answers exact repeats; the plan tier makes *related*
// requests on the same instance cheap — a Pareto sweep, an experiment
// table, a batch with many queries per instance all compile each distinct
// instance once and answer every query incrementally against the shared
// plan. The plan tier is bounded by the same entry cap (plans are far
// fewer than results: one per distinct instance triple, not per query).
//
// The zero value is not usable; call NewCache, NewCacheCap or
// NewCacheCapPolicy.
type Cache struct {
	shards  [numShards]cacheShard
	nshards int // effective shard count; < numShards only for small caps
	cap     int // total entry cap; 0 = unbounded
	policy  Policy
	psel    atomic.Int32 // set-dueling selector, 0..pselMax
	plans   planCache
}

type cacheShard struct {
	mu      sync.Mutex
	bounded bool
	cap     int // this shard's slice of the total cap, meaningful when bounded
	role    uint8
	m       map[string]*list.Element
	lru     list.List // front = most recently used; values are *cacheEntry

	hits, misses, evictions int64
}

// cacheEntry is a single-flight slot: ready is closed once res/err are
// final, so waiters never observe a partially written result. cost is the
// wall-clock duration of the computation in nanoseconds, published
// atomically alongside the result; -1 until then ("not yet known"), so
// cost-aware eviction never victimizes an entry the cache has not finished
// paying for.
type cacheEntry struct {
	key   string
	ready chan struct{}
	cost  atomic.Int64
	res   core.Result
	err   error
}

// NewCache returns an empty, unbounded memoization cache.
func NewCache() *Cache { return NewCacheCap(0) }

// NewCacheCap returns an empty memoization cache holding at most maxEntries
// keys under the default adaptive replacement policy; a non-positive
// maxEntries means unbounded.
func NewCacheCap(maxEntries int) *Cache {
	return NewCacheCapPolicy(maxEntries, PolicyAdaptive)
}

// NewCacheCapPolicy returns an empty memoization cache holding at most
// maxEntries keys under the given replacement policy. A non-positive
// maxEntries means unbounded. The cap is distributed over the internal
// shards so their quotas sum exactly to maxEntries; keys hash uniformly
// across shards, so each shard sees an even share of the traffic. A cap
// smaller than the shard count shrinks the effective shard count to the
// cap, flooring every live shard's quota at one entry.
func NewCacheCapPolicy(maxEntries int, policy Policy) *Cache {
	if maxEntries < 0 {
		maxEntries = 0
	}
	n := numShards
	if maxEntries > 0 && maxEntries < numShards {
		n = maxEntries
	}
	c := &Cache{cap: maxEntries, nshards: n, policy: policy}
	c.psel.Store(pselThreshold)
	c.plans.cap = maxEntries
	c.plans.m = make(map[string]*list.Element)
	quota, extra := maxEntries/n, maxEntries%n
	leaders := 0
	if policy == PolicyAdaptive && n >= 2 {
		if leaders = n / leaderRatio; leaders < 1 {
			leaders = 1
		}
	}
	for i := 0; i < n; i++ {
		sh := &c.shards[i]
		sh.m = make(map[string]*list.Element)
		switch {
		case i < leaders:
			sh.role = roleLeaderLRU
		case i >= n-leaders && leaders > 0:
			sh.role = roleLeaderCost
		default:
			sh.role = roleFollower
		}
		if maxEntries > 0 {
			sh.bounded = true
			sh.cap = quota
			if i < extra {
				sh.cap++
			}
		}
	}
	return c
}

// shardFor returns the shard owning key.
func (c *Cache) shardFor(key string) *cacheShard {
	return &c.shards[shardIndex(key, c.nshards)]
}

// Cap returns the configured entry cap (0 = unbounded).
func (c *Cache) Cap() int { return c.cap }

// Policy returns the configured replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Len returns the number of memoized keys (including in-flight ones).
func (c *Cache) Len() int {
	n := 0
	for i := 0; i < c.nshards; i++ {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time snapshot of a Cache's counters.
type CacheStats struct {
	// Entries is the current number of memoized keys (including in-flight).
	Entries int
	// Cap is the configured entry cap; 0 = unbounded.
	Cap int
	// Hits counts do calls answered by an existing (possibly in-flight)
	// entry; Misses counts calls that ran the computation.
	Hits, Misses int64
	// Evictions counts entries dropped to keep the cache under its cap.
	Evictions int64

	// Policy names the configured replacement policy (adaptive, lru,
	// cost); FollowerPolicy the policy follower shards currently apply —
	// the duel's live verdict under the adaptive policy, equal to Policy
	// when pinned.
	Policy, FollowerPolicy string
	// PolicySelector is the saturating set-dueling counter (0..1023,
	// midpoint-initialized): LRU-leader misses push it up, cost-leader
	// misses push it down, and above the midpoint followers evict by cost.
	PolicySelector int
	// Leader and follower traffic split by shard role, so the duel is
	// observable: each side's leader hit rate estimates how its pinned
	// policy would fare cache-wide.
	LeaderLRUHits, LeaderLRUMisses   int64
	LeaderCostHits, LeaderCostMisses int64
	FollowerHits, FollowerMisses     int64

	// PlanEntries is the number of memoized compiled plans (including
	// in-flight compilations); PlanHits and PlanMisses count plan-tier
	// lookups, PlanEvictions the plans dropped to keep the tier under cap.
	PlanEntries          int
	PlanHits, PlanMisses int64
	PlanEvictions        int64
}

func rateOf(hits, misses int64) float64 {
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 { return rateOf(s.Hits, s.Misses) }

// LeaderLRUHitRate returns the hit rate observed by the LRU-pinned leader
// shards, or 0 before any leader lookup.
func (s CacheStats) LeaderLRUHitRate() float64 { return rateOf(s.LeaderLRUHits, s.LeaderLRUMisses) }

// LeaderCostHitRate returns the hit rate observed by the cost-pinned
// leader shards, or 0 before any leader lookup.
func (s CacheStats) LeaderCostHitRate() float64 { return rateOf(s.LeaderCostHits, s.LeaderCostMisses) }

// FollowerHitRate returns the hit rate observed by the follower shards.
func (s CacheStats) FollowerHitRate() float64 { return rateOf(s.FollowerHits, s.FollowerMisses) }

// PlanHitRate returns PlanHits / (PlanHits + PlanMisses), or 0 before any
// plan-tier lookup.
func (s CacheStats) PlanHitRate() float64 { return rateOf(s.PlanHits, s.PlanMisses) }

// Stats returns a snapshot of the cache counters. The totals are summed
// shard by shard without a global lock, so under concurrent traffic the
// snapshot is approximate (each shard's contribution is itself consistent).
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		Cap:            c.cap,
		Policy:         c.policy.String(),
		FollowerPolicy: c.followerPolicy().String(),
		PolicySelector: int(c.psel.Load()),
	}
	for i := 0; i < c.nshards; i++ {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.m)
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Evictions += sh.evictions
		switch sh.role {
		case roleLeaderLRU:
			s.LeaderLRUHits += sh.hits
			s.LeaderLRUMisses += sh.misses
		case roleLeaderCost:
			s.LeaderCostHits += sh.hits
			s.LeaderCostMisses += sh.misses
		default:
			s.FollowerHits += sh.hits
			s.FollowerMisses += sh.misses
		}
		sh.mu.Unlock()
	}
	c.plans.mu.Lock()
	s.PlanEntries = len(c.plans.m)
	s.PlanHits = c.plans.hits
	s.PlanMisses = c.plans.misses
	s.PlanEvictions = c.plans.evictions
	c.plans.mu.Unlock()
	return s
}

// followerPolicy resolves what the follower shards currently evict by.
func (c *Cache) followerPolicy() Policy {
	if c.policy != PolicyAdaptive {
		return c.policy
	}
	if c.psel.Load() > pselThreshold {
		return PolicyCost
	}
	return PolicyLRU
}

// nudgePSEL moves the set-dueling selector by delta, saturating at
// [0, pselMax].
func (c *Cache) nudgePSEL(delta int32) {
	for {
		old := c.psel.Load()
		nv := old + delta
		if nv < 0 {
			nv = 0
		}
		if nv > pselMax {
			nv = pselMax
		}
		if nv == old || c.psel.CompareAndSwap(old, nv) {
			return
		}
	}
}

// evictPolicy resolves the policy a shard evicts by right now: pinned
// caches and leader shards are fixed, followers consult the selector.
func (c *Cache) evictPolicy(sh *cacheShard) Policy {
	switch c.policy {
	case PolicyLRU, PolicyCost:
		return c.policy
	}
	switch sh.role {
	case roleLeaderLRU:
		return PolicyLRU
	case roleLeaderCost:
		return PolicyCost
	}
	return c.followerPolicy()
}

// evictLocked drops entries until the shard respects its quota. Called
// with sh.mu held, right after an insertion, so at most a few iterations
// run. Evicting an in-flight entry is safe: its waiters hold the
// *cacheEntry and are woken by the computing goroutine regardless of map
// membership.
func (c *Cache) evictLocked(sh *cacheShard) {
	for sh.bounded && len(sh.m) > sh.cap {
		victim := sh.lru.Back()
		if c.evictPolicy(sh) == PolicyCost {
			victim = sh.cheapestLocked()
		}
		if victim == nil {
			return
		}
		sh.lru.Remove(victim)
		delete(sh.m, victim.Value.(*cacheEntry).key)
		sh.evictions++
	}
}

// cheapestLocked returns the published entry that was cheapest to compute
// (the least loss to recompute later). In-flight entries — cost still
// unknown — are skipped, which also protects the entry whose insertion
// triggered this eviction; when every entry is in flight it falls back to
// the LRU victim. The scan is linear in the shard's quota, which the shard
// count keeps small.
func (sh *cacheShard) cheapestLocked() *list.Element {
	var best *list.Element
	bestCost := int64(math.MaxInt64)
	for el := sh.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if cost := e.cost.Load(); cost >= 0 && cost < bestCost {
			best, bestCost = el, cost
		}
	}
	if best == nil {
		return sh.lru.Back()
	}
	return best
}

// do returns the result for key, computing it with compute on first
// arrival. hit reports whether an existing (possibly still in-flight)
// computation was reused. The returned Result is an independent deep copy
// of the stored value — callers may mutate it freely without corrupting
// the memoized mapping for later hits. Failed computations return the
// stored Result untouched (the zero value), preserving bit-identity with a
// direct core.Solve call.
//
// do never deadlocks waiters: the entry is published via defer even when
// compute panics, in which case the panic is re-published as the entry's
// error (with the stack attached) to the computing caller and every waiter
// alike. A long-running process thus survives a poisoned request without
// wedging every future request that hashes to the same key.
func (c *Cache) do(key string, compute func() (core.Result, error)) (res core.Result, err error, hit bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		e := el.Value.(*cacheEntry)
		sh.lru.MoveToFront(el)
		sh.hits++
		sh.mu.Unlock()
		<-e.ready
		return cloneStored(e.res, e.err), e.err, true
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.cost.Store(-1)
	sh.m[key] = sh.lru.PushFront(e)
	sh.misses++
	c.evictLocked(sh)
	sh.mu.Unlock()
	if c.policy == PolicyAdaptive {
		// A leader miss is one vote against its pinned policy: misses in
		// the LRU leaders push the selector toward cost-aware eviction
		// and vice versa (the DRRIP set-dueling rule).
		switch sh.role {
		case roleLeaderLRU:
			c.nudgePSEL(+1)
		case roleLeaderCost:
			c.nudgePSEL(-1)
		}
	}

	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("batch: memoized computation panicked: %v\n%s", r, debug.Stack())
		}
		// The observed solve duration is the entry's recompute cost; it
		// must land before waiters wake so cost-aware eviction never sees
		// a published entry without one.
		e.cost.Store(int64(time.Since(start)))
		close(e.ready)
		if e.err == nil && e.res.Preempted {
			c.forget(key, e)
		}
		res, err = cloneStored(e.res, e.err), e.err
	}()
	e.res, e.err = compute()
	return // res, err are assigned by the deferred publisher
}

// forget removes an entry from its shard if it is still the installed
// value for key. Preempted (budget-expired) results are published to any
// waiters already parked on the entry — they shared the same overloaded
// window — but never retained: whether a wall-clock deadline fired is a
// property of scheduler timing, not of the key, so caching one would let a
// transient stall permanently poison budget-free solves of the same
// problem.
func (c *Cache) forget(key string, e *cacheEntry) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok && el.Value.(*cacheEntry) == e {
		sh.lru.Remove(el)
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

// cloneStored hands out an independent copy of a stored success; failures
// keep the zero Result as-is (cloning would turn its nil mapping slice into
// an empty one, breaking bit-identity with the sequential call).
func cloneStored(res core.Result, err error) core.Result {
	if err != nil {
		return res
	}
	return cloneResult(res)
}

// planCache is the compiled-plan tier: a single-flight LRU of *plan.Plan
// keyed by PlanKey. One lock suffices — plan lookups are orders of
// magnitude rarer than result lookups (one per distinct instance triple per
// batch, not one per job).
type planCache struct {
	mu  sync.Mutex
	cap int // 0 = unbounded
	m   map[string]*list.Element
	lru list.List // front = most recently used; values are *planEntry

	hits, misses, evictions int64
}

// planEntry is a single-flight compilation slot, published like cacheEntry:
// ready is closed once pl/err are final.
type planEntry struct {
	key   string
	ready chan struct{}
	pl    *plan.Plan
	err   error
}

// PlanFor returns the compiled plan for (inst, rule, model), compiling it
// on first arrival; concurrent requests for the same key wait for the one
// in-flight compilation. hit reports whether an existing (possibly
// in-flight) plan was reused. The returned *Plan is shared — plans are
// immutable and safe for concurrent use, so no copy is needed. A
// compilation failure (invalid instance) is memoized like a result error
// and returned to every waiter; the panic-publication discipline of the
// result tier applies here too.
func (c *Cache) PlanFor(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel) (pl *plan.Plan, err error, hit bool) {
	key := PlanKey(inst, rule, model)
	pc := &c.plans
	pc.mu.Lock()
	if el, ok := pc.m[key]; ok {
		e := el.Value.(*planEntry)
		pc.lru.MoveToFront(el)
		pc.hits++
		pc.mu.Unlock()
		<-e.ready
		//lint:allow memoalias plans are immutable by construction; sharing is the point of the tier
		return e.pl, e.err, true
	}
	e := &planEntry{key: key, ready: make(chan struct{})}
	pc.m[key] = pc.lru.PushFront(e)
	pc.misses++
	for pc.cap > 0 && len(pc.m) > pc.cap {
		back := pc.lru.Back()
		pc.lru.Remove(back)
		delete(pc.m, back.Value.(*planEntry).key)
		pc.evictions++
	}
	pc.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("batch: plan compilation panicked: %v\n%s", r, debug.Stack())
		}
		close(e.ready)
		//lint:allow memoalias plans are immutable by construction; sharing is the point of the tier
		pl, err = e.pl, e.err
	}()
	e.pl, e.err = plan.Compile(inst, rule, model)
	return // pl, err are assigned by the deferred publisher
}
