package batch

import (
	"container/list"
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/plan"
)

// numShards bounds lock contention. Keys are raw canonical byte encodings
// (see key.go), which are highly structured — nearby jobs share long
// prefixes — so the shard index comes from an FNV-1a hash of the whole key
// rather than from any fixed byte positions.
const numShards = 32

func shardOf(key string) int {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211 // FNV-1a prime
	}
	return int(h % numShards)
}

// Cache memoizes solver results by canonical job key. It is safe for
// concurrent use and performs single-flight deduplication: when several
// workers ask for the same key at once, exactly one runs the solver and the
// others block until its result is published. A Cache can outlive a single
// Solve call — hand the same Cache to successive batches (via
// Options.Cache) to reuse results across calls, e.g. between the points of
// two Pareto sweeps over overlapping candidate sets, or for the whole life
// of a server process.
//
// A cache built with NewCacheCap is bounded: once the configured entry cap
// is reached the least recently used entries are evicted, so a shared cache
// can serve a long-running process without growing without bound. The cap
// is a hard invariant — the cache never holds more than cap entries, even
// transiently — which is kept simple by allowing in-flight entries to be
// evicted too: waiters already hold the entry and still receive its result;
// only the single-flight dedup for late arrivals on that key is lost.
//
// Beyond final results, a Cache carries a second tier: compiled plans
// (internal/plan), memoized by the canonical (instance, rule, comm) key.
// The result tier answers exact repeats; the plan tier makes *related*
// requests on the same instance cheap — a Pareto sweep, an experiment
// table, a batch with many queries per instance all compile each distinct
// instance once and answer every query incrementally against the shared
// plan. The plan tier is bounded by the same entry cap (plans are far
// fewer than results: one per distinct instance triple, not per query).
//
// The zero value is not usable; call NewCache or NewCacheCap.
type Cache struct {
	shards [numShards]cacheShard
	cap    int // total entry cap; 0 = unbounded
	plans  planCache
}

type cacheShard struct {
	mu      sync.Mutex
	bounded bool
	cap     int // this shard's slice of the total cap, meaningful when bounded
	m       map[string]*list.Element
	lru     list.List // front = most recently used; values are *cacheEntry

	hits, misses, evictions int64
}

// cacheEntry is a single-flight slot: ready is closed once res/err are
// final, so waiters never observe a partially written result.
type cacheEntry struct {
	key   string
	ready chan struct{}
	res   core.Result
	err   error
}

// NewCache returns an empty, unbounded memoization cache.
func NewCache() *Cache { return NewCacheCap(0) }

// NewCacheCap returns an empty memoization cache holding at most maxEntries
// keys; beyond that the least recently used entries are evicted. A
// non-positive maxEntries means unbounded. The cap is distributed over the
// internal shards so their quotas sum exactly to maxEntries; keys hash
// uniformly across shards, so each shard sees an even share of the traffic.
func NewCacheCap(maxEntries int) *Cache {
	if maxEntries < 0 {
		maxEntries = 0
	}
	c := &Cache{cap: maxEntries}
	c.plans.cap = maxEntries
	c.plans.m = make(map[string]*list.Element)
	quota, extra := maxEntries/numShards, maxEntries%numShards
	for i := range c.shards {
		c.shards[i].m = make(map[string]*list.Element)
		if maxEntries > 0 {
			// A shard's quota may legitimately be zero when the total cap
			// is smaller than the shard count: entries hashing there are
			// evicted as soon as they are published, keeping the global
			// bound strict (bounded distinguishes that from "unbounded").
			c.shards[i].bounded = true
			c.shards[i].cap = quota
			if i < extra {
				c.shards[i].cap++
			}
		}
	}
	return c
}

// Cap returns the configured entry cap (0 = unbounded).
func (c *Cache) Cap() int { return c.cap }

// Len returns the number of memoized keys (including in-flight ones).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time snapshot of a Cache's counters.
type CacheStats struct {
	// Entries is the current number of memoized keys (including in-flight).
	Entries int
	// Cap is the configured entry cap; 0 = unbounded.
	Cap int
	// Hits counts do calls answered by an existing (possibly in-flight)
	// entry; Misses counts calls that ran the computation.
	Hits, Misses int64
	// Evictions counts entries dropped to keep the cache under its cap.
	Evictions int64
	// PlanEntries is the number of memoized compiled plans (including
	// in-flight compilations); PlanHits and PlanMisses count plan-tier
	// lookups, PlanEvictions the plans dropped to keep the tier under cap.
	PlanEntries          int
	PlanHits, PlanMisses int64
	PlanEvictions        int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PlanHitRate returns PlanHits / (PlanHits + PlanMisses), or 0 before any
// plan-tier lookup.
func (s CacheStats) PlanHitRate() float64 {
	total := s.PlanHits + s.PlanMisses
	if total == 0 {
		return 0
	}
	return float64(s.PlanHits) / float64(total)
}

// Stats returns a snapshot of the cache counters. The totals are summed
// shard by shard without a global lock, so under concurrent traffic the
// snapshot is approximate (each shard's contribution is itself consistent).
func (c *Cache) Stats() CacheStats {
	s := CacheStats{Cap: c.cap}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.m)
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Evictions += sh.evictions
		sh.mu.Unlock()
	}
	c.plans.mu.Lock()
	s.PlanEntries = len(c.plans.m)
	s.PlanHits = c.plans.hits
	s.PlanMisses = c.plans.misses
	s.PlanEvictions = c.plans.evictions
	c.plans.mu.Unlock()
	return s
}

// evictLocked drops least recently used entries until the shard respects
// its quota. Called with sh.mu held, right after an insertion, so at most
// a few iterations run. Evicting an in-flight entry is safe: its waiters
// hold the *cacheEntry and are woken by the computing goroutine regardless
// of map membership.
func (sh *cacheShard) evictLocked() {
	for sh.bounded && len(sh.m) > sh.cap {
		back := sh.lru.Back()
		if back == nil {
			return
		}
		sh.lru.Remove(back)
		delete(sh.m, back.Value.(*cacheEntry).key)
		sh.evictions++
	}
}

// do returns the result for key, computing it with compute on first
// arrival. hit reports whether an existing (possibly still in-flight)
// computation was reused. The returned Result is an independent deep copy
// of the stored value — callers may mutate it freely without corrupting
// the memoized mapping for later hits. Failed computations return the
// stored Result untouched (the zero value), preserving bit-identity with a
// direct core.Solve call.
//
// do never deadlocks waiters: the entry is published via defer even when
// compute panics, in which case the panic is re-published as the entry's
// error (with the stack attached) to the computing caller and every waiter
// alike. A long-running process thus survives a poisoned request without
// wedging every future request that hashes to the same key.
func (c *Cache) do(key string, compute func() (core.Result, error)) (res core.Result, err error, hit bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		e := el.Value.(*cacheEntry)
		sh.lru.MoveToFront(el)
		sh.hits++
		sh.mu.Unlock()
		<-e.ready
		return cloneStored(e.res, e.err), e.err, true
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	sh.m[key] = sh.lru.PushFront(e)
	sh.misses++
	sh.evictLocked()
	sh.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("batch: memoized computation panicked: %v\n%s", r, debug.Stack())
		}
		close(e.ready)
		if e.err == nil && e.res.Preempted {
			c.forget(key, e)
		}
		res, err = cloneStored(e.res, e.err), e.err
	}()
	e.res, e.err = compute()
	return // res, err are assigned by the deferred publisher
}

// forget removes an entry from its shard if it is still the installed
// value for key. Preempted (budget-expired) results are published to any
// waiters already parked on the entry — they shared the same overloaded
// window — but never retained: whether a wall-clock deadline fired is a
// property of scheduler timing, not of the key, so caching one would let a
// transient stall permanently poison budget-free solves of the same
// problem.
func (c *Cache) forget(key string, e *cacheEntry) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok && el.Value.(*cacheEntry) == e {
		sh.lru.Remove(el)
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

// cloneStored hands out an independent copy of a stored success; failures
// keep the zero Result as-is (cloning would turn its nil mapping slice into
// an empty one, breaking bit-identity with the sequential call).
func cloneStored(res core.Result, err error) core.Result {
	if err != nil {
		return res
	}
	return cloneResult(res)
}

// planCache is the compiled-plan tier: a single-flight LRU of *plan.Plan
// keyed by PlanKey. One lock suffices — plan lookups are orders of
// magnitude rarer than result lookups (one per distinct instance triple per
// batch, not one per job).
type planCache struct {
	mu  sync.Mutex
	cap int // 0 = unbounded
	m   map[string]*list.Element
	lru list.List // front = most recently used; values are *planEntry

	hits, misses, evictions int64
}

// planEntry is a single-flight compilation slot, published like cacheEntry:
// ready is closed once pl/err are final.
type planEntry struct {
	key   string
	ready chan struct{}
	pl    *plan.Plan
	err   error
}

// PlanFor returns the compiled plan for (inst, rule, model), compiling it
// on first arrival; concurrent requests for the same key wait for the one
// in-flight compilation. hit reports whether an existing (possibly
// in-flight) plan was reused. The returned *Plan is shared — plans are
// immutable and safe for concurrent use, so no copy is needed. A
// compilation failure (invalid instance) is memoized like a result error
// and returned to every waiter; the panic-publication discipline of the
// result tier applies here too.
func (c *Cache) PlanFor(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel) (pl *plan.Plan, err error, hit bool) {
	key := PlanKey(inst, rule, model)
	pc := &c.plans
	pc.mu.Lock()
	if el, ok := pc.m[key]; ok {
		e := el.Value.(*planEntry)
		pc.lru.MoveToFront(el)
		pc.hits++
		pc.mu.Unlock()
		<-e.ready
		//lint:allow memoalias plans are immutable by construction; sharing is the point of the tier
		return e.pl, e.err, true
	}
	e := &planEntry{key: key, ready: make(chan struct{})}
	pc.m[key] = pc.lru.PushFront(e)
	pc.misses++
	for pc.cap > 0 && len(pc.m) > pc.cap {
		back := pc.lru.Back()
		pc.lru.Remove(back)
		delete(pc.m, back.Value.(*planEntry).key)
		pc.evictions++
	}
	pc.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("batch: plan compilation panicked: %v\n%s", r, debug.Stack())
		}
		close(e.ready)
		//lint:allow memoalias plans are immutable by construction; sharing is the point of the tier
		pl, err = e.pl, e.err
	}()
	e.pl, e.err = plan.Compile(inst, rule, model)
	return // pl, err are assigned by the deferred publisher
}
