// Package batch is the concurrent batch-solving engine on top of
// core.Solve: it fans a slice of independent (instance, request) jobs
// across a bounded pool of worker goroutines, deduplicates identical jobs
// through a canonical-key memoization cache (see Key and Cache), and
// returns per-job results in input order together with aggregate
// statistics.
//
// Solve never reorders: results[i] always answers jobs[i], and a job that
// fails only poisons its own slot — the error is recorded per job and the
// remaining jobs still run. Identical jobs (same canonical key) are solved
// once no matter how they interleave across workers, which makes batch
// sweeps with repeated subproblems — Pareto frontier builds, experiment
// tables, parameter grids — cheap and, because core.Solve is deterministic
// per request, bit-identical to solving each job sequentially.
//
// SolveCtx is the context-aware form for long-running processes: when the
// context is cancelled mid-batch, jobs not yet solved return ctx.Err() in
// their slot, workers stop picking up new jobs, and the call returns
// promptly (jobs already inside the solver run to completion — the solver
// itself is not preemptible). A panic inside the solver is confined to the
// offending job's slot as an error rather than crashing the process, so a
// server can keep a shared cache alive across poisoned requests.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/plan"
)

// Job is one solver invocation: an instance and the request to solve on
// it. The instance is read, never written; many jobs may share one
// *Instance.
type Job struct {
	Inst *pipeline.Instance
	Req  core.Request
}

// Options configures a Solve call.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	// The pool never exceeds the number of jobs.
	Workers int
	// Cache, if non-nil, memoizes results across Solve calls. When nil,
	// Solve uses a private cache scoped to the call (still deduplicating
	// identical jobs within the batch).
	Cache *Cache
	// NoDedup disables memoization entirely: every job runs the solver,
	// even exact duplicates. Useful for benchmarking the raw pool.
	NoDedup bool
	// SolveBudget, if positive, is a per-job wall-clock budget: a job
	// whose solve outlives it degrades to the plan layer's reduced-effort
	// fallback (plan.SolveCtx — heuristic on NP-hard cells, tagged
	// Preempted) instead of blowing the whole batch's deadline. Preempted
	// results are never retained by the cache. Zero means no budget.
	// Ignored with NoDedup, which bypasses the plan layer.
	SolveBudget time.Duration
}

// JobResult pairs one job's Result with its error; exactly one of the two
// is meaningful, as with core.Solve. A job skipped because the SolveCtx
// context was cancelled carries that context's error.
type JobResult struct {
	Result core.Result
	Err    error
}

// Stats aggregates what a Solve call did.
type Stats struct {
	// Jobs is the number of jobs submitted.
	Jobs int
	// CacheHits counts jobs answered by reusing another job's computation
	// (within this batch, or from a previous batch via a shared Cache).
	CacheHits int
	// Errors counts jobs whose Err is non-nil.
	Errors int
	// PlanCompiles counts compiled plans built fresh for this batch's
	// result-cache misses; PlanReuses counts misses answered by a plan
	// already in the cache's plan tier (possibly compiled by an earlier
	// batch sharing the Cache). Both are zero with NoDedup, which bypasses
	// the plan layer entirely.
	PlanCompiles, PlanReuses int
	// Degraded counts successful jobs whose result came from the heuristic
	// because the exact path was abandoned (Result.Degraded); Preempted is
	// the subset forced by an expired SolveBudget (Result.Preempted).
	Degraded, Preempted int
	// Methods counts successful jobs per dispatch method, so callers can
	// see how a batch split across the paper's algorithms.
	Methods map[core.Method]int
	// Wall is the elapsed wall-clock time of the whole batch.
	Wall time.Duration
}

// Solve runs every job through core.Solve on a bounded worker pool and
// returns the per-job results in input order plus aggregate stats. It is
// safe for concurrent use (distinct calls may even share a Cache). The
// results are independent copies: mutating one job's mapping never affects
// another job's result or the cache.
func Solve(jobs []Job, opts Options) ([]JobResult, Stats) {
	return SolveCtx(context.Background(), jobs, opts)
}

// SolveCtx is Solve with cancellation: once ctx is done, jobs that have not
// started return ctx.Err() in their slot and the workers drain without
// solving anything further. Results for jobs that completed before the
// cancellation are kept. SolveCtx never returns a nil slice for a non-empty
// batch — every slot is filled with either a result or an error.
func SolveCtx(ctx context.Context, jobs []Job, opts Options) ([]JobResult, Stats) {
	start := time.Now()
	results := make([]JobResult, len(jobs))
	hits := make([]bool, len(jobs))

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var planCompiles, planReuses int64
	if opts.NoDedup {
		solveAll(ctx, jobs, workers, results)
	} else {
		cache := opts.Cache
		if cache == nil {
			cache = NewCache()
		}
		solveDeduped(ctx, jobs, workers, cache, opts.SolveBudget, results, hits, &planCompiles, &planReuses)
	}

	stats := Stats{
		Jobs:         len(jobs),
		PlanCompiles: int(planCompiles),
		PlanReuses:   int(planReuses),
		Methods:      make(map[core.Method]int),
		Wall:         time.Since(start),
	}
	for i := range results {
		if hits[i] {
			stats.CacheHits++
		}
		if results[i].Err != nil {
			stats.Errors++
		} else {
			stats.Methods[results[i].Result.Method]++
			if results[i].Result.Degraded {
				stats.Degraded++
			}
			if results[i].Result.Preempted {
				stats.Preempted++
			}
		}
	}
	return results, stats
}

// solveOne runs core.Solve, converting a panic into a per-job error so one
// poisoned request cannot take down a long-running process.
func solveOne(inst *pipeline.Instance, req core.Request) (res core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = core.Result{}
			err = fmt.Errorf("batch: solve panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return core.Solve(inst, req)
}

// solvePlanned answers a result-cache miss through the cache's plan tier:
// it fetches (compiling on first sight) the plan for the job's instance
// triple and issues the request as an incremental query against it. This is
// bit-identical to solveOne — Compile performs the same validation
// core.Solve would, and plan queries dispatch through core.SolvePrepared —
// and panics are confined the same way (PlanFor and Plan.Solve both publish
// panics as errors rather than unwinding the worker).
//
// A positive budget arms a per-job deadline: the query runs through
// plan.SolveCtx, which answers from the degraded path when the deadline
// fires first (the full solve keeps running in the background and heals
// the plan's memo).
func solvePlanned(ctx context.Context, cache *Cache, job Job, budget time.Duration, planCompiles, planReuses *int64) (core.Result, error) {
	pl, err, hit := cache.PlanFor(job.Inst, job.Req.Rule, job.Req.Model)
	if hit {
		atomic.AddInt64(planReuses, 1)
	} else {
		atomic.AddInt64(planCompiles, 1)
	}
	if err != nil {
		return core.Result{}, err
	}
	if budget <= 0 {
		return pl.Solve(plan.QueryOf(job.Req))
	}
	jctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	return pl.SolveCtx(jctx, plan.QueryOf(job.Req))
}

// solveAll runs every job individually, no memoization.
func solveAll(ctx context.Context, jobs []Job, workers int, results []JobResult) {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					results[i] = JobResult{Err: err}
					continue
				}
				res, err := solveOne(jobs[i].Inst, jobs[i].Req)
				results[i] = JobResult{Result: res, Err: err}
			}
		}()
	}
	dispatch(ctx, len(jobs), idx, func(i int) { results[i] = JobResult{Err: ctx.Err()} })
	wg.Wait()
}

// dispatch feeds item indices 0..n-1 into ch, stopping early when ctx is
// cancelled; undelivered items are handed to skip on the caller's
// goroutine (no worker ever received them, so writing their slots here is
// race-free). ch is closed on return.
func dispatch(ctx context.Context, n int, ch chan int, skip func(i int)) {
	defer close(ch)
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			for j := i; j < n; j++ {
				skip(j)
			}
			return
		case ch <- i:
		}
	}
}

// solveDeduped groups duplicate jobs by canonical key before dispatch, so
// one work item per distinct subproblem reaches the pool and a duplicate
// never parks a worker behind its group's in-flight computation (no
// head-of-line blocking when duplicated slow jobs mix with unique fast
// ones). The cache still single-flights across concurrent Solve calls that
// share it.
//
// Result-cache misses are answered through the cache's plan tier: the job's
// instance is compiled once per distinct (instance, rule, comm) triple and
// every query against it — this batch's and later ones' — reuses the
// compiled state. planCompiles/planReuses tally fresh compilations versus
// plan-tier hits for Stats.
func solveDeduped(ctx context.Context, jobs []Job, workers int, cache *Cache, budget time.Duration, results []JobResult, hits []bool, planCompiles, planReuses *int64) {
	keyOrder := make([]string, 0, len(jobs))
	groups := make(map[string][]int, len(jobs))
	for i := range jobs {
		k := Key(jobs[i].Inst, jobs[i].Req)
		if _, ok := groups[k]; !ok {
			keyOrder = append(keyOrder, k)
		}
		groups[k] = append(groups[k], i)
	}
	if workers > len(keyOrder) {
		workers = len(keyOrder)
	}
	skipGroup := func(g int) {
		for _, i := range groups[keyOrder[g]] {
			results[i] = JobResult{Err: ctx.Err()}
		}
	}
	var wg sync.WaitGroup
	tasks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range tasks {
				idxs := groups[keyOrder[g]]
				if ctx.Err() != nil {
					for _, i := range idxs {
						results[i] = JobResult{Err: ctx.Err()}
					}
					continue
				}
				job := jobs[idxs[0]]
				res, err, hit := cache.do(keyOrder[g], func() (core.Result, error) {
					return solvePlanned(ctx, cache, job, budget, planCompiles, planReuses)
				})
				for n, i := range idxs {
					jr := JobResult{Err: err}
					if err == nil {
						// cache.do already returned an independent copy;
						// the other slots of the group need their own so
						// mutating one job's mapping never leaks into a
						// duplicate's.
						if n == 0 {
							jr.Result = res
						} else {
							jr.Result = cloneResult(res)
						}
					}
					results[i] = jr
					hits[i] = hit || n > 0
				}
			}
		}()
	}
	dispatch(ctx, len(keyOrder), tasks, skipGroup)
	wg.Wait()
}

// cloneResult deep-copies the slice-bearing parts of a Result so cached
// values stay immutable no matter what callers do with their copies.
func cloneResult(r core.Result) core.Result {
	c := r
	c.Mapping = r.Mapping.Clone()
	if r.Metrics.AppPeriods != nil {
		c.Metrics.AppPeriods = append([]float64(nil), r.Metrics.AppPeriods...)
	}
	if r.Metrics.AppLatencies != nil {
		c.Metrics.AppLatencies = append([]float64(nil), r.Metrics.AppLatencies...)
	}
	return c
}
