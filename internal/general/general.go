// Package general implements the "general mappings" the paper deliberately
// excludes (Section 3.3): a processor may execute any number of stages,
// consecutive or not, taken from one or several applications. The paper
// gives two reasons for the exclusion, both of which this package makes
// executable:
//
//  1. Even the simplest mono-criterion problem — period minimization for a
//     single application on homogeneous uni-modal processors with no
//     communication — is NP-hard by a straightforward reduction from
//     2-partition. Encode2Partition builds that gadget and the test suite
//     machine-checks the iff-equivalence.
//
//  2. With communications, even *scheduling* a given general mapping is a
//     hard combinatorial problem (the paper's reference [1]). This package
//     therefore only evaluates general mappings on communication-free
//     instances, where the period is unambiguously the maximum processor
//     cycle time; Evaluate rejects instances with data transfers.
//
// For the communication-free case the package provides the exact
// exponential solver, the classical LPT (longest processing time) list
// heuristic with its 4/3-approximation guarantee on identical processors,
// and a comparison point against interval mappings (general mappings can
// only improve the optimal period, since interval mappings are a special
// case).
package general

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/fmath"
	"repro/internal/pipeline"
)

// ErrHasCommunication is returned when an instance has any non-zero data
// size: general mappings are only well defined without communications.
var ErrHasCommunication = errors.New("general: general mappings require a communication-free instance")

// Mapping assigns every stage of every application to a processor, with a
// fixed mode per processor. Processors may be reused freely.
type Mapping struct {
	// Assign[a][k] is the processor executing stage k of application a.
	Assign [][]int
	// Mode[u] is the execution mode of processor u (used or not).
	Mode []int
}

// NewMapping allocates an empty assignment shaped for inst, all modes at
// the fastest speed.
func NewMapping(inst *pipeline.Instance) Mapping {
	m := Mapping{Assign: make([][]int, len(inst.Apps)), Mode: make([]int, inst.Platform.NumProcessors())}
	for a := range inst.Apps {
		m.Assign[a] = make([]int, inst.Apps[a].NumStages())
	}
	for u := range m.Mode {
		m.Mode[u] = inst.Platform.Processors[u].NumModes() - 1
	}
	return m
}

// CheckInstance verifies the instance is communication-free.
func CheckInstance(inst *pipeline.Instance) error {
	for a := range inst.Apps {
		if inst.Apps[a].In != 0 {
			return ErrHasCommunication
		}
		for _, st := range inst.Apps[a].Stages {
			if st.Out != 0 {
				return ErrHasCommunication
			}
		}
	}
	return nil
}

// Validate checks the assignment's shape and processor/mode validity.
func (m *Mapping) Validate(inst *pipeline.Instance) error {
	if err := CheckInstance(inst); err != nil {
		return err
	}
	if len(m.Assign) != len(inst.Apps) {
		return fmt.Errorf("general: assignment covers %d applications, instance has %d", len(m.Assign), len(inst.Apps))
	}
	p := inst.Platform.NumProcessors()
	for a := range m.Assign {
		if len(m.Assign[a]) != inst.Apps[a].NumStages() {
			return fmt.Errorf("general: application %d has %d assignments, want %d", a, len(m.Assign[a]), inst.Apps[a].NumStages())
		}
		for k, u := range m.Assign[a] {
			if u < 0 || u >= p {
				return fmt.Errorf("general: stage %d of application %d on unknown processor %d", k, a, u)
			}
		}
	}
	if len(m.Mode) != p {
		return fmt.Errorf("general: %d modes for %d processors", len(m.Mode), p)
	}
	for u, mode := range m.Mode {
		if mode < 0 || mode >= inst.Platform.Processors[u].NumModes() {
			return fmt.Errorf("general: invalid mode %d on processor %d", mode, u)
		}
	}
	return nil
}

// loads returns the weighted work assigned to each processor: stage works
// scaled by W_a, divided by the processor speed at the end.
func (m *Mapping) loads(inst *pipeline.Instance) []float64 {
	load := make([]float64, inst.Platform.NumProcessors())
	for a := range m.Assign {
		w := inst.Apps[a].EffectiveWeight()
		for k, u := range m.Assign[a] {
			load[u] += w * inst.Apps[a].Stages[k].Work
		}
	}
	return load
}

// Period returns the weighted global period: the maximum processor cycle
// time, i.e. max_u (assigned weighted work) / speed_u. With per-application
// weights this matches Equation 6 when every application's stages on a
// processor are scaled by its own weight; for uniform weights it is the
// plain cycle time.
//
// Note: with several applications of different weights sharing a processor
// the weighted maximum of Equation 6 is not separable per processor; this
// implementation uses the standard scheduling-theoretic reading (scale each
// stage's work by its application's weight), which coincides with the paper
// for W_a = 1.
func (m *Mapping) Period(inst *pipeline.Instance) float64 {
	var t float64
	for u, l := range m.loads(inst) {
		if l == 0 {
			continue
		}
		s := inst.Platform.Processors[u].Speeds[m.Mode[u]]
		t = math.Max(t, l/s)
	}
	return t
}

// Energy returns the total power of processors with at least one stage.
func (m *Mapping) Energy(inst *pipeline.Instance) float64 {
	load := m.loads(inst)
	var e float64
	for u, l := range load {
		if l > 0 {
			e += inst.Energy.Power(inst.Platform.Processors[u].Speeds[m.Mode[u]])
		}
	}
	return e
}

// stageRef identifies one stage.
type stageRef struct {
	app, k int
	work   float64 // weighted work
}

func allStages(inst *pipeline.Instance) []stageRef {
	var out []stageRef
	for a := range inst.Apps {
		w := inst.Apps[a].EffectiveWeight()
		for k := range inst.Apps[a].Stages {
			out = append(out, stageRef{a, k, w * inst.Apps[a].Stages[k].Work})
		}
	}
	return out
}

// ExactMinPeriod exhaustively minimizes the period over general mappings at
// fastest modes (exponential: p^N assignments with branch-and-bound
// pruning). limit caps the number of explored leaves.
func ExactMinPeriod(inst *pipeline.Instance, limit int64) (Mapping, float64, error) {
	if err := CheckInstance(inst); err != nil {
		return Mapping{}, 0, err
	}
	stages := allStages(inst)
	// Heaviest first: better pruning.
	sort.SliceStable(stages, func(i, j int) bool { return stages[i].work > stages[j].work })
	p := inst.Platform.NumProcessors()
	speeds := make([]float64, p)
	for u := 0; u < p; u++ {
		speeds[u] = inst.Platform.Processors[u].MaxSpeed()
	}
	best := math.Inf(1)
	bestLoad := make([]float64, p)
	load := make([]float64, p)
	left := limit
	var rec func(i int, cur float64) error
	rec = func(i int, cur float64) error {
		//lint:allow floatcmp exact dominance pruning; a tolerant GE could prune a strictly better branch
		if cur >= best {
			return nil // dominated
		}
		if i == len(stages) {
			left--
			if left < 0 {
				return fmt.Errorf("general: search limit exceeded")
			}
			best = cur
			copy(bestLoad, load)
			return nil
		}
		seenEmpty := false // identical empty processors are symmetric
		for u := 0; u < p; u++ {
			if load[u] == 0 {
				//lint:allow floatcmp symmetry breaking requires bit-identical input speeds, not computed values
				if seenEmpty && speeds[u] == speeds[0] && inst.Platform.HomogeneousProcessors() {
					continue
				}
				seenEmpty = true
			}
			load[u] += stages[i].work
			nv := math.Max(cur, load[u]/speeds[u])
			if err := rec(i+1, nv); err != nil {
				return err
			}
			load[u] -= stages[i].work
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return Mapping{}, 0, err
	}
	// Re-run a greedy reconstruction: assign stages first-fit into the
	// best load profile. Simpler: redo the search recording assignments.
	m := NewMapping(inst)
	asg := make([]int, len(stages))
	cur := make([]float64, p)
	var rebuild func(i int) bool
	rebuild = func(i int) bool {
		if i == len(stages) {
			return true
		}
		for u := 0; u < p; u++ {
			cur[u] += stages[i].work
			ok := fmath.LE(cur[u]/speeds[u], best)
			if ok {
				asg[i] = u
				if rebuild(i + 1) {
					return true
				}
			}
			cur[u] -= stages[i].work
		}
		return false
	}
	if !rebuild(0) {
		return Mapping{}, 0, fmt.Errorf("general: internal error rebuilding optimal assignment")
	}
	for i, r := range stages {
		m.Assign[r.app][r.k] = asg[i]
	}
	return m, best, nil
}

// LPT is the longest-processing-time list heuristic: stages in decreasing
// weighted work, each placed on the processor whose resulting finish time
// is smallest. On identical processors its period is at most 4/3 - 1/(3p)
// times the optimum (Graham's bound).
func LPT(inst *pipeline.Instance) (Mapping, float64, error) {
	if err := CheckInstance(inst); err != nil {
		return Mapping{}, 0, err
	}
	stages := allStages(inst)
	sort.SliceStable(stages, func(i, j int) bool { return stages[i].work > stages[j].work })
	p := inst.Platform.NumProcessors()
	m := NewMapping(inst)
	load := make([]float64, p)
	for _, r := range stages {
		bestU, bestV := 0, math.Inf(1)
		for u := 0; u < p; u++ {
			s := inst.Platform.Processors[u].MaxSpeed()
			if v := (load[u] + r.work) / s; v < bestV {
				bestU, bestV = u, v
			}
		}
		load[bestU] += r.work
		m.Assign[r.app][r.k] = bestU
	}
	return m, m.Period(inst), nil
}

// Encode2Partition builds the paper's Section 3.3 hardness gadget: one
// application whose stage works are the items, two identical unit-speed
// processors, no communication. A general mapping of period <= sum/2
// exists iff the 2-partition instance is solvable.
func Encode2Partition(items []int) pipeline.Instance {
	app := pipeline.Application{Name: "2partition", Weight: 1}
	for _, a := range items {
		app.Stages = append(app.Stages, pipeline.Stage{Work: float64(a)})
	}
	return pipeline.Instance{
		Apps:     []pipeline.Application{app},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
}
