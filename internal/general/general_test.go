package general

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/algo/interval"
	"repro/internal/fmath"
	"repro/internal/npc"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func noCommInstance(rng *rand.Rand, apps, maxStages, procs, maxWork int) pipeline.Instance {
	inst := workload.MustInstance(rng, workload.Config{
		Apps: apps, MinStages: 1, MaxStages: maxStages,
		Procs: procs, Modes: 1,
		Class: pipeline.FullyHomogeneous, MaxWork: maxWork, MaxData: 0, MaxSpeed: 4,
	})
	return inst
}

func TestCheckInstanceRejectsCommunication(t *testing.T) {
	inst := pipeline.MotivatingExample()
	if err := CheckInstance(&inst); !errors.Is(err, ErrHasCommunication) {
		t.Errorf("communicating instance accepted: %v", err)
	}
	if _, _, err := ExactMinPeriod(&inst, 1000); !errors.Is(err, ErrHasCommunication) {
		t.Errorf("exact solver accepted communication: %v", err)
	}
	if _, _, err := LPT(&inst); !errors.Is(err, ErrHasCommunication) {
		t.Errorf("LPT accepted communication: %v", err)
	}
}

// Test2PartitionGadget: period <= S/2 achievable iff 2-partition solvable —
// the executable version of the paper's Section 3.3 remark.
func Test2PartitionGadget(t *testing.T) {
	cases := []struct {
		items    []int
		solvable bool
	}{
		{[]int{1, 2, 3}, true},
		{[]int{2, 3, 4, 5}, true},
		{[]int{1, 2, 4}, false},
		{[]int{1, 1, 4}, false},
		{[]int{3, 3, 3, 3}, true},
	}
	for i, c := range cases {
		tp := npc.TwoPartition{Items: c.items}
		if _, got := tp.Solve(); got != c.solvable {
			t.Fatalf("case %d: fixture broken", i)
		}
		inst := Encode2Partition(c.items)
		m, period, err := ExactMinPeriod(&inst, 1_000_000)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if err := m.Validate(&inst); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		half := float64(tp.Sum()) / 2
		if got := fmath.LE(period, half); got != c.solvable {
			t.Errorf("case %d: period %g <= %g is %v, want %v", i, period, half, got, c.solvable)
		}
	}
}

// TestGeneralNeverWorseThanInterval: interval mappings are a special case,
// so the general optimum is at most the interval optimum; and on instances
// engineered with interleaved heavy/light stages it is strictly better.
func TestGeneralNeverWorseThanInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		inst := noCommInstance(rng, 1+rng.Intn(2), 4, 3, 8)
		_, ivOpt, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap)
		if err != nil {
			t.Fatal(err)
		}
		_, genOpt, err := ExactMinPeriod(&inst, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if fmath.GT(genOpt, ivOpt) {
			t.Fatalf("trial %d: general optimum %g worse than interval optimum %g", trial, genOpt, ivOpt)
		}
	}
	// Alternating heavy/light: works (4,1,4,1) on 2 unit processors.
	// Interval mappings cannot split better than {4,1},{4,1}: period 5.
	// The general mapping {4,1... pairs the two 4s apart: {4,1},{4,1} vs
	// general {4,1} {4,1}: equal here; use (4,4,1,... works (4,1,1,4):
	// interval best split {4,1},{1,4} = 5; general {4,1},{1,4}... also 5.
	// Works (3,2,3,2) on 2 procs: interval {3,2},{3,2} = 5; general
	// {3,2},{3,2} = 5 — balanced anyway. Use (5,1,1,5,... works
	// (5,1,5,1): interval {5,1},{5,1}=6; general {5,1},{5,1}=6. Hmm:
	// total 12, perfect split 6 either way. Works (1,5,5,1): interval
	// splits: {1,5},{5,1} = 6 = general. For a strict gap: (1,5,1) on 2
	// procs: interval: {1,5},{1} = 6 or {1},{5,1} = 6; general {5},{1,1}
	// = 5.
	app := pipeline.Application{Weight: 1, Stages: []pipeline.Stage{{Work: 1}, {Work: 5}, {Work: 1}}}
	inst := pipeline.Instance{
		Apps:     []pipeline.Application{app},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	_, ivOpt, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	_, genOpt, err := ExactMinPeriod(&inst, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(ivOpt, 6) || !fmath.EQ(genOpt, 5) {
		t.Errorf("interval %g (want 6), general %g (want 5): the strict-gap witness broke", ivOpt, genOpt)
	}
}

// TestLPTWithinGrahamBound: LPT is within 4/3 - 1/(3p) of the optimum on
// identical processors.
func TestLPTWithinGrahamBound(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 40; trial++ {
		procs := 2 + rng.Intn(2)
		inst := noCommInstance(rng, 1+rng.Intn(2), 5, procs, 9)
		m, got, err := LPT(&inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(&inst); err != nil {
			t.Fatal(err)
		}
		if !fmath.EQ(m.Period(&inst), got) {
			t.Fatalf("trial %d: reported period mismatch", trial)
		}
		_, opt, err := ExactMinPeriod(&inst, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		bound := opt * (4.0/3.0 - 1.0/(3.0*float64(procs)))
		if fmath.GT(got, bound) {
			t.Errorf("trial %d: LPT %g exceeds Graham bound %g (opt %g, p=%d)", trial, got, bound, opt, procs)
		}
		if fmath.LT(got, opt) {
			t.Errorf("trial %d: LPT %g beats the oracle %g", trial, got, opt)
		}
	}
}

func TestEnergyCountsOnlyLoadedProcessors(t *testing.T) {
	inst := Encode2Partition([]int{2, 2})
	m := NewMapping(&inst)
	m.Assign[0][0] = 0
	m.Assign[0][1] = 0 // both stages on P0: P1 idle
	if err := m.Validate(&inst); err != nil {
		t.Fatal(err)
	}
	if got := m.Energy(&inst); !fmath.EQ(got, 1) {
		t.Errorf("energy = %g, want 1 (one unit-speed processor)", got)
	}
	if got := m.Period(&inst); !fmath.EQ(got, 4) {
		t.Errorf("period = %g, want 4", got)
	}
}

func TestWeightedLoads(t *testing.T) {
	inst := pipeline.Instance{
		Apps: []pipeline.Application{
			{Weight: 2, Stages: []pipeline.Stage{{Work: 3}}},
			{Weight: 1, Stages: []pipeline.Stage{{Work: 4}}},
		},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{2}, 1, 2),
		Energy:   pipeline.DefaultEnergy,
	}
	m := NewMapping(&inst)
	m.Assign[0][0] = 0
	m.Assign[1][0] = 1
	// Weighted works: 6 on P0, 4 on P1; speeds 2 => period 3.
	if got := m.Period(&inst); !fmath.EQ(got, 3) {
		t.Errorf("weighted period = %g, want 3", got)
	}
}

func TestValidateRejections(t *testing.T) {
	inst := Encode2Partition([]int{1, 2})
	m := NewMapping(&inst)
	m.Assign[0][1] = 9
	if err := m.Validate(&inst); err == nil {
		t.Error("unknown processor accepted")
	}
	m = NewMapping(&inst)
	m.Mode[0] = 7
	if err := m.Validate(&inst); err == nil {
		t.Error("invalid mode accepted")
	}
	m = NewMapping(&inst)
	m.Assign = m.Assign[:0]
	if err := m.Validate(&inst); err == nil {
		t.Error("short assignment accepted")
	}
}
