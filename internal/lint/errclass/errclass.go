// Package errclass flags error-handling patterns that defeat the error
// classifier: the HTTP layer (internal/server) routes status codes by
// probing errors with errors.Is (core.ErrInfeasible, core.ErrUnsupported,
// context deadline/cancellation), and the solver wraps classified causes
// into enriched messages (e.g. core.wrap's "%w: %v" around ErrInfeasible).
// Both halves of that contract break mechanically:
//
//  1. `err == pkg.ErrSentinel` direct comparisons are false for wrapped
//     errors. Once any layer annotates the cause with fmt.Errorf("...: %w"),
//     every direct comparison upstream silently stops matching — use
//     errors.Is. (Comparisons to nil are fine, as is io.EOF, which the
//     io.Reader contract promises arrives unwrapped.)
//  2. fmt.Errorf calls that format an error argument without a single %w
//     verb flatten the cause to text: errors.Is can no longer see through
//     the new error, so the server's classifier reports 500 where it should
//     report 422 or 504. Deliberate boundary-erasure is suppressed with
//     //lint:allow errclass <why the cause must not leak>.
//
// The pass covers the whole module: cmd/ tools sit at the top of the call
// stack, but they still branch on error identity (exit codes, retries),
// so flattened causes bite there too.
package errclass

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the errclass pass.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc:  "flags direct sentinel-error comparisons (use errors.Is) and fmt.Errorf calls that format an error without %w",
	Run:  run,
}

// inScope covers the whole module; fixture packages (no repro/ prefix)
// are always in scope.
func inScope(path string) bool {
	return true
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkComparison(pass, errType, n.X, n.Y, n.OpPos)
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, errType, n)
			case *ast.CallExpr:
				checkErrorf(pass, errType, n)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags x ==/!= y when either side names a package-level
// error sentinel.
func checkComparison(pass *analysis.Pass, errType types.Type, x, y ast.Expr, pos token.Pos) {
	for _, side := range [...]ast.Expr{x, y} {
		if v := sentinelVar(pass, errType, side); v != nil {
			pass.Reportf(pos,
				"direct comparison to sentinel %s misses wrapped errors and breaks the server's error classification; use errors.Is(err, %s)",
				v.Name(), types.ExprString(side))
			return
		}
	}
}

// checkSwitch flags `switch err { case ErrX: }`, which compares with ==.
func checkSwitch(pass *analysis.Pass, errType types.Type, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	t := pass.TypesInfo.Types[sw.Tag].Type
	if t == nil || !types.Identical(t, errType) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if v := sentinelVar(pass, errType, e); v != nil {
				pass.Reportf(e.Pos(),
					"switch case compares directly to sentinel %s and misses wrapped errors; use an if/else chain with errors.Is",
					v.Name())
			}
		}
	}
}

// sentinelVar returns the package-level error variable expr refers to, or
// nil. io.EOF is exempt: the io.Reader contract returns it unwrapped.
func sentinelVar(pass *analysis.Pass, errType types.Type, expr ast.Expr) *types.Var {
	var obj types.Object
	switch e := expr.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Identical(v.Type(), errType) {
		return nil
	}
	if v.Pkg().Path() == "io" && v.Name() == "EOF" {
		return nil
	}
	return v
}

// checkErrorf flags fmt.Errorf calls whose format has no %w while one of
// the variadic arguments is an error.
func checkErrorf(pass *analysis.Pass, errType types.Type, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.Types[arg].Type
		if t == nil {
			continue
		}
		if types.Identical(t, errType) || implementsError(t, errType) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats error %s without %%w: the cause is flattened to text and errors.Is/errors.As (and the server's status mapping) can no longer see it",
				types.ExprString(arg))
			return
		}
	}
}

func implementsError(t types.Type, errType types.Type) bool {
	iface, ok := errType.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface)
}
