package errclass_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errclass"
)

// TestGolden drives the analyzer through its fixture package under
// internal/lint/testdata/src/errclass: every line marked with a want
// comment must fire, every unmarked line must stay quiet.
func TestGolden(t *testing.T) {
	analysistest.Run(t, "../../..", "../testdata/src/errclass", errclass.Analyzer)
}
