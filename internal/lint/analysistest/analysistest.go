// Package analysistest runs one analyzer over a golden-test fixture
// directory and compares its findings against `// want "regexp"` comments,
// mirroring the golang.org/x/tools/go/analysis/analysistest contract the
// pipelint suite would use if the module carried the x/tools dependency.
//
// A fixture is a plain directory of Go files under
// internal/lint/testdata/src/<analyzer>/ — the go tool ignores testdata
// directories, so fixtures may violate the invariants freely without
// breaking the build. Every line expected to trigger the analyzer carries
// a trailing comment of the form
//
//	bad() // want "regexp matching the diagnostic"
//
// (several quoted regexps may follow one want). The harness fails the test
// on any unmatched expectation and on any unexpected diagnostic, so each
// golden file proves both that the analyzer fires where it must and stays
// quiet where it must not — including on sites silenced by a
// //lint:allow directive, which the driver filters before comparison.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// Run loads the fixture directory dir (resolving imports against the
// module at moduleDir), applies analyzer a, and reports any mismatch
// between the diagnostics and the fixture's want comments as test errors.
func Run(t *testing.T, moduleDir, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(moduleDir, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkg.Fset, pkg.Files)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants extracts the `// want "re" ["re" ...]` expectations of the
// fixture's comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				n := 0
				for rest != "" {
					if rest[0] != '"' {
						t.Fatalf("%s:%d: malformed want: %q", pos.Filename, pos.Line, c.Text)
					}
					q, err := quotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want %q: %v", pos.Filename, pos.Line, rest, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: compiling want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
					n++
					rest = strings.TrimSpace(rest[len(q):])
				}
				if n == 0 {
					t.Fatalf("%s:%d: want comment with no patterns: %q", pos.Filename, pos.Line, c.Text)
				}
			}
		}
	}
	return wants
}

// quotedPrefix returns the leading Go double-quoted string literal of s.
func quotedPrefix(s string) (string, error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated string literal")
}
