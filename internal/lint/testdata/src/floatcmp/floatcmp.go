// Fixture for the floatcmp analyzer: equality-adjacent comparisons between
// computed floats must go through fmath; strict < / > and comparisons
// against constants are exempt.
package floatcmp

func eq(a, b float64) bool {
	return a == b // want "raw float comparison =="
}

func neq(a, b float64) bool {
	return a != b // want "raw float comparison !="
}

func le(a, b float64) bool {
	return a <= b // want "raw float comparison <="
}

func ge(a, b float64) bool {
	return a >= b // want "raw float comparison >="
}

func derived(xs []float64) bool {
	return xs[0]/xs[1] >= xs[2]*2 // want "raw float comparison >="
}

func strictOK(a, b float64) bool {
	return a < b || a > b
}

func constOK(a float64) bool {
	return a == 0 || a >= 1.5
}

func intOK(a, b int) bool {
	return a == b && a <= b
}

func allowExact(a, b float64) bool {
	//lint:allow floatcmp fixture: bit-identity intended here
	return a == b
}
