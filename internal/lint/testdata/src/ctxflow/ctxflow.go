// Fixture for the ctxflow analyzer: context parameters must flow, and no
// fresh root context may be minted while a caller's context is in scope.
package ctxflow

import "context"

func dropped(ctx context.Context, n int) int { // want "context parameter ctx is dropped"
	return n + 1
}

func threaded(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return nil
}

func blankOK(_ context.Context, n int) int {
	return n
}

func freshRoot(ctx context.Context) error {
	_ = ctx
	return work(context.Background()) // want "context.Background\\(\\) minted while ctx is in scope"
}

func freshTODO(ctx context.Context) error {
	_ = ctx
	return work(context.TODO()) // want "context.TODO\\(\\) minted while ctx is in scope"
}

func rootAtTopOK() error {
	return work(context.Background())
}

func workers(ctx context.Context) {
	go func(ctx context.Context) { // want "context parameter ctx is dropped"
		println("worker ignoring its context")
	}(ctx)
	go func() {
		<-ctx.Done() // capturing the enclosing context counts as use
	}()
}
