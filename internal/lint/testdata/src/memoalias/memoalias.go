// Fixture for the memoalias analyzer: single-flight entries (structs with
// a `ready chan struct{}` field) must not leak aliasable fields raw.
package memoalias

type result struct {
	Mapping []int
	Value   float64
}

type entry struct {
	key   string
	ready chan struct{}
	res   result
	err   error
}

func cloneResult(r result) result {
	out := r
	out.Mapping = append([]int(nil), r.Mapping...)
	return out
}

func cloneStored(r result, err error) result {
	if err != nil {
		return r
	}
	return cloneResult(r)
}

func badReturn(e *entry) (result, error) {
	<-e.ready
	return e.res, e.err // want "memoized e.res escapes"
}

func badStore(e *entry) []int {
	m := e.res.Mapping // want "memoized e.res.Mapping escapes"
	return m
}

func goodClone(e *entry) (result, error) {
	<-e.ready
	return cloneStored(e.res, e.err), e.err
}

func goodWrite(e *entry, r result, err error) {
	e.res, e.err = r, err
}

func goodScalar(e *entry) float64 {
	return e.res.Value
}

func goodKey(e *entry) string {
	return e.key
}

type planEntry struct {
	ready chan struct{}
	pl    *result
}

func badShared(e *planEntry) *result {
	return e.pl // want "memoized e.pl escapes"
}

func allowShared(e *planEntry) *result {
	//lint:allow memoalias fixture: the pointee is immutable by construction
	return e.pl
}

type plain struct {
	res result
}

func notAnEntry(p *plain) result {
	return p.res
}
