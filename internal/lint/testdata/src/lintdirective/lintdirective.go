// Fixture for the driver's suppression handling: a well-formed directive
// silences its line and the next; a directive without a justification is
// itself a finding and suppresses nothing.
package lintdirective

func malformed(a, b float64) bool { //lint:allow floatcmp
	return a == b
}

func justified(a, b float64) bool {
	//lint:allow floatcmp fixture: exactness intended
	return a == b
}

func trailing(a, b float64) bool {
	return a == b //lint:allow floatcmp fixture: exactness intended
}

func unsuppressed(a, b float64) bool {
	return a == b
}

func wrongAnalyzer(a, b float64) bool {
	//lint:allow determinism fixture: names a different analyzer
	return a == b
}
