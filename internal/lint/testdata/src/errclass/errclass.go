// Fixture for the errclass analyzer: sentinel errors are probed with
// errors.Is, and fmt.Errorf must wrap (not flatten) its error causes.
package errclass

import (
	"errors"
	"fmt"
	"io"
)

var ErrNotFound = errors.New("not found")

func direct(err error) bool {
	return err == ErrNotFound // want "direct comparison to sentinel ErrNotFound"
}

func directNeq(err error) bool {
	return ErrNotFound != err // want "direct comparison to sentinel ErrNotFound"
}

func viaIsOK(err error) bool {
	return errors.Is(err, ErrNotFound)
}

func nilOK(err error) bool {
	return err == nil
}

func eofOK(err error) bool {
	return err == io.EOF
}

func switchCase(err error) int {
	switch err {
	case nil:
		return 0
	case ErrNotFound: // want "switch case compares directly to sentinel ErrNotFound"
		return 1
	}
	return 2
}

func flatten(err error) error {
	return fmt.Errorf("solve failed: %v", err) // want "without %w"
}

func wrappedOK(err error) error {
	return fmt.Errorf("solve failed: %w", err)
}

func noErrArgsOK(n int) error {
	return fmt.Errorf("bad count %d", n)
}

func allowFlatten(err error) error {
	//lint:allow errclass fixture: this boundary intentionally erases the cause
	return fmt.Errorf("opaque: %v", err)
}
