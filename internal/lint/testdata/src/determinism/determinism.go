// Fixture for the determinism analyzer: no map-order, wall-clock or
// process-global randomness in deterministic solver packages.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func mapOrder(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "map iteration order"
		total += v
	}
	return total
}

func sortedKeysAllowed(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	//lint:allow determinism keys are sorted immediately after collection
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func globalRand() int {
	return rand.Intn(10) // want "process-global random source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global random source"
}

func seededOK(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func sliceOK(xs []float64) float64 {
	t := 0.0
	for _, v := range xs {
		t += v
	}
	return t
}
