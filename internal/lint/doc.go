// Package lint is the pipelint suite: five repo-specific static analyzers
// that mechanically enforce the solver's load-bearing safety invariants.
// Every analyzer encodes a bug class this reproduction has actually
// shipped and fixed (see CHANGES.md, PRs 2-4), so the suite is the
// compile-time complement to the runtime differential oracle
// (internal/diffcheck): the oracle proves the invariants held on 1080
// scenarios after the fact; pipelint proves the code cannot drift away
// from them on any CI run.
//
// The analyzers:
//
//   - memoalias (internal/lint/memoalias) guards the memo layers
//     (internal/batch, internal/plan): an aliasable value (slice, map or
//     pointer-bearing) read out of a single-flight cache entry must pass
//     through a clone function before it escapes, or every later hit on
//     that key observes the caller's mutations. This is the bug fixed in
//     PR 2 (batch cache) and designed against in PR 4 (plan memo).
//
//   - ctxflow guards cancellation plumbing everywhere: a context.Context
//     parameter that the function body never touches cannot cancel
//     anything (the PR 2/4 SolveBatchCtx/Table*Ctx retrofits), and a
//     context.Background()/TODO() minted while a caller's context is in
//     scope silently detaches the work below it.
//
//   - errclass guards the error-classification contract between the
//     solver and the HTTP layer: internal/server maps core.ErrInfeasible,
//     core.ErrUnsupported and context errors to status codes via
//     errors.Is, which direct `err == ErrX` comparisons and fmt.Errorf
//     calls that format a cause without %w both break.
//
//   - floatcmp guards tolerant comparison: ==, !=, <= and >= between two
//     computed floats outside internal/fmath (which owns EQ/LE/GE) flip
//     feasibility verdicts on round-off noise. Strict < and > (argmin
//     accumulation) and comparisons against constants are exempt.
//
//   - determinism guards (seed,index) reproducibility in the solver,
//     plan, generator, replication and simulator packages: map iteration
//     feeding result ordering, time.Now, and the process-global math/rand
//     source all make identical inputs produce different outputs.
//
// # Running the suite
//
// `make lint` (or `go run ./cmd/pipelint ./...` from the module root)
// loads every package, runs the five analyzers and exits non-zero on any
// finding; `make check` includes it. The suite runs clean on this tree:
// every true positive it has surfaced is fixed, and the handful of
// deliberate exceptions carry suppression directives.
//
// # Suppressing a finding
//
// Append to the offending line (or the line above it):
//
//	//lint:allow <analyzer> <justification>
//
// The justification is mandatory — a bare directive is itself reported —
// so every suppression documents why the invariant does not apply (for
// example internal/batch shares *plan.Plan pointers out of its plan tier
// because plans are immutable by construction).
//
// # Architecture
//
// The analyzers are written against internal/lint/analysis, a
// dependency-free stand-in for golang.org/x/tools/go/analysis (this
// module deliberately has no external requirements): same
// Analyzer/Pass/Reportf shape, with a loader that type-checks packages
// offline from `go list -deps -export` output. Golden tests under
// testdata/src/<analyzer>/ drive each analyzer through
// internal/lint/analysistest, which implements the `// want "regexp"`
// contract of x/tools' analysistest.
package lint
