package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/determinism"
	"repro/internal/lint/errclass"
	"repro/internal/lint/floatcmp"
	"repro/internal/lint/memoalias"
)

// Analyzers returns the full pipelint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		determinism.Analyzer,
		errclass.Analyzer,
		floatcmp.Analyzer,
		memoalias.Analyzer,
	}
}
