// Package memoalias flags memoized values escaping a cache layer without a
// defensive copy — the exact bug class fixed twice already (PR 2: callers
// could mutate results memoized by the batch cache; the plan layer then
// re-introduced the same hazard and clones on both hit paths).
//
// The invariant: in the memo layers (internal/batch, internal/plan), a
// single-flight entry — any struct with a `ready chan struct{}` field — is
// shared by every waiter on its key. Reading an aliasable field (one whose
// type reaches a slice, map or pointer) out of such an entry and letting it
// escape raw hands every caller a handle into the memo: one append or
// element write corrupts the cached value for all later hits. Every such
// read must pass through a clone function (any callee whose name contains
// "clone"); deliberate sharing of immutable state is suppressed with
// //lint:allow memoalias <why the shared value cannot be mutated>.
package memoalias

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the memoalias pass.
var Analyzer = &analysis.Analyzer{
	Name: "memoalias",
	Doc:  "flags aliasable values read out of single-flight memo entries without passing through a clone function",
	Run:  run,
}

// inScope limits the pass to the memo layers; fixture packages (no repro/
// prefix) are always in scope.
func inScope(path string) bool {
	if !strings.HasPrefix(path, "repro") {
		return true
	}
	return path == "repro/internal/batch" || path == "repro/internal/plan"
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		xt := pass.TypesInfo.Types[sel.X].Type
		if xt == nil || !isEntryStruct(xt) {
			return true
		}
		if sel.Sel.Name == "ready" {
			return true
		}
		// Follow a trailing selector chain: for e.res.Mapping the escape
		// hazard is decided by the outermost selected value's type.
		outer := ast.Expr(sel)
		top := len(stack)
		for top > 0 {
			p, ok := stack[top-1].(*ast.SelectorExpr)
			if !ok || p.X != outer {
				break
			}
			outer = p
			top--
		}
		t := pass.TypesInfo.Types[outer].Type
		if t == nil || !aliasable(t) {
			return true
		}
		if writtenTo(outer, stack[:top]) || underClone(outer, stack[:top]) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"memoized %s escapes the single-flight entry without a clone: callers can mutate the cached value for every later hit; route it through the Clone path (or //lint:allow memoalias <why it is immutable>)",
			types.ExprString(outer))
		return true
	})
	return nil
}

// isEntryStruct reports whether t (or what it points to) is a struct with
// a `ready chan struct{}` field — the suite's definition of a
// single-flight memo entry.
func isEntryStruct(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "ready" {
			continue
		}
		if ch, ok := f.Type().Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}

// aliasable reports whether a value of type t shares mutable state with
// its source: it is, or structurally contains, a slice, map or pointer.
// Interfaces and channels are excluded — error values are memoized by
// design, and the ready channel is the entry's publication mechanism.
func aliasable(t types.Type) bool {
	return aliasableSeen(t, map[types.Type]bool{})
}

func aliasableSeen(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	case *types.Array:
		return aliasableSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasableSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// writtenTo reports whether expr is an assignment target (an LHS operand)
// rather than a read.
func writtenTo(expr ast.Expr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if lhs == expr {
			return true
		}
	}
	return false
}

// underClone reports whether expr is (transitively, within the same
// statement) an argument of a call to a clone-like function — a callee
// whose name contains "clone" in any case.
func underClone(expr ast.Expr, stack []ast.Node) bool {
	child := ast.Node(expr)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == child {
					if name := calleeName(p); strings.Contains(strings.ToLower(name), "clone") {
						return true
					}
				}
			}
		case ast.Stmt:
			return false
		}
		child = stack[i]
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
