package determinism_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/determinism"
)

// TestGolden drives the analyzer through its fixture package under
// internal/lint/testdata/src/determinism: every line marked with a want
// comment must fire, every unmarked line must stay quiet.
func TestGolden(t *testing.T) {
	analysistest.Run(t, "../../..", "../testdata/src/determinism", determinism.Analyzer)
}
