// Package determinism flags nondeterminism sources inside the solver,
// plan, generator and simulator packages. The differential oracle
// (internal/diffcheck) replays 1080 (seed,index) scenarios and asserts
// bit-identical results across the one-shot, batch and compiled-plan
// paths; the memo caches key canonical encodings of results; the paper's
// exactness claims are only checkable because the same inputs always take
// the same path. Three mechanical leaks can break that:
//
//  1. Ranging over a map where iteration order can reach result ordering,
//     candidate sets or accumulated floats (float addition does not
//     commute in round-off). Iterate a sorted key slice instead, or
//     suppress with a justification that the body is order-insensitive.
//  2. time.Now: wall-clock values in a solver path make results differ
//     run to run. Timing belongs to the service/benchmark layers.
//  3. The global math/rand source (rand.Intn, rand.Shuffle, ... without an
//     explicit rand.New(rand.NewSource(seed))): process-global state that
//     other goroutines advance, so (seed,index) no longer pins a scenario.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flags map iteration, time.Now and global math/rand use in the deterministic solver packages",
	Run:  run,
}

// deterministicPkgs are the packages whose outputs must be reproducible
// from explicit inputs alone: the solver core and algorithms, the
// instance model and evaluators, the compiled-plan layer, the scenario
// generator, the fault-injection layer (seeded fault schedules must
// replay identically), the replication machinery, the simulator and the
// verification harness. The service (server, batch) and reporting layers
// measure wall-clock time by design and are out of scope.
var deterministicPkgs = []string{
	"repro/internal/algo/",
	"repro/internal/chaos",
	"repro/internal/core",
	"repro/internal/diffcheck",
	"repro/internal/fmath",
	"repro/internal/gen",
	"repro/internal/general",
	"repro/internal/mapping",
	"repro/internal/npc",
	"repro/internal/pareto",
	"repro/internal/pipeline",
	"repro/internal/plan",
	"repro/internal/repl",
	"repro/internal/sim",
	"repro/internal/workload",
}

// inScope reports whether the package must be deterministic; fixtures (no
// repro/ prefix) are always in scope.
func inScope(path string) bool {
	if !strings.HasPrefix(path, "repro") {
		return true
	}
	for _, p := range deterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") || (strings.HasSuffix(p, "/") && strings.HasPrefix(path, p)) {
			return true
		}
	}
	return false
}

// globalRandConstructors are the math/rand functions that build explicit
// sources/generators rather than consuming the process-global one.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.Types[n.X].Type
				if t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Range,
							"map iteration order is randomized per run and can leak into result ordering or float accumulation; iterate a sorted key slice (or //lint:allow determinism <why order cannot matter>)")
					}
				}
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkg.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" {
			pass.Reportf(sel.Pos(),
				"time.Now in a deterministic solver package: results would differ run to run; timing belongs to the service and benchmark layers")
		}
	case "math/rand", "math/rand/v2":
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
			return
		}
		if globalRandConstructors[sel.Sel.Name] {
			return
		}
		pass.Reportf(sel.Pos(),
			"%s.%s draws from the process-global random source, which other goroutines advance; use an explicit rand.New(rand.NewSource(seed)) so (seed,index) pins the scenario",
			pkg.Name(), sel.Sel.Name)
	}
}
