package lint_test

import (
	"os/exec"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// TestSuiteCleanOnRepo is the acceptance gate for the tree itself: the
// five analyzers, run over every package of the module, must report
// nothing. Every true positive they have surfaced is fixed, and each
// deliberate exception carries a //lint:allow directive whose
// justification this suite enforces.
func TestSuiteCleanOnRepo(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags, err := analysis.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestPipelintBinaryExitsZero runs the actual cmd/pipelint binary the way
// CI and the Makefile do, asserting a zero exit status on the repo.
func TestPipelintBinaryExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the pipelint binary")
	}
	cmd := exec.Command("go", "run", "./cmd/pipelint", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./cmd/pipelint ./... failed: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Errorf("pipelint produced output on a clean tree:\n%s", out)
	}
}
