package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/floatcmp"
)

// TestSuppressionSemantics drives the driver itself through the
// lintdirective fixture: justified directives (standalone-above and
// trailing) silence findings, malformed directives are reported and
// silence nothing, and directives naming a different analyzer do not
// apply.
func TestSuppressionSemantics(t *testing.T) {
	pkg, err := analysis.LoadDir("../../..", "../testdata/src/lintdirective")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{floatcmp.Analyzer})
	if err != nil {
		t.Fatalf("running floatcmp: %v", err)
	}
	type finding struct {
		analyzer string
		line     int
	}
	var got []finding
	for _, d := range diags {
		got = append(got, finding{d.Analyzer, d.Position.Line})
		switch d.Analyzer {
		case "lint":
			if !strings.Contains(d.Message, "malformed //lint:allow") {
				t.Errorf("lint diagnostic with unexpected message: %s", d)
			}
		case "floatcmp":
		default:
			t.Errorf("unexpected analyzer in %s", d)
		}
	}
	// Line 6: the malformed directive itself. Line 7: the comparison it
	// failed to suppress. Lines 12 and 16 are suppressed. Line 20: plain
	// unsuppressed finding. Line 25: the directive above names
	// determinism, so floatcmp still fires.
	want := []finding{
		{"lint", 6},
		{"floatcmp", 7},
		{"floatcmp", 20},
		{"floatcmp", 25},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %d %v\n%v", len(got), got, len(want), want, diags)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
