package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// Load parses and type-checks the packages matched by patterns (relative
// to moduleDir, e.g. "./..."), returning them ready for analysis. Only
// non-test Go files are loaded: the analyzers guard production invariants,
// and tests legitimately compare floats bit-for-bit or poke cache
// internals.
//
// The loader works fully offline. It shells out once to
// `go list -deps -export` to compile the dependency graph and collect gc
// export data, then type-checks each matched package from source with an
// importer that reads that export data — the same split the x/tools
// go/packages loader performs, without the dependency.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	ex, targets, err := listPackages(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, moduleDir, ex)
	var out []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir parses and type-checks a single directory outside the module's
// package graph — the analyzers' golden-test fixtures under testdata/,
// which the go tool deliberately ignores. The package is checked under an
// import path equal to the directory's base name; imports are resolved
// against moduleDir's dependency graph, so fixtures may import the
// standard library (and module packages) freely.
func LoadDir(moduleDir, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(goFiles)
	ex, _, err := listPackages(moduleDir, []string{"./..."})
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, moduleDir, ex)
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return checkPackage(fset, imp, filepath.Base(abs), dir, goFiles)
}

func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", gf, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

// exportSet maps import paths to gc export data files.
type exportSet struct {
	mu        sync.Mutex
	moduleDir string
	files     map[string]string
}

// listCache memoizes the (expensive) go list invocation per module
// directory: the test binary loads the repo once for the suite smoke test
// and once per golden-test fixture otherwise.
var listCache sync.Map // abs moduleDir+"\x00"+patterns -> *listResult

type listResult struct {
	once    sync.Once
	ex      *exportSet
	targets []listedPackage
	err     error
}

func listPackages(moduleDir string, patterns []string) (*exportSet, []listedPackage, error) {
	absDir, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, nil, err
	}
	key := absDir + "\x00" + strings.Join(patterns, "\x00")
	v, _ := listCache.LoadOrStore(key, &listResult{})
	r := v.(*listResult)
	r.once.Do(func() {
		r.ex, r.targets, r.err = runGoList(absDir, patterns)
	})
	return r.ex, r.targets, r.err
}

func runGoList(moduleDir string, patterns []string) (*exportSet, []listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list %s: %w\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	ex := &exportSet{moduleDir: moduleDir, files: map[string]string{}}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		if p.Export != "" {
			ex.files[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	return ex, targets, nil
}

// lookup resolves an import path to its export data, falling back to a
// one-off `go list -export` for paths outside the preloaded graph (e.g. a
// standard-library package only a testdata fixture imports).
func (ex *exportSet) lookup(path string) (io.ReadCloser, error) {
	ex.mu.Lock()
	f, ok := ex.files[path]
	ex.mu.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "--", path)
		cmd.Dir = ex.moduleDir
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("lint: no export data for %q: %w", path, err)
		}
		f = strings.TrimSpace(string(out))
		if f == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		ex.mu.Lock()
		ex.files[path] = f
		ex.mu.Unlock()
	}
	return os.Open(f)
}

func newExportImporter(fset *token.FileSet, moduleDir string, ex *exportSet) types.Importer {
	return importer.ForCompiler(fset, "gc", ex.lookup)
}
