// Package analysis is a self-contained, offline stand-in for the
// golang.org/x/tools/go/analysis framework: it defines the Analyzer/Pass
// contract the pipelint suite (internal/lint) is written against and a
// driver that runs analyzers over type-checked packages.
//
// The module is intentionally dependency-free (go.mod lists nothing), so
// the real x/tools framework cannot be vendored; this package mirrors its
// shape — an Analyzer has a Name, a Doc and a Run(*Pass) function, a Pass
// carries the FileSet, syntax trees and full go/types information for one
// package — narrowed to what the suite needs. Should the module ever grow
// an x/tools dependency, the analyzers port mechanically: only the import
// path and the loader change.
//
// Suppressions. A finding is silenced by a line directive
//
//	//lint:allow <analyzer> <justification>
//
// placed at the end of the offending line or alone on the line directly
// above it. The justification is mandatory: a bare //lint:allow directive
// is itself reported as a finding, so every suppression in the tree
// documents why the invariant does not apply at that site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name (used in diagnostics and
// //lint:allow directives), a documentation string stating the invariant it
// guards, and the Run function applied to each package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics: suppressed findings are dropped, malformed suppression
// directives are themselves reported (under analyzer name "lint"), and the
// result is sorted by position for stable output.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	var out []Diagnostic
	byFile := make(map[string]*fileSuppressions)
	for _, pkg := range pkgs {
		malformed := collectSuppressions(pkg.Fset, pkg.Files, byFile)
		out = append(out, malformed...)
	}
	for _, d := range raw {
		if s := byFile[d.Position.Filename]; s != nil && s.allows(d.Analyzer, d.Position.Line) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// fileSuppressions indexes the //lint:allow directives of one file.
type fileSuppressions struct {
	lines map[int][]string // line -> analyzer names allowed on that line
}

func (s *fileSuppressions) allows(name string, line int) bool {
	for _, n := range s.lines[line] {
		if n == name {
			return true
		}
	}
	return false
}

var directiveRE = regexp.MustCompile(`^//lint:allow\s+([a-zA-Z0-9_-]+)\s*(.*)$`)

// collectSuppressions scans file comments for //lint:allow directives,
// filling byFile (keyed by filename) and returning diagnostics for
// malformed directives. A directive at line L covers findings on L and on
// L+1, so it works both as a trailing comment on the offending line and as
// a standalone comment directly above it.
func collectSuppressions(fset *token.FileSet, files []*ast.File, byFile map[string]*fileSuppressions) []Diagnostic {
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:allow") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      c.Pos(),
						Position: pos,
						Message:  "malformed //lint:allow directive: want //lint:allow <analyzer> <justification>",
					})
					continue
				}
				s := byFile[pos.Filename]
				if s == nil {
					s = &fileSuppressions{lines: map[int][]string{}}
					byFile[pos.Filename] = s
				}
				s.lines[pos.Line] = append(s.lines[pos.Line], m[1])
				s.lines[pos.Line+1] = append(s.lines[pos.Line+1], m[1])
			}
		}
	}
	return malformed
}

// WalkStack traverses every file like ast.Inspect but hands the visitor
// the full ancestor stack (stack[len(stack)-1] is n's parent). Analyzers
// use it to inspect the context a node appears in — e.g. whether a
// selector is an argument of a clone call or the target of an assignment.
// Returning false skips n's children.
func WalkStack(files []*ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !visit(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
