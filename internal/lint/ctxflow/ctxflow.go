// Package ctxflow flags contexts that stop flowing: a function (or worker
// body) that accepts a context.Context and then never consults it cannot
// be cancelled, which is how PR 2/4 ended up retrofitting SolveBatchCtx
// and the Table*Ctx variants after entry points dropped their contexts on
// the floor.
//
// Two checks:
//
//  1. A named context.Context parameter the function body never uses. The
//     context must reach the solver (ultimately core.SolvePrepared), gate a
//     select, or be passed on; a parameter kept only for interface shape is
//     declared dead by renaming it to _.
//  2. A call to context.Background or context.TODO inside a function that
//     already has a context parameter in scope: minting a fresh root
//     context severs the caller's cancellation and deadline, silently
//     detaching whatever runs below it.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Context parameters that are dropped and fresh root contexts minted while a caller's context is in scope",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Whole-module scope: a dropped context is a bug wherever it occurs.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftyp *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftyp, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftyp, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			for _, param := range ctxParams(pass, ftyp) {
				obj := pass.TypesInfo.Defs[param]
				if obj == nil {
					continue
				}
				if !usesObject(pass, body, obj) {
					pass.Reportf(param.Pos(),
						"context parameter %s is dropped: the body never uses it, so this call tree cannot be cancelled; thread it toward core.SolvePrepared or rename it to _", param.Name)
				}
				checkFreshRoots(pass, body, param.Name)
			}
			return true
		})
	}
	return nil
}

// ctxParams returns the named, non-blank context.Context parameters of a
// function type.
func ctxParams(pass *analysis.Pass, ftyp *ast.FuncType) []*ast.Ident {
	var out []*ast.Ident
	if ftyp.Params == nil {
		return nil
	}
	for _, field := range ftyp.Params.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if t == nil || !isContext(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				out = append(out, name)
			}
		}
	}
	return out
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usesObject reports whether any identifier in body resolves to obj —
// including uses inside nested function literals, which legitimately
// capture an enclosing context.
func usesObject(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkFreshRoots flags context.Background()/context.TODO() calls in body.
// Nested function literals with their own context parameter are skipped:
// their parameter is the context in scope there, and they are visited on
// their own.
func checkFreshRoots(pass *analysis.Pass, body *ast.BlockStmt, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && len(ctxParams(pass, lit.Type)) > 0 {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok || pkg.Imported().Path() != "context" {
			return true
		}
		if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s() minted while %s is in scope: a fresh root context severs the caller's cancellation and deadline; derive from %s instead", sel.Sel.Name, ctxName, ctxName)
		}
		return true
	})
}
