package ctxflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/ctxflow"
)

// TestGolden drives the analyzer through its fixture package under
// internal/lint/testdata/src/ctxflow: every line marked with a want
// comment must fire, every unmarked line must stay quiet.
func TestGolden(t *testing.T) {
	analysistest.Run(t, "../../..", "../testdata/src/ctxflow", ctxflow.Analyzer)
}
