// Package floatcmp flags tolerance-unsafe comparisons between computed
// floating-point values. The solvers binary-search exact candidate sets
// and re-derive criterion values along different arithmetic paths, so two
// mathematically equal float64s routinely differ in the last ulps;
// internal/fmath owns the tolerant comparators (EQ/LE/GE and the strict
// LT/GT) every feasibility and equality decision must go through.
//
// The pass flags ==, !=, <= and >= between two computed (non-constant)
// float operands. Strict < and > are deliberately exempt: argmin/argmax
// accumulation ("if v < best") is exact by construction and pervasive;
// the corruption happens at equality boundaries — bound checks, candidate
// dedup, convergence tests — where round-off flips the verdict.
// Comparisons against constants (x > 0 presence checks, sentinel values)
// are likewise exempt. internal/fmath itself is out of scope: it is the
// one place allowed to spell raw comparisons.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the floatcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!=/<=/>= between computed floats outside internal/fmath; use fmath.EQ/LE/GE",
	Run:  run,
}

// inScope covers the library packages except fmath (which implements the
// tolerant comparisons); fixtures (no repro/ prefix) are always in scope.
func inScope(path string) bool {
	if !strings.HasPrefix(path, "repro") {
		return true
	}
	if path == "repro/internal/fmath" {
		return false
	}
	return path == "repro" || strings.HasPrefix(path, "repro/internal/")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ, token.LEQ, token.GEQ:
			default:
				return true
			}
			xt, yt := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
			if !isFloat(xt.Type) || !isFloat(yt.Type) {
				return true
			}
			// A constant operand means a sentinel/presence check (x == 0,
			// w != 1), which is exact by convention, not computation.
			if xt.Value != nil || yt.Value != nil {
				return true
			}
			pass.Reportf(be.OpPos,
				"raw float comparison %s between computed values is not round-off tolerant; use fmath.%s (or //lint:allow floatcmp <why exactness is intended>)",
				be.Op, fmathName(be.Op))
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func fmathName(op token.Token) string {
	switch op {
	case token.EQL:
		return "EQ"
	case token.NEQ:
		return "!EQ"
	case token.LEQ:
		return "LE"
	case token.GEQ:
		return "GE"
	}
	return "EQ"
}
