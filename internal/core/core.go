// Package core is the paper's contribution operationalized: a
// complexity-aware solver for multi-criteria mappings of concurrent
// pipelined applications. Given a problem instance, a mapping rule, a
// communication model and a criteria combination, it dispatches to
//
//   - the paper's polynomial algorithm when Tables 1-2 list the cell as
//     polynomial for the instance's platform class (Theorems 1, 3, 8, 12,
//     14-16, 18-19, 21, 23-24),
//   - the exhaustive exact solver when the cell is NP-hard but the search
//     space is small enough, and
//   - the heuristics of the conclusion's future-work programme otherwise,
//
// and reports which path was taken and whether the result is provably
// optimal.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/algo/exact"
	"repro/internal/algo/heur"
	"repro/internal/algo/interval"
	"repro/internal/algo/matching"
	"repro/internal/algo/onetoone"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// Criterion identifies the objective being minimized.
type Criterion int

const (
	// Period minimizes the weighted global period max_a W_a*T_a.
	Period Criterion = iota
	// Latency minimizes the weighted global latency max_a W_a*L_a.
	Latency
	// Energy minimizes the total power of enrolled processors. Per the
	// paper (Section 3.5), energy is only meaningful combined with a
	// period constraint.
	Energy
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case Period:
		return "period"
	case Latency:
		return "latency"
	case Energy:
		return "energy"
	}
	return fmt.Sprintf("Criterion(%d)", int(c))
}

// ParseCriterion is the inverse of String, shared by the cmd/ tools.
func ParseCriterion(s string) (Criterion, error) {
	switch s {
	case "period":
		return Period, nil
	case "latency":
		return Latency, nil
	case "energy":
		return Energy, nil
	}
	return 0, fmt.Errorf("unknown objective %q (want period | latency | energy)", s)
}

// Method records how a solution was obtained.
type Method string

const (
	MethodGreedyBinarySearch Method = "binary search + greedy assignment (Thm 1/12)"
	MethodDynProgAlloc       Method = "chain DP + Algorithm 2 (Thm 3/15/16)"
	MethodEnergyDP           Method = "energy DP + allocation DP (Thm 18/21)"
	MethodMatching           Method = "minimum weight bipartite matching (Thm 19)"
	MethodTrivial            Method = "all mappings equivalent (Thm 8/14/23)"
	MethodUniModalBudget     Method = "energy-capped DP (Thm 23/24)"
	MethodExact              Method = "exhaustive search (NP-hard cell)"
	MethodHeuristic          Method = "greedy + simulated annealing heuristic"
)

// Request describes one optimization problem.
type Request struct {
	// Rule selects one-to-one or interval mappings.
	Rule mapping.Rule
	// Model selects the communication model.
	Model pipeline.CommModel
	// Objective is the criterion to minimize.
	Objective Criterion
	// PeriodBounds, if non-nil, constrains each application's unweighted
	// period T_a <= PeriodBounds[a].
	PeriodBounds []float64
	// LatencyBounds, if non-nil, constrains each application's unweighted
	// latency L_a <= LatencyBounds[a].
	LatencyBounds []float64
	// EnergyBudget, if positive, constrains the total energy.
	EnergyBudget float64
	// ExactLimit caps the exhaustive fallback's search space (number of
	// mappings); 0 means 2,000,000. When exceeded, the heuristic is used.
	ExactLimit int64
	// Seed drives the heuristic fallback (deterministic per seed).
	Seed int64
	// HeurIters and HeurRestarts tune the heuristic fallback (defaults
	// 4000 and 3).
	HeurIters, HeurRestarts int
}

func (r Request) exactLimit() int64 {
	if r.ExactLimit <= 0 {
		return 2_000_000
	}
	return r.ExactLimit
}

// Result is a solved mapping with provenance.
type Result struct {
	Mapping mapping.Mapping
	// Value is the achieved objective value.
	Value float64
	// Metrics evaluates all criteria of the mapping.
	Metrics mapping.Metrics
	// Method tells which algorithm produced the mapping.
	Method Method
	// Optimal reports whether the result is provably optimal (polynomial
	// theorem algorithms and exhaustive search) as opposed to heuristic.
	Optimal bool
	// Degraded reports that the exact path was abandoned (search space over
	// ExactLimit) and the heuristic produced the mapping, so Value is only
	// an upper bound on the optimum. Degraded holds iff Method is
	// MethodHeuristic.
	Degraded bool
	// LowerBound is a provable lower bound on the constrained optimum,
	// populated only on degraded results so callers can report the bound
	// gap Value - LowerBound.
	LowerBound float64
	// Preempted reports that a wall-clock budget expired mid-solve and the
	// result came from the reduced-effort degraded path (plan.SolveCtx).
	// Preempted results depend on scheduler timing and are never memoized.
	Preempted bool
}

// ErrInfeasible is returned when no mapping satisfies the bounds.
var ErrInfeasible = errors.New("core: no mapping satisfies the bounds")

// ErrUnsupported is returned for criteria combinations the paper rules out
// (energy without a period constraint).
var ErrUnsupported = errors.New("core: unsupported criteria combination")

// Solve dispatches the request per Tables 1 and 2.
func Solve(inst *pipeline.Instance, req Request) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	return SolvePrepared(inst, inst.Platform.Classify(), req)
}

// SolvePrepared is Solve for callers that have already validated the
// instance and classified its platform — the compiled-plan layer
// (internal/plan) performs both once at compile time and then issues many
// queries. cls must be inst.Platform.Classify() and inst.Validate() must
// have returned nil; given that, SolvePrepared(inst, cls, req) is
// bit-identical to Solve(inst, req).
func SolvePrepared(inst *pipeline.Instance, cls pipeline.Class, req Request) (Result, error) {
	if err := checkBounds(inst, req); err != nil {
		return Result{}, err
	}
	switch req.Objective {
	case Period:
		return solvePeriod(inst, req, cls)
	case Latency:
		return solveLatency(inst, req, cls)
	case Energy:
		if req.PeriodBounds == nil {
			return Result{}, fmt.Errorf("%w: energy minimization requires period bounds (Section 3.5)", ErrUnsupported)
		}
		return solveEnergy(inst, req, cls)
	}
	return Result{}, fmt.Errorf("core: unknown objective %v", req.Objective)
}

func checkBounds(inst *pipeline.Instance, req Request) error {
	if req.PeriodBounds != nil && len(req.PeriodBounds) != len(inst.Apps) {
		return fmt.Errorf("core: %d period bounds for %d applications", len(req.PeriodBounds), len(inst.Apps))
	}
	if req.LatencyBounds != nil && len(req.LatencyBounds) != len(inst.Apps) {
		return fmt.Errorf("core: %d latency bounds for %d applications", len(req.LatencyBounds), len(inst.Apps))
	}
	return nil
}

// UniformBounds builds a per-application bound array from a single global
// weighted threshold X: application a receives X / W_a.
func UniformBounds(inst *pipeline.Instance, x float64) []float64 {
	out := make([]float64, len(inst.Apps))
	for a := range out {
		out[a] = x / inst.Apps[a].EffectiveWeight()
	}
	return out
}

// StretchWeights sets each application's weight to 1/X*_a where X*_a is the
// objective the application achieves alone on the platform, turning the
// weighted objective into the maximum stretch of Section 3.4. It returns a
// modified clone of the instance.
func StretchWeights(inst *pipeline.Instance, req Request) (pipeline.Instance, error) {
	alone := inst.Clone()
	for a := range alone.Apps {
		solo := pipeline.Instance{
			Apps:     []pipeline.Application{inst.Apps[a].Clone()},
			Platform: inst.Platform.Clone(),
			Energy:   inst.Energy,
		}
		solo.Apps[0].Weight = 1
		solo.Platform.InBandwidth = [][]float64{inst.Platform.InBandwidth[a]}
		solo.Platform.OutBandwidth = [][]float64{inst.Platform.OutBandwidth[a]}
		res, err := Solve(&solo, Request{
			Rule: req.Rule, Model: req.Model, Objective: req.Objective,
			ExactLimit: req.ExactLimit, Seed: req.Seed,
			HeurIters: req.HeurIters, HeurRestarts: req.HeurRestarts,
		})
		if err != nil {
			return pipeline.Instance{}, fmt.Errorf("core: solo solve for application %d: %w", a, err)
		}
		if res.Value <= 0 {
			return pipeline.Instance{}, fmt.Errorf("core: application %d has non-positive solo objective", a)
		}
		alone.Apps[a].Weight = 1 / res.Value
	}
	return alone, nil
}

func solvePeriod(inst *pipeline.Instance, req Request, cls pipeline.Class) (Result, error) {
	hasLat := req.LatencyBounds != nil
	hasEnergy := req.EnergyBudget > 0
	switch {
	case !hasLat && !hasEnergy:
		// Mono-criterion period (Table 1).
		if req.Rule == mapping.OneToOne && cls != pipeline.FullyHeterogeneous {
			m, v, err := onetoone.MinPeriodCommHom(inst, req.Model)
			return wrap(inst, req, m, v, MethodGreedyBinarySearch, true, err)
		}
		if req.Rule == mapping.Interval && cls == pipeline.FullyHomogeneous {
			m, v, err := interval.MinPeriodFullyHom(inst, req.Model)
			return wrap(inst, req, m, v, MethodDynProgAlloc, true, err)
		}
		return fallback(inst, req, func() (exact.Solution, error) {
			return exact.MinPeriod(inst, req.Rule, req.Model)
		})
	case hasLat && !hasEnergy:
		// Bi-criteria period/latency (Table 2): polynomial on fully
		// homogeneous platforms only.
		if cls == pipeline.FullyHomogeneous {
			if req.Rule == mapping.OneToOne {
				return trivialOneToOne(inst, req)
			}
			m, v, err := interval.MinPeriodGivenLatencyFullyHom(inst, req.Model, req.LatencyBounds)
			return wrap(inst, req, m, v, MethodDynProgAlloc, true, err)
		}
		return fallback(inst, req, func() (exact.Solution, error) {
			return exact.MinPeriodGivenLatency(inst, req.Rule, req.Model, req.LatencyBounds)
		})
	default:
		// Tri-criteria period under latency bounds and energy budget.
		lat := req.LatencyBounds
		if lat == nil {
			lat = infBounds(len(inst.Apps))
		}
		if cls == pipeline.FullyHomogeneous && inst.Platform.UniModal() && req.Rule == mapping.Interval {
			m, v, err := interval.MinPeriodGivenLatencyEnergyUniModal(inst, req.Model, lat, req.EnergyBudget)
			return wrap(inst, req, m, v, MethodUniModalBudget, true, err)
		}
		return fallback(inst, req, func() (exact.Solution, error) {
			return exact.MinPeriodGivenLatencyEnergy(inst, req.Rule, req.Model, lat, req.EnergyBudget)
		})
	}
}

func solveLatency(inst *pipeline.Instance, req Request, cls pipeline.Class) (Result, error) {
	hasPer := req.PeriodBounds != nil
	hasEnergy := req.EnergyBudget > 0
	switch {
	case !hasPer && !hasEnergy:
		// Mono-criterion latency (Table 1).
		if req.Rule == mapping.OneToOne && cls == pipeline.FullyHomogeneous {
			m, v, err := onetoone.MinLatencyFullyHom(inst)
			return wrap(inst, req, m, v, MethodTrivial, true, err)
		}
		if req.Rule == mapping.Interval && cls != pipeline.FullyHeterogeneous {
			m, v, err := interval.MinLatencyCommHom(inst)
			return wrap(inst, req, m, v, MethodGreedyBinarySearch, true, err)
		}
		return fallback(inst, req, func() (exact.Solution, error) {
			return exact.MinLatency(inst, req.Rule)
		})
	case hasPer && !hasEnergy:
		if cls == pipeline.FullyHomogeneous {
			if req.Rule == mapping.OneToOne {
				return trivialOneToOne(inst, req)
			}
			m, v, err := interval.MinLatencyGivenPeriodFullyHom(inst, req.Model, req.PeriodBounds)
			return wrap(inst, req, m, v, MethodDynProgAlloc, true, err)
		}
		return fallback(inst, req, func() (exact.Solution, error) {
			return exact.MinLatencyGivenPeriod(inst, req.Rule, req.Model, req.PeriodBounds)
		})
	default:
		per := req.PeriodBounds
		if per == nil {
			per = infBounds(len(inst.Apps))
		}
		if cls == pipeline.FullyHomogeneous && inst.Platform.UniModal() && req.Rule == mapping.Interval {
			m, v, err := interval.MinLatencyGivenPeriodEnergyUniModal(inst, req.Model, per, req.EnergyBudget)
			return wrap(inst, req, m, v, MethodUniModalBudget, true, err)
		}
		// Exact fallback: minimize latency under period bounds + budget.
		return fallback(inst, req, func() (exact.Solution, error) {
			return exact.Minimize(inst,
				exact.Options{Rule: req.Rule, Modes: exact.AllModes, Limit: req.exactLimit()},
				exact.Spec{Objective: exact.ObjLatency, Model: req.Model,
					PeriodBounds: per, EnergyBudget: req.EnergyBudget})
		})
	}
}

func solveEnergy(inst *pipeline.Instance, req Request, cls pipeline.Class) (Result, error) {
	hasLat := req.LatencyBounds != nil
	if !hasLat {
		// Bi-criteria period/energy (Table 2).
		if req.Rule == mapping.OneToOne && cls != pipeline.FullyHeterogeneous {
			m, v, err := matching.MinEnergyGivenPeriodCommHom(inst, req.Model, req.PeriodBounds)
			return wrap(inst, req, m, v, MethodMatching, true, err)
		}
		if req.Rule == mapping.Interval && cls == pipeline.FullyHomogeneous {
			m, v, err := interval.MinEnergyGivenPeriodFullyHom(inst, req.Model, req.PeriodBounds)
			return wrap(inst, req, m, v, MethodEnergyDP, true, err)
		}
		return fallback(inst, req, func() (exact.Solution, error) {
			return exact.MinEnergyGivenPeriod(inst, req.Rule, req.Model, req.PeriodBounds)
		})
	}
	// Tri-criteria energy under period and latency bounds: polynomial only
	// for uni-modal fully homogeneous platforms (Theorems 23-24); NP-hard
	// with multi-modal processors even there (Theorems 26-27).
	if cls == pipeline.FullyHomogeneous && inst.Platform.UniModal() && req.Rule == mapping.Interval {
		m, v, err := interval.MinEnergyGivenPeriodLatencyUniModal(inst, req.Model, req.PeriodBounds, req.LatencyBounds)
		return wrap(inst, req, m, v, MethodUniModalBudget, true, err)
	}
	return fallback(inst, req, func() (exact.Solution, error) {
		return exact.MinEnergyGivenPeriodLatency(inst, req.Rule, req.Model, req.PeriodBounds, req.LatencyBounds)
	})
}

// trivialOneToOne handles bounded problems on fully homogeneous platforms
// under the one-to-one rule: all mappings are equivalent (Theorem 14), so
// build one, check the bounds, and report the requested criterion.
func trivialOneToOne(inst *pipeline.Instance, req Request) (Result, error) {
	m, _, err := onetoone.MinLatencyFullyHom(inst)
	if err != nil {
		return Result{}, err
	}
	mt := mapping.Evaluate(inst, &m, req.Model)
	for a := range inst.Apps {
		if req.PeriodBounds != nil && !fmath.LE(mt.AppPeriods[a], req.PeriodBounds[a]) {
			return Result{}, ErrInfeasible
		}
		if req.LatencyBounds != nil && !fmath.LE(mt.AppLatencies[a], req.LatencyBounds[a]) {
			return Result{}, ErrInfeasible
		}
	}
	if req.EnergyBudget > 0 && !fmath.LE(mt.Energy, req.EnergyBudget) {
		return Result{}, ErrInfeasible
	}
	v := mt.Period
	if req.Objective == Latency {
		v = mt.Latency
	}
	return Result{Mapping: m, Value: v, Metrics: mt, Method: MethodTrivial, Optimal: true}, nil
}

// fallback tries the exhaustive solver within the search-space limit and
// falls back to the heuristic beyond it.
func fallback(inst *pipeline.Instance, req Request, solve func() (exact.Solution, error)) (Result, error) {
	if withinExactLimit(inst, req) {
		sol, err := solve()
		if errors.Is(err, exact.ErrInfeasible) {
			return Result{}, ErrInfeasible
		}
		if err == nil {
			return wrap(inst, req, sol.Mapping, sol.Value, MethodExact, true, nil)
		}
		if !errors.Is(err, exact.ErrSearchSpace) {
			return Result{}, err
		}
	}
	res, err := heuristicSolve(inst, req)
	if err != nil {
		return res, err
	}
	res.Degraded = true
	res.LowerBound = lowerBound(inst, req)
	return res, nil
}

// lowerBound computes a cheap provable lower bound on the constrained
// optimum, attached to degraded (heuristic) results so callers can report
// the bound gap. Constraints only shrink the feasible set, so a bound on
// the unconstrained optimum is also valid for the constrained one.
func lowerBound(inst *pipeline.Instance, req Request) float64 {
	maxSpeed := 0.0
	for u := range inst.Platform.Processors {
		if s := inst.Platform.Processors[u].MaxSpeed(); s > maxSpeed {
			maxSpeed = s
		}
	}
	switch req.Objective {
	case Period:
		// Each application's heaviest stage runs somewhere, so some
		// processor's cycle time is at least its work at the fastest
		// speed, and the period is the max cycle time (Equations 3-4).
		best := 0.0
		for a := range inst.Apps {
			heaviest := 0.0
			for _, st := range inst.Apps[a].Stages {
				if st.Work > heaviest {
					heaviest = st.Work
				}
			}
			if lb := inst.Apps[a].EffectiveWeight() * heaviest / maxSpeed; lb > best {
				best = lb
			}
		}
		return best
	case Latency:
		// Every stage executes once per data set, so each application's
		// latency is at least its total work at the fastest speed.
		best := 0.0
		for a := range inst.Apps {
			if lb := inst.Apps[a].EffectiveWeight() * inst.Apps[a].TotalWork() / maxSpeed; lb > best {
				best = lb
			}
		}
		return best
	default: // Energy
		// Processors are never shared across applications (nor across
		// stages under one-to-one), so at least one processor per
		// application (per stage under one-to-one) is enrolled, each
		// burning at least the cheapest (processor, mode) power.
		minPower := math.Inf(1)
		for u := range inst.Platform.Processors {
			if p := inst.Energy.Power(inst.Platform.Processors[u].MinSpeed()); p < minPower {
				minPower = p
			}
		}
		n := len(inst.Apps)
		if req.Rule == mapping.OneToOne {
			n = 0
			for a := range inst.Apps {
				n += inst.Apps[a].NumStages()
			}
		}
		return float64(n) * minPower
	}
}

// withinExactLimit estimates whether exhaustive search fits the budget by
// counting mappings up to the limit.
func withinExactLimit(inst *pipeline.Instance, req Request) bool {
	_, err := exact.CountMappings(inst, exact.Options{Rule: req.Rule, Modes: exact.AllModes, Limit: req.exactLimit()})
	return err == nil
}

// heuristicSolve builds the penalized objective for the request and runs
// the heuristic search.
func heuristicSolve(inst *pipeline.Instance, req Request) (Result, error) {
	rng := rand.New(rand.NewSource(req.Seed + 1))
	opt := heur.Options{Iters: req.HeurIters, Restarts: req.HeurRestarts}
	obj := func(m *mapping.Mapping) float64 {
		for a := range m.Apps {
			if req.PeriodBounds != nil && !fmath.LE(mapping.AppPeriod(inst, m, a, req.Model), req.PeriodBounds[a]) {
				return math.Inf(1)
			}
			if req.LatencyBounds != nil && !fmath.LE(mapping.AppLatency(inst, m, a), req.LatencyBounds[a]) {
				return math.Inf(1)
			}
		}
		if req.EnergyBudget > 0 && !fmath.LE(mapping.Energy(inst, m), req.EnergyBudget) {
			return math.Inf(1)
		}
		switch req.Objective {
		case Period:
			return mapping.Period(inst, m, req.Model)
		case Latency:
			return mapping.Latency(inst, m)
		default:
			return mapping.Energy(inst, m)
		}
	}
	m, v, err := heur.Minimize(rng, inst, req.Rule, obj, opt)
	if err != nil {
		return Result{}, err
	}
	if math.IsInf(v, 1) {
		return Result{}, ErrInfeasible
	}
	return wrap(inst, req, m, v, MethodHeuristic, false, nil)
}

func wrap(inst *pipeline.Instance, req Request, m mapping.Mapping, v float64, method Method, optimal bool, err error) (Result, error) {
	if err != nil {
		if errors.Is(err, interval.ErrInfeasible) || errors.Is(err, matching.ErrInfeasible) {
			return Result{}, ErrInfeasible
		}
		if errors.Is(err, onetoone.ErrWrongPlatform) || errors.Is(err, matching.ErrWrongPlatform) || errors.Is(err, interval.ErrWrongPlatform) {
			// The dispatcher guarantees each theorem algorithm's platform
			// class precondition, so a surviving precondition failure means
			// the platform shape admits no mapping at all under the rule
			// (one-to-one with fewer processors than stages, interval with
			// fewer processors than applications). That is infeasibility,
			// and classifying it as such lets callers like the Pareto
			// sweeps distinguish "nothing achievable" from a broken query.
			return Result{}, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return Result{}, err
	}
	return Result{
		Mapping: m,
		Value:   v,
		Metrics: mapping.Evaluate(inst, &m, req.Model),
		Method:  method,
		Optimal: optimal,
	}, nil
}

func infBounds(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Inf(1)
	}
	return out
}
