package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/algo/exact"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func TestSolveMotivatingExample(t *testing.T) {
	inst := pipeline.MotivatingExample()

	// Period minimization: comm-hom platform + interval rule is NP-hard
	// territory, but the instance is small so the exact fallback fires.
	res, err := Solve(&inst, Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: Period})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(res.Value, 1) {
		t.Errorf("period = %g, want 1", res.Value)
	}
	if res.Method != MethodExact || !res.Optimal {
		t.Errorf("method = %v optimal=%v, want exact/true", res.Method, res.Optimal)
	}

	// Latency: comm-hom interval is polynomial (Theorem 12).
	res, err = Solve(&inst, Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: Latency})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(res.Value, 2.75) {
		t.Errorf("latency = %g, want 2.75", res.Value)
	}
	if res.Method != MethodGreedyBinarySearch || !res.Optimal {
		t.Errorf("method = %v optimal=%v, want Thm 12/true", res.Method, res.Optimal)
	}

	// Energy under period bound 2 (the Section 2 trade-off).
	res, err = Solve(&inst, Request{
		Rule: mapping.Interval, Model: pipeline.Overlap, Objective: Energy,
		PeriodBounds: UniformBounds(&inst, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(res.Value, 46) {
		t.Errorf("energy = %g, want 46", res.Value)
	}
}

func TestSolveDispatchesPolynomialCells(t *testing.T) {
	rng := rand.New(rand.NewSource(61))

	// Table 1, period one-to-one on comm-hom: Theorem 1.
	cfg := workload.Config{Apps: 1, MinStages: 2, MaxStages: 3, Procs: 1, Modes: 2,
		Class: pipeline.CommHomogeneous, MaxWork: 5, MaxData: 3, MaxSpeed: 5}
	inst := workload.MustInstance(rng, cfg)
	cfg.Procs = inst.TotalStages() + 1
	inst.Platform = workload.Platform(rng, cfg)
	res, err := Solve(&inst, Request{Rule: mapping.OneToOne, Objective: Period})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodGreedyBinarySearch {
		t.Errorf("one-to-one period on comm-hom dispatched to %v", res.Method)
	}

	// Table 1, period interval on fully-hom: Theorem 3.
	hom := workload.MustInstance(rng, workload.Config{Apps: 2, MinStages: 2, MaxStages: 3,
		Procs: 5, Modes: 2, Class: pipeline.FullyHomogeneous, MaxWork: 5, MaxData: 3, MaxSpeed: 5})
	res, err = Solve(&hom, Request{Rule: mapping.Interval, Objective: Period})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodDynProgAlloc {
		t.Errorf("interval period on fully-hom dispatched to %v", res.Method)
	}

	// Table 2, period/energy interval on fully-hom: Theorems 18+21.
	res, err = Solve(&hom, Request{Rule: mapping.Interval, Objective: Energy,
		PeriodBounds: UniformBounds(&hom, res.Value*1.2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodEnergyDP {
		t.Errorf("interval energy on fully-hom dispatched to %v", res.Method)
	}

	// Table 2, period/energy one-to-one on comm-hom: Theorem 19.
	res, err = Solve(&inst, Request{Rule: mapping.OneToOne, Objective: Energy,
		PeriodBounds: UniformBounds(&inst, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodMatching {
		t.Errorf("one-to-one energy on comm-hom dispatched to %v", res.Method)
	}
}

func TestSolveTriCriteriaUniModal(t *testing.T) {
	inst := pipeline.Instance{
		Apps: []pipeline.Application{
			pipeline.NewUniformApplication("a", 3, 2),
			pipeline.NewUniformApplication("b", 2, 2),
		},
		Platform: pipeline.NewHomogeneousPlatform(5, []float64{2}, 1, 2),
		Energy:   pipeline.DefaultEnergy,
	}
	res, err := Solve(&inst, Request{
		Rule: mapping.Interval, Objective: Energy,
		PeriodBounds:  UniformBounds(&inst, 3),
		LatencyBounds: UniformBounds(&inst, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodUniModalBudget {
		t.Errorf("uni-modal tri-criteria dispatched to %v", res.Method)
	}
	want, err := exact.MinEnergyGivenPeriodLatency(&inst, mapping.Interval, pipeline.Overlap,
		UniformBounds(&inst, 3), UniformBounds(&inst, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(res.Value, want.Value) {
		t.Errorf("tri-criteria energy %g, oracle %g", res.Value, want.Value)
	}
}

func TestSolveHeuristicFallbackOnLargeInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	cfg := workload.Config{Apps: 3, MinStages: 4, MaxStages: 7, Procs: 14, Modes: 3,
		Class: pipeline.FullyHeterogeneous, MaxWork: 12, MaxData: 6, MaxSpeed: 9, MaxBandwidth: 4}
	inst := workload.MustInstance(rng, cfg)
	res, err := Solve(&inst, Request{Rule: mapping.Interval, Objective: Period,
		ExactLimit: 10_000, HeurIters: 600, HeurRestarts: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodHeuristic || res.Optimal {
		t.Errorf("large het instance dispatched to %v (optimal=%v)", res.Method, res.Optimal)
	}
	if err := res.Mapping.Validate(&inst, mapping.Interval); err != nil {
		t.Error(err)
	}
}

func TestSolveExactFallbackOnSmallHet(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	cfg := workload.Config{Apps: 1, MinStages: 2, MaxStages: 3, Procs: 3, Modes: 1,
		Class: pipeline.FullyHeterogeneous, MaxWork: 6, MaxData: 3, MaxSpeed: 5, MaxBandwidth: 3}
	inst := workload.MustInstance(rng, cfg)
	res, err := Solve(&inst, Request{Rule: mapping.Interval, Objective: Period})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodExact || !res.Optimal {
		t.Errorf("small het instance dispatched to %v", res.Method)
	}
	want, err := exact.MinPeriod(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(res.Value, want.Value) {
		t.Errorf("period %g, oracle %g", res.Value, want.Value)
	}
}

func TestSolveErrors(t *testing.T) {
	inst := pipeline.MotivatingExample()
	if _, err := Solve(&inst, Request{Objective: Energy}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("energy without period bounds: %v", err)
	}
	if _, err := Solve(&inst, Request{Objective: Period, PeriodBounds: []float64{1}}); err == nil {
		t.Error("mismatched bounds length accepted")
	}
	if _, err := Solve(&inst, Request{Rule: mapping.Interval, Objective: Energy, PeriodBounds: []float64{0.01, 0.01}}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible bounds: %v", err)
	}
	bad := inst.Clone()
	bad.Apps[0].Stages[0].Work = -1
	if _, err := Solve(&bad, Request{Objective: Period}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestTrivialOneToOneBoundsChecks(t *testing.T) {
	inst := pipeline.Instance{
		Apps:     []pipeline.Application{pipeline.NewUniformApplication("a", 2, 4)},
		Platform: pipeline.NewHomogeneousPlatform(3, []float64{2}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	// Period of every one-to-one mapping is 2 (work 4 / speed 2).
	res, err := Solve(&inst, Request{Rule: mapping.OneToOne, Objective: Latency,
		PeriodBounds: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodTrivial || !fmath.EQ(res.Value, 4) {
		t.Errorf("trivial one-to-one: method %v value %g", res.Method, res.Value)
	}
	if _, err := Solve(&inst, Request{Rule: mapping.OneToOne, Objective: Latency,
		PeriodBounds: []float64{1}}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible trivial bounds: %v", err)
	}
}

func TestUniformBounds(t *testing.T) {
	inst := pipeline.MotivatingExample()
	inst.Apps[0].Weight = 2
	b := UniformBounds(&inst, 4)
	if b[0] != 2 || b[1] != 4 {
		t.Errorf("UniformBounds = %v, want [2 4]", b)
	}
}

func TestStretchWeights(t *testing.T) {
	inst := pipeline.MotivatingExample()
	stretched, err := StretchWeights(&inst, Request{Rule: mapping.Interval, Objective: Latency})
	if err != nil {
		t.Fatal(err)
	}
	// Alone, App1's best latency is 1.75 (whole on P2 at speed 8:
	// 1/1 + 6/8), and App2's is 2.75 (also P2: 14/8 + 1/1).
	if !fmath.EQ(stretched.Apps[0].Weight, 1/1.75) {
		t.Errorf("App1 stretch weight = %g, want %g", stretched.Apps[0].Weight, 1/1.75)
	}
	if !fmath.EQ(stretched.Apps[1].Weight, 1/2.75) {
		t.Errorf("App2 stretch weight = %g, want %g", stretched.Apps[1].Weight, 1/2.75)
	}
	// Concurrently both applications want P2; the optimal max stretch
	// gives P2 to App2 (stretch 1) and sends App1 to a speed-6 processor:
	// latency 2, stretch 2/1.75 = 8/7.
	res, err := Solve(&stretched, Request{Rule: mapping.Interval, Objective: Latency})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(res.Value, 8.0/7.0) {
		t.Errorf("optimal stretch = %g, want %g", res.Value, 8.0/7.0)
	}
}

func TestSolvePeriodWithEnergyBudget(t *testing.T) {
	inst := pipeline.MotivatingExample()
	res, err := Solve(&inst, Request{Rule: mapping.Interval, Objective: Period, EnergyBudget: 46})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(res.Value, 2) {
		t.Errorf("period under energy 46 = %g, want 2", res.Value)
	}
	if !fmath.LE(res.Metrics.Energy, 46) {
		t.Errorf("energy %g exceeds budget", res.Metrics.Energy)
	}
}

func TestSolveLatencyWithPeriodAndEnergy(t *testing.T) {
	inst := pipeline.MotivatingExample()
	res, err := Solve(&inst, Request{
		Rule: mapping.Interval, Objective: Latency,
		PeriodBounds: UniformBounds(&inst, 2), EnergyBudget: 46,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.LE(res.Metrics.Period, 2) || !fmath.LE(res.Metrics.Energy, 46) {
		t.Errorf("constraints violated: %+v", res.Metrics)
	}
}

func TestCriterionStrings(t *testing.T) {
	if Period.String() != "period" || Latency.String() != "latency" || Energy.String() != "energy" {
		t.Error("unexpected criterion strings")
	}
}
