package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/report"
)

// benchBaseline is the subset of BENCH_solver.json the regression gate
// needs: the corpus seed plus each variant's name, batch size and ns/op.
type benchBaseline struct {
	Seed     int64 `json:"seed"`
	Variants []struct {
		Name      string  `json:"name"`
		Scenarios int     `json:"scenarios"`
		NsPerOp   float64 `json:"nsPerOp"`
	} `json:"variants"`
}

// Timing protocol for the fresh measurement: each variant batch is solved
// benchDiffWarmup times unmeasured (pools populated, branch predictors
// warm), a calibration op sizes the repetition count so every timed run
// lasts at least benchDiffMinRun (microsecond-scale variants need
// thousands of ops before scheduler and timer noise stops dominating),
// then benchDiffReps timed runs are taken keeping the fastest. Best-of-N
// discards interference, which only ever inflates a measurement.
const (
	benchDiffWarmup = 2
	benchDiffReps   = 3
	benchDiffMinRun = 25 * time.Millisecond
	benchDiffMinOps = 10
	benchDiffMaxOps = 50000
)

// BenchDiff compares a fresh timing of the solver corpus against the
// committed BENCH_solver.json baseline and fails when any variant's
// fresh ns/op exceeds factor times its committed ns/op. It rebuilds the
// exact benchmark workload — the seeded verification corpus grouped by
// (class, rule, model, criterion) variant, one op = one-shot solving the
// variant's whole scenario batch — with a hand-rolled best-of-N timer so
// it runs as a plain binary (`make bench-diff`, CI) rather than through
// `go test -bench`. The factor absorbs machine-to-machine variance; the
// gate exists to catch order-of-magnitude algorithmic regressions, not
// single-digit percentages.
func BenchDiff(w io.Writer, path string, factor float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("experiments: reading bench baseline: %w", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("experiments: parsing %s: %w", path, err)
	}
	if len(base.Variants) == 0 {
		return fmt.Errorf("experiments: %s has no variants (regenerate with `make bench-corpus`)", path)
	}

	space := gen.DefaultSpace()
	scenarios := space.Corpus(base.Seed, 2*space.CombinationCount())
	groups := make(map[string][]*gen.Scenario)
	for i := range scenarios {
		sc := &scenarios[i]
		groups[sc.Combo()] = append(groups[sc.Combo()], sc)
	}

	tb := report.New(fmt.Sprintf("BENCH-DIFF - fresh corpus vs %s (fail > %.1fx)", path, factor),
		"variant", "committed ns/op", "fresh ns/op", "ratio", "ok")
	var regressed []string
	names := make([]string, 0, len(base.Variants))
	byName := make(map[string]int, len(base.Variants))
	for i, v := range base.Variants {
		names = append(names, v.Name)
		byName[v.Name] = i
	}
	sort.Strings(names)
	for _, name := range names {
		v := base.Variants[byName[name]]
		group, ok := groups[name]
		if !ok {
			return fmt.Errorf("experiments: baseline variant %q not in the regenerated corpus (stale %s; regenerate with `make bench-corpus`)", name, path)
		}
		if len(group) != v.Scenarios {
			return fmt.Errorf("experiments: variant %q has %d scenarios, baseline recorded %d (stale %s; regenerate with `make bench-corpus`)",
				name, len(group), v.Scenarios, path)
		}
		if v.NsPerOp <= 0 {
			return fmt.Errorf("experiments: baseline variant %q has non-positive nsPerOp %g", name, v.NsPerOp)
		}
		fresh, err := timeVariant(group)
		if err != nil {
			return fmt.Errorf("experiments: timing variant %q: %w", name, err)
		}
		ratio := fresh / v.NsPerOp
		//lint:allow floatcmp the gate threshold is a coarse factor (2x); round-off at the boundary is immaterial
		mark := okMark(ratio <= factor)
		if ratio > factor {
			regressed = append(regressed, fmt.Sprintf("%s: %.0f ns/op vs committed %.0f ns/op (%.2fx > %.1fx)",
				name, fresh, v.NsPerOp, ratio, factor))
		}
		tb.Addf(name, fmt.Sprintf("%.0f", v.NsPerOp), fmt.Sprintf("%.0f", fresh), fmt.Sprintf("%.2fx", ratio), mark)
	}
	tb.Render(w)
	fmt.Fprintln(w)

	if len(regressed) > 0 {
		msg := "experiments: bench-diff regression gate failed:"
		for _, r := range regressed {
			msg += "\n  " + r
		}
		return errors.New(msg)
	}
	fmt.Fprintf(w, "bench-diff: all %d variants within %.1fx of the committed baseline\n", len(names), factor)
	return nil
}

// timeVariant measures one variant batch with the warmup/best-of protocol
// above and returns ns per op (one op = solving every scenario in the
// group, tolerating infeasible draws exactly as BenchmarkCorpus does).
func timeVariant(group []*gen.Scenario) (float64, error) {
	op := func() error {
		for _, sc := range group {
			if _, err := core.Solve(&sc.Inst, sc.Req); err != nil && !errors.Is(err, core.ErrInfeasible) {
				return fmt.Errorf("%s: %w", sc.Name, err)
			}
		}
		return nil
	}
	for i := 0; i < benchDiffWarmup; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	if err := op(); err != nil {
		return 0, err
	}
	ops := benchDiffMinOps
	if est := time.Since(start); est > 0 {
		if n := int(benchDiffMinRun / est); n > ops {
			ops = n
		}
	}
	if ops > benchDiffMaxOps {
		ops = benchDiffMaxOps
	}
	best := 0.0
	for rep := 0; rep < benchDiffReps; rep++ {
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := op(); err != nil {
				return 0, err
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(ops)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}
