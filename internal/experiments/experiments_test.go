package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestFig1Reproduces asserts the Section 2 numbers reproduce exactly.
func TestFig1Reproduces(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"2.75", "46", "136", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NO") {
		t.Errorf("mismatch flagged:\n%s", out)
	}
}

// TestTable1Reproduces validates every Table 1 cell.
func TestTable1Reproduces(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, 11); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
}

// TestTable2Reproduces validates every Table 2 cell.
func TestTable2Reproduces(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf, 11); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
}

func TestSimValidationExperiment(t *testing.T) {
	if err := SimValidation(io.Discard, 3, 30); err != nil {
		t.Fatal(err)
	}
}

func TestParetoExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Pareto(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "46") {
		t.Error("trade-off point missing from frontier output")
	}
}

func TestNPCExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := NPC(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
}

// TestDiffExperiment runs a two-window differential corpus and checks the
// rendered report names the coverage and method tables.
func TestDiffExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Diff(&buf, 7, 72); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"DIFF", "variant combinations covered", "dispatch methods", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NO") {
		t.Errorf("mismatch flagged:\n%s", out)
	}
}

func TestScalingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep skipped in -short mode")
	}
	if err := Scaling(io.Discard, 5); err != nil {
		t.Fatal(err)
	}
}

// TestAllExperiments runs the full harness end to end, as cmd/pipebench
// does.
func TestAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness skipped in -short mode")
	}
	if err := All(io.Discard, 1); err != nil {
		t.Fatal(err)
	}
}

func TestExtensionsExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Extensions(&buf, 9); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	for _, want := range []string{"12/12", "processor sharing strictly helps"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
