package experiments

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/report"
	"repro/internal/server"
)

// chaosEvents is the fault chain length per scenario; chaosExactCap caps
// the branch-and-bound node budget so a share of the re-solves lands on
// the degraded heuristic path (the experiment measures that rate).
const (
	chaosEvents   = 3
	chaosExactCap = 500
)

// chaosOutcome is the replayable footprint of one re-solve step, used by
// the determinism pin (two runs of the same scenario chain must be
// bit-identical, including how they fail).
type chaosOutcome struct {
	Event    string
	Err      string
	Before   float64
	After    float64
	Degraded bool
	Diff     chaos.MigrationDiff
}

// Chaos runs the fault-tolerance experiment (experiment CHAOS): over a
// seeded corpus of generated scenarios, inject a deterministic chain of
// fault events into each instance, re-solve after every fault through
// the compiled-plan layer, and report the re-solve latency distribution,
// the degraded-solve rate, and the fault classification counts. A second
// pass over the first scenario pins determinism: the same seed must
// reproduce the exact event chain, values, and migration diffs. Finally
// a saturating burst against an in-process resilience-configured server
// measures the load-shedding rate (structured 429 + Retry-After).
// n <= 0 runs 36 scenarios.
func Chaos(w io.Writer, seed int64, n int) error {
	if n <= 0 {
		n = 36
	}
	corpus := gen.DefaultSpace().Corpus(seed, n)

	var (
		latencies  []float64 // ms per successful re-solve step
		resolved   int
		degraded   int
		inapplic   int
		infeasible int
		failed     []string
	)
	for i := range corpus {
		outcomes, err := chaosChain(&corpus[i], &latencies)
		if err != nil {
			failed = append(failed, fmt.Sprintf("scenario %d (%s): %v", corpus[i].Index, corpus[i].Name, err))
			continue
		}
		for _, o := range outcomes {
			switch {
			case o.Err == "":
				resolved++
				if o.Degraded {
					degraded++
				}
			case strings.Contains(o.Err, chaos.ErrInapplicable.Error()):
				inapplic++
			default:
				infeasible++
			}
		}
	}

	// Determinism pin: replay the first scenario's whole chain and demand
	// a bit-identical outcome sequence (events, values, diffs, errors).
	var sink []float64
	run1, err1 := chaosChain(&corpus[0], &sink)
	run2, err2 := chaosChain(&corpus[0], &sink)
	deterministic := fmt.Sprint(err1) == fmt.Sprint(err2) && reflect.DeepEqual(run1, run2)

	shedRate, okCount, shedCount, err := chaosShedBurst()
	if err != nil {
		return fmt.Errorf("experiments: chaos shed burst: %w", err)
	}

	p50, p99 := percentile(latencies, 0.50), percentile(latencies, 0.99)
	total := resolved + inapplic + infeasible
	degradedRate := 0.0
	if resolved > 0 {
		degradedRate = float64(degraded) / float64(resolved)
	}

	tb := report.New(fmt.Sprintf("CHAOS - fault-tolerant re-solving, %d scenarios x %d faults (seed %d)", len(corpus), chaosEvents, seed),
		"metric", "value", "ok")
	tb.Addf("fault events injected", total, okMark(total > 0))
	tb.Addf("re-solves verified against simulator", resolved, okMark(resolved > 0))
	tb.Addf("re-solve latency p50 (ms)", p50, "-")
	tb.Addf("re-solve latency p99 (ms)", p99, "-")
	tb.Addf("degraded-solve rate", degradedRate, "-")
	tb.Addf("inapplicable events (classified, skipped)", inapplic, "-")
	tb.Addf("post-fault infeasible (classified)", infeasible, "-")
	tb.Addf("scenario failures (uncontained)", len(failed), okMark(len(failed) == 0))
	tb.Addf("same seed -> bit-identical chain", okMark(deterministic), okMark(deterministic))
	tb.Addf(fmt.Sprintf("shed burst: %d ok / %d shed (429)", okCount, shedCount), shedRate, okMark(okCount >= 1 && shedCount >= 1))
	tb.Render(w)
	fmt.Fprintln(w)

	if len(failed) > 0 {
		return fmt.Errorf("experiments: %d chaos scenarios failed, first: %s", len(failed), failed[0])
	}
	if !deterministic {
		return fmt.Errorf("experiments: chaos chain is not deterministic: run1 %+v != run2 %+v", run1, run2)
	}
	if okCount < 1 || shedCount < 1 {
		return fmt.Errorf("experiments: shed burst saw %d successes and %d sheds; want at least one of each", okCount, shedCount)
	}
	return nil
}

// chaosChain injects a seeded chain of chaosEvents faults into one
// scenario, re-solving after each applicable fault. Inapplicable events
// and post-fault infeasibility are classified outcomes, not errors; an
// error return means something the resilience layer must never allow
// (a panic is converted upstream, a simulator disagreement surfaces
// here). Successful steps append their wall-clock latency (ms) to *lat.
func chaosChain(sc *gen.Scenario, lat *[]float64) ([]chaosOutcome, error) {
	cur := sc.Inst
	q := plan.QueryOf(sc.Req)
	if q.ExactLimit == 0 || q.ExactLimit > chaosExactCap {
		q.ExactLimit = chaosExactCap
	}
	events, err := chaos.Generate(sc.Seed+int64(sc.Index), &cur, chaosEvents)
	if err != nil {
		return nil, fmt.Errorf("generating fault schedule: %w", err)
	}
	outcomes := make([]chaosOutcome, 0, len(events.Events))
	for _, ev := range events.Events {
		pl, err := plan.Compile(&cur, sc.Req.Rule, sc.Req.Model)
		if err != nil {
			return outcomes, fmt.Errorf("compile before %v: %w", ev, err)
		}
		start := time.Now()
		rr, err := chaos.Resolve(pl, q, ev)
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		o := chaosOutcome{Event: ev.String()}
		if err != nil {
			// Classified failures end the chain for this scenario: the
			// instance cannot absorb this fault (or is infeasible after
			// it), which the next event's premise depended on.
			o.Err = err.Error()
			outcomes = append(outcomes, o)
			if chaos.IsInapplicable(err) || errors.Is(err, core.ErrInfeasible) {
				break
			}
			return outcomes, err
		}
		*lat = append(*lat, elapsed)
		o.Before, o.After = rr.Before.Value, rr.After.Value
		o.Degraded = rr.After.Degraded
		o.Diff = rr.Diff
		outcomes = append(outcomes, o)
		cur = rr.Applied.Inst
	}
	return outcomes, nil
}

// chaosShedBurst saturates an in-process server configured with a tight
// admission gate (2 in flight, 2 queued) using a burst of slow solves,
// and returns the shed rate. Every response must be a success or a
// structured 429 with a Retry-After header.
func chaosShedBurst() (rate float64, okCount, shedCount int, err error) {
	srv := server.New(server.Config{MaxInFlight: 2, MaxQueue: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	inst := pipeline.MotivatingExample()
	instJSON := new(strings.Builder)
	if err := pipeline.EncodeJSON(instJSON, &inst); err != nil {
		return 0, 0, 0, err
	}

	const burst = 32
	codes := make([]int, burst)
	retryAfter := make([]bool, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds defeat the memo cache and a forced-heuristic
			// budget keeps each solve slow enough that the burst overlaps.
			body := fmt.Sprintf(`{"instance": %s, "request": {"objective": "period",
				"exactLimit": 1, "heurIters": 100000, "heurRestarts": 1, "seed": %d}}`, instJSON.String(), i+1)
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After") != ""
		}(i)
	}
	wg.Wait()

	for i, c := range codes {
		switch c {
		case http.StatusOK:
			okCount++
		case http.StatusTooManyRequests:
			if !retryAfter[i] {
				return 0, okCount, shedCount, fmt.Errorf("request %d shed without a Retry-After header", i)
			}
			shedCount++
		default:
			return 0, okCount, shedCount, fmt.Errorf("request %d: unexpected status %d", i, c)
		}
	}
	return float64(shedCount) / float64(burst), okCount, shedCount, nil
}

// percentile returns the pth (0..1) percentile of xs by nearest-rank, or
// 0 for an empty sample.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p*float64(len(s)-1) + 0.5)
	return s[i]
}
