package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/algo/interval"
	"repro/internal/fmath"
	"repro/internal/general"
	"repro/internal/npc"
	"repro/internal/pipeline"
	"repro/internal/repl"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Extensions validates the two future-work extensions (experiment ids
// ABL-REPL and ABL-GEN): the replicated-interval DP against its exhaustive
// oracle and the round-robin executor, and general mappings against
// interval mappings plus the 2-partition gadget.
func Extensions(w io.Writer, seed int64) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(replicationExperiment(w, seed))
	keep(generalExperiment(w))
	return firstErr
}

func replicationExperiment(w io.Writer, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	tb := report.New("EXT-REPL - replicated interval mappings (Section 6 future work)",
		"check", "trials", "result")

	// DP optimality against the exhaustive replicated oracle.
	matches, trials := 0, 12
	for trial := 0; trial < trials; trial++ {
		inst := workload.MustInstance(rng, workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 3,
			Procs: 3 + rng.Intn(2), Modes: 1,
			Class: pipeline.FullyHomogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 5,
		})
		model := []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap}[trial%2]
		_, got, err := repl.MinPeriodFullyHom(&inst, model)
		if err != nil {
			return err
		}
		_, want, err := repl.ExactMinPeriod(&inst, model, 50_000_000)
		if err != nil {
			return err
		}
		if fmath.EQ(got, want) {
			matches++
		}
	}
	tb.Addf("replicated DP = exhaustive optimum", trials, fmt.Sprintf("%d/%d", matches, trials))
	var firstErr error
	if matches != trials {
		firstErr = fmt.Errorf("experiments: replicated DP suboptimal on %d/%d trials", trials-matches, trials)
	}

	// Round-robin executor agreement.
	simOK := 0
	for trial := 0; trial < trials; trial++ {
		inst := workload.MustInstance(rng, workload.DefaultConfig())
		rm, err := workload.RandomReplicated(rng, &inst)
		if err != nil {
			return err
		}
		model := []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap}[trial%2]
		if sim.VerifyReplicated(&inst, &rm, model, 1e-9) == nil {
			simOK++
		}
	}
	tb.Addf("round-robin executor = analytic formulas", trials, fmt.Sprintf("%d/%d", simOK, trials))
	if simOK != trials && firstErr == nil {
		firstErr = fmt.Errorf("experiments: replicated simulator diverged on %d/%d trials", trials-simOK, trials)
	}

	// The headline speedup.
	inst := pipeline.Instance{
		Apps: []pipeline.Application{{
			Stages: []pipeline.Stage{{Work: 2, Out: 1}, {Work: 18, Out: 1}, {Work: 2, Out: 1}},
			In:     1, Weight: 1,
		}},
		Platform: pipeline.NewHomogeneousPlatform(6, []float64{2}, 4, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	_, plain, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap)
	if err != nil {
		return err
	}
	rm, replicated, err := repl.MinPeriodFullyHom(&inst, pipeline.Overlap)
	if err != nil {
		return err
	}
	tb.Addf("bottleneck chain: plain vs replicated period", 1,
		fmt.Sprintf("%s -> %s (%.2fx, energy %.0f -> %.0f)",
			report.Fmt(plain), report.Fmt(replicated), plain/replicated,
			12.0, repl.Energy(&inst, &rm)))
	if !fmath.LT(replicated, plain) && firstErr == nil {
		firstErr = fmt.Errorf("experiments: replication failed to improve the bottleneck chain")
	}
	tb.Render(w)
	fmt.Fprintln(w)
	return firstErr
}

func generalExperiment(w io.Writer) error {
	tb := report.New("EXT-GEN - general mappings (Section 3.3 remark)",
		"check", "instance", "result")
	var firstErr error

	// 2-partition gadget equivalence.
	for _, c := range []struct {
		items    []int
		solvable bool
	}{
		{[]int{1, 2, 3}, true},
		{[]int{1, 2, 4}, false},
	} {
		tp := npc.TwoPartition{Items: c.items}
		if _, s := tp.Solve(); s != c.solvable {
			return fmt.Errorf("experiments: 2-partition fixture broken")
		}
		inst := general.Encode2Partition(c.items)
		_, period, err := general.ExactMinPeriod(&inst, 10_000_000)
		if err != nil {
			return err
		}
		half := float64(tp.Sum()) / 2
		got := fmath.LE(period, half)
		tb.Addf("period <= S/2 iff 2-partition solvable", fmt.Sprintf("%v", c.items),
			fmt.Sprintf("solvable=%v feasible=%v %s", c.solvable, got, okMark(got == c.solvable)))
		if got != c.solvable && firstErr == nil {
			firstErr = fmt.Errorf("experiments: general-mapping gadget equivalence failed on %v", c.items)
		}
	}

	// Strict-gap witness: general beats interval on (1,5,1) / 2 procs.
	app := pipeline.Application{Weight: 1, Stages: []pipeline.Stage{{Work: 1}, {Work: 5}, {Work: 1}}}
	inst := pipeline.Instance{
		Apps:     []pipeline.Application{app},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	_, ivOpt, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap)
	if err != nil {
		return err
	}
	_, genOpt, err := general.ExactMinPeriod(&inst, 1_000_000)
	if err != nil {
		return err
	}
	tb.Addf("processor sharing strictly helps", "works (1,5,1), 2 procs",
		fmt.Sprintf("interval %s, general %s %s", report.Fmt(ivOpt), report.Fmt(genOpt), okMark(fmath.LT(genOpt, ivOpt))))
	if !fmath.LT(genOpt, ivOpt) && firstErr == nil {
		firstErr = fmt.Errorf("experiments: general-mapping strict-gap witness broke")
	}
	tb.Render(w)
	fmt.Fprintln(w)
	return firstErr
}
