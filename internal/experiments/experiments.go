// Package experiments regenerates every reproducible artifact of the paper
// (see EXPERIMENTS.md's per-experiment index): the Section 2 / Figure 1
// motivating example, the Table 1 and Table 2 complexity maps (optimality
// of every polynomial algorithm against the exhaustive oracle plus the
// polynomial/exponential scaling split), the Equations 3-5 simulator
// validation, the period/energy Pareto frontiers, and the NP-hardness
// gadget equivalences.
//
// Each experiment writes human-readable tables to the supplied writer and
// returns a non-nil error if any paper claim failed to reproduce, so the
// test suite can assert full reproduction.
//
// The complexity-table drivers solve their per-cell trials concurrently on
// the internal/batch engine; all random draws stay on a single sequential
// rng stream, so the record is deterministic per seed.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"repro/internal/algo/exact"
	"repro/internal/core"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig1 reproduces the four headline numbers of the Section 2 motivating
// example (experiment FIG1). All five queries share one compiled plan —
// the instance, rule and communication model are fixed, so the plan layer
// validates and classifies once and the repeated period query at the end is
// a memo hit.
func Fig1(w io.Writer) error {
	inst := pipeline.MotivatingExample()
	pl, err := plan.Compile(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		return fmt.Errorf("experiments: fig1 compile: %w", err)
	}
	tb := report.New("FIG1 - Section 2 motivating example (2 apps, 3 processors x 2 modes)",
		"quantity", "paper", "measured", "method", "match")

	var firstErr error
	type row struct {
		name  string
		paper float64
		q     plan.Query
	}
	rows := []row{
		{"optimal period (Eq. 1)", 1, plan.Query{Objective: core.Period}},
		{"optimal latency (Eq. 2)", 2.75, plan.Query{Objective: core.Latency}},
		{"min energy (period free)", 10, plan.Query{Objective: core.Energy,
			PeriodBounds: core.UniformBounds(&inst, math.Inf(1))}},
		{"min energy with period <= 2", 46, plan.Query{Objective: core.Energy,
			PeriodBounds: core.UniformBounds(&inst, 2)}},
	}
	for _, r := range rows {
		res, err := pl.Solve(r.q)
		if err != nil {
			return fmt.Errorf("experiments: fig1 %q: %w", r.name, err)
		}
		ok := fmath.EQ(res.Value, r.paper)
		tb.Addf(r.name, r.paper, res.Value, string(res.Method), okMark(ok))
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: fig1 %q: measured %g, paper %g", r.name, res.Value, r.paper)
		}
	}
	// The period-optimal mapping at full speed consumes 136 (Section 2).
	// Same query as row one: answered from the plan's memo.
	res, err := pl.Solve(plan.Query{Objective: core.Period})
	if err != nil {
		return err
	}
	ok := fmath.EQ(res.Metrics.Energy, 136)
	tb.Addf("energy of the period-optimal mapping", 136.0, res.Metrics.Energy, string(res.Method), okMark(ok))
	if !ok && firstErr == nil {
		firstErr = fmt.Errorf("experiments: fig1 period-optimal energy %g, paper 136", res.Metrics.Energy)
	}
	tb.Render(w)
	fmt.Fprintln(w)
	return firstErr
}

func okMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// cellResult summarizes one complexity-table cell's validation.
type cellResult struct {
	problem  string
	platform string
	paper    string
	method   string
	optimal  string
	note     string
}

// SimValidation replays random mappings through the discrete-event
// simulator and reports the worst deviation from Equations 3-5
// (experiment SIM).
func SimValidation(w io.Writer, seed int64, trials int) error {
	rng := rand.New(rand.NewSource(seed))
	classes := []pipeline.Class{pipeline.FullyHomogeneous, pipeline.CommHomogeneous, pipeline.FullyHeterogeneous}
	tb := report.New("SIM - discrete-event validation of Equations 3-5",
		"model", "trials", "max period dev", "max latency dev", "match")
	var firstErr error
	for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
		maxP, maxL := 0.0, 0.0
		for trial := 0; trial < trials; trial++ {
			cfg := workload.Config{
				Apps: 1 + rng.Intn(3), MinStages: 1, MaxStages: 6,
				Procs: 3 + rng.Intn(6), Modes: 1 + rng.Intn(3),
				Class:   classes[trial%len(classes)],
				MaxWork: 9, MaxData: 6, MaxSpeed: 7, MaxBandwidth: 4,
			}
			if cfg.Procs < cfg.Apps {
				cfg.Procs = cfg.Apps
			}
			inst := workload.MustInstance(rng, cfg)
			m, err := workload.RandomMapping(rng, &inst)
			if err != nil {
				return err
			}
			results, err := sim.Simulate(&inst, &m, model, sim.Options{})
			if err != nil {
				return err
			}
			for a, r := range results {
				wantT := mapping.AppPeriod(&inst, &m, a, model)
				wantL := mapping.AppLatency(&inst, &m, a)
				maxP = math.Max(maxP, relDev(r.SteadyPeriod, wantT))
				maxL = math.Max(maxL, relDev(r.FirstLatency, wantL))
			}
		}
		ok := maxP < 1e-9 && maxL < 1e-9
		tb.Addf(model.String(), trials, maxP, maxL, okMark(ok))
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: simulator deviates: period %g latency %g", maxP, maxL)
		}
	}
	tb.Render(w)
	fmt.Fprintln(w)
	return firstErr
}

func relDev(got, want float64) float64 {
	return math.Abs(got-want) / math.Max(1, math.Abs(want))
}

// Pareto prints the full period/energy frontier of the motivating example
// and answers the introduction's laptop and server problems
// (experiment PARETO).
func Pareto(w io.Writer) error {
	inst := pipeline.MotivatingExample()
	front, err := exact.ParetoFront(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		return err
	}
	tb := report.New("PARETO - (period, latency, energy) frontier of the Fig. 1 instance",
		"period", "latency", "energy")
	for _, pt := range front {
		tb.Addf(pt.Period, pt.Latency, pt.Energy)
	}
	tb.Render(w)
	fmt.Fprintln(w)

	q := report.New("PARETO - laptop & server problems on the frontier", "question", "answer")
	// Server problem: least energy with period <= 2 must be 46.
	bestE := math.Inf(1)
	for _, pt := range front {
		if fmath.LE(pt.Period, 2) && pt.Energy < bestE {
			bestE = pt.Energy
		}
	}
	q.Addf("least energy with period <= 2 (server)", bestE)
	// Laptop problem: best period within energy 46.
	bestT := math.Inf(1)
	for _, pt := range front {
		if fmath.LE(pt.Energy, 46) && pt.Period < bestT {
			bestT = pt.Period
		}
	}
	q.Addf("best period within energy 46 (laptop)", bestT)
	q.Render(w)
	fmt.Fprintln(w)
	if !fmath.EQ(bestE, 46) || !fmath.EQ(bestT, 2) {
		return fmt.Errorf("experiments: pareto answers (%g, %g), want (46, 2)", bestE, bestT)
	}
	return nil
}

// Scaling demonstrates the polynomial/exponential split (experiment
// SCALING): wall-clock growth of the Theorem 1 and Theorem 3 algorithms
// versus the exhaustive search-space growth on NP-hard cells.
func Scaling(w io.Writer, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	tb := report.New("SCALING - polynomial algorithms (wall clock)",
		"algorithm", "size (N stages, p procs)", "time")
	for _, n := range []int{8, 16, 32, 64} {
		cfg := workload.Config{Apps: 2, MinStages: n / 2, MaxStages: n / 2, Procs: n + 2, Modes: 2,
			Class: pipeline.CommHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8}
		inst := workload.MustInstance(rng, cfg)
		start := time.Now()
		if _, err := core.Solve(&inst, core.Request{Rule: mapping.OneToOne, Objective: core.Period}); err != nil {
			return err
		}
		tb.Addf("Thm 1 one-to-one period (comm-hom)", fmt.Sprintf("N=%d p=%d", n, n+2), time.Since(start).String())
	}
	for _, n := range []int{16, 32, 64, 128} {
		cfg := workload.Config{Apps: 2, MinStages: n / 2, MaxStages: n / 2, Procs: 16, Modes: 2,
			Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8}
		inst := workload.MustInstance(rng, cfg)
		start := time.Now()
		if _, err := core.Solve(&inst, core.Request{Rule: mapping.Interval, Objective: core.Period}); err != nil {
			return err
		}
		tb.Addf("Thm 3 interval period (fully-hom)", fmt.Sprintf("N=%d p=16", n), time.Since(start).String())
	}
	tb.Render(w)
	fmt.Fprintln(w)

	ex := report.New("SCALING - exhaustive search space on NP-hard cells",
		"instance", "valid mappings", "note")
	prev := int64(0)
	for _, size := range []struct{ apps, stages, procs int }{{1, 3, 3}, {1, 4, 4}, {2, 3, 5}, {2, 4, 6}} {
		cfg := workload.Config{Apps: size.apps, MinStages: size.stages, MaxStages: size.stages,
			Procs: size.procs, Modes: 2, Class: pipeline.FullyHeterogeneous,
			MaxWork: 5, MaxData: 3, MaxSpeed: 5, MaxBandwidth: 3}
		inst := workload.MustInstance(rng, cfg)
		n, err := exact.CountMappings(&inst, exact.Options{Rule: mapping.Interval, Modes: exact.AllModes, Limit: 200_000_000})
		if err != nil {
			return err
		}
		note := ""
		if prev > 0 {
			note = fmt.Sprintf("x%.1f over previous", float64(n)/float64(prev))
		}
		ex.Addf(fmt.Sprintf("A=%d n=%d p=%d m=2 (fully het)", size.apps, size.stages, size.procs), n, note)
		prev = n
	}
	ex.Render(w)
	fmt.Fprintln(w)
	return nil
}

// All runs every experiment in sequence.
func All(w io.Writer, seed int64) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(Fig1(w))
	keep(Table1(w, seed))
	keep(Table2(w, seed))
	keep(SimValidation(w, seed, 60))
	keep(Pareto(w))
	keep(NPC(w))
	keep(Extensions(w, seed))
	keep(Scaling(w, seed))
	keep(Diff(w, seed, 0))
	return firstErr
}
