package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/gen"
	"repro/internal/jobspec"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/server"
)

// Load-experiment shape. The two traffic patterns are built to separate
// the cache policies: the zipf corpus holds far more distinct jobs than
// the cluster's total cache capacity (3 x loadCacheCap), so replacement
// pressure is constant, and its popularity ranking anti-correlates with
// recompute cost — the hot head is the loadHotJobs cheapest scenarios
// (microsecond solves), the cold tail is drawn from the loadExpensivePool
// most expensive ones (millisecond solves, distinct keys via the request
// seed). Under that regime cost-aware eviction reliably loses: it hoards
// expensive cold results and keeps re-evicting the cheap hot set, while
// LRU keeps the hot set resident, so the duel has a decisive winner for
// the adaptive tier to find. The uniform working set is small enough
// that no shard ever exceeds its quota, so every policy scores the
// identical hit rate and the adaptive tier can only match it, never
// lose. The gate ("adaptive >= the worse pinned policy on both
// traffics") therefore has a wide margin under zipf and an exact tie
// under uniform.
const (
	loadReplicas      = 3
	loadBatchJobs     = 8
	loadCacheCap      = 64 // per replica; 32 shards x quota 2
	loadPricedPool    = 600
	loadHotJobs       = 64
	loadColdJobs      = 2000
	loadExpensivePool = 100
	loadZipfS         = 1.2
	loadUniformCorpus = 16
	loadExactCap      = 500 // branch-and-bound node budget, as in chaos
	loadWorkers       = 4   // concurrent client posters
)

// loadJob is one pre-encoded corpus job: the instance JSON and the wire
// request that BuildRequest maps back onto the exact generated engine
// request (jobspec.RequestOf round trip).
type loadJob struct {
	inst json.RawMessage
	req  jobspec.Request
}

// loadRun is one (traffic, policy) measurement in BENCH_service.json.
// All numbers cover the measured phase only (the equal-sized warmup that
// precedes it is excluded; hits/misses/evictions are deltas of the
// cumulative /stats counters across the phase).
type loadRun struct {
	Traffic              string  `json:"traffic"`
	Policy               string  `json:"policy"`
	Batches              int     `json:"batches"`
	Jobs                 int     `json:"jobs"`
	JobErrors            int     `json:"jobErrors"` // infeasible degenerate draws; sheds fail the run
	ThroughputJobsPerSec float64 `json:"throughputJobsPerSec"`
	P50Ms                float64 `json:"p50Ms"`
	P99Ms                float64 `json:"p99Ms"`
	CacheHits            int64   `json:"cacheHits"`
	CacheMisses          int64   `json:"cacheMisses"`
	Evictions            int64   `json:"evictions"`
	HitRate              float64 `json:"hitRate"`
	// FollowerPolicies is each replica's final follower policy (adaptive
	// runs only): what the set duel converged to.
	FollowerPolicies []string `json:"followerPolicies,omitempty"`
}

// loadGate records one traffic's acceptance check: the adaptive policy's
// hit rate must not fall below the worse of the two pinned policies.
type loadGate struct {
	Traffic     string  `json:"traffic"`
	Adaptive    float64 `json:"adaptive"`
	WorsePinned float64 `json:"worsePinned"`
	WorsePolicy string  `json:"worsePolicy"`
	OK          bool    `json:"ok"`
}

// loadBench is the BENCH_service.json document.
type loadBench struct {
	Schema             string     `json:"schema"`
	Seed               int64      `json:"seed"`
	Replicas           int        `json:"replicas"`
	Batches            int        `json:"batches"`
	BatchJobs          int        `json:"batchJobs"`
	CacheCapPerReplica int        `json:"cacheCapPerReplica"`
	ZipfCorpus         int        `json:"zipfCorpus"`
	ZipfHotJobs        int        `json:"zipfHotJobs"`
	ZipfColdJobs       int        `json:"zipfColdJobs"`
	ZipfS              float64    `json:"zipfS"`
	UniformCorpus      int        `json:"uniformCorpus"`
	Runs               []loadRun  `json:"runs"`
	Gates              []loadGate `json:"gates"`
}

// Load runs the service load experiment (experiment LOAD): an in-process
// cluster of loadReplicas pipeserved replicas behind the consistent-hash
// gateway, driven with batched solver traffic drawn from the seeded
// scenario corpus. For each traffic pattern (zipf over a corpus much
// larger than the cluster's cache capacity; uniform over a working set
// that fits) it measures throughput, per-batch p50/p99 latency and the
// cluster-wide cache hit rate under each replacement policy — lru and
// cost pinned, then the set-dueling adaptive tier — and enforces the
// acceptance gate: adaptive's hit rate must be at least the worse pinned
// policy's on both traffics. Each measurement drives an equal-sized
// unmeasured warmup first, so the reported numbers are steady state.
// Results are written to outPath (BENCH_service.json). batches <= 0 runs
// 100 measured batches per (traffic, policy) pair.
func Load(w io.Writer, seed int64, batches int, outPath string) error {
	if batches <= 0 {
		batches = 100
	}
	jobs, err := loadCorpusJobs(seed)
	if err != nil {
		return fmt.Errorf("experiments: building load corpus: %w", err)
	}

	// Pre-draw both traffic streams once so the three policy runs of a
	// traffic replay byte-identical request sequences.
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, loadZipfS, 1, uint64(len(jobs)-1))
	zipfStream := make([]int, 2*batches*loadBatchJobs) // warmup half + measured half
	for i := range zipfStream {
		zipfStream[i] = int(zipf.Uint64())
	}
	uniStream := make([]int, 2*batches*loadBatchJobs)
	for i := range uniStream {
		uniStream[i] = rng.Intn(loadUniformCorpus)
	}

	traffics := []struct {
		name   string
		jobs   []loadJob
		stream []int
	}{
		{"zipf", jobs, zipfStream},
		{"uniform", jobs[:loadUniformCorpus], uniStream},
	}
	policies := []batch.Policy{batch.PolicyLRU, batch.PolicyCost, batch.PolicyAdaptive}

	bench := loadBench{
		Schema:             "pipegateway-load/v1",
		Seed:               seed,
		Replicas:           loadReplicas,
		Batches:            batches,
		BatchJobs:          loadBatchJobs,
		CacheCapPerReplica: loadCacheCap,
		ZipfCorpus:         len(jobs),
		ZipfHotJobs:        loadHotJobs,
		ZipfColdJobs:       loadColdJobs,
		ZipfS:              loadZipfS,
		UniformCorpus:      loadUniformCorpus,
	}
	rates := make(map[string]map[string]float64) // traffic -> policy -> hit rate
	for _, tr := range traffics {
		rates[tr.name] = make(map[string]float64)
		for _, pol := range policies {
			run, err := loadRunOne(tr.name, pol, tr.jobs, tr.stream, batches)
			if err != nil {
				return fmt.Errorf("experiments: load run %s/%s: %w", tr.name, pol, err)
			}
			bench.Runs = append(bench.Runs, run)
			rates[tr.name][pol.String()] = run.HitRate
		}
	}

	for _, tr := range traffics {
		r := rates[tr.name]
		worse, worsePol := r["lru"], "lru"
		if r["cost"] < worse {
			worse, worsePol = r["cost"], "cost"
		}
		// A hair of float tolerance: the gate is about policy quality, not
		// round-off in the hit-rate division.
		//lint:allow floatcmp the gate compares measured rates with an explicit epsilon
		ok := r["adaptive"] >= worse-1e-9
		bench.Gates = append(bench.Gates, loadGate{
			Traffic: tr.name, Adaptive: r["adaptive"],
			WorsePinned: worse, WorsePolicy: worsePol, OK: ok,
		})
	}

	tb := report.New(fmt.Sprintf("LOAD - %d-replica gateway cluster, %d batches x %d jobs (seed %d)",
		loadReplicas, batches, loadBatchJobs, seed),
		"traffic/policy", "jobs/s", "p50 ms", "p99 ms", "hit rate", "evictions", "ok")
	for _, run := range bench.Runs {
		tb.Addf(run.Traffic+"/"+run.Policy,
			fmt.Sprintf("%.0f", run.ThroughputJobsPerSec),
			fmt.Sprintf("%.2f", run.P50Ms), fmt.Sprintf("%.2f", run.P99Ms),
			fmt.Sprintf("%.3f", run.HitRate), run.Evictions, "-")
	}
	for _, gt := range bench.Gates {
		tb.Addf(fmt.Sprintf("gate %s: adaptive >= worse pinned (%s)", gt.Traffic, gt.WorsePolicy),
			"-", "-", "-",
			fmt.Sprintf("%.3f >= %.3f", gt.Adaptive, gt.WorsePinned), "-", okMark(gt.OK))
	}
	tb.Render(w)
	fmt.Fprintln(w)

	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return fmt.Errorf("experiments: writing %s: %w", outPath, err)
	}
	fmt.Fprintf(w, "load: wrote %s (%d runs)\n", outPath, len(bench.Runs))

	for _, gt := range bench.Gates {
		if !gt.OK {
			return fmt.Errorf("experiments: load gate failed on %s traffic: adaptive hit rate %.4f < worse pinned (%s) %.4f",
				gt.Traffic, gt.Adaptive, gt.WorsePolicy, gt.WorsePinned)
		}
	}
	return nil
}

// loadCorpusJobs renders the seeded scenario corpus into wire jobs: each
// instance encoded once, each request shipped through jobspec.RequestOf
// so the replica solves the exact generated problem. Exact budgets are
// capped as in the chaos experiment so no single cold miss dominates a
// batch.
//
// The priced pool is split bimodally: the loadHotJobs cheapest scenarios
// become the corpus head (zipf's hot set, also the uniform working set),
// and the cold tail is synthesized from the loadExpensivePool most
// expensive scenarios, each repeated under distinct request seeds — a
// different seed changes the canonical cache key but not the
// (millisecond-scale) recompute cost. The resulting ~1000x cost gap
// between hot and cold entries is far beyond any replica-side timing
// noise, so cost-aware eviction's ranking of "cheapest to recompute" is
// unambiguous during the run.
func loadCorpusJobs(seed int64) ([]loadJob, error) {
	corpus := gen.DefaultSpace().Corpus(seed, loadPricedPool)
	priced := make([]loadJob, len(corpus))
	costs := make([]time.Duration, len(corpus))
	for i := range corpus {
		sc := &corpus[i]
		var buf bytes.Buffer
		if err := pipeline.EncodeJSON(&buf, &sc.Inst); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", sc.Index, sc.Name, err)
		}
		req := sc.Req
		if req.ExactLimit == 0 || req.ExactLimit > loadExactCap {
			req.ExactLimit = loadExactCap
		}
		// One local solve per scenario prices the job the same way a
		// replica's cache will (solve wall clock at publish). Infeasible
		// degenerate draws fail fast and price accordingly.
		start := time.Now()
		core.Solve(&sc.Inst, req)
		costs[i] = time.Since(start)
		priced[i] = loadJob{
			inst: json.RawMessage(bytes.Clone(buf.Bytes())),
			req:  jobspec.RequestOf(req),
		}
	}
	sort.Sort(&loadByCost{jobs: priced, costs: costs})

	jobs := make([]loadJob, 0, loadHotJobs+loadColdJobs)
	jobs = append(jobs, priced[:loadHotJobs]...)
	pool := priced[len(priced)-loadExpensivePool:]
	for j := 0; j < loadColdJobs; j++ {
		v := pool[j%len(pool)]
		v.req.Seed = int64(1000 + j)
		jobs = append(jobs, v)
	}
	return jobs, nil
}

// loadByCost sorts jobs and their measured costs together, cheapest
// first.
type loadByCost struct {
	jobs  []loadJob
	costs []time.Duration
}

func (s *loadByCost) Len() int           { return len(s.jobs) }
func (s *loadByCost) Less(i, j int) bool { return s.costs[i] < s.costs[j] }
func (s *loadByCost) Swap(i, j int) {
	s.jobs[i], s.jobs[j] = s.jobs[j], s.jobs[i]
	s.costs[i], s.costs[j] = s.costs[j], s.costs[i]
}

// loadStats is the slice of the gateway's /stats document the experiment
// reads back after a run.
type loadStats struct {
	Replicas []struct {
		Stats *struct {
			Cache struct {
				FollowerPolicy string `json:"followerPolicy"`
			} `json:"cache"`
		} `json:"stats"`
	} `json:"replicas"`
	Merged struct {
		CacheHits   int64 `json:"cacheHits"`
		CacheMisses int64 `json:"cacheMisses"`
		Evictions   int64 `json:"evictions"`
	} `json:"merged"`
}

// loadRunOne stands up a fresh cluster (loadReplicas pipeserved replicas
// with the given cache policy behind one gateway), replays the traffic
// stream as batches through concurrent client workers, and reads the
// merged /stats. The first half of the stream is warmup — caches fill,
// the set duel converges — and is excluded: throughput, latency and hit
// rate are computed over the measured second half (for the hit rate, as
// the delta of the cumulative /stats counters), so the numbers describe
// the steady state rather than the cold start. Per-job infeasible errors
// (degenerate corpus draws) are counted and tolerated; a shed or
// internal error slot fails the run — with every replica up, the
// serving path must never drop a job.
func loadRunOne(traffic string, pol batch.Policy, jobs []loadJob, stream []int, batches int) (loadRun, error) {
	urls := make([]string, loadReplicas)
	closers := make([]func(), 0, loadReplicas+1)
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for i := range urls {
		ts := httptest.NewServer(server.New(server.Config{CacheCap: loadCacheCap, CachePolicy: pol}))
		closers = append(closers, ts.Close)
		urls[i] = ts.URL
	}
	client := gateway.NewClient(2 * time.Minute)
	gw, err := gateway.New(gateway.Config{
		Replicas:  urls,
		Client:    client,
		RetryBase: time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		return loadRun{}, err
	}
	gts := httptest.NewServer(gw)
	closers = append(closers, gts.Close)

	bodies := make([][]byte, 2*batches) // first half warmup, second measured
	for b := range bodies {
		file := jobspec.File{Jobs: make([]jobspec.Job, loadBatchJobs)}
		for j := range file.Jobs {
			lj := jobs[stream[b*loadBatchJobs+j]]
			file.Jobs[j] = jobspec.Job{Instance: lj.inst, Request: lj.req}
		}
		body, err := json.Marshal(file)
		if err != nil {
			return loadRun{}, err
		}
		bodies[b] = body
	}

	var (
		mu        sync.Mutex
		latencies = make([]float64, 0, batches)
		jobErrors int
		firstErr  error
	)
	drive := func(part [][]byte, collect bool) {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < loadWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for b := range next {
					t0 := time.Now()
					errs, err := loadPostBatch(client, gts.URL, part[b])
					ms := float64(time.Since(t0).Microseconds()) / 1000
					mu.Lock()
					if collect {
						latencies = append(latencies, ms)
						jobErrors += errs
					}
					if err != nil && firstErr == nil {
						firstErr = fmt.Errorf("batch %d: %w", b, err)
					}
					mu.Unlock()
				}
			}()
		}
		for b := range part {
			next <- b
		}
		close(next)
		wg.Wait()
	}

	drive(bodies[:batches], false)
	if firstErr != nil {
		return loadRun{}, fmt.Errorf("warmup: %w", firstErr)
	}
	before, err := loadSampleStats(client, gts.URL)
	if err != nil {
		return loadRun{}, err
	}
	start := time.Now()
	drive(bodies[batches:], true)
	wall := time.Since(start)
	if firstErr != nil {
		return loadRun{}, firstErr
	}
	after, err := loadSampleStats(client, gts.URL)
	if err != nil {
		return loadRun{}, err
	}

	hits := after.Merged.CacheHits - before.Merged.CacheHits
	misses := after.Merged.CacheMisses - before.Merged.CacheMisses
	run := loadRun{
		Traffic:              traffic,
		Policy:               pol.String(),
		Batches:              batches,
		Jobs:                 batches * loadBatchJobs,
		JobErrors:            jobErrors,
		ThroughputJobsPerSec: float64(batches*loadBatchJobs) / wall.Seconds(),
		P50Ms:                percentile(latencies, 0.50),
		P99Ms:                percentile(latencies, 0.99),
		CacheHits:            hits,
		CacheMisses:          misses,
		Evictions:            after.Merged.Evictions - before.Merged.Evictions,
	}
	if total := hits + misses; total > 0 {
		run.HitRate = float64(hits) / float64(total)
	}
	if pol == batch.PolicyAdaptive {
		for _, rep := range after.Replicas {
			if rep.Stats != nil {
				run.FollowerPolicies = append(run.FollowerPolicies, rep.Stats.Cache.FollowerPolicy)
			}
		}
	}
	return run, nil
}

// loadSampleStats reads the gateway's /stats once.
func loadSampleStats(client *http.Client, base string) (loadStats, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return loadStats{}, err
	}
	defer resp.Body.Close()
	var st loadStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return loadStats{}, fmt.Errorf("decoding /stats: %w", err)
	}
	return st, nil
}

// loadPostBatch posts one batch and scans the result slots: infeasible
// errors are counted (the corpus deliberately contains degenerate,
// infeasible draws), any shed/timeout/internal slot or non-200 response
// is a hard failure.
func loadPostBatch(client *http.Client, base string, body []byte) (jobErrors int, err error) {
	resp, err := client.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("gateway answered %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var out struct {
		Results []struct {
			Code  string `json:"code"`
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return 0, err
	}
	for i, r := range out.Results {
		if r.Error == "" {
			continue
		}
		switch r.Code {
		case jobspec.CodeShed, jobspec.CodeTimeout, jobspec.CodeInternal:
			return jobErrors, fmt.Errorf("job %d dropped by the serving path (%s): %s", i, r.Code, r.Error)
		default:
			jobErrors++
		}
	}
	return jobErrors, nil
}
