package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/algo/exact"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/npc"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/workload"
)

// trialsPerCell is how many random instances validate each polynomial cell.
const trialsPerCell = 12

// cellCheck validates one complexity-table cell: generate random instances
// of the given platform class, run core.Solve, verify the dispatcher used
// the expected path, and (for optimality cells) compare against the
// exhaustive oracle.
type cellCheck struct {
	problem    string
	platform   string
	paperClaim string // "polynomial" or "NP-complete"
	// wantMethods lists acceptable dispatch methods.
	wantMethods []core.Method
	// gen draws an instance of the right class.
	gen func(rng *rand.Rand) pipeline.Instance
	// req builds the request (bounds may depend on the instance).
	req func(inst *pipeline.Instance, rng *rand.Rand) core.Request
	// oracle computes the optimum, or nil to skip value comparison
	// (pure dispatch checks).
	oracle func(inst *pipeline.Instance, req core.Request) (float64, error)
}

// run executes the cell check and returns a table row plus an error if the
// reproduction failed. The random draws happen sequentially up front so the
// rng stream is identical to a trial-by-trial run, then all trials are
// solved concurrently as one batch (under the caller's context, so a
// table run embedded in a larger process can be cancelled) and validated
// in order.
func (c *cellCheck) run(ctx context.Context, rng *rand.Rand) (cellResult, error) {
	insts := make([]pipeline.Instance, trialsPerCell)
	reqs := make([]core.Request, trialsPerCell)
	jobs := make([]batch.Job, trialsPerCell)
	for t := 0; t < trialsPerCell; t++ {
		insts[t] = c.gen(rng)
		reqs[t] = c.req(&insts[t], rng)
		jobs[t] = batch.Job{Inst: &insts[t], Req: reqs[t]}
	}
	solved, _ := batch.SolveCtx(ctx, jobs, batch.Options{})

	// The exhaustive oracle dominates a cell's wall time and is independent
	// per trial, so it fans out too; the validation below stays sequential
	// and order-preserving.
	type oracleOut struct {
		val float64
		err error
	}
	oracles := make([]oracleOut, trialsPerCell)
	if c.oracle != nil {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for t := 0; t < trialsPerCell; t++ {
			if solved[t].Err != nil {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(t int) {
				defer wg.Done()
				defer func() { <-sem }()
				v, err := c.oracle(&insts[t], reqs[t])
				oracles[t] = oracleOut{val: v, err: err}
			}(t)
		}
		wg.Wait()
	}

	matches, trials := 0, 0
	var firstErr error
	method := ""
	for t := 0; t < trialsPerCell; t++ {
		res, err := solved[t].Result, solved[t].Err
		if errors.Is(err, core.ErrInfeasible) {
			continue // bound draw was infeasible; not a failure
		}
		if err != nil {
			return cellResult{}, fmt.Errorf("experiments: %s [%s]: %w", c.problem, c.platform, err)
		}
		okMethod := false
		for _, m := range c.wantMethods {
			if res.Method == m {
				okMethod = true
				method = string(m)
			}
		}
		if !okMethod {
			return cellResult{}, fmt.Errorf("experiments: %s [%s]: dispatched to %q", c.problem, c.platform, res.Method)
		}
		if c.oracle == nil {
			matches++
			trials++
			continue
		}
		want, err := oracles[t].val, oracles[t].err
		if errors.Is(err, exact.ErrInfeasible) {
			continue
		}
		if err != nil {
			return cellResult{}, fmt.Errorf("experiments: %s [%s] oracle: %w", c.problem, c.platform, err)
		}
		trials++
		if fmath.EQ(res.Value, want) {
			matches++
		} else if firstErr == nil {
			firstErr = fmt.Errorf("experiments: %s [%s]: value %g, optimum %g", c.problem, c.platform, res.Value, want)
		}
	}
	optimal := fmt.Sprintf("%d/%d optimal", matches, trials)
	if c.oracle == nil {
		optimal = fmt.Sprintf("%d dispatch checks", trials)
	}
	row := cellResult{
		problem:  c.problem,
		platform: c.platform,
		paper:    c.paperClaim,
		method:   method,
		optimal:  optimal,
	}
	if firstErr == nil && trials == 0 {
		firstErr = fmt.Errorf("experiments: %s [%s]: no feasible trials", c.problem, c.platform)
	}
	return row, firstErr
}

// Generators for the three platform shapes at oracle-friendly sizes.

func genFullyHom(modes int) func(rng *rand.Rand) pipeline.Instance {
	return func(rng *rand.Rand) pipeline.Instance {
		return workload.MustInstance(rng, workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 4,
			Procs: 3 + rng.Intn(2), Modes: modes,
			Class: pipeline.FullyHomogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 6,
		})
	}
}

func genCommHomOneToOne(modes int) func(rng *rand.Rand) pipeline.Instance {
	return func(rng *rand.Rand) pipeline.Instance {
		cfg := workload.Config{
			// At least two stages so the platform has at least two
			// processors: a single-processor platform is degenerately
			// fully homogeneous, which would change the cell under test.
			Apps: 1 + rng.Intn(2), MinStages: 2, MaxStages: 3,
			Procs: 1, Modes: modes,
			Class: pipeline.CommHomogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 7,
		}
		inst := workload.MustInstance(rng, cfg)
		cfg.Procs = inst.TotalStages() + rng.Intn(2)
		inst.Platform = workload.Platform(rng, cfg)
		return inst
	}
}

func genCommHom(modes int) func(rng *rand.Rand) pipeline.Instance {
	return func(rng *rand.Rand) pipeline.Instance {
		return workload.MustInstance(rng, workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 4,
			Procs: 3 + rng.Intn(2), Modes: modes,
			Class: pipeline.CommHomogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 6,
		})
	}
}

// forceProcHet makes sure at least one processor's speed set differs, so a
// random communication homogeneous draw cannot degenerate into a fully
// homogeneous platform (which would change the cell being validated).
func forceProcHet(gen func(rng *rand.Rand) pipeline.Instance) func(rng *rand.Rand) pipeline.Instance {
	return func(rng *rand.Rand) pipeline.Instance {
		inst := gen(rng)
		if inst.Platform.HomogeneousProcessors() {
			s := inst.Platform.Processors[0].Speeds
			s[len(s)-1]++ // keeps the set ascending and distinct
		}
		return inst
	}
}

func genFullyHet(modes int) func(rng *rand.Rand) pipeline.Instance {
	return func(rng *rand.Rand) pipeline.Instance {
		return workload.MustInstance(rng, workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 3,
			Procs: 3 + rng.Intn(2), Modes: modes,
			Class: pipeline.FullyHeterogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 6, MaxBandwidth: 3,
		})
	}
}

func genFullyHetOneToOne(modes int) func(rng *rand.Rand) pipeline.Instance {
	return func(rng *rand.Rand) pipeline.Instance {
		cfg := workload.Config{
			Apps: 1, MinStages: 2, MaxStages: 3,
			Procs: 1, Modes: modes,
			Class: pipeline.FullyHeterogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 7, MaxBandwidth: 3,
		}
		inst := workload.MustInstance(rng, cfg)
		cfg.Procs = inst.TotalStages() + 1
		inst.Platform = workload.Platform(rng, cfg)
		return inst
	}
}

func monoReq(rule mapping.Rule, obj core.Criterion) func(inst *pipeline.Instance, rng *rand.Rand) core.Request {
	return func(inst *pipeline.Instance, rng *rand.Rand) core.Request {
		return core.Request{Rule: rule, Model: pipeline.Overlap, Objective: obj, HeurIters: 1200, HeurRestarts: 2}
	}
}

// Table1 validates every cell of the paper's Table 1 (mono-criterion
// complexity results).
func Table1(w io.Writer, seed int64) error {
	return Table1Ctx(context.Background(), w, seed)
}

// Table1Ctx is Table1 under a caller-supplied context, passed down to the
// per-cell batch solves.
func Table1Ctx(ctx context.Context, w io.Writer, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	polyPeriodOracle := func(inst *pipeline.Instance, req core.Request) (float64, error) {
		sol, err := exact.MinPeriod(inst, req.Rule, req.Model)
		return sol.Value, err
	}
	polyLatencyOracle := func(inst *pipeline.Instance, req core.Request) (float64, error) {
		sol, err := exact.MinLatency(inst, req.Rule)
		return sol.Value, err
	}
	cells := []cellCheck{
		{
			problem: "period, one-to-one", platform: "com-hom (incl. het procs)", paperClaim: "polynomial (Thm 1)",
			wantMethods: []core.Method{core.MethodGreedyBinarySearch},
			gen:         genCommHomOneToOne(2), req: monoReq(mapping.OneToOne, core.Period), oracle: polyPeriodOracle,
		},
		{
			problem: "period, one-to-one", platform: "com-het", paperClaim: "NP-complete (Thm 2)",
			wantMethods: []core.Method{core.MethodExact, core.MethodHeuristic},
			gen:         genFullyHetOneToOne(1), req: monoReq(mapping.OneToOne, core.Period), oracle: polyPeriodOracle,
		},
		{
			problem: "period, interval", platform: "proc-hom", paperClaim: "polynomial (Thm 3)",
			wantMethods: []core.Method{core.MethodDynProgAlloc},
			gen:         genFullyHom(1), req: monoReq(mapping.Interval, core.Period), oracle: polyPeriodOracle,
		},
		{
			problem: "period, interval", platform: "special-app / proc-het", paperClaim: "NP-complete (Thm 5)",
			wantMethods: []core.Method{core.MethodExact, core.MethodHeuristic},
			gen:         forceProcHet(genCommHom(1)), req: monoReq(mapping.Interval, core.Period), oracle: polyPeriodOracle,
		},
		{
			problem: "latency, one-to-one", platform: "proc-hom", paperClaim: "polynomial (Thm 8)",
			wantMethods: []core.Method{core.MethodTrivial},
			gen: func(rng *rand.Rand) pipeline.Instance {
				cfg := workload.Config{Apps: 1, MinStages: 2, MaxStages: 3, Procs: 1, Modes: 2,
					Class: pipeline.FullyHomogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 6}
				inst := workload.MustInstance(rng, cfg)
				cfg.Procs = inst.TotalStages() + 1
				inst.Platform = workload.Platform(rng, cfg)
				return inst
			},
			req: monoReq(mapping.OneToOne, core.Latency), oracle: polyLatencyOracle,
		},
		{
			problem: "latency, one-to-one", platform: "special-app / proc-het", paperClaim: "NP-complete (Thm 9)",
			wantMethods: []core.Method{core.MethodExact, core.MethodHeuristic},
			gen:         forceProcHet(genCommHomOneToOne(1)), req: monoReq(mapping.OneToOne, core.Latency), oracle: polyLatencyOracle,
		},
		{
			problem: "latency, interval", platform: "com-hom (incl. het procs)", paperClaim: "polynomial (Thm 12)",
			wantMethods: []core.Method{core.MethodGreedyBinarySearch},
			gen:         genCommHom(2), req: monoReq(mapping.Interval, core.Latency), oracle: polyLatencyOracle,
		},
		{
			problem: "latency, interval", platform: "com-het", paperClaim: "NP-complete (Thm 13)",
			wantMethods: []core.Method{core.MethodExact, core.MethodHeuristic},
			gen:         genFullyHet(1), req: monoReq(mapping.Interval, core.Latency), oracle: polyLatencyOracle,
		},
	}
	return renderCells(ctx, w, "TABLE 1 - mono-criterion complexity map", cells, rng)
}

// Table2 validates every cell of the paper's Table 2 (multi-criteria
// complexity results with multi-modal processors).
func Table2(w io.Writer, seed int64) error {
	return Table2Ctx(context.Background(), w, seed)
}

// Table2Ctx is Table2 under a caller-supplied context, passed down to the
// per-cell batch solves.
func Table2Ctx(ctx context.Context, w io.Writer, seed int64) error {
	rng := rand.New(rand.NewSource(seed + 1))
	// Bound helpers: draw period/latency bounds between the sequential and
	// fully parallel extremes so problems are usually feasible but
	// non-trivial.
	periodBounds := func(inst *pipeline.Instance, rng *rand.Rand, slack float64) []float64 {
		sol, err := exact.MinPeriod(inst, mapping.Interval, pipeline.Overlap)
		if err != nil {
			return core.UniformBounds(inst, 1)
		}
		return core.UniformBounds(inst, sol.Value*slack)
	}
	latencyBounds := func(inst *pipeline.Instance, rng *rand.Rand, slack float64) []float64 {
		sol, err := exact.MinLatency(inst, mapping.Interval)
		if err != nil {
			return core.UniformBounds(inst, 1)
		}
		return core.UniformBounds(inst, sol.Value*slack)
	}
	cells := []cellCheck{
		{
			problem: "period/latency, interval", platform: "proc-hom", paperClaim: "polynomial (Thm 15-16)",
			wantMethods: []core.Method{core.MethodDynProgAlloc},
			gen:         genFullyHom(1),
			req: func(inst *pipeline.Instance, rng *rand.Rand) core.Request {
				return core.Request{Rule: mapping.Interval, Objective: core.Latency,
					PeriodBounds: periodBounds(inst, rng, 1.3)}
			},
			oracle: func(inst *pipeline.Instance, req core.Request) (float64, error) {
				sol, err := exact.MinLatencyGivenPeriod(inst, req.Rule, req.Model, req.PeriodBounds)
				return sol.Value, err
			},
		},
		{
			problem: "period/latency, interval", platform: "proc-het", paperClaim: "NP-complete (Thm 17)",
			wantMethods: []core.Method{core.MethodExact, core.MethodHeuristic},
			gen:         forceProcHet(genCommHom(1)),
			req: func(inst *pipeline.Instance, rng *rand.Rand) core.Request {
				return core.Request{Rule: mapping.Interval, Objective: core.Latency,
					PeriodBounds: periodBounds(inst, rng, 1.5), HeurIters: 1200, HeurRestarts: 2}
			},
			oracle: func(inst *pipeline.Instance, req core.Request) (float64, error) {
				sol, err := exact.MinLatencyGivenPeriod(inst, req.Rule, req.Model, req.PeriodBounds)
				return sol.Value, err
			},
		},
		{
			problem: "period/energy, one-to-one", platform: "com-hom (multi-modal)", paperClaim: "polynomial matching (Thm 19)",
			wantMethods: []core.Method{core.MethodMatching},
			gen:         genCommHomOneToOne(3),
			req: func(inst *pipeline.Instance, rng *rand.Rand) core.Request {
				sol, err := exact.MinPeriod(inst, mapping.OneToOne, pipeline.Overlap)
				if err != nil {
					return core.Request{Rule: mapping.OneToOne, Objective: core.Energy, PeriodBounds: core.UniformBounds(inst, 1)}
				}
				return core.Request{Rule: mapping.OneToOne, Objective: core.Energy,
					PeriodBounds: core.UniformBounds(inst, sol.Value*(1.2+rng.Float64()))}
			},
			oracle: func(inst *pipeline.Instance, req core.Request) (float64, error) {
				sol, err := exact.MinEnergyGivenPeriod(inst, req.Rule, req.Model, req.PeriodBounds)
				return sol.Value, err
			},
		},
		{
			problem: "period/energy, interval", platform: "proc-hom (multi-modal)", paperClaim: "polynomial DP (Thm 18+21)",
			wantMethods: []core.Method{core.MethodEnergyDP},
			gen:         genFullyHom(3),
			req: func(inst *pipeline.Instance, rng *rand.Rand) core.Request {
				return core.Request{Rule: mapping.Interval, Objective: core.Energy,
					PeriodBounds: periodBounds(inst, rng, 1.3+rng.Float64())}
			},
			oracle: func(inst *pipeline.Instance, req core.Request) (float64, error) {
				sol, err := exact.MinEnergyGivenPeriod(inst, req.Rule, req.Model, req.PeriodBounds)
				return sol.Value, err
			},
		},
		{
			problem: "period/energy, interval", platform: "proc-het", paperClaim: "NP-complete (Thm 22)",
			wantMethods: []core.Method{core.MethodExact, core.MethodHeuristic},
			gen:         forceProcHet(genCommHom(2)),
			req: func(inst *pipeline.Instance, rng *rand.Rand) core.Request {
				return core.Request{Rule: mapping.Interval, Objective: core.Energy,
					PeriodBounds: periodBounds(inst, rng, 1.5), HeurIters: 1200, HeurRestarts: 2}
			},
			oracle: nil, // heuristic cells: dispatch check only
		},
		{
			problem: "tri-criteria, interval", platform: "proc-hom uni-modal", paperClaim: "polynomial (Thm 23-24)",
			wantMethods: []core.Method{core.MethodUniModalBudget},
			gen:         genFullyHom(1),
			req: func(inst *pipeline.Instance, rng *rand.Rand) core.Request {
				return core.Request{Rule: mapping.Interval, Objective: core.Energy,
					PeriodBounds:  periodBounds(inst, rng, 1.4),
					LatencyBounds: latencyBounds(inst, rng, 1.6)}
			},
			oracle: func(inst *pipeline.Instance, req core.Request) (float64, error) {
				sol, err := exact.MinEnergyGivenPeriodLatency(inst, req.Rule, req.Model, req.PeriodBounds, req.LatencyBounds)
				return sol.Value, err
			},
		},
		{
			problem: "tri-criteria, interval", platform: "proc-hom multi-modal", paperClaim: "NP-hard (Thm 26-27)",
			wantMethods: []core.Method{core.MethodExact, core.MethodHeuristic},
			gen:         genFullyHom(3),
			req: func(inst *pipeline.Instance, rng *rand.Rand) core.Request {
				return core.Request{Rule: mapping.Interval, Objective: core.Energy,
					PeriodBounds:  periodBounds(inst, rng, 1.4),
					LatencyBounds: latencyBounds(inst, rng, 1.8),
					HeurIters:     1200, HeurRestarts: 2}
			},
			oracle: func(inst *pipeline.Instance, req core.Request) (float64, error) {
				sol, err := exact.MinEnergyGivenPeriodLatency(inst, req.Rule, req.Model, req.PeriodBounds, req.LatencyBounds)
				return sol.Value, err
			},
		},
	}
	return renderCells(ctx, w, "TABLE 2 - multi-criteria complexity map (multi-modal processors)", cells, rng)
}

func renderCells(ctx context.Context, w io.Writer, title string, cells []cellCheck, rng *rand.Rand) error {
	tb := report.New(title, "problem", "platform", "paper", "our method", "validation")
	var firstErr error
	for i := range cells {
		row, err := cells[i].run(ctx, rng)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if row.problem != "" {
			tb.Add(row.problem, row.platform, row.paper, row.method, row.optimal)
		}
	}
	tb.Render(w)
	fmt.Fprintln(w)
	return firstErr
}

// NPC verifies the reduction gadget equivalences (experiments
// TAB1-P-INT-SPEC, TAB1-L-O2O and TAB2-PLE-MULTI's hardness side).
func NPC(w io.Writer) error {
	tb := report.New("NPC - reduction gadget equivalences",
		"reduction", "instance", "source solvable", "gadget feasible", "match")
	var firstErr error
	keep := func(name, inst string, solvable, feasible bool) {
		tb.Add(name, inst, okMark(solvable), okMark(feasible), okMark(solvable == feasible))
		if solvable != feasible && firstErr == nil {
			firstErr = fmt.Errorf("experiments: %s on %s: solvable=%v feasible=%v", name, inst, solvable, feasible)
		}
	}

	threes := []npc.ThreePartition{
		{B: 10, Items: []int{3, 3, 4, 2, 4, 4}},
		{B: 10, Items: []int{3, 3, 3, 3, 3, 5}},
		{B: 12, Items: []int{4, 4, 4, 4, 4, 4}},
	}
	for _, tp := range threes {
		inst := npc.EncodePeriodInterval(tp)
		sol, err := exact.MinPeriod(&inst, mapping.Interval, pipeline.Overlap)
		if err != nil {
			return err
		}
		_, solvable := tp.SolveGroups()
		keep("3-partition -> period/interval (Thm 5)", fmt.Sprintf("B=%d %v", tp.B, tp.Items), solvable, fmath.LE(sol.Value, 1))

		latInst := npc.EncodeLatencyOneToOne(tp)
		latSol, err := exact.MinLatency(&latInst, mapping.OneToOne)
		if err != nil {
			return err
		}
		_, tripleOK := tp.SolveTriples()
		keep("3-partition -> latency/one-to-one (Thm 9)", fmt.Sprintf("B=%d %v", tp.B, tp.Items), tripleOK, fmath.LE(latSol.Value, float64(tp.B)))
	}

	twos := []struct {
		items []int
		k, x  float64
	}{
		{[]int{1, 2, 3}, 8, 0.01},
		{[]int{1, 1, 4}, 8, 0.01},
	}
	for _, c := range twos {
		tp := npc.TwoPartition{Items: c.items}
		g := npc.EncodeTriCriteriaOneToOne(tp, c.k, c.x)
		_, solvable := tp.Solve()
		sol, err := exact.MinEnergyGivenPeriodLatency(&g.Instance, g.Rule, pipeline.Overlap,
			[]float64{g.PeriodBound}, []float64{g.LatencyBound})
		feasible := err == nil && fmath.LE(sol.Value, g.EnergyBound)
		if err != nil && !errors.Is(err, exact.ErrInfeasible) {
			return err
		}
		keep("2-partition -> tri-criteria (Thm 26)", fmt.Sprintf("%v", c.items), solvable, feasible)
	}
	tb.Render(w)
	fmt.Fprintln(w)
	return firstErr
}
