package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/diffcheck"
	"repro/internal/gen"
	"repro/internal/report"
)

// Diff runs the differential verification harness (experiment DIFF): a
// seeded corpus of randomly generated scenarios spanning every platform
// class, communication model, mapping rule and criterion is solved through
// the dispatcher and cross-checked against brute force, the discrete-event
// simulator, the compiled-plan layer and the NoPrune reference walk (see
// internal/diffcheck for the five checked properties). n <= 0 draws six
// full combination windows.
func Diff(w io.Writer, seed int64, n int) error {
	space := gen.DefaultSpace()
	if n <= 0 {
		n = 6 * space.CombinationCount()
	}
	sum, err := diffcheck.Run(space, seed, n, diffcheck.Options{})

	tb := report.New(fmt.Sprintf("DIFF - differential verification, %d seeded scenarios (seed %d)", sum.Checked, seed),
		"check", "count", "match")
	tb.Addf("scenarios checked", sum.Checked, okMark(err == nil))
	tb.Addf("variant combinations covered", len(sum.Combos), okMark(len(sum.Combos) == space.CombinationCount()))
	tb.Addf("feasible (solver == brute force)", sum.Feasible, okMark(err == nil))
	tb.Addf("infeasible (both sides agree)", sum.Infeasible, okMark(err == nil))
	tb.Addf("oracle skips (search space cap)", sum.OracleSkips, okMark(sum.OracleSkips <= sum.Checked/20))
	tb.Addf("forced-heuristic lower-bound checks", sum.HeurChecked, okMark(err == nil))
	tb.Addf("heuristic misses (allowed, incomplete)", sum.HeurMisses, "-")
	tb.Addf("degraded-mode soundness checks", sum.DegradedChecked, okMark(err == nil && sum.DegradedChecked > 0))
	tb.Addf("plan-equivalence scenarios", sum.PlanChecked, okMark(sum.PlanChecked == sum.Checked))
	tb.Addf("plan queries bit-identical to one-shot", sum.PlanQueries, okMark(err == nil))
	tb.Addf("pruned search == NoPrune walk (bitwise)", sum.PruneChecked, okMark(err == nil))
	tb.Render(w)
	fmt.Fprintln(w)

	mt := report.New("DIFF - dispatch methods exercised", "method", "scenarios")
	for _, m := range methodOrder(sum) {
		mt.Addf(string(m), sum.Methods[m])
	}
	mt.Render(w)
	fmt.Fprintln(w)

	if err != nil {
		return fmt.Errorf("experiments: differential corpus disagreed:\n%w", err)
	}
	if want := space.CombinationCount(); len(sum.Combos) != want {
		return fmt.Errorf("experiments: corpus covered %d of %d variant combinations (raise n)", len(sum.Combos), want)
	}
	return nil
}

// methodOrder returns the observed dispatch methods sorted by name so the
// table is stable across runs.
func methodOrder(sum diffcheck.Summary) []core.Method {
	out := make([]core.Method, 0, len(sum.Methods))
	for m := range sum.Methods {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
