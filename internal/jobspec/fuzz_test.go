package jobspec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// seedDocs builds job-file documents around the same instances the
// examples/ programs construct (the Section 2 motivating example, the
// quickstart homogeneous platform, the streaming-center preset), plus a
// few structurally interesting shapes, to seed the fuzz corpus.
func seedDocs(tb testing.TB) [][]byte {
	tb.Helper()
	encode := func(inst pipeline.Instance) []byte {
		var buf bytes.Buffer
		if err := pipeline.EncodeJSON(&buf, &inst); err != nil {
			tb.Fatal(err)
		}
		return buf.Bytes()
	}
	fig1 := encode(pipeline.MotivatingExample())
	quickstart := encode(pipeline.Instance{
		Apps: []pipeline.Application{{
			Name: "filter-chain", In: 4, Weight: 1,
			Stages: []pipeline.Stage{{Work: 2, Out: 4}, {Work: 6, Out: 4}, {Work: 6, Out: 4}, {Work: 8, Out: 2}, {Work: 3, Out: 1}},
		}},
		Platform: pipeline.NewHomogeneousPlatform(4, []float64{1, 2, 4}, 2, 1),
		Energy:   pipeline.EnergyModel{Static: 0.5, Alpha: 2},
	})
	streaming := encode(workload.StreamingCenter(6))

	docs := [][]byte{
		[]byte(fmt.Sprintf(`{"instance": %s, "jobs": [{"request": {"objective": "period"}}]}`, fig1)),
		[]byte(fmt.Sprintf(`{"instance": %s, "jobs": [
			{"request": {"objective": "energy", "periodBound": 2}},
			{"request": {"rule": "one-to-one", "model": "no-overlap", "objective": "latency"}}]}`, fig1)),
		[]byte(fmt.Sprintf(`{"jobs": [{"instance": %s, "request": {"objective": "period", "latencyBounds": [9, 9]}}]}`, quickstart)),
		[]byte(fmt.Sprintf(`{"instance": %s, "jobs": [{"request": {"objective": "period", "seed": 7, "exactLimit": 100}}]}`, streaming)),
		// Structure-only shapes: no default instance, empty request, deep bounds.
		[]byte(`{"jobs": [{"request": {}}]}`),
		[]byte(`{"jobs": [{"request": {"periodBounds": [1.5, 2.25, 1e-3], "energyBudget": 0.5}}]}`),
	}
	return docs
}

// FuzzFileRoundTrip asserts the job-file schema is stable under
// decode -> encode -> decode: any document DecodeFile accepts must
// re-encode to a form it accepts again, and that second decode must encode
// identically (a canonical fixed point after one round). Translating the
// document into engine jobs must never panic, whatever the bytes were.
func FuzzFileRoundTrip(f *testing.F) {
	for _, doc := range seedDocs(f) {
		f.Add(doc)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"jobs": []}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := DecodeFile(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		enc1, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("accepted document failed to encode: %v", err)
		}
		doc2, err := DecodeFile(bytes.NewReader(enc1))
		if err != nil {
			t.Fatalf("re-decode of encoded document failed: %v\nencoded: %s", err, enc1)
		}
		enc2, err := json.Marshal(doc2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("round trip not stable:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}
		// Job translation must fail gracefully, never panic: the instance
		// payloads are arbitrary fuzzer-controlled JSON.
		if jobs, err := doc.BatchJobs(); err == nil {
			for i, j := range jobs {
				if j.Inst == nil {
					t.Fatalf("job %d translated with nil instance", i)
				}
			}
		}
	})
}

// FuzzFloatJSON asserts the non-finite Float handling: NaN and ±Inf must
// encode as JSON null (never an encoding error), finite values must
// round-trip exactly, and a whole Result document carrying the value must
// marshal to valid JSON.
func FuzzFloatJSON(f *testing.F) {
	for _, v := range []float64{0, -0.0, 1, -1.5, 2.75, math.Pi, 1e308, -1e308,
		math.Inf(1), math.Inf(-1), math.NaN(), math.SmallestNonzeroFloat64} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v float64) {
		b, err := Float(v).MarshalJSON()
		if err != nil {
			t.Fatalf("Float(%g).MarshalJSON: %v", v, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			if string(b) != "null" {
				t.Fatalf("Float(%g) encoded %q, want null", v, b)
			}
		} else {
			var got float64
			if err := json.Unmarshal(b, &got); err != nil {
				t.Fatalf("finite Float(%g) encoded unparseable %q: %v", v, b, err)
			}
			if got != v {
				t.Fatalf("finite Float round trip %g -> %q -> %g", v, b, got)
			}
		}
		out, err := json.Marshal(Result{Value: Float(v), Period: Float(v), Latency: Float(v), Energy: Float(v)})
		if err != nil {
			t.Fatalf("Result with value %g failed to marshal: %v", v, err)
		}
		if !json.Valid(out) {
			t.Fatalf("Result with value %g marshalled invalid JSON: %s", v, out)
		}
	})
}
