package jobspec

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pipeline"
)

// TestFloatRendersNonFiniteAsNull pins the encoder contract relied on by
// empty-frontier queries: +Inf/-Inf/NaN marshal as null, finite values as
// plain numbers (stdlib json.Marshal errors on non-finite floats).
func TestFloatRendersNonFiniteAsNull(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.Inf(1), "null"},
		{math.Inf(-1), "null"},
		{math.NaN(), "null"},
		{46, "46"},
		{0, "0"},
		{2.75, "2.75"},
	}
	for _, c := range cases {
		got, err := json.Marshal(Float(c.in))
		if err != nil {
			t.Fatalf("Float(%g): %v", c.in, err)
		}
		if string(got) != c.want {
			t.Errorf("Float(%g) = %s, want %s", c.in, got, c.want)
		}
	}
	// The whole point: a struct holding a non-finite Float must marshal
	// where the same struct with float64 would fail.
	doc := struct {
		Answer Float `json:"answer"`
	}{Answer: Float(math.Inf(1))}
	got, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"answer":null}` {
		t.Errorf("marshal = %s", got)
	}
	if _, err := json.Marshal(struct{ Answer float64 }{math.Inf(1)}); err == nil {
		t.Error("plain float64 +Inf marshalled without error; Float is redundant")
	}
}

func fig1File(t *testing.T, jobs string) File {
	t.Helper()
	inst := pipeline.MotivatingExample()
	var buf bytes.Buffer
	if err := pipeline.EncodeJSON(&buf, &inst); err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeFile(strings.NewReader(`{"instance": ` + buf.String() + `, "jobs": ` + jobs + `}`))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestRoundTrip decodes a document, runs it, and re-encodes: values,
// order, errors and stats must survive the trip.
func TestRoundTrip(t *testing.T) {
	doc := fig1File(t, `[
		{"request": {"objective": "period"}},
		{"request": {"objective": "energy", "periodBound": 2}},
		{"request": {"objective": "energy"}}
	]`)
	jobs, err := doc.BatchJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("%d jobs", len(jobs))
	}
	if jobs[1].Req.Objective != core.Energy || jobs[1].Req.PeriodBounds == nil {
		t.Errorf("job 1 request not built: %+v", jobs[1].Req)
	}
	results, stats := batch.Solve(jobs, batch.Options{})
	out, err := EncodeOutput(results, stats)
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Value != 1 || out.Results[1].Value != 46 {
		t.Errorf("values = %g, %g, want 1, 46", out.Results[0].Value, out.Results[1].Value)
	}
	if out.Results[2].Error == "" {
		t.Error("unsupported job carries no error")
	}
	if out.Results[2].Mapping != nil {
		t.Error("failed job carries a mapping")
	}
	if out.Stats.Jobs != 3 || out.Stats.Errors != 1 {
		t.Errorf("stats = %+v", out.Stats)
	}
	if _, err := json.Marshal(out); err != nil {
		t.Fatalf("output does not marshal: %v", err)
	}
}

// TestBuildRequestDefaultsAndBounds pins defaults and the global-threshold
// expansion.
func TestBuildRequestDefaultsAndBounds(t *testing.T) {
	inst := pipeline.MotivatingExample()
	req, err := BuildRequest(&inst, Request{})
	if err != nil {
		t.Fatal(err)
	}
	if req.Objective != core.Period {
		t.Errorf("default objective = %v", req.Objective)
	}
	req, err = BuildRequest(&inst, Request{Objective: "energy", PeriodBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := core.UniformBounds(&inst, 2)
	if len(req.PeriodBounds) != len(want) || req.PeriodBounds[0] != want[0] {
		t.Errorf("PeriodBounds = %v, want %v", req.PeriodBounds, want)
	}
	// Explicit per-app arrays win over the global form.
	req, err = BuildRequest(&inst, Request{Objective: "energy", PeriodBound: 2, PeriodBounds: []float64{9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if req.PeriodBounds[0] != 9 {
		t.Errorf("explicit bounds lost: %v", req.PeriodBounds)
	}
	if _, err = BuildRequest(&inst, Request{Rule: "bogus"}); err == nil {
		t.Error("bogus rule accepted")
	}
}

// TestRequestOfRoundTrip pins RequestOf as BuildRequest's inverse over
// the seeded scenario corpus: shipping a generated request through the
// wire form must reproduce the exact engine request, canonical key
// included — the gateway's routing and the load experiment both depend
// on it.
func TestRequestOfRoundTrip(t *testing.T) {
	space := gen.DefaultSpace()
	for i := 0; i < 60; i++ {
		sc := space.Sample(7, i)
		rebuilt, err := BuildRequest(&sc.Inst, RequestOf(sc.Req))
		if err != nil {
			t.Fatalf("scenario %d (%s): %v", i, sc.Name, err)
		}
		if !reflect.DeepEqual(rebuilt, sc.Req) {
			t.Errorf("scenario %d (%s): round trip changed the request:\ngot  %+v\nwant %+v",
				i, sc.Name, rebuilt, sc.Req)
		}
		if batch.Key(&sc.Inst, rebuilt) != batch.Key(&sc.Inst, sc.Req) {
			t.Errorf("scenario %d: canonical key changed across the round trip", i)
		}
	}
}

// TestDecodeFileRejectsMalformed covers the structural validations.
func TestDecodeFileRejectsMalformed(t *testing.T) {
	for _, doc := range []string{
		`not json`,
		`{"jobs": []}`,
		`{"jobs": [{"request": {}}], "unknown": 1}`,
	} {
		if _, err := DecodeFile(strings.NewReader(doc)); err == nil {
			t.Errorf("document %q accepted", doc)
		}
	}
	doc, err := DecodeFile(strings.NewReader(`{"jobs": [{"request": {"objective": "period"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.BatchJobs(); err == nil {
		t.Error("job without any instance accepted")
	}
}

// TestEncodeResultError keeps failed slots bare.
func TestEncodeResultError(t *testing.T) {
	rj, err := EncodeResult(batch.JobResult{Err: errors.New("nope")})
	if err != nil {
		t.Fatal(err)
	}
	if rj.Error != "nope" || rj.Method != "" || rj.Mapping != nil {
		t.Errorf("error slot = %+v", rj)
	}
}
