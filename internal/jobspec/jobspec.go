// Package jobspec is the JSON wire schema shared by the batch-solving
// front ends — the pipebatch CLI and the pipeserved HTTP service. It
// defines the job-file document (a default instance plus a list of
// requests, each optionally carrying its own instance), translates it into
// engine jobs, and encodes per-job results and batch statistics back out.
//
// Keeping the schema in one package guarantees the CLI and the server
// accept and emit exactly the same documents: a job file written for
// `pipebatch -in` can be POSTed verbatim to `/v1/batch`.
//
// # Non-finite values
//
// The solver legitimately produces non-finite answers — an empty Pareto
// frontier answers +Inf, an unconstrained bound is +Inf — but
// encoding/json refuses to marshal them. The Float type renders any
// non-finite value as JSON null instead, so degenerate answers reach
// clients as null rather than killing the response with an encoding error.
package jobspec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// Stable machine-readable error codes carried in Result.Code and in error
// response documents, so clients branch on a code instead of parsing
// message strings (the human-readable "error" text is kept alongside and
// stays free to change).
const (
	// CodeInfeasible: the problem is well-formed but no mapping satisfies
	// the bounds.
	CodeInfeasible = "infeasible"
	// CodeTimeout: a deadline or budget expired before a trustworthy
	// answer existed; retry with a larger budget.
	CodeTimeout = "timeout"
	// CodeDegraded: a successful solve answered by the heuristic because
	// the exact path was abandoned — the value is an upper bound (see the
	// lowerBound/boundGap fields).
	CodeDegraded = "degraded"
	// CodeShed: the service refused the request to protect itself
	// (admission queue full or circuit breaker open); honor Retry-After.
	CodeShed = "shed"
	// CodeInvalid: the request itself is malformed, oversized, or asks
	// for an unsupported criteria combination.
	CodeInvalid = "invalid"
	// CodeInternal: an unexpected solver failure (a bug, not the client).
	CodeInternal = "internal"
)

// ErrorCode classifies an engine error into a stable wire code.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrInfeasible):
		return CodeInfeasible
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return CodeTimeout
	case errors.Is(err, core.ErrUnsupported):
		return CodeInvalid
	default:
		return CodeInternal
	}
}

// Float marshals like float64 except that NaN and ±Inf become JSON null
// (encoding/json errors on non-finite values). It is an output-only
// convenience: documents are decoded into plain float64 fields, which only
// accept finite JSON numbers anyway.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// Request is the JSON form of a solver request. Global weighted thresholds
// (PeriodBound, LatencyBound) expand to per-application arrays as X / W_a;
// explicit per-application arrays win over the global forms.
type Request struct {
	Rule          string    `json:"rule,omitempty"`
	Model         string    `json:"model,omitempty"`
	Objective     string    `json:"objective,omitempty"`
	PeriodBound   float64   `json:"periodBound,omitempty"`
	LatencyBound  float64   `json:"latencyBound,omitempty"`
	PeriodBounds  []float64 `json:"periodBounds,omitempty"`
	LatencyBounds []float64 `json:"latencyBounds,omitempty"`
	EnergyBudget  float64   `json:"energyBudget,omitempty"`
	Seed          int64     `json:"seed,omitempty"`
	ExactLimit    int64     `json:"exactLimit,omitempty"`
	HeurIters     int       `json:"heurIters,omitempty"`
	HeurRestarts  int       `json:"heurRestarts,omitempty"`
}

// Job is one entry of a job file: a request plus an optional instance
// overriding the file-level default.
type Job struct {
	Instance json.RawMessage `json:"instance,omitempty"`
	Request  Request         `json:"request"`
}

// File is the top-level batch document.
type File struct {
	// Instance is the default instance, used by jobs without their own.
	Instance json.RawMessage `json:"instance,omitempty"`
	Jobs     []Job           `json:"jobs"`
}

// DecodeFile parses a batch document, rejecting unknown fields. It
// validates only the document structure; instance decoding happens in
// BatchJobs so per-job errors carry the job index.
func DecodeFile(r io.Reader) (File, error) {
	var doc File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return File{}, fmt.Errorf("jobspec: decoding job file: %w", err)
	}
	if len(doc.Jobs) == 0 {
		return File{}, fmt.Errorf("jobspec: job file has no jobs")
	}
	return doc, nil
}

// BatchJobs translates the document into engine jobs: every instance is
// decoded and validated once (jobs without their own instance share the
// decoded default), and every request is parsed against its instance.
func (f *File) BatchJobs() ([]batch.Job, error) {
	var defaultInst *pipeline.Instance
	if f.Instance != nil {
		inst, err := pipeline.DecodeJSON(bytes.NewReader(f.Instance))
		if err != nil {
			return nil, fmt.Errorf("jobspec: default instance: %w", err)
		}
		defaultInst = &inst
	}
	jobs := make([]batch.Job, len(f.Jobs))
	for i, jj := range f.Jobs {
		inst := defaultInst
		if jj.Instance != nil {
			dec, err := pipeline.DecodeJSON(bytes.NewReader(jj.Instance))
			if err != nil {
				return nil, fmt.Errorf("jobspec: job %d instance: %w", i, err)
			}
			inst = &dec
		}
		if inst == nil {
			return nil, fmt.Errorf("jobspec: job %d has no instance and no default is set", i)
		}
		req, err := BuildRequest(inst, jj.Request)
		if err != nil {
			return nil, fmt.Errorf("jobspec: job %d: %w", i, err)
		}
		jobs[i] = batch.Job{Inst: inst, Req: req}
	}
	return jobs, nil
}

// BuildRequest translates the JSON request into a core.Request, expanding
// the global weighted thresholds into per-application bounds. Defaults:
// interval rule, overlap model, period objective.
func BuildRequest(inst *pipeline.Instance, rj Request) (core.Request, error) {
	req := core.Request{
		EnergyBudget: rj.EnergyBudget,
		Seed:         rj.Seed,
		ExactLimit:   rj.ExactLimit,
		HeurIters:    rj.HeurIters,
		HeurRestarts: rj.HeurRestarts,
	}
	var err error
	if req.Rule, err = ParseRuleDefault(rj.Rule); err != nil {
		return core.Request{}, err
	}
	if req.Model, err = ParseModelDefault(rj.Model); err != nil {
		return core.Request{}, err
	}
	if req.Objective, err = core.ParseCriterion(orDefault(rj.Objective, "period")); err != nil {
		return core.Request{}, err
	}
	req.PeriodBounds = rj.PeriodBounds
	if req.PeriodBounds == nil && rj.PeriodBound > 0 {
		req.PeriodBounds = core.UniformBounds(inst, rj.PeriodBound)
	}
	req.LatencyBounds = rj.LatencyBounds
	if req.LatencyBounds == nil && rj.LatencyBound > 0 {
		req.LatencyBounds = core.UniformBounds(inst, rj.LatencyBound)
	}
	return req, nil
}

// RequestOf is the inverse of BuildRequest: it renders an engine request
// in wire form, with the bounds as explicit per-application arrays (the
// engine form has no memory of whether a bound came from a global
// threshold). BuildRequest(inst, RequestOf(req)) reproduces req exactly,
// so generated workloads can be shipped to a remote service and solve
// the same problem bit-for-bit.
func RequestOf(req core.Request) Request {
	return Request{
		Rule:          req.Rule.String(),
		Model:         req.Model.String(),
		Objective:     req.Objective.String(),
		PeriodBounds:  req.PeriodBounds,
		LatencyBounds: req.LatencyBounds,
		EnergyBudget:  req.EnergyBudget,
		Seed:          req.Seed,
		ExactLimit:    req.ExactLimit,
		HeurIters:     req.HeurIters,
		HeurRestarts:  req.HeurRestarts,
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// ParseRuleDefault parses a wire rule string, defaulting an empty one to
// "interval". All front ends share these defaults so that the same
// document means the same problem everywhere.
func ParseRuleDefault(s string) (mapping.Rule, error) {
	return mapping.ParseRule(orDefault(s, "interval"))
}

// ParseModelDefault parses a wire communication-model string, defaulting
// an empty one to "overlap".
func ParseModelDefault(s string) (pipeline.CommModel, error) {
	return pipeline.ParseCommModel(orDefault(s, "overlap"))
}

// Result is one output slot; a failed job carries only Error.
type Result struct {
	Value   Float            `json:"value,omitempty"`
	Method  string           `json:"method,omitempty"`
	Optimal bool             `json:"optimal,omitempty"`
	Period  Float            `json:"period,omitempty"`
	Latency Float            `json:"latency,omitempty"`
	Energy  Float            `json:"energy,omitempty"`
	Mapping *json.RawMessage `json:"mapping,omitempty"`
	// Degraded marks a heuristic answer where the exact path was
	// abandoned; LowerBound/BoundGap then report a provable lower bound on
	// the optimum and the gap Value - LowerBound. Preempted marks the
	// subset forced by an expired wall-clock budget.
	Degraded   bool  `json:"degraded,omitempty"`
	Preempted  bool  `json:"preempted,omitempty"`
	LowerBound Float `json:"lowerBound,omitempty"`
	BoundGap   Float `json:"boundGap,omitempty"`
	// Code is the stable machine-readable classification (Code* consts):
	// "degraded" on degraded successes, an error code when Error is set.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
}

// Stats mirrors batch.Stats on the wire.
type Stats struct {
	Jobs      int `json:"jobs"`
	CacheHits int `json:"cacheHits"`
	Errors    int `json:"errors"`
	// PlanCompiles and PlanReuses report the compiled-plan tier: plans
	// built fresh for this batch versus reused from the shared cache.
	PlanCompiles int `json:"planCompiles"`
	PlanReuses   int `json:"planReuses"`
	// Degraded counts successful jobs answered by the heuristic with the
	// exact path abandoned; Preempted the subset forced by an expired
	// per-job budget.
	Degraded  int            `json:"degraded,omitempty"`
	Preempted int            `json:"preempted,omitempty"`
	WallMs    float64        `json:"wallMs"`
	Methods   map[string]int `json:"methods"`
}

// Output is the batch response document: per-job results in input order
// plus aggregate statistics.
type Output struct {
	Results []Result `json:"results"`
	Stats   Stats    `json:"stats"`
}

// EncodeResult converts one engine result to its wire form.
func EncodeResult(jr batch.JobResult) (Result, error) {
	if jr.Err != nil {
		return Result{Error: jr.Err.Error(), Code: ErrorCode(jr.Err)}, nil
	}
	var buf bytes.Buffer
	if err := mapping.EncodeJSON(&buf, &jr.Result.Mapping); err != nil {
		return Result{}, err
	}
	raw := json.RawMessage(buf.Bytes())
	out := Result{
		Value:   Float(jr.Result.Value),
		Method:  string(jr.Result.Method),
		Optimal: jr.Result.Optimal,
		Period:  Float(jr.Result.Metrics.Period),
		Latency: Float(jr.Result.Metrics.Latency),
		Energy:  Float(jr.Result.Metrics.Energy),
		Mapping: &raw,
	}
	if jr.Result.Degraded {
		out.Degraded = true
		out.Code = CodeDegraded
		out.LowerBound = Float(jr.Result.LowerBound)
		out.BoundGap = Float(jr.Result.Value - jr.Result.LowerBound)
	}
	out.Preempted = jr.Result.Preempted
	return out, nil
}

// EncodeStats converts engine statistics to their wire form.
func EncodeStats(s batch.Stats) Stats {
	out := Stats{
		Jobs:         s.Jobs,
		CacheHits:    s.CacheHits,
		Errors:       s.Errors,
		PlanCompiles: s.PlanCompiles,
		PlanReuses:   s.PlanReuses,
		Degraded:     s.Degraded,
		Preempted:    s.Preempted,
		WallMs:       float64(s.Wall.Microseconds()) / 1000,
		Methods:      make(map[string]int, len(s.Methods)),
	}
	for m, n := range s.Methods {
		out.Methods[string(m)] = n
	}
	return out
}

// EncodeOutput builds the full batch response document.
func EncodeOutput(results []batch.JobResult, stats batch.Stats) (Output, error) {
	out := Output{Results: make([]Result, 0, len(results)), Stats: EncodeStats(stats)}
	for i := range results {
		rj, err := EncodeResult(results[i])
		if err != nil {
			return Output{}, err
		}
		out.Results = append(out.Results, rj)
	}
	return out, nil
}
