// Package repl implements the paper's announced future-work extension
// (Section 6): replicated interval mappings, in which a stage interval may
// be mapped onto several processors that process successive data sets in
// round-robin fashion to improve the period, as investigated in the
// paper's reference [4] (Benoit & Robert, Algorithmica 2009).
//
// # Model
//
// A replicated interval with k replicas executes data set t on replica
// t mod k. Each replica therefore handles one data set out of k, so in
// steady state a resource whose per-data-set occupation is c contributes
// c/k to the period. The cycle time of a replicated interval is
//
//	max over replicas r of IntervalCost(model, in_r, comp_r, out_r) / k,
//
// where communications between two replica groups are charged at the
// worst-case bandwidth over the replica pairs (the conservative choice
// also used by the simulator, keeping the analytic formulas and the
// discrete-event execution in exact agreement on every platform class).
//
// The latency of a data set depends on which replicas it traverses; the
// analytic latency reported here is the worst path, i.e. it uses the
// slowest replica of every group. Replication can only degrade latency
// (the extra replicas are never faster than the best one), which is why
// the paper frames it purely as a period optimization.
//
// Energy: every replica is an enrolled processor and consumes
// Static + speed^Alpha.
package repl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// Replica is one processor/mode pair serving a replicated interval.
type Replica struct {
	Proc int
	Mode int
}

// Interval is a stage range served by one or more replicas.
type Interval struct {
	From, To int
	Replicas []Replica
}

// Len returns the number of stages of the interval.
func (iv Interval) Len() int { return iv.To - iv.From + 1 }

// AppMapping is one application's ordered replicated-interval
// decomposition.
type AppMapping struct {
	Intervals []Interval
}

// Mapping is a replicated mapping of all applications. Like plain interval
// mappings, processors may not be shared across intervals or applications.
type Mapping struct {
	Apps []AppMapping
}

// Lift converts a plain interval mapping into a replicated mapping with
// one replica per interval.
func Lift(m *mapping.Mapping) Mapping {
	rm := Mapping{Apps: make([]AppMapping, len(m.Apps))}
	for a := range m.Apps {
		for _, iv := range m.Apps[a].Intervals {
			rm.Apps[a].Intervals = append(rm.Apps[a].Intervals, Interval{
				From: iv.From, To: iv.To,
				Replicas: []Replica{{Proc: iv.Proc, Mode: iv.Mode}},
			})
		}
	}
	return rm
}

// Flatten converts a replicated mapping with single replicas back to a
// plain mapping; it fails if any interval is actually replicated.
func (rm *Mapping) Flatten() (mapping.Mapping, error) {
	m := mapping.Mapping{Apps: make([]mapping.AppMapping, len(rm.Apps))}
	for a := range rm.Apps {
		for _, iv := range rm.Apps[a].Intervals {
			if len(iv.Replicas) != 1 {
				return mapping.Mapping{}, fmt.Errorf("repl: interval [%d,%d] has %d replicas", iv.From, iv.To, len(iv.Replicas))
			}
			m.Apps[a].Intervals = append(m.Apps[a].Intervals, mapping.PlacedInterval{
				From: iv.From, To: iv.To, Proc: iv.Replicas[0].Proc, Mode: iv.Replicas[0].Mode,
			})
		}
	}
	return m, nil
}

// Clone returns a deep copy.
func (rm *Mapping) Clone() Mapping {
	c := Mapping{Apps: make([]AppMapping, len(rm.Apps))}
	for a := range rm.Apps {
		c.Apps[a].Intervals = make([]Interval, len(rm.Apps[a].Intervals))
		for j, iv := range rm.Apps[a].Intervals {
			c.Apps[a].Intervals[j] = Interval{From: iv.From, To: iv.To,
				Replicas: append([]Replica(nil), iv.Replicas...)}
		}
	}
	return c
}

// Validate checks the structural invariants: interval partitions in order,
// at least one replica per interval, valid modes, and no processor reuse
// anywhere.
func (rm *Mapping) Validate(inst *pipeline.Instance) error {
	if len(rm.Apps) != len(inst.Apps) {
		return fmt.Errorf("repl: covers %d applications, instance has %d", len(rm.Apps), len(inst.Apps))
	}
	used := make(map[int]bool)
	for a := range rm.Apps {
		n := inst.Apps[a].NumStages()
		next := 0
		if len(rm.Apps[a].Intervals) == 0 {
			return fmt.Errorf("repl: application %d has no intervals", a)
		}
		for j, iv := range rm.Apps[a].Intervals {
			if iv.From != next || iv.To < iv.From || iv.To >= n {
				return fmt.Errorf("repl: application %d interval %d range [%d,%d] invalid", a, j, iv.From, iv.To)
			}
			if len(iv.Replicas) == 0 {
				return fmt.Errorf("repl: application %d interval %d has no replicas", a, j)
			}
			for _, r := range iv.Replicas {
				if r.Proc < 0 || r.Proc >= inst.Platform.NumProcessors() {
					return fmt.Errorf("repl: unknown processor %d", r.Proc)
				}
				if used[r.Proc] {
					return fmt.Errorf("repl: processor %d assigned twice", r.Proc)
				}
				used[r.Proc] = true
				if r.Mode < 0 || r.Mode >= inst.Platform.Processors[r.Proc].NumModes() {
					return fmt.Errorf("repl: invalid mode %d on processor %d", r.Mode, r.Proc)
				}
			}
			next = iv.To + 1
		}
		if next != n {
			return fmt.Errorf("repl: application %d covers %d stages, want %d", a, next, n)
		}
	}
	return nil
}

// groupBandwidth returns the worst-case bandwidth between two replica
// groups (minimum over processor pairs).
func groupBandwidth(inst *pipeline.Instance, from, to []Replica) float64 {
	b := math.Inf(1)
	for _, f := range from {
		for _, t := range to {
			if f.Proc == t.Proc {
				continue // replicas are distinct processors by validity
			}
			b = math.Min(b, inst.Platform.Link(f.Proc, t.Proc))
		}
	}
	return b
}

func inBandwidth(inst *pipeline.Instance, a int, group []Replica) float64 {
	b := math.Inf(1)
	for _, r := range group {
		b = math.Min(b, inst.Platform.InLink(a, r.Proc))
	}
	return b
}

func outBandwidth(inst *pipeline.Instance, a int, group []Replica) float64 {
	b := math.Inf(1)
	for _, r := range group {
		b = math.Min(b, inst.Platform.OutLink(a, r.Proc))
	}
	return b
}

// IntervalComm returns the (worst-case) input and output transfer times of
// interval j of application a. Exported for the simulator, which must use
// the exact same communication model.
func IntervalComm(inst *pipeline.Instance, rm *Mapping, a, j int) (in, out float64) {
	app := &inst.Apps[a]
	ivs := rm.Apps[a].Intervals
	iv := ivs[j]
	inVol := app.InputSize(iv.From)
	if inVol > 0 {
		var bw float64
		if j == 0 {
			bw = inBandwidth(inst, a, iv.Replicas)
		} else {
			bw = groupBandwidth(inst, ivs[j-1].Replicas, iv.Replicas)
		}
		in = inVol / bw
	}
	outVol := app.OutputSize(iv.To)
	if outVol > 0 {
		var bw float64
		if j == len(ivs)-1 {
			bw = outBandwidth(inst, a, iv.Replicas)
		} else {
			bw = groupBandwidth(inst, iv.Replicas, ivs[j+1].Replicas)
		}
		out = outVol / bw
	}
	return in, out
}

// AppPeriod returns the period of application a: the maximum over
// intervals of (worst replica cycle time) / (replica count).
func AppPeriod(inst *pipeline.Instance, rm *Mapping, a int, model pipeline.CommModel) float64 {
	app := &inst.Apps[a]
	var t float64
	for j, iv := range rm.Apps[a].Intervals {
		in, out := IntervalComm(inst, rm, a, j)
		work := app.IntervalWork(iv.From, iv.To)
		var worst float64
		for _, r := range iv.Replicas {
			s := inst.Platform.Processors[r.Proc].Speeds[r.Mode]
			worst = math.Max(worst, mapping.IntervalCost(model, in, work/s, out))
		}
		t = math.Max(t, worst/float64(len(iv.Replicas)))
	}
	return t
}

// AppLatency returns the worst-path latency of application a under the
// round-robin routing: data set t is served by replica t mod k_j in every
// group j, so the reachable paths are the residue classes modulo
// lcm(k_j), and the worst latency is the maximum over them (not the sum
// of per-group slowest replicas, whose combination may never occur on the
// same data set). Communications use the worst-case group bandwidths.
func AppLatency(inst *pipeline.Instance, rm *Mapping, a int) float64 {
	app := &inst.Apps[a]
	ivs := rm.Apps[a].Intervals
	comm := 0.0 // communication part, identical on every path
	cycle := 1
	for j := range ivs {
		in, out := IntervalComm(inst, rm, a, j)
		if j == 0 {
			comm += in
		}
		comm += out
		cycle = lcmInt(cycle, len(ivs[j].Replicas))
	}
	worst := 0.0
	for t := 0; t < cycle; t++ {
		path := 0.0
		for _, iv := range ivs {
			r := iv.Replicas[t%len(iv.Replicas)]
			s := inst.Platform.Processors[r.Proc].Speeds[r.Mode]
			path += app.IntervalWork(iv.From, iv.To) / s
		}
		worst = math.Max(worst, path)
	}
	return comm + worst
}

func lcmInt(a, b int) int { return a / gcdInt(a, b) * b }

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Period returns the weighted global period max_a W_a*T_a.
func Period(inst *pipeline.Instance, rm *Mapping, model pipeline.CommModel) float64 {
	var t float64
	for a := range rm.Apps {
		t = math.Max(t, inst.Apps[a].EffectiveWeight()*AppPeriod(inst, rm, a, model))
	}
	return t
}

// Latency returns the weighted global worst-path latency.
func Latency(inst *pipeline.Instance, rm *Mapping) float64 {
	var l float64
	for a := range rm.Apps {
		l = math.Max(l, inst.Apps[a].EffectiveWeight()*AppLatency(inst, rm, a))
	}
	return l
}

// Energy returns the total power of all replicas.
func Energy(inst *pipeline.Instance, rm *Mapping) float64 {
	var e float64
	for a := range rm.Apps {
		for _, iv := range rm.Apps[a].Intervals {
			for _, r := range iv.Replicas {
				e += inst.Energy.Power(inst.Platform.Processors[r.Proc].Speeds[r.Mode])
			}
		}
	}
	return e
}

// UsedProcessors returns the sorted enrolled processor indices.
func (rm *Mapping) UsedProcessors() []int {
	var out []int
	for a := range rm.Apps {
		for _, iv := range rm.Apps[a].Intervals {
			for _, r := range iv.Replicas {
				out = append(out, r.Proc)
			}
		}
	}
	sort.Ints(out)
	return out
}

// String renders a compact description.
func (rm *Mapping) String() string {
	s := ""
	for a := range rm.Apps {
		if a > 0 {
			s += "; "
		}
		s += fmt.Sprintf("app%d:", a)
		for _, iv := range rm.Apps[a].Intervals {
			s += fmt.Sprintf(" [%d-%d]x%d", iv.From, iv.To, len(iv.Replicas))
		}
	}
	return s
}
