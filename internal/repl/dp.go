package repl

import (
	"fmt"
	"math"

	"repro/internal/algo/alloc"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// ErrWrongPlatform is returned when the algorithm's platform preconditions
// fail.
var ErrWrongPlatform = fmt.Errorf("repl: platform does not satisfy the algorithm's preconditions")

// singleCurve computes, for one application on identical processors (speed
// s, uniform bandwidth b), the minimal replicated period achievable with at
// most q processors for q = 1..maxProcs, together with witness partitions.
//
// The dynamic program extends the chain-partition DP of Theorem 3 with a
// replica-count choice: P[i][q] = min over split j and replica count k of
// max(P[j][q-k], cost(j..i-1)/k). Replicas of an interval are identical
// here (same speed), so only their count matters.
func singleCurve(app *pipeline.Application, s, b float64, model pipeline.CommModel, maxProcs int) ([]float64, [][]Interval) {
	n := app.NumStages()
	pre := app.WorkPrefix()
	comm := func(vol float64) float64 {
		if vol == 0 {
			return 0
		}
		return vol / b
	}
	cost := func(f, t int) float64 {
		return mapping.IntervalCost(model, comm(app.InputSize(f)), (pre[t+1]-pre[f])/s, comm(app.OutputSize(t)))
	}
	// best[i][q]: minimal period for stages 0..i-1 using exactly q
	// processors; choice records (split, replicas).
	type choice struct{ j, k int }
	best := make([][]float64, n+1)
	ch := make([][]choice, n+1)
	for i := range best {
		best[i] = make([]float64, maxProcs+1)
		ch[i] = make([]choice, maxProcs+1)
		for q := range best[i] {
			best[i][q] = math.Inf(1)
		}
	}
	best[0][0] = 0
	for i := 1; i <= n; i++ {
		for q := 1; q <= maxProcs; q++ {
			for j := 0; j < i; j++ {
				for k := 1; k <= q; k++ {
					if math.IsInf(best[j][q-k], 1) {
						continue
					}
					v := math.Max(best[j][q-k], cost(j, i-1)/float64(k))
					if v < best[i][q] {
						best[i][q] = v
						ch[i][q] = choice{j, k}
					}
				}
			}
		}
	}
	curve := make([]float64, maxProcs)
	parts := make([][]Interval, maxProcs)
	bestV := math.Inf(1)
	bestQ := 0
	for q := 1; q <= maxProcs; q++ {
		if best[n][q] < bestV {
			bestV = best[n][q]
			bestQ = q
		}
		curve[q-1] = bestV
		// Backtrack the witness for the best exact count seen so far.
		var ivs []Interval
		i, qq := n, bestQ
		for i > 0 {
			c := ch[i][qq]
			reps := make([]Replica, c.k)
			ivs = append([]Interval{{From: c.j, To: i - 1, Replicas: reps}}, ivs...)
			i, qq = c.j, qq-c.k
		}
		parts[q-1] = ivs
	}
	return curve, parts
}

// MinPeriodFullyHom minimizes the weighted global period over replicated
// interval mappings on a fully homogeneous platform, combining the
// replicated chain DP with the paper's Algorithm 2 processor allocation
// (the per-application curves remain non-increasing in the processor
// count, which is all Algorithm 2 needs). Processors run at their fastest
// mode.
func MinPeriodFullyHom(inst *pipeline.Instance, model pipeline.CommModel) (Mapping, float64, error) {
	if inst.Platform.Classify() != pipeline.FullyHomogeneous {
		return Mapping{}, 0, fmt.Errorf("%w: want fully homogeneous, have %v", ErrWrongPlatform, inst.Platform.Classify())
	}
	p := inst.Platform.NumProcessors()
	if p < len(inst.Apps) {
		return Mapping{}, 0, fmt.Errorf("%w: %d processors for %d applications", ErrWrongPlatform, p, len(inst.Apps))
	}
	s := inst.Platform.Processors[0].MaxSpeed()
	topMode := inst.Platform.Processors[0].NumModes() - 1
	b, _ := inst.Platform.HomogeneousLinks()
	mx := p - len(inst.Apps) + 1
	curves := make([][]float64, len(inst.Apps))
	parts := make([][][]Interval, len(inst.Apps))
	for a := range inst.Apps {
		curve, ps := singleCurve(&inst.Apps[a], s, b, model, mx)
		w := inst.Apps[a].EffectiveWeight()
		for i := range curve {
			curve[i] *= w
		}
		curves[a], parts[a] = curve, ps
	}
	counts, value := alloc.Allocate(curves, p)
	rm := Mapping{Apps: make([]AppMapping, len(inst.Apps))}
	next := 0
	for a := range inst.Apps {
		for _, iv := range parts[a][counts[a]-1] {
			reps := make([]Replica, len(iv.Replicas))
			for r := range reps {
				reps[r] = Replica{Proc: next, Mode: topMode}
				next++
			}
			rm.Apps[a].Intervals = append(rm.Apps[a].Intervals, Interval{From: iv.From, To: iv.To, Replicas: reps})
		}
	}
	if err := rm.Validate(inst); err != nil {
		return Mapping{}, 0, err
	}
	return rm, value, nil
}

// ExactMinPeriod exhaustively minimizes the weighted global period over
// replicated interval mappings (any platform); exponential, for oracle use
// on tiny instances. Processors run at their fastest modes (energy is not
// a criterion).
func ExactMinPeriod(inst *pipeline.Instance, model pipeline.CommModel, limit int64) (Mapping, float64, error) {
	best := Mapping{}
	bestV := math.Inf(1)
	found := false
	err := enumerate(inst, limit, func(rm *Mapping) error {
		v := Period(inst, rm, model)
		if !found || v < bestV {
			best = rm.Clone()
			bestV = v
			found = true
		}
		return nil
	})
	if err != nil {
		return Mapping{}, 0, err
	}
	if !found {
		return Mapping{}, 0, fmt.Errorf("repl: no valid replicated mapping")
	}
	return best, bestV, nil
}

// enumerate visits every replicated mapping at fastest modes. The visited
// *Mapping is reused; clone to keep. The visitor may return an error to
// abort the enumeration.
func enumerate(inst *pipeline.Instance, limit int64, visit func(rm *Mapping) error) error {
	e := &replEnum{
		inst:  inst,
		used:  make([]bool, inst.Platform.NumProcessors()),
		rm:    Mapping{Apps: make([]AppMapping, len(inst.Apps))},
		visit: visit,
		left:  limit,
	}
	return e.app(0)
}

type replEnum struct {
	inst  *pipeline.Instance
	used  []bool
	rm    Mapping
	visit func(rm *Mapping) error
	left  int64
}

func (e *replEnum) app(a int) error {
	if a == len(e.inst.Apps) {
		e.left--
		if e.left < 0 {
			return fmt.Errorf("repl: enumeration limit exceeded")
		}
		return e.visit(&e.rm)
	}
	return e.intervals(a, 0)
}

func (e *replEnum) intervals(a, from int) error {
	n := e.inst.Apps[a].NumStages()
	if from == n {
		return e.app(a + 1)
	}
	remaining := len(e.inst.Apps) - a - 1
	free := e.freeProcs()
	if len(free) <= remaining {
		return nil
	}
	maxReplicas := len(free) - remaining
	for to := from; to < n; to++ {
		// Choose a replica set: combinations of free processors, sizes
		// 1..maxReplicas, in index order to avoid duplicates.
		var combo []int
		var rec func(startIdx int) error
		rec = func(startIdx int) error {
			if len(combo) >= 1 {
				reps := make([]Replica, len(combo))
				for i, u := range combo {
					reps[i] = Replica{Proc: u, Mode: e.inst.Platform.Processors[u].NumModes() - 1}
					e.used[u] = true
				}
				e.rm.Apps[a].Intervals = append(e.rm.Apps[a].Intervals, Interval{From: from, To: to, Replicas: reps})
				if err := e.intervals(a, to+1); err != nil {
					return err
				}
				e.rm.Apps[a].Intervals = e.rm.Apps[a].Intervals[:len(e.rm.Apps[a].Intervals)-1]
				for _, u := range combo {
					e.used[u] = false
				}
			}
			if len(combo) == maxReplicas {
				return nil
			}
			for i := startIdx; i < len(free); i++ {
				combo = append(combo, free[i])
				if err := rec(i + 1); err != nil {
					return err
				}
				combo = combo[:len(combo)-1]
			}
			return nil
		}
		if err := rec(0); err != nil {
			return err
		}
	}
	return nil
}

func (e *replEnum) freeProcs() []int {
	var out []int
	for u, b := range e.used {
		if !b {
			out = append(out, u)
		}
	}
	return out
}
