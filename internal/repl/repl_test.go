package repl_test

import (
	"math/rand"
	"testing"

	"repro/internal/algo/interval"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/repl"
	"repro/internal/workload"
)

// twoStageInstance: one heavy stage dominating the period, plenty of
// identical processors.
func twoStageInstance(p int) pipeline.Instance {
	return pipeline.Instance{
		Apps: []pipeline.Application{{
			Name: "heavy", In: 0, Weight: 1,
			Stages: []pipeline.Stage{{Work: 2, Out: 0}, {Work: 12, Out: 0}},
		}},
		Platform: pipeline.NewHomogeneousPlatform(p, []float64{2}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
}

func TestReplicationHalvesBottleneck(t *testing.T) {
	inst := twoStageInstance(3)
	// Without replication: best split puts stage 2 alone: period 6.
	_, plain, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(plain, 6) {
		t.Fatalf("plain period = %g, want 6", plain)
	}
	// With replication the DP does even better than splitting: the whole
	// chain (work 14) replicated on all three processors gives
	// (14/2)/3 = 7/3, beating both the split (6) and the two-replica
	// bottleneck split (max(1, 6/2) = 3).
	rm, replicated, err := repl.MinPeriodFullyHom(&inst, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(replicated, 14.0/6.0) {
		t.Fatalf("replicated period = %g, want 14/6 (mapping %s)", replicated, rm.String())
	}
	if !fmath.EQ(repl.AppLatency(&inst, &rm, 0), 7) {
		t.Errorf("latency = %g, want 7 (whole chain on one speed-2 replica)", repl.AppLatency(&inst, &rm, 0))
	}
	if !fmath.EQ(repl.Energy(&inst, &rm), 12) {
		t.Errorf("energy = %g, want 12 (three processors at speed 2)", repl.Energy(&inst, &rm))
	}
}

func TestLiftMatchesPlainEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 100; trial++ {
		cfg := workload.DefaultConfig()
		cfg.Class = []pipeline.Class{pipeline.FullyHomogeneous, pipeline.CommHomogeneous, pipeline.FullyHeterogeneous}[trial%3]
		inst := workload.MustInstance(rng, cfg)
		m, err := workload.RandomMapping(rng, &inst)
		if err != nil {
			t.Fatal(err)
		}
		rm := repl.Lift(&m)
		if err := rm.Validate(&inst); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
			if !fmath.EQ(repl.Period(&inst, &rm, model), mapping.Period(&inst, &m, model)) {
				t.Fatalf("trial %d: lifted period differs", trial)
			}
		}
		if !fmath.EQ(repl.Latency(&inst, &rm), mapping.Latency(&inst, &m)) {
			t.Fatalf("trial %d: lifted latency differs", trial)
		}
		if !fmath.EQ(repl.Energy(&inst, &rm), mapping.Energy(&inst, &m)) {
			t.Fatalf("trial %d: lifted energy differs", trial)
		}
		back, err := rm.Flatten()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.String() != m.String() {
			t.Fatalf("trial %d: flatten round trip changed mapping", trial)
		}
	}
}

func TestFlattenRejectsReplicated(t *testing.T) {
	inst := twoStageInstance(3)
	rm, _, err := repl.MinPeriodFullyHom(&inst, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Flatten(); err == nil {
		t.Error("replicated mapping flattened without error")
	}
}

// TestDPMatchesExactReplicated: the replicated chain DP equals exhaustive
// search over replicated mappings on small fully homogeneous instances.
func TestDPMatchesExactReplicated(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 25; trial++ {
		cfg := workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 3,
			Procs: 3 + rng.Intn(2), Modes: 1,
			Class: pipeline.FullyHomogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 5,
		}
		inst := workload.MustInstance(rng, cfg)
		model := []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap}[trial%2]
		rm, got, err := repl.MinPeriodFullyHom(&inst, model)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := rm.Validate(&inst); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !fmath.EQ(repl.Period(&inst, &rm, model), got) {
			t.Fatalf("trial %d: reported %g, mapping evaluates to %g", trial, got, repl.Period(&inst, &rm, model))
		}
		_, want, err := repl.ExactMinPeriod(&inst, model, 50_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !fmath.EQ(got, want) {
			t.Fatalf("trial %d (%v): DP %g, oracle %g", trial, model, got, want)
		}
	}
}

// TestReplicationNeverHurtsPeriod: the replicated optimum is never worse
// than the plain interval optimum, and the replicated latency is never
// better than the plain mapping's latency on the same partition shape.
func TestReplicationNeverHurtsPeriod(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 30; trial++ {
		cfg := workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 4,
			Procs: 4 + rng.Intn(3), Modes: 2,
			Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 4, MaxSpeed: 6,
		}
		inst := workload.MustInstance(rng, cfg)
		model := []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap}[trial%2]
		_, plain, err := interval.MinPeriodFullyHom(&inst, model)
		if err != nil {
			t.Fatal(err)
		}
		_, replicated, err := repl.MinPeriodFullyHom(&inst, model)
		if err != nil {
			t.Fatal(err)
		}
		if fmath.GT(replicated, plain) {
			t.Fatalf("trial %d: replication degraded the period: %g > %g", trial, replicated, plain)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	inst := twoStageInstance(3)
	bad := repl.Mapping{Apps: []repl.AppMapping{{Intervals: []repl.Interval{
		{From: 0, To: 1, Replicas: []repl.Replica{{Proc: 0, Mode: 0}, {Proc: 0, Mode: 0}}},
	}}}}
	if err := bad.Validate(&inst); err == nil {
		t.Error("duplicate replica processor accepted")
	}
	bad = repl.Mapping{Apps: []repl.AppMapping{{Intervals: []repl.Interval{
		{From: 0, To: 1, Replicas: nil},
	}}}}
	if err := bad.Validate(&inst); err == nil {
		t.Error("empty replica set accepted")
	}
	bad = repl.Mapping{Apps: []repl.AppMapping{{Intervals: []repl.Interval{
		{From: 0, To: 0, Replicas: []repl.Replica{{Proc: 0, Mode: 5}}},
		{From: 1, To: 1, Replicas: []repl.Replica{{Proc: 1, Mode: 0}}},
	}}}}
	if err := bad.Validate(&inst); err == nil {
		t.Error("invalid mode accepted")
	}
}

func TestWrongPlatformError(t *testing.T) {
	inst := pipeline.MotivatingExample()
	if _, _, err := repl.MinPeriodFullyHom(&inst, pipeline.Overlap); err == nil {
		t.Error("comm-hom platform accepted by fully-hom replication DP")
	}
}

func TestGroupBandwidthWorstCase(t *testing.T) {
	// Heterogeneous links: the analytic transfer time must use the worst
	// pair bandwidth.
	inst := pipeline.Instance{
		Apps: []pipeline.Application{{
			Stages: []pipeline.Stage{{Work: 1, Out: 6}, {Work: 1, Out: 0}},
			Weight: 1,
		}},
		Platform: pipeline.NewHeterogeneousPlatform(
			[][]float64{{1}, {1}, {1}},
			[][]float64{{0, 2, 3}, {2, 0, 6}, {3, 6, 0}},
			[][]float64{{1, 1, 1}},
			[][]float64{{1, 1, 1}},
		),
		Energy: pipeline.DefaultEnergy,
	}
	// Stage 1 on P0; stage 2 replicated on P1 and P2. Worst bandwidth
	// from P0 to {P1, P2} is 2, so the transfer takes 3. The receivers
	// share it (3/2 each per data set) but the single sender's out-port
	// pays it for every data set: the period is 3, not 1.5 — downstream
	// replication cannot fix a sender-side communication bottleneck.
	rm := repl.Mapping{Apps: []repl.AppMapping{{Intervals: []repl.Interval{
		{From: 0, To: 0, Replicas: []repl.Replica{{Proc: 0, Mode: 0}}},
		{From: 1, To: 1, Replicas: []repl.Replica{{Proc: 1, Mode: 0}, {Proc: 2, Mode: 0}}},
	}}}}
	if err := rm.Validate(&inst); err != nil {
		t.Fatal(err)
	}
	if got := repl.AppPeriod(&inst, &rm, 0, pipeline.Overlap); !fmath.EQ(got, 3) {
		t.Errorf("period = %g, want 3 (sender out-port bottleneck)", got)
	}
	if got := repl.AppLatency(&inst, &rm, 0); !fmath.EQ(got, 1+3+1) {
		t.Errorf("latency = %g, want 5", got)
	}
	// Replication does divide an input-side transfer from the virtual
	// input processor, which is never a shared-port bottleneck: a single
	// stage of work 1 with input size 6 over bandwidth 1, replicated on
	// two processors, runs at period max(6, 1)/2 = 3 instead of 6.
	inInst := pipeline.Instance{
		Apps: []pipeline.Application{{
			In:     6,
			Stages: []pipeline.Stage{{Work: 1, Out: 0}},
			Weight: 1,
		}},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	rm2 := repl.Mapping{Apps: []repl.AppMapping{{Intervals: []repl.Interval{
		{From: 0, To: 0, Replicas: []repl.Replica{{Proc: 0, Mode: 0}, {Proc: 1, Mode: 0}}},
	}}}}
	if err := rm2.Validate(&inInst); err != nil {
		t.Fatal(err)
	}
	if got := repl.AppPeriod(&inInst, &rm2, 0, pipeline.Overlap); !fmath.EQ(got, 3) {
		t.Errorf("input-side replicated period = %g, want 3", got)
	}
}

// TestEnergyDPMatchesExactReplicated: the replicated energy DP equals the
// exhaustive all-modes oracle on small fully homogeneous instances.
func TestEnergyDPMatchesExactReplicated(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	checked := 0
	for trial := 0; trial < 25; trial++ {
		cfg := workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 3,
			Procs: 3, Modes: 2,
			Class: pipeline.FullyHomogeneous, MaxWork: 6, MaxData: 3, MaxSpeed: 5,
		}
		inst := workload.MustInstance(rng, cfg)
		inst.Energy = pipeline.EnergyModel{Static: float64(rng.Intn(2)), Alpha: 2 + float64(rng.Intn(2))}
		model := []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap}[trial%2]
		// Bound between the replicated optimum and the sequential period.
		_, fastest, err := repl.MinPeriodFullyHom(&inst, model)
		if err != nil {
			t.Fatal(err)
		}
		bounds := make([]float64, len(inst.Apps))
		for a := range bounds {
			bounds[a] = fastest * (1.2 + rng.Float64())
		}
		rm, got, err := repl.MinEnergyGivenPeriodFullyHom(&inst, model, bounds)
		_, want, werr := repl.ExactMinEnergyGivenPeriod(&inst, model, bounds, 200_000_000)
		if (err != nil) != (werr != nil) {
			t.Fatalf("trial %d: feasibility mismatch: dp=%v oracle=%v", trial, err, werr)
		}
		if err != nil {
			continue
		}
		checked++
		if err := rm.Validate(&inst); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !fmath.EQ(repl.Energy(&inst, &rm), got) {
			t.Fatalf("trial %d: reported energy %g, mapping evaluates to %g", trial, got, repl.Energy(&inst, &rm))
		}
		for a := range inst.Apps {
			if tp := repl.AppPeriod(&inst, &rm, a, model); !fmath.LE(tp, bounds[a]) {
				t.Fatalf("trial %d: period bound violated", trial)
			}
		}
		if !fmath.EQ(got, want) {
			t.Fatalf("trial %d (%v): DP energy %g, oracle %g (bounds %v)", trial, model, got, want, bounds)
		}
	}
	if checked == 0 {
		t.Fatal("no feasible trials")
	}
}

// TestReplicationSavesEnergyWithSteepAlpha: with a steep dynamic exponent,
// meeting a throughput target with several slow replicas is cheaper than
// one fast processor: k*(s^a) < (k*s)^a.
func TestReplicationSavesEnergyWithSteepAlpha(t *testing.T) {
	inst := pipeline.Instance{
		Apps: []pipeline.Application{{
			Stages: []pipeline.Stage{{Work: 8}},
			Weight: 1,
		}},
		Platform: pipeline.NewHomogeneousPlatform(4, []float64{1, 2, 4}, 1, 1),
		Energy:   pipeline.EnergyModel{Alpha: 3},
	}
	bounds := []float64{2} // work 8 at speed 4 alone, or 4 replicas at speed 1
	// Plain interval mapping: a single stage cannot be split, so one
	// processor must run at speed 4: energy 64.
	_, plain, err := interval.MinEnergyGivenPeriodFullyHom(&inst, pipeline.Overlap, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(plain, 64) {
		t.Fatalf("plain energy = %g, want 64", plain)
	}
	rm, replicated, err := repl.MinEnergyGivenPeriodFullyHom(&inst, pipeline.Overlap, bounds)
	if err != nil {
		t.Fatal(err)
	}
	// 4 replicas at speed 1: period 8/(1*4) = 2, energy 4*1 = 4.
	if !fmath.EQ(replicated, 4) {
		t.Fatalf("replicated energy = %g, want 4 (mapping %s)", replicated, rm.String())
	}
	// And the replicated optimum can never exceed the plain optimum.
	if fmath.GT(replicated, plain) {
		t.Fatal("replication degraded the energy optimum")
	}
}

// TestReplHeurGapOnHetPlatforms: the replicated annealer stays within 1.5x
// of the exhaustive replicated optimum on small heterogeneous instances
// (where the problem is NP-hard) and is usually optimal.
func TestReplHeurGapOnHetPlatforms(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	hits, trials := 0, 15
	for trial := 0; trial < trials; trial++ {
		cfg := workload.Config{
			Apps: 1, MinStages: 1, MaxStages: 3,
			Procs: 3 + rng.Intn(2), Modes: 1,
			Class: pipeline.FullyHeterogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 6, MaxBandwidth: 3,
		}
		inst := workload.MustInstance(rng, cfg)
		model := []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap}[trial%2]
		rm, got, err := repl.HeurMinPeriod(rng, &inst, model, repl.HeurOptions{Iters: 2000, Restarts: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := rm.Validate(&inst); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !fmath.EQ(repl.Period(&inst, &rm, model), got) {
			t.Fatalf("trial %d: value/mapping mismatch", trial)
		}
		_, want, err := repl.ExactMinPeriod(&inst, model, 100_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fmath.LT(got, want) {
			t.Fatalf("trial %d: heuristic %g beats the exhaustive optimum %g", trial, got, want)
		}
		if got > want*1.5+fmath.Eps {
			t.Errorf("trial %d: replicated heuristic gap too large: %g vs %g", trial, got, want)
		}
		if fmath.EQ(got, want) {
			hits++
		}
	}
	if hits < trials/2 {
		t.Errorf("replicated heuristic optimal on only %d/%d trials", hits, trials)
	}
}

// TestReplHeurMatchesDPOnFullyHom: on fully homogeneous instances the
// annealer should approach the polynomial replicated DP.
func TestReplHeurMatchesDPOnFullyHom(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	for trial := 0; trial < 10; trial++ {
		cfg := workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 3,
			Procs: 4, Modes: 2,
			Class: pipeline.FullyHomogeneous, MaxWork: 8, MaxData: 3, MaxSpeed: 5,
		}
		inst := workload.MustInstance(rng, cfg)
		_, want, err := repl.MinPeriodFullyHom(&inst, pipeline.Overlap)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := repl.HeurMinPeriod(rng, &inst, pipeline.Overlap, repl.HeurOptions{Iters: 3000, Restarts: 3})
		if err != nil {
			t.Fatal(err)
		}
		if fmath.LT(got, want) {
			t.Fatalf("trial %d: heuristic %g beats the DP optimum %g", trial, got, want)
		}
		if got > want*1.3+fmath.Eps {
			t.Errorf("trial %d: heuristic %g too far from DP optimum %g", trial, got, want)
		}
	}
}

// TestReplHeurDeterministic: equal seeds, equal results.
func TestReplHeurDeterministic(t *testing.T) {
	inst := workload.StreamingCenter(8)
	run := func() float64 {
		rng := rand.New(rand.NewSource(42))
		_, v, err := repl.HeurMinPeriod(rng, &inst, pipeline.Overlap, repl.HeurOptions{Iters: 800, Restarts: 2})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %g vs %g", a, b)
	}
}
