package repl

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/algo/alloc"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// ErrInfeasible is returned when no replicated mapping satisfies the
// bounds.
var ErrInfeasible = errors.New("repl: no replicated mapping satisfies the bounds")

// MinEnergyGivenPeriodFullyHom minimizes the total energy of a replicated
// interval mapping subject to per-application period bounds on a fully
// homogeneous multi-modal platform. It extends the Theorem 18 energy
// dynamic program with a replica-count choice: a k-replica interval at
// common mode s is feasible when its cycle time at s divided by k meets
// the bound, and costs k*(Static + s^Alpha). Within a group all replicas
// share the cheapest feasible mode — identical processors make mixed modes
// pointless (each replica's cycle must individually fit within k times the
// bound, so each independently picks the same cheapest feasible speed).
// Applications are then combined with the Theorem 21 additive DP.
//
// Replication can strictly reduce energy here: several slow replicas may
// meet a throughput target more cheaply than one fast processor whenever
// alpha is steep (k * s^alpha < (k*s)^alpha).
func MinEnergyGivenPeriodFullyHom(inst *pipeline.Instance, model pipeline.CommModel, periodBounds []float64) (Mapping, float64, error) {
	if inst.Platform.Classify() != pipeline.FullyHomogeneous {
		return Mapping{}, 0, fmt.Errorf("%w: want fully homogeneous, have %v", ErrWrongPlatform, inst.Platform.Classify())
	}
	p := inst.Platform.NumProcessors()
	if p < len(inst.Apps) {
		return Mapping{}, 0, fmt.Errorf("%w: %d processors for %d applications", ErrWrongPlatform, p, len(inst.Apps))
	}
	speeds := inst.Platform.Processors[0].Speeds
	b, _ := inst.Platform.HomogeneousLinks()
	mx := p - len(inst.Apps) + 1

	curves := make([][]float64, len(inst.Apps))
	parts := make([][][]Interval, len(inst.Apps))
	for a := range inst.Apps {
		curves[a], parts[a] = energyCurve(&inst.Apps[a], speeds, b, model, mx, periodBounds[a], inst.Energy)
	}
	counts, total, ok := alloc.CombineAdditive(curves, p)
	if !ok {
		return Mapping{}, 0, ErrInfeasible
	}
	rm := Mapping{Apps: make([]AppMapping, len(inst.Apps))}
	next := 0
	for a := range inst.Apps {
		for _, iv := range parts[a][counts[a]-1] {
			reps := make([]Replica, len(iv.Replicas))
			for r := range reps {
				reps[r] = Replica{Proc: next, Mode: iv.Replicas[r].Mode}
				next++
			}
			rm.Apps[a].Intervals = append(rm.Apps[a].Intervals, Interval{From: iv.From, To: iv.To, Replicas: reps})
		}
	}
	if err := rm.Validate(inst); err != nil {
		return Mapping{}, 0, err
	}
	return rm, total, nil
}

// energyCurve computes, for one application, the minimal replicated energy
// with at most q processors (q = 1..maxProcs) under the period bound, plus
// witness partitions (replica Proc fields are placeholders; the caller
// assigns real processors).
func energyCurve(app *pipeline.Application, speeds []float64, b float64, model pipeline.CommModel, maxProcs int, bound float64, em pipeline.EnergyModel) ([]float64, [][]Interval) {
	n := app.NumStages()
	pre := app.WorkPrefix()
	comm := func(vol float64) float64 {
		if vol == 0 {
			return 0
		}
		return vol / b
	}
	cost := func(f, t int, s float64) float64 {
		return mapping.IntervalCost(model, comm(app.InputSize(f)), (pre[t+1]-pre[f])/s, comm(app.OutputSize(t)))
	}
	// bestGroup[f][t][k]: cheapest mode index for the interval [f,t] on k
	// replicas, or -1. Cheapest feasible = slowest feasible (power grows
	// with speed).
	bestMode := func(f, t, k int) int {
		for mode, s := range speeds {
			if fmath.LE(cost(f, t, s)/float64(k), bound) {
				return mode
			}
		}
		return -1
	}
	type choice struct{ j, k, mode int }
	eng := make([][]float64, n+1)
	ch := make([][]choice, n+1)
	for i := range eng {
		eng[i] = make([]float64, maxProcs+1)
		ch[i] = make([]choice, maxProcs+1)
		for q := range eng[i] {
			eng[i][q] = math.Inf(1)
		}
	}
	eng[0][0] = 0
	for i := 1; i <= n; i++ {
		for q := 1; q <= maxProcs; q++ {
			for j := 0; j < i; j++ {
				for k := 1; k <= q; k++ {
					if math.IsInf(eng[j][q-k], 1) {
						continue
					}
					mode := bestMode(j, i-1, k)
					if mode < 0 {
						continue
					}
					v := eng[j][q-k] + float64(k)*em.Power(speeds[mode])
					if v < eng[i][q] {
						eng[i][q] = v
						ch[i][q] = choice{j, k, mode}
					}
				}
			}
		}
	}
	curve := make([]float64, maxProcs)
	parts := make([][]Interval, maxProcs)
	bestV := math.Inf(1)
	bestQ := 0
	for q := 1; q <= maxProcs; q++ {
		if eng[n][q] < bestV {
			bestV = eng[n][q]
			bestQ = q
		}
		curve[q-1] = bestV
		if bestQ == 0 {
			continue
		}
		var ivs []Interval
		i, qq := n, bestQ
		for i > 0 {
			c := ch[i][qq]
			reps := make([]Replica, c.k)
			for r := range reps {
				reps[r].Mode = c.mode
			}
			ivs = append([]Interval{{From: c.j, To: i - 1, Replicas: reps}}, ivs...)
			i, qq = c.j, qq-c.k
		}
		parts[q-1] = ivs
	}
	return curve, parts
}

// ExactMinEnergyGivenPeriod exhaustively minimizes the energy of replicated
// mappings under per-application period bounds, enumerating every replica
// set and every per-replica mode combination; oracle use only.
func ExactMinEnergyGivenPeriod(inst *pipeline.Instance, model pipeline.CommModel, periodBounds []float64, limit int64) (Mapping, float64, error) {
	best := Mapping{}
	bestV := math.Inf(1)
	found := false
	err := enumerateModes(inst, limit, func(rm *Mapping) {
		for a := range rm.Apps {
			if !fmath.LE(AppPeriod(inst, rm, a, model), periodBounds[a]) {
				return
			}
		}
		v := Energy(inst, rm)
		if !found || v < bestV {
			best = rm.Clone()
			bestV = v
			found = true
		}
	})
	if err != nil {
		return Mapping{}, 0, err
	}
	if !found {
		return Mapping{}, 0, ErrInfeasible
	}
	return best, bestV, nil
}

// enumerateModes is like enumerate but additionally varies every replica's
// mode (exponential in both dimensions).
func enumerateModes(inst *pipeline.Instance, limit int64, visit func(rm *Mapping)) error {
	left := limit
	return enumerate(inst, limit, func(rm *Mapping) error {
		var flat []*Replica
		for a := range rm.Apps {
			for j := range rm.Apps[a].Intervals {
				for r := range rm.Apps[a].Intervals[j].Replicas {
					flat = append(flat, &rm.Apps[a].Intervals[j].Replicas[r])
				}
			}
		}
		var rec func(idx int) error
		rec = func(idx int) error {
			if idx == len(flat) {
				left--
				if left < 0 {
					return fmt.Errorf("repl: enumeration limit exceeded")
				}
				visit(rm)
				return nil
			}
			modes := inst.Platform.Processors[flat[idx].Proc].NumModes()
			for mode := 0; mode < modes; mode++ {
				flat[idx].Mode = mode
				if err := rec(idx + 1); err != nil {
					return err
				}
			}
			return nil
		}
		return rec(0)
	})
}
