package repl

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/pipeline"
)

// Objective scores a replicated mapping; lower is better, +Inf infeasible.
type Objective func(rm *Mapping) float64

// HeurOptions tunes the replicated local search.
type HeurOptions struct {
	// Iters is the number of annealing steps per restart (default 4000).
	Iters int
	// Restarts is the number of independent searches (default 3).
	Restarts int
}

func (o HeurOptions) withDefaults() HeurOptions {
	if o.Iters <= 0 {
		o.Iters = 4000
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	return o
}

// HeurMinPeriod heuristically minimizes the weighted global period over
// replicated interval mappings on an arbitrary platform: simulated
// annealing over the replicated neighbourhood (boundary shifts, splits,
// merges, replica additions and removals, relocations, mode changes),
// seeded with whole-application mappings on the fastest processors. It is
// the heterogeneous-platform companion of MinPeriodFullyHom, whose problem
// is NP-hard once processors differ (the plain interval case already is,
// and replication only enlarges the search space).
func HeurMinPeriod(rng *rand.Rand, inst *pipeline.Instance, model pipeline.CommModel, opt HeurOptions) (Mapping, float64, error) {
	obj := func(rm *Mapping) float64 { return Period(inst, rm, model) }
	return Minimize(rng, inst, obj, opt)
}

// Minimize runs the replicated annealer on an arbitrary objective.
func Minimize(rng *rand.Rand, inst *pipeline.Instance, obj Objective, opt HeurOptions) (Mapping, float64, error) {
	opt = opt.withDefaults()
	p := inst.Platform.NumProcessors()
	if p < len(inst.Apps) {
		return Mapping{}, 0, fmt.Errorf("repl: %d processors cannot host %d applications", p, len(inst.Apps))
	}
	var best Mapping
	bestV := math.Inf(1)
	have := false
	for r := 0; r < opt.Restarts; r++ {
		cur := initialRepl(rng, inst, r)
		curV := obj(&cur)
		scale := math.Abs(curV)
		if scale == 0 || math.IsInf(scale, 1) {
			scale = 1
		}
		t0, t1 := 0.2*scale, 1e-4*scale
		cool := math.Pow(t1/t0, 1/math.Max(1, float64(opt.Iters-1)))
		temp := t0
		localBest := cur.Clone()
		localV := curV
		for i := 0; i < opt.Iters; i++ {
			cand := cur.Clone()
			if !mutateRepl(rng, inst, &cand) {
				temp *= cool
				continue
			}
			v := obj(&cand)
			accept := false
			switch {
			case math.IsInf(v, 1):
			//lint:allow floatcmp annealing acceptance is heuristic; tolerance would only perturb accept probability
			case v <= curV:
				accept = true
			case !math.IsInf(curV, 1):
				accept = rng.Float64() < math.Exp((curV-v)/temp)
			default:
				accept = true
			}
			if accept {
				cur, curV = cand, v
				if v < localV {
					localBest, localV = cand.Clone(), v
				}
			}
			temp *= cool
		}
		if !have || localV < bestV {
			best, bestV, have = localBest, localV, true
		}
	}
	if !have {
		return Mapping{}, 0, fmt.Errorf("repl: no mapping constructed")
	}
	return best, bestV, nil
}

// initialRepl builds a starting replicated mapping: each application whole
// on one processor (fastest first on round 0, shuffled later).
func initialRepl(rng *rand.Rand, inst *pipeline.Instance, round int) Mapping {
	p := inst.Platform.NumProcessors()
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	if round == 0 {
		// Fastest first.
		for i := 1; i < p; i++ {
			for j := i; j > 0 && inst.Platform.Processors[procs[j]].MaxSpeed() > inst.Platform.Processors[procs[j-1]].MaxSpeed(); j-- {
				procs[j], procs[j-1] = procs[j-1], procs[j]
			}
		}
	} else {
		rng.Shuffle(p, func(i, j int) { procs[i], procs[j] = procs[j], procs[i] })
	}
	rm := Mapping{Apps: make([]AppMapping, len(inst.Apps))}
	for a := range inst.Apps {
		u := procs[a]
		rm.Apps[a].Intervals = []Interval{{
			From: 0, To: inst.Apps[a].NumStages() - 1,
			Replicas: []Replica{{Proc: u, Mode: inst.Platform.Processors[u].NumModes() - 1}},
		}}
	}
	return rm
}

// mutateRepl applies one random neighbourhood move; false when the drawn
// move was inapplicable. All moves preserve validity.
func mutateRepl(rng *rand.Rand, inst *pipeline.Instance, rm *Mapping) bool {
	switch rng.Intn(7) {
	case 0:
		return moveReplMode(rng, inst, rm)
	case 1:
		return moveReplRelocate(rng, inst, rm)
	case 2:
		return moveReplAdd(rng, inst, rm)
	case 3:
		return moveReplRemove(rng, rm)
	case 4:
		return moveReplBoundary(rng, rm)
	case 5:
		return moveReplSplit(rng, inst, rm)
	default:
		return moveReplMerge(rng, rm)
	}
}

func pickInterval(rng *rand.Rand, rm *Mapping) (int, int) {
	total := 0
	for a := range rm.Apps {
		total += len(rm.Apps[a].Intervals)
	}
	i := rng.Intn(total)
	for a := range rm.Apps {
		if i < len(rm.Apps[a].Intervals) {
			return a, i
		}
		i -= len(rm.Apps[a].Intervals)
	}
	panic("unreachable")
}

func freeReplProcs(inst *pipeline.Instance, rm *Mapping) []int {
	used := make([]bool, inst.Platform.NumProcessors())
	for a := range rm.Apps {
		for _, iv := range rm.Apps[a].Intervals {
			for _, r := range iv.Replicas {
				used[r.Proc] = true
			}
		}
	}
	var out []int
	for u, b := range used {
		if !b {
			out = append(out, u)
		}
	}
	return out
}

func moveReplMode(rng *rand.Rand, inst *pipeline.Instance, rm *Mapping) bool {
	a, j := pickInterval(rng, rm)
	iv := &rm.Apps[a].Intervals[j]
	r := &iv.Replicas[rng.Intn(len(iv.Replicas))]
	modes := inst.Platform.Processors[r.Proc].NumModes()
	if modes == 1 {
		return false
	}
	delta := 1
	if rng.Intn(2) == 0 {
		delta = -1
	}
	nm := r.Mode + delta
	if nm < 0 || nm >= modes {
		nm = r.Mode - delta
	}
	if nm < 0 || nm >= modes {
		return false
	}
	r.Mode = nm
	return true
}

func moveReplRelocate(rng *rand.Rand, inst *pipeline.Instance, rm *Mapping) bool {
	free := freeReplProcs(inst, rm)
	if len(free) == 0 {
		return false
	}
	a, j := pickInterval(rng, rm)
	iv := &rm.Apps[a].Intervals[j]
	r := &iv.Replicas[rng.Intn(len(iv.Replicas))]
	u := free[rng.Intn(len(free))]
	r.Proc = u
	r.Mode = rng.Intn(inst.Platform.Processors[u].NumModes())
	return true
}

func moveReplAdd(rng *rand.Rand, inst *pipeline.Instance, rm *Mapping) bool {
	free := freeReplProcs(inst, rm)
	if len(free) == 0 {
		return false
	}
	a, j := pickInterval(rng, rm)
	u := free[rng.Intn(len(free))]
	rm.Apps[a].Intervals[j].Replicas = append(rm.Apps[a].Intervals[j].Replicas,
		Replica{Proc: u, Mode: rng.Intn(inst.Platform.Processors[u].NumModes())})
	return true
}

func moveReplRemove(rng *rand.Rand, rm *Mapping) bool {
	a, j := pickInterval(rng, rm)
	iv := &rm.Apps[a].Intervals[j]
	if len(iv.Replicas) < 2 {
		return false
	}
	k := rng.Intn(len(iv.Replicas))
	iv.Replicas = append(iv.Replicas[:k], iv.Replicas[k+1:]...)
	return true
}

func moveReplBoundary(rng *rand.Rand, rm *Mapping) bool {
	a, j := pickInterval(rng, rm)
	ivs := rm.Apps[a].Intervals
	if len(ivs) < 2 {
		return false
	}
	if j == len(ivs)-1 {
		j--
	}
	left, right := &ivs[j], &ivs[j+1]
	if rng.Intn(2) == 0 {
		if right.Len() <= 1 {
			return false
		}
		left.To++
		right.From++
	} else {
		if left.Len() <= 1 {
			return false
		}
		left.To--
		right.From--
	}
	return true
}

func moveReplSplit(rng *rand.Rand, inst *pipeline.Instance, rm *Mapping) bool {
	free := freeReplProcs(inst, rm)
	if len(free) == 0 {
		return false
	}
	a, j := pickInterval(rng, rm)
	ivs := rm.Apps[a].Intervals
	iv := ivs[j]
	if iv.Len() < 2 {
		return false
	}
	cut := iv.From + rng.Intn(iv.Len()-1)
	u := free[rng.Intn(len(free))]
	right := Interval{From: cut + 1, To: iv.To,
		Replicas: []Replica{{Proc: u, Mode: rng.Intn(inst.Platform.Processors[u].NumModes())}}}
	ivs[j].To = cut
	rm.Apps[a].Intervals = append(ivs[:j+1], append([]Interval{right}, ivs[j+1:]...)...)
	return true
}

func moveReplMerge(rng *rand.Rand, rm *Mapping) bool {
	a, j := pickInterval(rng, rm)
	ivs := rm.Apps[a].Intervals
	if len(ivs) < 2 {
		return false
	}
	if j == len(ivs)-1 {
		j--
	}
	keep := ivs[j]
	if rng.Intn(2) == 1 {
		keep = ivs[j+1]
	}
	merged := Interval{From: ivs[j].From, To: ivs[j+1].To,
		Replicas: append([]Replica(nil), keep.Replicas...)}
	rm.Apps[a].Intervals = append(ivs[:j], append([]Interval{merged}, ivs[j+2:]...)...)
	return true
}
