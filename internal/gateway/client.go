// HTTP client plumbing shared by the gateway and the pipebatch remote
// mode: a timed client (the default http.Client has no timeout, so one
// hung replica would wedge a retry loop forever), the RFC 7231
// Retry-After parser, and jittered exponential backoff.

package gateway

import (
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// DefaultClientTimeout bounds each HTTP attempt when the caller does not
// choose a timeout: roughly twice the server's default per-request
// deadline (pipeserved ships 30s), so a healthy-but-slow reply gets
// through while a hung connection cannot stall a retry loop forever.
const DefaultClientTimeout = 60 * time.Second

// NewClient returns an http.Client with a per-attempt timeout
// (timeout <= 0 means DefaultClientTimeout). Never use http.DefaultClient
// for solver traffic — it has no timeout at all.
func NewClient(timeout time.Duration) *http.Client {
	if timeout <= 0 {
		timeout = DefaultClientTimeout
	}
	return &http.Client{Timeout: timeout}
}

// ParseRetryAfter interprets a Retry-After header value per RFC 7231
// §7.1.3: either a non-negative delta in whole seconds or an HTTP-date.
// It returns 0 for an absent, malformed, or already-elapsed value — the
// caller falls back to its own backoff schedule.
func ParseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if wait := t.Sub(now); wait > 0 {
			return wait
		}
	}
	return 0
}

// backoffDelay is attempt n (0-based) of a jittered exponential backoff:
// uniform in [base·2ⁿ/2, base·2ⁿ], capped at 10s. The jitter decorrelates
// clients that shed at the same instant — a deterministic schedule would
// march them back in lockstep and reproduce the overload.
func backoffDelay(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base << attempt
	if max := 10 * time.Second; d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// retryWait picks the wait before retrying a shed attempt: the server's
// Retry-After when it sent one (it knows its own cooldown), otherwise the
// jittered backoff schedule.
func retryWait(retryAfter string, base time.Duration, attempt int, rng *rand.Rand, now time.Time) time.Duration {
	if wait := ParseRetryAfter(retryAfter, now); wait > 0 {
		return wait
	}
	return backoffDelay(base, attempt, rng)
}
