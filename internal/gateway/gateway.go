// Package gateway is the horizontal scale-out front for the pipeserved
// solver service: it computes each job's canonical key (the exact
// encoding the batch engine memoizes by), routes keys over a
// consistent-hash ring of replicas so every replica's memo and plan
// caches stay hot for a stable slice of the key space, fans /v1/batch
// sub-batches out concurrently, and reassembles the per-job results in
// input order.
//
// Results pass through as raw JSON: the gateway never decodes a result
// slot it merely forwards, so a batch answered through N replicas is
// bit-identical to the same batch answered by one (non-finite values
// rendered as null survive; re-encoding would corrupt them).
//
// The gateway degrades rather than fails: replicas are health-checked
// via their /readyz probes, shed sub-requests (429/503) are retried with
// jittered backoff honoring Retry-After, and when a replica stays down
// its keys reroute to their ring successors. Only when no healthy
// replica remains does a job slot report a structured shed error.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/jobspec"
)

// Config tunes a Gateway.
type Config struct {
	// Replicas are the base URLs of the pipeserved replicas
	// (e.g. http://10.0.0.1:8080). At least one is required.
	Replicas []string
	// Client is the HTTP client for all upstream traffic; nil means
	// NewClient(0) (a timed client — the default http.Client's missing
	// timeout is exactly the bug this package exists to not repeat).
	Client *http.Client
	// Router maps canonical keys onto replica indices; nil means a
	// consistent-hash Ring with DefaultVirtualNodes points per replica.
	Router Router
	// Retries is the number of additional attempts per upstream request
	// after the first fails retryably; 0 means DefaultRetries, negative
	// disables retries.
	Retries int
	// RetryBase is the base of the jittered exponential backoff between
	// retries (attempt n waits ~RetryBase·2ⁿ); 0 means DefaultRetryBase.
	RetryBase time.Duration
	// MaxBody caps request bodies in bytes; 0 means 8 MiB.
	MaxBody int64
	// Seed seeds the retry jitter; 0 derives one from the clock.
	Seed int64
	// Logger receives reroute and probe reports; nil discards.
	Logger *log.Logger
}

// Defaults for Config's zero values.
const (
	DefaultRetries   = 3
	DefaultRetryBase = 100 * time.Millisecond
	defaultMaxBody   = 8 << 20
)

// Gateway fronts a cluster of pipeserved replicas. Create with New; it
// implements http.Handler and is safe for concurrent use.
type Gateway struct {
	replicas  []string
	client    *http.Client
	router    Router
	retries   int
	retryBase time.Duration
	maxBody   int64
	log       *log.Logger
	mux       *http.ServeMux
	start     time.Time

	healthy []atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand

	rerouted atomic.Int64
	retried  atomic.Int64
	shed     atomic.Int64

	mu       sync.Mutex
	requests map[string]int64
}

// New builds a Gateway over the configured replicas, all initially
// presumed healthy (the first failed request or probe corrects that).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gateway: no replicas configured")
	}
	replicas := make([]string, len(cfg.Replicas))
	for i, u := range cfg.Replicas {
		if u == "" {
			return nil, fmt.Errorf("gateway: replica %d has an empty URL", i)
		}
		replicas[i] = strings.TrimRight(u, "/")
	}
	router := cfg.Router
	if router == nil {
		router = NewRing(len(replicas), 0)
	}
	if router.Replicas() != len(replicas) {
		return nil, fmt.Errorf("gateway: router built for %d replicas, config has %d",
			router.Replicas(), len(replicas))
	}
	client := cfg.Client
	if client == nil {
		client = NewClient(0)
	}
	retries := cfg.Retries
	switch {
	case retries == 0:
		retries = DefaultRetries
	case retries < 0:
		retries = 0
	}
	retryBase := cfg.RetryBase
	if retryBase <= 0 {
		retryBase = DefaultRetryBase
	}
	maxBody := cfg.MaxBody
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	g := &Gateway{
		replicas:  replicas,
		client:    client,
		router:    router,
		retries:   retries,
		retryBase: retryBase,
		maxBody:   maxBody,
		log:       logger,
		mux:       http.NewServeMux(),
		start:     time.Now(),
		healthy:   make([]atomic.Bool, len(replicas)),
		rng:       rand.New(rand.NewSource(seed)),
		requests:  make(map[string]int64),
	}
	for i := range g.healthy {
		g.healthy[i].Store(true)
	}
	g.mux.HandleFunc("POST /v1/batch", g.handleBatch)
	g.mux.HandleFunc("POST /v1/solve", g.handleSolve)
	g.mux.HandleFunc("POST /v1/pareto", g.handleOpaque)
	g.mux.HandleFunc("POST /v1/simulate", g.handleOpaque)
	g.mux.HandleFunc("POST /v1/resolve", g.handleOpaque)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /stats", g.handleStats)
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if _, pattern := g.mux.Handler(r); pattern != "" {
		g.mu.Lock()
		g.requests[r.URL.Path]++
		g.mu.Unlock()
	}
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		r.Body = http.MaxBytesReader(w, r.Body, g.maxBody)
	}
	g.mux.ServeHTTP(w, r)
}

// Healthy reports the current health view of replica i.
func (g *Gateway) Healthy(i int) bool { return g.healthy[i].Load() }

// markDown records replica i as unhealthy so routing skips it until a
// probe brings it back.
func (g *Gateway) markDown(i int, reason error) {
	if g.healthy[i].CompareAndSwap(true, false) {
		g.log.Printf("gateway: replica %d (%s) marked down: %v", i, g.replicas[i], reason)
	}
}

// Probe checks every replica's /readyz once and updates the health view.
// A replica answers ready with 200; anything else — including a refused
// connection — marks it down. Probes use the shared timed client.
func (g *Gateway) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for i := range g.replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.replicas[i]+"/readyz", nil)
			if err != nil {
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				g.markDown(i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				if g.healthy[i].CompareAndSwap(false, true) {
					g.log.Printf("gateway: replica %d (%s) back up", i, g.replicas[i])
				}
			} else {
				g.markDown(i, fmt.Errorf("readyz status %d", resp.StatusCode))
			}
		}(i)
	}
	wg.Wait()
}

// StartProbes probes every replica now and then every interval
// (0 means 2s) until ctx is cancelled.
func (g *Gateway) StartProbes(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	g.Probe(ctx)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.Probe(ctx)
			}
		}
	}()
}

// route picks the replica owning key under the current health view.
func (g *Gateway) route(key string) (int, bool) {
	return g.router.Route(key, func(i int) bool { return g.healthy[i].Load() })
}

// sleepCtx waits d or until ctx is done; it reports whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// errShed marks an upstream rejection that exhausted its retries.
var errShed = errors.New("gateway: upstream shed the request")

// post sends body to one replica with the retry schedule: transport
// failures (including client timeouts) and shed responses (429/503,
// honoring Retry-After) are retried up to the configured budget; any
// other response is returned to the caller. On success the full response
// body is read and returned with the response.
func (g *Gateway) post(ctx context.Context, replica int, path string, body []byte) (*http.Response, []byte, error) {
	url := g.replicas[replica] + path
	var lastErr error
	for attempt := 0; attempt <= g.retries; attempt++ {
		if attempt > 0 {
			g.retried.Add(1)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := g.client.Do(req)
		if err != nil {
			// Transport failure: connection refused, reset, or the
			// client's per-attempt timeout — all retryable, the request
			// may simply have raced a restart.
			lastErr = err
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			if attempt < g.retries && sleepCtx(ctx, g.backoff(attempt)) {
				continue
			}
			return nil, nil, lastErr
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			if attempt < g.retries && sleepCtx(ctx, g.backoff(attempt)) {
				continue
			}
			return nil, nil, lastErr
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			lastErr = fmt.Errorf("%w: %s answered %d", errShed, url, resp.StatusCode)
			if attempt < g.retries {
				wait := retryWait(resp.Header.Get("Retry-After"), g.retryBase, attempt, g.jitterRNG(), time.Now())
				if sleepCtx(ctx, wait) {
					continue
				}
			}
			return resp, respBody, lastErr
		}
		return resp, respBody, nil
	}
	return nil, nil, lastErr
}

func (g *Gateway) backoff(attempt int) time.Duration {
	return backoffDelay(g.retryBase, attempt, g.jitterRNG())
}

// jitterRNG draws from the shared jitter source under its lock.
// math/rand.Rand is not safe for concurrent use, and the fan-out calls
// this from many goroutines.
func (g *Gateway) jitterRNG() *rand.Rand {
	g.rngMu.Lock()
	defer g.rngMu.Unlock()
	return rand.New(rand.NewSource(g.rng.Int63()))
}

// wireOutput is the /v1/batch response with the result slots kept as raw
// JSON: the gateway reassembles them verbatim, never decoding a slot it
// only forwards, so reassembly is bit-preserving.
type wireOutput struct {
	Results []json.RawMessage `json:"results"`
	Stats   jobspec.Stats     `json:"stats"`
}

// errorSlot renders a structured per-job error result (same shape the
// server puts in a failed slot) as a raw slot.
func errorSlot(code string, err error) json.RawMessage {
	raw, _ := json.Marshal(jobspec.Result{Error: err.Error(), Code: code})
	return raw
}

// mergeStats folds one sub-batch's stats into the running totals.
func mergeStats(dst *jobspec.Stats, src jobspec.Stats) {
	dst.Jobs += src.Jobs
	dst.CacheHits += src.CacheHits
	dst.Errors += src.Errors
	dst.PlanCompiles += src.PlanCompiles
	dst.PlanReuses += src.PlanReuses
	dst.Degraded += src.Degraded
	dst.Preempted += src.Preempted
	for m, n := range src.Methods {
		dst.Methods[m] += n
	}
}

// handleBatch fans a batch out across the ring: every job is keyed by its
// canonical encoding, grouped by owning replica, and the groups are
// posted concurrently; the sub-responses' raw result slots are scattered
// back into input order and the sub-batch stats are merged. A group whose
// replica fails (transport error or shed past the retry budget) marks the
// replica down and reroutes to the ring successors; jobs with no healthy
// replica left answer structured shed errors in their slots rather than
// failing the whole batch.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	doc, err := jobspec.DecodeFile(r.Body)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	jobs, err := doc.BatchJobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	keys := make([]string, len(jobs))
	for i := range jobs {
		keys[i] = batch.Key(jobs[i].Inst, jobs[i].Req)
	}

	startWall := time.Now()
	results := make([]json.RawMessage, len(jobs))
	merged := jobspec.Stats{Methods: make(map[string]int)}
	var mu sync.Mutex // guards merged (results slots are disjoint per group)

	indices := make([]int, len(jobs))
	for i := range indices {
		indices[i] = i
	}
	g.dispatch(r.Context(), &doc, keys, indices, results, &merged, &mu, 0)

	merged.WallMs = float64(time.Since(startWall).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, wireOutput{Results: results, Stats: merged})
}

// dispatch routes the given job indices under the current health view,
// posts one sub-batch per owning replica concurrently, and recurses for
// groups whose replica turned out to be down (depth bounds the recursion:
// each level retires at least one replica).
func (g *Gateway) dispatch(ctx context.Context, doc *jobspec.File, keys []string,
	indices []int, results []json.RawMessage, merged *jobspec.Stats, mu *sync.Mutex, depth int) {

	groups := make(map[int][]int)
	for _, idx := range indices {
		rep, ok := g.route(keys[idx])
		if !ok {
			g.shed.Add(1)
			mu.Lock()
			merged.Jobs++
			merged.Errors++
			mu.Unlock()
			results[idx] = errorSlot(jobspec.CodeShed, errors.New("no healthy replica for job"))
			continue
		}
		groups[rep] = append(groups[rep], idx)
	}

	var wg sync.WaitGroup
	for rep, group := range groups {
		wg.Add(1)
		go func(rep int, group []int) {
			defer wg.Done()
			sub := jobspec.File{Instance: doc.Instance, Jobs: make([]jobspec.Job, len(group))}
			for i, idx := range group {
				sub.Jobs[i] = doc.Jobs[idx]
			}
			body, err := json.Marshal(sub)
			if err != nil {
				g.failSlots(group, results, merged, mu, jobspec.CodeInternal, err)
				return
			}
			resp, respBody, err := g.post(ctx, rep, "/v1/batch", body)
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("replica %s answered %d to a sub-batch: %s",
					g.replicas[rep], resp.StatusCode, truncate(respBody, 200))
			}
			if err != nil {
				// The replica is gone or persistently shedding: take it
				// out of the ring and let the group's keys find their
				// successors. Recursion is bounded — every level marks a
				// replica down, and route() answers ok=false once none
				// are left.
				if ctx.Err() != nil {
					g.failSlots(group, results, merged, mu, jobspec.CodeTimeout, ctx.Err())
					return
				}
				g.markDown(rep, err)
				if depth < len(g.replicas) {
					g.rerouted.Add(int64(len(group)))
					g.dispatch(ctx, doc, keys, group, results, merged, mu, depth+1)
					return
				}
				g.failSlots(group, results, merged, mu, jobspec.CodeShed, err)
				return
			}
			var out wireOutput
			if err := json.Unmarshal(respBody, &out); err != nil || len(out.Results) != len(group) {
				if err == nil {
					err = fmt.Errorf("sub-batch answered %d results for %d jobs", len(out.Results), len(group))
				}
				g.failSlots(group, results, merged, mu, jobspec.CodeInternal, err)
				return
			}
			for i, idx := range group {
				results[idx] = out.Results[i]
			}
			mu.Lock()
			mergeStats(merged, out.Stats)
			mu.Unlock()
		}(rep, group)
	}
	wg.Wait()
}

// failSlots fills a group's result slots with one structured error each
// and counts them in the merged stats.
func (g *Gateway) failSlots(group []int, results []json.RawMessage, merged *jobspec.Stats,
	mu *sync.Mutex, code string, err error) {
	if code == jobspec.CodeShed {
		g.shed.Add(int64(len(group)))
	}
	slot := errorSlot(code, err)
	for _, idx := range group {
		results[idx] = slot
	}
	mu.Lock()
	merged.Jobs += len(group)
	merged.Errors += len(group)
	mu.Unlock()
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

// handleSolve routes a single solve by its canonical key — the same key
// its job would use inside a batch, so a /v1/solve repeat always lands on
// the replica whose cache holds it — and forwards the request verbatim.
func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	var job jobspec.Job
	if err := json.Unmarshal(body, &job); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if job.Instance == nil {
		writeError(w, http.StatusBadRequest, errors.New("solve request has no instance"))
		return
	}
	file := jobspec.File{Instance: job.Instance, Jobs: []jobspec.Job{{Request: job.Request}}}
	jobs, err := file.BatchJobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g.forward(w, r, batch.Key(jobs[0].Inst, jobs[0].Req), body)
}

// handleOpaque routes an endpoint the gateway does not interpret
// (pareto, simulate, resolve) by a hash of the request body: identical
// documents land on the same replica, so their compiled plans are warm,
// without the gateway needing each endpoint's schema.
func (g *Gateway) handleOpaque(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	g.forward(w, r, fmt.Sprintf("opaque:%s:%x", r.URL.Path, fnv1a(string(body))), body)
}

// forward proxies one request to the replica owning key, rerouting to
// ring successors while replicas fail, and relays the upstream response
// (status, error documents included) verbatim.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	tried := 0
	for {
		rep, ok := g.route(key)
		if !ok {
			g.shed.Add(1)
			writeShed(w, fmt.Errorf("no healthy replica for %s", r.URL.Path))
			return
		}
		resp, respBody, err := g.post(r.Context(), rep, r.URL.Path, body)
		if err != nil && resp == nil {
			if r.Context().Err() != nil {
				writeError(w, http.StatusGatewayTimeout, r.Context().Err())
				return
			}
			g.markDown(rep, err)
			if tried++; tried <= len(g.replicas) {
				g.rerouted.Add(1)
				continue
			}
			writeShed(w, err)
			return
		}
		// Shed responses that survived the retry budget are relayed as-is:
		// the client sees the upstream's Retry-After and error document.
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
		return
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz answers ready while at least one replica is believed
// healthy: a gateway with a partial cluster still serves (degraded), one
// with no backends should be routed around.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for i := range g.healthy {
		if g.healthy[i].Load() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no healthy replicas"})
}

// replicaStatsJSON is the per-shard block of the gateway's /stats: the
// replica's identity and health plus the subset of its own /stats the
// gateway aggregates.
type replicaStatsJSON struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Reachable distinguishes "marked healthy but /stats failed" from a
	// clean sample; the totals only include reachable replicas.
	Reachable bool           `json:"reachable"`
	Stats     *upstreamStats `json:"stats,omitempty"`
}

// upstreamStats mirrors the slice of pipeserved's /stats document the
// gateway understands; unknown fields are ignored so the two sides can
// evolve independently.
type upstreamStats struct {
	InFlight int64            `json:"inFlight"`
	Shed     int64            `json:"shed"`
	Requests map[string]int64 `json:"requests"`
	Cache    struct {
		Entries        int     `json:"entries"`
		Cap            int     `json:"cap"`
		Hits           int64   `json:"hits"`
		Misses         int64   `json:"misses"`
		Evictions      int64   `json:"evictions"`
		HitRate        float64 `json:"hitRate"`
		Policy         string  `json:"policy"`
		FollowerPolicy string  `json:"followerPolicy"`
		PolicySelector int     `json:"policySelector"`
		PlanEntries    int     `json:"planEntries"`
		PlanHits       int64   `json:"planHits"`
		PlanMisses     int64   `json:"planMisses"`
	} `json:"cache"`
}

// gatewayStatsJSON is the gateway's /stats document: its own counters,
// the per-replica health and stats, and cluster-wide merged totals.
type gatewayStatsJSON struct {
	UptimeMs float64            `json:"uptimeMs"`
	Requests map[string]int64   `json:"requests"`
	Rerouted int64              `json:"rerouted"`
	Retried  int64              `json:"retried"`
	Shed     int64              `json:"shed"`
	Replicas []replicaStatsJSON `json:"replicas"`
	Merged   mergedStatsJSON    `json:"merged"`
}

// mergedStatsJSON sums the reachable replicas' counters; rates are
// recomputed from the summed numerators and denominators, not averaged.
type mergedStatsJSON struct {
	Replicas     int              `json:"replicas"`
	InFlight     int64            `json:"inFlight"`
	Shed         int64            `json:"shed"`
	Requests     map[string]int64 `json:"requests"`
	CacheEntries int              `json:"cacheEntries"`
	CacheCap     int              `json:"cacheCap"`
	CacheHits    int64            `json:"cacheHits"`
	CacheMisses  int64            `json:"cacheMisses"`
	Evictions    int64            `json:"evictions"`
	HitRate      float64          `json:"hitRate"`
	PlanEntries  int              `json:"planEntries"`
	PlanHits     int64            `json:"planHits"`
	PlanMisses   int64            `json:"planMisses"`
	PlanHitRate  float64          `json:"planHitRate"`
}

// handleStats samples every replica's /stats concurrently and answers the
// gateway's own counters, the per-replica breakdown, and the cluster-wide
// sums.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	per := make([]replicaStatsJSON, len(g.replicas))
	var wg sync.WaitGroup
	for i := range g.replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			per[i] = replicaStatsJSON{URL: g.replicas[i], Healthy: g.healthy[i].Load()}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, g.replicas[i]+"/stats", nil)
			if err != nil {
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				return
			}
			var st upstreamStats
			if json.Unmarshal(body, &st) == nil {
				per[i].Reachable = true
				per[i].Stats = &st
			}
		}(i)
	}
	wg.Wait()

	merged := mergedStatsJSON{Requests: make(map[string]int64)}
	for i := range per {
		st := per[i].Stats
		if st == nil {
			continue
		}
		merged.Replicas++
		merged.InFlight += st.InFlight
		merged.Shed += st.Shed
		for k, v := range st.Requests {
			merged.Requests[k] += v
		}
		merged.CacheEntries += st.Cache.Entries
		merged.CacheCap += st.Cache.Cap
		merged.CacheHits += st.Cache.Hits
		merged.CacheMisses += st.Cache.Misses
		merged.Evictions += st.Cache.Evictions
		merged.PlanEntries += st.Cache.PlanEntries
		merged.PlanHits += st.Cache.PlanHits
		merged.PlanMisses += st.Cache.PlanMisses
	}
	if total := merged.CacheHits + merged.CacheMisses; total > 0 {
		merged.HitRate = float64(merged.CacheHits) / float64(total)
	}
	if total := merged.PlanHits + merged.PlanMisses; total > 0 {
		merged.PlanHitRate = float64(merged.PlanHits) / float64(total)
	}

	resp := gatewayStatsJSON{
		UptimeMs: float64(time.Since(g.start).Microseconds()) / 1000,
		Requests: make(map[string]int64),
		Rerouted: g.rerouted.Load(),
		Retried:  g.retried.Load(),
		Shed:     g.shed.Load(),
		Replicas: per,
		Merged:   merged,
	}
	g.mu.Lock()
	for k, v := range g.requests {
		resp.Requests[k] = v
	}
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// --- response helpers (same documents the server emits) ---

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) // past WriteHeader, an encode error has no channel left
}

type errorJSON struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	code := jobspec.ErrorCode(err)
	if code == jobspec.CodeInternal && status >= 400 && status < 500 {
		code = jobspec.CodeInvalid
	}
	writeJSON(w, status, errorJSON{Error: err.Error(), Code: code})
}

// writeShed answers 503 + Retry-After with code "shed": the cluster has
// no healthy replica for this request right now.
func writeShed(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: err.Error(), Code: jobspec.CodeShed})
}

func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}
