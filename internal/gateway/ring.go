// Consistent-hash routing for the gateway. The Router abstraction is
// deliberately narrow — given a job's canonical key and the current
// per-replica health, name the replica — so richer topologies (the
// Benes-style control-optimal networks of the related work) can back a
// future tier without touching the fan-out machinery.

package gateway

import (
	"fmt"
	"sort"
)

// Router maps canonical job keys onto replica indices. Implementations
// must be safe for concurrent use and stateless with respect to health:
// the gateway passes the current health view on every call, so a router
// never caches liveness.
type Router interface {
	// Replicas returns the number of replica slots the router was built
	// for.
	Replicas() int
	// Route returns the replica that should own key, skipping replicas
	// for which healthy reports false. ok is false when no healthy
	// replica exists. Routing must be deterministic: the same key against
	// the same health view always names the same replica.
	Route(key string, healthy func(int) bool) (replica int, ok bool)
}

// fnv1a hashes a string with 64-bit FNV-1a — the same hash family the
// batch cache shards by, cheap and dependency-free.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Ring is a consistent-hash ring over replica indices. Each replica owns
// a set of virtual points on the ring; a key belongs to the first point
// clockwise from its hash. Virtual points smooth the key distribution and
// keep reassignment local when a replica leaves: only the keys whose
// owning point belonged to the dead replica move, each to its ring
// successor, so the other replicas' memo and plan caches stay hot.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int
}

// DefaultVirtualNodes is the per-replica virtual point count used by
// NewRing when vnodes <= 0; 64 keeps the max/min load ratio within a few
// percent for small clusters.
const DefaultVirtualNodes = 64

// NewRing builds a consistent-hash ring over replicas indices 0..n-1 with
// the given number of virtual points per replica (vnodes <= 0 means
// DefaultVirtualNodes). It panics if n <= 0 — a gateway without replicas
// is a configuration error, not a runtime condition.
func NewRing(n, vnodes int) *Ring {
	if n <= 0 {
		panic("gateway: NewRing needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{replicas: n, points: make([]ringPoint, 0, n*vnodes)}
	for rep := 0; rep < n; rep++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    fnv1a(fmt.Sprintf("replica-%d/vnode-%d", rep, v)),
				replica: rep,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Replicas implements Router.
func (r *Ring) Replicas() int { return r.replicas }

// Route implements Router: binary-search the first virtual point at or
// clockwise past the key's hash, then walk the ring until a healthy
// replica owns a point. The walk visits each replica at most once, so a
// fully unhealthy cluster answers ok=false instead of spinning.
func (r *Ring) Route(key string, healthy func(int) bool) (int, bool) {
	h := fnv1a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool, r.replicas)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.replica] {
			continue
		}
		if healthy == nil || healthy(p.replica) {
			return p.replica, true
		}
		seen[p.replica] = true
		if len(seen) == r.replicas {
			break
		}
	}
	return 0, false
}
