package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobspec"
	"repro/internal/pipeline"
	"repro/internal/server"
)

// --- Router unit tests ---

// TestRingRouting pins the consistent-hash ring's contract: routing is
// deterministic, every replica owns a share of the key space, a downed
// replica's keys move to successors while everyone else's keys stay put,
// and a fully unhealthy ring reports ok=false.
func TestRingRouting(t *testing.T) {
	r := NewRing(5, 0)
	if r.Replicas() != 5 {
		t.Fatalf("Replicas = %d", r.Replicas())
	}
	owned := make(map[int]int)
	home := make(map[string]int)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		rep, ok := r.Route(key, nil)
		if !ok {
			t.Fatalf("key %q unroutable on a healthy ring", key)
		}
		if again, _ := r.Route(key, nil); again != rep {
			t.Fatalf("key %q routed to %d then %d", key, rep, again)
		}
		owned[rep]++
		home[key] = rep
	}
	for rep := 0; rep < 5; rep++ {
		if owned[rep] == 0 {
			t.Errorf("replica %d owns no keys out of 2000", rep)
		}
	}

	// Down replica 2: its keys must move, everyone else's must not.
	healthy := func(i int) bool { return i != 2 }
	moved := 0
	for key, rep := range home {
		now, ok := r.Route(key, healthy)
		if !ok || now == 2 {
			t.Fatalf("key %q routed to downed replica (ok=%v now=%d)", key, ok, now)
		}
		if rep != 2 && now != rep {
			t.Errorf("key %q owned by healthy replica %d was moved to %d", key, rep, now)
		}
		if rep == 2 && now != rep {
			moved++
		}
	}
	if moved != owned[2] {
		t.Errorf("moved %d keys, want all %d keys of the downed replica", moved, owned[2])
	}

	if _, ok := r.Route("any", func(int) bool { return false }); ok {
		t.Error("fully unhealthy ring still routed a key")
	}
}

// --- Retry-After parsing (bugfix satellite) ---

// TestParseRetryAfter is the Retry-After satellite regression: RFC 7231
// allows both delta-seconds and an HTTP-date, and garbage must fall back
// to 0 (the caller's own backoff), never an error or a huge wait.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{"0", 0},
		{"-3", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // already elapsed
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0},               // long past
		{"soon", 0},
		{"12.5", 0},
		{"Notaday, 40 Foo 2026 99:99:99 GMT", 0},
	}
	for _, c := range cases {
		if got := ParseRetryAfter(c.in, now); got != c.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// --- integration harness ---

func fig1JSON(t *testing.T) string {
	t.Helper()
	inst := pipeline.MotivatingExample()
	var buf bytes.Buffer
	if err := pipeline.EncodeJSON(&buf, &inst); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startReplicas spins n in-process pipeserved replicas and returns their
// base URLs plus the test servers (for targeted shutdowns).
func startReplicas(t *testing.T, n int, cfg server.Config) ([]string, []*httptest.Server) {
	t.Helper()
	urls := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(server.New(cfg))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		servers[i] = ts
	}
	return urls, servers
}

func newGateway(t *testing.T, urls []string, cfg Config) *Gateway {
	t.Helper()
	cfg.Replicas = urls
	if cfg.Client == nil {
		cfg.Client = NewClient(10 * time.Second)
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// batchBody builds a /v1/batch document over the Figure 1 instance with n
// distinct energy-under-period-bound jobs (each bound is a distinct
// canonical key, so the jobs spread over the ring).
func batchBody(t *testing.T, n int) string {
	t.Helper()
	var jobs []string
	for i := 0; i < n; i++ {
		jobs = append(jobs, fmt.Sprintf(`{"request": {"objective": "energy", "periodBound": %g}}`, 2+float64(i)/8))
	}
	return `{"instance": ` + fig1JSON(t) + `, "jobs": [` + strings.Join(jobs, ",") + `]}`
}

func postGateway(g *Gateway, path, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(body)))
	return rec
}

func getGateway(g *Gateway, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder, dst any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), dst); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
}

// rawOutput decodes a batch response keeping the result slots raw, for
// bit-identity comparisons.
type rawOutput struct {
	Results []json.RawMessage `json:"results"`
	Stats   jobspec.Stats     `json:"stats"`
}

// TestGatewayBatchFanOut is the core integration test: a batch through a
// 3-replica gateway must answer every job in input order with the same
// bits a single replica produces, and the merged stats must add up.
func TestGatewayBatchFanOut(t *testing.T) {
	const jobs = 24
	body := batchBody(t, jobs)

	// Ground truth: the same document answered by one replica directly.
	direct := httptest.NewRecorder()
	server.New(server.Config{}).ServeHTTP(direct,
		httptest.NewRequest("POST", "/v1/batch", strings.NewReader(body)))
	if direct.Code != http.StatusOK {
		t.Fatalf("direct batch: status %d: %s", direct.Code, direct.Body.String())
	}
	var want rawOutput
	decode(t, direct, &want)

	urls, _ := startReplicas(t, 3, server.Config{})
	g := newGateway(t, urls, Config{})
	rec := postGateway(g, "/v1/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("gateway batch: status %d: %s", rec.Code, rec.Body.String())
	}
	var got rawOutput
	decode(t, rec, &got)

	if len(got.Results) != jobs {
		t.Fatalf("%d results for %d jobs", len(got.Results), jobs)
	}
	// Order preservation and the determinism pin in one stroke: slot i
	// through the sharded cluster is byte-identical to slot i from a
	// single replica.
	for i := range got.Results {
		if !bytes.Equal(compactJSON(t, got.Results[i]), compactJSON(t, want.Results[i])) {
			t.Errorf("slot %d differs through the gateway:\ngot  %s\nwant %s",
				i, got.Results[i], want.Results[i])
		}
	}
	if got.Stats.Jobs != jobs || got.Stats.Errors != 0 {
		t.Errorf("merged stats: jobs=%d errors=%d, want %d/0", got.Stats.Jobs, got.Stats.Errors, jobs)
	}
	methods := 0
	for _, n := range got.Stats.Methods {
		methods += n
	}
	if methods != jobs {
		t.Errorf("merged method counts sum to %d, want %d", methods, jobs)
	}

	// The fan-out genuinely sharded: more than one replica saw traffic.
	var st gatewayStatsJSON
	decode(t, getGateway(g, "/stats"), &st)
	replicasHit := 0
	for _, rep := range st.Replicas {
		if rep.Stats != nil && rep.Stats.Requests["/v1/batch"] > 0 {
			replicasHit++
		}
	}
	if replicasHit < 2 {
		t.Errorf("only %d replicas saw sub-batches; ring is not spreading", replicasHit)
	}
	// Merged stats arithmetic: the cluster-wide request count is the sum
	// of the per-replica counts.
	var sum int64
	for _, rep := range st.Replicas {
		if rep.Stats != nil {
			sum += rep.Stats.Requests["/v1/batch"]
		}
	}
	if st.Merged.Requests["/v1/batch"] != sum || sum == 0 {
		t.Errorf("merged /v1/batch = %d, per-replica sum = %d", st.Merged.Requests["/v1/batch"], sum)
	}
	var misses int64
	for _, rep := range st.Replicas {
		if rep.Stats != nil {
			misses += rep.Stats.Cache.Misses
		}
	}
	if st.Merged.CacheMisses != misses {
		t.Errorf("merged cache misses = %d, per-replica sum = %d", st.Merged.CacheMisses, misses)
	}
}

func compactJSON(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compacting %q: %v", raw, err)
	}
	return buf.Bytes()
}

// TestGatewayDeterminismAcrossClusterSizes pins the bit-identity claim
// directly: the same batch through a 1-replica and a 4-replica gateway
// yields byte-identical result arrays.
func TestGatewayDeterminismAcrossClusterSizes(t *testing.T) {
	body := batchBody(t, 16)
	var outputs []rawOutput
	for _, n := range []int{1, 4} {
		urls, _ := startReplicas(t, n, server.Config{})
		g := newGateway(t, urls, Config{})
		rec := postGateway(g, "/v1/batch", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%d replicas: status %d: %s", n, rec.Code, rec.Body.String())
		}
		var out rawOutput
		decode(t, rec, &out)
		outputs = append(outputs, out)
	}
	for i := range outputs[0].Results {
		a, b := compactJSON(t, outputs[0].Results[i]), compactJSON(t, outputs[1].Results[i])
		if !bytes.Equal(a, b) {
			t.Errorf("slot %d: 1-replica %s != 4-replica %s", i, a, b)
		}
	}
}

// TestGatewayReroutesDownShard kills one replica mid-flight: the batch
// must still answer every job (the dead replica's keys walk to their ring
// successors), the gateway must record the reroute, and a probe must mark
// the replica down.
func TestGatewayReroutesDownShard(t *testing.T) {
	urls, servers := startReplicas(t, 3, server.Config{})
	g := newGateway(t, urls, Config{Retries: -1}) // no retries: fail over immediately
	servers[1].Close()

	rec := postGateway(g, "/v1/batch", batchBody(t, 24))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out rawOutput
	decode(t, rec, &out)
	if out.Stats.Errors != 0 {
		t.Fatalf("batch with a dead replica: %d errors: %s", out.Stats.Errors, rec.Body.String())
	}
	for i, slot := range out.Results {
		var res jobspec.Result
		if err := json.Unmarshal(slot, &res); err != nil || res.Error != "" {
			t.Errorf("slot %d failed after reroute: %s", i, slot)
		}
	}
	if g.Healthy(1) {
		t.Error("dead replica still marked healthy after a failed sub-batch")
	}
	var st gatewayStatsJSON
	decode(t, getGateway(g, "/stats"), &st)
	if st.Rerouted == 0 {
		t.Error("no reroutes recorded despite a dead replica")
	}

	// The same document again: everything routes around the dead replica
	// with no further reroutes needed (its keys' successors are now home).
	rerouted := st.Rerouted
	if rec := postGateway(g, "/v1/batch", batchBody(t, 24)); rec.Code != http.StatusOK {
		t.Fatalf("second batch: status %d", rec.Code)
	}
	decode(t, getGateway(g, "/stats"), &st)
	if st.Rerouted != rerouted {
		t.Errorf("second batch rerouted again (%d -> %d); health view not applied at routing time",
			rerouted, st.Rerouted)
	}
}

// TestGatewayRetriesShedUpstream fronts a replica with a wrapper that
// sheds the first attempt of every sub-batch with 503 + Retry-After: the
// gateway must honor the hint, retry, and deliver the batch without
// surfacing the shed.
func TestGatewayRetriesShedUpstream(t *testing.T) {
	inner := server.New(server.Config{})
	var attempts atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") && attempts.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error": "try later", "code": "shed"}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	g := newGateway(t, []string{flaky.URL}, Config{Retries: 2})
	rec := postGateway(g, "/v1/batch", batchBody(t, 4))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out rawOutput
	decode(t, rec, &out)
	if out.Stats.Errors != 0 {
		t.Fatalf("errors after retry: %s", rec.Body.String())
	}
	var st gatewayStatsJSON
	decode(t, getGateway(g, "/stats"), &st)
	if st.Retried == 0 {
		t.Error("no retries recorded despite the shedding upstream")
	}
}

// TestGatewayAllReplicasDown pins the endgame: with no healthy replica,
// batch slots answer structured shed errors (the batch itself is not an
// HTTP failure), /readyz goes 503, and single solves shed with
// Retry-After.
func TestGatewayAllReplicasDown(t *testing.T) {
	urls, servers := startReplicas(t, 2, server.Config{})
	g := newGateway(t, urls, Config{Retries: -1})
	for _, ts := range servers {
		ts.Close()
	}

	rec := postGateway(g, "/v1/batch", batchBody(t, 3))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d, want 200 with per-job errors", rec.Code)
	}
	var out rawOutput
	decode(t, rec, &out)
	if out.Stats.Errors != 3 {
		t.Fatalf("errors = %d, want 3: %s", out.Stats.Errors, rec.Body.String())
	}
	for i, slot := range out.Results {
		var res jobspec.Result
		if err := json.Unmarshal(slot, &res); err != nil || res.Code != jobspec.CodeShed {
			t.Errorf("slot %d: %s, want code shed", i, slot)
		}
	}

	if rec := getGateway(g, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d with all replicas down, want 503", rec.Code)
	}
	solve := postGateway(g, "/v1/solve",
		`{"instance": `+fig1JSON(t)+`, "request": {"objective": "period"}}`)
	if solve.Code != http.StatusServiceUnavailable {
		t.Errorf("solve status %d, want 503", solve.Code)
	}
	if solve.Header().Get("Retry-After") == "" {
		t.Error("shed solve has no Retry-After")
	}
}

// TestGatewayProbeRecovery takes a replica down via probes, then brings a
// fresh replica up at a new URL... (the httptest listener cannot be
// reopened on the same port, so recovery is exercised on the health bits
// directly): Probe must flip health both ways.
func TestGatewayProbeRecovery(t *testing.T) {
	urls, servers := startReplicas(t, 2, server.Config{})
	g := newGateway(t, urls, Config{})
	ctx := t.Context()

	g.Probe(ctx)
	if !g.Healthy(0) || !g.Healthy(1) {
		t.Fatal("probe marked a live replica down")
	}
	servers[0].Close()
	g.Probe(ctx)
	if g.Healthy(0) {
		t.Fatal("probe kept a dead replica healthy")
	}
	if g.Healthy(1) != true {
		t.Fatal("probe downed the surviving replica")
	}
	if rec := getGateway(g, "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("readyz = %d with one healthy replica, want 200", rec.Code)
	}

	// A draining replica (readyz 503, healthz 200) must also be routed
	// around — readiness, not liveness, is the routing signal.
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	g2 := newGateway(t, []string{ts.URL}, Config{})
	g2.Probe(ctx)
	if !g2.Healthy(0) {
		t.Fatal("probe downed a ready replica")
	}
	srv.SetDraining(true)
	g2.Probe(ctx)
	if g2.Healthy(0) {
		t.Error("probe kept a draining replica in the ring")
	}
}

// TestGatewaySolvePassthrough routes single solves by canonical key and
// relays the replica's response verbatim, including error documents.
func TestGatewaySolvePassthrough(t *testing.T) {
	urls, _ := startReplicas(t, 3, server.Config{})
	g := newGateway(t, urls, Config{})

	body := `{"instance": ` + fig1JSON(t) + `, "request": {"objective": "energy", "periodBound": 2}}`
	rec := postGateway(g, "/v1/solve", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var res jobspec.Result
	decode(t, rec, &res)
	if res.Value != 46 {
		t.Errorf("value = %g, want 46 (the Figure 1 answer)", res.Value)
	}

	// An infeasible request's 422 error document passes through untouched.
	infeasible := postGateway(g, "/v1/solve",
		`{"instance": `+fig1JSON(t)+`, "request": {"objective": "energy", "periodBound": 0.01}}`)
	if infeasible.Code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible solve: status %d, want 422: %s", infeasible.Code, infeasible.Body.String())
	}
	var e struct {
		Code string `json:"code"`
	}
	decode(t, infeasible, &e)
	if e.Code != jobspec.CodeInfeasible {
		t.Errorf("code = %q, want infeasible", e.Code)
	}

	// Repeats of the same key land on the same replica: its cache answers.
	postGateway(g, "/v1/solve", body)
	var st gatewayStatsJSON
	decode(t, getGateway(g, "/stats"), &st)
	if st.Merged.CacheHits == 0 {
		t.Error("repeated solve produced no cache hit anywhere; key routing is unstable")
	}
}
