// Package chaos is the deterministic fault-injection layer of the
// resilience stack: seeded generation of fault events (processor failure,
// DVFS mode drop, stage-weight drift, transient slowdown), application of
// an event to a pipeline.Instance with re-validation of the mutated
// instance, and replay of whole event schedules. Everything is a pure
// function of its inputs — Generate(seed, inst, n) returns a bit-identical
// Schedule on every call, and Apply never reads a clock or a global random
// source — so a production incident reduced to a (seed, index) pair replays
// exactly under test. The package is covered by the pipelint determinism
// analyzer.
//
// The re-solve half of the stack (new mapping after a fault, migration
// diff, replica promotion) lives in resolve.go.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/pipeline"
)

// Kind enumerates the fault classes the generator can draw. They mirror
// how real platforms churn: nodes die (ProcFail), thermal or power
// management withdraws the fastest DVFS state (ModeDrop), workload
// characteristics drift over time (WeightDrift), and co-located load
// transiently slows a node without removing it (Slowdown).
type Kind int

const (
	// ProcFail removes a processor and all its links. Inapplicable on a
	// single-processor platform (the mutated platform must stay valid).
	ProcFail Kind = iota
	// ModeDrop removes a processor's fastest DVFS mode. Inapplicable on a
	// uni-modal processor.
	ModeDrop
	// WeightDrift scales one stage's computation requirement by Factor.
	WeightDrift
	// Slowdown scales every mode of one processor by Factor in (0, 1].
	Slowdown
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ProcFail:
		return "proc-fail"
	case ModeDrop:
		return "mode-drop"
	case WeightDrift:
		return "weight-drift"
	case Slowdown:
		return "slowdown"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind is the inverse of String, shared by the /v1/resolve endpoint.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "proc-fail":
		return ProcFail, nil
	case "mode-drop":
		return ModeDrop, nil
	case "weight-drift":
		return WeightDrift, nil
	case "slowdown":
		return Slowdown, nil
	}
	return 0, fmt.Errorf("chaos: unknown event kind %q (want proc-fail | mode-drop | weight-drift | slowdown)", s)
}

// Event is one fault. Which fields are meaningful depends on Kind: Proc for
// ProcFail, ModeDrop and Slowdown; App, Stage and Factor for WeightDrift;
// Factor additionally for Slowdown. Indices refer to the instance the
// event is applied to — after a ProcFail, later events in the same schedule
// use the shrunken processor indexing.
type Event struct {
	Kind   Kind
	Proc   int
	App    int
	Stage  int
	Factor float64
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case ProcFail:
		return fmt.Sprintf("proc-fail(P%d)", e.Proc)
	case ModeDrop:
		return fmt.Sprintf("mode-drop(P%d)", e.Proc)
	case WeightDrift:
		return fmt.Sprintf("weight-drift(app %d stage %d x%.3f)", e.App, e.Stage, e.Factor)
	case Slowdown:
		return fmt.Sprintf("slowdown(P%d x%.3f)", e.Proc, e.Factor)
	}
	return fmt.Sprintf("event(%v)", e.Kind)
}

// Schedule is a replayable fault stream: the seed it was generated from
// and the events in injection order. Equal seeds over equal instances
// yield bit-identical schedules.
type Schedule struct {
	Seed   int64
	Events []Event
}

// ErrInapplicable reports an event that cannot be applied to the given
// instance — failing the last processor, dropping a mode of a uni-modal
// processor, or indices out of range. It is a classification, not a crash:
// injectors skip inapplicable events and report them.
var ErrInapplicable = errors.New("chaos: event not applicable to this instance")

// IsInapplicable reports whether err classifies as an inapplicable event
// (convenience for errors.Is(err, ErrInapplicable)).
func IsInapplicable(err error) bool { return errors.Is(err, ErrInapplicable) }

// Applied is the outcome of one event: the mutated (and re-validated)
// instance plus the processor index translation the mutation induced.
type Applied struct {
	// Event is the event that produced this state.
	Event Event
	// Inst is the mutated instance. It is a deep copy; the input instance
	// is never written.
	Inst pipeline.Instance
	// ProcMap[u] is the index, in the pre-event instance, of the
	// post-event processor u. It is the identity except after ProcFail,
	// which compacts the indices above the failed processor down by one.
	ProcMap []int
}

// OldProc translates a post-event processor index to the pre-event one.
func (a *Applied) OldProc(u int) int { return a.ProcMap[u] }

// Apply executes one fault event against inst and returns the mutated
// instance, re-validated. inst itself is never modified. Events that the
// instance cannot absorb return ErrInapplicable; a mutation that produces
// an instance failing pipeline validation (impossible by construction for
// the event kinds above, but checked anyway — "graceful degradation, never
// silent") is reported as a wrapped validation error.
func Apply(inst *pipeline.Instance, ev Event) (Applied, error) {
	out := Applied{Event: ev, Inst: inst.Clone()}
	p := out.Inst.Platform.NumProcessors()
	out.ProcMap = make([]int, 0, p)
	for u := 0; u < p; u++ {
		out.ProcMap = append(out.ProcMap, u)
	}
	switch ev.Kind {
	case ProcFail:
		if ev.Proc < 0 || ev.Proc >= p {
			return Applied{}, fmt.Errorf("%w: no processor %d to fail (platform has %d)", ErrInapplicable, ev.Proc, p)
		}
		if p == 1 {
			return Applied{}, fmt.Errorf("%w: cannot fail the last processor", ErrInapplicable)
		}
		removeProcessor(&out.Inst.Platform, ev.Proc)
		out.ProcMap = append(out.ProcMap[:ev.Proc], out.ProcMap[ev.Proc+1:]...)
	case ModeDrop:
		if ev.Proc < 0 || ev.Proc >= p {
			return Applied{}, fmt.Errorf("%w: no processor %d (platform has %d)", ErrInapplicable, ev.Proc, p)
		}
		proc := &out.Inst.Platform.Processors[ev.Proc]
		if proc.NumModes() < 2 {
			return Applied{}, fmt.Errorf("%w: processor %d is uni-modal, cannot drop its only mode", ErrInapplicable, ev.Proc)
		}
		// Speeds are sorted ascending; the withdrawn DVFS state is the
		// fastest one.
		proc.Speeds = proc.Speeds[:len(proc.Speeds)-1]
	case WeightDrift:
		if ev.App < 0 || ev.App >= len(out.Inst.Apps) {
			return Applied{}, fmt.Errorf("%w: no application %d", ErrInapplicable, ev.App)
		}
		app := &out.Inst.Apps[ev.App]
		if ev.Stage < 0 || ev.Stage >= app.NumStages() {
			return Applied{}, fmt.Errorf("%w: application %d has no stage %d", ErrInapplicable, ev.App, ev.Stage)
		}
		if ev.Factor <= 0 {
			return Applied{}, fmt.Errorf("%w: weight-drift factor %g must be positive", ErrInapplicable, ev.Factor)
		}
		app.Stages[ev.Stage].Work *= ev.Factor
	case Slowdown:
		if ev.Proc < 0 || ev.Proc >= p {
			return Applied{}, fmt.Errorf("%w: no processor %d (platform has %d)", ErrInapplicable, ev.Proc, p)
		}
		if ev.Factor <= 0 || ev.Factor > 1 {
			return Applied{}, fmt.Errorf("%w: slowdown factor %g must be in (0, 1]", ErrInapplicable, ev.Factor)
		}
		speeds := out.Inst.Platform.Processors[ev.Proc].Speeds
		for i := range speeds {
			speeds[i] *= ev.Factor
		}
	default:
		return Applied{}, fmt.Errorf("%w: unknown event kind %v", ErrInapplicable, ev.Kind)
	}
	if err := out.Inst.Validate(); err != nil {
		return Applied{}, fmt.Errorf("chaos: %v left the instance invalid: %w", ev, err)
	}
	return out, nil
}

// removeProcessor deletes processor u from the platform: its row and
// column of the interconnect and its column of every application's virtual
// in/out links.
func removeProcessor(pl *pipeline.Platform, u int) {
	pl.Processors = append(pl.Processors[:u], pl.Processors[u+1:]...)
	pl.Bandwidth = append(pl.Bandwidth[:u], pl.Bandwidth[u+1:]...)
	for i := range pl.Bandwidth {
		pl.Bandwidth[i] = append(pl.Bandwidth[i][:u], pl.Bandwidth[i][u+1:]...)
	}
	for a := range pl.InBandwidth {
		pl.InBandwidth[a] = append(pl.InBandwidth[a][:u], pl.InBandwidth[a][u+1:]...)
	}
	for a := range pl.OutBandwidth {
		pl.OutBandwidth[a] = append(pl.OutBandwidth[a][:u], pl.OutBandwidth[a][u+1:]...)
	}
}

// Inject replays a fault stream against inst: each event is applied to the
// previous event's output (inst itself is never modified) and every
// intermediate instance is re-validated by Apply. The returned slice holds
// one Applied per event, with each ProcMap rewritten to translate that
// step's processor indices all the way back to the ORIGINAL instance, so
// callers can diff any intermediate state against the pre-fault mapping.
// An inapplicable or invalid event aborts the replay with the steps that
// did apply.
func Inject(inst *pipeline.Instance, events []Event) ([]Applied, error) {
	steps := make([]Applied, 0, len(events))
	cur := inst
	var toOriginal []int
	for i, ev := range events {
		ap, err := Apply(cur, ev)
		if err != nil {
			return steps, fmt.Errorf("chaos: event %d (%v): %w", i, ev, err)
		}
		if toOriginal == nil {
			toOriginal = ap.ProcMap
		} else {
			composed := make([]int, len(ap.ProcMap))
			for u, mid := range ap.ProcMap {
				composed[u] = toOriginal[mid]
			}
			toOriginal = composed
		}
		ap.ProcMap = append([]int(nil), toOriginal...)
		steps = append(steps, ap)
		cur = &steps[len(steps)-1].Inst
	}
	return steps, nil
}

// Generate draws a schedule of n events from the seed, simulating the
// stream against a private clone of inst so every drawn event is
// applicable at its position (a processor failed by event i is never
// targeted by event i+1). The result is a pure function of (seed, inst,
// n): no clock, no global random state.
func Generate(seed int64, inst *pipeline.Instance, n int) (Schedule, error) {
	if err := inst.Validate(); err != nil {
		return Schedule{}, fmt.Errorf("chaos: generate: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	sched := Schedule{Seed: seed, Events: make([]Event, 0, n)}
	cur := inst.Clone()
	for i := 0; i < n; i++ {
		ev := draw(rng, &cur)
		ap, err := Apply(&cur, ev)
		if err != nil {
			// draw only proposes applicable events, so this is a bug in
			// the generator, not a property of the seed.
			return Schedule{}, fmt.Errorf("chaos: generated event %d unexpectedly rejected: %w", i, err)
		}
		sched.Events = append(sched.Events, ev)
		cur = ap.Inst
	}
	return sched, nil
}

// draw proposes one event applicable to cur. Destructive kinds are
// retried a few times if the platform cannot absorb them (last processor,
// uni-modal target); WeightDrift is always applicable, so the draw never
// starves.
func draw(rng *rand.Rand, cur *pipeline.Instance) Event {
	for attempt := 0; attempt < 8; attempt++ {
		p := cur.Platform.NumProcessors()
		switch Kind(rng.Intn(4)) {
		case ProcFail:
			if p < 2 {
				continue
			}
			return Event{Kind: ProcFail, Proc: rng.Intn(p)}
		case ModeDrop:
			u := rng.Intn(p)
			if cur.Platform.Processors[u].NumModes() < 2 {
				continue
			}
			return Event{Kind: ModeDrop, Proc: u}
		case WeightDrift:
			return driftEvent(rng, cur)
		case Slowdown:
			// Factor in [0.3, 0.9]: a real slowdown, never a full stop.
			return Event{Kind: Slowdown, Proc: rng.Intn(p), Factor: 0.3 + 0.6*rng.Float64()}
		}
	}
	return driftEvent(rng, cur)
}

// driftEvent scales a uniformly drawn stage's work by a factor in
// [0.5, 2.0].
func driftEvent(rng *rand.Rand, cur *pipeline.Instance) Event {
	a := rng.Intn(len(cur.Apps))
	return Event{
		Kind:   WeightDrift,
		App:    a,
		Stage:  rng.Intn(cur.Apps[a].NumStages()),
		Factor: 0.5 + 1.5*rng.Float64(),
	}
}
