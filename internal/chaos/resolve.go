// Failure re-solve: given a compiled plan and a fault event, compute the
// post-fault mapping, a structured migration diff against the pre-fault
// mapping, and (for replicated deployments) the promotion of surviving
// replicas. Both mappings are verified by replaying them through the
// discrete-event simulator before the result is returned — a re-solve that
// disagrees with the simulator is an error, never a silently wrong answer.

package chaos

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/repl"
	"repro/internal/sim"
)

// verifyTol is the simulator replay tolerance, matching the differential
// harness (internal/diffcheck).
const verifyTol = 1e-9

// MigrationDiff quantifies how much of a running deployment a re-solved
// mapping disturbs. All processor indices are in the PRE-fault instance's
// index space (post-fault processors are translated back through
// Applied.ProcMap), so the diff reads as operations on the deployment the
// operator actually has.
type MigrationDiff struct {
	// StagesTotal counts all stages of all applications; StagesMoved those
	// whose stage now runs on a different processor.
	StagesTotal, StagesMoved int
	// ModeChanges counts stages that stay on their processor but switch
	// DVFS mode (a reconfiguration, much cheaper than a migration).
	ModeChanges int
	// ProcsRetired lists processors used before but not after; a failed
	// processor always appears here if it carried load. ProcsEnrolled
	// lists processors newly brought into service. Both ascending.
	ProcsRetired, ProcsEnrolled []int
	// Disruption is the estimated migration cost: the total computation
	// weight (in the pre-fault instance) of the moved stages — a proxy for
	// the state that must be transferred between processors.
	Disruption float64
}

// String implements fmt.Stringer.
func (d MigrationDiff) String() string {
	return fmt.Sprintf("moved %d/%d stages, %d mode changes, retired %v, enrolled %v, disruption %.3g",
		d.StagesMoved, d.StagesTotal, d.ModeChanges, d.ProcsRetired, d.ProcsEnrolled, d.Disruption)
}

// ResolveResult is the full outcome of a failure re-solve.
type ResolveResult struct {
	// Event is the injected fault; Applied its mutated, re-validated
	// instance and processor translation.
	Event   Event
	Applied Applied
	// Before is the pre-fault solve on the plan's instance, After the
	// re-solve on the mutated instance. Both mappings have been replayed
	// through the simulator.
	Before, After core.Result
	// Diff is the migration from Before's mapping to After's.
	Diff MigrationDiff
}

// Resolve computes the post-fault mapping for the plan's problem: solve
// (or reuse from the plan's memo) the pre-fault query, apply the event,
// recompile, re-solve the same query, verify both mappings against the
// simulator, and diff them. Deterministic for a deterministic query: the
// same (plan, query, event) triple always yields bit-identical results.
func Resolve(pl *plan.Plan, q plan.Query, ev Event) (*ResolveResult, error) {
	return ResolveCtx(context.Background(), pl, q, ev)
}

// ResolveCtx is Resolve under a wall-clock budget: both the pre-fault
// solve and the re-solve run through plan.SolveCtx, so an expired deadline
// degrades them to the heuristic path (tagged Degraded/Preempted) instead
// of stalling the caller.
func ResolveCtx(ctx context.Context, pl *plan.Plan, q plan.Query, ev Event) (*ResolveResult, error) {
	before, err := pl.SolveCtx(ctx, q)
	if err != nil {
		return nil, fmt.Errorf("chaos: pre-fault solve: %w", err)
	}
	ap, err := Apply(pl.Instance(), ev)
	if err != nil {
		return nil, err
	}
	pl2, err := plan.Compile(&ap.Inst, pl.Rule(), pl.Model())
	if err != nil {
		return nil, fmt.Errorf("chaos: recompile after %v: %w", ev, err)
	}
	after, err := pl2.SolveCtx(ctx, q)
	if err != nil {
		return nil, fmt.Errorf("chaos: re-solve after %v: %w", ev, err)
	}
	if err := sim.Verify(pl.Instance(), &before.Mapping, pl.Model(), verifyTol); err != nil {
		return nil, fmt.Errorf("chaos: pre-fault mapping failed simulator replay: %w", err)
	}
	if err := sim.Verify(&ap.Inst, &after.Mapping, pl.Model(), verifyTol); err != nil {
		return nil, fmt.Errorf("chaos: post-fault mapping failed simulator replay: %w", err)
	}
	res := &ResolveResult{Event: ev, Applied: ap, Before: before, After: after}
	res.Diff = Diff(pl.Instance(), &before.Mapping, &after.Mapping, &res.Applied)
	return res, nil
}

// Diff computes the migration between a pre-fault mapping on orig and a
// post-fault mapping on ap.Inst, with every post-fault processor index
// translated back to orig's index space through ap.ProcMap.
func Diff(orig *pipeline.Instance, before, after *mapping.Mapping, ap *Applied) MigrationDiff {
	var d MigrationDiff
	origProcs := orig.Platform.NumProcessors()
	usedBefore := make([]bool, origProcs)
	usedAfter := make([]bool, origProcs)
	for a := range before.Apps {
		n := orig.Apps[a].NumStages()
		d.StagesTotal += n
		bProc, bMode := stagePlacement(before.Apps[a].Intervals, n)
		aProc, aMode := stagePlacement(after.Apps[a].Intervals, n)
		for k := 0; k < n; k++ {
			oldProc := bProc[k]
			newProc := ap.ProcMap[aProc[k]]
			usedBefore[oldProc] = true
			usedAfter[newProc] = true
			if newProc != oldProc {
				d.StagesMoved++
				d.Disruption += orig.Apps[a].Stages[k].Work
			} else if aMode[k] != bMode[k] {
				d.ModeChanges++
			}
		}
	}
	for u := 0; u < origProcs; u++ {
		switch {
		case usedBefore[u] && !usedAfter[u]:
			d.ProcsRetired = append(d.ProcsRetired, u)
		case usedAfter[u] && !usedBefore[u]:
			d.ProcsEnrolled = append(d.ProcsEnrolled, u)
		}
	}
	return d
}

// stagePlacement flattens an application's intervals into per-stage
// processor and mode arrays.
func stagePlacement(ivs []mapping.PlacedInterval, n int) (procs, modes []int) {
	procs = make([]int, n)
	modes = make([]int, n)
	for _, iv := range ivs {
		for k := iv.From; k <= iv.To; k++ {
			procs[k] = iv.Proc
			modes[k] = iv.Mode
		}
	}
	return procs, modes
}

// Promote rebuilds a replicated mapping (indices in orig's processor
// space) after a fault: replicas on a failed processor are dropped — their
// group's survivors are promoted to carry the full load — remaining
// replicas are reindexed into the post-event processor space, and modes
// beyond a shrunken DVFS ladder are clamped to the fastest remaining mode.
// dropped counts the replicas removed. The promoted mapping is validated
// against the mutated instance before being returned.
//
// Promote returns a wrapped ErrInapplicable when an interval loses its
// only replica: redundancy cannot absorb that fault and the caller must
// fall back to a full re-solve (Resolve).
func Promote(orig *pipeline.Instance, rm *repl.Mapping, ap *Applied) (repl.Mapping, int, error) {
	inv := make([]int, orig.Platform.NumProcessors())
	for i := range inv {
		inv[i] = -1
	}
	for u, o := range ap.ProcMap {
		inv[o] = u
	}
	dropped := 0
	out := repl.Mapping{Apps: make([]repl.AppMapping, len(rm.Apps))}
	for a := range rm.Apps {
		for _, iv := range rm.Apps[a].Intervals {
			niv := repl.Interval{From: iv.From, To: iv.To}
			for _, r := range iv.Replicas {
				if r.Proc < 0 || r.Proc >= len(inv) {
					return repl.Mapping{}, dropped, fmt.Errorf("chaos: promote: replica on unknown processor %d", r.Proc)
				}
				nu := inv[r.Proc]
				if nu < 0 {
					dropped++
					continue
				}
				if modes := ap.Inst.Platform.Processors[nu].NumModes(); r.Mode >= modes {
					r.Mode = modes - 1
				}
				niv.Replicas = append(niv.Replicas, repl.Replica{Proc: nu, Mode: r.Mode})
			}
			if len(niv.Replicas) == 0 {
				return repl.Mapping{}, dropped, fmt.Errorf("%w: app %d interval [%d,%d] lost every replica", ErrInapplicable, a, iv.From, iv.To)
			}
			out.Apps[a].Intervals = append(out.Apps[a].Intervals, niv)
		}
	}
	if err := out.Validate(&ap.Inst); err != nil {
		return repl.Mapping{}, dropped, fmt.Errorf("chaos: promoted mapping invalid: %w", err)
	}
	return out, dropped, nil
}
