package chaos

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/mapping"
	"repro/internal/repl"
	"repro/internal/sim"
)

// TestPropertyFaultSweep is the churn-robustness property over the full
// differential corpus: for every one of the 1080 generated scenarios
// (every class x model x rule x criterion combination, including the
// degenerate shapes), a seeded 3-event fault schedule is injected and
//
//   - every intermediate instance re-validates (Apply's contract);
//   - replica promotion (repl.Mapping.Validate + sim.VerifyReplicated on
//     the promoted mapping) either succeeds or fails with a classified
//     error — never a panic;
//   - replaying the same schedule is bit-identical (spot-checked by
//     TestScheduleDeterminism; here the sweep is about crash-freedom and
//     classification).
func TestPropertyFaultSweep(t *testing.T) {
	const scenarios = 1080
	const eventsPer = 3
	corpus := gen.DefaultSpace().Corpus(1, scenarios)
	var promoted, inapplicable, skippedBaseline int
	for i := range corpus {
		sc := &corpus[i]
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("panic: %v", r)
				}
			}()

			sched, gerr := Generate(sc.Seed+int64(sc.Index), &sc.Inst, eventsPer)
			if gerr != nil {
				return fmt.Errorf("generate: %w", gerr)
			}
			steps, ierr := Inject(&sc.Inst, sched.Events)
			if ierr != nil && !errors.Is(ierr, ErrInapplicable) {
				return fmt.Errorf("inject: %w", ierr)
			}
			for s := range steps {
				if verr := steps[s].Inst.Validate(); verr != nil {
					return fmt.Errorf("step %d (%v): mutated instance invalid: %w", s, steps[s].Event, verr)
				}
			}

			// Exercise the replication layer under the same faults: build
			// a whole-app baseline mapping (app a entirely on processor
			// a), lift it to a one-replica-per-interval replicated
			// mapping, and promote it through every fault step.
			if sc.Inst.Platform.NumProcessors() < len(sc.Inst.Apps) {
				skippedBaseline++ // proc-starved degenerate: no trivial baseline
				return nil
			}
			base := mapping.Mapping{Apps: make([]mapping.AppMapping, len(sc.Inst.Apps))}
			for a := range sc.Inst.Apps {
				base.Apps[a].Intervals = []mapping.PlacedInterval{{
					From: 0, To: sc.Inst.Apps[a].NumStages() - 1, Proc: a, Mode: 0,
				}}
			}
			if verr := base.Validate(&sc.Inst, mapping.Interval); verr != nil {
				return fmt.Errorf("baseline mapping invalid: %w", verr)
			}
			rm := repl.Lift(&base)
			for s := range steps {
				pm, _, perr := Promote(&sc.Inst, &rm, &steps[s])
				if perr != nil {
					if !errors.Is(perr, ErrInapplicable) {
						return fmt.Errorf("step %d (%v): unclassified promote error: %w", s, steps[s].Event, perr)
					}
					inapplicable++
					continue
				}
				if verr := pm.Validate(&steps[s].Inst); verr != nil {
					return fmt.Errorf("step %d (%v): promoted mapping invalid: %w", s, steps[s].Event, verr)
				}
				if verr := sim.VerifyReplicated(&steps[s].Inst, &pm, sc.Req.Model, 1e-9); verr != nil {
					return fmt.Errorf("step %d (%v): promoted mapping failed simulator replay: %w", s, steps[s].Event, verr)
				}
				promoted++
			}
			return nil
		}()
		if err != nil {
			t.Fatalf("scenario %d (%s): %v", sc.Index, sc.Name, err)
		}
	}
	// The sweep must be non-vacuous: most scenarios admit the baseline and
	// most promotions succeed.
	if promoted < scenarios {
		t.Fatalf("only %d successful promotions across %d scenarios — sweep is vacuous (inapplicable %d, skipped %d)",
			promoted, scenarios, inapplicable, skippedBaseline)
	}
	t.Logf("promotions %d, inapplicable %d, baseline-skipped %d", promoted, inapplicable, skippedBaseline)
}
