package chaos

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/plan"
)

// TestScheduleDeterminism pins the seeded-replay contract: the same seed
// over the same instance yields a bit-identical schedule, and replaying it
// yields bit-identical intermediate instances.
func TestScheduleDeterminism(t *testing.T) {
	mi := pipeline.MotivatingExample()
	inst := &mi
	s1, err := Generate(42, inst, 12)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(42, inst, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", s1, s2)
	}
	a1, err := Inject(inst, s1.Events)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Inject(inst, s2.Events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same events, different injected states")
	}
	s3, err := Generate(43, inst, 12)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1.Events, s3.Events) {
		t.Fatal("different seeds produced identical 12-event schedules")
	}
}

// TestApplyDoesNotMutateInput pins that Apply clones: the input instance
// is byte-identical before and after.
func TestApplyDoesNotMutateInput(t *testing.T) {
	mi := pipeline.MotivatingExample()
	inst := &mi
	want := inst.Clone()
	events := []Event{
		{Kind: ProcFail, Proc: 0},
		{Kind: ModeDrop, Proc: 1},
		{Kind: WeightDrift, App: 0, Stage: 0, Factor: 1.5},
		{Kind: Slowdown, Proc: 0, Factor: 0.5},
	}
	for _, ev := range events {
		if _, err := Apply(inst, ev); err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if !reflect.DeepEqual(*inst, want) {
			t.Fatalf("%v mutated the input instance", ev)
		}
	}
}

func TestApplySemantics(t *testing.T) {
	mi := pipeline.MotivatingExample()
	inst := &mi
	p := inst.Platform.NumProcessors()

	ap, err := Apply(inst, Event{Kind: ProcFail, Proc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ap.Inst.Platform.NumProcessors(); got != p-1 {
		t.Fatalf("proc-fail: %d processors left, want %d", got, p-1)
	}
	if len(ap.ProcMap) != p-1 {
		t.Fatalf("proc-fail: ProcMap has %d entries, want %d", len(ap.ProcMap), p-1)
	}
	for u, o := range ap.ProcMap {
		want := u
		if u >= 1 {
			want = u + 1
		}
		if o != want {
			t.Fatalf("ProcMap[%d] = %d, want %d", u, o, want)
		}
	}

	ap, err = Apply(inst, Event{Kind: ModeDrop, Proc: 0})
	if err != nil {
		t.Fatal(err)
	}
	before := inst.Platform.Processors[0]
	afterProc := ap.Inst.Platform.Processors[0]
	if afterProc.NumModes() != before.NumModes()-1 {
		t.Fatalf("mode-drop: %d modes, want %d", afterProc.NumModes(), before.NumModes()-1)
	}
	if afterProc.MaxSpeed() >= before.MaxSpeed() {
		t.Fatalf("mode-drop kept the fastest mode: %g >= %g", afterProc.MaxSpeed(), before.MaxSpeed())
	}

	ap, err = Apply(inst, Event{Kind: WeightDrift, App: 0, Stage: 1, Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ap.Inst.Apps[0].Stages[1].Work, 2*inst.Apps[0].Stages[1].Work; got != want {
		t.Fatalf("weight-drift: work %g, want %g", got, want)
	}

	ap, err = Apply(inst, Event{Kind: Slowdown, Proc: 2, Factor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ap.Inst.Platform.Processors[2].Speeds {
		if want := 0.5 * inst.Platform.Processors[2].Speeds[i]; s != want {
			t.Fatalf("slowdown: speed[%d] = %g, want %g", i, s, want)
		}
	}
}

func TestApplyInapplicable(t *testing.T) {
	mi := pipeline.MotivatingExample()
	inst := &mi
	cases := []Event{
		{Kind: ProcFail, Proc: 99},
		{Kind: ModeDrop, Proc: -1},
		{Kind: WeightDrift, App: 0, Stage: 99, Factor: 1.1},
		{Kind: WeightDrift, App: 0, Stage: 0, Factor: 0},
		{Kind: Slowdown, Proc: 0, Factor: 1.5},
		{Kind: Kind(99)},
	}
	for _, ev := range cases {
		if _, err := Apply(inst, ev); !IsInapplicable(err) {
			t.Fatalf("%v: got %v, want ErrInapplicable", ev, err)
		}
	}

	// Failing processors one by one: the last one must refuse.
	cur := inst.Clone()
	for cur.Platform.NumProcessors() > 1 {
		ap, err := Apply(&cur, Event{Kind: ProcFail, Proc: 0})
		if err != nil {
			t.Fatal(err)
		}
		cur = ap.Inst
	}
	if _, err := Apply(&cur, Event{Kind: ProcFail, Proc: 0}); !IsInapplicable(err) {
		t.Fatalf("failing the last processor: got %v, want ErrInapplicable", err)
	}
}

// TestResolveDeterminism pins the acceptance criterion: same seed →
// bit-identical fault schedule, re-solve sequence and migration diffs
// across two runs.
func TestResolveDeterminism(t *testing.T) {
	run := func() ([]Event, []core.Result, []MigrationDiff, string) {
		mi := pipeline.MotivatingExample()
		inst := &mi
		sched, err := Generate(7, inst, 4)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := plan.Compile(inst, mapping.Interval, pipeline.Overlap)
		if err != nil {
			t.Fatal(err)
		}
		q := plan.Query{Objective: core.Period}
		var results []core.Result
		var diffs []MigrationDiff
		for _, ev := range sched.Events {
			rr, err := Resolve(pl, q, ev)
			if errors.Is(err, core.ErrInfeasible) {
				// A seed may legitimately shrink the platform until the
				// problem is infeasible; the verdict (and its text) must
				// still replay identically.
				return sched.Events, results, diffs, err.Error()
			}
			if err != nil {
				t.Fatalf("%v: %v", ev, err)
			}
			results = append(results, rr.After)
			diffs = append(diffs, rr.Diff)
			pl, err = plan.Compile(&rr.Applied.Inst, pl.Rule(), pl.Model())
			if err != nil {
				t.Fatal(err)
			}
		}
		return sched.Events, results, diffs, ""
	}
	e1, r1, d1, x1 := run()
	e2, r2, d2, x2 := run()
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("fault schedules differ across runs")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("re-solve sequences differ across runs")
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("migration diffs differ across runs")
	}
	if x1 != x2 {
		t.Fatalf("terminal verdicts differ across runs: %q vs %q", x1, x2)
	}
	if len(r1) == 0 {
		t.Fatalf("seed produced no successful re-solves before %q; pick a seed that exercises the chain", x1)
	}
}

// TestResolveProcFail checks the diff bookkeeping on a concrete failure:
// the failed processor is retired and the diff is internally consistent.
func TestResolveProcFail(t *testing.T) {
	mi := pipeline.MotivatingExample()
	inst := &mi
	pl, err := plan.Compile(inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	q := plan.Query{Objective: core.Period}
	before, err := pl.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	// Fail a processor the baseline actually uses so the re-solve must
	// migrate its stages.
	failed := before.Mapping.Apps[0].Intervals[0].Proc
	rr, err := Resolve(pl, q, Event{Kind: ProcFail, Proc: failed})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range rr.Diff.ProcsRetired {
		if u == failed {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed processor %d not in retired set %v", failed, rr.Diff.ProcsRetired)
	}
	if rr.Diff.StagesMoved == 0 {
		t.Fatal("stages on the failed processor did not move")
	}
	if rr.Diff.Disruption <= 0 {
		t.Fatalf("moved stages but zero disruption: %+v", rr.Diff)
	}
	if rr.After.Value < rr.Before.Value {
		t.Fatalf("losing a processor improved the optimum: %g -> %g", rr.Before.Value, rr.After.Value)
	}
}
