package fmath

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestComparisons(t *testing.T) {
	cases := []struct {
		a, b                 float64
		eq, le, ge, ltS, gtS bool
	}{
		{1, 1, true, true, true, false, false},
		{1, 1 + 1e-12, true, true, true, false, false},
		{1, 2, false, true, false, true, false},
		{2, 1, false, false, true, false, true},
		{0, 0, true, true, true, false, false},
		{0, 1e-12, true, true, true, false, false},
		{1e9, 1e9 * (1 + 1e-12), true, true, true, false, false},
		{1e9, 2e9, false, true, false, true, false},
		{-1, 1, false, true, false, true, false},
	}
	for _, c := range cases {
		if EQ(c.a, c.b) != c.eq {
			t.Errorf("EQ(%g,%g) = %v, want %v", c.a, c.b, EQ(c.a, c.b), c.eq)
		}
		if LE(c.a, c.b) != c.le {
			t.Errorf("LE(%g,%g) = %v, want %v", c.a, c.b, LE(c.a, c.b), c.le)
		}
		if GE(c.a, c.b) != c.ge {
			t.Errorf("GE(%g,%g) = %v, want %v", c.a, c.b, GE(c.a, c.b), c.ge)
		}
		if LT(c.a, c.b) != c.ltS {
			t.Errorf("LT(%g,%g) = %v, want %v", c.a, c.b, LT(c.a, c.b), c.ltS)
		}
		if GT(c.a, c.b) != c.gtS {
			t.Errorf("GT(%g,%g) = %v, want %v", c.a, c.b, GT(c.a, c.b), c.gtS)
		}
	}
}

func TestComparisonProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		// Exactly one of LT, EQ, GT (trichotomy under tolerance).
		n := 0
		if LT(a, b) {
			n++
		}
		if EQ(a, b) {
			n++
		}
		if GT(a, b) {
			n++
		}
		if n != 1 {
			return false
		}
		// LE = LT or EQ; GE = GT or EQ.
		return LE(a, b) == (LT(a, b) || EQ(a, b)) && GE(a, b) == (GT(a, b) || EQ(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMax3(t *testing.T) {
	if Max3(1, 2, 3) != 3 || Max3(3, 2, 1) != 3 || Max3(1, 3, 2) != 3 {
		t.Error("Max3 broken")
	}
}

func TestSortedUnique(t *testing.T) {
	got := SortedUnique([]float64{3, 1, 2, 1, 3, 3})
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("SortedUnique = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedUnique = %v, want %v", got, want)
		}
	}
	if out := SortedUnique(nil); len(out) != 0 {
		t.Error("SortedUnique(nil) not empty")
	}
	// Near-duplicates within tolerance collapse.
	out := SortedUnique([]float64{1, 1 + 1e-13, 2})
	if len(out) != 2 {
		t.Errorf("near-duplicates kept: %v", out)
	}
}

func TestSortedUniqueRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(40)) // force duplicates
		}
		ref := append([]float64(nil), xs...)
		sort.Float64s(ref)
		got := SortedUnique(xs)
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("trial %d: not strictly increasing: %v", trial, got)
			}
		}
		// Every reference value appears.
		for _, v := range ref {
			found := false
			for _, g := range got {
				if EQ(g, v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: value %g missing from %v", trial, v, got)
			}
		}
	}
}

func TestSortedUniqueLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	got := SortedUnique(xs)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("large sort failed")
		}
	}
}

func TestInfinityComparisons(t *testing.T) {
	inf := math.Inf(1)
	if EQ(1, inf) || EQ(inf, 1) || EQ(inf, math.Inf(-1)) {
		t.Error("finite/infinite values compared equal")
	}
	if !EQ(inf, inf) {
		t.Error("equal infinities not equal")
	}
	if !LT(1, inf) || !GT(inf, 1) {
		t.Error("strict comparisons against infinity broken")
	}
}
