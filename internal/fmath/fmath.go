// Package fmath provides tolerant floating-point comparisons used across the
// solvers. All optimization algorithms in this repository binary-search over
// exact candidate value sets, so tolerances only have to absorb round-off
// noise, never modelling error.
package fmath

import "math"

// Eps is the relative tolerance used by the comparison helpers.
const Eps = 1e-9

// EQ reports whether a and b are equal within a relative tolerance of Eps
// (absolute near zero).
func EQ(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities (Inf <= Eps*Inf would lie)
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= Eps*scale
}

// LE reports whether a <= b within tolerance.
func LE(a, b float64) bool { return a < b || EQ(a, b) }

// GE reports whether a >= b within tolerance.
func GE(a, b float64) bool { return a > b || EQ(a, b) }

// LT reports whether a < b strictly, i.e. not within tolerance of equality.
func LT(a, b float64) bool { return a < b && !EQ(a, b) }

// GT reports whether a > b strictly, i.e. not within tolerance of equality.
func GT(a, b float64) bool { return a > b && !EQ(a, b) }

// Max3 returns the maximum of three values.
func Max3(a, b, c float64) float64 { return math.Max(a, math.Max(b, c)) }

// SortedUnique sorts xs ascending in place and removes values that are equal
// within tolerance, returning the deduplicated prefix. It is used to build
// candidate sets for the binary searches of Theorems 1, 12 and 15.
func SortedUnique(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	// Insertion-free: use sort via simple slice sort.
	quickSort(xs, 0, len(xs)-1)
	out := xs[:1]
	for _, x := range xs[1:] {
		if !EQ(out[len(out)-1], x) {
			out = append(out, x)
		}
	}
	return out
}

func quickSort(xs []float64, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j] < xs[j-1]; j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		// Median-of-three pivot.
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		// Recurse on the smaller half to bound stack depth.
		if j-lo < hi-i {
			quickSort(xs, lo, j)
			lo = i
		} else {
			quickSort(xs, i, hi)
			hi = j
		}
	}
}
