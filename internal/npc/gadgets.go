package npc

import (
	"math"

	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// EncodePeriodInterval builds the Theorem 5 scheduling instance from a
// 3-partition instance: m identical pipelines of B unit-work stages with no
// communication, and 3m uni-modal processors whose speeds are the items.
// The instance admits an interval mapping of global period <= 1 iff the
// items can be partitioned into m groups each summing to B (exactly the
// 3-partition question when the strict item window holds).
func EncodePeriodInterval(tp ThreePartition) pipeline.Instance {
	m := tp.M()
	apps := make([]pipeline.Application, m)
	for j := range apps {
		apps[j] = pipeline.NewUniformApplication("pipe", tp.B, 1)
	}
	sets := make([][]float64, len(tp.Items))
	for i, a := range tp.Items {
		sets[i] = []float64{float64(a)}
	}
	return pipeline.Instance{
		Apps:     apps,
		Platform: pipeline.NewCommHomogeneousPlatform(sets, 1, m),
		Energy:   pipeline.DefaultEnergy,
	}
}

// EncodePeriodIntervalWeighted is the Theorem 6 variant: per-application
// weights W_a with stage works 1/W_a, so the weighted period question is
// the same partition question.
func EncodePeriodIntervalWeighted(tp ThreePartition, weights []float64) pipeline.Instance {
	inst := EncodePeriodInterval(tp)
	for a := range inst.Apps {
		inst.Apps[a].Weight = weights[a]
		for k := range inst.Apps[a].Stages {
			inst.Apps[a].Stages[k].Work = 1 / weights[a]
		}
	}
	return inst
}

// DecodePeriodInterval extracts, from an interval mapping of period <= 1 on
// an EncodePeriodInterval instance, the induced partition: group j lists
// the item indices (processors) serving application j.
func DecodePeriodInterval(m *mapping.Mapping) [][]int {
	out := make([][]int, len(m.Apps))
	for a := range m.Apps {
		for _, iv := range m.Apps[a].Intervals {
			out[a] = append(out[a], iv.Proc)
		}
	}
	return out
}

// EncodeLatencyOneToOne builds the Theorem 9 instance: m identical
// pipelines of three unit-work stages without communication, and 3m
// uni-modal processors of speeds 1/a_j. A one-to-one mapping of global
// latency <= B exists iff the 3-partition instance is solvable (here group
// cardinalities are forced to 3 by the mapping rule itself).
func EncodeLatencyOneToOne(tp ThreePartition) pipeline.Instance {
	m := tp.M()
	apps := make([]pipeline.Application, m)
	for j := range apps {
		apps[j] = pipeline.NewUniformApplication("pipe", 3, 1)
	}
	sets := make([][]float64, len(tp.Items))
	for i, a := range tp.Items {
		sets[i] = []float64{1 / float64(a)}
	}
	return pipeline.Instance{
		Apps:     apps,
		Platform: pipeline.NewCommHomogeneousPlatform(sets, 1, m),
		Energy:   pipeline.DefaultEnergy,
	}
}

// TriCriteriaGadget is a Theorem 26/27 instance together with the decision
// thresholds: does a mapping exist with period <= PeriodBound, latency <=
// LatencyBound and energy <= EnergyBound?
type TriCriteriaGadget struct {
	Instance     pipeline.Instance
	PeriodBound  float64
	LatencyBound float64
	EnergyBound  float64
	// Rule is the mapping rule the gadget targets (one-to-one for
	// Theorem 26, interval for Theorem 27).
	Rule mapping.Rule
	// K and X are the construction parameters (see below).
	K, X float64
}

// EncodeTriCriteriaOneToOne builds the Theorem 26 gadget from a 2-partition
// instance, with alpha = 2. Stage i (1-based) has work K^{3i}; each of the
// n identical processors has the 2n modes
//
//	s_{2i-1} = K^i,   s_{2i} = K^i + a_i*X / K^i,
//
// so that choosing the faster mode of level i costs ~2*a_i*X extra energy
// and saves ~a_i*X latency. (The paper's printed speed perturbation
// a_i*X/K^{i*alpha} mismatches its own first-order expansions; the
// correction a_i*X/K^{i*(alpha-1)} restores Delta E ~ alpha*a_i*X and
// Delta L ~ a_i*X, which the proofs rely on. EXPERIMENTS.md documents this.)
//
// The thresholds encode "sum over the chosen fast levels = S/2":
//
//	E^o = E* + 2X(S/2 + 1/2),  L^o = L* - X(S/2 - 1/2),  T^o = L^o,
//
// with E* = L* = sum_i K^{2i}. The instance is a one-to-one tri-criteria
// decision problem on a fully homogeneous multi-modal platform with a
// single application and no communication, exactly the Theorem 26 setting.
//
// The iff-equivalence holds when the item sum S is even: the +-1/2
// integrality slack in the thresholds pins sum(I) to S/2 exactly. For odd S
// the 2-partition instance is trivially unsolvable and would not be fed to
// a reduction in the first place.
func EncodeTriCriteriaOneToOne(tp TwoPartition, k, x float64) TriCriteriaGadget {
	n := len(tp.Items)
	s := float64(tp.Sum())
	app := pipeline.Application{Name: "gadget", Weight: 1}
	var modes []float64
	var estar float64
	for i := 1; i <= n; i++ {
		ki := math.Pow(k, float64(i))
		app.Stages = append(app.Stages, pipeline.Stage{Work: ki * ki * ki})
		modes = append(modes, ki, ki+float64(tp.Items[i-1])*x/ki)
		estar += ki * ki
	}
	plat := pipeline.NewHomogeneousPlatform(n, modes, 1, 1)
	inst := pipeline.Instance{
		Apps:     []pipeline.Application{app},
		Platform: plat,
		Energy:   pipeline.DefaultEnergy, // alpha = 2
	}
	lo := estar - x*(s/2-0.5)
	return TriCriteriaGadget{
		Instance:     inst,
		PeriodBound:  lo,
		LatencyBound: lo,
		EnergyBound:  estar + 2*x*(s/2+0.5),
		Rule:         mapping.OneToOne,
		K:            k,
		X:            x,
	}
}

// DecodeTriCriteria reads the chosen subset off a feasible gadget mapping:
// item i is in I iff small stage i runs in the fast mode of its level (mode
// index 2i+1, 0-based). In the interval variant the odd-indexed "big"
// separator stages must sit on top-mode processors and are skipped. The
// boolean reports whether the mapping is a canonical witness (every small
// stage at a mode of its own level); the completeness proofs show feasible
// mappings are canonical once K is large enough.
func DecodeTriCriteria(g *TriCriteriaGadget, m *mapping.Mapping) ([]bool, bool) {
	nItems := levelCount(g)
	in := make([]bool, nItems)
	for _, iv := range m.Apps[0].Intervals {
		for st := iv.From; st <= iv.To; st++ {
			if g.Rule == mapping.Interval && st%2 == 1 {
				continue // big separator stage
			}
			level := stageLevel(g, st)
			switch iv.Mode {
			case 2 * level:
				// slow mode of the right level
			case 2*level + 1:
				in[level] = true
			default:
				return nil, false // wrong-level mode: not a canonical witness
			}
		}
	}
	return in, true
}

func levelCount(g *TriCriteriaGadget) int {
	n := len(g.Instance.Apps[0].Stages)
	if g.Rule == mapping.OneToOne {
		return n
	}
	return (n + 1) / 2
}

func stageLevel(g *TriCriteriaGadget, stage int) int {
	if g.Rule == mapping.OneToOne {
		return stage
	}
	// Interval gadget: stages alternate small, big, small, big, ...
	return stage / 2
}

// EncodeTriCriteriaInterval builds the Theorem 27 gadget: the Theorem 26
// chain with "big" separator stages of work K^{3(n+1)} inserted between
// consecutive small stages, 2n-1 processors, and an extra top mode K^{n+1}
// per processor that is the only way to execute a big stage within the
// period bound T^o = K^{2(n+1)}. Any feasible interval mapping must
// therefore isolate each big stage on its own top-mode processor, reducing
// the rest to the Theorem 26 argument.
func EncodeTriCriteriaInterval(tp TwoPartition, k, x float64) TriCriteriaGadget {
	n := len(tp.Items)
	s := float64(tp.Sum())
	kb := math.Pow(k, float64(n+1))
	big := kb * kb * kb
	app := pipeline.Application{Name: "gadget", Weight: 1}
	var modes []float64
	var estar float64
	for i := 1; i <= n; i++ {
		ki := math.Pow(k, float64(i))
		app.Stages = append(app.Stages, pipeline.Stage{Work: ki * ki * ki})
		if i < n {
			app.Stages = append(app.Stages, pipeline.Stage{Work: big})
		}
		modes = append(modes, ki, ki+float64(tp.Items[i-1])*x/ki)
		estar += ki * ki
	}
	modes = append(modes, kb)
	plat := pipeline.NewHomogeneousPlatform(2*n-1, modes, 1, 1)
	inst := pipeline.Instance{
		Apps:     []pipeline.Application{app},
		Platform: plat,
		Energy:   pipeline.DefaultEnergy,
	}
	bigCount := float64(n - 1)
	return TriCriteriaGadget{
		Instance:     inst,
		PeriodBound:  kb * kb,
		LatencyBound: bigCount*kb*kb + estar - x*(s/2-0.5),
		EnergyBound:  bigCount*kb*kb + estar + 2*x*(s/2+0.5),
		Rule:         mapping.Interval,
		K:            k,
		X:            x,
	}
}
