// Package npc implements the paper's NP-hardness reduction gadgets as
// executable encoders, together with exact solvers for the source
// combinatorial problems. The tests use them to verify, on small instances,
// the iff-equivalences claimed by the completeness proofs:
//
//   - Theorem 5/6/7: 3-partition <-> interval period minimization with
//     heterogeneous processors, homogeneous pipelines, no communication.
//   - Theorem 9/10/11: 3-partition <-> one-to-one latency minimization in
//     the same special-app setting.
//   - Theorem 26: 2-partition <-> the tri-criteria problem with multi-modal
//     processors on fully homogeneous platforms (one-to-one).
//   - Theorem 27: the interval variant of Theorem 26, with "big" separator
//     stages.
package npc

import (
	"fmt"
	"math/bits"
)

// ThreePartition is an instance of the 3-partition problem: 3m positive
// integers to be split into m triples, each summing to B.
type ThreePartition struct {
	B     int
	Items []int
}

// M returns the number of triples m.
func (tp ThreePartition) M() int { return len(tp.Items) / 3 }

// Validate checks the structural requirements: 3m items summing to m*B.
// The strict window B/4 < a_i < B/2 (which forces triples) is reported
// separately by Strict, because small hand-built test instances often live
// outside it.
func (tp ThreePartition) Validate() error {
	if len(tp.Items)%3 != 0 || len(tp.Items) == 0 {
		return fmt.Errorf("npc: 3-partition needs 3m items, have %d", len(tp.Items))
	}
	sum := 0
	for _, a := range tp.Items {
		if a <= 0 {
			return fmt.Errorf("npc: non-positive item %d", a)
		}
		sum += a
	}
	if sum != tp.M()*tp.B {
		return fmt.Errorf("npc: items sum to %d, want m*B = %d", sum, tp.M()*tp.B)
	}
	return nil
}

// Strict reports whether every item satisfies B/4 < a_i < B/2, the
// condition making 3-partition strongly NP-complete and forcing all groups
// to have exactly three elements.
func (tp ThreePartition) Strict() bool {
	for _, a := range tp.Items {
		if 4*a <= tp.B || 2*a >= tp.B {
			return false
		}
	}
	return true
}

// SolveTriples finds a partition of the items into m triples each summing
// to B, by exhaustive backtracking over triples (exponential; fine for the
// gadget sizes used in tests and benchmarks). It returns the triples as
// item-index lists.
func (tp ThreePartition) SolveTriples() ([][3]int, bool) {
	n := len(tp.Items)
	if n%3 != 0 {
		return nil, false
	}
	used := make([]bool, n)
	var out [][3]int
	var rec func(placed int) bool
	rec = func(placed int) bool {
		if placed == n {
			return true
		}
		// First unused item anchors the next triple (canonical order kills
		// symmetric duplicates).
		first := -1
		for i := 0; i < n; i++ {
			if !used[i] {
				first = i
				break
			}
		}
		used[first] = true
		for j := first + 1; j < n; j++ {
			if used[j] || tp.Items[first]+tp.Items[j] >= tp.B {
				continue
			}
			used[j] = true
			for k := j + 1; k < n; k++ {
				if used[k] || tp.Items[first]+tp.Items[j]+tp.Items[k] != tp.B {
					continue
				}
				used[k] = true
				out = append(out, [3]int{first, j, k})
				if rec(placed + 3) {
					return true
				}
				out = out[:len(out)-1]
				used[k] = false
			}
			used[j] = false
		}
		used[first] = false
		return false
	}
	if rec(0) {
		return out, true
	}
	return nil, false
}

// SolveGroups finds a partition of the items into m groups (any
// cardinality) each summing to B, via dynamic programming over subsets
// (items limited to 20). This is the combinatorial condition exactly
// equivalent to "period 1 achievable" in the Theorem 5 encoding when the
// strict window is not enforced; under the window it coincides with
// SolveTriples.
func (tp ThreePartition) SolveGroups() ([][]int, bool) {
	n := len(tp.Items)
	if n > 20 {
		return nil, false
	}
	full := 1<<n - 1
	// subsetSum[s] for all subsets.
	sums := make([]int, full+1)
	for s := 1; s <= full; s++ {
		i := bits.TrailingZeros(uint(s))
		sums[s] = sums[s&(s-1)] + tp.Items[i]
	}
	// reach[s]: prefix of items coverable by exact-B groups; choice[s]
	// records the last group.
	reach := make([]bool, full+1)
	choice := make([]int, full+1)
	reach[0] = true
	for s := 1; s <= full; s++ {
		// Force the lowest unused item into the current group to avoid
		// enumerating each group multiple times.
		low := bits.TrailingZeros(uint(s))
		lowBit := 1 << low
		for g := s; g > 0; g = (g - 1) & s {
			if g&lowBit == 0 || sums[g] != tp.B || !reach[s^g] {
				continue
			}
			reach[s] = true
			choice[s] = g
			break
		}
	}
	if !reach[full] {
		return nil, false
	}
	var out [][]int
	for s := full; s != 0; s ^= choice[s] {
		g := choice[s]
		var grp []int
		for i := 0; i < n; i++ {
			if g&(1<<i) != 0 {
				grp = append(grp, i)
			}
		}
		out = append(out, grp)
	}
	return out, true
}

// TwoPartition is an instance of the 2-partition problem: split the items
// into two subsets with equal sums.
type TwoPartition struct {
	Items []int
}

// Sum returns the total of all items.
func (tp TwoPartition) Sum() int {
	s := 0
	for _, a := range tp.Items {
		s += a
	}
	return s
}

// Solve finds a subset I with sum(I) = S/2 by subset-sum dynamic
// programming; it returns a membership mask (in[i] reports i in I).
func (tp TwoPartition) Solve() ([]bool, bool) {
	s := tp.Sum()
	if s%2 != 0 {
		return nil, false
	}
	half := s / 2
	// from[t] = index of the last item used to first reach sum t, -1 if
	// unreached, -2 for the empty sum.
	from := make([]int, half+1)
	for t := range from {
		from[t] = -1
	}
	from[0] = -2
	for i, a := range tp.Items {
		if a <= 0 {
			return nil, false
		}
		for t := half; t >= a; t-- {
			if from[t] == -1 && from[t-a] != -1 && from[t-a] != i {
				// from[t-a] != i is guaranteed by the downward sweep; kept
				// for clarity.
				from[t] = i
			}
		}
	}
	if from[half] == -1 {
		return nil, false
	}
	in := make([]bool, len(tp.Items))
	for t := half; t > 0; {
		i := from[t]
		in[i] = true
		t -= tp.Items[i]
	}
	return in, true
}
