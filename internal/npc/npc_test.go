package npc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/algo/exact"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

func TestThreePartitionSolvers(t *testing.T) {
	cases := []struct {
		tp       ThreePartition
		triples  bool
		groups   bool
		strictOK bool
	}{
		{ThreePartition{B: 10, Items: []int{3, 3, 4, 2, 4, 4}}, true, true, false},
		// {5,5} and {5,1,2,2} form groups of 10, but no triple partition.
		{ThreePartition{B: 10, Items: []int{5, 5, 5, 1, 2, 2}}, false, true, false},
		// No subset at all sums to 10 (3a+5b = 10 has no solution here).
		{ThreePartition{B: 10, Items: []int{3, 3, 3, 3, 3, 5}}, false, false, false},
		{ThreePartition{B: 12, Items: []int{4, 4, 4, 4, 4, 4}}, true, true, true},
		// Strict window, but 9 cannot join any triple summing to 20.
		{ThreePartition{B: 20, Items: []int{9, 6, 6, 6, 6, 7}}, false, false, true},
		{ThreePartition{B: 15, Items: []int{4, 5, 6, 4, 5, 6, 4, 5, 6}}, true, true, true},
	}
	for i, c := range cases {
		if err := c.tp.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := c.tp.Strict(); got != c.strictOK {
			t.Errorf("case %d: Strict() = %v, want %v", i, got, c.strictOK)
		}
		triples, ok := c.tp.SolveTriples()
		if ok != c.triples {
			t.Errorf("case %d: SolveTriples = %v, want %v", i, ok, c.triples)
		}
		if ok {
			for _, tr := range triples {
				if c.tp.Items[tr[0]]+c.tp.Items[tr[1]]+c.tp.Items[tr[2]] != c.tp.B {
					t.Errorf("case %d: triple %v does not sum to B", i, tr)
				}
			}
			if len(triples) != c.tp.M() {
				t.Errorf("case %d: %d triples, want %d", i, len(triples), c.tp.M())
			}
		}
		groups, ok := c.tp.SolveGroups()
		if ok != c.groups {
			t.Errorf("case %d: SolveGroups = %v, want %v", i, ok, c.groups)
		}
		if ok {
			seen := map[int]bool{}
			for _, g := range groups {
				sum := 0
				for _, idx := range g {
					if seen[idx] {
						t.Errorf("case %d: item %d reused", i, idx)
					}
					seen[idx] = true
					sum += c.tp.Items[idx]
				}
				if sum != c.tp.B {
					t.Errorf("case %d: group %v sums to %d", i, g, sum)
				}
			}
			if len(seen) != len(c.tp.Items) {
				t.Errorf("case %d: partition incomplete", i)
			}
		}
	}
	bad := ThreePartition{B: 5, Items: []int{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestTwoPartitionSolver(t *testing.T) {
	cases := []struct {
		items []int
		ok    bool
	}{
		{[]int{1, 2, 3}, true},      // {1,2} vs {3}
		{[]int{2, 3, 4, 5}, true},   // {2,5} vs {3,4}
		{[]int{1, 1, 1}, false},     // odd sum
		{[]int{1, 2, 4, 16}, false}, // no equal split
		{[]int{3, 1, 1, 2, 2, 1}, true},
	}
	for i, c := range cases {
		in, ok := TwoPartition{Items: c.items}.Solve()
		if ok != c.ok {
			t.Errorf("case %d: Solve = %v, want %v", i, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		sum, total := 0, 0
		for j, a := range c.items {
			total += a
			if in[j] {
				sum += a
			}
		}
		if 2*sum != total {
			t.Errorf("case %d: subset sums to %d of %d", i, sum, total)
		}
	}
}

// TestTheorem5Equivalence: the encoded scheduling instance has an interval
// mapping of period <= 1 iff the items admit an exact-B group partition.
func TestTheorem5Equivalence(t *testing.T) {
	cases := []ThreePartition{
		{B: 10, Items: []int{3, 3, 4, 2, 4, 4}}, // solvable
		{B: 10, Items: []int{5, 5, 5, 1, 2, 2}}, // unsolvable
		{B: 12, Items: []int{4, 4, 4, 4, 4, 4}}, // solvable, strict
		{B: 6, Items: []int{2, 2, 2, 1, 2, 3}},  // solvable
		{B: 6, Items: []int{5, 1, 3, 1, 1, 1}},  // {5,1},{3,1,1,1}: solvable
	}
	for i, tp := range cases {
		if err := tp.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		inst := EncodePeriodInterval(tp)
		sol, err := exact.MinPeriod(&inst, mapping.Interval, pipeline.Overlap)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		_, partitionable := tp.SolveGroups()
		periodOne := fmath.LE(sol.Value, 1)
		if periodOne != partitionable {
			t.Errorf("case %d: period<=1 is %v but partitionable is %v (period %g)", i, periodOne, partitionable, sol.Value)
		}
		if periodOne {
			groups := DecodePeriodInterval(&sol.Mapping)
			for _, g := range groups {
				sum := 0
				for _, idx := range g {
					sum += tp.Items[idx]
				}
				if sum < tp.B {
					t.Errorf("case %d: decoded group %v sums to %d < B", i, g, sum)
				}
			}
		}
	}
}

// TestTheorem6WeightedEquivalence: the weighted variant scales works by
// 1/W_a and asks for weighted period 1.
func TestTheorem6WeightedEquivalence(t *testing.T) {
	tp := ThreePartition{B: 10, Items: []int{3, 3, 4, 2, 4, 4}}
	inst := EncodePeriodIntervalWeighted(tp, []float64{2, 0.5})
	sol, err := exact.MinPeriod(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.LE(sol.Value, 1) {
		t.Errorf("weighted period = %g, want <= 1", sol.Value)
	}
	bad := ThreePartition{B: 10, Items: []int{3, 3, 3, 3, 3, 5}}
	inst = EncodePeriodIntervalWeighted(bad, []float64{2, 0.5})
	sol, err = exact.MinPeriod(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if fmath.LE(sol.Value, 1) {
		t.Errorf("unsolvable weighted instance achieved period %g <= 1", sol.Value)
	}
}

// TestTheorem9Equivalence: the latency encoding has a one-to-one mapping of
// latency <= B iff the strict triple partition exists.
func TestTheorem9Equivalence(t *testing.T) {
	cases := []ThreePartition{
		{B: 10, Items: []int{3, 3, 4, 2, 4, 4}}, // triple-solvable
		{B: 10, Items: []int{5, 5, 5, 1, 2, 2}}, // unsolvable
		{B: 15, Items: []int{4, 5, 6, 4, 5, 6}}, // solvable
	}
	for i, tp := range cases {
		inst := EncodeLatencyOneToOne(tp)
		sol, err := exact.MinLatency(&inst, mapping.OneToOne)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		_, triple := tp.SolveTriples()
		latB := fmath.LE(sol.Value, float64(tp.B))
		if latB != triple {
			t.Errorf("case %d: latency<=B is %v but triple-partitionable is %v (latency %g)", i, latB, triple, sol.Value)
		}
	}
}

// gadgetFeasible asks the exact solver whether the tri-criteria decision
// problem of the gadget has a solution.
func gadgetFeasible(t *testing.T, g *TriCriteriaGadget) (bool, exact.Solution) {
	t.Helper()
	sol, err := exact.MinEnergyGivenPeriodLatency(&g.Instance, g.Rule, pipeline.Overlap,
		[]float64{g.PeriodBound}, []float64{g.LatencyBound})
	if errors.Is(err, exact.ErrInfeasible) {
		return false, exact.Solution{}
	}
	if err != nil {
		t.Fatal(err)
	}
	return fmath.LE(sol.Value, g.EnergyBound), sol
}

// TestTheorem26Equivalence: the tri-criteria gadget is feasible iff the
// 2-partition instance is solvable.
func TestTheorem26Equivalence(t *testing.T) {
	// All sums even: the +-1/2 integrality slack in the thresholds forces
	// sum(I) = S/2 only when S is even, which is the only interesting case
	// for 2-partition (odd sums are trivially unsolvable before encoding).
	cases := []struct {
		items []int
		k, x  float64
	}{
		{[]int{1, 2, 3}, 8, 0.01},    // solvable
		{[]int{2, 3, 4, 5}, 6, 0.02}, // solvable
		{[]int{1, 1, 4}, 8, 0.01},    // even sum, unsolvable
		{[]int{1, 2, 4, 9}, 6, 0.02}, // even sum, unsolvable
	}
	for i, c := range cases {
		tp := TwoPartition{Items: c.items}
		g := EncodeTriCriteriaOneToOne(tp, c.k, c.x)
		if err := g.Instance.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		_, solvable := tp.Solve()
		feasible, sol := gadgetFeasible(t, &g)
		if feasible != solvable {
			t.Errorf("case %d: gadget feasible=%v but 2-partition solvable=%v", i, feasible, solvable)
			continue
		}
		if feasible {
			in, canonical := DecodeTriCriteria(&g, &sol.Mapping)
			if !canonical {
				t.Errorf("case %d: witness mapping not canonical", i)
				continue
			}
			sum, total := 0, 0
			for j, a := range c.items {
				total += a
				if in[j] {
					sum += a
				}
			}
			if 2*sum != total {
				t.Errorf("case %d: decoded subset sums to %d of %d", i, sum, total)
			}
		}
	}
}

// TestTheorem27Equivalence: the interval variant with big separator stages.
func TestTheorem27Equivalence(t *testing.T) {
	cases := []struct {
		items    []int
		k, x     float64
		solvable bool
	}{
		{[]int{1, 3}, 4, 0.02, false},
		{[]int{2, 2}, 4, 0.02, true},
		{[]int{1, 2, 3}, 4, 0.05, true},
		{[]int{1, 1, 4}, 4, 0.05, false},
	}
	for i, c := range cases {
		tp := TwoPartition{Items: c.items}
		if _, s := tp.Solve(); s != c.solvable {
			t.Fatalf("case %d: bad fixture", i)
		}
		g := EncodeTriCriteriaInterval(tp, c.k, c.x)
		feasible, sol := gadgetFeasible(t, &g)
		if feasible != c.solvable {
			t.Errorf("case %d: gadget feasible=%v but 2-partition solvable=%v", i, feasible, c.solvable)
			continue
		}
		if feasible {
			// Big stages must be isolated on top-mode processors.
			top := g.Instance.Platform.Processors[0].NumModes() - 1
			for _, iv := range sol.Mapping.Apps[0].Intervals {
				for st := iv.From; st <= iv.To; st++ {
					if st%2 == 1 && iv.Mode != top {
						t.Errorf("case %d: big stage %d not on top mode", i, st)
					}
				}
			}
		}
	}
}

// TestGadgetScaling: the exact solver's work on Theorem 5 gadgets grows
// super-polynomially with m, while the group-partition DP handles them;
// this is the empirical complexity-cliff check, kept tiny here (the bench
// exercises larger sizes).
func TestGadgetSearchSpaceGrowth(t *testing.T) {
	count := func(m int) int64 {
		items := make([]int, 3*m)
		rng := rand.New(rand.NewSource(int64(m)))
		b := 12
		for j := 0; j < m; j++ {
			x := 4 + rng.Intn(2) // 4 or 5
			items[3*j], items[3*j+1], items[3*j+2] = x, 4, b-4-x
		}
		tp := ThreePartition{B: b, Items: items}
		if err := tp.Validate(); err != nil {
			t.Fatal(err)
		}
		inst := EncodePeriodInterval(tp)
		n, err := exact.CountMappings(&inst, exact.Options{Rule: mapping.Interval, Modes: exact.FastestOnly, Limit: 500_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	c1, c2 := count(1), count(2)
	if c2 < 100*c1 {
		t.Errorf("search space did not explode: m=1 -> %d, m=2 -> %d", c1, c2)
	}
}

// brute2Partition enumerates all subsets.
func brute2Partition(items []int) bool {
	total := 0
	for _, a := range items {
		total += a
	}
	if total%2 != 0 {
		return false
	}
	for mask := 0; mask < 1<<len(items); mask++ {
		sum := 0
		for i, a := range items {
			if mask&(1<<i) != 0 {
				sum += a
			}
		}
		if 2*sum == total {
			return true
		}
	}
	return false
}

// TestTwoPartitionSolverQuick: the DP agrees with subset enumeration on
// random small instances.
func TestTwoPartitionSolverQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		items := make([]int, n)
		for i := range items {
			items[i] = 1 + rng.Intn(20)
		}
		want := brute2Partition(items)
		_, got := TwoPartition{Items: items}.Solve()
		if got != want {
			t.Fatalf("trial %d: Solve=%v brute=%v on %v", trial, got, want, items)
		}
	}
}

// TestSolveGroupsMatchesTriplesOnStrictInstances: under the strict item
// window, any exact-B group has exactly three elements, so the two solvers
// must agree.
func TestSolveGroupsMatchesTriplesOnStrictInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	for trial := 0; trial < 100; trial++ {
		// Build strict instances: B = 20, items in (5,10) = {6,...,9}.
		m := 1 + rng.Intn(2)
		items := make([]int, 0, 3*m)
		b := 20
		ok := true
		for j := 0; j < m; j++ {
			x := 6 + rng.Intn(3) // 6..8
			y := 6 + rng.Intn(3)
			z := b - x - y
			if z <= b/4 || 2*z >= b {
				ok = false
				break
			}
			items = append(items, x, y, z)
		}
		if !ok {
			continue
		}
		// Shuffle to hide the construction.
		rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
		tp := ThreePartition{B: b, Items: items}
		if err := tp.Validate(); err != nil {
			t.Fatal(err)
		}
		if !tp.Strict() {
			t.Fatal("constructed instance not strict")
		}
		_, triples := tp.SolveTriples()
		_, groups := tp.SolveGroups()
		if triples != groups {
			t.Fatalf("trial %d: strict instance disagreement: triples=%v groups=%v on %v", trial, triples, groups, items)
		}
		if !triples {
			t.Fatalf("trial %d: constructed solvable instance reported unsolvable", trial)
		}
	}
}
