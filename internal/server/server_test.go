package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

func fig1JSON(t *testing.T) string {
	t.Helper()
	inst := pipeline.MotivatingExample()
	var buf bytes.Buffer
	if err := pipeline.EncodeJSON(&buf, &inst); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// post runs one request through the full handler stack (middleware
// included) and returns the recorder.
func post(s *Server, path, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(body)))
	return rec
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder, dst any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), dst); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, rec.Body.String())
	}
}

// TestSolveBitIdentical checks /v1/solve returns exactly what a direct
// core.Solve call computes: value, provenance, metrics and mapping.
func TestSolveBitIdentical(t *testing.T) {
	s := New(Config{})
	inst := pipeline.MotivatingExample()
	want, err := core.Solve(&inst, core.Request{
		Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Energy,
		PeriodBounds: core.UniformBounds(&inst, 2),
	})
	if err != nil {
		t.Fatal(err)
	}

	rec := post(s, "/v1/solve", `{"instance": `+fig1JSON(t)+`,
		"request": {"objective": "energy", "periodBound": 2}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Value   float64         `json:"value"`
		Method  string          `json:"method"`
		Optimal bool            `json:"optimal"`
		Period  float64         `json:"period"`
		Latency float64         `json:"latency"`
		Energy  float64         `json:"energy"`
		Mapping json.RawMessage `json:"mapping"`
	}
	decode(t, rec, &resp)
	if resp.Value != want.Value || resp.Method != string(want.Method) || resp.Optimal != want.Optimal {
		t.Errorf("solve = (%g, %q, %v), want (%g, %q, %v)",
			resp.Value, resp.Method, resp.Optimal, want.Value, want.Method, want.Optimal)
	}
	if resp.Period != want.Metrics.Period || resp.Energy != want.Metrics.Energy {
		t.Errorf("metrics = (%g, %g), want (%g, %g)", resp.Period, resp.Energy, want.Metrics.Period, want.Metrics.Energy)
	}
	m, err := mapping.DecodeJSON(bytes.NewReader(resp.Mapping))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, want.Mapping) {
		t.Errorf("mapping differs:\ngot  %+v\nwant %+v", m, want.Mapping)
	}
}

// TestBatchMatchesEngine checks /v1/batch mirrors batch.Solve output,
// including per-job errors and cache hits across requests (the server
// cache outlives a request).
func TestBatchMatchesEngine(t *testing.T) {
	s := New(Config{})
	body := `{"instance": ` + fig1JSON(t) + `, "jobs": [
		{"request": {"objective": "period"}},
		{"request": {"objective": "energy", "periodBound": 2}},
		{"request": {"objective": "energy"}},
		{"request": {"objective": "period"}}
	]}`
	rec := post(s, "/v1/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []map[string]any `json:"results"`
		Stats   struct {
			Jobs      int `json:"jobs"`
			CacheHits int `json:"cacheHits"`
			Errors    int `json:"errors"`
		} `json:"stats"`
	}
	decode(t, rec, &out)
	if out.Stats.Jobs != 4 || out.Stats.Errors != 1 {
		t.Fatalf("stats = %+v", out.Stats)
	}
	if v := out.Results[0]["value"].(float64); v != 1 {
		t.Errorf("job 0 value = %g, want 1", v)
	}
	if v := out.Results[1]["value"].(float64); v != 46 {
		t.Errorf("job 1 value = %g, want 46", v)
	}
	if _, ok := out.Results[2]["error"]; !ok {
		t.Error("unsupported job carries no error")
	}
	if out.Stats.CacheHits < 1 {
		t.Errorf("cacheHits = %d, want >= 1 (job 3 duplicates job 0)", out.Stats.CacheHits)
	}

	// A second identical request is answered entirely from the shared
	// server cache — deterministic failures (the unsupported job) are
	// memoized too.
	rec = post(s, "/v1/batch", body)
	decode(t, rec, &out)
	if out.Stats.CacheHits != 4 {
		t.Errorf("second request cacheHits = %d, want 4 (every job)", out.Stats.CacheHits)
	}
}

// TestConcurrentSolveAndBatch hammers the two solving endpoints from many
// goroutines (run with -race): all responses must be correct and the
// bounded shared cache must respect its cap throughout.
func TestConcurrentSolveAndBatch(t *testing.T) {
	const cacheCap = 24
	s := New(Config{CacheCap: cacheCap})
	inst := fig1JSON(t)

	stop := make(chan struct{})
	var probe sync.WaitGroup
	probe.Add(1)
	go func() {
		defer probe.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if n := s.Cache().Len(); n > cacheCap {
					t.Errorf("cache holds %d entries, cap %d", n, cacheCap)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 12; n++ {
				bound := 2 + (g*12+n)%40 // mixed workload: 40 distinct keys + repeats
				rec := post(s, "/v1/solve", fmt.Sprintf(`{"instance": %s,
					"request": {"objective": "energy", "periodBound": %d}}`, inst, bound))
				if rec.Code != http.StatusOK {
					t.Errorf("solve bound=%d: status %d: %s", bound, rec.Code, rec.Body.String())
					continue
				}
				var resp struct {
					Value float64 `json:"value"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Value <= 0 {
					t.Errorf("solve bound=%d: bad body %s", bound, rec.Body.String())
				}
				if n%4 == 0 {
					rec := post(s, "/v1/batch", fmt.Sprintf(`{"instance": %s, "jobs": [
						{"request": {"objective": "period"}},
						{"request": {"objective": "energy", "periodBound": %d}}]}`, inst, bound))
					if rec.Code != http.StatusOK {
						t.Errorf("batch: status %d", rec.Code)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	probe.Wait()

	if n := s.Cache().Len(); n > cacheCap {
		t.Fatalf("final cache size %d exceeds cap %d", n, cacheCap)
	}
	if ev := s.Cache().Stats().Evictions; ev == 0 {
		t.Error("no evictions despite 40+ distinct keys against a cap of 24")
	}
}

// TestPanicRecovery registers a panicking route behind the full middleware
// stack: the response must be a 500, the process must survive, and the
// shared cache must keep answering afterwards.
func TestPanicRecovery(t *testing.T) {
	s := New(Config{})
	s.mux.HandleFunc("POST /v1/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	rec := post(s, "/v1/panic", `{}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic status = %d, want 500", rec.Code)
	}
	var e struct {
		Error string `json:"error"`
	}
	decode(t, rec, &e)
	if !strings.Contains(e.Error, "handler exploded") {
		t.Errorf("panic error = %q", e.Error)
	}
	// The server (and its cache) keeps working.
	rec = post(s, "/v1/solve", `{"instance": `+fig1JSON(t)+`, "request": {"objective": "period"}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-panic solve status = %d", rec.Code)
	}
	if got := s.inFlight.Load(); got != 0 {
		t.Errorf("inFlight = %d after panic, want 0", got)
	}
}

// TestRequestTimeout checks an expired per-request budget cancels queued
// solver work and reports 504.
func TestRequestTimeout(t *testing.T) {
	s := New(Config{Timeout: time.Nanosecond})
	rec := post(s, "/v1/solve", `{"instance": `+fig1JSON(t)+`, "request": {"objective": "period"}}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	var e struct {
		Error string `json:"error"`
	}
	decode(t, rec, &e)
	if !strings.Contains(e.Error, "deadline") {
		t.Errorf("timeout error = %q", e.Error)
	}

	// Batch: the aborted request reports 504 too.
	rec = post(s, "/v1/batch", `{"instance": `+fig1JSON(t)+`, "jobs": [{"request": {"objective": "period"}}]}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("batch status = %d, want 504", rec.Code)
	}
}

// TestParetoEndpoint checks the frontier document and the degenerate
// queries: an unattainable period target answers null, not an encoding
// error (+Inf has no JSON form).
func TestParetoEndpoint(t *testing.T) {
	s := New(Config{})
	rec := post(s, "/v1/pareto", `{"instance": `+fig1JSON(t)+`,
		"rule": "interval", "periodTarget": 2, "energyBudget": 10}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Points []struct {
			Period  float64          `json:"period"`
			Energy  float64          `json:"energy"`
			Mapping *json.RawMessage `json:"mapping"`
		} `json:"points"`
		MinEnergyUnderPeriod *float64 `json:"minEnergyUnderPeriod"`
		MinPeriodUnderEnergy *float64 `json:"minPeriodUnderEnergy"`
	}
	decode(t, rec, &resp)
	if len(resp.Points) == 0 {
		t.Fatal("empty frontier for the motivating example")
	}
	if resp.Points[0].Mapping != nil {
		t.Error("mappings included without includeMappings")
	}
	if resp.MinEnergyUnderPeriod == nil || *resp.MinEnergyUnderPeriod != 46 {
		t.Errorf("minEnergyUnderPeriod = %v, want 46", resp.MinEnergyUnderPeriod)
	}
	if resp.MinPeriodUnderEnergy == nil || *resp.MinPeriodUnderEnergy != 6 {
		t.Errorf("minPeriodUnderEnergy = %v, want 6", resp.MinPeriodUnderEnergy)
	}

	// Degenerate: period target below anything achievable -> null answer.
	rec = post(s, "/v1/pareto", `{"instance": `+fig1JSON(t)+`, "periodTarget": 0.0001}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("degenerate status %d: %s", rec.Code, rec.Body.String())
	}
	var raw map[string]json.RawMessage
	decode(t, rec, &raw)
	if string(raw["minEnergyUnderPeriod"]) != "null" {
		t.Errorf("unattainable target rendered %s, want null", raw["minEnergyUnderPeriod"])
	}

	// includeMappings attaches witnesses.
	rec = post(s, "/v1/pareto", `{"instance": `+fig1JSON(t)+`, "includeMappings": true}`)
	decode(t, rec, &resp)
	if len(resp.Points) == 0 || resp.Points[0].Mapping == nil {
		t.Error("includeMappings did not attach mappings")
	}
}

// TestSimulateEndpoint solves for a mapping, then replays it through
// /v1/simulate: measured must equal analytic on the motivating example.
func TestSimulateEndpoint(t *testing.T) {
	s := New(Config{})
	inst := pipeline.MotivatingExample()
	res, err := core.Solve(&inst, core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period})
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if err := mapping.EncodeJSON(&mbuf, &res.Mapping); err != nil {
		t.Fatal(err)
	}
	rec := post(s, "/v1/simulate", `{"instance": `+fig1JSON(t)+`, "mapping": `+mbuf.String()+`}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Results []struct {
			App             string  `json:"app"`
			MeasuredPeriod  float64 `json:"measuredPeriod"`
			AnalyticPeriod  float64 `json:"analyticPeriod"`
			MeasuredLatency float64 `json:"measuredLatency"`
			AnalyticLatency float64 `json:"analyticLatency"`
		} `json:"results"`
	}
	decode(t, rec, &resp)
	if len(resp.Results) != len(inst.Apps) {
		t.Fatalf("%d results for %d apps", len(resp.Results), len(inst.Apps))
	}
	for _, r := range resp.Results {
		if diff := r.MeasuredPeriod - r.AnalyticPeriod; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: measured period %g != analytic %g", r.App, r.MeasuredPeriod, r.AnalyticPeriod)
		}
		if diff := r.MeasuredLatency - r.AnalyticLatency; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: measured latency %g != analytic %g", r.App, r.MeasuredLatency, r.AnalyticLatency)
		}
	}
}

// TestHealthzAndStats covers the operational endpoints.
func TestHealthzAndStats(t *testing.T) {
	s := New(Config{CacheCap: 128})
	if rec := get(s, "/healthz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	post(s, "/v1/solve", `{"instance": `+fig1JSON(t)+`, "request": {"objective": "period"}}`)
	post(s, "/v1/solve", `{"instance": `+fig1JSON(t)+`, "request": {"objective": "period"}}`)

	rec := get(s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var resp struct {
		InFlight int64            `json:"inFlight"`
		Requests map[string]int64 `json:"requests"`
		Methods  map[string]int64 `json:"methods"`
		Cache    struct {
			Entries   int     `json:"entries"`
			Cap       int     `json:"cap"`
			Hits      int64   `json:"hits"`
			Misses    int64   `json:"misses"`
			Evictions int64   `json:"evictions"`
			HitRate   float64 `json:"hitRate"`

			PlanEntries   int     `json:"planEntries"`
			PlanHits      int64   `json:"planHits"`
			PlanMisses    int64   `json:"planMisses"`
			PlanEvictions int64   `json:"planEvictions"`
			PlanHitRate   float64 `json:"planHitRate"`
		} `json:"cache"`
	}
	decode(t, rec, &resp)
	if resp.Requests["/v1/solve"] != 2 {
		t.Errorf("solve count = %d, want 2", resp.Requests["/v1/solve"])
	}
	if resp.Cache.Cap != 128 || resp.Cache.Entries == 0 {
		t.Errorf("cache block = %+v", resp.Cache)
	}
	if resp.Cache.Hits < 1 {
		t.Errorf("cache hits = %d, want >= 1 (duplicate solve)", resp.Cache.Hits)
	}
	if resp.Cache.HitRate <= 0 || resp.Cache.HitRate >= 1 {
		t.Errorf("hitRate = %g", resp.Cache.HitRate)
	}
	// The first solve compiled the instance's plan (a plan-tier miss); the
	// duplicate was answered by the result tier without consulting it.
	if resp.Cache.PlanEntries != 1 || resp.Cache.PlanMisses != 1 {
		t.Errorf("plan tier block = %+v, want 1 entry from 1 miss", resp.Cache)
	}
	if len(resp.Methods) == 0 {
		t.Error("no per-method counts")
	}
	// InFlight counts only concurrent requests; this sequential one
	// finished before we decoded it, and /stats itself was in flight when
	// it sampled the gauge.
	if resp.InFlight != 1 {
		t.Errorf("inFlight = %d, want 1 (the /stats request itself)", resp.InFlight)
	}
}

// TestUnmatchedPathsShareOneCounter keeps the per-route counter map
// bounded: arbitrary probed paths must not each earn a map entry.
func TestUnmatchedPathsShareOneCounter(t *testing.T) {
	s := New(Config{})
	for _, p := range []string{"/admin", "/.env", "/nope/deeper"} {
		if rec := get(s, p); rec.Code != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", p, rec.Code)
		}
	}
	var resp struct {
		Requests map[string]int64 `json:"requests"`
	}
	decode(t, get(s, "/stats"), &resp)
	if resp.Requests["unmatched"] != 3 {
		t.Errorf("unmatched = %d, want 3 (map: %v)", resp.Requests["unmatched"], resp.Requests)
	}
	for k := range resp.Requests {
		if strings.HasPrefix(k, "/admin") || strings.HasPrefix(k, "/.env") || strings.HasPrefix(k, "/nope") {
			t.Errorf("probed path %q earned its own counter entry", k)
		}
	}
}

// TestBadRequests covers the 4xx surface.
func TestBadRequests(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/solve", `not json`, http.StatusBadRequest},
		{"/v1/solve", `{"request": {"objective": "period"}}`, http.StatusBadRequest}, // no instance
		{"/v1/solve", `{"instance": ` + fig1JSON(t) + `, "request": {"rule": "bogus"}}`, http.StatusBadRequest},
		{"/v1/batch", `{"jobs": []}`, http.StatusBadRequest},
		{"/v1/pareto", `{"rule": "interval"}`, http.StatusBadRequest},                // no instance
		{"/v1/simulate", `{"instance": ` + fig1JSON(t) + `}`, http.StatusBadRequest}, // no mapping
		// Infeasible bounds are a well-formed query with an unsatisfiable
		// answer: 422.
		{"/v1/solve", `{"instance": ` + fig1JSON(t) + `, "request": {"objective": "energy", "periodBound": 0.01}}`, http.StatusUnprocessableEntity},
		// Energy without a period bound is the paper's unsupported combination.
		{"/v1/solve", `{"instance": ` + fig1JSON(t) + `, "request": {"objective": "energy"}}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		rec := post(s, c.path, c.body)
		if rec.Code != c.want {
			t.Errorf("POST %s %.40q: status %d, want %d (%s)", c.path, c.body, rec.Code, c.want, rec.Body.String())
		}
	}
	// Method mismatch: GET on a POST route.
	if rec := get(s, "/v1/solve"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve status = %d, want 405", rec.Code)
	}
}
