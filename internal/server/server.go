// Package server exposes the solver as a long-running HTTP JSON service —
// the first step of the roadmap's production-scale goal. It wraps the
// concurrent batch engine (internal/batch) behind REST-ish endpoints:
//
//	POST /v1/solve     one request        -> one result
//	POST /v1/batch     pipebatch job file -> per-job results + batch stats
//	POST /v1/pareto    instance + rule    -> period/energy frontier + queries
//	POST /v1/simulate  instance + mapping -> measured vs analytic metrics
//	POST /v1/resolve   instance + request + fault event -> re-solve + diff
//	GET  /healthz      liveness probe (always up while the process lives)
//	GET  /readyz       readiness probe (503 while draining for shutdown)
//	GET  /stats        cache size/hit rate, per-method counts, in-flight
//
// All document schemas are shared with the CLI front ends via
// internal/jobspec, so a job file written for `pipebatch -in` can be
// POSTed verbatim to /v1/batch.
//
// The server is built for a process that stays up: every request runs
// under a per-request timeout enforced through context cancellation (the
// batch engine stops picking up jobs once the context is done), request
// bodies are capped (http.MaxBytesReader, configurable, structured 413 on
// overflow), the memo cache is bounded (sharded LRU, configurable entry
// cap) so it can be shared across all requests for the life of the
// process, and a panic in a handler or inside a memoized computation is
// recovered into an error response without wedging concurrent waiters on
// the same cache key. Every error path answers a structured JSON document
// {"error": "...", "code": "..."} — never an empty body (see
// TestPropertyErrorResponses); codes are the stable machine-readable
// vocabulary of internal/jobspec (infeasible, timeout, degraded, shed,
// invalid, internal).
//
// On top of the per-request defenses sits a resilience layer for overload
// and churn (see resilience.go): solver endpoints pass admission control
// (a bounded concurrency gate plus a bounded wait queue; beyond both the
// request is shed with a structured 429 and a Retry-After header), a
// per-endpoint circuit breaker trips after consecutive deadline overruns
// (504s) and answers 503 + Retry-After until a cooldown passes, and a
// positive Config.SolveBudget arms the batch engine's degraded mode so a
// slow exact solve answers from the reduced-effort path (tagged
// "degraded") instead of timing out.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/jobspec"
	"repro/internal/mapping"
	"repro/internal/pareto"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds the solver worker pool per request; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// CacheCap bounds the shared memoization cache (number of entries);
	// <= 0 means unbounded. A long-running deployment should set a cap.
	CacheCap int
	// CachePolicy selects the bounded cache's replacement policy. The zero
	// value is batch.PolicyAdaptive (set-dueling between LRU and cost-aware
	// eviction); batch.PolicyLRU and batch.PolicyCost pin one policy, which
	// the load experiment uses to duel the policies against each other.
	CachePolicy batch.Policy
	// Timeout is the per-request wall-clock budget; 0 disables it. When it
	// expires the request's context is cancelled: queued solver jobs
	// return the context error and the response reports 504.
	Timeout time.Duration
	// MaxBody caps the request body size in bytes; 0 means the default of
	// 8 MiB, negative disables the cap. An oversized body is rejected with
	// a structured 413 JSON error instead of an unbounded read.
	MaxBody int64
	// Logger receives panic reports and lifecycle messages; nil discards.
	Logger *log.Logger

	// MaxInFlight bounds the solver requests (POST /v1/*) running
	// concurrently; <= 0 disables admission control. Probe and stats
	// endpoints are never gated.
	MaxInFlight int
	// MaxQueue bounds the solver requests allowed to wait for an
	// admission slot once MaxInFlight are running; a request beyond both
	// is shed with a structured 429 and a Retry-After header. 0 means no
	// queue: shed as soon as the gate is full.
	MaxQueue int
	// SolveBudget, if positive, is the per-job wall-clock budget handed
	// to the batch engine: a job whose exact solve outlives it answers
	// from the degraded heuristic path (tagged "degraded") instead of
	// riding the request into a 504.
	SolveBudget time.Duration
	// BreakerThreshold is the number of consecutive deadline overruns
	// (504 responses) on one solver endpoint that trips its circuit
	// breaker; <= 0 disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker answers 503 before
	// admitting a probe request; 0 means DefaultBreakerCooldown.
	BreakerCooldown time.Duration
}

// DefaultBreakerCooldown applies when Config.BreakerCooldown is 0.
const DefaultBreakerCooldown = 5 * time.Second

// DefaultMaxBody is the request body cap applied when Config.MaxBody is 0.
const DefaultMaxBody int64 = 8 << 20

func (c Config) maxBody() int64 {
	if c.MaxBody == 0 {
		return DefaultMaxBody
	}
	return c.MaxBody
}

// Server is the HTTP solver service. Create with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	cfg   Config
	cache *batch.Cache
	log   *log.Logger
	mux   *http.ServeMux
	start time.Time

	inFlight atomic.Int64
	draining atomic.Bool
	shed     atomic.Int64

	// sem is the admission gate for solver endpoints (nil when
	// MaxInFlight <= 0); queued counts requests waiting on it.
	sem    chan struct{}
	queued atomic.Int64

	// breakers holds one circuit breaker per solver route (nil when
	// BreakerThreshold <= 0). The map is built once in New and only read
	// afterwards, so lookups need no lock.
	breakers map[string]*breaker

	mu       sync.Mutex
	requests map[string]int64
	methods  map[string]int64
}

// New builds a Server with a fresh bounded cache.
func New(cfg Config) *Server {
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{
		cfg:      cfg,
		cache:    batch.NewCacheCapPolicy(cfg.CacheCap, cfg.CachePolicy),
		log:      logger,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		requests: make(map[string]int64),
		methods:  make(map[string]int64),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/pareto", s.handlePareto)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/resolve", s.handleResolve)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	if cfg.BreakerThreshold > 0 {
		cooldown := cfg.BreakerCooldown
		if cooldown == 0 {
			cooldown = DefaultBreakerCooldown
		}
		s.breakers = make(map[string]*breaker)
		for _, route := range []string{"/v1/solve", "/v1/batch", "/v1/pareto", "/v1/simulate", "/v1/resolve"} {
			s.breakers[route] = &breaker{threshold: cfg.BreakerThreshold, cooldown: cooldown}
		}
	}
	return s
}

// SetDraining flips the readiness probe: while draining, GET /readyz
// answers 503 so load balancers stop routing new work here, while
// /healthz stays up and in-flight requests run to completion. Call it
// before http.Server.Shutdown for a clean drain.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Cache exposes the shared memoization cache (for stats and tests).
func (s *Server) Cache() *batch.Cache { return s.cache }

// ServeHTTP implements http.Handler: it tracks in-flight requests, applies
// the per-request timeout, and converts a handler panic into a 500 instead
// of killing the process.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	// Count by registered route, not by raw URL path: the counter map must
	// stay bounded for the life of the process no matter what paths
	// clients (or scanners) probe, so everything unrouted shares a bucket.
	_, pattern := s.mux.Handler(r)
	key := "unmatched"
	if pattern != "" {
		key = pattern
		if i := strings.IndexByte(key, ' '); i >= 0 {
			key = key[i+1:] // strip the "METHOD " prefix
		}
	}
	s.mu.Lock()
	s.requests[key]++
	s.mu.Unlock()

	if s.cfg.Timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	if limit := s.cfg.maxBody(); limit > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}

	defer func() {
		if rec := recover(); rec != nil {
			s.log.Printf("server: panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack())
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
		}
	}()

	// Solver endpoints pass the resilience gauntlet: circuit breaker
	// first (cheap, sheds while a route is known-overrun), then the
	// admission gate. Probes and stats always go straight through.
	if !strings.HasPrefix(pattern, "POST /v1/") {
		s.mux.ServeHTTP(w, r)
		return
	}
	if br := s.breakers[key]; br != nil {
		ok, probe, wait := br.allow(time.Now())
		if !ok {
			s.shed.Add(1)
			writeShed(w, http.StatusServiceUnavailable, wait,
				fmt.Errorf("circuit open for %s after repeated deadline overruns; retry after %v", key, wait.Round(time.Millisecond)))
			return
		}
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		w = sr
		defer func() { br.record(time.Now(), sr.status, probe) }()
	}
	release, ok, err := s.admit(r)
	if err != nil {
		// The request's own deadline fired while it queued for a slot.
		writeError(w, solveStatus(err), fmt.Errorf("request expired waiting for admission: %w", err))
		return
	}
	if !ok {
		s.shed.Add(1)
		writeShed(w, http.StatusTooManyRequests, time.Second,
			fmt.Errorf("server saturated: %d requests in flight and %d queued; retry later",
				s.cfg.MaxInFlight, s.cfg.MaxQueue))
		return
	}
	defer release()
	s.mux.ServeHTTP(w, r)
}

// batchOptions are the engine options every request shares: the bounded
// worker pool and the server-lifetime cache.
func (s *Server) batchOptions() batch.Options {
	return batch.Options{Workers: s.cfg.Workers, Cache: s.cache, SolveBudget: s.cfg.SolveBudget}
}

// countMethods folds a batch's per-method counts into the server totals.
func (s *Server) countMethods(stats batch.Stats) {
	s.mu.Lock()
	for m, n := range stats.Methods {
		s.methods[string(m)] += int64(n)
	}
	s.mu.Unlock()
}

// writeJSON emits a 200 response document.
func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) // past WriteHeader, an encode error has no channel left
}

type errorJSON struct {
	Error string `json:"error"`
	// Code is the stable machine-readable classification from
	// internal/jobspec (infeasible, timeout, degraded, shed, invalid,
	// internal); the error text stays free-form.
	Code string `json:"code,omitempty"`
}

// writeError classifies err through jobspec.ErrorCode; a 4xx the
// classifier cannot name (malformed body, missing field, oversized
// request) is the client's fault, so it reports "invalid" rather than
// "internal".
func writeError(w http.ResponseWriter, status int, err error) {
	code := jobspec.ErrorCode(err)
	if code == jobspec.CodeInternal && status >= 400 && status < 500 {
		code = jobspec.CodeInvalid
	}
	writeErrorCode(w, status, code, err)
}

func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error(), Code: code})
}

// writeShed answers a load-shedding rejection (admission gate full or
// circuit open): structured JSON with code "shed" plus a Retry-After
// header so well-behaved clients back off instead of hammering.
func writeShed(w http.ResponseWriter, status int, wait time.Duration, err error) {
	w.Header().Set("Retry-After", retryAfterSeconds(wait))
	writeErrorCode(w, status, jobspec.CodeShed, err)
}

// solveStatus maps a solver error to an HTTP status: client-shaped
// failures (infeasible bounds, unsupported criteria) are 422, an expired
// request budget is 504, anything else is 500.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrInfeasible), errors.Is(err, core.ErrUnsupported):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// decodeBody decodes a request body into dst, rejecting unknown fields.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// decodeStatus maps a body-decoding failure to an HTTP status: an
// oversized body (http.MaxBytesReader) is 413, anything else is a plain
// bad request.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// handleSolve runs one request through the engine (sharing the cache and
// worker pool with every other endpoint) and returns the jobspec result
// document. Results are bit-identical to calling repro.Solve directly.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var body jobspec.Job
	if err := decodeBody(r, &body); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if body.Instance == nil {
		writeError(w, http.StatusBadRequest, errors.New("solve request has no instance"))
		return
	}
	file := jobspec.File{Instance: body.Instance, Jobs: []jobspec.Job{{Request: body.Request}}}
	jobs, err := file.BatchJobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	results, stats := batch.SolveCtx(r.Context(), jobs, s.batchOptions())
	s.countMethods(stats)
	if err := results[0].Err; err != nil {
		writeError(w, solveStatus(err), err)
		return
	}
	doc, err := jobspec.EncodeResult(results[0])
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleBatch accepts a pipebatch job file and responds with the pipebatch
// output document. Per-job solver failures are reported in their slots and
// do not fail the request; an expired request budget does (504), since the
// remaining slots only carry the context error.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	doc, err := jobspec.DecodeFile(r.Body)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	jobs, err := doc.BatchJobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	results, stats := batch.SolveCtx(r.Context(), jobs, s.batchOptions())
	s.countMethods(stats)
	// Abort only if the expired budget actually cancelled jobs: deciding
	// from the result slots (rather than re-reading the context) keeps a
	// batch whose last job finished just before the deadline a success.
	cancelled := 0
	var ctxErr error
	for i := range results {
		if err := results[i].Err; err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			cancelled++
			ctxErr = err
		}
	}
	if cancelled > 0 {
		writeError(w, solveStatus(ctxErr), fmt.Errorf("batch aborted with %d of %d jobs cancelled: %w",
			cancelled, stats.Jobs, ctxErr))
		return
	}
	out, err := jobspec.EncodeOutput(results, stats)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// paretoRequest is the /v1/pareto document.
type paretoRequest struct {
	Instance json.RawMessage `json:"instance"`
	Rule     string          `json:"rule,omitempty"`
	Model    string          `json:"model,omitempty"`
	// PeriodTarget, if present, asks the server problem: the least energy
	// whose period does not exceed the target.
	PeriodTarget *float64 `json:"periodTarget,omitempty"`
	// EnergyBudget, if present, asks the laptop problem: the best period
	// achievable within the budget.
	EnergyBudget *float64 `json:"energyBudget,omitempty"`
	// IncludeMappings attaches each frontier point's witness mapping.
	IncludeMappings bool `json:"includeMappings,omitempty"`
}

type paretoPointJSON struct {
	Period  jobspec.Float    `json:"period"`
	Energy  jobspec.Float    `json:"energy"`
	Mapping *json.RawMessage `json:"mapping,omitempty"`
}

type paretoResponse struct {
	Points []paretoPointJSON `json:"points"`
	// The answers are null (not absent) when the frontier cannot satisfy
	// the query: +Inf has no JSON encoding.
	MinEnergyUnderPeriod *jobspec.Float `json:"minEnergyUnderPeriod,omitempty"`
	MinPeriodUnderEnergy *jobspec.Float `json:"minPeriodUnderEnergy,omitempty"`
}

// handlePareto builds the period/energy frontier for the instance and
// optionally answers the paper's server and laptop problems on it. An
// empty frontier with a query answers null (the +Inf degenerate case).
func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	var body paretoRequest
	if err := decodeBody(r, &body); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if body.Instance == nil {
		writeError(w, http.StatusBadRequest, errors.New("pareto request has no instance"))
		return
	}
	inst, err := pipeline.DecodeJSON(bytes.NewReader(body.Instance))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rule, err := jobspec.ParseRuleDefault(body.Rule)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	model, err := jobspec.ParseModelDefault(body.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	front, err := pareto.PeriodEnergyCtx(r.Context(), &inst, rule, model, s.batchOptions())
	if err != nil {
		writeError(w, solveStatus(err), err)
		return
	}
	resp := paretoResponse{Points: make([]paretoPointJSON, 0, len(front))}
	for i := range front {
		pt := paretoPointJSON{Period: jobspec.Float(front[i].Period), Energy: jobspec.Float(front[i].Energy)}
		if body.IncludeMappings {
			var buf bytes.Buffer
			if err := mapping.EncodeJSON(&buf, &front[i].Mapping); err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			raw := json.RawMessage(buf.Bytes())
			pt.Mapping = &raw
		}
		resp.Points = append(resp.Points, pt)
	}
	if body.PeriodTarget != nil {
		v := jobspec.Float(pareto.MinEnergyUnderPeriod(front, *body.PeriodTarget))
		resp.MinEnergyUnderPeriod = &v
	}
	if body.EnergyBudget != nil {
		v := jobspec.Float(pareto.MinPeriodUnderEnergy(front, *body.EnergyBudget))
		resp.MinPeriodUnderEnergy = &v
	}
	writeJSON(w, http.StatusOK, resp)
}

// simulateRequest is the /v1/simulate document.
type simulateRequest struct {
	Instance json.RawMessage `json:"instance"`
	Mapping  json.RawMessage `json:"mapping"`
	Model    string          `json:"model,omitempty"`
	Datasets int             `json:"datasets,omitempty"`
}

type simAppJSON struct {
	App             string        `json:"app"`
	MeasuredPeriod  jobspec.Float `json:"measuredPeriod"`
	MeasuredLatency jobspec.Float `json:"measuredLatency"`
	AnalyticPeriod  jobspec.Float `json:"analyticPeriod"`
	AnalyticLatency jobspec.Float `json:"analyticLatency"`
}

type simulateResponse struct {
	Results []simAppJSON `json:"results"`
}

// handleSimulate replays a mapping through the discrete-event simulator
// and reports measured next to analytic period and latency per
// application (the same numbers pipesim prints as a table).
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var body simulateRequest
	if err := decodeBody(r, &body); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if body.Instance == nil || body.Mapping == nil {
		writeError(w, http.StatusBadRequest, errors.New("simulate request needs instance and mapping"))
		return
	}
	inst, err := pipeline.DecodeJSON(bytes.NewReader(body.Instance))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := mapping.DecodeJSON(bytes.NewReader(body.Mapping))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := m.Validate(&inst, mapping.Interval); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	model, err := jobspec.ParseModelDefault(body.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	results, err := sim.Simulate(&inst, &m, model, sim.Options{Datasets: body.Datasets})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := simulateResponse{Results: make([]simAppJSON, 0, len(results))}
	for a, res := range results {
		name := inst.Apps[a].Name
		if name == "" {
			name = fmt.Sprintf("app%d", a+1)
		}
		resp.Results = append(resp.Results, simAppJSON{
			App:             name,
			MeasuredPeriod:  jobspec.Float(res.SteadyPeriod),
			MeasuredLatency: jobspec.Float(res.FirstLatency),
			AnalyticPeriod:  jobspec.Float(mapping.AppPeriod(&inst, &m, a, model)),
			AnalyticLatency: jobspec.Float(mapping.AppLatency(&inst, &m, a)),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is liveness: it answers 200 for as long as the process
// can serve HTTP at all, even while draining — restarting a draining
// process would kill the in-flight requests the drain exists to protect.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 while the server drains for shutdown so
// load balancers route new work elsewhere, 200 otherwise. Liveness and
// readiness are deliberately separate probes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// cacheStatsJSON is the /stats cache block: the result tier plus the
// compiled-plan tier (plans memoized by canonical (instance, rule, comm)
// key — see internal/plan).
type cacheStatsJSON struct {
	Entries   int     `json:"entries"`
	Cap       int     `json:"cap"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hitRate"`

	// The replacement-policy duel (see batch.Policy): the configured
	// policy, the policy follower shards currently apply, the saturating
	// selector steering them, and each leader group's observed hit rate.
	Policy            string  `json:"policy"`
	FollowerPolicy    string  `json:"followerPolicy"`
	PolicySelector    int     `json:"policySelector"`
	LeaderLRUHitRate  float64 `json:"leaderLRUHitRate"`
	LeaderCostHitRate float64 `json:"leaderCostHitRate"`
	FollowerHitRate   float64 `json:"followerHitRate"`

	PlanEntries   int     `json:"planEntries"`
	PlanHits      int64   `json:"planHits"`
	PlanMisses    int64   `json:"planMisses"`
	PlanEvictions int64   `json:"planEvictions"`
	PlanHitRate   float64 `json:"planHitRate"`
}

type statsResponse struct {
	UptimeMs float64           `json:"uptimeMs"`
	InFlight int64             `json:"inFlight"`
	Queued   int64             `json:"queued"`
	Shed     int64             `json:"shed"`
	Draining bool              `json:"draining"`
	Requests map[string]int64  `json:"requests"`
	Methods  map[string]int64  `json:"methods"`
	Breakers map[string]string `json:"breakers,omitempty"`
	Cache    cacheStatsJSON    `json:"cache"`
}

// handleStats reports the operational counters: in-flight requests,
// per-endpoint and per-method totals, and the shared cache's size, cap,
// hit rate and eviction count.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	resp := statsResponse{
		UptimeMs: float64(time.Since(s.start).Microseconds()) / 1000,
		InFlight: s.inFlight.Load(),
		Queued:   s.queued.Load(),
		Shed:     s.shed.Load(),
		Draining: s.draining.Load(),
		Requests: make(map[string]int64),
		Methods:  make(map[string]int64),
		Cache: cacheStatsJSON{
			Entries:   cs.Entries,
			Cap:       cs.Cap,
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			HitRate:   cs.HitRate(),

			Policy:            cs.Policy,
			FollowerPolicy:    cs.FollowerPolicy,
			PolicySelector:    cs.PolicySelector,
			LeaderLRUHitRate:  cs.LeaderLRUHitRate(),
			LeaderCostHitRate: cs.LeaderCostHitRate(),
			FollowerHitRate:   cs.FollowerHitRate(),

			PlanEntries:   cs.PlanEntries,
			PlanHits:      cs.PlanHits,
			PlanMisses:    cs.PlanMisses,
			PlanEvictions: cs.PlanEvictions,
			PlanHitRate:   cs.PlanHitRate(),
		},
	}
	if len(s.breakers) > 0 {
		resp.Breakers = make(map[string]string, len(s.breakers))
		now := time.Now()
		for route, br := range s.breakers {
			resp.Breakers[route] = br.state(now)
		}
	}
	s.mu.Lock()
	for k, v := range s.requests {
		resp.Requests[k] = v
	}
	for k, v := range s.methods {
		resp.Methods[k] = v
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
