// Resilience layer: admission control with load shedding, per-endpoint
// circuit breakers, and the /v1/resolve failure re-solve endpoint. The
// policy pieces live here; ServeHTTP (server.go) wires them in front of
// the solver routes.

package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/chaos"
	"repro/internal/jobspec"
	"repro/internal/plan"
)

// admit acquires a slot on the admission gate. It returns ok=false when
// the gate and its wait queue are both full (the caller sheds the
// request), and a non-nil err when the request's context died while
// queued. With admission control disabled (no gate), every request is
// admitted with a no-op release.
func (s *Server) admit(r *http.Request) (release func(), ok bool, err error) {
	if s.sem == nil {
		return func() {}, true, nil
	}
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, true, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, false, nil
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return release, true, nil
	case <-r.Context().Done():
		return nil, false, r.Context().Err()
	}
}

// breaker is a per-endpoint circuit breaker over deadline overruns.
// Closed, it counts consecutive 504s; at threshold it opens and sheds
// every request for the cooldown. After the cooldown it is half-open:
// exactly one probe request is admitted to test the endpoint — a burst
// arriving at cooldown expiry must not land whole on an endpoint that
// just proved unhealthy — and everything else is shed with a Retry-After
// until the probe reports back. The overrun streak is retained across the
// open period, so a probe that overruns re-opens the circuit while one
// success closes it.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
	probing     bool // a half-open probe is in flight
}

// allow reports whether a request may proceed; probe marks it as the
// single half-open probe (the caller must feed exactly that value back to
// record so the probe slot is released). When the request may not
// proceed, wait is the Retry-After hint: the remaining cooldown while
// open, or the full cooldown while a probe is in flight (the probe's
// verdict is due well within it).
func (b *breaker) allow(now time.Time) (ok, probe bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.Before(b.openUntil) {
		return false, false, b.openUntil.Sub(now)
	}
	if b.consecutive >= b.threshold {
		// Half-open: the cooldown has passed but the endpoint has not
		// proven itself yet.
		if b.probing {
			return false, false, b.cooldown
		}
		b.probing = true
		return true, true, 0
	}
	return true, false, 0
}

// record feeds one completed request into the breaker, releasing the
// half-open probe slot when the request held it. A 504 is an overrun; a
// shed (429) or an abandoned request (503, the client went away) says
// nothing about the endpoint's health and leaves the streak untouched;
// anything else is a success and closes the circuit.
func (b *breaker) record(now time.Time, status int, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		return
	}
	if status != http.StatusGatewayTimeout {
		b.consecutive = 0
		b.openUntil = time.Time{}
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
}

// state names the breaker's position for /stats.
func (b *breaker) state(now time.Time) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case now.Before(b.openUntil):
		return "open"
	case b.consecutive >= b.threshold:
		return "half-open"
	default:
		return "closed"
	}
}

// statusRecorder captures the response status so ServeHTTP can feed the
// circuit breaker after the handler returns.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// retryAfterSeconds renders a wait as a Retry-After value: whole
// seconds, rounded up, never below 1 (a zero would invite an immediate
// retry of a request just shed for overload).
func retryAfterSeconds(wait time.Duration) string {
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// resolveRequest is the /v1/resolve document: the pre-fault problem
// (instance + request, exactly the /v1/solve schema) plus the fault
// event to absorb.
type resolveRequest struct {
	Instance json.RawMessage  `json:"instance"`
	Request  jobspec.Request  `json:"request"`
	Event    resolveEventJSON `json:"event"`
}

// resolveEventJSON is the wire form of a chaos.Event. Kind is one of
// proc-fail, mode-drop, weight-drift, slowdown; the other fields apply
// per kind (proc for proc-fail/mode-drop/slowdown, app+stage+factor for
// weight-drift, factor for slowdown).
type resolveEventJSON struct {
	Kind   string  `json:"kind"`
	Proc   int     `json:"proc,omitempty"`
	App    int     `json:"app,omitempty"`
	Stage  int     `json:"stage,omitempty"`
	Factor float64 `json:"factor,omitempty"`
}

type migrationDiffJSON struct {
	StagesTotal   int           `json:"stagesTotal"`
	StagesMoved   int           `json:"stagesMoved"`
	ModeChanges   int           `json:"modeChanges"`
	ProcsRetired  []int         `json:"procsRetired,omitempty"`
	ProcsEnrolled []int         `json:"procsEnrolled,omitempty"`
	Disruption    jobspec.Float `json:"disruption"`
}

type resolveResponse struct {
	Event resolveEventJSON `json:"event"`
	// Before is the pre-fault solve, After the re-solve on the mutated
	// instance; both mappings have been replayed through the simulator.
	Before jobspec.Result    `json:"before"`
	After  jobspec.Result    `json:"after"`
	Diff   migrationDiffJSON `json:"diff"`
}

// handleResolve exposes the failure re-solve (internal/chaos): solve the
// pre-fault problem, apply the fault event, re-solve on the mutated
// instance, and answer both results plus the structured migration diff.
// The compiled plan for the pre-fault instance is shared with every
// other endpoint through the cache's plan tier. A fault the instance
// cannot absorb (last processor failing, event out of range) is a 422
// with code "invalid"; an instance the fault leaves infeasible is a 422
// with code "infeasible".
func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var body resolveRequest
	if err := decodeBody(r, &body); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if body.Instance == nil {
		writeError(w, http.StatusBadRequest, errors.New("resolve request has no instance"))
		return
	}
	kind, err := chaos.ParseKind(body.Event.Kind)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	file := jobspec.File{Instance: body.Instance, Jobs: []jobspec.Job{{Request: body.Request}}}
	jobs, err := file.BatchJobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job := jobs[0]
	pl, err, _ := s.cache.PlanFor(job.Inst, job.Req.Rule, job.Req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ev := chaos.Event{Kind: kind, Proc: body.Event.Proc, App: body.Event.App,
		Stage: body.Event.Stage, Factor: body.Event.Factor}
	ctx := r.Context()
	if b := s.cfg.SolveBudget; b > 0 {
		// The budget covers the whole re-solve pair; either solve that
		// outlives its share degrades rather than 504s.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 2*b)
		defer cancel()
	}
	res, err := chaos.ResolveCtx(ctx, pl, plan.QueryOf(job.Req), ev)
	if err != nil {
		status := solveStatus(err)
		if chaos.IsInapplicable(err) {
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, err)
		return
	}
	before, err := jobspec.EncodeResult(batch.JobResult{Result: res.Before})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	after, err := jobspec.EncodeResult(batch.JobResult{Result: res.After})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resolveResponse{
		Event:  body.Event,
		Before: before,
		After:  after,
		Diff: migrationDiffJSON{
			StagesTotal:   res.Diff.StagesTotal,
			StagesMoved:   res.Diff.StagesMoved,
			ModeChanges:   res.Diff.ModeChanges,
			ProcsRetired:  res.Diff.ProcsRetired,
			ProcsEnrolled: res.Diff.ProcsEnrolled,
			Disruption:    jobspec.Float(res.Diff.Disruption),
		},
	})
}
