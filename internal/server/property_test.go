package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// checkStructuredError asserts the error-response invariant: every non-2xx
// response must be a JSON document with a non-empty "error" field — never
// a 500 with an empty body, whatever the client sent.
func checkStructuredError(t *testing.T, label string, rec *httptest.ResponseRecorder) {
	t.Helper()
	if rec.Code >= 200 && rec.Code < 300 {
		return
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s: status %d with Content-Type %q, want application/json", label, rec.Code, ct)
	}
	var doc struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("%s: status %d body is not a JSON error document: %v\nbody: %q",
			label, rec.Code, err, rec.Body.String())
	}
	if doc.Error == "" {
		t.Errorf("%s: status %d with empty error field\nbody: %q", label, rec.Code, rec.Body.String())
	}
}

// TestPropertyErrorResponsesAreStructuredJSON drives /v1/pareto and
// /v1/batch with seeded random corruptions of valid documents — invalid
// rule and model strings, invalid platform shapes, truncated and garbled
// bytes, wrong JSON types, empty and oversized bodies — and asserts the
// structured-error invariant on every response.
func TestPropertyErrorResponsesAreStructuredJSON(t *testing.T) {
	s := New(Config{MaxBody: 64 << 10})
	inst := fig1JSON(t)
	valid := map[string]string{
		"/v1/pareto": fmt.Sprintf(`{"instance": %s, "rule": "interval", "model": "overlap"}`, inst),
		"/v1/batch":  fmt.Sprintf(`{"instance": %s, "jobs": [{"request": {"objective": "period"}}]}`, inst),
	}
	// Each mutation corrupts a valid document; rng picks among them.
	mutations := []func(rng *rand.Rand, doc string) (string, string){
		func(rng *rand.Rand, doc string) (string, string) {
			return "invalid-rule", strings.Replace(doc, `"interval"`, `"diagonal"`, 1)
		},
		func(rng *rand.Rand, doc string) (string, string) {
			return "invalid-model", strings.Replace(doc, `"overlap"`, `"psychic"`, 1)
		},
		func(rng *rand.Rand, doc string) (string, string) {
			return "invalid-objective", strings.Replace(doc, `"period"`, `"vibes"`, 1)
		},
		func(rng *rand.Rand, doc string) (string, string) {
			// Invalid platform class shape: processors with no speed sets.
			return "invalid-platform", strings.Replace(doc, `"speeds"`, `"speedz"`, 1)
		},
		func(rng *rand.Rand, doc string) (string, string) {
			return "truncated", doc[:rng.Intn(len(doc))]
		},
		func(rng *rand.Rand, doc string) (string, string) {
			// Flip a handful of bytes anywhere in the document.
			b := []byte(doc)
			for k := 0; k < 1+rng.Intn(4); k++ {
				b[rng.Intn(len(b))] = byte(rng.Intn(256))
			}
			return "garbled", string(b)
		},
		func(rng *rand.Rand, doc string) (string, string) {
			return "wrong-type", strings.Replace(doc, `[`, `{`, 1)
		},
		func(rng *rand.Rand, doc string) (string, string) {
			return "unknown-field", strings.Replace(doc, `"instance"`, `"instanze"`, 1)
		},
		func(rng *rand.Rand, doc string) (string, string) {
			return "empty", ""
		},
		func(rng *rand.Rand, doc string) (string, string) {
			return "oversized", doc[:len(doc)-1] + strings.Repeat(" ", 128<<10) + "}"
		},
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		for path, doc := range valid {
			name, body := mutations[rng.Intn(len(mutations))](rng, doc)
			rec := post(s, path, body)
			checkStructuredError(t, fmt.Sprintf("iter %d %s %s", i, path, name), rec)
			if name == "oversized" && rec.Code != http.StatusRequestEntityTooLarge {
				t.Errorf("iter %d %s oversized body answered %d, want 413", i, path, rec.Code)
			}
		}
	}
	// The untouched documents must still succeed: the server state cannot
	// have been wedged by any corruption above.
	for path, doc := range valid {
		if rec := post(s, path, doc); rec.Code != http.StatusOK {
			t.Errorf("%s: valid document answers %d after the corruption sweep\n%s", path, rec.Code, rec.Body.String())
		}
	}
}

// TestPropertyCancelledContext asserts a request whose context is already
// cancelled still answers a structured JSON error (503), on both the
// batch and the pareto paths.
func TestPropertyCancelledContext(t *testing.T) {
	s := New(Config{})
	inst := fig1JSON(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for path, body := range map[string]string{
		"/v1/batch":  fmt.Sprintf(`{"instance": %s, "jobs": [{"request": {"objective": "period"}}]}`, inst),
		"/v1/pareto": fmt.Sprintf(`{"instance": %s}`, inst),
	} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", path, strings.NewReader(body)).WithContext(ctx)
		s.ServeHTTP(rec, req)
		checkStructuredError(t, path, rec)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s with cancelled context answered %d, want 503\n%s", path, rec.Code, rec.Body.String())
		}
	}
}

// TestPropertyOversizedBodyAllEndpoints asserts the body cap protects
// every POST endpoint with a structured 413.
func TestPropertyOversizedBodyAllEndpoints(t *testing.T) {
	s := New(Config{MaxBody: 1024})
	huge := `{"pad": "` + strings.Repeat("x", 4096) + `"}`
	for _, path := range []string{"/v1/solve", "/v1/batch", "/v1/pareto", "/v1/simulate"} {
		rec := post(s, path, huge)
		checkStructuredError(t, path, rec)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body answered %d, want 413\n%s", path, rec.Code, rec.Body.String())
		}
	}
	// Within the cap, the default-config server must keep accepting the
	// Section 2 document (the cap must not break normal requests).
	def := New(Config{})
	body := fmt.Sprintf(`{"instance": %s, "jobs": [{"request": {"objective": "period"}}]}`, fig1JSON(t))
	if rec := post(def, "/v1/batch", body); rec.Code != http.StatusOK {
		t.Errorf("default cap rejected a normal document: %d\n%s", rec.Code, rec.Body.String())
	}
}
