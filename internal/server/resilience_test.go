package server

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// TestShedUnderSaturation saturates a 1-in-flight/1-queued server and
// asserts the overflow request is shed with a structured 429, a code of
// "shed" and a Retry-After header, while the admitted requests finish
// with 200 once the gate frees up.
func TestShedUnderSaturation(t *testing.T) {
	s := New(Config{MaxInFlight: 1, MaxQueue: 1})

	// Hold the only admission slot so the next request queues and the one
	// after that overflows — deterministic saturation, no timing games.
	s.sem <- struct{}{}
	body := `{"instance": ` + fig1JSON(t) + `, "request": {"objective": "latency"}}`

	queuedDone := make(chan int, 1)
	go func() {
		queuedDone <- post(s, "/v1/solve", body).Code
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	rec := post(s, "/v1/solve", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("shed response has no Retry-After header")
	}
	var e errorBody
	decode(t, rec, &e)
	if e.Code != "shed" || e.Error == "" {
		t.Fatalf("shed body = %+v, want code \"shed\" and an error message", e)
	}

	// Free the held slot: the queued request must be admitted and finish.
	<-s.sem
	select {
	case code := <-queuedDone:
		if code != http.StatusOK {
			t.Fatalf("queued request finished with %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request never finished after the gate freed")
	}

	var st struct {
		Shed int64 `json:"shed"`
	}
	decode(t, get(s, "/stats"), &st)
	if st.Shed != 1 {
		t.Fatalf("stats shed = %d, want 1", st.Shed)
	}
}

// TestShedConcurrentLoad fires a burst far larger than the gate at a
// saturated server: every response must be either a success or a
// structured shed — nothing hangs, nothing is an empty body — and with
// the gate held closed the sheds must actually occur.
func TestShedConcurrentLoad(t *testing.T) {
	s := New(Config{MaxInFlight: 2, MaxQueue: 2})
	s.sem <- struct{}{}
	s.sem <- struct{}{} // gate fully held: all admitted requests queue
	body := `{"instance": ` + fig1JSON(t) + `, "request": {"objective": "latency"}}`

	const burst = 16
	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = post(s, "/v1/solve", body).Code
		}(i)
	}
	// Release the gate once the queue has filled so queued requests run.
	waitFor(t, func() bool { return s.queued.Load() == 2 })
	<-s.sem
	<-s.sem
	wg.Wait()

	ok, shed := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("request %d: unexpected status %d", i, c)
		}
	}
	if ok < 1 || shed < 1 {
		t.Fatalf("burst of %d: %d ok, %d shed; want at least one of each", burst, ok, shed)
	}
}

// TestBreakerTripsAndCoolsDown drives an endpoint into consecutive
// deadline overruns (a per-request timeout no solve can meet), asserts
// the circuit opens with 503 + Retry-After + code "shed", and that after
// the cooldown the half-open probe is admitted again.
func TestBreakerTripsAndCoolsDown(t *testing.T) {
	s := New(Config{
		Timeout:          time.Nanosecond, // every solve overruns instantly
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
	})
	body := `{"instance": ` + fig1JSON(t) + `, "request": {"objective": "latency"}}`

	for i := 0; i < 2; i++ {
		if rec := post(s, "/v1/solve", body); rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("overrun %d: status %d, want 504: %s", i, rec.Code, rec.Body.String())
		}
	}
	rec := post(s, "/v1/solve", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker: status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("open-circuit response has no Retry-After header")
	}
	var e errorBody
	decode(t, rec, &e)
	if e.Code != "shed" {
		t.Fatalf("open-circuit code = %q, want \"shed\"", e.Code)
	}

	// The breaker is per endpoint: /v1/batch is unaffected by /v1/solve's
	// open circuit (it overruns on its own, but it is admitted).
	if rec := post(s, "/v1/batch", `{"instance": `+fig1JSON(t)+`,
		"jobs": [{"request": {"objective": "latency"}}]}`); rec.Code == http.StatusServiceUnavailable {
		t.Fatalf("/v1/batch was shed by /v1/solve's breaker: %s", rec.Body.String())
	}

	var st struct {
		Breakers map[string]string `json:"breakers"`
	}
	decode(t, get(s, "/stats"), &st)
	if st.Breakers["/v1/solve"] != "open" {
		t.Fatalf("stats breaker state = %q, want open (%v)", st.Breakers["/v1/solve"], st.Breakers)
	}

	// After the cooldown the probe is admitted (half-open): it overruns
	// again here, which re-opens the circuit immediately.
	time.Sleep(120 * time.Millisecond)
	if rec := post(s, "/v1/solve", body); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("half-open probe: status %d, want 504 (admitted)", rec.Code)
	}
	if rec := post(s, "/v1/solve", body); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failed probe did not re-open the circuit: status %d", rec.Code)
	}
}

// TestBreakerStateMachine unit-tests the recovery path record/allow
// cannot easily reach through HTTP: a success in half-open closes the
// circuit fully.
func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{threshold: 2, cooldown: time.Minute}
	t0 := time.Unix(1000, 0)
	if ok, probe, _ := b.allow(t0); !ok || probe {
		t.Fatalf("fresh breaker: ok=%v probe=%v, want closed non-probe admit", ok, probe)
	}
	b.record(t0, http.StatusGatewayTimeout, false)
	if ok, _, _ := b.allow(t0); !ok {
		t.Fatal("one overrun below threshold opened the circuit")
	}
	// A shed in between must not reset the streak.
	b.record(t0, http.StatusTooManyRequests, false)
	b.record(t0, http.StatusGatewayTimeout, false)
	if ok, _, wait := b.allow(t0); ok || wait <= 0 {
		t.Fatalf("threshold overruns did not open the circuit (ok=%v wait=%v)", ok, wait)
	}
	if got := b.state(t0); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	after := t0.Add(2 * time.Minute)
	ok, probe, _ := b.allow(after)
	if !ok || !probe {
		t.Fatalf("cooldown elapsed: ok=%v probe=%v, want the half-open probe admitted", ok, probe)
	}
	if got := b.state(after); got != "half-open" {
		t.Fatalf("state = %q, want half-open", got)
	}
	b.record(after, http.StatusOK, probe)
	if got := b.state(after); got != "closed" {
		t.Fatalf("successful probe left state %q, want closed", got)
	}
	b.record(after, http.StatusGatewayTimeout, false)
	if ok, _, _ := b.allow(after); !ok {
		t.Fatal("closed circuit opened after a single overrun")
	}
}

// TestBreakerSingleHalfOpenProbe is the half-open thundering-herd
// satellite regression: after the cooldown, exactly one request may probe
// the endpoint — a concurrent burst must be shed with a Retry-After hint,
// not land whole on an endpoint that just proved unhealthy.
func TestBreakerSingleHalfOpenProbe(t *testing.T) {
	b := &breaker{threshold: 1, cooldown: time.Minute}
	t0 := time.Unix(1000, 0)
	b.record(t0, http.StatusGatewayTimeout, false) // trips: threshold 1
	after := t0.Add(2 * time.Minute)

	// A concurrent burst arrives exactly at cooldown expiry.
	const burst = 16
	var mu sync.Mutex
	admitted, probes, shed := 0, 0, 0
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, probe, wait := b.allow(after)
			mu.Lock()
			defer mu.Unlock()
			if ok {
				admitted++
				if probe {
					probes++
				}
			} else {
				shed++
				if wait <= 0 {
					t.Error("shed half-open request carries no Retry-After hint")
				}
			}
		}()
	}
	wg.Wait()
	if admitted != 1 || probes != 1 || shed != burst-1 {
		t.Fatalf("half-open burst of %d: admitted=%d probes=%d shed=%d, want exactly one probe",
			burst, admitted, probes, shed)
	}

	// While the probe is in flight every later arrival is shed too...
	if ok, _, _ := b.allow(after.Add(time.Second)); ok {
		t.Fatal("second probe admitted while the first is in flight")
	}
	// ...even one whose own status says nothing about health (a 429 from
	// the admission gate must not release the probe slot it never held).
	b.record(after.Add(time.Second), http.StatusTooManyRequests, false)
	if ok, _, _ := b.allow(after.Add(2 * time.Second)); ok {
		t.Fatal("bystander 429 released the in-flight probe's slot")
	}

	// The probe reporting back releases the slot: an overrun re-opens the
	// circuit for a fresh cooldown, then the next window admits one probe
	// again.
	b.record(after.Add(3*time.Second), http.StatusGatewayTimeout, true)
	if ok, _, wait := b.allow(after.Add(4 * time.Second)); ok || wait <= 0 {
		t.Fatalf("failed probe did not re-open the circuit (ok=%v wait=%v)", ok, wait)
	}
	next := after.Add(3*time.Second + 2*time.Minute)
	if ok, probe, _ := b.allow(next); !ok || !probe {
		t.Fatalf("next cooldown window: ok=%v probe=%v, want a fresh probe", ok, probe)
	}
	// A successful probe closes the circuit for everyone.
	b.record(next, http.StatusOK, true)
	if ok, probe, _ := b.allow(next.Add(time.Second)); !ok || probe {
		t.Fatalf("after recovery: ok=%v probe=%v, want plain closed admission", ok, probe)
	}
}

// TestDrain pins the probe split: while draining, /readyz answers 503 so
// load balancers stop routing here, /healthz stays 200 (the process is
// alive, restarting it would kill the drain), and an in-flight request
// runs to completion.
func TestDrain(t *testing.T) {
	s := New(Config{MaxInFlight: 1, MaxQueue: 1})

	// Occupy the gate so a request is genuinely in flight (queued on the
	// semaphore) while we flip draining.
	s.sem <- struct{}{}
	body := `{"instance": ` + fig1JSON(t) + `, "request": {"objective": "period"}}`
	inFlight := make(chan int, 1)
	go func() {
		inFlight <- post(s, "/v1/solve", body).Code
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	s.SetDraining(true)
	if rec := get(s, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", rec.Code)
	}
	if rec := get(s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz while draining: status %d, want 200", rec.Code)
	}
	var st struct {
		Draining bool `json:"draining"`
	}
	decode(t, get(s, "/stats"), &st)
	if !st.Draining {
		t.Fatal("stats does not report draining")
	}

	// The in-flight request finishes normally despite the drain.
	<-s.sem
	select {
	case code := <-inFlight:
		if code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d during drain, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request did not finish during drain")
	}

	s.SetDraining(false)
	if rec := get(s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after drain cleared: status %d, want 200", rec.Code)
	}
}

// TestResolveEndpoint runs a processor failure through /v1/resolve and
// checks the response carries both verified solves and a migration diff
// that retires the failed processor.
func TestResolveEndpoint(t *testing.T) {
	s := New(Config{})
	rec := post(s, "/v1/resolve", `{"instance": `+fig1JSON(t)+`,
		"request": {"objective": "period"},
		"event": {"kind": "proc-fail", "proc": 0}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Event struct {
			Kind string `json:"kind"`
			Proc int    `json:"proc"`
		} `json:"event"`
		Before struct {
			Value float64 `json:"value"`
		} `json:"before"`
		After struct {
			Value float64 `json:"value"`
		} `json:"after"`
		Diff struct {
			StagesTotal  int   `json:"stagesTotal"`
			StagesMoved  int   `json:"stagesMoved"`
			ProcsRetired []int `json:"procsRetired"`
		} `json:"diff"`
	}
	decode(t, rec, &resp)
	if resp.Event.Kind != "proc-fail" || resp.Event.Proc != 0 {
		t.Fatalf("event echoed wrong: %+v", resp.Event)
	}
	if resp.Before.Value <= 0 || resp.After.Value < resp.Before.Value {
		t.Fatalf("losing a processor improved the optimum: before %g, after %g",
			resp.Before.Value, resp.After.Value)
	}
	if resp.Diff.StagesTotal <= 0 {
		t.Fatalf("empty diff: %+v", resp.Diff)
	}
	retired := false
	for _, u := range resp.Diff.ProcsRetired {
		if u == 0 {
			retired = true
		}
	}
	if !retired && resp.Diff.StagesMoved == 0 {
		t.Fatalf("failing P0 neither retired it nor moved stages: %+v", resp.Diff)
	}
}

// TestResolveErrors pins the /v1/resolve error classifications: an
// unknown event kind and an inapplicable event are client errors with
// stable codes, never 500s.
func TestResolveErrors(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"no instance", `{"request": {}, "event": {"kind": "proc-fail"}}`,
			http.StatusBadRequest, "invalid"},
		{"bad kind", `{"instance": ` + fig1JSON(t) + `, "request": {}, "event": {"kind": "meteor"}}`,
			http.StatusBadRequest, "invalid"},
		{"out of range", `{"instance": ` + fig1JSON(t) + `, "request": {}, "event": {"kind": "proc-fail", "proc": 99}}`,
			http.StatusUnprocessableEntity, "invalid"},
	}
	for _, tc := range cases {
		rec := post(s, "/v1/resolve", tc.body)
		if rec.Code != tc.status {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.status, rec.Body.String())
		}
		var e errorBody
		decode(t, rec, &e)
		if e.Code != tc.code || e.Error == "" {
			t.Fatalf("%s: body %+v, want code %q and an error", tc.name, e, tc.code)
		}
	}
}

// TestErrorCodes pins the machine-readable code on the classic error
// shapes of the pre-existing endpoints (satellite of the wire-code
// contract: old "error" text stays, "code" is stable).
func TestErrorCodes(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"malformed body", "/v1/solve", `{"instance": 12`, http.StatusBadRequest, "invalid"},
		{"infeasible", "/v1/solve", `{"instance": ` + fig1JSON(t) + `,
			"request": {"objective": "energy", "periodBound": 0.0001}}`,
			http.StatusUnprocessableEntity, "infeasible"},
	}
	for _, tc := range cases {
		rec := post(s, tc.path, tc.body)
		if rec.Code != tc.status {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.status, rec.Body.String())
		}
		var e errorBody
		decode(t, rec, &e)
		if e.Code != tc.code {
			t.Fatalf("%s: code %q, want %q (error %q)", tc.name, e.Code, tc.code, e.Error)
		}
	}
}

// TestSolveBudgetDegradedResponse arms the server-wide solve budget with
// a deadline no exact solve can meet: the response must be a 200 tagged
// degraded with a lower bound, not a 504.
func TestSolveBudgetDegradedResponse(t *testing.T) {
	s := New(Config{SolveBudget: time.Nanosecond})
	rec := post(s, "/v1/solve", `{"instance": `+fig1JSON(t)+`,
		"request": {"objective": "period"}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("budgeted solve: status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Value      float64 `json:"value"`
		Preempted  bool    `json:"preempted"`
		Degraded   bool    `json:"degraded"`
		Code       string  `json:"code"`
		LowerBound float64 `json:"lowerBound"`
		BoundGap   float64 `json:"boundGap"`
	}
	decode(t, rec, &resp)
	if !resp.Preempted {
		t.Fatalf("1ns budget did not preempt: %+v", resp)
	}
	if resp.Degraded {
		if resp.Code != "degraded" {
			t.Fatalf("degraded result code = %q, want \"degraded\"", resp.Code)
		}
		if resp.LowerBound <= 0 || resp.LowerBound > resp.Value {
			t.Fatalf("lower bound %g not in (0, %g]", resp.LowerBound, resp.Value)
		}
		if got := resp.Value - resp.LowerBound; abs(got-resp.BoundGap) > 1e-12 {
			t.Fatalf("boundGap %g != value-lowerBound %g", resp.BoundGap, got)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// waitFor polls cond until it holds or a generous deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
