package plan

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// TestSolveCtxBackgroundIsSolve pins that a context without deadline or
// cancellation changes nothing: SolveCtx is bit-identical to Solve.
func TestSolveCtxBackgroundIsSolve(t *testing.T) {
	mi := pipeline.MotivatingExample()
	p1, err := Compile(&mi, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(&mi, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Objective: core.Latency}
	r1, e1 := p1.Solve(q)
	r2, e2 := p2.SolveCtx(context.Background(), q)
	if !reflect.DeepEqual(r1, r2) || !errors.Is(e1, e2) && (e1 != nil || e2 != nil) {
		t.Fatalf("SolveCtx(Background) diverged from Solve: %+v / %v vs %+v / %v", r1, e1, r2, e2)
	}
}

// TestSolveCtxExpiredDeadlineDegrades pins the graceful-degradation
// contract: an already-expired deadline answers from the reduced-effort
// path, tagged Preempted, without touching the memo.
func TestSolveCtxExpiredDeadlineDegrades(t *testing.T) {
	mi := pipeline.MotivatingExample()
	p, err := Compile(&mi, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	q := Query{Objective: core.Period, Seed: 3}
	res, err := p.SolveCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Preempted {
		t.Fatalf("expired-deadline result not tagged Preempted: %+v", res)
	}
	st := p.QueryStats()
	if st.Degraded != 1 {
		t.Fatalf("Degraded counter = %d, want 1", st.Degraded)
	}
	if st.Entries != 0 {
		t.Fatalf("degraded result was memoized: %d entries", st.Entries)
	}

	// A budget-free solve of the same query must get the clean answer.
	clean, err := p.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Preempted {
		t.Fatal("budget-free solve returned a preempted result")
	}
}

// TestSolveCtxCancelledReturnsCtxErr pins that cancellation (the caller is
// gone) is not degraded-solved: no answer is wanted.
func TestSolveCtxCancelledReturnsCtxErr(t *testing.T) {
	mi := pipeline.MotivatingExample()
	p, err := Compile(&mi, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SolveCtx(ctx, Query{Objective: core.Period}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st := p.QueryStats(); st.Degraded != 0 {
		t.Fatalf("cancellation took the degraded path: %+v", st)
	}
}

// TestSolveCtxMidFlightDeadline arms a deadline a slow solve cannot meet:
// the call must come back degraded promptly while the full solve finishes
// in the background and heals the memo for later budget-free queries.
func TestSolveCtxMidFlightDeadline(t *testing.T) {
	mi := pipeline.MotivatingExample()
	p, err := Compile(&mi, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	// ExactLimit 1 forces the heuristic; a large annealing budget makes
	// the full solve far outlast the 10ms deadline on any hardware.
	q := Query{Objective: core.Period, ExactLimit: 1, HeurIters: 2_000_000, HeurRestarts: 2, Seed: 9}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	res, err := p.SolveCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Preempted || !res.Degraded {
		t.Fatalf("mid-flight deadline result not Preempted+Degraded: %+v", res)
	}
	if res.LowerBound <= 0 || res.LowerBound > res.Value {
		t.Fatalf("degraded lower bound %g not in (0, value %g]", res.LowerBound, res.Value)
	}
	// The background full solve publishes to the memo; a budget-free
	// arrival waits on it and gets the clean result.
	clean, err := p.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Preempted {
		t.Fatal("memoized result is preempted")
	}
	if st := p.QueryStats(); st.Hits != 1 {
		t.Fatalf("budget-free solve did not hit the background entry: %+v", st)
	}
}
