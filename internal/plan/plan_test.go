package plan

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// fig1Queries is the Section 2 battery: the four motivating-example
// questions plus a bounded-energy variant, spanning all three criteria.
func fig1Queries(inst *pipeline.Instance) []Query {
	return []Query{
		{Objective: core.Period},
		{Objective: core.Latency},
		{Objective: core.Energy, PeriodBounds: core.UniformBounds(inst, math.Inf(1))},
		{Objective: core.Energy, PeriodBounds: core.UniformBounds(inst, 2)},
		{Objective: core.Energy, PeriodBounds: core.UniformBounds(inst, 3)},
	}
}

// TestSolveMatchesCore asserts plan queries are bit-identical to fresh
// one-shot solves: same result (exact float bits, method, optimality,
// mapping) or same error, across criteria, bounds and both answers of a
// repeated query.
func TestSolveMatchesCore(t *testing.T) {
	inst := pipeline.MotivatingExample()
	pl, err := Compile(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	queries := fig1Queries(&inst)
	// Infeasible and unsupported queries must reproduce their errors too.
	queries = append(queries,
		Query{Objective: core.Energy, PeriodBounds: core.UniformBounds(&inst, 0.01)},
		Query{Objective: core.Energy}, // no period bounds: ErrUnsupported
	)
	for rep := 0; rep < 2; rep++ {
		for i, q := range queries {
			want, werr := core.Solve(&inst, pl.Request(q))
			got, gerr := pl.Solve(q)
			if (werr == nil) != (gerr == nil) || (werr != nil && werr.Error() != gerr.Error()) {
				t.Fatalf("rep %d query %d: plan error %v, core error %v", rep, i, gerr, werr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rep %d query %d: plan result %+v differs from core %+v", rep, i, got, want)
			}
		}
	}
	st := pl.QueryStats()
	if st.Queries != int64(2*len(queries)) {
		t.Errorf("Queries = %d, want %d", st.Queries, 2*len(queries))
	}
	if st.Hits != int64(len(queries)) {
		t.Errorf("Hits = %d, want %d (the whole second pass)", st.Hits, len(queries))
	}
	if st.Entries != len(queries) {
		t.Errorf("Entries = %d, want %d", st.Entries, len(queries))
	}
}

// TestCompileValidates asserts Compile rejects an invalid instance with the
// same error a direct solve would report.
func TestCompileValidates(t *testing.T) {
	inst := pipeline.MotivatingExample()
	inst.Apps[0].Stages[0].Work = -1
	_, cerr := Compile(&inst, mapping.Interval, pipeline.Overlap)
	if cerr == nil {
		t.Fatal("Compile accepted an invalid instance")
	}
	_, serr := core.Solve(&inst, core.Request{Rule: mapping.Interval, Objective: core.Period})
	if serr == nil || cerr.Error() != serr.Error() {
		t.Fatalf("Compile error %q differs from core.Solve error %q", cerr, serr)
	}
}

// TestCompileClonesInstance asserts a plan owns its instance: mutating the
// caller's instance after Compile must not change any future answer.
func TestCompileClonesInstance(t *testing.T) {
	inst := pipeline.MotivatingExample()
	pl, err := Compile(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	want, err := pl.Solve(Query{Objective: core.Period})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	inst.Apps[0].Stages[0].Work = 1e6 // would change the optimum if shared
	inst.Platform.Processors[0].Speeds[0] = 1e-6
	got, err := pl.Solve(Query{Objective: core.Period})
	if err != nil {
		t.Fatalf("Solve after mutation: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mutating the caller's instance changed the plan's answer")
	}
}

// TestMutationAliasing asserts returned results are independent copies:
// scribbling over one answer's mapping and metrics must not corrupt the
// memo serving the next answer (the bug class the batch cache's clone
// guards against).
func TestMutationAliasing(t *testing.T) {
	inst := pipeline.MotivatingExample()
	pl, err := Compile(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	q := Query{Objective: core.Energy, PeriodBounds: core.UniformBounds(&inst, 2)}
	first, err := pl.Solve(q)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	pristine, _ := pl.Solve(q)
	first.Mapping.Apps[0].Intervals[0].Proc = 99
	first.Mapping.Apps[0].Intervals[0].Mode = 99
	for a := range first.Metrics.AppPeriods {
		first.Metrics.AppPeriods[a] = -1
	}
	second, err := pl.Solve(q)
	if err != nil {
		t.Fatalf("Solve after mutation: %v", err)
	}
	if !reflect.DeepEqual(second, pristine) {
		t.Fatal("mutating a returned result corrupted the plan's memo")
	}
	if second.Mapping.Apps[0].Intervals[0].Proc == 99 {
		t.Fatal("memo hit shares mapping memory with a previous answer")
	}
}

// TestConcurrentHammer hammers one shared plan from many goroutines with
// mixed criteria and bounds (run under -race via the Makefile race target);
// every answer must equal the single-threaded expectation bit-for-bit, and
// callers mutate their results as they go to shake out aliasing races.
func TestConcurrentHammer(t *testing.T) {
	inst := pipeline.MotivatingExample()
	pl, err := Compile(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	queries := fig1Queries(&inst)
	want := make([]core.Result, len(queries))
	for i, q := range queries {
		if want[i], err = core.Solve(&inst, pl.Request(q)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	const goroutines = 16
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(queries)
				got, err := pl.Solve(queries[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					errs <- fmt.Errorf("goroutine %d iter %d: result differs from single-threaded solve", g, it)
					return
				}
				// Scribble on the answer: must never reach another caller.
				got.Mapping.Apps[0].Intervals[0].Proc = g
				if got.Metrics.AppPeriods != nil {
					got.Metrics.AppPeriods[0] = float64(it)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := pl.QueryStats(); st.Queries != goroutines*iters {
		t.Errorf("Queries = %d, want %d", st.Queries, goroutines*iters)
	}
}

// TestMemoEviction floods a plan with more distinct queries than memoCap
// and asserts the memo stays bounded while answers stay correct.
func TestMemoEviction(t *testing.T) {
	inst := pipeline.MotivatingExample()
	pl, err := Compile(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	want, err := pl.Solve(Query{Objective: core.Period})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Seed only perturbs the heuristic path, so these all solve to the
	// same answer through the polynomial dispatch while occupying distinct
	// memo keys.
	for s := int64(1); s <= memoCap+8; s++ {
		got, err := pl.Solve(Query{Objective: core.Period, Seed: s})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if got.Value != want.Value {
			t.Fatalf("seed %d: value %g, want %g", s, got.Value, want.Value)
		}
	}
	st := pl.QueryStats()
	if st.Entries > memoCap {
		t.Errorf("memo holds %d entries, cap %d", st.Entries, memoCap)
	}
	if st.Evictions == 0 {
		t.Error("flooding past the cap evicted nothing")
	}
}

// TestPanicConfined asserts a panicking query is published as an error to
// the caller (and any waiter) instead of unwinding, and poisons only its
// own memo entry.
func TestPanicConfined(t *testing.T) {
	inst := pipeline.MotivatingExample()
	pl, err := Compile(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// An out-of-range objective reaches the dispatcher's default branch as
	// a plain error, not a panic, so force one via bounds of wrong arity —
	// checkBounds errors — no panic either. Instead corrupt the plan's
	// private instance the way no API caller can, proving the recover path
	// still publishes: a nil processor speeds slice makes the solver
	// panic on index.
	saved := pl.inst.Platform.Processors[0].Speeds
	pl.inst.Platform.Processors[0].Speeds = nil
	_, perr := pl.Solve(Query{Objective: core.Period})
	pl.inst.Platform.Processors[0].Speeds = saved
	if perr == nil || !strings.Contains(perr.Error(), "panicked") {
		t.Fatalf("panicking query returned %v, want a published panic error", perr)
	}
	// A different query key still works.
	if _, err := pl.Solve(Query{Objective: core.Period, Seed: 1}); err != nil {
		t.Fatalf("plan poisoned beyond the offending key: %v", err)
	}
}

// TestAllocsRepeatQuery locks in the arena-reuse win: a repeat query on a
// compiled plan must run allocation-near-zero (only the defensive copy of
// the small answer), far below a fresh one-shot solve.
func TestAllocsRepeatQuery(t *testing.T) {
	inst := pipeline.MotivatingExample()
	pl, err := Compile(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	req := core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Energy,
		PeriodBounds: core.UniformBounds(&inst, 2)}
	q := QueryOf(req)
	if _, err := pl.Solve(q); err != nil { // warm the memo
		t.Fatalf("Solve: %v", err)
	}
	repeat := testing.AllocsPerRun(200, func() {
		if _, err := pl.Solve(q); err != nil {
			t.Fatalf("Solve: %v", err)
		}
	})
	fresh := testing.AllocsPerRun(50, func() {
		if _, err := core.Solve(&inst, req); err != nil {
			t.Fatalf("core.Solve: %v", err)
		}
	})
	// The steady-state hit is a pooled key encode, a map lookup and the
	// defensive deep copy of a 2-app result: a dozen small allocations at
	// most. A fresh solve runs the pooled branch-and-bound arena these
	// days, so it is nearly allocation-free itself — the memo hit must
	// still never be heavier than re-solving.
	const maxRepeat = 12
	if repeat > maxRepeat {
		t.Errorf("repeat query allocates %.0f allocs/op, want <= %d", repeat, maxRepeat)
	}
	if repeat > fresh {
		t.Errorf("repeat query (%.0f allocs/op) is heavier than a fresh solve (%.0f allocs/op)",
			repeat, fresh)
	}
}
