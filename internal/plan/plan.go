// Package plan is the compiled-plan layer of the solver: Compile
// preprocesses one (instance, rule, communication model) triple once into
// an immutable Plan — validated and privately cloned instance, platform
// class, per-application work prefix sums, advisory per-application period
// lower bounds, and (lazily) the exact Pareto candidate-period set — that
// can then answer many criterion/bound queries without re-deriving any of
// that state.
//
// Plan.Solve is bit-identical to core.Solve on the same problem (the
// differential harness in internal/diffcheck replays every corpus scenario
// through both paths and asserts exact agreement), but a Plan amortizes the
// per-request work three ways:
//
//   - validation and platform classification run once at compile time, not
//     per query (core.SolvePrepared skips both);
//   - repeated queries are answered from a single-flight LRU memo keyed by
//     a canonical query encoding, so the steady-state repeat-query path is
//     a map lookup plus a defensive copy — near-zero allocations and
//     orders of magnitude faster than a fresh solve;
//   - query keys are encoded into pooled scratch buffers (sync.Pool), so
//     the hot path does not regrow an arena per call.
//
// A Plan is safe for concurrent use by any number of goroutines; every
// returned Result is an independent deep copy, so callers can mutate their
// mappings freely without corrupting the memo (the same aliasing guarantee
// the batch cache makes). Plans are themselves memoized across requests by
// the batch engine's plan cache tier (internal/batch.Cache), keyed by the
// canonical (instance, rule, comm) encoding.
package plan

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// memoCap bounds each plan's query memo: beyond it the least recently used
// query results are evicted, so a long-lived cached plan cannot grow
// without bound under adversarial query streams.
const memoCap = 4096

// Query is one criterion/bound question against a compiled plan. It is
// core.Request minus the fields fixed at compile time (rule and
// communication model). The nil-ness of the bound slices is semantically
// meaningful, exactly as on core.Request: nil means unconstrained.
type Query struct {
	// Objective is the criterion to minimize.
	Objective core.Criterion
	// PeriodBounds and LatencyBounds constrain the per-application
	// unweighted period/latency when non-nil.
	PeriodBounds  []float64
	LatencyBounds []float64
	// EnergyBudget, if positive, constrains the total energy.
	EnergyBudget float64
	// ExactLimit, Seed, HeurIters and HeurRestarts tune the exhaustive and
	// heuristic fallbacks exactly as on core.Request.
	ExactLimit              int64
	Seed                    int64
	HeurIters, HeurRestarts int
}

// QueryOf projects a core.Request onto the plan query axes, dropping the
// rule and communication model (they are properties of the plan).
func QueryOf(req core.Request) Query {
	return Query{
		Objective:     req.Objective,
		PeriodBounds:  req.PeriodBounds,
		LatencyBounds: req.LatencyBounds,
		EnergyBudget:  req.EnergyBudget,
		ExactLimit:    req.ExactLimit,
		Seed:          req.Seed,
		HeurIters:     req.HeurIters,
		HeurRestarts:  req.HeurRestarts,
	}
}

// entry is one memoized query: a single-flight slot whose ready channel is
// closed once res/err are final, so concurrent duplicates block instead of
// recomputing and never observe a partial write.
type entry struct {
	key   string
	ready chan struct{}
	res   core.Result
	err   error
}

// Plan is an immutable compiled solver state answering many queries for one
// (instance, rule, communication model) triple. Create with Compile; the
// zero value is not usable.
type Plan struct {
	inst  pipeline.Instance
	rule  mapping.Rule
	model pipeline.CommModel
	cls   pipeline.Class

	// prefixes[a] is Apps[a].WorkPrefix(), computed once.
	prefixes [][]float64
	// periodLB[a] is an advisory lower bound on application a's unweighted
	// period under any mapping (see PeriodLowerBounds).
	periodLB []float64

	candsOnce sync.Once
	cands     []float64

	mu   sync.Mutex
	memo map[string]*list.Element
	lru  list.List // front = most recently used; values are *entry

	queries, hits, evictions, degraded atomic.Int64
}

// degradedHeurIters is the reduced annealing budget of a degraded solve
// (the normal default is 4000 iterations times 3 restarts): after a
// wall-clock budget has already expired, the fallback must be quick, not
// thorough.
const degradedHeurIters = 800

// keyPool recycles query-key scratch buffers across Solve calls (the
// per-query arena of the package docs).
var keyPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// Compile validates the instance once, clones it (the plan owns its copy:
// later caller mutations of inst cannot corrupt compiled state), classifies
// the platform and precomputes the per-application prefix sums and period
// lower bounds. The same inputs always compile to a plan whose queries are
// bit-identical to fresh core.Solve calls on the original instance.
func Compile(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel) (*Plan, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{
		inst:  inst.Clone(),
		rule:  rule,
		model: model,
		memo:  make(map[string]*list.Element),
	}
	p.cls = p.inst.Platform.Classify()
	p.prefixes = make([][]float64, len(p.inst.Apps))
	p.periodLB = make([]float64, len(p.inst.Apps))
	maxSpeed := 0.0
	for u := range p.inst.Platform.Processors {
		maxSpeed = math.Max(maxSpeed, p.inst.Platform.Processors[u].MaxSpeed())
	}
	for a := range p.inst.Apps {
		app := &p.inst.Apps[a]
		p.prefixes[a] = app.WorkPrefix()
		// Any interval containing stage k computes at least work_k at some
		// speed <= maxSpeed, and the interval's cycle time is at least its
		// computation time under both communication models.
		lb := 0.0
		for k := range app.Stages {
			lb = math.Max(lb, app.Stages[k].Work/maxSpeed)
		}
		p.periodLB[a] = lb
	}
	return p, nil
}

// Instance returns the plan's private instance. It is shared, not copied:
// callers must treat it as read-only.
func (p *Plan) Instance() *pipeline.Instance { return &p.inst }

// Rule returns the mapping rule fixed at compile time.
func (p *Plan) Rule() mapping.Rule { return p.rule }

// Model returns the communication model fixed at compile time.
func (p *Plan) Model() pipeline.CommModel { return p.model }

// Class returns the platform class computed at compile time.
func (p *Plan) Class() pipeline.Class { return p.cls }

// WorkPrefix returns application a's precomputed work prefix sums (shared,
// read-only).
func (p *Plan) WorkPrefix(a int) []float64 { return p.prefixes[a] }

// PeriodLowerBounds returns an advisory per-application lower bound on the
// unweighted period achievable by any mapping under any rule: no interval's
// cycle time can undercut its largest stage at the platform's fastest
// speed. The slice is shared, read-only. It is advisory — admission control
// can reject hopeless period bounds early — and is never used to shortcut
// Solve, which must stay bit-identical to core.Solve.
func (p *Plan) PeriodLowerBounds() []float64 { return p.periodLB }

// Request materializes the full core.Request a query stands for.
func (p *Plan) Request(q Query) core.Request {
	return core.Request{
		Rule:          p.rule,
		Model:         p.model,
		Objective:     q.Objective,
		PeriodBounds:  q.PeriodBounds,
		LatencyBounds: q.LatencyBounds,
		EnergyBudget:  q.EnergyBudget,
		ExactLimit:    q.ExactLimit,
		Seed:          q.Seed,
		HeurIters:     q.HeurIters,
		HeurRestarts:  q.HeurRestarts,
	}
}

// Solve answers one query against the compiled state. The first arrival of
// a query key runs the solver (via core.SolvePrepared — validation and
// classification were paid at compile time); duplicates, concurrent or
// later, are answered from the memo. The returned Result is an independent
// deep copy and the error, value, metrics, method, optimality flag and
// mapping are bit-identical to core.Solve(instance, plan.Request(q)).
func (p *Plan) Solve(q Query) (core.Result, error) {
	e, hit := p.lookup(q)
	if hit {
		<-e.ready
	} else {
		p.run(e, q)
	}
	return cloneStored(e.res, e.err), e.err
}

// SolveCtx is Solve under a wall-clock budget: when ctx carries no deadline
// or cancellation it is exactly Solve, and when the budget expires before
// the full solve publishes, the call returns a reduced-effort degraded
// result (tagged Preempted, never memoized) instead of blocking. The full
// solve keeps running on a background goroutine and publishes its clean
// result to the memo, so later arrivals of the same query key self-heal to
// the budget-free answer. A cancelled (as opposed to expired) context
// returns ctx.Err(): the caller has gone away and no answer is wanted.
func (p *Plan) SolveCtx(ctx context.Context, q Query) (core.Result, error) {
	if ctx.Done() == nil {
		return p.Solve(q)
	}
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return p.degradedSolve(q)
		}
		return core.Result{}, err
	}
	e, hit := p.lookup(q)
	if !hit {
		// The solver reads the query's bound slices for the whole solve;
		// clone them so the caller regaining control at deadline expiry
		// cannot corrupt the memoized result by reusing its buffers.
		go p.run(e, cloneQuery(q))
	}
	select {
	case <-e.ready:
		return cloneStored(e.res, e.err), e.err
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return p.degradedSolve(q)
		}
		return core.Result{}, ctx.Err()
	}
}

// lookup finds or installs the single-flight memo entry for q. hit reports
// whether the entry was already present (the caller must then wait on
// e.ready); on a miss the caller owns running the solve via run.
func (p *Plan) lookup(q Query) (e *entry, hit bool) {
	p.queries.Add(1)
	kp := keyPool.Get().(*[]byte)
	buf := appendQueryKey((*kp)[:0], q)

	p.mu.Lock()
	if el, ok := p.memo[string(buf)]; ok {
		e = el.Value.(*entry)
		p.lru.MoveToFront(el)
		p.hits.Add(1)
		p.mu.Unlock()
		*kp = buf
		keyPool.Put(kp)
		return e, true
	}
	e = &entry{key: string(buf), ready: make(chan struct{})}
	p.memo[e.key] = p.lru.PushFront(e)
	for len(p.memo) > memoCap {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.memo, back.Value.(*entry).key)
		p.evictions.Add(1)
	}
	p.mu.Unlock()
	*kp = buf
	keyPool.Put(kp)
	return e, false
}

// run executes the solve for a freshly installed entry and publishes the
// result, converting a panic into an error confined to this key.
func (p *Plan) run(e *entry, q Query) {
	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("plan: query panicked: %v\n%s", r, debug.Stack())
		}
		close(e.ready)
	}()
	e.res, e.err = core.SolvePrepared(&p.inst, p.cls, p.Request(q))
}

// degradedSolve is the reduced-effort fallback taken when a wall-clock
// budget expires: it forces the heuristic path on NP-hard cells (ExactLimit
// 1; polynomial cells still run their fast theorem algorithm unchanged)
// with a small annealing budget, and tags the result Preempted. Preempted
// results are never memoized — whether a deadline fired depends on
// scheduler timing, so caching one would poison budget-free callers of the
// same query key. A failure of the fallback itself is reported as
// context.DeadlineExceeded: the budget expired and the quick path could not
// produce a trustworthy verdict (the heuristic's "infeasible" is not a
// proof), so clients should retry with a larger budget.
func (p *Plan) degradedSolve(q Query) (core.Result, error) {
	p.degraded.Add(1)
	dq := q
	dq.ExactLimit = 1
	// The annealing budget is forced down even when the query tuned its
	// own: a query whose HeurIters made the full solve slow must not make
	// the "quick" fallback just as slow.
	dq.HeurIters = degradedHeurIters
	dq.HeurRestarts = 1
	res, err := core.SolvePrepared(&p.inst, p.cls, p.Request(dq))
	if err != nil {
		return core.Result{}, fmt.Errorf("plan: solve budget expired: %w (degraded fallback: %v)", context.DeadlineExceeded, err)
	}
	res.Preempted = true
	return res, nil
}

// cloneQuery deep-copies the query's bound slices (the only reference
// fields) for handoff to a background solve.
func cloneQuery(q Query) Query {
	if q.PeriodBounds != nil {
		q.PeriodBounds = append([]float64(nil), q.PeriodBounds...)
	}
	if q.LatencyBounds != nil {
		q.LatencyBounds = append([]float64(nil), q.LatencyBounds...)
	}
	return q
}

// cloneStored hands out an independent copy of a memoized success; failures
// keep the zero Result untouched (cloning would turn nil slices into empty
// ones, breaking bit-identity with a direct core.Solve call). It is the
// steady-state cost of a memo hit, so the copy is packed into three backing
// allocations (apps, intervals, metric floats) instead of one per slice —
// nil-ness of every slice is preserved, and full-capacity reslicing keeps
// the handed-out slices append-safe for callers.
func cloneStored(res core.Result, err error) core.Result {
	if err != nil {
		return res
	}
	c := res
	if res.Mapping.Apps != nil {
		apps := make([]mapping.AppMapping, len(res.Mapping.Apps))
		total := 0
		for i := range res.Mapping.Apps {
			total += len(res.Mapping.Apps[i].Intervals)
		}
		backing := make([]mapping.PlacedInterval, total)
		off := 0
		for i := range res.Mapping.Apps {
			src := res.Mapping.Apps[i].Intervals
			if src == nil {
				continue
			}
			dst := backing[off : off+len(src) : off+len(src)]
			copy(dst, src)
			apps[i].Intervals = dst
			off += len(src)
		}
		c.Mapping.Apps = apps
	}
	np, nl := len(res.Metrics.AppPeriods), len(res.Metrics.AppLatencies)
	if res.Metrics.AppPeriods != nil || res.Metrics.AppLatencies != nil {
		floats := make([]float64, np+nl)
		if res.Metrics.AppPeriods != nil {
			c.Metrics.AppPeriods = floats[0:np:np]
			copy(c.Metrics.AppPeriods, res.Metrics.AppPeriods)
		}
		if res.Metrics.AppLatencies != nil {
			c.Metrics.AppLatencies = floats[np : np+nl : np+nl]
			copy(c.Metrics.AppLatencies, res.Metrics.AppLatencies)
		}
	}
	return c
}

// Stats is a point-in-time snapshot of a plan's query counters.
type Stats struct {
	// Queries counts Solve calls; Hits those answered by the memo
	// (including waits on an in-flight duplicate).
	Queries, Hits int64
	// Entries is the number of memoized query keys; Evictions how many
	// were dropped to keep the memo under its cap.
	Entries   int
	Evictions int64
	// Degraded counts SolveCtx calls whose budget expired before the full
	// solve finished, answered by the reduced-effort degraded path.
	Degraded int64
}

// HitRate returns Hits / Queries, or 0 before any query.
func (s Stats) HitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Queries)
}

// QueryStats returns a snapshot of the plan's counters.
func (p *Plan) QueryStats() Stats {
	p.mu.Lock()
	n := len(p.memo)
	p.mu.Unlock()
	return Stats{
		Queries:   p.queries.Load(),
		Hits:      p.hits.Load(),
		Entries:   n,
		Evictions: p.evictions.Load(),
		Degraded:  p.degraded.Load(),
	}
}

// ParetoCandidates returns the exact candidate set of achievable weighted
// global period values for the plan's rule, computed once per plan and
// shared thereafter (read-only). It is meaningful on the platform classes
// where the paper's bi-criteria sweeps are polynomial: interval mappings on
// fully homogeneous platforms (every W_a times the cycle time of any stage
// interval at any common speed) and one-to-one mappings on communication
// homogeneous platforms (every W_a times any single stage's cycle time at
// any processor mode).
func (p *Plan) ParetoCandidates() []float64 {
	p.candsOnce.Do(func() {
		if p.rule == mapping.Interval {
			p.cands = p.intervalCandidates()
		} else {
			p.cands = p.oneToOneCandidates()
		}
	})
	return p.cands
}

// intervalCandidates enumerates W_a * cycle time of every stage interval at
// every common speed (fully homogeneous platforms).
func (p *Plan) intervalCandidates() []float64 {
	speeds := p.inst.Platform.Processors[0].Speeds
	b, _ := p.inst.Platform.HomogeneousLinks()
	var cands []float64
	for a := range p.inst.Apps {
		w := p.inst.Apps[a].EffectiveWeight()
		app := &p.inst.Apps[a]
		pre := p.prefixes[a]
		n := app.NumStages()
		for _, s := range speeds {
			for f := 0; f < n; f++ {
				for t := f; t < n; t++ {
					in, out := 0.0, 0.0
					if v := app.InputSize(f); v > 0 {
						in = v / b
					}
					if v := app.OutputSize(t); v > 0 {
						out = v / b
					}
					cands = append(cands, w*mapping.IntervalCost(p.model, in, (pre[t+1]-pre[f])/s, out))
				}
			}
		}
	}
	return fmath.SortedUnique(cands)
}

// oneToOneCandidates enumerates W_a * any single stage's cycle time at any
// processor mode (communication homogeneous platforms).
func (p *Plan) oneToOneCandidates() []float64 {
	b, _ := p.inst.Platform.HomogeneousLinks()
	var cands []float64
	for a := range p.inst.Apps {
		app := &p.inst.Apps[a]
		w := app.EffectiveWeight()
		for k := range app.Stages {
			in, out := 0.0, 0.0
			if v := app.InputSize(k); v > 0 {
				in = v / b
			}
			if v := app.OutputSize(k); v > 0 {
				out = v / b
			}
			for u := range p.inst.Platform.Processors {
				for _, s := range p.inst.Platform.Processors[u].Speeds {
					cands = append(cands, w*mapping.IntervalCost(p.model, in, app.Stages[k].Work/s, out))
				}
			}
		}
	}
	return fmath.SortedUnique(cands)
}

// appendQueryKey appends a canonical binary encoding of the query to dst:
// every field is written with an explicit presence/length tag so no two
// distinct queries share an encoding (floats as IEEE-754 bit patterns, nil
// slices distinguished from empty ones — "unconstrained" differs from
// "constrained by an empty array" to the solver's bound checks).
func appendQueryKey(dst []byte, q Query) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(q.Objective))
	dst = appendFloats(dst, q.PeriodBounds)
	dst = appendFloats(dst, q.LatencyBounds)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(q.EnergyBudget))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(q.ExactLimit))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(q.Seed))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(q.HeurIters))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(q.HeurRestarts))
	return dst
}

func appendFloats(dst []byte, xs []float64) []byte {
	if xs == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(xs)))
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}
