package onetoone

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/algo/exact"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// smallCommHom draws a random communication homogeneous instance with
// enough processors for a one-to-one mapping, small enough for the oracle.
func smallCommHom(rng *rand.Rand) pipeline.Instance {
	cfg := workload.Config{
		Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 3,
		Procs: 1, Modes: 1 + rng.Intn(3),
		Class: pipeline.CommHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 7,
	}
	inst := workload.MustInstance(rng, cfg)
	// Re-generate the platform with p >= N (+ a few spare processors).
	cfg.Procs = inst.TotalStages() + rng.Intn(2)
	inst.Platform = workload.Platform(rng, cfg)
	if err := inst.Validate(); err != nil {
		panic(err)
	}
	return inst
}

// TestMinPeriodCommHomMatchesOracle verifies Theorem 1 on random
// communication homogeneous instances under both communication models,
// with and without weights.
func TestMinPeriodCommHomMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 60; trial++ {
		inst := smallCommHom(rng)
		if trial%3 == 0 {
			inst.Apps[0].Weight = float64(1 + rng.Intn(3))
		}
		for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
			m, got, err := MinPeriodCommHom(&inst, model)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := m.Validate(&inst, mapping.OneToOne); err != nil {
				t.Fatalf("trial %d: invalid mapping: %v", trial, err)
			}
			if !fmath.EQ(mapping.Period(&inst, &m, model), got) {
				t.Fatalf("trial %d: reported %g but mapping period is %g", trial, got, mapping.Period(&inst, &m, model))
			}
			want, err := exact.MinPeriod(&inst, mapping.OneToOne, model)
			if err != nil {
				t.Fatalf("trial %d oracle: %v", trial, err)
			}
			if !fmath.EQ(got, want.Value) {
				t.Fatalf("trial %d (%v): period %g, oracle %g", trial, model, got, want.Value)
			}
		}
	}
}

// TestGreedyUsesFastestProcessors checks the slowest-first greedy picks a
// workable assignment even when only the fastest processors can meet the
// optimal period.
func TestGreedyUsesFastestProcessors(t *testing.T) {
	// Stage works 4 and 4, processors of speeds 1, 1, 4, 4: period 1 is
	// achievable only on the two fast processors.
	inst := pipeline.Instance{
		Apps: []pipeline.Application{{Stages: []pipeline.Stage{{Work: 4}, {Work: 4}}, Weight: 1}},
		Platform: pipeline.NewCommHomogeneousPlatform(
			[][]float64{{1}, {1}, {4}, {4}}, 1, 1),
		Energy: pipeline.DefaultEnergy,
	}
	m, got, err := MinPeriodCommHom(&inst, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(got, 1) {
		t.Errorf("period = %g, want 1", got)
	}
	for _, iv := range m.Apps[0].Intervals {
		if iv.Proc != 2 && iv.Proc != 3 {
			t.Errorf("stage placed on slow processor %d", iv.Proc)
		}
	}
}

func TestMinLatencyFullyHom(t *testing.T) {
	inst := pipeline.Instance{
		Apps: []pipeline.Application{
			{In: 1, Stages: []pipeline.Stage{{Work: 2, Out: 3}, {Work: 4, Out: 1}}, Weight: 1},
		},
		Platform: pipeline.NewHomogeneousPlatform(3, []float64{2}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	m, got, err := MinLatencyFullyHom(&inst)
	if err != nil {
		t.Fatal(err)
	}
	// Latency = 1/1 + 2/2 + 3/1 + 4/2 + 1/1 = 8, whatever the placement.
	if !fmath.EQ(got, 8) {
		t.Errorf("latency = %g, want 8", got)
	}
	want, err := exact.MinLatency(&inst, mapping.OneToOne)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(got, want.Value) {
		t.Errorf("latency %g, oracle %g", got, want.Value)
	}
	if err := m.Validate(&inst, mapping.OneToOne); err != nil {
		t.Errorf("invalid mapping: %v", err)
	}
}

// TestAllOneToOneEquivalentFullyHom property: on fully homogeneous
// platforms every one-to-one mapping has the same latency (Theorem 8) and
// the same period (any permutation is optimal).
func TestAllOneToOneEquivalentFullyHom(t *testing.T) {
	rng := rand.New(rand.NewSource(1111))
	for trial := 0; trial < 20; trial++ {
		cfg := workload.Config{
			Apps: 1, MinStages: 2, MaxStages: 3,
			Procs: 4, Modes: 1,
			Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 5,
		}
		inst := workload.MustInstance(rng, cfg)
		var lats []float64
		err := exact.Enumerate(&inst, exact.Options{Rule: mapping.OneToOne, Modes: exact.FastestOnly}, func(m *mapping.Mapping) {
			lats = append(lats, mapping.Latency(&inst, m))
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lats {
			if !fmath.EQ(l, lats[0]) {
				t.Fatalf("trial %d: one-to-one latencies differ on fully hom platform: %v", trial, lats)
			}
		}
	}
}

func TestMinPeriodLatencyFullyHom(t *testing.T) {
	inst := pipeline.Instance{
		Apps: []pipeline.Application{
			{In: 1, Stages: []pipeline.Stage{{Work: 2, Out: 3}, {Work: 4, Out: 1}}, Weight: 1},
		},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{2}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	m, tp, lat, err := MinPeriodLatencyFullyHom(&inst, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(tp, mapping.Period(&inst, &m, pipeline.Overlap)) || !fmath.EQ(lat, mapping.Latency(&inst, &m)) {
		t.Error("reported metrics disagree with mapping")
	}
	wantT, err := exact.MinPeriod(&inst, mapping.OneToOne, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(tp, wantT.Value) {
		t.Errorf("period %g, oracle %g", tp, wantT.Value)
	}
}

func TestPreconditionErrors(t *testing.T) {
	inst := pipeline.MotivatingExample() // 7 stages, 3 processors
	if _, _, err := MinPeriodCommHom(&inst, pipeline.Overlap); !errors.Is(err, ErrWrongPlatform) {
		t.Errorf("undersized platform: %v", err)
	}
	het := inst.Clone()
	het.Platform.Bandwidth[0][1] = 5
	het.Platform.Bandwidth[1][0] = 5
	if _, _, err := MinPeriodCommHom(&het, pipeline.Overlap); !errors.Is(err, ErrWrongPlatform) {
		t.Errorf("heterogeneous platform: %v", err)
	}
	if _, _, err := MinLatencyFullyHom(&inst); !errors.Is(err, ErrWrongPlatform) {
		t.Errorf("comm-hom platform for fully-hom algorithm: %v", err)
	}
}
