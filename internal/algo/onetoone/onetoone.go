// Package onetoone implements the paper's polynomial algorithms for
// one-to-one mappings: Theorem 1's binary search plus greedy assignment for
// period minimization on communication homogeneous platforms, and the
// trivial fully homogeneous cases for latency (Theorem 8) and bi-criteria
// period/latency (Theorem 14).
package onetoone

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// ErrWrongPlatform is returned when preconditions on the platform (class or
// processor count) do not hold.
var ErrWrongPlatform = errors.New("onetoone: platform does not satisfy the algorithm's preconditions")

// stageRef identifies one stage of one application.
type stageRef struct{ app, k int }

// allStages lists every stage of every application.
func allStages(inst *pipeline.Instance) []stageRef {
	var out []stageRef
	for a := range inst.Apps {
		for k := 0; k < inst.Apps[a].NumStages(); k++ {
			out = append(out, stageRef{a, k})
		}
	}
	return out
}

// stageCycle returns W_a times the cycle time of stage k of application a
// executed at speed s with uniform bandwidth b: Equation 3 or 4 restricted
// to a single stage.
func stageCycle(inst *pipeline.Instance, r stageRef, s, b float64, model pipeline.CommModel) float64 {
	app := &inst.Apps[r.app]
	in := comm(app.InputSize(r.k), b)
	out := comm(app.OutputSize(r.k), b)
	comp := app.Stages[r.k].Work / s
	return app.EffectiveWeight() * mapping.IntervalCost(model, in, comp, out)
}

func comm(vol, b float64) float64 {
	if vol == 0 {
		return 0
	}
	return vol / b
}

// MinPeriodCommHom implements Theorem 1: the one-to-one mapping minimizing
// the weighted global period max_a W_a*T_a on a communication homogeneous
// platform, in polynomial time. It binary-searches the candidate period set
// {W_a * cycle(stage, processor)} and tests feasibility with the greedy
// assignment procedure (Algorithm 1): keep the N fastest processors,
// scan them from slowest to fastest, and give each any free stage it can
// process within the tested period. Processors run at their fastest mode.
func MinPeriodCommHom(inst *pipeline.Instance, model pipeline.CommModel) (mapping.Mapping, float64, error) {
	if cls := inst.Platform.Classify(); cls == pipeline.FullyHeterogeneous {
		return mapping.Mapping{}, 0, fmt.Errorf("%w: want communication homogeneous, have %v", ErrWrongPlatform, cls)
	}
	stages := allStages(inst)
	n := len(stages)
	p := inst.Platform.NumProcessors()
	if p < n {
		return mapping.Mapping{}, 0, fmt.Errorf("%w: one-to-one needs p >= N (%d < %d)", ErrWrongPlatform, p, n)
	}
	b, _ := inst.Platform.HomogeneousLinks()

	// Keep the N fastest processors, slowest first.
	procIdx := make([]int, p)
	for i := range procIdx {
		procIdx[i] = i
	}
	sort.Slice(procIdx, func(i, j int) bool {
		return inst.Platform.Processors[procIdx[i]].MaxSpeed() < inst.Platform.Processors[procIdx[j]].MaxSpeed()
	})
	procs := procIdx[p-n:]

	cands := make([]float64, 0, n*n)
	for _, r := range stages {
		for _, u := range procs {
			cands = append(cands, stageCycle(inst, r, inst.Platform.Processors[u].MaxSpeed(), b, model))
		}
	}
	cands = fmath.SortedUnique(cands)

	greedy := func(limit float64) ([]int, bool) {
		asg := make([]int, n) // stage index -> processor
		taken := make([]bool, n)
		for _, u := range procs {
			s := inst.Platform.Processors[u].MaxSpeed()
			found := -1
			for i, r := range stages {
				if !taken[i] && fmath.LE(stageCycle(inst, r, s, b, model), limit) {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, false
			}
			taken[found] = true
			asg[found] = u
		}
		return asg, true
	}

	lo, hi := 0, len(cands)-1
	var bestAsg []int
	bestT := math.Inf(1)
	for lo <= hi {
		mid := (lo + hi) / 2
		if asg, ok := greedy(cands[mid]); ok {
			bestAsg, bestT = asg, cands[mid]
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if bestAsg == nil {
		// Cannot happen: the largest candidate is always feasible (assign
		// stages in any order; every cycle is bounded by the max).
		return mapping.Mapping{}, 0, fmt.Errorf("onetoone: internal error, no feasible candidate")
	}
	return buildMapping(inst, stages, bestAsg), bestT, nil
}

// buildMapping assembles a one-to-one mapping from a stage->processor
// assignment, every processor at its fastest mode.
func buildMapping(inst *pipeline.Instance, stages []stageRef, asg []int) mapping.Mapping {
	m := mapping.Mapping{Apps: make([]mapping.AppMapping, len(inst.Apps))}
	for i, r := range stages {
		u := asg[i]
		m.Apps[r.app].Intervals = append(m.Apps[r.app].Intervals, mapping.PlacedInterval{
			From: r.k, To: r.k, Proc: u, Mode: inst.Platform.Processors[u].NumModes() - 1,
		})
	}
	return m
}

// MinLatencyFullyHom implements Theorem 8: on fully homogeneous platforms
// every one-to-one mapping has the same latency (identical processors,
// identical links), so any assignment of the N stages to N processors at
// top speed is optimal.
func MinLatencyFullyHom(inst *pipeline.Instance) (mapping.Mapping, float64, error) {
	m, err := anyFullyHom(inst)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	return m, mapping.Latency(inst, &m), nil
}

// MinPeriodLatencyFullyHom implements Theorem 14: on fully homogeneous
// platforms all one-to-one mappings are equivalent, so the same mapping
// simultaneously minimizes period and latency; the bi-criteria problem is
// solved by checking the bounds on that mapping.
func MinPeriodLatencyFullyHom(inst *pipeline.Instance, model pipeline.CommModel) (mapping.Mapping, float64, float64, error) {
	m, err := anyFullyHom(inst)
	if err != nil {
		return mapping.Mapping{}, 0, 0, err
	}
	return m, mapping.Period(inst, &m, model), mapping.Latency(inst, &m), nil
}

func anyFullyHom(inst *pipeline.Instance) (mapping.Mapping, error) {
	if cls := inst.Platform.Classify(); cls != pipeline.FullyHomogeneous {
		return mapping.Mapping{}, fmt.Errorf("%w: want fully homogeneous, have %v", ErrWrongPlatform, cls)
	}
	stages := allStages(inst)
	if p := inst.Platform.NumProcessors(); p < len(stages) {
		return mapping.Mapping{}, fmt.Errorf("%w: one-to-one needs p >= N (%d < %d)", ErrWrongPlatform, p, len(stages))
	}
	asg := make([]int, len(stages))
	for i := range asg {
		asg[i] = i
	}
	return buildMapping(inst, stages, asg), nil
}
