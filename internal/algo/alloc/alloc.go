// Package alloc implements the paper's Algorithm 2: the greedy incremental
// distribution of identical processors among concurrent applications that
// underlies Theorems 3, 16 and 24 (and the replication extension). It is
// optimal whenever each application's objective curve is non-increasing in
// its processor count and the global objective is the maximum of the
// per-application values.
package alloc

import "math"

// Allocate distributes p identical processors among the applications, where
// curves[a][q-1] is the (already weighted) objective value of application a
// with at most q processors, non-increasing in q. Starting from one
// processor each, it repeatedly grants one more processor to the
// application with the maximum current value, stopping early when the
// bottleneck application cannot improve. It returns the per-application
// processor counts and the achieved max value.
func Allocate(curves [][]float64, p int) ([]int, float64) {
	a := len(curves)
	counts := make([]int, a)
	vals := make([]float64, a)
	for i := range curves {
		counts[i] = 1
		vals[i] = curves[i][0]
	}
	for extra := p - a; extra > 0; extra-- {
		amax := 0
		for i := 1; i < a; i++ {
			if vals[i] > vals[amax] {
				amax = i
			}
		}
		c := curves[amax]
		// The bottleneck application cannot improve with more processors:
		// the global objective is settled.
		// An exact comparison only risks a harmless extra refinement pass; a
		// tolerant GE could stop before the bottleneck truly settles.
		//lint:allow floatcmp exact settling test; curve values share one arithmetic path
		if counts[amax] >= len(c) || c[len(c)-1] >= vals[amax] {
			break
		}
		counts[amax]++
		vals[amax] = c[counts[amax]-1]
	}
	value := math.Inf(-1)
	for i := range vals {
		value = math.Max(value, vals[i])
	}
	return counts, value
}

// CombineAdditive is the Theorem 21 dynamic program: given per-application
// cost curves (curves[a][q-1] = minimal cost of application a with at most
// q processors, +Inf when infeasible), find the per-application processor
// counts summing to at most p that minimize the *total* cost. It is the
// additive-objective counterpart of Allocate.
func CombineAdditive(curves [][]float64, p int) (counts []int, total float64, ok bool) {
	nApps := len(curves)
	f := make([][]float64, nApps+1)
	choice := make([][]int, nApps+1)
	for i := range f {
		f[i] = make([]float64, p+1)
		choice[i] = make([]int, p+1)
		for j := range f[i] {
			f[i][j] = math.Inf(1)
			choice[i][j] = -1
		}
	}
	for k := 0; k <= p; k++ {
		f[0][k] = 0
	}
	for a := 1; a <= nApps; a++ {
		curve := curves[a-1]
		for k := a; k <= p; k++ {
			for q := 1; q <= len(curve) && q <= k-(a-1); q++ {
				if math.IsInf(curve[q-1], 1) || math.IsInf(f[a-1][k-q], 1) {
					continue
				}
				if v := f[a-1][k-q] + curve[q-1]; v < f[a][k] {
					f[a][k] = v
					choice[a][k] = q
				}
			}
		}
	}
	if math.IsInf(f[nApps][p], 1) {
		return nil, math.Inf(1), false
	}
	counts = make([]int, nApps)
	k := p
	for a := nApps; a >= 1; a-- {
		q := choice[a][k]
		counts[a-1] = q
		k -= q
	}
	return counts, f[nApps][p], true
}
