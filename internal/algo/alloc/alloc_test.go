package alloc

import (
	"math"
	"math/rand"
	"testing"
)

func TestAllocateBasics(t *testing.T) {
	// One application: gets everything it can use.
	counts, v := Allocate([][]float64{{9, 4, 2}}, 3)
	if counts[0] != 3 || v != 2 {
		t.Errorf("single app: counts=%v v=%g", counts, v)
	}
	// Exact fit: one processor each.
	counts, v = Allocate([][]float64{{5}, {7}}, 2)
	if counts[0] != 1 || counts[1] != 1 || v != 7 {
		t.Errorf("exact fit: counts=%v v=%g", counts, v)
	}
}

func TestAllocateGreedyBottleneck(t *testing.T) {
	curves := [][]float64{
		{10, 5, 2, 1},
		{4, 4, 4, 4},
	}
	counts, v := Allocate(curves, 4)
	if counts[0] != 3 || counts[1] != 1 || v != 4 {
		t.Errorf("counts=%v v=%g, want [3 1] 4", counts, v)
	}
}

func TestAllocateEarlyStopOnFlatBottleneck(t *testing.T) {
	curves := [][]float64{
		{9, 9, 9}, // cannot improve
		{1, 0.5, 0.1},
	}
	counts, v := Allocate(curves, 6)
	if v != 9 {
		t.Errorf("value = %g, want 9", v)
	}
	if counts[0]+counts[1] > 6 {
		t.Errorf("over-allocated: %v", counts)
	}
}

func TestAllocateInfiniteEntriesGrow(t *testing.T) {
	// App 0 infeasible below 3 processors.
	inf := math.Inf(1)
	curves := [][]float64{
		{inf, inf, 4, 3},
		{5, 5, 5, 5},
	}
	counts, v := Allocate(curves, 5)
	if counts[0] < 3 {
		t.Errorf("infeasible prefix not grown past: %v", counts)
	}
	if v != 5 {
		t.Errorf("value = %g, want 5", v)
	}
}

// TestAllocateOptimalVsBruteForce: on random non-increasing curves the
// greedy allocation matches exhaustive enumeration of processor splits,
// the optimality claim of Algorithm 2.
func TestAllocateOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 300; trial++ {
		nApps := 1 + rng.Intn(3)
		p := nApps + rng.Intn(5)
		curves := make([][]float64, nApps)
		for a := range curves {
			length := p - nApps + 1
			curves[a] = make([]float64, length)
			v := float64(5 + rng.Intn(30))
			for q := 0; q < length; q++ {
				curves[a][q] = v
				if rng.Intn(2) == 0 {
					v -= float64(rng.Intn(5))
					if v < 0 {
						v = 0
					}
				}
			}
		}
		_, got := Allocate(curves, p)
		want := bruteAllocate(curves, p)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: greedy %g, brute force %g (curves %v, p=%d)", trial, got, want, curves, p)
		}
	}
}

// bruteAllocate enumerates every split of p processors.
func bruteAllocate(curves [][]float64, p int) float64 {
	best := math.Inf(1)
	var rec func(a, left int, cur float64)
	rec = func(a, left int, cur float64) {
		if cur >= best {
			return
		}
		if a == len(curves) {
			best = cur
			return
		}
		remainingApps := len(curves) - a - 1
		for q := 1; q <= left-remainingApps && q <= len(curves[a]); q++ {
			rec(a+1, left-q, math.Max(cur, curves[a][q-1]))
		}
	}
	rec(0, p, math.Inf(-1))
	return best
}
