package heur

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algo/exact"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func smallHet(rng *rand.Rand, apps, procs, modes int) pipeline.Instance {
	cfg := workload.Config{
		Apps: apps, MinStages: 1, MaxStages: 3,
		Procs: procs, Modes: modes,
		Class: pipeline.FullyHeterogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 6, MaxBandwidth: 3,
	}
	return workload.MustInstance(rng, cfg)
}

// TestHeurPeriodGapOnHetPlatforms measures the optimality gap of the
// heuristic on the NP-hard fully heterogeneous period problem. The
// heuristic must always be valid and never worse than 1.5x the optimum on
// these small instances, and usually optimal.
func TestHeurPeriodGapOnHetPlatforms(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	optimalHits, trials := 0, 30
	for trial := 0; trial < trials; trial++ {
		inst := smallHet(rng, 1+rng.Intn(2), 3+rng.Intn(2), 1)
		model := []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap}[trial%2]
		for _, rule := range []mapping.Rule{mapping.Interval, mapping.OneToOne} {
			if rule == mapping.OneToOne && inst.TotalStages() > inst.Platform.NumProcessors() {
				continue
			}
			m, got, err := MinPeriod(rng, &inst, rule, model, Options{Iters: 1500, Restarts: 2})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := m.Validate(&inst, rule); err != nil {
				t.Fatalf("trial %d: invalid mapping: %v", trial, err)
			}
			if !fmath.EQ(mapping.Period(&inst, &m, model), got) {
				t.Fatalf("trial %d: value/mapping mismatch", trial)
			}
			want, err := exact.MinPeriod(&inst, rule, model)
			if err != nil {
				t.Fatalf("trial %d oracle: %v", trial, err)
			}
			if fmath.LT(got, want.Value) {
				t.Fatalf("trial %d: heuristic %g beats the optimum %g — oracle bug", trial, got, want.Value)
			}
			if got > want.Value*1.5+fmath.Eps {
				t.Errorf("trial %d (%v/%v): heuristic %g vs optimum %g exceeds 1.5x gap", trial, rule, model, got, want.Value)
			}
			if fmath.EQ(got, want.Value) {
				optimalHits++
			}
		}
	}
	if optimalHits < trials {
		t.Logf("heuristic optimal on %d problem instances (2 rules x %d trials)", optimalHits, trials)
	}
	if optimalHits < trials/2 {
		t.Errorf("heuristic optimal on only %d instances; expected at least %d", optimalHits, trials/2)
	}
}

// TestHeurLatencyGap does the same for the NP-hard latency problems.
func TestHeurLatencyGap(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 20; trial++ {
		inst := smallHet(rng, 1+rng.Intn(2), 4, 1)
		m, got, err := MinLatency(rng, &inst, mapping.Interval, Options{Iters: 1500, Restarts: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := m.Validate(&inst, mapping.Interval); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := exact.MinLatency(&inst, mapping.Interval)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fmath.LT(got, want.Value) {
			t.Fatalf("trial %d: heuristic %g beats optimum %g", trial, got, want.Value)
		}
		if got > want.Value*1.5+fmath.Eps {
			t.Errorf("trial %d: latency gap too large: %g vs %g", trial, got, want.Value)
		}
	}
}

// TestHeurTriCriteria exercises the NP-hard multi-modal tri-criteria
// problem (Theorem 26): energy minimization under period and latency
// bounds, compared against the exact solver.
func TestHeurTriCriteria(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	solved := 0
	for trial := 0; trial < 20; trial++ {
		inst := smallHet(rng, 1, 3, 2)
		model := pipeline.Overlap
		// Derive workable bounds from the period-optimal mapping.
		opt, err := exact.MinPeriod(&inst, mapping.Interval, model)
		if err != nil {
			t.Fatal(err)
		}
		perBounds := []float64{opt.Value * 1.5}
		latBounds := []float64{mapping.Latency(&inst, &opt.Mapping) * 2}
		want, werr := exact.MinEnergyGivenPeriodLatency(&inst, mapping.Interval, model, perBounds, latBounds)
		m, got, err := MinEnergyGivenPeriodLatency(rng, &inst, mapping.Interval, model, perBounds, latBounds, Options{Iters: 2500, Restarts: 3})
		if werr != nil {
			continue // bound infeasible: heuristic may legitimately fail too
		}
		if err != nil {
			t.Errorf("trial %d: heuristic failed on feasible instance: %v", trial, err)
			continue
		}
		solved++
		if err := m.Validate(&inst, mapping.Interval); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fmath.LT(got, want.Value) {
			t.Fatalf("trial %d: heuristic energy %g beats optimum %g", trial, got, want.Value)
		}
		if got > want.Value*1.5+fmath.Eps {
			t.Errorf("trial %d: energy gap too large: %g vs optimum %g", trial, got, want.Value)
		}
		for a := range inst.Apps {
			if tp := mapping.AppPeriod(&inst, &m, a, model); !fmath.LE(tp, perBounds[a]) {
				t.Errorf("trial %d: period bound violated", trial)
			}
			if l := mapping.AppLatency(&inst, &m, a); !fmath.LE(l, latBounds[a]) {
				t.Errorf("trial %d: latency bound violated", trial)
			}
		}
	}
	if solved == 0 {
		t.Fatal("no feasible tri-criteria instances generated")
	}
}

// TestHeurDeterministicWithSeed: two runs with the same seed agree.
func TestHeurDeterministicWithSeed(t *testing.T) {
	inst := workload.StreamingCenter(6)
	run := func() float64 {
		rng := rand.New(rand.NewSource(99))
		_, v, err := MinPeriod(rng, &inst, mapping.Interval, pipeline.Overlap, Options{Iters: 800, Restarts: 2})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic heuristic: %g vs %g", a, b)
	}
}

// TestHeurOnLargePlatform: the heuristic must run on sizes far beyond the
// oracle and produce a sane result (period at least the trivial lower
// bound: bottleneck stage work over fastest speed).
func TestHeurOnLargePlatform(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	cfg := workload.Config{
		Apps: 4, MinStages: 4, MaxStages: 10,
		Procs: 24, Modes: 3,
		Class: pipeline.FullyHeterogeneous, MaxWork: 20, MaxData: 8, MaxSpeed: 10, MaxBandwidth: 5,
	}
	inst := workload.MustInstance(rng, cfg)
	m, got, err := MinPeriod(rng, &inst, mapping.Interval, pipeline.Overlap, Options{Iters: 3000, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(&inst, mapping.Interval); err != nil {
		t.Fatal(err)
	}
	var maxSpeed float64
	for i := range inst.Platform.Processors {
		maxSpeed = math.Max(maxSpeed, inst.Platform.Processors[i].MaxSpeed())
	}
	lower := 0.0
	for a := range inst.Apps {
		for _, st := range inst.Apps[a].Stages {
			lower = math.Max(lower, inst.Apps[a].EffectiveWeight()*st.Work/maxSpeed)
		}
	}
	if fmath.LT(got, lower) {
		t.Errorf("heuristic period %g below the bottleneck lower bound %g", got, lower)
	}
}

func TestHeurErrors(t *testing.T) {
	inst := pipeline.MotivatingExample() // 7 stages, 3 procs
	rng := rand.New(rand.NewSource(1))
	if _, _, err := MinPeriod(rng, &inst, mapping.OneToOne, pipeline.Overlap, Options{}); err == nil {
		t.Error("one-to-one on undersized platform accepted")
	}
	tiny := pipeline.Instance{
		Apps: []pipeline.Application{
			pipeline.NewUniformApplication("a", 2, 1),
			pipeline.NewUniformApplication("b", 2, 1),
		},
		Platform: pipeline.NewHomogeneousPlatform(1, []float64{1}, 1, 2),
		Energy:   pipeline.DefaultEnergy,
	}
	if _, _, err := MinPeriod(rng, &tiny, mapping.Interval, pipeline.Overlap, Options{}); err == nil {
		t.Error("more applications than processors accepted")
	}
}

// TestSpeedDownReachesSlowModes: with loose bounds, the tri-criteria
// heuristic must settle in low modes (energy close to the static floor).
func TestSpeedDownReachesSlowModes(t *testing.T) {
	inst := pipeline.Instance{
		Apps:     []pipeline.Application{pipeline.NewUniformApplication("a", 3, 1)},
		Platform: pipeline.NewCommHomogeneousPlatform([][]float64{{1, 8}, {1, 8}, {1, 8}}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	rng := rand.New(rand.NewSource(5))
	m, e, err := MinEnergyGivenPeriodLatency(rng, &inst, mapping.Interval, pipeline.Overlap,
		[]float64{100}, []float64{100}, Options{Iters: 1500, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: whole app on one processor at speed 1 => energy 1.
	if !fmath.EQ(e, 1) {
		t.Errorf("energy = %g, want 1 (mapping %v)", e, m.String())
	}
}

// TestAnnealingImprovesOnGreedy: across a batch of het instances, the full
// pipeline (greedy + annealing + polish) must be at least as good as the
// deterministic greedy construction alone on every instance, and strictly
// better on some — the ablation justifying the annealing stage.
func TestAnnealingImprovesOnGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	strictly := 0
	for trial := 0; trial < 15; trial++ {
		cfg := workload.Config{
			Apps: 2, MinStages: 3, MaxStages: 5, Procs: 8, Modes: 2,
			Class: pipeline.FullyHeterogeneous, MaxWork: 10, MaxData: 5, MaxSpeed: 8, MaxBandwidth: 4,
		}
		inst := workload.MustInstance(rng, cfg)
		obj := func(m *mapping.Mapping) float64 { return mapping.Period(&inst, m, pipeline.Overlap) }
		greedyOnly, err := initial(rand.New(rand.NewSource(1)), &inst, mapping.Interval, 0)
		if err != nil {
			t.Fatal(err)
		}
		greedyV := obj(&greedyOnly)
		_, fullV, err := MinPeriod(rand.New(rand.NewSource(1)), &inst, mapping.Interval, pipeline.Overlap,
			Options{Iters: 2000, Restarts: 2})
		if err != nil {
			t.Fatal(err)
		}
		if fmath.GT(fullV, greedyV) {
			t.Fatalf("trial %d: full pipeline %g worse than greedy alone %g", trial, fullV, greedyV)
		}
		if fmath.LT(fullV, greedyV) {
			strictly++
		}
	}
	if strictly == 0 {
		t.Error("annealing never improved on the greedy construction across 15 instances")
	}
}
