// Package heur provides practical heuristics for the problem variants the
// paper proves NP-hard: period or latency minimization on (fully)
// heterogeneous platforms, and the tri-criteria problem with multi-modal
// processors. The paper's conclusion announces polynomial-time heuristics
// for the tri-criteria problem as future work; this package implements
// them: greedy constructive mappings, a mode "speed-down" pass, and a
// simulated-annealing local search over the interval-mapping neighbourhood.
//
// All heuristics are deterministic given the caller's *rand.Rand seed, and
// the test suite measures their optimality gap against the exact solvers.
package heur

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// ErrNoMapping is returned when not even an initial feasible mapping could
// be constructed (for example, more applications than processors).
var ErrNoMapping = errors.New("heur: unable to construct an initial mapping")

// Objective scores a mapping; lower is better. Infeasible mappings must
// return +Inf.
type Objective func(m *mapping.Mapping) float64

// Options tunes the local search.
type Options struct {
	// Iters is the number of annealing steps per restart (default 4000).
	Iters int
	// Restarts is the number of independent searches (default 3).
	Restarts int
	// StartTemp and EndTemp bound the geometric cooling schedule,
	// relative to the initial objective value (defaults 0.2 and 1e-4).
	StartTemp, EndTemp float64
	// Rule restricts the neighbourhood: under mapping.OneToOne, only
	// moves preserving unit intervals are used.
	Rule mapping.Rule
}

func (o Options) withDefaults() Options {
	if o.Iters <= 0 {
		o.Iters = 4000
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	if o.StartTemp <= 0 {
		o.StartTemp = 0.2
	}
	if o.EndTemp <= 0 {
		o.EndTemp = 1e-4
	}
	return o
}

// Minimize runs the full heuristic pipeline (greedy construction, simulated
// annealing, speed-down polish) on an arbitrary objective. Infeasible
// mappings must score +Inf; the returned value is the best score reached,
// possibly +Inf when no feasible mapping was found.
func Minimize(rng *rand.Rand, inst *pipeline.Instance, rule mapping.Rule, obj Objective, opt Options) (mapping.Mapping, float64, error) {
	opt.Rule = rule
	return search(rng, inst, rule, obj, opt)
}

// MinPeriod heuristically minimizes the weighted global period on an
// arbitrary platform under either mapping rule.
func MinPeriod(rng *rand.Rand, inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, opt Options) (mapping.Mapping, float64, error) {
	opt.Rule = rule
	obj := func(m *mapping.Mapping) float64 { return mapping.Period(inst, m, model) }
	return search(rng, inst, rule, obj, opt)
}

// MinLatency heuristically minimizes the weighted global latency.
func MinLatency(rng *rand.Rand, inst *pipeline.Instance, rule mapping.Rule, opt Options) (mapping.Mapping, float64, error) {
	opt.Rule = rule
	obj := func(m *mapping.Mapping) float64 { return mapping.Latency(inst, m) }
	return search(rng, inst, rule, obj, opt)
}

// MinEnergyGivenPeriodLatency heuristically solves the NP-hard tri-criteria
// problem (Theorems 26-27): minimize energy subject to per-application
// period and latency bounds. It combines the local search with a greedy
// speed-down pass that repeatedly takes the single mode reduction (or
// interval merge) with the best energy saving that keeps all bounds.
func MinEnergyGivenPeriodLatency(rng *rand.Rand, inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, periodBounds, latencyBounds []float64, opt Options) (mapping.Mapping, float64, error) {
	opt.Rule = rule
	feasible := func(m *mapping.Mapping) bool {
		for a := range m.Apps {
			if !fmath.LE(mapping.AppPeriod(inst, m, a, model), periodBounds[a]) {
				return false
			}
			if !fmath.LE(mapping.AppLatency(inst, m, a), latencyBounds[a]) {
				return false
			}
		}
		return true
	}
	obj := func(m *mapping.Mapping) float64 {
		if !feasible(m) {
			return math.Inf(1)
		}
		return mapping.Energy(inst, m)
	}
	best, bestV, err := search(rng, inst, rule, obj, opt)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	if math.IsInf(bestV, 1) {
		return mapping.Mapping{}, 0, fmt.Errorf("heur: no feasible mapping found within the search budget")
	}
	// Final deterministic polish.
	speedDown(inst, &best, obj)
	return best, obj(&best), nil
}

// search runs restarts of (greedy init + speed-down + annealing).
func search(rng *rand.Rand, inst *pipeline.Instance, rule mapping.Rule, obj Objective, opt Options) (mapping.Mapping, float64, error) {
	opt = opt.withDefaults()
	var best mapping.Mapping
	bestV := math.Inf(1)
	haveBest := false
	for r := 0; r < opt.Restarts; r++ {
		m, err := initial(rng, inst, rule, r)
		if err != nil {
			return mapping.Mapping{}, 0, err
		}
		speedUpIfHelpful(inst, &m, obj)
		v := anneal(rng, inst, &m, obj, opt)
		speedDown(inst, &m, obj)
		v = obj(&m)
		if !haveBest || v < bestV {
			best, bestV, haveBest = m.Clone(), v, true
		}
	}
	if !haveBest {
		return mapping.Mapping{}, 0, ErrNoMapping
	}
	return best, bestV, nil
}

// initial builds a starting mapping. Round 0 is a deterministic greedy
// construction; later rounds randomize.
func initial(rng *rand.Rand, inst *pipeline.Instance, rule mapping.Rule, round int) (mapping.Mapping, error) {
	p := inst.Platform.NumProcessors()
	if rule == mapping.OneToOne {
		n := inst.TotalStages()
		if p < n {
			return mapping.Mapping{}, fmt.Errorf("%w: one-to-one needs p >= N (%d < %d)", ErrNoMapping, p, n)
		}
		// Heaviest stages on fastest processors (LPT-flavoured), or a
		// random permutation on later rounds.
		type ref struct {
			app, k int
			work   float64
		}
		var stages []ref
		for a := range inst.Apps {
			w := inst.Apps[a].EffectiveWeight()
			for k := range inst.Apps[a].Stages {
				stages = append(stages, ref{a, k, w * inst.Apps[a].Stages[k].Work})
			}
		}
		procs := procsBySpeed(inst)
		if round == 0 {
			sort.SliceStable(stages, func(i, j int) bool { return stages[i].work > stages[j].work })
		} else {
			rng.Shuffle(len(stages), func(i, j int) { stages[i], stages[j] = stages[j], stages[i] })
		}
		m := mapping.Mapping{Apps: make([]mapping.AppMapping, len(inst.Apps))}
		for i, r := range stages {
			u := procs[i]
			m.Apps[r.app].Intervals = append(m.Apps[r.app].Intervals, mapping.PlacedInterval{
				From: r.k, To: r.k, Proc: u, Mode: inst.Platform.Processors[u].NumModes() - 1,
			})
		}
		for a := range m.Apps {
			sort.Slice(m.Apps[a].Intervals, func(i, j int) bool {
				return m.Apps[a].Intervals[i].From < m.Apps[a].Intervals[j].From
			})
		}
		if err := m.Validate(inst, rule); err != nil {
			return mapping.Mapping{}, err
		}
		return m, nil
	}
	// Interval rule: distribute processors proportionally to weighted
	// total work, then split each application into equal-work chunks on
	// its fastest processors.
	if p < len(inst.Apps) {
		return mapping.Mapping{}, fmt.Errorf("%w: %d processors for %d applications", ErrNoMapping, p, len(inst.Apps))
	}
	counts := proportionalCounts(inst, p, rng, round)
	procs := procsBySpeed(inst)
	next := 0
	m := mapping.Mapping{Apps: make([]mapping.AppMapping, len(inst.Apps))}
	for a := range inst.Apps {
		n := inst.Apps[a].NumStages()
		k := counts[a]
		if k > n {
			k = n
		}
		myProcs := procs[next : next+k]
		next += k
		// Equal-work split into k intervals.
		pre := inst.Apps[a].WorkPrefix()
		total := pre[n]
		from := 0
		for j := 0; j < k; j++ {
			to := from
			if j == k-1 {
				to = n - 1
			} else {
				target := total * float64(j+1) / float64(k)
				for to < n-1 && pre[to+1] < target {
					to++
				}
				// Leave at least one stage per remaining interval.
				if to > n-1-(k-1-j) {
					to = n - 1 - (k - 1 - j)
				}
				if to < from {
					to = from
				}
			}
			u := myProcs[j]
			m.Apps[a].Intervals = append(m.Apps[a].Intervals, mapping.PlacedInterval{
				From: from, To: to, Proc: u, Mode: inst.Platform.Processors[u].NumModes() - 1,
			})
			from = to + 1
		}
	}
	if err := m.Validate(inst, mapping.Interval); err != nil {
		return mapping.Mapping{}, err
	}
	return m, nil
}

// procsBySpeed returns processor indices sorted by max speed descending.
func procsBySpeed(inst *pipeline.Instance) []int {
	p := inst.Platform.NumProcessors()
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	sort.SliceStable(procs, func(i, j int) bool {
		return inst.Platform.Processors[procs[i]].MaxSpeed() > inst.Platform.Processors[procs[j]].MaxSpeed()
	})
	return procs
}

// proportionalCounts splits p processors among applications proportionally
// to weighted total work (randomized on later rounds), at least one each
// and at most the stage count.
func proportionalCounts(inst *pipeline.Instance, p int, rng *rand.Rand, round int) []int {
	nApps := len(inst.Apps)
	counts := make([]int, nApps)
	works := make([]float64, nApps)
	var total float64
	for a := range inst.Apps {
		works[a] = inst.Apps[a].EffectiveWeight() * inst.Apps[a].TotalWork()
		total += works[a]
	}
	left := p
	for a := range counts {
		counts[a] = 1
		left--
	}
	for left > 0 {
		// Grant to the application with the highest work per processor.
		best, bestScore := -1, -1.0
		for a := range counts {
			if counts[a] >= inst.Apps[a].NumStages() {
				continue
			}
			score := works[a] / float64(counts[a])
			if round > 0 {
				score *= 0.5 + rng.Float64()
			}
			if score > bestScore {
				best, bestScore = a, score
			}
		}
		if best < 0 {
			break
		}
		counts[best]++
		left--
	}
	_ = total
	return counts
}
