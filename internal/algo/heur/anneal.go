package heur

import (
	"math"
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// anneal improves m in place by simulated annealing over the interval
// mapping neighbourhood, returning the final objective value. Infeasible
// neighbours (objective +Inf) are always rejected; the best mapping ever
// seen is restored at the end.
func anneal(rng *rand.Rand, inst *pipeline.Instance, m *mapping.Mapping, obj Objective, opt Options) float64 {
	cur := obj(m)
	best := m.Clone()
	bestV := cur
	scale := math.Abs(cur)
	if math.IsInf(scale, 1) || scale == 0 {
		scale = 1
	}
	t0 := opt.StartTemp * scale
	t1 := opt.EndTemp * scale
	cool := math.Pow(t1/t0, 1/math.Max(1, float64(opt.Iters-1)))
	temp := t0
	for i := 0; i < opt.Iters; i++ {
		cand := m.Clone()
		if !mutate(rng, inst, &cand, opt.Rule) {
			temp *= cool
			continue
		}
		v := obj(&cand)
		accept := false
		switch {
		case math.IsInf(v, 1):
			accept = false
		//lint:allow floatcmp annealing acceptance is heuristic; tolerance would only perturb accept probability
		case v <= cur:
			accept = true
		case !math.IsInf(cur, 1):
			accept = rng.Float64() < math.Exp((cur-v)/temp)
		default:
			accept = true // escape from an infeasible start
		}
		if accept {
			*m = cand
			cur = v
			if v < bestV {
				best = cand.Clone()
				bestV = v
			}
		}
		temp *= cool
	}
	if bestV < cur {
		*m = best
	}
	return bestV
}

// mutate applies one random neighbourhood move in place. It reports false
// when the drawn move was inapplicable (the caller just retries next
// iteration). All moves preserve mapping validity.
func mutate(rng *rand.Rand, inst *pipeline.Instance, m *mapping.Mapping, rule mapping.Rule) bool {
	moves := []func(*rand.Rand, *pipeline.Instance, *mapping.Mapping) bool{
		moveMode, moveRelocate, moveSwap,
	}
	if rule == mapping.Interval {
		moves = append(moves, moveBoundary, moveSplit, moveMerge)
	}
	return moves[rng.Intn(len(moves))](rng, inst, m)
}

// pick returns a random (app, interval index) pair.
func pick(rng *rand.Rand, m *mapping.Mapping) (int, int) {
	total := m.NumIntervals()
	i := rng.Intn(total)
	for a := range m.Apps {
		if i < len(m.Apps[a].Intervals) {
			return a, i
		}
		i -= len(m.Apps[a].Intervals)
	}
	panic("unreachable")
}

// freeProcs lists processors not used by m.
func freeProcs(inst *pipeline.Instance, m *mapping.Mapping) []int {
	used := make([]bool, inst.Platform.NumProcessors())
	for a := range m.Apps {
		for _, iv := range m.Apps[a].Intervals {
			used[iv.Proc] = true
		}
	}
	var free []int
	for u, b := range used {
		if !b {
			free = append(free, u)
		}
	}
	return free
}

// moveMode steps one interval's mode up or down.
func moveMode(rng *rand.Rand, inst *pipeline.Instance, m *mapping.Mapping) bool {
	a, j := pick(rng, m)
	iv := &m.Apps[a].Intervals[j]
	modes := inst.Platform.Processors[iv.Proc].NumModes()
	if modes == 1 {
		return false
	}
	delta := 1
	if rng.Intn(2) == 0 {
		delta = -1
	}
	nm := iv.Mode + delta
	if nm < 0 || nm >= modes {
		nm = iv.Mode - delta
	}
	if nm < 0 || nm >= modes {
		return false
	}
	iv.Mode = nm
	return true
}

// moveRelocate moves one interval to a free processor at a random mode.
func moveRelocate(rng *rand.Rand, inst *pipeline.Instance, m *mapping.Mapping) bool {
	free := freeProcs(inst, m)
	if len(free) == 0 {
		return false
	}
	a, j := pick(rng, m)
	iv := &m.Apps[a].Intervals[j]
	u := free[rng.Intn(len(free))]
	iv.Proc = u
	iv.Mode = rng.Intn(inst.Platform.Processors[u].NumModes())
	return true
}

// moveSwap exchanges the processors (and modes) of two intervals.
func moveSwap(rng *rand.Rand, inst *pipeline.Instance, m *mapping.Mapping) bool {
	if m.NumIntervals() < 2 {
		return false
	}
	a1, j1 := pick(rng, m)
	a2, j2 := pick(rng, m)
	if a1 == a2 && j1 == j2 {
		return false
	}
	iv1 := &m.Apps[a1].Intervals[j1]
	iv2 := &m.Apps[a2].Intervals[j2]
	iv1.Proc, iv2.Proc = iv2.Proc, iv1.Proc
	iv1.Mode, iv2.Mode = iv2.Mode, iv1.Mode
	// Clamp modes to the new processors' mode counts.
	clampMode(inst, iv1)
	clampMode(inst, iv2)
	return true
}

func clampMode(inst *pipeline.Instance, iv *mapping.PlacedInterval) {
	if max := inst.Platform.Processors[iv.Proc].NumModes() - 1; iv.Mode > max {
		iv.Mode = max
	}
}

// moveBoundary shifts the boundary between two adjacent intervals of one
// application by one stage.
func moveBoundary(rng *rand.Rand, inst *pipeline.Instance, m *mapping.Mapping) bool {
	a, j := pick(rng, m)
	ivs := m.Apps[a].Intervals
	if len(ivs) < 2 {
		return false
	}
	if j == len(ivs)-1 {
		j--
	}
	left, right := &ivs[j], &ivs[j+1]
	if rng.Intn(2) == 0 {
		// Grow left.
		if right.Len() <= 1 {
			return false
		}
		left.To++
		right.From++
	} else {
		if left.Len() <= 1 {
			return false
		}
		left.To--
		right.From--
	}
	return true
}

// moveSplit splits one interval of length >= 2 onto a free processor.
func moveSplit(rng *rand.Rand, inst *pipeline.Instance, m *mapping.Mapping) bool {
	free := freeProcs(inst, m)
	if len(free) == 0 {
		return false
	}
	a, j := pick(rng, m)
	ivs := m.Apps[a].Intervals
	iv := ivs[j]
	if iv.Len() < 2 {
		return false
	}
	cut := iv.From + rng.Intn(iv.Len()-1) // new boundary after stage `cut`
	u := free[rng.Intn(len(free))]
	right := mapping.PlacedInterval{From: cut + 1, To: iv.To, Proc: u, Mode: rng.Intn(inst.Platform.Processors[u].NumModes())}
	ivs[j].To = cut
	m.Apps[a].Intervals = append(ivs[:j+1], append([]mapping.PlacedInterval{right}, ivs[j+1:]...)...)
	return true
}

// moveMerge merges two adjacent intervals of one application onto one of
// their two processors, freeing the other.
func moveMerge(rng *rand.Rand, inst *pipeline.Instance, m *mapping.Mapping) bool {
	a, j := pick(rng, m)
	ivs := m.Apps[a].Intervals
	if len(ivs) < 2 {
		return false
	}
	if j == len(ivs)-1 {
		j--
	}
	keep := ivs[j]
	if rng.Intn(2) == 1 {
		keep = ivs[j+1]
	}
	keep.From = ivs[j].From
	keep.To = ivs[j+1].To
	m.Apps[a].Intervals = append(ivs[:j], append([]mapping.PlacedInterval{keep}, ivs[j+2:]...)...)
	return true
}

// speedDown is the deterministic greedy polish: repeatedly apply the single
// mode decrement with the best objective improvement until none helps.
func speedDown(inst *pipeline.Instance, m *mapping.Mapping, obj Objective) {
	for {
		cur := obj(m)
		bestA, bestJ := -1, -1
		bestV := cur
		for a := range m.Apps {
			for j := range m.Apps[a].Intervals {
				iv := &m.Apps[a].Intervals[j]
				if iv.Mode == 0 {
					continue
				}
				iv.Mode--
				if v := obj(m); v < bestV {
					bestV, bestA, bestJ = v, a, j
				}
				iv.Mode++
			}
		}
		if bestA < 0 {
			return
		}
		m.Apps[bestA].Intervals[bestJ].Mode--
	}
}

// speedUpIfHelpful raises modes greedily while the objective improves; used
// to make period/latency starts feasible before annealing on bounded
// problems.
func speedUpIfHelpful(inst *pipeline.Instance, m *mapping.Mapping, obj Objective) {
	for {
		cur := obj(m)
		improvedA, improvedJ := -1, -1
		bestV := cur
		for a := range m.Apps {
			for j := range m.Apps[a].Intervals {
				iv := &m.Apps[a].Intervals[j]
				if iv.Mode >= inst.Platform.Processors[iv.Proc].NumModes()-1 {
					continue
				}
				iv.Mode++
				v := obj(m)
				iv.Mode--
				if v < bestV || (math.IsInf(cur, 1) && !math.IsInf(v, 1)) {
					bestV, improvedA, improvedJ = v, a, j
				}
			}
		}
		if improvedA < 0 {
			return
		}
		m.Apps[improvedA].Intervals[improvedJ].Mode++
	}
}
