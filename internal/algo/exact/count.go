package exact

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// CountMappings returns the number of valid mappings of inst under the
// options — the *unbroken* search space, with no pruning or symmetry
// breaking applied; used by the scaling experiments to report search-space
// growth and by core to gate the exact solver. Counting is a memoized
// dynamic program whenever the state space is small enough (the count
// depends on the free processors only through how many of each mode-count
// class remain), falling back to plain enumeration otherwise; both paths
// return the same count and the same ErrSearchSpace behaviour when the
// count exceeds Options.Limit.
func CountMappings(inst *pipeline.Instance, opt Options) (int64, error) {
	if n, ok := countDP(inst, opt); ok {
		if n > opt.limit() {
			return 0, fmt.Errorf("counting mappings: %w", ErrSearchSpace)
		}
		return n, nil
	}
	var n int64
	err := Enumerate(inst, opt, func(m *mapping.Mapping) { n++ })
	if err != nil {
		return 0, fmt.Errorf("counting mappings: %w", err)
	}
	return n, nil
}

// countArena holds the DP's memo and class tables so repeated counts (core
// gates every exact solve through the search-space check) allocate nothing
// after warm-up.
type countArena struct {
	classSize []int64 // processors per class
	classMode []int64 // enumerable modes per class member
	classLeft []int64 // mutable free count per class
	radix     []int64 // mixed-radix stride per class
	posOff    []int   // position offset of app a's stage states
	memo      []int64 // position*states + freeIdx -> count, -1 = unknown
	states    int64   // number of free-count states
}

var countPool = sync.Pool{New: func() any { return new(countArena) }}

// maxCountStates bounds the DP table; beyond it the enumeration fallback
// applies (a table this large would cost more to fill than it saves).
const maxCountStates = 1 << 22

// countDP computes the exact mapping count by dynamic programming. The
// number of completions from a search state depends only on (application,
// next stage, how many processors of each mode-count class are free):
// distinct free processors with equal enumerable-mode counts contribute
// identically, so the free set collapses to a small mixed-radix index.
// Multiplying each transition by free[class] * modes[class] counts exactly
// the assignments the enumerator would visit. Returns ok=false when the
// state space exceeds maxCountStates.
func countDP(inst *pipeline.Instance, opt Options) (count int64, ok bool) {
	ar := countPool.Get().(*countArena)
	defer countPool.Put(ar)

	p := inst.Platform.NumProcessors()
	ar.classSize = ar.classSize[:0]
	ar.classMode = ar.classMode[:0]
	for u := 0; u < p; u++ {
		modes := int64(1)
		if opt.Modes == AllModes {
			modes = int64(inst.Platform.Processors[u].NumModes())
		}
		c := -1
		for i, m := range ar.classMode {
			if m == modes {
				c = i
				break
			}
		}
		if c < 0 {
			ar.classMode = append(ar.classMode, modes)
			ar.classSize = append(ar.classSize, 0)
			c = len(ar.classMode) - 1
		}
		ar.classSize[c]++
	}
	nc := len(ar.classSize)

	// Mixed-radix encoding of the per-class free counts.
	ar.radix = resizeInt64s(ar.radix, nc)
	states := int64(1)
	for c := 0; c < nc; c++ {
		ar.radix[c] = states
		states *= ar.classSize[c] + 1
		if states > maxCountStates {
			return 0, false
		}
	}
	ar.states = states

	ar.posOff = resizeInts(ar.posOff, len(inst.Apps)+1)
	positions := 0
	for a := range inst.Apps {
		ar.posOff[a] = positions
		positions += inst.Apps[a].NumStages() // states (a, from) with from < n
	}
	ar.posOff[len(inst.Apps)] = positions
	if int64(positions)*states > maxCountStates {
		return 0, false
	}

	ar.memo = resizeInt64s(ar.memo, positions*int(states))
	for i := range ar.memo {
		ar.memo[i] = -1
	}
	ar.classLeft = append(ar.classLeft[:0], ar.classSize...)

	freeIdx := int64(0)
	for c := 0; c < nc; c++ {
		freeIdx += ar.classLeft[c] * ar.radix[c]
	}
	return countRec(inst, opt, ar, 0, 0, freeIdx), true
}

// countRec counts the completions from application a, stage from, given the
// free-class state. Saturating arithmetic keeps overflow monotone: any
// true count above MaxInt64 reports as MaxInt64, which still exceeds every
// configurable limit.
func countRec(inst *pipeline.Instance, opt Options, ar *countArena, a, from int, freeIdx int64) int64 {
	if a == len(inst.Apps) {
		return 1
	}
	app := &inst.Apps[a]
	n := app.NumStages()
	if from == n {
		return countRec(inst, opt, ar, a+1, 0, freeIdx)
	}
	key := int64(ar.posOff[a]+from)*ar.states + freeIdx
	if v := ar.memo[key]; v >= 0 {
		return v
	}
	// The enumerator abandons a branch when the free processors cannot give
	// every remaining application at least one; it only ever cuts
	// zero-completion branches, so the counts agree either way, but keeping
	// the check makes small tables cheap.
	free := int64(0)
	for c := range ar.classLeft {
		free += ar.classLeft[c]
	}
	var total int64
	if free > int64(len(inst.Apps)-a-1) {
		hi := n - 1
		if opt.Rule == mapping.OneToOne {
			hi = from
		}
		for to := from; to <= hi; to++ {
			for c := range ar.classLeft {
				if ar.classLeft[c] == 0 {
					continue
				}
				ways := satMul(ar.classLeft[c], ar.classMode[c])
				ar.classLeft[c]--
				sub := countRec(inst, opt, ar, a, to+1, freeIdx-ar.radix[c])
				ar.classLeft[c]++
				total = satAdd(total, satMul(ways, sub))
			}
		}
	}
	ar.memo[key] = total
	return total
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}
