package exact

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// twoStageApp builds a single two-stage application instance on the given
// platform.
func twoStageApp(plat pipeline.Platform) pipeline.Instance {
	return pipeline.Instance{
		Apps: []pipeline.Application{{
			In:     1,
			Stages: []pipeline.Stage{{Work: 2, Out: 1}, {Work: 3, Out: 1}},
		}},
		Platform: plat,
		Energy:   pipeline.DefaultEnergy,
	}
}

// TestSymmetryBreakingHomogeneous pins the exact search-effort counters on
// a platform of four identical processors: the blind space has 4*3 = 12
// one-to-one mappings, but with every processor in one equivalence class
// the branch-and-bound search visits a single leaf, skipping the 3
// alternatives at the first stage and the 2 at the second.
func TestSymmetryBreakingHomogeneous(t *testing.T) {
	inst := twoStageApp(pipeline.NewHomogeneousPlatform(4, []float64{1}, 1, 1))
	opt := Options{Rule: mapping.OneToOne, Modes: FastestOnly}
	spec := Spec{Objective: ObjPeriod, Model: pipeline.Overlap}

	pruned, err := Minimize(&inst, opt, spec)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if pruned.Stats.Classes != 1 {
		t.Errorf("homogeneous platform built %d classes, want 1", pruned.Stats.Classes)
	}
	if pruned.Stats.Leaves != 1 {
		t.Errorf("pruned search visited %d leaves, want 1", pruned.Stats.Leaves)
	}
	if pruned.Stats.SymSkipped != 5 {
		t.Errorf("symmetry breaking skipped %d placements, want 5 (3 at stage 0 + 2 at stage 1)",
			pruned.Stats.SymSkipped)
	}

	opt.NoPrune = true
	ref, err := Minimize(&inst, opt, spec)
	if err != nil {
		t.Fatalf("Minimize (NoPrune): %v", err)
	}
	if ref.Stats.Leaves != 12 {
		t.Errorf("NoPrune walk visited %d leaves, want the full 12", ref.Stats.Leaves)
	}
	if ref.Stats.SymSkipped != 0 {
		t.Errorf("NoPrune walk skipped %d placements by symmetry, want 0", ref.Stats.SymSkipped)
	}
	//lint:allow floatcmp pruning must preserve the optimum bit for bit
	if pruned.Value != ref.Value {
		t.Errorf("pruned value %v differs from NoPrune value %v", pruned.Value, ref.Value)
	}
}

// TestSymmetryBreakingHeterogeneous pins the counters on four processors
// with distinct speeds: every class is a singleton, so nothing is skipped
// by symmetry and the NoPrune walk still covers all 12 mappings.
func TestSymmetryBreakingHeterogeneous(t *testing.T) {
	plat := pipeline.NewCommHomogeneousPlatform([][]float64{{1}, {2}, {3}, {4}}, 1, 1)
	inst := twoStageApp(plat)
	opt := Options{Rule: mapping.OneToOne, Modes: FastestOnly}
	spec := Spec{Objective: ObjPeriod, Model: pipeline.Overlap}

	pruned, err := Minimize(&inst, opt, spec)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if pruned.Stats.Classes != 4 {
		t.Errorf("distinct-speed platform built %d classes, want 4 singletons", pruned.Stats.Classes)
	}
	if pruned.Stats.SymSkipped != 0 {
		t.Errorf("singleton classes skipped %d placements, want 0", pruned.Stats.SymSkipped)
	}

	opt.NoPrune = true
	ref, err := Minimize(&inst, opt, spec)
	if err != nil {
		t.Fatalf("Minimize (NoPrune): %v", err)
	}
	if ref.Stats.Leaves != 12 {
		t.Errorf("NoPrune walk visited %d leaves, want the full 12", ref.Stats.Leaves)
	}
	//lint:allow floatcmp pruning must preserve the optimum bit for bit
	if pruned.Value != ref.Value {
		t.Errorf("pruned value %v differs from NoPrune value %v", pruned.Value, ref.Value)
	}
}

// randomInstance draws a small instance: 1-2 applications of 1-3 stages on
// 3-5 processors with 1-2 modes, occasionally with identical processors so
// symmetry classes are exercised.
func randomInstance(rng *rand.Rand) pipeline.Instance {
	apps := make([]pipeline.Application, 1+rng.Intn(2))
	for a := range apps {
		stages := make([]pipeline.Stage, 1+rng.Intn(3))
		for s := range stages {
			stages[s] = pipeline.Stage{
				Work: 1 + float64(rng.Intn(9)),
				Out:  float64(rng.Intn(4)), // zero-volume links happen
			}
		}
		apps[a] = pipeline.Application{
			In:     float64(rng.Intn(3)),
			Stages: stages,
			Weight: 1 + float64(rng.Intn(3)),
		}
	}
	p := 3 + rng.Intn(3)
	speedSets := make([][]float64, p)
	for u := range speedSets {
		if rng.Intn(2) == 0 && u > 0 {
			speedSets[u] = speedSets[u-1] // duplicate: interchangeable pair
			continue
		}
		modes := 1 + rng.Intn(2)
		set := make([]float64, modes)
		base := 1 + float64(rng.Intn(4))
		for m := range set {
			set[m] = base + float64(m)
		}
		speedSets[u] = set
	}
	plat := pipeline.NewCommHomogeneousPlatform(speedSets, 1+float64(rng.Intn(3)), len(apps))
	return pipeline.Instance{Apps: apps, Platform: plat, Energy: pipeline.DefaultEnergy}
}

// TestMinimizeMatchesNoPruneRandomized cross-checks the branch-and-bound
// search against the NoPrune reference walk on randomized instances across
// every objective, rule, model and bound shape: identical values bit for
// bit, identical feasibility verdicts.
func TestMinimizeMatchesNoPruneRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		inst := randomInstance(rng)
		rule := mapping.Interval
		if rng.Intn(2) == 0 {
			rule = mapping.OneToOne
		}
		model := pipeline.Overlap
		if rng.Intn(2) == 0 {
			model = pipeline.NoOverlap
		}
		spec := Spec{Objective: Objective(rng.Intn(3)), Model: model}
		if rng.Intn(2) == 0 {
			spec.PeriodBounds = uniform(len(inst.Apps), 2+6*rng.Float64())
		}
		if rng.Intn(2) == 0 {
			spec.LatencyBounds = uniform(len(inst.Apps), 5+20*rng.Float64())
		}
		if rng.Intn(3) == 0 {
			spec.EnergyBudget = 5 + 40*rng.Float64()
		}
		modes := AllModes
		if spec.Objective != ObjEnergy && spec.EnergyBudget == 0 && rng.Intn(2) == 0 {
			modes = FastestOnly
		}
		opt := Options{Rule: rule, Modes: modes}

		pruned, perr := Minimize(&inst, opt, spec)
		opt.NoPrune = true
		ref, rerr := Minimize(&inst, opt, spec)

		label := fmt.Sprintf("trial %d (rule %v model %v obj %d bounds %v/%v budget %g)",
			trial, rule, model, spec.Objective, spec.PeriodBounds != nil, spec.LatencyBounds != nil, spec.EnergyBudget)
		if (perr == nil) != (rerr == nil) {
			t.Fatalf("%s: pruned err %v, NoPrune err %v", label, perr, rerr)
		}
		if perr != nil {
			if perr.Error() != rerr.Error() {
				t.Fatalf("%s: pruned err %q, NoPrune err %q", label, perr, rerr)
			}
			continue
		}
		//lint:allow floatcmp pruning must preserve the optimum bit for bit
		if pruned.Value != ref.Value {
			t.Fatalf("%s: pruned value %v differs from NoPrune value %v (stats %+v)",
				label, pruned.Value, ref.Value, pruned.Stats)
		}
		if pruned.Stats.Leaves > ref.Stats.Leaves {
			t.Fatalf("%s: pruned search visited %d leaves, more than the full walk's %d",
				label, pruned.Stats.Leaves, ref.Stats.Leaves)
		}
	}
}

func uniform(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestCountMappingsDPMatchesEnumeration cross-checks the memoized counting
// DP against a literal enumeration count on randomized instances under both
// rules and both mode policies.
func TestCountMappingsDPMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		inst := randomInstance(rng)
		for _, rule := range []mapping.Rule{mapping.OneToOne, mapping.Interval} {
			for _, modes := range []ModePolicy{AllModes, FastestOnly} {
				opt := Options{Rule: rule, Modes: modes}
				var brute int64
				if err := Enumerate(&inst, opt, func(m *mapping.Mapping) { brute++ }); err != nil {
					t.Fatalf("trial %d: Enumerate: %v", trial, err)
				}
				got, ok := countDP(&inst, opt)
				if !ok {
					t.Fatalf("trial %d: countDP rejected a tiny instance", trial)
				}
				if got != brute {
					t.Fatalf("trial %d (rule %v modes %v): DP counts %d mappings, enumeration %d",
						trial, rule, modes, got, brute)
				}
				n, err := CountMappings(&inst, opt)
				if err != nil || n != brute {
					t.Fatalf("trial %d: CountMappings = %d, %v; want %d, nil", trial, n, err, brute)
				}
			}
		}
	}
}

// TestCountMappingsSaturates pins the saturating arithmetic: a count
// overflowing int64 must report ErrSearchSpace, not wrap around.
func TestCountMappingsSaturates(t *testing.T) {
	if satAdd(math.MaxInt64, 1) != math.MaxInt64 {
		t.Error("satAdd must clamp at MaxInt64")
	}
	if satMul(math.MaxInt64/2, 3) != math.MaxInt64 {
		t.Error("satMul must clamp at MaxInt64")
	}
	if satMul(0, math.MaxInt64) != 0 {
		t.Error("satMul with a zero factor must be 0")
	}
}

// TestMinimizeSearchSpaceLimit pins that the leaf budget still applies to
// the NoPrune walk (which visits every mapping).
func TestMinimizeSearchSpaceLimit(t *testing.T) {
	inst := twoStageApp(pipeline.NewHomogeneousPlatform(4, []float64{1}, 1, 1))
	opt := Options{Rule: mapping.OneToOne, Modes: FastestOnly, Limit: 5, NoPrune: true}
	_, err := Minimize(&inst, opt, Spec{Objective: ObjPeriod, Model: pipeline.Overlap})
	if err != ErrSearchSpace {
		//lint:allow errclass test pins the exact sentinel identity
		t.Fatalf("Minimize with limit 5 over a 12-leaf space returned %v, want ErrSearchSpace", err)
	}
}
