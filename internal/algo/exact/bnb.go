package exact

import (
	"math"
	"sync"

	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// Objective identifies the criterion Minimize optimizes.
type Objective int

const (
	// ObjPeriod minimizes the weighted global period max_a W_a*T_a.
	ObjPeriod Objective = iota
	// ObjLatency minimizes the weighted global latency max_a W_a*L_a.
	ObjLatency
	// ObjEnergy minimizes the total power of enrolled processors.
	ObjEnergy
)

// Spec describes one optimization problem for Minimize: the objective, the
// communication model and the optional feasibility constraints. Nil bound
// slices mean unconstrained; EnergyBudget constrains when positive,
// mirroring core.Request.
type Spec struct {
	Objective Objective
	Model     pipeline.CommModel
	// PeriodBounds constrains each application's unweighted period
	// T_a <= PeriodBounds[a]; nil means unconstrained.
	PeriodBounds []float64
	// LatencyBounds constrains each application's unweighted latency
	// L_a <= LatencyBounds[a]; nil means unconstrained.
	LatencyBounds []float64
	// EnergyBudget, if positive, constrains the total energy.
	EnergyBudget float64
}

// SearchStats instruments one Minimize run. The counters let tests pin the
// effect of pruning and symmetry breaking and let callers report search
// effort.
type SearchStats struct {
	// Nodes counts interval placements pushed onto the search path.
	Nodes int64
	// Leaves counts complete mappings reached. With NoPrune this equals
	// the full CountMappings space; with pruning it is usually far smaller.
	Leaves int64
	// PrunedBound counts subtrees cut because a partially evaluated
	// mapping already violated a period/latency bound or the energy
	// budget.
	PrunedBound int64
	// PrunedWorse counts subtrees cut because an admissible lower bound on
	// the objective already reached the incumbent.
	PrunedWorse int64
	// SymSkipped counts placements skipped because an interchangeable
	// lower-indexed free processor was already tried at the same node.
	SymSkipped int64
	// Classes is the number of processor equivalence classes (p when the
	// platform has no interchangeable processors).
	Classes int
}

// searcher is the reusable branch-and-bound arena. All slices are resized in
// place on reuse, so a pooled searcher allocates nothing on the hot path
// after warm-up.
type searcher struct {
	inst *pipeline.Instance
	opt  Options
	spec Spec

	prune               bool // !opt.NoPrune
	hasPB, hasLB, hasEB bool
	needEnergy          bool // objective is energy or a budget is set

	// Platform tables, rebuilt per run.
	weights  []float64 // per-app effective weight
	powOff   []int     // powers[powOff[u]+mode] = Power(Speeds[mode])
	powers   []float64
	minPow   float64 // least power of any enumerable (proc, mode) pair
	classOf  []int   // proc -> equivalence class
	classRep []int   // first member per class
	// symStamp is one stamp row per search depth: symStamp[depth*classes+c]
	// records the generation at which class c was last offered at that
	// depth. Rows are per depth because the recursion runs *inside* the
	// processor loop — a single shared row would be clobbered by the
	// subtree before the loop resumes, aliasing unrelated nodes.
	symStamp []int64
	gen      int64
	needOff  []int // needIvs[needOff[a]+from] = min intervals left at (a, from)
	needIvs  []int

	// Mutable search state.
	used       []bool
	free       int
	depth      int // intervals currently placed (selects the symStamp row)
	m          mapping.Mapping
	energy     float64
	violations int // NoPrune only: completed apps violating their bounds

	best    mapping.Mapping
	bestVal float64
	found   bool
	left    int64
	stats   SearchStats
}

var searchPool = sync.Pool{New: func() any { return new(searcher) }}

// Minimize runs the branch-and-bound search for spec over the mapping space
// selected by opt and returns the optimal solution. Partial period, latency
// and energy values are accumulated incrementally along the search path
// (each node costs O(1) on top of its parent, in the exact floating-point
// operation order of the mapping evaluator, so results are bit-identical to
// evaluating complete mappings); subtrees are cut as soon as a partial
// mapping provably violates a bound or an admissible lower bound on the
// objective reaches the incumbent; and on platforms with interchangeable
// processors only the lowest-indexed free member of each equivalence class
// is tried per node. Options.NoPrune disables the cuts and the symmetry
// breaking — the reference path visits the entire space, which is what the
// differential harness compares against.
//
// Options.Limit bounds the number of complete mappings visited (leaves
// reached); the pruned search reaches far fewer leaves than Enumerate, so it
// may succeed where the blind enumeration would overrun the same limit.
func Minimize(inst *pipeline.Instance, opt Options, spec Spec) (Solution, error) {
	s := searchPool.Get().(*searcher)
	sol, err := s.run(inst, opt, spec)
	s.inst = nil // do not retain the instance while pooled
	searchPool.Put(s)
	return sol, err
}

func (s *searcher) run(inst *pipeline.Instance, opt Options, spec Spec) (Solution, error) {
	s.init(inst, opt, spec)
	if err := s.app(0, 0); err != nil {
		return Solution{}, err
	}
	if !s.found {
		return Solution{Stats: s.stats}, ErrInfeasible
	}
	return Solution{Mapping: s.best.Clone(), Value: s.bestVal, Stats: s.stats}, nil
}

func (s *searcher) init(inst *pipeline.Instance, opt Options, spec Spec) {
	s.inst, s.opt, s.spec = inst, opt, spec
	s.prune = !opt.NoPrune
	s.hasPB = spec.PeriodBounds != nil
	s.hasLB = spec.LatencyBounds != nil
	s.hasEB = spec.EnergyBudget > 0

	p := inst.Platform.NumProcessors()
	apps := len(inst.Apps)

	s.used = resizeBools(s.used, p)
	for u := range s.used {
		s.used[u] = false
	}
	s.free = p

	s.m.Apps = resizeAppMappings(s.m.Apps, apps)
	for a := range s.m.Apps {
		s.m.Apps[a].Intervals = s.m.Apps[a].Intervals[:0]
	}

	s.weights = resizeFloats(s.weights, apps)
	for a := range inst.Apps {
		s.weights[a] = inst.Apps[a].EffectiveWeight()
	}

	// Power table: Energy.Power is a math.Pow behind the scenes; paying it
	// once per (processor, mode) instead of once per visited leaf removes
	// it from the hot path while keeping bit-identical sums. When neither
	// the objective nor a budget involves energy the table is skipped
	// entirely — the search never reads it then.
	s.needEnergy = spec.Objective == ObjEnergy || s.hasEB
	total := 0
	if s.needEnergy {
		s.powOff = resizeInts(s.powOff, p)
		for u := 0; u < p; u++ {
			s.powOff[u] = total
			total += inst.Platform.Processors[u].NumModes()
		}
		s.powers = resizeFloats(s.powers, total)
		s.minPow = math.Inf(1)
		for u := 0; u < p; u++ {
			pr := &inst.Platform.Processors[u]
			lo := 0
			if opt.Modes == FastestOnly {
				lo = pr.NumModes() - 1
			}
			for mode := 0; mode < pr.NumModes(); mode++ {
				pw := inst.Energy.Power(pr.Speeds[mode])
				s.powers[s.powOff[u]+mode] = pw
				if mode >= lo {
					s.minPow = math.Min(s.minPow, pw)
				}
			}
		}
	}

	s.buildClasses()

	// needIvs[a][from]: the fewest intervals still to be placed when the
	// search stands at stage `from` of application a — an admissible count
	// of future energy additions.
	s.needOff = resizeInts(s.needOff, apps)
	total = 0
	for a := 0; a < apps; a++ {
		s.needOff[a] = total
		total += inst.Apps[a].NumStages() + 1
	}
	s.needIvs = resizeInts(s.needIvs, total)
	future := 0
	for a := apps - 1; a >= 0; a-- {
		n := inst.Apps[a].NumStages()
		off := s.needOff[a]
		s.needIvs[off+n] = future
		for from := n - 1; from >= 0; from-- {
			if opt.Rule == mapping.OneToOne {
				s.needIvs[off+from] = (n - from) + future
			} else {
				s.needIvs[off+from] = 1 + future
			}
		}
		future = s.needIvs[off]
	}

	// One symmetry-stamp row per possible depth: every placed interval
	// covers at least one stage, so the depth never exceeds the total stage
	// count.
	maxDepth := 0
	for a := range inst.Apps {
		maxDepth += inst.Apps[a].NumStages()
	}
	s.symStamp = resizeInt64s(s.symStamp, (maxDepth+1)*len(s.classRep))
	for i := range s.symStamp {
		s.symStamp[i] = 0
	}
	s.gen = 0
	s.depth = 0

	s.energy = 0
	s.violations = 0
	s.bestVal = math.Inf(1)
	s.found = false
	s.left = opt.limit()
	s.stats = SearchStats{Classes: s.stats.Classes}
}

// buildClasses partitions the processors into equivalence classes of
// interchangeable members: swapping two class members in any valid mapping
// leaves every metric bit-identical, so the search only ever tries the
// lowest-indexed free member of each class at a node. The predicate is
// deliberately bitwise — a tolerance here would merge processors whose
// mappings evaluate to different floats and corrupt optima.
func (s *searcher) buildClasses() {
	p := s.inst.Platform.NumProcessors()
	s.classOf = resizeInts(s.classOf, p)
	reps := s.classRep[:0]
	for u := 0; u < p; u++ {
		class := -1
		for c, r := range reps {
			if interchangeable(s.inst, r, u) {
				class = c
				break
			}
		}
		if class < 0 {
			reps = append(reps, u)
			class = len(reps) - 1
		}
		s.classOf[u] = class
	}
	s.classRep = reps
	s.stats.Classes = len(reps)
}

// interchangeable reports whether processors u and v can be swapped in any
// mapping without changing a single bit of any metric: identical speed
// vectors (hence identical computation times and powers) and identical
// link profiles towards every application and every third processor. The
// relation is transitive, so greedy classing against representatives is
// sound.
func interchangeable(inst *pipeline.Instance, u, v int) bool {
	pl := &inst.Platform
	su, sv := pl.Processors[u].Speeds, pl.Processors[v].Speeds
	if len(su) != len(sv) {
		return false
	}
	for i := range su {
		//lint:allow floatcmp interchangeability must be bitwise: tolerant classes would alter exact optima
		if su[i] != sv[i] {
			return false
		}
	}
	for a := range inst.Apps {
		//lint:allow floatcmp interchangeability must be bitwise: tolerant classes would alter exact optima
		if pl.InLink(a, u) != pl.InLink(a, v) || pl.OutLink(a, u) != pl.OutLink(a, v) {
			return false
		}
	}
	for w := 0; w < pl.NumProcessors(); w++ {
		if w == u || w == v {
			continue
		}
		//lint:allow floatcmp interchangeability must be bitwise: tolerant classes would alter exact optima
		if pl.Link(u, w) != pl.Link(v, w) || pl.Link(w, u) != pl.Link(w, v) {
			return false
		}
	}
	//lint:allow floatcmp interchangeability must be bitwise: tolerant classes would alter exact optima
	return pl.Link(u, v) == pl.Link(v, u)
}

// app advances the search to application a. objDone is the exact weighted
// objective prefix over completed applications (running max for period and
// latency; energy accumulates globally in s.energy).
func (s *searcher) app(a int, objDone float64) error {
	if a == len(s.inst.Apps) {
		return s.leaf(objDone)
	}
	return s.place(a, 0, objDone, 0, 0, 0, 0)
}

// leaf visits one complete mapping. All feasibility was either enforced on
// the way down (pruned mode) or tallied in s.violations (NoPrune mode).
func (s *searcher) leaf(objDone float64) error {
	s.left--
	if s.left < 0 {
		return ErrSearchSpace
	}
	s.stats.Leaves++
	if s.violations > 0 {
		return nil
	}
	if s.hasEB && !fmath.LE(s.energy, s.spec.EnergyBudget) {
		return nil
	}
	v := objDone
	if s.spec.Objective == ObjEnergy {
		v = s.energy
	}
	if !s.found || v < s.bestVal {
		s.bestVal = v
		s.found = true
		s.copyBest()
	}
	return nil
}

// place extends application a from stage `from` onward.
//
// The partial-evaluation state threaded through the recursion replicates
// mapping.AppPeriod/AppLatency/Energy operation for operation:
//
//   - appMax is the exact running max over the interval costs of a that are
//     fully known (an interval's cost closes only once the *next* placement
//     fixes its outgoing link);
//   - lat is a's latency prefix — in_0 plus one fl(comp_j + out_j) term per
//     closed interval, in AppLatency's exact addition order;
//   - pendIn/pendComp are the last placed interval's incoming and
//     computation times, still awaiting their outgoing time (meaningful only
//     when from > 0).
//
// Every partial value is a bitwise lower bound of its completed
// counterpart (max is exact; IEEE addition and multiplication by a positive
// weight are monotone under rounding), so the fmath.LE feasibility cuts and
// the >= incumbent cuts can never discard a mapping the blind enumeration
// would have accepted.
func (s *searcher) place(a, from int, objDone, appMax, lat, pendIn, pendComp float64) error {
	app := &s.inst.Apps[a]
	n := app.NumStages()
	if from == n {
		return s.complete(a, objDone, appMax, lat, pendComp)
	}
	// Each remaining application still needs at least one free processor.
	if s.free <= len(s.inst.Apps)-a-1 {
		return nil
	}
	pl := &s.inst.Platform
	hi := n - 1
	if s.opt.Rule == mapping.OneToOne {
		hi = from
	}
	prevProc := -1
	if from > 0 {
		ivs := s.m.Apps[a].Intervals
		prevProc = ivs[len(ivs)-1].Proc
	}
	vol := app.InputSize(from) // == OutputSize(from-1) when from > 0
	var work float64
	for to := from; to <= hi; to++ {
		work += app.Stages[to].Work // bit-identical to IntervalWork(from, to)
		s.gen++
		gen := s.gen // recursion below advances s.gen; this node keeps its own
		for u := 0; u < pl.NumProcessors(); u++ {
			if s.used[u] {
				continue
			}
			if s.prune {
				// Only the first free member of each equivalence class is
				// tried per node; stamps live in this depth's own row so the
				// subtree recursion below cannot alias them.
				slot := s.depth*len(s.classRep) + s.classOf[u]
				if s.symStamp[slot] == gen {
					s.stats.SymSkipped++
					continue
				}
				s.symStamp[slot] = gen
			}
			// Placing on u fixes the previous interval's outgoing link, so
			// its cost closes here; its out time doubles as this interval's
			// in time (same volume over the same link).
			var in, appMax2, lat2 float64
			if from == 0 {
				in = commTime(vol, pl.InLink(a, u))
				appMax2, lat2 = appMax, in
			} else {
				in = commTime(vol, pl.Link(prevProc, u))
				closed := mapping.IntervalCost(s.spec.Model, pendIn, pendComp, in)
				appMax2 = math.Max(appMax, closed)
				lat2 = lat + (pendComp + in)
				if s.prune {
					if s.hasPB && !fmath.LE(closed, s.spec.PeriodBounds[a]) {
						s.stats.PrunedBound++
						continue
					}
					if s.hasLB && !fmath.LE(lat2, s.spec.LatencyBounds[a]) {
						s.stats.PrunedBound++
						continue
					}
				}
			}
			pr := &pl.Processors[u]
			modes := pr.NumModes()
			lo := 0
			if s.opt.Modes == FastestOnly {
				lo = modes - 1
			}
			s.used[u] = true
			s.free--
			for mode := lo; mode < modes; mode++ {
				comp := work / pr.Speeds[mode]
				en := s.energy
				if s.needEnergy {
					en += s.powers[s.powOff[u]+mode]
				}
				if s.prune && !s.admissible(a, to, objDone, appMax2, lat2, in, comp, en) {
					continue
				}
				s.m.Apps[a].Intervals = append(s.m.Apps[a].Intervals, mapping.PlacedInterval{
					From: from, To: to, Proc: u, Mode: mode,
				})
				saved := s.energy
				s.energy = en
				s.depth++
				s.stats.Nodes++
				err := s.place(a, to+1, objDone, appMax2, lat2, in, comp)
				s.depth--
				s.energy = saved
				s.m.Apps[a].Intervals = s.m.Apps[a].Intervals[:len(s.m.Apps[a].Intervals)-1]
				if err != nil {
					s.used[u] = false
					s.free++
					return err
				}
			}
			s.used[u] = false
			s.free++
		}
	}
	return nil
}

// admissible vets a candidate placement of [from..to] against the bounds
// and the incumbent using only bitwise lower bounds; a false return cuts
// the whole subtree.
func (s *searcher) admissible(a, to int, objDone, appMax2, lat2, in, comp, en float64) bool {
	// The open interval's cost is already at least its in/comp part (its
	// outgoing time can only raise it: max is monotone, and under
	// no-overlap fl(fl(in+comp)+out) >= fl(in+comp)).
	part := mapping.IntervalCost(s.spec.Model, in, comp, 0)
	if s.hasPB && !fmath.LE(part, s.spec.PeriodBounds[a]) {
		s.stats.PrunedBound++
		return false
	}
	if s.hasLB && !fmath.LE(lat2+comp, s.spec.LatencyBounds[a]) {
		s.stats.PrunedBound++
		return false
	}
	if s.hasEB && !fmath.LE(en, s.spec.EnergyBudget) {
		s.stats.PrunedBound++
		return false
	}
	if !s.found {
		return true
	}
	var lb float64
	switch s.spec.Objective {
	case ObjPeriod:
		lb = math.Max(objDone, s.weights[a]*math.Max(appMax2, part))
	case ObjLatency:
		lb = math.Max(objDone, s.weights[a]*(lat2+comp))
	default:
		// Every future interval draws at least the platform's cheapest
		// enumerable power; adding it the same way the energy sum grows
		// keeps the bound admissible bit for bit.
		lb = en
		for k := s.needIvs[s.needOff[a]+to+1]; k > 0; k-- {
			lb += s.minPow
		}
	}
	//lint:allow floatcmp incumbent cut must be exact: the incumbent only improves on strictly smaller values
	if lb >= s.bestVal {
		s.stats.PrunedWorse++
		return false
	}
	return true
}

// complete closes application a: the last interval's outgoing time (over
// the application's output link) finalizes T_a and L_a, the bounds are
// checked on the exact values, and the objective prefix absorbs the
// weighted result.
func (s *searcher) complete(a int, objDone, appMax, lat, pendComp float64) error {
	app := &s.inst.Apps[a]
	n := app.NumStages()
	ivs := s.m.Apps[a].Intervals
	last := ivs[len(ivs)-1]
	out := commTime(app.OutputSize(n-1), s.inst.Platform.OutLink(a, last.Proc))
	var pendIn float64
	if len(ivs) == 1 {
		pendIn = commTime(app.InputSize(0), s.inst.Platform.InLink(a, last.Proc))
	} else {
		prev := ivs[len(ivs)-2]
		pendIn = commTime(app.InputSize(last.From), s.inst.Platform.Link(prev.Proc, last.Proc))
	}
	ta := math.Max(appMax, mapping.IntervalCost(s.spec.Model, pendIn, pendComp, out))
	la := lat + (pendComp + out)

	violated := (s.hasPB && !fmath.LE(ta, s.spec.PeriodBounds[a])) ||
		(s.hasLB && !fmath.LE(la, s.spec.LatencyBounds[a]))
	if violated && s.prune {
		s.stats.PrunedBound++
		return nil
	}
	next := objDone
	switch s.spec.Objective {
	case ObjPeriod:
		next = math.Max(objDone, s.weights[a]*ta)
	case ObjLatency:
		next = math.Max(objDone, s.weights[a]*la)
	}
	if s.prune && s.found && s.spec.Objective != ObjEnergy {
		//lint:allow floatcmp incumbent cut must be exact: the incumbent only improves on strictly smaller values
		if next >= s.bestVal {
			s.stats.PrunedWorse++
			return nil
		}
	}
	if violated {
		s.violations++
	}
	err := s.app(a+1, next)
	if violated {
		s.violations--
	}
	return err
}

// copyBest snapshots the current mapping into the reusable incumbent
// storage (no allocation after warm-up; the final Solution clones it once).
func (s *searcher) copyBest() {
	s.best.Apps = resizeAppMappings(s.best.Apps, len(s.m.Apps))
	for a := range s.m.Apps {
		s.best.Apps[a].Intervals = append(s.best.Apps[a].Intervals[:0], s.m.Apps[a].Intervals...)
	}
}

// commTime mirrors the mapping evaluator's transfer time: a zero-volume
// transfer costs nothing, even over a zero-capacity link.
func commTime(vol, bw float64) float64 {
	if vol == 0 {
		return 0
	}
	return vol / bw
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func resizeAppMappings(s []mapping.AppMapping, n int) []mapping.AppMapping {
	if cap(s) < n {
		return make([]mapping.AppMapping, n)
	}
	return s[:n]
}
