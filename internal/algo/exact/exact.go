// Package exact provides exact solvers over one-to-one and interval
// mappings. They are exponential — exactly what the paper's NP-completeness
// results predict for the hard problem variants — and double as the
// optimality oracle against which every polynomial algorithm and heuristic
// in this repository is tested.
//
// Two engines coexist: Enumerate is the blind visitor-pattern walk over the
// complete mapping space (the reference semantics — CountMappings and the
// differential oracle are defined against it), while Minimize is a
// branch-and-bound search that reaches the same optima bit for bit through
// incremental evaluation, bound pruning and symmetry breaking (see bnb.go).
// The Min* entry points run on Minimize; Options.NoPrune turns the cuts off
// so the two engines can be compared directly.
package exact

import (
	"errors"
	"sync"

	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// ErrSearchSpace is returned when enumeration exceeds the configured node
// budget: the instance is too large for the exact solver.
var ErrSearchSpace = errors.New("exact: search space exceeds the configured limit")

// ErrInfeasible is returned when no mapping satisfies the given bounds.
var ErrInfeasible = errors.New("exact: no mapping satisfies the bounds")

// ModePolicy restricts which execution modes are enumerated.
type ModePolicy int

const (
	// AllModes enumerates every DVFS mode (needed whenever energy is among
	// the criteria).
	AllModes ModePolicy = iota
	// FastestOnly enumerates only each processor's highest speed: without
	// an energy criterion, running faster can only improve period and
	// latency (Section 2), so the restriction is lossless.
	FastestOnly
)

// Options configures the enumeration.
type Options struct {
	// Rule selects one-to-one or interval mappings.
	Rule mapping.Rule
	// Modes selects the mode enumeration policy.
	Modes ModePolicy
	// Limit bounds the number of complete mappings visited; 0 means the
	// default of 20 million.
	Limit int64
	// NoPrune makes Minimize visit the entire mapping space like Enumerate
	// does — no bound pruning, no symmetry breaking. This is the reference
	// path the differential harness compares the branch-and-bound search
	// against; it has no effect on Enumerate or CountMappings, which never
	// prune.
	NoPrune bool
}

func (o Options) limit() int64 {
	if o.Limit <= 0 {
		return 20_000_000
	}
	return o.Limit
}

// Enumerate visits every valid mapping of inst under the options. The
// *mapping.Mapping passed to visit is reused across calls; visit must clone
// it if it escapes. Returns ErrSearchSpace when the limit is hit.
func Enumerate(inst *pipeline.Instance, opt Options, visit func(m *mapping.Mapping)) error {
	e := enumPool.Get().(*enumerator)
	p := inst.Platform.NumProcessors()
	e.inst, e.opt, e.visit = inst, opt, visit
	e.used = resizeBools(e.used, p)
	for u := range e.used {
		e.used[u] = false
	}
	e.free = p
	e.m.Apps = resizeAppMappings(e.m.Apps, len(inst.Apps))
	for a := range e.m.Apps {
		e.m.Apps[a].Intervals = e.m.Apps[a].Intervals[:0]
	}
	e.left = opt.limit()
	err := e.app(0)
	e.inst, e.visit = nil, nil // do not retain while pooled
	enumPool.Put(e)
	return err
}

var enumPool = sync.Pool{New: func() any { return new(enumerator) }}

type enumerator struct {
	inst  *pipeline.Instance
	opt   Options
	used  []bool
	free  int // count of false entries in used, maintained incrementally
	m     mapping.Mapping
	visit func(m *mapping.Mapping)
	left  int64
}

// app enumerates the mapping of applications a..A-1 given the processors
// already consumed by applications 0..a-1.
func (e *enumerator) app(a int) error {
	if a == len(e.inst.Apps) {
		e.left--
		if e.left < 0 {
			return ErrSearchSpace
		}
		e.visit(&e.m)
		return nil
	}
	return e.intervals(a, 0)
}

// intervals extends application a's partition from stage `from` onward.
func (e *enumerator) intervals(a, from int) error {
	app := &e.inst.Apps[a]
	n := app.NumStages()
	if from == n {
		return e.app(a + 1)
	}
	// Remaining applications each need at least one processor.
	if e.free <= len(e.inst.Apps)-a-1 {
		return nil // no processor available for this interval
	}
	hi := n - 1
	if e.opt.Rule == mapping.OneToOne {
		hi = from
	}
	for to := from; to <= hi; to++ {
		for u := 0; u < len(e.used); u++ {
			if e.used[u] {
				continue
			}
			e.used[u] = true
			e.free--
			modes := e.inst.Platform.Processors[u].NumModes()
			lo := 0
			if e.opt.Modes == FastestOnly {
				lo = modes - 1
			}
			for mode := lo; mode < modes; mode++ {
				e.m.Apps[a].Intervals = append(e.m.Apps[a].Intervals, mapping.PlacedInterval{
					From: from, To: to, Proc: u, Mode: mode,
				})
				if err := e.intervals(a, to+1); err != nil {
					return err
				}
				e.m.Apps[a].Intervals = e.m.Apps[a].Intervals[:len(e.m.Apps[a].Intervals)-1]
			}
			e.used[u] = false
			e.free++
		}
	}
	return nil
}

// Solution is an optimal mapping found by an exact solver, with its value
// and the search-effort counters of the run that produced it.
type Solution struct {
	Mapping mapping.Mapping
	Value   float64
	Stats   SearchStats
}

// MinPeriod returns the mapping minimizing the weighted global period.
func MinPeriod(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel) (Solution, error) {
	return Minimize(inst, Options{Rule: rule, Modes: FastestOnly},
		Spec{Objective: ObjPeriod, Model: model})
}

// MinLatency returns the mapping minimizing the weighted global latency.
func MinLatency(inst *pipeline.Instance, rule mapping.Rule) (Solution, error) {
	return Minimize(inst, Options{Rule: rule, Modes: FastestOnly},
		Spec{Objective: ObjLatency, Model: pipeline.Overlap})
}

// MinLatencyGivenPeriod minimizes the weighted global latency subject to
// per-application period bounds (unweighted T_a <= periodBounds[a]).
func MinLatencyGivenPeriod(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, periodBounds []float64) (Solution, error) {
	return Minimize(inst, Options{Rule: rule, Modes: FastestOnly},
		Spec{Objective: ObjLatency, Model: model, PeriodBounds: periodBounds})
}

// MinPeriodGivenLatency minimizes the weighted global period subject to
// per-application latency bounds.
func MinPeriodGivenLatency(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, latencyBounds []float64) (Solution, error) {
	return Minimize(inst, Options{Rule: rule, Modes: FastestOnly},
		Spec{Objective: ObjPeriod, Model: model, LatencyBounds: latencyBounds})
}

// MinEnergyGivenPeriod minimizes the total energy subject to per-application
// period bounds. All modes are enumerated.
func MinEnergyGivenPeriod(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, periodBounds []float64) (Solution, error) {
	return Minimize(inst, Options{Rule: rule, Modes: AllModes},
		Spec{Objective: ObjEnergy, Model: model, PeriodBounds: periodBounds})
}

// MinEnergy minimizes the total energy with no performance constraint at
// all (every application still has to be mapped). This is the "minimum
// energy to run both applications" computation of Section 2.
func MinEnergy(inst *pipeline.Instance, rule mapping.Rule) (Solution, error) {
	return Minimize(inst, Options{Rule: rule, Modes: AllModes},
		Spec{Objective: ObjEnergy, Model: pipeline.Overlap})
}

// MinEnergyGivenPeriodLatency is the exact tri-criteria solver: minimize
// total energy subject to per-application period and latency bounds
// (Theorems 26-27's NP-hard problem).
func MinEnergyGivenPeriodLatency(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, periodBounds, latencyBounds []float64) (Solution, error) {
	return Minimize(inst, Options{Rule: rule, Modes: AllModes},
		Spec{Objective: ObjEnergy, Model: model, PeriodBounds: periodBounds, LatencyBounds: latencyBounds})
}

// MinPeriodGivenLatencyEnergy minimizes the weighted global period subject
// to per-application latency bounds and a global energy budget (which must
// be positive to constrain).
func MinPeriodGivenLatencyEnergy(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, latencyBounds []float64, energyBudget float64) (Solution, error) {
	return Minimize(inst, Options{Rule: rule, Modes: AllModes},
		Spec{Objective: ObjPeriod, Model: model, LatencyBounds: latencyBounds, EnergyBudget: energyBudget})
}

// Point is one (period, latency, energy) value vector with a witness
// mapping.
type Point struct {
	Period, Latency, Energy float64
	Mapping                 mapping.Mapping
}

// Dominates reports whether p is at least as good as q on all three
// criteria and strictly better on at least one.
func (p Point) Dominates(q Point) bool {
	le := fmath.LE(p.Period, q.Period) && fmath.LE(p.Latency, q.Latency) && fmath.LE(p.Energy, q.Energy)
	lt := fmath.LT(p.Period, q.Period) || fmath.LT(p.Latency, q.Latency) || fmath.LT(p.Energy, q.Energy)
	return le && lt
}

// ParetoFront enumerates every mapping and returns the non-dominated
// (period, latency, energy) points, sorted by period. This is the full
// trade-off surface discussed in the introduction (laptop and server
// problems).
func ParetoFront(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel) ([]Point, error) {
	var front []Point
	err := Enumerate(inst, Options{Rule: rule, Modes: AllModes}, func(m *mapping.Mapping) {
		// Three scalar evaluations, not mapping.Evaluate: the full metrics
		// carry per-app slices that would allocate at every leaf.
		cand := Point{
			Period:  mapping.Period(inst, m, model),
			Latency: mapping.Latency(inst, m),
			Energy:  mapping.Energy(inst, m),
		}
		for _, q := range front {
			if q.Dominates(cand) || (fmath.EQ(q.Period, cand.Period) && fmath.EQ(q.Latency, cand.Latency) && fmath.EQ(q.Energy, cand.Energy)) {
				return
			}
		}
		cand.Mapping = m.Clone()
		keep := front[:0]
		for _, q := range front {
			if !cand.Dominates(q) {
				keep = append(keep, q)
			}
		}
		front = append(keep, cand)
	})
	if err != nil {
		return nil, err
	}
	sortPoints(front)
	return front, nil
}

func sortPoints(ps []Point) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func less(a, b Point) bool {
	//lint:allow floatcmp sort comparator needs an exact total order (tolerant EQ is not transitive)
	if a.Period != b.Period {
		return a.Period < b.Period
	}
	//lint:allow floatcmp sort comparator needs an exact total order (tolerant EQ is not transitive)
	if a.Latency != b.Latency {
		return a.Latency < b.Latency
	}
	return a.Energy < b.Energy
}
