package exact

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestMotivatingExampleHeadlineNumbers reproduces all four Section 2
// numbers by exhaustive search over interval mappings: this is experiment
// FIG1 of EXPERIMENTS.md.
func TestMotivatingExampleHeadlineNumbers(t *testing.T) {
	inst := pipeline.MotivatingExample()

	sol, err := MinPeriod(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatalf("MinPeriod: %v", err)
	}
	if !fmath.EQ(sol.Value, 1) {
		t.Errorf("optimal period = %g, want 1 (Equation 1)", sol.Value)
	}

	sol, err = MinLatency(&inst, mapping.Interval)
	if err != nil {
		t.Fatalf("MinLatency: %v", err)
	}
	if !fmath.EQ(sol.Value, 2.75) {
		t.Errorf("optimal latency = %g, want 2.75 (Equation 2)", sol.Value)
	}

	sol, err = MinEnergy(&inst, mapping.Interval)
	if err != nil {
		t.Fatalf("MinEnergy: %v", err)
	}
	if !fmath.EQ(sol.Value, 10) {
		t.Errorf("minimum energy = %g, want 10", sol.Value)
	}

	sol, err = MinEnergyGivenPeriod(&inst, mapping.Interval, pipeline.Overlap, []float64{2, 2})
	if err != nil {
		t.Fatalf("MinEnergyGivenPeriod: %v", err)
	}
	if !fmath.EQ(sol.Value, 46) {
		t.Errorf("energy under period <= 2 is %g, want 46", sol.Value)
	}
	// The found mapping must actually satisfy the bound.
	if tp := mapping.Period(&inst, &sol.Mapping, pipeline.Overlap); !fmath.LE(tp, 2) {
		t.Errorf("witness mapping has period %g > 2", tp)
	}
}

func TestMinEnergyUnconstrainedPeriod(t *testing.T) {
	// The energy-minimal mapping of the example runs App2 on P3's lowest
	// mode, giving period 14.
	inst := pipeline.MotivatingExample()
	sol, err := MinEnergy(&inst, mapping.Interval)
	if err != nil {
		t.Fatal(err)
	}
	if got := mapping.Period(&inst, &sol.Mapping, pipeline.Overlap); !fmath.EQ(got, 14) {
		t.Errorf("energy-minimal mapping period = %g, want 14", got)
	}
}

func TestEnumerateVisitsOnlyValidMappings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		cfg := workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 3,
			Procs: 3 + rng.Intn(2), Modes: 1 + rng.Intn(2),
			Class: pipeline.FullyHeterogeneous, MaxWork: 5, MaxData: 3, MaxSpeed: 5, MaxBandwidth: 3,
		}
		inst := workload.MustInstance(rng, cfg)
		for _, rule := range []mapping.Rule{mapping.OneToOne, mapping.Interval} {
			if rule == mapping.OneToOne && inst.TotalStages() > inst.Platform.NumProcessors() {
				continue
			}
			count := 0
			err := Enumerate(&inst, Options{Rule: rule, Modes: AllModes}, func(m *mapping.Mapping) {
				count++
				if err := m.Validate(&inst, rule); err != nil {
					t.Fatalf("trial %d: invalid mapping enumerated: %v", trial, err)
				}
			})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if count == 0 {
				t.Fatalf("trial %d (%v): no mappings enumerated", trial, rule)
			}
		}
	}
}

func TestCountMappingsTinyCase(t *testing.T) {
	// One application with 2 stages, 2 processors, uni-modal.
	// Interval mappings: whole app on P0 or P1 (2), or split across the
	// two processors in 2 orders (2) = 4.
	inst := pipeline.Instance{
		Apps:     []pipeline.Application{workload.Application(rand.New(rand.NewSource(1)), "a", 2, 3, 2)},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	n, err := CountMappings(&inst, Options{Rule: mapping.Interval, Modes: AllModes})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("CountMappings = %d, want 4", n)
	}
	n, err = CountMappings(&inst, Options{Rule: mapping.OneToOne, Modes: AllModes})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("one-to-one CountMappings = %d, want 2", n)
	}
	// With m modes per processor, counts scale by m^(enrolled processors).
	inst.Platform = pipeline.NewHomogeneousPlatform(2, []float64{1, 2, 3}, 1, 1)
	n, err = CountMappings(&inst, Options{Rule: mapping.Interval, Modes: AllModes})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*3+2*9 {
		t.Errorf("multi-modal CountMappings = %d, want 24", n)
	}
}

func TestSearchSpaceLimit(t *testing.T) {
	inst := workload.StreamingCenter(8)
	_, err := CountMappings(&inst, Options{Rule: mapping.Interval, Modes: AllModes, Limit: 100})
	if !errors.Is(err, ErrSearchSpace) {
		t.Errorf("expected ErrSearchSpace, got %v", err)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	inst := pipeline.MotivatingExample()
	_, err := MinEnergyGivenPeriod(&inst, mapping.Interval, pipeline.Overlap, []float64{0.01, 0.01})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

func TestParetoFrontProperties(t *testing.T) {
	inst := pipeline.MotivatingExample()
	front, err := ParetoFront(&inst, mapping.Interval, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// No point dominates another.
	for i := range front {
		for j := range front {
			if i != j && front[i].Dominates(front[j]) {
				t.Errorf("front point %d dominates %d", i, j)
			}
		}
	}
	// The extremes of the front match the single-criterion optima.
	bestT, bestE := math.Inf(1), math.Inf(1)
	for _, pt := range front {
		bestT = math.Min(bestT, pt.Period)
		bestE = math.Min(bestE, pt.Energy)
	}
	if !fmath.EQ(bestT, 1) {
		t.Errorf("front min period = %g, want 1", bestT)
	}
	if !fmath.EQ(bestE, 10) {
		t.Errorf("front min energy = %g, want 10", bestE)
	}
	// The Section 2 trade-off point (T=2, E=46) must be on the front.
	found := false
	for _, pt := range front {
		if fmath.EQ(pt.Period, 2) && fmath.EQ(pt.Energy, 46) {
			found = true
		}
	}
	if !found {
		t.Error("trade-off point (period 2, energy 46) missing from the Pareto front")
	}
	// Witness mappings must reproduce their point values.
	for i, pt := range front {
		mt := mapping.Evaluate(&inst, &pt.Mapping, pipeline.Overlap)
		if !fmath.EQ(mt.Period, pt.Period) || !fmath.EQ(mt.Energy, pt.Energy) || !fmath.EQ(mt.Latency, pt.Latency) {
			t.Errorf("front point %d: witness metrics %+v do not match point", i, mt)
		}
	}
}

func TestDominates(t *testing.T) {
	a := Point{Period: 1, Latency: 2, Energy: 3}
	b := Point{Period: 1, Latency: 2, Energy: 4}
	if !b.Dominates(a) == false || a.Dominates(a) {
		t.Error("dominance relation broken on equal/self comparisons")
	}
	if !a.Dominates(b) {
		t.Error("a should dominate b")
	}
	c := Point{Period: 0.5, Latency: 9, Energy: 9}
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("incomparable points reported as dominated")
	}
}

func TestTriCriteriaBoundsRespected(t *testing.T) {
	inst := pipeline.MotivatingExample()
	sol, err := MinEnergyGivenPeriodLatency(&inst, mapping.Interval, pipeline.Overlap, []float64{2, 2}, []float64{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	for a := range inst.Apps {
		if tp := mapping.AppPeriod(&inst, &sol.Mapping, a, pipeline.Overlap); !fmath.LE(tp, 2) {
			t.Errorf("app %d period %g violates bound", a, tp)
		}
	}
	if l0 := mapping.AppLatency(&inst, &sol.Mapping, 0); !fmath.LE(l0, 6) {
		t.Errorf("app 0 latency %g violates bound 6", l0)
	}
	if l1 := mapping.AppLatency(&inst, &sol.Mapping, 1); !fmath.LE(l1, 8) {
		t.Errorf("app 1 latency %g violates bound 8", l1)
	}
	// Tightening the latency bound cannot decrease the optimal energy.
	sol2, err := MinEnergyGivenPeriodLatency(&inst, mapping.Interval, pipeline.Overlap, []float64{2, 2}, []float64{4, 6})
	if err == nil && fmath.LT(sol2.Value, sol.Value) {
		t.Errorf("tighter bounds gave lower energy: %g < %g", sol2.Value, sol.Value)
	}
}

func TestMinPeriodGivenLatencyEnergy(t *testing.T) {
	inst := pipeline.MotivatingExample()
	// With unlimited energy and loose latency this must equal the
	// unconstrained optimum 1.
	sol, err := MinPeriodGivenLatencyEnergy(&inst, mapping.Interval, pipeline.Overlap, []float64{100, 100}, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(sol.Value, 1) {
		t.Errorf("period = %g, want 1", sol.Value)
	}
	// With an energy budget of 46 the best period is 2 (the Section 2
	// trade-off is optimal).
	sol, err = MinPeriodGivenLatencyEnergy(&inst, mapping.Interval, pipeline.Overlap, []float64{100, 100}, 46)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(sol.Value, 2) {
		t.Errorf("period under energy 46 = %g, want 2", sol.Value)
	}
}

func TestOneToOneNeedsEnoughProcessors(t *testing.T) {
	// 7 stages, 3 processors: no one-to-one mapping exists.
	inst := pipeline.MotivatingExample()
	n, err := CountMappings(&inst, Options{Rule: mapping.OneToOne, Modes: AllModes})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("one-to-one mappings counted on undersized platform: %d", n)
	}
}
