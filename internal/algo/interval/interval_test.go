package interval

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/algo/exact"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// smallFullyHom draws a random fully homogeneous instance small enough for
// the exhaustive oracle.
func smallFullyHom(rng *rand.Rand, modes int) pipeline.Instance {
	cfg := workload.Config{
		Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 4,
		Procs: 3 + rng.Intn(2), Modes: modes,
		Class: pipeline.FullyHomogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 6,
	}
	return workload.MustInstance(rng, cfg)
}

func models() []pipeline.CommModel {
	return []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap}
}

// TestMinPeriodFullyHomMatchesOracle verifies Theorem 3: the DP plus
// Algorithm 2 result equals exhaustive search on random fully homogeneous
// instances, under both communication models.
func TestMinPeriodFullyHomMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		inst := smallFullyHom(rng, 1+rng.Intn(2))
		if trial%3 == 0 { // exercise weights
			inst.Apps[0].Weight = float64(1 + rng.Intn(3))
		}
		for _, model := range models() {
			m, got, err := MinPeriodFullyHom(&inst, model)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := m.Validate(&inst, mapping.Interval); err != nil {
				t.Fatalf("trial %d: invalid mapping: %v", trial, err)
			}
			if !fmath.EQ(mapping.Period(&inst, &m, model), got) {
				t.Fatalf("trial %d: reported value %g does not match mapping period %g", trial, got, mapping.Period(&inst, &m, model))
			}
			want, err := exact.MinPeriod(&inst, mapping.Interval, model)
			if err != nil {
				t.Fatalf("trial %d oracle: %v", trial, err)
			}
			if !fmath.EQ(got, want.Value) {
				t.Fatalf("trial %d (%v): period %g, oracle %g", trial, model, got, want.Value)
			}
		}
	}
}

// TestMinLatencyGivenPeriodMatchesOracle verifies Theorems 15-16.
func TestMinLatencyGivenPeriodMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 40; trial++ {
		inst := smallFullyHom(rng, 1)
		for _, model := range models() {
			// Pick a reachable bound: the single-processor period of each
			// application scaled down a bit.
			bounds := make([]float64, len(inst.Apps))
			speeds, b, _ := homSetup(&inst)
			for a := range inst.Apps {
				dp := NewSingleDP(&inst.Apps[a], speeds, b, model)
				curve, _ := dp.MinPeriod(maxProcsPerApp(&inst))
				bounds[a] = curve[0] * (0.75 + rng.Float64()/2)
				if bounds[a] < curve[len(curve)-1] {
					bounds[a] = curve[len(curve)-1]
				}
			}
			m, got, err := MinLatencyGivenPeriodFullyHom(&inst, model, bounds)
			want, werr := exact.MinLatencyGivenPeriod(&inst, mapping.Interval, model, bounds)
			if (err != nil) != (werr != nil) {
				t.Fatalf("trial %d (%v): feasibility mismatch: dp=%v oracle=%v", trial, model, err, werr)
			}
			if err != nil {
				continue
			}
			if !fmath.EQ(got, want.Value) {
				t.Fatalf("trial %d (%v): latency %g, oracle %g (bounds %v)", trial, model, got, want.Value, bounds)
			}
			for a := range inst.Apps {
				if tp := mapping.AppPeriod(&inst, &m, a, model); !fmath.LE(tp, bounds[a]) {
					t.Fatalf("trial %d: app %d period %g violates bound %g", trial, a, tp, bounds[a])
				}
			}
		}
	}
}

// TestMinPeriodGivenLatencyMatchesOracle verifies the binary-search
// direction of Theorem 15.
func TestMinPeriodGivenLatencyMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 40; trial++ {
		inst := smallFullyHom(rng, 1)
		for _, model := range models() {
			// Latency bound: whole-app latency inflated a bit, so always
			// feasible.
			bounds := make([]float64, len(inst.Apps))
			speeds, b, _ := homSetup(&inst)
			for a := range inst.Apps {
				dp := NewSingleDP(&inst.Apps[a], speeds, b, model)
				l, _, _ := dp.MinLatencyGivenPeriod(1, math.Inf(1))
				bounds[a] = l * (1 + rng.Float64())
			}
			m, got, err := MinPeriodGivenLatencyFullyHom(&inst, model, bounds)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want, err := exact.MinPeriodGivenLatency(&inst, mapping.Interval, model, bounds)
			if err != nil {
				t.Fatalf("trial %d oracle: %v", trial, err)
			}
			if !fmath.EQ(got, want.Value) {
				t.Fatalf("trial %d (%v): period %g, oracle %g", trial, model, got, want.Value)
			}
			for a := range inst.Apps {
				if l := mapping.AppLatency(&inst, &m, a); !fmath.LE(l, bounds[a]) {
					t.Fatalf("trial %d: app %d latency %g violates bound %g", trial, a, l, bounds[a])
				}
			}
		}
	}
}

// TestMinEnergyGivenPeriodMatchesOracle verifies Theorems 18 and 21.
func TestMinEnergyGivenPeriodMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		inst := smallFullyHom(rng, 2+rng.Intn(2))
		inst.Energy = pipeline.EnergyModel{Static: float64(rng.Intn(3)), Alpha: 2 + float64(rng.Intn(2))}
		for _, model := range models() {
			bounds := make([]float64, len(inst.Apps))
			speeds, b, _ := homSetup(&inst)
			for a := range inst.Apps {
				dp := NewSingleDP(&inst.Apps[a], speeds, b, model)
				curve, _ := dp.MinPeriod(maxProcsPerApp(&inst))
				// Between the best parallel period and the sequential one.
				bounds[a] = curve[len(curve)-1] + rng.Float64()*(curve[0]-curve[len(curve)-1]+1)
			}
			_, got, err := MinEnergyGivenPeriodFullyHom(&inst, model, bounds)
			want, werr := exact.MinEnergyGivenPeriod(&inst, mapping.Interval, model, bounds)
			if (err != nil) != (werr != nil) {
				t.Fatalf("trial %d (%v): feasibility mismatch: dp=%v oracle=%v", trial, model, err, werr)
			}
			if err != nil {
				continue
			}
			if !fmath.EQ(got, want.Value) {
				t.Fatalf("trial %d (%v): energy %g, oracle %g (bounds %v)", trial, model, got, want.Value, bounds)
			}
		}
	}
}

// TestTriCriteriaUniModalMatchesOracle verifies the Theorem 24 variants on
// uni-modal fully homogeneous platforms.
func TestTriCriteriaUniModalMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 30; trial++ {
		inst := smallFullyHom(rng, 1)
		model := models()[trial%2]
		perProc := inst.Energy.Power(inst.Platform.Processors[0].Speeds[0])
		budget := perProc * float64(len(inst.Apps)+rng.Intn(inst.Platform.NumProcessors()))
		loose := make([]float64, len(inst.Apps))
		for a := range loose {
			loose[a] = 1e9
		}
		m, got, err := MinPeriodGivenLatencyEnergyUniModal(&inst, model, loose, budget)
		if errors.Is(err, ErrInfeasible) || errors.Is(err, ErrWrongPlatform) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, werr := exact.MinPeriodGivenLatencyEnergy(&inst, mapping.Interval, model, loose, budget)
		if werr != nil {
			t.Fatalf("trial %d oracle: %v", trial, werr)
		}
		if !fmath.EQ(got, want.Value) {
			t.Fatalf("trial %d: tri-criteria period %g, oracle %g (budget %g)", trial, got, want.Value, budget)
		}
		if e := mapping.Energy(&inst, &m); !fmath.LE(e, budget) {
			t.Fatalf("trial %d: energy %g exceeds budget %g", trial, e, budget)
		}
	}
}

// TestMinEnergyGivenPeriodLatencyUniModal checks the third Theorem 24
// variant against the oracle.
func TestMinEnergyGivenPeriodLatencyUniModal(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 30; trial++ {
		inst := smallFullyHom(rng, 1)
		model := models()[trial%2]
		speeds, b, _ := homSetup(&inst)
		perBounds := make([]float64, len(inst.Apps))
		latBounds := make([]float64, len(inst.Apps))
		for a := range inst.Apps {
			dp := NewSingleDP(&inst.Apps[a], speeds, b, model)
			curve, _ := dp.MinPeriod(maxProcsPerApp(&inst))
			perBounds[a] = curve[0]*0.6 + curve[len(curve)-1]*0.4
			l, _, _ := dp.MinLatencyGivenPeriod(maxProcsPerApp(&inst), perBounds[a])
			latBounds[a] = l * (1 + rng.Float64()*0.5)
		}
		_, got, err := MinEnergyGivenPeriodLatencyUniModal(&inst, model, perBounds, latBounds)
		want, werr := exact.MinEnergyGivenPeriodLatency(&inst, mapping.Interval, model, perBounds, latBounds)
		if (err != nil) != (werr != nil) {
			t.Fatalf("trial %d: feasibility mismatch: alg=%v oracle=%v", trial, err, werr)
		}
		if err != nil {
			continue
		}
		if !fmath.EQ(got, want.Value) {
			t.Fatalf("trial %d: energy %g, oracle %g", trial, got, want.Value)
		}
	}
}

// TestMinLatencyCommHomMatchesOracle verifies Theorem 12 on communication
// homogeneous platforms with heterogeneous multi-modal processors.
func TestMinLatencyCommHomMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 40; trial++ {
		cfg := workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 4,
			Procs: 3 + rng.Intn(2), Modes: 1 + rng.Intn(2),
			Class: pipeline.CommHomogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 6,
		}
		inst := workload.MustInstance(rng, cfg)
		if trial%4 == 0 {
			inst.Apps[0].Weight = 2
		}
		m, got, err := MinLatencyCommHom(&inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !fmath.EQ(mapping.Latency(&inst, &m), got) {
			t.Fatalf("trial %d: value/mapping mismatch", trial)
		}
		want, err := exact.MinLatency(&inst, mapping.Interval)
		if err != nil {
			t.Fatalf("trial %d oracle: %v", trial, err)
		}
		if !fmath.EQ(got, want.Value) {
			t.Fatalf("trial %d: latency %g, oracle %g", trial, got, want.Value)
		}
	}
}

func TestAllocateGreedy(t *testing.T) {
	// Two applications; app0 improves steeply with processors, app1 not.
	curves := [][]float64{
		{10, 5, 2, 1},
		{4, 4, 4, 4},
	}
	counts, val := Allocate(curves, 4)
	if counts[0] != 3 || counts[1] != 1 {
		t.Errorf("counts = %v, want [3 1]", counts)
	}
	if val != 4 {
		t.Errorf("value = %g, want 4 (app1 becomes the bottleneck)", val)
	}
	// Early stop: app1 is the bottleneck and cannot improve, so extra
	// processors are not wasted on it.
	counts, val = Allocate(curves, 8)
	if val != 4 {
		t.Errorf("value with 8 processors = %g, want 4", val)
	}
	if counts[0]+counts[1] > 8 {
		t.Errorf("allocated more processors than available: %v", counts)
	}
}

func TestSingleDPMinPeriodManual(t *testing.T) {
	// Chain of works (4, 4) with no communication, speed 1: one processor
	// gives period 8, two give 4.
	app := pipeline.Application{Stages: []pipeline.Stage{{Work: 4}, {Work: 4}}, Weight: 1}
	dp := NewSingleDP(&app, []float64{1}, 1, pipeline.Overlap)
	curve, parts := dp.MinPeriod(3)
	if !fmath.EQ(curve[0], 8) || !fmath.EQ(curve[1], 4) || !fmath.EQ(curve[2], 4) {
		t.Errorf("curve = %v, want [8 4 4]", curve)
	}
	if len(parts[1]) != 2 {
		t.Errorf("2-processor partition has %d intervals", len(parts[1]))
	}
	// With a heavy inter-stage communication, splitting hurts in the
	// no-overlap model: works (4,4), delta^1 = 100, b = 10.
	app2 := pipeline.Application{Stages: []pipeline.Stage{{Work: 4, Out: 100}, {Work: 4}}, Weight: 1}
	dp2 := NewSingleDP(&app2, []float64{1}, 10, pipeline.NoOverlap)
	curve2, _ := dp2.MinPeriod(2)
	if !fmath.EQ(curve2[0], 8) {
		t.Errorf("one-processor period = %g, want 8", curve2[0])
	}
	if !fmath.EQ(curve2[1], 8) {
		t.Errorf("two-processor period = %g, want 8 (split costs 10+4)", curve2[1])
	}
}

func TestSingleDPEnergyPrefersSlowModes(t *testing.T) {
	// Works (2, 2), speeds {1, 2}, no communication. Period bound 2:
	// cheapest is two processors at speed 1 (energy 2) rather than one at
	// speed 2 (energy 4).
	app := pipeline.Application{Stages: []pipeline.Stage{{Work: 2}, {Work: 2}}, Weight: 1}
	dp := NewSingleDP(&app, []float64{1, 2}, 1, pipeline.Overlap)
	e, part, ok := dp.MinEnergyGivenPeriod(2, 2, pipeline.DefaultEnergy)
	if !ok {
		t.Fatal("feasible problem reported infeasible")
	}
	if !fmath.EQ(e, 2) {
		t.Errorf("energy = %g, want 2", e)
	}
	if len(part) != 2 || part[0].Mode != 0 || part[1].Mode != 0 {
		t.Errorf("partition = %+v, want two slow intervals", part)
	}
	// Bound 4: a single processor at speed 1 suffices (energy 1).
	e, part, ok = dp.MinEnergyGivenPeriod(2, 4, pipeline.DefaultEnergy)
	if !ok || !fmath.EQ(e, 1) || len(part) != 1 {
		t.Errorf("energy = %g, partition %+v; want 1 with one interval", e, part)
	}
	// Bound below reach: infeasible.
	if _, _, ok := dp.MinEnergyGivenPeriod(2, 0.5, pipeline.DefaultEnergy); ok {
		t.Error("infeasible bound accepted")
	}
}

func TestWrongPlatformErrors(t *testing.T) {
	inst := pipeline.MotivatingExample() // comm-homogeneous, not fully hom
	if _, _, err := MinPeriodFullyHom(&inst, pipeline.Overlap); !errors.Is(err, ErrWrongPlatform) {
		t.Errorf("MinPeriodFullyHom on comm-hom platform: %v", err)
	}
	het := inst.Clone()
	het.Platform.Bandwidth[0][1] = 7
	het.Platform.Bandwidth[1][0] = 7
	if _, _, err := MinLatencyCommHom(&het); !errors.Is(err, ErrWrongPlatform) {
		t.Errorf("MinLatencyCommHom on het platform: %v", err)
	}
	// Too few processors.
	small := pipeline.Instance{
		Apps: []pipeline.Application{
			pipeline.NewUniformApplication("a", 2, 1),
			pipeline.NewUniformApplication("b", 2, 1),
		},
		Platform: pipeline.NewHomogeneousPlatform(1, []float64{1}, 1, 2),
		Energy:   pipeline.DefaultEnergy,
	}
	if _, _, err := MinPeriodFullyHom(&small, pipeline.Overlap); !errors.Is(err, ErrWrongPlatform) {
		t.Errorf("undersized platform: %v", err)
	}
}

func TestInfeasibleBoundsError(t *testing.T) {
	inst := pipeline.Instance{
		Apps:     []pipeline.Application{pipeline.NewUniformApplication("a", 3, 4)},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	_, _, err := MinLatencyGivenPeriodFullyHom(&inst, pipeline.Overlap, []float64{0.1})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
	_, _, err = MinEnergyGivenPeriodFullyHom(&inst, pipeline.Overlap, []float64{0.1})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("energy: expected ErrInfeasible, got %v", err)
	}
}

func TestEnergyBudgetTooSmall(t *testing.T) {
	inst := pipeline.Instance{
		Apps: []pipeline.Application{
			pipeline.NewUniformApplication("a", 2, 1),
			pipeline.NewUniformApplication("b", 2, 1),
		},
		Platform: pipeline.NewHomogeneousPlatform(4, []float64{2}, 1, 2),
		Energy:   pipeline.DefaultEnergy,
	}
	// Each processor costs 4; two applications need at least 8.
	_, _, err := MinPeriodGivenLatencyEnergyUniModal(&inst, pipeline.Overlap, []float64{100, 100}, 7)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

// TestCurveMonotonicityQuick: every per-application curve used by
// Algorithm 2 must be non-increasing in the processor count — the property
// its optimality proof depends on.
func TestCurveMonotonicityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 60; trial++ {
		cfg := workload.Config{
			Apps: 1, MinStages: 2, MaxStages: 8, Procs: 6, Modes: 1 + rng.Intn(3),
			Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 7,
		}
		inst := workload.MustInstance(rng, cfg)
		speeds, b, err := homSetup(&inst)
		if err != nil {
			t.Fatal(err)
		}
		model := models()[trial%2]
		dp := NewSingleDP(&inst.Apps[0], speeds, b, model)
		curve, parts := dp.MinPeriod(6)
		for q := 1; q < len(curve); q++ {
			if fmath.GT(curve[q], curve[q-1]) {
				t.Fatalf("trial %d: period curve increases at q=%d: %v", trial, q+1, curve)
			}
			if len(parts[q]) > q+1 {
				t.Fatalf("trial %d: partition for q=%d uses %d intervals", trial, q+1, len(parts[q]))
			}
		}
		// Energy curves under a generous bound are non-increasing too.
		eCurve, _ := dp.EnergyCurve(6, curve[0]*2, inst.Energy)
		for q := 1; q < len(eCurve); q++ {
			if fmath.GT(eCurve[q], eCurve[q-1]) {
				t.Fatalf("trial %d: energy curve increases at q=%d: %v", trial, q+1, eCurve)
			}
		}
	}
}

// TestLatencyNeverBelowWholeApp: splitting an application can only add
// communication, so the Theorem 15 latency at any period bound is at least
// the whole-application latency on one processor.
func TestLatencyNeverBelowWholeApp(t *testing.T) {
	rng := rand.New(rand.NewSource(809))
	for trial := 0; trial < 40; trial++ {
		inst := smallFullyHom(rng, 1)
		speeds, b, _ := homSetup(&inst)
		model := models()[trial%2]
		dp := NewSingleDP(&inst.Apps[0], speeds, b, model)
		whole, _, ok := dp.MinLatencyGivenPeriod(1, 1e18)
		if !ok {
			t.Fatal("whole-application mapping infeasible under infinite bound")
		}
		for q := 2; q <= 4; q++ {
			l, _, ok := dp.MinLatencyGivenPeriod(q, 1e18)
			if !ok {
				t.Fatal("unbounded latency DP failed")
			}
			if fmath.LT(l, whole) {
				t.Fatalf("trial %d: %d-processor latency %g below whole-app %g", trial, q, l, whole)
			}
		}
	}
}
