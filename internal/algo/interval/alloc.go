package interval

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/algo/alloc"

	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// ErrInfeasible is returned when no mapping satisfies the given bounds.
var ErrInfeasible = errors.New("interval: no mapping satisfies the bounds")

// ErrWrongPlatform is returned when an algorithm's platform preconditions
// (class, processor count, modality) do not hold.
var ErrWrongPlatform = errors.New("interval: platform does not satisfy the algorithm's preconditions")

// Allocate is Algorithm 2; see package alloc for the implementation and
// the optimality argument. It is re-exported here because the interval
// theorems are its primary users.
func Allocate(curves [][]float64, p int) ([]int, float64) {
	return alloc.Allocate(curves, p)
}

// homSetup extracts the common speed set and uniform bandwidth of a fully
// homogeneous platform, failing when the preconditions do not hold.
func homSetup(inst *pipeline.Instance) (speeds []float64, b float64, err error) {
	if inst.Platform.Classify() != pipeline.FullyHomogeneous {
		return nil, 0, fmt.Errorf("%w: want fully homogeneous, have %v", ErrWrongPlatform, inst.Platform.Classify())
	}
	if inst.Platform.NumProcessors() < len(inst.Apps) {
		return nil, 0, fmt.Errorf("%w: %d processors cannot host %d applications", ErrWrongPlatform, inst.Platform.NumProcessors(), len(inst.Apps))
	}
	b, _ = inst.Platform.HomogeneousLinks()
	return inst.Platform.Processors[0].Speeds, b, nil
}

// assemble turns per-application partitions into a Mapping by handing out
// processor indices sequentially (processors are identical, so identity
// does not matter).
func assemble(inst *pipeline.Instance, parts [][]Choice) (mapping.Mapping, error) {
	m := mapping.Mapping{Apps: make([]mapping.AppMapping, len(parts))}
	next := 0
	for a, part := range parts {
		for _, c := range part {
			if next >= inst.Platform.NumProcessors() {
				return mapping.Mapping{}, fmt.Errorf("interval: partition needs more than %d processors", inst.Platform.NumProcessors())
			}
			m.Apps[a].Intervals = append(m.Apps[a].Intervals, mapping.PlacedInterval{
				From: c.From, To: c.To, Proc: next, Mode: c.Mode,
			})
			next++
		}
	}
	if err := m.Validate(inst, mapping.Interval); err != nil {
		return mapping.Mapping{}, err
	}
	return m, nil
}

// maxProcsPerApp bounds how many processors one application can receive:
// every other application keeps at least one.
func maxProcsPerApp(inst *pipeline.Instance) int {
	return inst.Platform.NumProcessors() - len(inst.Apps) + 1
}

// MinPeriodFullyHom implements Theorem 3: the interval mapping minimizing
// the weighted global period max_a W_a*T_a on a fully homogeneous platform,
// via the single-application dynamic program and Algorithm 2. Processors
// run at their fastest mode (energy is not a criterion).
func MinPeriodFullyHom(inst *pipeline.Instance, model pipeline.CommModel) (mapping.Mapping, float64, error) {
	speeds, b, err := homSetup(inst)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	mx := maxProcsPerApp(inst)
	curves := make([][]float64, len(inst.Apps))
	parts := make([][][]Choice, len(inst.Apps))
	for a := range inst.Apps {
		dp := NewSingleDP(&inst.Apps[a], speeds, b, model)
		curve, ps := dp.MinPeriod(mx)
		w := inst.Apps[a].EffectiveWeight()
		for i := range curve {
			curve[i] *= w
		}
		curves[a], parts[a] = curve, ps
	}
	counts, value := Allocate(curves, inst.Platform.NumProcessors())
	chosen := make([][]Choice, len(inst.Apps))
	for a := range chosen {
		chosen[a] = parts[a][counts[a]-1]
	}
	m, err := assemble(inst, chosen)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	return m, value, nil
}

// MinLatencyGivenPeriodFullyHom implements the latency half of Theorem 16:
// minimize the weighted global latency subject to a per-application period
// bound periodBounds[a] (on the unweighted T_a), on a fully homogeneous
// platform.
func MinLatencyGivenPeriodFullyHom(inst *pipeline.Instance, model pipeline.CommModel, periodBounds []float64) (mapping.Mapping, float64, error) {
	return allocByCurve(inst, func(dp *SingleDP, a, q int) (float64, []Choice, bool) {
		return dp.MinLatencyGivenPeriod(q, periodBounds[a])
	}, model)
}

// MinPeriodGivenLatencyFullyHom implements the period half of Theorem 16:
// minimize the weighted global period subject to a per-application latency
// bound latencyBounds[a] (on the unweighted L_a).
func MinPeriodGivenLatencyFullyHom(inst *pipeline.Instance, model pipeline.CommModel, latencyBounds []float64) (mapping.Mapping, float64, error) {
	return allocByCurve(inst, func(dp *SingleDP, a, q int) (float64, []Choice, bool) {
		return dp.MinPeriodGivenLatency(q, latencyBounds[a])
	}, model)
}

// allocByCurve runs Algorithm 2 on per-application curves produced by a
// bounded single-application solver.
func allocByCurve(inst *pipeline.Instance, solve func(dp *SingleDP, a, q int) (float64, []Choice, bool), model pipeline.CommModel) (mapping.Mapping, float64, error) {
	speeds, b, err := homSetup(inst)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	mx := maxProcsPerApp(inst)
	curves := make([][]float64, len(inst.Apps))
	parts := make([][][]Choice, len(inst.Apps))
	for a := range inst.Apps {
		dp := NewSingleDP(&inst.Apps[a], speeds, b, model)
		w := inst.Apps[a].EffectiveWeight()
		curves[a] = make([]float64, mx)
		parts[a] = make([][]Choice, mx)
		for q := 1; q <= mx; q++ {
			v, part, ok := solve(dp, a, q)
			if !ok {
				curves[a][q-1] = math.Inf(1)
				continue
			}
			curves[a][q-1] = w * v
			parts[a][q-1] = part
		}
		if math.IsInf(curves[a][mx-1], 1) {
			return mapping.Mapping{}, 0, fmt.Errorf("%w: application %d", ErrInfeasible, a)
		}
	}
	counts, value := Allocate(curves, inst.Platform.NumProcessors())
	// Algorithm 2 starts at one processor per application, which may be
	// infeasible under the bounds even though larger counts are feasible;
	// grow any infeasible application greedily (the curve is +Inf there,
	// so it is the bottleneck and Allocate already grew it; this guard
	// catches the case where growth stopped on a different application).
	chosen := make([][]Choice, len(inst.Apps))
	for a := range chosen {
		if math.IsInf(curves[a][counts[a]-1], 1) {
			return mapping.Mapping{}, 0, ErrInfeasible
		}
		chosen[a] = parts[a][counts[a]-1]
	}
	if math.IsInf(value, 1) {
		return mapping.Mapping{}, 0, ErrInfeasible
	}
	m, err := assemble(inst, chosen)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	return m, value, nil
}

// MinEnergyGivenPeriodFullyHom implements Theorems 18 and 21: minimize the
// total energy subject to a per-application period bound on a fully
// homogeneous (multi-modal) platform. Unlike the max-based criteria this
// composes per-application energies additively, so the combination across
// applications is the Theorem 21 dynamic program rather than Algorithm 2.
func MinEnergyGivenPeriodFullyHom(inst *pipeline.Instance, model pipeline.CommModel, periodBounds []float64) (mapping.Mapping, float64, error) {
	speeds, b, err := homSetup(inst)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	mx := maxProcsPerApp(inst)
	nApps := len(inst.Apps)
	curves := make([][]float64, nApps)
	parts := make([][][]Choice, nApps)
	for a := range inst.Apps {
		dp := NewSingleDP(&inst.Apps[a], speeds, b, model)
		curves[a], parts[a] = dp.EnergyCurve(mx, periodBounds[a], inst.Energy)
	}
	counts, total, ok := combineAdditive(curves, inst.Platform.NumProcessors())
	if !ok {
		return mapping.Mapping{}, 0, ErrInfeasible
	}
	chosen := make([][]Choice, nApps)
	for a := range chosen {
		chosen[a] = parts[a][counts[a]-1]
	}
	m, err := assemble(inst, chosen)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	return m, total, nil
}

// combineAdditive delegates to the shared Theorem 21 dynamic program.
func combineAdditive(curves [][]float64, p int) (counts []int, total float64, ok bool) {
	return alloc.CombineAdditive(curves, p)
}

// MinPeriodGivenLatencyEnergyUniModal implements the first tri-criteria
// variant of Theorem 24 on fully homogeneous uni-modal platforms: minimize
// the weighted global period subject to per-application latency bounds and
// a global energy budget. The budget caps the number of enrolled
// processors, after which Algorithm 2 applies.
func MinPeriodGivenLatencyEnergyUniModal(inst *pipeline.Instance, model pipeline.CommModel, latencyBounds []float64, energyBudget float64) (mapping.Mapping, float64, error) {
	capped, err := uniModalBudgetInstance(inst, energyBudget)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	m, v, err := MinPeriodGivenLatencyFullyHom(capped, model, latencyBounds)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	return m, v, nil
}

// MinLatencyGivenPeriodEnergyUniModal is the second Theorem 24 variant:
// minimize the weighted global latency subject to per-application period
// bounds and a global energy budget, on uni-modal fully homogeneous
// platforms.
func MinLatencyGivenPeriodEnergyUniModal(inst *pipeline.Instance, model pipeline.CommModel, periodBounds []float64, energyBudget float64) (mapping.Mapping, float64, error) {
	capped, err := uniModalBudgetInstance(inst, energyBudget)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	return MinLatencyGivenPeriodFullyHom(capped, model, periodBounds)
}

// MinEnergyGivenPeriodLatencyUniModal is the third Theorem 24 variant:
// minimize the energy subject to per-application period and latency bounds
// on uni-modal fully homogeneous platforms. Each application independently
// takes the fewest processors meeting both bounds.
func MinEnergyGivenPeriodLatencyUniModal(inst *pipeline.Instance, model pipeline.CommModel, periodBounds, latencyBounds []float64) (mapping.Mapping, float64, error) {
	speeds, b, err := homSetup(inst)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	if !inst.Platform.UniModal() {
		return mapping.Mapping{}, 0, fmt.Errorf("%w: want uni-modal processors", ErrWrongPlatform)
	}
	mx := maxProcsPerApp(inst)
	perProc := inst.Energy.Power(speeds[0])
	var chosen [][]Choice
	total := 0.0
	used := 0
	for a := range inst.Apps {
		dp := NewSingleDP(&inst.Apps[a], speeds, b, model)
		found := false
		for q := 1; q <= mx; q++ {
			l, part, ok := dp.MinLatencyGivenPeriod(q, periodBounds[a])
			if ok && fmath.LE(l, latencyBounds[a]) {
				chosen = append(chosen, part)
				total += float64(len(part)) * perProc
				used += len(part)
				found = true
				break
			}
		}
		if !found {
			return mapping.Mapping{}, 0, fmt.Errorf("%w: application %d", ErrInfeasible, a)
		}
	}
	if used > inst.Platform.NumProcessors() {
		return mapping.Mapping{}, 0, ErrInfeasible
	}
	m, err := assemble(inst, chosen)
	if err != nil {
		return mapping.Mapping{}, 0, err
	}
	return m, total, nil
}

// uniModalBudgetInstance returns a shallow view of inst whose platform is
// truncated to the maximum number of processors affordable under the energy
// budget (each enrolled uni-modal processor costs Static + s^Alpha).
func uniModalBudgetInstance(inst *pipeline.Instance, energyBudget float64) (*pipeline.Instance, error) {
	if inst.Platform.Classify() != pipeline.FullyHomogeneous || !inst.Platform.UniModal() {
		return nil, fmt.Errorf("%w: want uni-modal fully homogeneous", ErrWrongPlatform)
	}
	perProc := inst.Energy.Power(inst.Platform.Processors[0].Speeds[0])
	maxProcs := inst.Platform.NumProcessors()
	if perProc > 0 {
		afford := int(math.Floor(energyBudget/perProc + fmath.Eps))
		if afford < maxProcs {
			maxProcs = afford
		}
	}
	if maxProcs < len(inst.Apps) {
		return nil, fmt.Errorf("%w: energy budget %g affords %d processors for %d applications", ErrInfeasible, energyBudget, maxProcs, len(inst.Apps))
	}
	capped := inst.Clone()
	capped.Platform.Processors = capped.Platform.Processors[:maxProcs]
	capped.Platform.Bandwidth = capped.Platform.Bandwidth[:maxProcs]
	for i := range capped.Platform.Bandwidth {
		capped.Platform.Bandwidth[i] = capped.Platform.Bandwidth[i][:maxProcs]
	}
	for a := range capped.Platform.InBandwidth {
		capped.Platform.InBandwidth[a] = capped.Platform.InBandwidth[a][:maxProcs]
		capped.Platform.OutBandwidth[a] = capped.Platform.OutBandwidth[a][:maxProcs]
	}
	return &capped, nil
}
