package interval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// MinLatencyCommHom implements Theorem 12: on communication homogeneous
// platforms the optimal interval mapping for latency maps every application
// entirely onto a single processor (splitting can only add communication
// and cannot speed up computation beyond the fastest processor), so the
// problem reduces to assigning whole applications to the A fastest
// processors. The weighted objective max_a W_a*L_a is minimized by a binary
// search over the candidate latency set combined with the Theorem 1 greedy
// assignment. Processors run at their fastest mode.
func MinLatencyCommHom(inst *pipeline.Instance) (mapping.Mapping, float64, error) {
	cls := inst.Platform.Classify()
	if cls == pipeline.FullyHeterogeneous {
		return mapping.Mapping{}, 0, fmt.Errorf("%w: want communication homogeneous, have %v", ErrWrongPlatform, cls)
	}
	nApps := len(inst.Apps)
	p := inst.Platform.NumProcessors()
	if p < nApps {
		return mapping.Mapping{}, 0, fmt.Errorf("%w: %d processors cannot host %d applications", ErrWrongPlatform, p, nApps)
	}
	b, _ := inst.Platform.HomogeneousLinks()

	// Keep the A fastest processors: exchanging any enrolled processor for
	// an unused faster one can only decrease the latency.
	procIdx := make([]int, p)
	for i := range procIdx {
		procIdx[i] = i
	}
	sort.Slice(procIdx, func(i, j int) bool {
		return inst.Platform.Processors[procIdx[i]].MaxSpeed() < inst.Platform.Processors[procIdx[j]].MaxSpeed()
	})
	fastest := procIdx[p-nApps:] // ascending speed

	// wholeLatency(a, u) = W_a * (delta0/b + sum w / s_u + delta_n/b).
	wholeLatency := func(a, u int) float64 {
		app := &inst.Apps[a]
		s := inst.Platform.Processors[u].MaxSpeed()
		l := app.TotalWork() / s
		if app.In > 0 {
			l += app.In / b
		}
		if out := app.Stages[app.NumStages()-1].Out; out > 0 {
			l += out / b
		}
		return app.EffectiveWeight() * l
	}

	// Candidate latency set: one value per (application, processor) pair.
	var cands []float64
	for a := 0; a < nApps; a++ {
		for _, u := range fastest {
			cands = append(cands, wholeLatency(a, u))
		}
	}
	cands = fmath.SortedUnique(cands)

	// greedy assigns, scanning processors from slowest to fastest, any
	// free application whose whole-application latency fits within L.
	greedy := func(limit float64) ([]int, bool) {
		assignment := make([]int, nApps) // app -> processor
		taken := make([]bool, nApps)
		for _, u := range fastest {
			found := -1
			for a := 0; a < nApps; a++ {
				if !taken[a] && fmath.LE(wholeLatency(a, u), limit) {
					found = a
					break
				}
			}
			if found < 0 {
				return nil, false
			}
			taken[found] = true
			assignment[found] = u
		}
		return assignment, true
	}

	lo, hi := 0, len(cands)-1
	var bestAsg []int
	bestL := math.Inf(1)
	for lo <= hi {
		mid := (lo + hi) / 2
		if asg, ok := greedy(cands[mid]); ok {
			bestAsg, bestL = asg, cands[mid]
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if bestAsg == nil {
		return mapping.Mapping{}, 0, ErrInfeasible
	}
	m := mapping.Mapping{Apps: make([]mapping.AppMapping, nApps)}
	for a, u := range bestAsg {
		m.Apps[a] = mapping.WholeApp(inst, a, u, inst.Platform.Processors[u].NumModes()-1)
	}
	if err := m.Validate(inst, mapping.Interval); err != nil {
		return mapping.Mapping{}, 0, err
	}
	return m, bestL, nil
}
