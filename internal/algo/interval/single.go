// Package interval implements the paper's polynomial algorithms for
// interval mappings: the single-application chain-partition dynamic
// programs on fully homogeneous platforms (Theorems 3, 15, 18), the
// incremental processor-allocation Algorithm 2 and its multi-application
// wrappers (Theorems 3, 16, 21, 23-24), and the whole-application greedy
// for latency on communication homogeneous platforms (Theorem 12).
package interval

import (
	"math"

	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// Choice is one interval of a single-application partition, together with
// the selected execution mode (for the energy-aware programs; mode is the
// index into the common speed set).
type Choice struct {
	From, To int
	Mode     int
}

// SingleDP solves the single-application partition problems on identical
// processors with uniform bandwidth. It precomputes prefix sums of works so
// that interval costs are O(1).
type SingleDP struct {
	app    *pipeline.Application
	speeds []float64 // common mode set, ascending
	b      float64
	model  pipeline.CommModel
	pre    []float64
	n      int
}

// NewSingleDP prepares the dynamic programs for one application on
// processors with the given common (ascending) speed set and uniform
// bandwidth b.
func NewSingleDP(app *pipeline.Application, speeds []float64, b float64, model pipeline.CommModel) *SingleDP {
	return &SingleDP{
		app:    app,
		speeds: speeds,
		b:      b,
		model:  model,
		pre:    app.WorkPrefix(),
		n:      app.NumStages(),
	}
}

// cost returns the cycle time of the interval of stages [f, t] (0-based,
// inclusive) executed at speed s: in/comp/out combined per the
// communication model (Equations 3-4).
func (d *SingleDP) cost(f, t int, s float64) float64 {
	in := d.comm(d.app.InputSize(f))
	out := d.comm(d.app.OutputSize(t))
	comp := (d.pre[t+1] - d.pre[f]) / s
	return mapping.IntervalCost(d.model, in, comp, out)
}

func (d *SingleDP) comm(vol float64) float64 {
	if vol == 0 {
		return 0
	}
	return vol / d.b
}

// fastest returns the highest common speed.
func (d *SingleDP) fastest() float64 { return d.speeds[len(d.speeds)-1] }

// MinPeriod returns, for every processor count q in 1..maxProcs, the
// minimal period achievable with at most q processors (at the fastest
// speed, since energy is not a criterion), plus the optimal partitions.
// Curve[q-1] is non-increasing in q as required by Algorithm 2.
func (d *SingleDP) MinPeriod(maxProcs int) (curve []float64, parts [][]Choice) {
	q := min(maxProcs, d.n)
	s := d.fastest()
	// best[i][k]: minimal period mapping stages 0..i-1 onto exactly k
	// processors; cut[i][k]: start of the last interval.
	best := newMatrix(d.n+1, q+1, math.Inf(1))
	cut := newIntMatrix(d.n+1, q+1, -1)
	for i := 1; i <= d.n; i++ {
		best[i][1] = d.cost(0, i-1, s)
		cut[i][1] = 0
	}
	for k := 2; k <= q; k++ {
		for i := k; i <= d.n; i++ {
			for j := k - 1; j < i; j++ {
				v := math.Max(best[j][k-1], d.cost(j, i-1, s))
				if v < best[i][k] {
					best[i][k] = v
					cut[i][k] = j
				}
			}
		}
	}
	curve = make([]float64, maxProcs)
	parts = make([][]Choice, maxProcs)
	bestSoFar := math.Inf(1)
	bestK := 0
	for k := 1; k <= maxProcs; k++ {
		if k <= q && best[d.n][k] < bestSoFar {
			bestSoFar = best[d.n][k]
			bestK = k
		}
		curve[k-1] = bestSoFar
		parts[k-1] = d.backtrack(cut, bestK, len(d.speeds)-1)
	}
	return curve, parts
}

// backtrack reconstructs the partition of all n stages into exactly k
// intervals from the cut table, using the given mode for every interval.
func (d *SingleDP) backtrack(cut [][]int, k, mode int) []Choice {
	out := make([]Choice, k)
	i := d.n
	for kk := k; kk >= 1; kk-- {
		j := cut[i][kk]
		out[kk-1] = Choice{From: j, To: i - 1, Mode: mode}
		i = j
	}
	return out
}

// MinLatencyGivenPeriod implements the Theorem 15 dynamic program: the
// minimal latency over interval mappings using at most maxProcs processors
// whose period does not exceed periodBound, at the fastest speed. The
// boolean reports feasibility.
func (d *SingleDP) MinLatencyGivenPeriod(maxProcs int, periodBound float64) (float64, []Choice, bool) {
	q := min(maxProcs, d.n)
	s := d.fastest()
	// lat[i][k]: minimal latency for stages 0..i-1 on exactly k processors
	// with every cycle time <= periodBound. The latency of a prefix is the
	// input communication plus each interval's computation and outgoing
	// communication; the outgoing communication of the prefix's last
	// interval is delta_i/b regardless of where the next interval goes
	// (uniform bandwidth), so prefix latencies compose.
	lat := newMatrix(d.n+1, q+1, math.Inf(1))
	cut := newIntMatrix(d.n+1, q+1, -1)
	for i := 1; i <= d.n; i++ {
		if fmath.LE(d.cost(0, i-1, s), periodBound) {
			lat[i][1] = d.comm(d.app.In) + (d.pre[i]-d.pre[0])/s + d.comm(d.app.OutputSize(i-1))
			cut[i][1] = 0
		}
	}
	for k := 2; k <= q; k++ {
		for i := k; i <= d.n; i++ {
			for j := k - 1; j < i; j++ {
				if math.IsInf(lat[j][k-1], 1) || !fmath.LE(d.cost(j, i-1, s), periodBound) {
					continue
				}
				v := lat[j][k-1] + (d.pre[i]-d.pre[j])/s + d.comm(d.app.OutputSize(i-1))
				if v < lat[i][k] {
					lat[i][k] = v
					cut[i][k] = j
				}
			}
		}
	}
	bestL := math.Inf(1)
	bestK := 0
	for k := 1; k <= q; k++ {
		if lat[d.n][k] < bestL {
			bestL = lat[d.n][k]
			bestK = k
		}
	}
	if bestK == 0 {
		return math.Inf(1), nil, false
	}
	return bestL, d.backtrack(cut, bestK, len(d.speeds)-1), true
}

// PeriodCandidates returns the sorted set of values the optimal period can
// take at the fastest speed: every interval cycle time (Theorem 15's
// binary-search set, extended to both communication models).
func (d *SingleDP) PeriodCandidates() []float64 {
	s := d.fastest()
	var cands []float64
	for f := 0; f < d.n; f++ {
		for t := f; t < d.n; t++ {
			cands = append(cands, d.cost(f, t, s))
		}
	}
	return fmath.SortedUnique(cands)
}

// MinPeriodGivenLatency binary-searches the period candidates for the
// smallest period whose Theorem 15 latency does not exceed latencyBound.
func (d *SingleDP) MinPeriodGivenLatency(maxProcs int, latencyBound float64) (float64, []Choice, bool) {
	cands := d.PeriodCandidates()
	lo, hi := 0, len(cands)-1
	var bestPart []Choice
	bestT := math.Inf(1)
	for lo <= hi {
		mid := (lo + hi) / 2
		_, part, ok := d.latencyFeasible(maxProcs, cands[mid], latencyBound)
		if ok {
			bestT = cands[mid]
			bestPart = part
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if bestPart == nil {
		return math.Inf(1), nil, false
	}
	return bestT, bestPart, true
}

func (d *SingleDP) latencyFeasible(maxProcs int, periodBound, latencyBound float64) (float64, []Choice, bool) {
	l, part, ok := d.MinLatencyGivenPeriod(maxProcs, periodBound)
	if !ok || !fmath.LE(l, latencyBound) {
		return l, nil, false
	}
	return l, part, true
}

// MinEnergyGivenPeriod implements the Theorem 18 dynamic program: the
// minimal energy (sum of Static + speed^Alpha over enrolled processors)
// over interval mappings with at most maxProcs processors whose period does
// not exceed periodBound, choosing for each interval the cheapest mode that
// meets the bound.
func (d *SingleDP) MinEnergyGivenPeriod(maxProcs int, periodBound float64, em pipeline.EnergyModel) (float64, []Choice, bool) {
	q := min(maxProcs, d.n)
	// cheap[f][t]: cheapest feasible mode for interval [f,t], or -1.
	// Speeds are ascending and cost is non-increasing in speed, so the
	// cheapest feasible mode is the smallest feasible one.
	cheap := newIntMatrix(d.n, d.n, -1)
	for f := 0; f < d.n; f++ {
		for t := f; t < d.n; t++ {
			for mode, s := range d.speeds {
				if fmath.LE(d.cost(f, t, s), periodBound) {
					cheap[f][t] = mode
					break
				}
			}
		}
	}
	eng := newMatrix(d.n+1, q+1, math.Inf(1))
	cut := newIntMatrix(d.n+1, q+1, -1)
	for i := 1; i <= d.n; i++ {
		if m := cheap[0][i-1]; m >= 0 {
			eng[i][1] = em.Power(d.speeds[m])
			cut[i][1] = 0
		}
	}
	for k := 2; k <= q; k++ {
		for i := k; i <= d.n; i++ {
			for j := k - 1; j < i; j++ {
				m := cheap[j][i-1]
				if m < 0 || math.IsInf(eng[j][k-1], 1) {
					continue
				}
				v := eng[j][k-1] + em.Power(d.speeds[m])
				if v < eng[i][k] {
					eng[i][k] = v
					cut[i][k] = j
				}
			}
		}
	}
	bestE := math.Inf(1)
	bestK := 0
	for k := 1; k <= q; k++ {
		if eng[d.n][k] < bestE {
			bestE = eng[d.n][k]
			bestK = k
		}
	}
	if bestK == 0 {
		return math.Inf(1), nil, false
	}
	part := d.backtrack(cut, bestK, 0)
	for i := range part {
		part[i].Mode = cheap[part[i].From][part[i].To]
	}
	return bestE, part, true
}

// EnergyCurve returns, for q in 1..maxProcs, the minimal energy with at
// most q processors under the period bound (Theorem 21's E_a^k values,
// non-increasing in q; +Inf marks infeasible counts), plus the partitions.
func (d *SingleDP) EnergyCurve(maxProcs int, periodBound float64, em pipeline.EnergyModel) ([]float64, [][]Choice) {
	curve := make([]float64, maxProcs)
	parts := make([][]Choice, maxProcs)
	for q := 1; q <= maxProcs; q++ {
		e, part, ok := d.MinEnergyGivenPeriod(q, periodBound, em)
		if !ok {
			curve[q-1] = math.Inf(1)
			continue
		}
		curve[q-1] = e
		parts[q-1] = part
	}
	return curve, parts
}

func newMatrix(rows, cols int, fill float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = fill
		}
	}
	return m
}

func newIntMatrix(rows, cols int, fill int) [][]int {
	m := make([][]int, rows)
	for i := range m {
		m[i] = make([]int, cols)
		for j := range m[i] {
			m[i][j] = fill
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
