// Package matching implements minimum-weight bipartite assignment via the
// Jonker-Volgenant shortest-augmenting-path variant of the Hungarian
// algorithm, and uses it for Theorem 19: on communication homogeneous
// platforms, the one-to-one mapping minimizing energy under per-application
// period bounds is a minimum weight matching between stages and processors,
// where the weight of (stage, processor) is the energy of the slowest mode
// that meets the stage's period bound.
package matching

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// ErrInfeasible is returned when no assignment satisfies the bounds.
var ErrInfeasible = errors.New("matching: no feasible assignment")

// ErrWrongPlatform is returned when platform preconditions fail.
var ErrWrongPlatform = errors.New("matching: platform does not satisfy the algorithm's preconditions")

// forbidden is the weight of an inadmissible edge. It is large enough to
// never be chosen over any sum of admissible weights, yet small enough that
// sums of a few forbidden edges do not overflow.
const forbidden = 1e18

// Assign solves the rectangular assignment problem: cost is an n x m matrix
// with n <= m; the result assigns every row i a distinct column asg[i]
// minimizing the total cost. Entries set to +Inf (or >= forbidden) mark
// inadmissible pairs; ok reports whether a fully admissible assignment
// exists.
func Assign(cost [][]float64) (asg []int, total float64, ok bool) {
	n := len(cost)
	if n == 0 {
		return nil, 0, true
	}
	m := len(cost[0])
	if n > m {
		return nil, 0, false
	}
	at := func(i, j int) float64 {
		c := cost[i][j]
		if math.IsInf(c, 1) || c >= forbidden {
			return forbidden
		}
		return c
	}
	// 1-based Jonker-Volgenant shortest augmenting paths.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	rowOf := make([]int, m+1) // rowOf[j]: row matched to column j, 0 if free
	way := make([]int, m+1)
	for i := 1; i <= n; i++ {
		rowOf[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := rowOf[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := at(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[rowOf[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if rowOf[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			rowOf[j0] = rowOf[j1]
			j0 = j1
		}
	}
	asg = make([]int, n)
	for j := 1; j <= m; j++ {
		if rowOf[j] > 0 {
			asg[rowOf[j]-1] = j - 1
		}
	}
	total = 0
	for i := range asg {
		c := at(i, asg[i])
		if c >= forbidden/2 {
			return nil, 0, false
		}
		total += c
	}
	return asg, total, true
}

// MinEnergyGivenPeriodCommHom implements Theorem 19: the one-to-one mapping
// of minimal total energy subject to per-application period bounds
// (unweighted T_a <= periodBounds[a]) on a communication homogeneous
// platform. The edge weight between a stage and a processor is the energy
// of the slowest mode meeting the bound (speeds ascending, cycle time
// non-increasing in speed, power increasing), and a minimum weight
// stage-processor matching is optimal because stage cycle times are
// independent of where other stages go when all links are identical.
func MinEnergyGivenPeriodCommHom(inst *pipeline.Instance, model pipeline.CommModel, periodBounds []float64) (mapping.Mapping, float64, error) {
	if cls := inst.Platform.Classify(); cls == pipeline.FullyHeterogeneous {
		return mapping.Mapping{}, 0, fmt.Errorf("%w: want communication homogeneous, have %v", ErrWrongPlatform, cls)
	}
	type ref struct{ app, k int }
	var stages []ref
	for a := range inst.Apps {
		for k := 0; k < inst.Apps[a].NumStages(); k++ {
			stages = append(stages, ref{a, k})
		}
	}
	p := inst.Platform.NumProcessors()
	if p < len(stages) {
		return mapping.Mapping{}, 0, fmt.Errorf("%w: one-to-one needs p >= N (%d < %d)", ErrWrongPlatform, p, len(stages))
	}
	b, _ := inst.Platform.HomogeneousLinks()

	cost := make([][]float64, len(stages))
	modeChoice := make([][]int, len(stages))
	for i, r := range stages {
		cost[i] = make([]float64, p)
		modeChoice[i] = make([]int, p)
		app := &inst.Apps[r.app]
		in, out := commCost(app.InputSize(r.k), b), commCost(app.OutputSize(r.k), b)
		for u := 0; u < p; u++ {
			cost[i][u] = math.Inf(1)
			modeChoice[i][u] = -1
			for mode, s := range inst.Platform.Processors[u].Speeds {
				cyc := mapping.IntervalCost(model, in, app.Stages[r.k].Work/s, out)
				if fmath.LE(cyc, periodBounds[r.app]) {
					cost[i][u] = inst.Energy.Power(s)
					modeChoice[i][u] = mode
					break
				}
			}
		}
	}
	asg, total, ok := Assign(cost)
	if !ok {
		return mapping.Mapping{}, 0, ErrInfeasible
	}
	m := mapping.Mapping{Apps: make([]mapping.AppMapping, len(inst.Apps))}
	for i, r := range stages {
		u := asg[i]
		m.Apps[r.app].Intervals = append(m.Apps[r.app].Intervals, mapping.PlacedInterval{
			From: r.k, To: r.k, Proc: u, Mode: modeChoice[i][u],
		})
	}
	if err := m.Validate(inst, mapping.OneToOne); err != nil {
		return mapping.Mapping{}, 0, err
	}
	return m, total, nil
}

func commCost(vol, b float64) float64 {
	if vol == 0 {
		return 0
	}
	return vol / b
}
