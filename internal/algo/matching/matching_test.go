package matching

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/algo/exact"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// bruteAssign solves the assignment problem by enumerating permutations.
func bruteAssign(cost [][]float64) (float64, bool) {
	n := len(cost)
	if n == 0 {
		return 0, true
	}
	m := len(cost[0])
	cols := make([]int, m)
	for j := range cols {
		cols[j] = j
	}
	best := math.Inf(1)
	used := make([]bool, m)
	var rec func(i int, sum float64)
	rec = func(i int, sum float64) {
		if sum >= best {
			return
		}
		if i == n {
			best = sum
			return
		}
		for j := 0; j < m; j++ {
			if used[j] || math.IsInf(cost[i][j], 1) {
				continue
			}
			used[j] = true
			rec(i+1, sum+cost[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return best, !math.IsInf(best, 1)
}

func TestAssignMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if rng.Float64() < 0.15 {
					cost[i][j] = math.Inf(1)
				} else {
					cost[i][j] = float64(rng.Intn(50))
				}
			}
		}
		want, feasible := bruteAssign(cost)
		asg, got, ok := Assign(cost)
		if ok != feasible {
			t.Fatalf("trial %d: feasibility mismatch: assign=%v brute=%v (cost %v)", trial, ok, feasible, cost)
		}
		if !ok {
			continue
		}
		if !fmath.EQ(got, want) {
			t.Fatalf("trial %d: total %g, brute force %g (cost %v)", trial, got, want, cost)
		}
		// Assignment must be a partial injection.
		seen := map[int]bool{}
		sum := 0.0
		for i, j := range asg {
			if seen[j] {
				t.Fatalf("trial %d: column %d used twice", trial, j)
			}
			seen[j] = true
			sum += cost[i][j]
		}
		if !fmath.EQ(sum, got) {
			t.Fatalf("trial %d: reported total %g but edges sum to %g", trial, got, sum)
		}
	}
}

func TestAssignEdgeCases(t *testing.T) {
	if _, total, ok := Assign(nil); !ok || total != 0 {
		t.Error("empty problem should be trivially solvable")
	}
	// More rows than columns: infeasible.
	if _, _, ok := Assign([][]float64{{1}, {2}}); ok {
		t.Error("n > m accepted")
	}
	// All forbidden.
	if _, _, ok := Assign([][]float64{{math.Inf(1), math.Inf(1)}}); ok {
		t.Error("all-forbidden row accepted")
	}
	// Single admissible choice.
	asg, total, ok := Assign([][]float64{{math.Inf(1), 7}})
	if !ok || asg[0] != 1 || total != 7 {
		t.Errorf("single-choice: asg=%v total=%g ok=%v", asg, total, ok)
	}
}

// TestMinEnergyGivenPeriodCommHomMatchesOracle verifies Theorem 19 against
// the exhaustive one-to-one solver on random instances.
func TestMinEnergyGivenPeriodCommHomMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		cfg := workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 3,
			Procs: 1, Modes: 1 + rng.Intn(3),
			Class: pipeline.CommHomogeneous, MaxWork: 8, MaxData: 4, MaxSpeed: 8,
		}
		inst := workload.MustInstance(rng, cfg)
		cfg.Procs = inst.TotalStages() + rng.Intn(2)
		inst.Platform = workload.Platform(rng, cfg)
		inst.Energy = pipeline.EnergyModel{Static: float64(rng.Intn(2)), Alpha: 2}
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
		model := []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap}[trial%2]
		// Random but frequently feasible bounds: cycle time of the
		// heaviest stage on a middling processor.
		bounds := make([]float64, len(inst.Apps))
		for a := range bounds {
			heaviest := 0.0
			for _, st := range inst.Apps[a].Stages {
				heaviest = math.Max(heaviest, st.Work)
			}
			bounds[a] = heaviest/2 + rng.Float64()*heaviest
		}
		m, got, err := MinEnergyGivenPeriodCommHom(&inst, model, bounds)
		want, werr := exact.MinEnergyGivenPeriod(&inst, mapping.OneToOne, model, bounds)
		if (err != nil) != (werr != nil) {
			t.Fatalf("trial %d: feasibility mismatch: matching=%v oracle=%v", trial, err, werr)
		}
		if err != nil {
			continue
		}
		if !fmath.EQ(got, want.Value) {
			t.Fatalf("trial %d (%v): energy %g, oracle %g (bounds %v)", trial, model, got, want.Value, bounds)
		}
		if !fmath.EQ(mapping.Energy(&inst, &m), got) {
			t.Fatalf("trial %d: reported energy %g does not match mapping energy", trial, got)
		}
		for a := range inst.Apps {
			if tp := mapping.AppPeriod(&inst, &m, a, model); !fmath.LE(tp, bounds[a]) {
				t.Fatalf("trial %d: app %d period %g violates bound %g", trial, a, tp, bounds[a])
			}
		}
	}
}

func TestMinEnergyPrefersSlowModes(t *testing.T) {
	// Two unit-work stages, two bi-modal processors {1, 4}. Bound 1:
	// both run at speed 1, energy 2, rather than any speed 4.
	inst := pipeline.Instance{
		Apps:     []pipeline.Application{pipeline.NewUniformApplication("a", 2, 1)},
		Platform: pipeline.NewCommHomogeneousPlatform([][]float64{{1, 4}, {1, 4}}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	m, e, err := MinEnergyGivenPeriodCommHom(&inst, pipeline.Overlap, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(e, 2) {
		t.Errorf("energy = %g, want 2", e)
	}
	for _, iv := range m.Apps[0].Intervals {
		if iv.Mode != 0 {
			t.Errorf("stage on fast mode unnecessarily")
		}
	}
}

func TestPreconditionsAndInfeasibility(t *testing.T) {
	inst := pipeline.MotivatingExample() // 7 stages > 3 processors
	if _, _, err := MinEnergyGivenPeriodCommHom(&inst, pipeline.Overlap, []float64{5, 5}); !errors.Is(err, ErrWrongPlatform) {
		t.Errorf("undersized platform: %v", err)
	}
	het := pipeline.Instance{
		Apps:     []pipeline.Application{pipeline.NewUniformApplication("a", 2, 1)},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	het.Platform.InBandwidth[0][0] = 3
	if _, _, err := MinEnergyGivenPeriodCommHom(&het, pipeline.Overlap, []float64{5}); !errors.Is(err, ErrWrongPlatform) {
		t.Errorf("het platform: %v", err)
	}
	ok := pipeline.Instance{
		Apps:     []pipeline.Application{pipeline.NewUniformApplication("a", 2, 4)},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	if _, _, err := MinEnergyGivenPeriodCommHom(&ok, pipeline.Overlap, []float64{0.5}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible bounds: %v", err)
	}
}
