package gen

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// TestSampleDeterministic asserts Sample is a pure function of (seed, i).
func TestSampleDeterministic(t *testing.T) {
	s := DefaultSpace()
	for i := 0; i < 50; i++ {
		a := s.Sample(7, i)
		b := s.Sample(7, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("draw %d not deterministic:\n%+v\n%+v", i, a, b)
		}
	}
	if a, b := s.Sample(7, 3), s.Sample(8, 3); reflect.DeepEqual(a.Inst, b.Inst) {
		t.Error("different seeds produced identical instances")
	}
}

// TestSampleCoversAllCombinations asserts any CombinationCount window hits
// every (class, model, rule, criterion) combination exactly once.
func TestSampleCoversAllCombinations(t *testing.T) {
	s := DefaultSpace()
	n := s.CombinationCount()
	if n != 36 {
		t.Fatalf("combination count = %d, want 36", n)
	}
	for _, offset := range []int{0, 17} {
		seen := map[string]int{}
		for i := offset; i < offset+n; i++ {
			sc := s.Sample(1, i)
			// Combo strips the degenerate suffix, which does not change
			// the combination.
			seen[sc.Combo()]++
		}
		if len(seen) != n {
			t.Errorf("window at %d covered %d combinations, want %d: %v", offset, len(seen), n, seen)
		}
		for combo, c := range seen {
			if c != 1 {
				t.Errorf("combination %s drawn %d times in one window", combo, c)
			}
		}
	}
}

// TestSampleInstancesValid asserts every generated instance validates and
// respects the space's size caps, and every request is well-formed for the
// solver (energy always has period bounds; bound arrays sized to the apps).
func TestSampleInstancesValid(t *testing.T) {
	s := DefaultSpace()
	degens := map[string]int{}
	for i := 0; i < 200; i++ {
		sc := s.Sample(3, i)
		if err := sc.Inst.Validate(); err != nil {
			t.Fatalf("draw %d (%s): invalid instance: %v", i, sc.Name, err)
		}
		if got := sc.Inst.TotalStages(); got > s.MaxTotalStages+1 {
			// +1: the proc-starved shape may extend a chain past the cap.
			t.Errorf("draw %d (%s): %d total stages exceeds cap %d", i, sc.Name, got, s.MaxTotalStages)
		}
		if got := sc.Inst.Platform.NumProcessors(); got > s.MaxProcs {
			t.Errorf("draw %d (%s): %d processors exceeds cap %d", i, sc.Name, got, s.MaxProcs)
		}
		if sc.Req.Objective == core.Energy && sc.Req.PeriodBounds == nil {
			t.Errorf("draw %d (%s): energy objective without period bounds", i, sc.Name)
		}
		for _, bounds := range [][]float64{sc.Req.PeriodBounds, sc.Req.LatencyBounds} {
			if bounds != nil && len(bounds) != len(sc.Inst.Apps) {
				t.Errorf("draw %d (%s): %d bounds for %d apps", i, sc.Name, len(bounds), len(sc.Inst.Apps))
			}
		}
		if sc.Degenerate != "" {
			degens[sc.Degenerate]++
		}
	}
	for _, want := range degenerates {
		if degens[want] == 0 {
			t.Errorf("degenerate shape %q never drawn in 200 draws (%v)", want, degens)
		}
	}
}

// TestDegenerateShapesBite spot-checks that the degenerate shapes actually
// produce the promised structure.
func TestDegenerateShapesBite(t *testing.T) {
	s := DefaultSpace()
	checked := map[string]bool{}
	for i := 0; i < 400 && len(checked) < len(degenerates); i++ {
		sc := s.Sample(11, i)
		if sc.Degenerate == "" || checked[sc.Degenerate] {
			continue
		}
		switch sc.Degenerate {
		case DegenZeroData, DegenSpecialApp:
			for a := range sc.Inst.Apps {
				app := &sc.Inst.Apps[a]
				if app.In != 0 {
					t.Errorf("%s: app %d has input data", sc.Name, a)
				}
				for _, st := range app.Stages {
					if st.Out != 0 {
						t.Errorf("%s: app %d has output data", sc.Name, a)
					}
				}
			}
			if sc.Degenerate == DegenSpecialApp && !sc.Inst.SpecialApp() {
				t.Errorf("%s: instance is not in the special-app case", sc.Name)
			}
		case DegenSingleStage:
			for a := range sc.Inst.Apps {
				if n := len(sc.Inst.Apps[a].Stages); n != 1 {
					t.Errorf("%s: app %d has %d stages, want 1", sc.Name, a, n)
				}
			}
		case DegenUniModal:
			if !sc.Inst.Platform.UniModal() {
				t.Errorf("%s: platform is not uni-modal", sc.Name)
			}
		}
		checked[sc.Degenerate] = true
	}
}

// TestCrudeBoundIsGenerous asserts the calibration bound really does
// dominate a whole-application single-processor mapping's cycle time.
func TestCrudeBoundIsGenerous(t *testing.T) {
	inst := pipeline.MotivatingExample()
	for a := range inst.Apps {
		b := crudeBound(&inst, a)
		// Slowest mode of the slowest processor is speed 1, min bandwidth 1.
		var work, data float64
		data += inst.Apps[a].In
		for _, st := range inst.Apps[a].Stages {
			work += st.Work
			data += st.Out
		}
		if want := data/1 + work/1; b < want {
			t.Errorf("app %d: crude bound %g below %g", a, b, want)
		}
	}
}
