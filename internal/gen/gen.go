// Package gen deterministically samples the paper's full scenario space:
// every platform class of Section 3.1 (fully homogeneous, communication
// homogeneous, fully heterogeneous), both communication models of
// Section 3.2 (overlap, no-overlap), both mapping rules of Section 3.3
// (one-to-one, interval) and all three criteria of Section 3.5 (period,
// latency, energy-under-period), across randomized application counts,
// chain lengths, DVFS mode ladders, weights, constraint tightness and a
// rotating set of degenerate shapes (communication-free chains, single
// stage chains, uni-modal platforms, the special-app case, and platforms
// with too few processors).
//
// Every draw is a pure function of (seed, index): Sample(seed, i) always
// returns the same Scenario, and distinct indices use independent rng
// streams, so a corpus can be generated, sharded and re-generated in any
// order. The (class, model, rule, criterion) combination is taken from the
// index round-robin over the cross product, which guarantees that any
// window of CombinationCount() consecutive indices covers every
// combination exactly once — the differential harness (internal/diffcheck)
// and the corpus benchmarks (BenchmarkCorpus) rely on this to claim full
// variant coverage.
//
// Instances are deliberately small: every scenario must fit the exhaustive
// oracle of internal/algo/exact, which is what makes differential
// verification against brute force possible.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Scenario is one fully specified problem draw: an instance plus the
// request to solve on it, with enough provenance to reproduce the draw.
type Scenario struct {
	// Index and Seed reproduce the draw: Sample(Seed, Index) == this.
	Index int
	Seed  int64
	// Name is a compact label: "class/rule/model/criterion[#degenerate]".
	Name string
	// Class is the platform class the instance was generated as. Note the
	// instance may classify as a stricter class by coincidence (a random
	// heterogeneous draw can come out homogeneous); solvers must only rely
	// on Platform.Classify, never on this field.
	Class pipeline.Class
	// Degenerate names the degenerate shape applied, or "".
	Degenerate string
	// Inst is the generated problem instance.
	Inst pipeline.Instance
	// Req is the solver request, including any generated bounds. Energy
	// scenarios always carry period bounds (Section 3.5 rules out
	// unconstrained energy minimization).
	Req core.Request
}

// Space bounds the sampling distribution. The zero value is not useful;
// start from DefaultSpace.
type Space struct {
	// Classes, Models, Rules and Criteria are cycled through round-robin
	// by index; each must be non-empty.
	Classes  []pipeline.Class
	Models   []pipeline.CommModel
	Rules    []mapping.Rule
	Criteria []core.Criterion

	// MinApps..MaxApps bounds the number of concurrent applications.
	MinApps, MaxApps int
	// MaxStagesPerApp bounds each chain's length; MaxTotalStages bounds
	// the instance-wide stage count so the exhaustive oracle stays cheap.
	MaxStagesPerApp, MaxTotalStages int
	// MaxProcs bounds the platform size.
	MaxProcs int
	// MaxModes bounds the DVFS ladder length.
	MaxModes int
	// MaxWork, MaxData, MaxSpeed, MaxBandwidth bound the integer draws of
	// internal/workload.
	MaxWork, MaxData, MaxSpeed, MaxBandwidth int

	// DegenerateEvery applies a degenerate shape to every k-th index
	// (0 disables degenerate shapes).
	DegenerateEvery int
}

// DefaultSpace returns the corpus space used by the differential harness:
// every class/model/rule/criterion combination over oracle-sized
// instances, with a degenerate shape every 5th draw.
func DefaultSpace() Space {
	return Space{
		Classes:  []pipeline.Class{pipeline.FullyHomogeneous, pipeline.CommHomogeneous, pipeline.FullyHeterogeneous},
		Models:   []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap},
		Rules:    []mapping.Rule{mapping.OneToOne, mapping.Interval},
		Criteria: []core.Criterion{core.Period, core.Latency, core.Energy},

		MinApps: 1, MaxApps: 3,
		MaxStagesPerApp: 4, MaxTotalStages: 6,
		MaxProcs: 6, MaxModes: 3,
		MaxWork: 9, MaxData: 5, MaxSpeed: 8, MaxBandwidth: 4,

		DegenerateEvery: 5,
	}
}

// CombinationCount returns the size of the (class, model, rule, criterion)
// cross product; any CombinationCount() consecutive indices cover each
// combination exactly once.
func (s Space) CombinationCount() int {
	return len(s.Classes) * len(s.Models) * len(s.Rules) * len(s.Criteria)
}

// Validate checks the space is sampleable.
func (s Space) Validate() error {
	if len(s.Classes) == 0 || len(s.Models) == 0 || len(s.Rules) == 0 || len(s.Criteria) == 0 {
		return fmt.Errorf("gen: empty combination axis (%d classes, %d models, %d rules, %d criteria)",
			len(s.Classes), len(s.Models), len(s.Rules), len(s.Criteria))
	}
	if s.MinApps < 1 || s.MaxApps < s.MinApps {
		return fmt.Errorf("gen: invalid app bounds [%d,%d]", s.MinApps, s.MaxApps)
	}
	if s.MaxStagesPerApp < 1 || s.MaxTotalStages < s.MaxStagesPerApp {
		return fmt.Errorf("gen: invalid stage bounds (per-app %d, total %d)", s.MaxStagesPerApp, s.MaxTotalStages)
	}
	if s.MaxProcs < s.MaxApps || s.MaxModes < 1 {
		return fmt.Errorf("gen: MaxProcs %d must cover MaxApps %d and MaxModes %d must be positive",
			s.MaxProcs, s.MaxApps, s.MaxModes)
	}
	if s.MaxWork < 1 || s.MaxSpeed < 1 || s.MaxData < 0 || s.MaxBandwidth < 1 {
		return fmt.Errorf("gen: invalid magnitude bounds (work %d, speed %d, data %d, bandwidth %d)",
			s.MaxWork, s.MaxSpeed, s.MaxData, s.MaxBandwidth)
	}
	return nil
}

// Degenerate shape names, applied round-robin on degenerate indices.
const (
	// DegenZeroData zeroes every data size: the communication-free case
	// where the overlap and no-overlap models must agree.
	DegenZeroData = "zero-data"
	// DegenSingleStage truncates every chain to one stage.
	DegenSingleStage = "single-stage"
	// DegenUniModal strips every DVFS ladder to a single mode.
	DegenUniModal = "uni-modal"
	// DegenSpecialApp is the paper's special-app case: communication-free
	// chains whose stages all have identical work.
	DegenSpecialApp = "special-app"
	// DegenProcStarved removes processors until the rule's shape
	// precondition fails (fewer processors than stages for one-to-one,
	// fewer than applications for interval), so the whole scenario is
	// infeasible by construction.
	DegenProcStarved = "proc-starved"
)

var degenerates = []string{DegenZeroData, DegenSingleStage, DegenUniModal, DegenSpecialApp, DegenProcStarved}

// Sample draws scenario i of the seeded corpus. It is deterministic in
// (seed, i) and independent across i. It panics only on an invalid Space
// (validate first when the space is user-supplied).
func (s Space) Sample(seed int64, i int) Scenario {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	// Independent stream per index: mix the index into the seed with a
	// splitmix-style odd constant so neighbouring indices decorrelate.
	rng := rand.New(rand.NewSource(seed ^ (int64(i)+1)*0x2545F4914F6CDD1D))

	combo := i % s.CombinationCount()
	class := s.Classes[combo%len(s.Classes)]
	combo /= len(s.Classes)
	model := s.Models[combo%len(s.Models)]
	combo /= len(s.Models)
	rule := s.Rules[combo%len(s.Rules)]
	combo /= len(s.Rules)
	criterion := s.Criteria[combo%len(s.Criteria)]

	degen := ""
	if s.DegenerateEvery > 0 && i%s.DegenerateEvery == s.DegenerateEvery-1 {
		degen = degenerates[(i/s.DegenerateEvery)%len(degenerates)]
	}

	sc := Scenario{Index: i, Seed: seed, Class: class, Degenerate: degen}
	sc.Name = fmt.Sprintf("%s/%s/%s/%s", className(class), rule, model, criterion)
	if degen != "" {
		sc.Name += comboSeparator + degen
	}

	cfg := s.config(rng, class, rule, degen)
	sc.Inst = workload.MustInstance(rng, cfg)
	s.applyDegenerate(rng, &sc.Inst, degen)
	s.applyWeights(rng, &sc.Inst)
	if degen == DegenProcStarved {
		starveProcessors(&sc.Inst, rule)
	}

	sc.Req = s.request(rng, &sc.Inst, rule, model, criterion)
	return sc
}

// comboSeparator splits the combination label from the degenerate suffix
// in Scenario.Name.
const comboSeparator = "#"

// Combo returns the (class, rule, model, criterion) combination label:
// the scenario Name without its degenerate suffix. Scenarios with the
// same Combo exercise the same solver variant.
func (sc *Scenario) Combo() string {
	if i := strings.Index(sc.Name, comboSeparator); i >= 0 {
		return sc.Name[:i]
	}
	return sc.Name
}

// Corpus draws the first n scenarios of the seeded corpus.
func (s Space) Corpus(seed int64, n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = s.Sample(seed, i)
	}
	return out
}

// config draws the size parameters for one instance.
func (s Space) config(rng *rand.Rand, class pipeline.Class, rule mapping.Rule, degen string) workload.Config {
	apps := s.MinApps + rng.Intn(s.MaxApps-s.MinApps+1)
	// Split the total stage budget so multi-application draws stay small
	// enough for the exhaustive oracle.
	perApp := s.MaxStagesPerApp
	if cap := s.MaxTotalStages / apps; perApp > cap {
		perApp = cap
	}
	if perApp < 1 {
		perApp = 1
	}
	maxStages := 1 + rng.Intn(perApp)

	// One-to-one mappings need one processor per stage; draw enough
	// processors for the worst chain lengths so most scenarios are
	// feasible (proc-starved draws deliberately undo this).
	minProcs := apps
	if rule == mapping.OneToOne {
		minProcs = apps * maxStages
	}
	if minProcs > s.MaxProcs {
		minProcs = s.MaxProcs
	}
	procs := minProcs
	if procs < s.MaxProcs {
		procs += rng.Intn(s.MaxProcs - procs + 1)
	}

	modes := 1 + rng.Intn(s.MaxModes)
	maxData := s.MaxData
	if degen == DegenZeroData || degen == DegenSpecialApp {
		maxData = 0
	}
	if degen == DegenUniModal {
		modes = 1
	}
	cfg := workload.Config{
		Apps: apps, MinStages: 1, MaxStages: maxStages,
		Procs: procs, Modes: modes, Class: class,
		MaxWork: s.MaxWork, MaxData: maxData,
		MaxSpeed: s.MaxSpeed, MaxBandwidth: s.MaxBandwidth,
	}
	if degen == DegenSingleStage {
		cfg.MinStages, cfg.MaxStages = 1, 1
	}
	// Occasionally exercise a non-default energy model.
	if rng.Intn(4) == 0 {
		cfg.Energy = pipeline.EnergyModel{Static: float64(rng.Intn(3)), Alpha: 2 + rng.Float64()}
	}
	// Homogeneous link classes occasionally get a non-unit bandwidth.
	if class != pipeline.FullyHeterogeneous && rng.Intn(3) == 0 {
		cfg.Bandwidth = float64(1 + rng.Intn(s.MaxBandwidth))
	}
	return cfg
}

// applyDegenerate post-processes the instance for shapes the workload
// Config cannot express.
func (s Space) applyDegenerate(rng *rand.Rand, inst *pipeline.Instance, degen string) {
	if degen != DegenSpecialApp {
		return
	}
	// Special-app case: all stages of all applications share one work
	// requirement and there is no communication at all (MaxData is already
	// zero via config).
	w := float64(1 + rng.Intn(s.MaxWork))
	for a := range inst.Apps {
		inst.Apps[a].In = 0
		for j := range inst.Apps[a].Stages {
			inst.Apps[a].Stages[j].Work = w
			inst.Apps[a].Stages[j].Out = 0
		}
	}
}

// applyWeights randomizes application weights: mostly 1, sometimes a
// half-speed or double-weight application so the weighted max objectives
// are exercised.
func (s Space) applyWeights(rng *rand.Rand, inst *pipeline.Instance) {
	weights := []float64{1, 1, 1, 0.5, 2}
	for a := range inst.Apps {
		inst.Apps[a].Weight = weights[rng.Intn(len(weights))]
	}
}

// starveProcessors truncates the platform below the rule's shape
// precondition, making every mapping invalid: one-to-one needs one
// processor per stage, interval one per application.
func starveProcessors(inst *pipeline.Instance, rule mapping.Rule) {
	need := len(inst.Apps)
	if rule == mapping.OneToOne {
		need = inst.TotalStages()
	}
	if need < 2 {
		// Shrinking below one processor would not be a valid platform. For
		// one-to-one, starve by growing the demand instead: extend the
		// first chain past the platform size. For interval (a single
		// application always fits on a single processor) the shape cannot
		// be starved, so the draw degrades to a regular scenario.
		if rule == mapping.OneToOne {
			app := &inst.Apps[0]
			for inst.TotalStages() <= inst.Platform.NumProcessors() {
				app.Stages = append(app.Stages, pipeline.Stage{Work: app.Stages[0].Work, Out: 0})
			}
		}
		return
	}
	keep := need - 1
	p := inst.Platform
	inst.Platform = pipeline.Platform{
		Processors:   append([]pipeline.Processor(nil), p.Processors[:keep]...),
		Bandwidth:    truncateMatrix(p.Bandwidth, keep, keep),
		InBandwidth:  truncateMatrix(p.InBandwidth, len(p.InBandwidth), keep),
		OutBandwidth: truncateMatrix(p.OutBandwidth, len(p.OutBandwidth), keep),
	}
}

func truncateMatrix(m [][]float64, rows, cols int) [][]float64 {
	out := make([][]float64, 0, rows)
	for r := 0; r < rows && r < len(m); r++ {
		out = append(out, append([]float64(nil), m[r][:cols]...))
	}
	return out
}

// request draws the solver request: the fixed (rule, model, criterion)
// from the index plus randomized constraint tightness. Bounds are
// calibrated against crudeBound so roughly two thirds of the bounded draws
// are feasible and the rest exercise the infeasibility paths.
func (s Space) request(rng *rand.Rand, inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, criterion core.Criterion) core.Request {
	req := core.Request{Rule: rule, Model: model, Objective: criterion, Seed: rng.Int63()}
	slack := func() float64 { return 0.3 + 2.2*rng.Float64() }
	switch criterion {
	case core.Period:
		// Mono-criterion two thirds of the time; otherwise add a latency
		// bound, and with it sometimes an energy budget.
		if rng.Intn(3) == 0 {
			req.LatencyBounds = s.bounds(rng, inst, slack())
			if rng.Intn(2) == 0 {
				req.EnergyBudget = s.energyBudget(rng, inst)
			}
		}
	case core.Latency:
		if rng.Intn(3) == 0 {
			req.PeriodBounds = s.bounds(rng, inst, slack())
			if rng.Intn(2) == 0 {
				req.EnergyBudget = s.energyBudget(rng, inst)
			}
		}
	case core.Energy:
		// Energy minimization requires period bounds (Section 3.5).
		req.PeriodBounds = s.bounds(rng, inst, slack())
		if rng.Intn(3) == 0 {
			req.LatencyBounds = s.bounds(rng, inst, slack())
		}
	}
	return req
}

// bounds builds per-application unweighted bounds at `slack` times the
// crude whole-application upper bound: slack > 1 is always feasible on a
// non-starved platform, slack well below 1 is usually infeasible.
func (s Space) bounds(rng *rand.Rand, inst *pipeline.Instance, slack float64) []float64 {
	out := make([]float64, len(inst.Apps))
	for a := range out {
		out[a] = slack * crudeBound(inst, a)
	}
	return out
}

// crudeBound upper-bounds both the period and the latency that application
// a achieves when mapped as a single interval onto the slowest processor at
// its slowest mode over the slowest links: input + every transfer at the
// minimum bandwidth plus all work at the minimum speed. Any whole-app
// mapping is at least this good under either communication model.
func crudeBound(inst *pipeline.Instance, a int) float64 {
	app := &inst.Apps[a]
	minSpeed, minBW := math.Inf(1), math.Inf(1)
	for p := range inst.Platform.Processors {
		for _, sp := range inst.Platform.Processors[p].Speeds {
			minSpeed = math.Min(minSpeed, sp)
		}
	}
	scan := func(m [][]float64) {
		for _, row := range m {
			for _, b := range row {
				if b > 0 {
					minBW = math.Min(minBW, b)
				}
			}
		}
	}
	scan(inst.Platform.Bandwidth)
	scan(inst.Platform.InBandwidth)
	scan(inst.Platform.OutBandwidth)
	if math.IsInf(minBW, 1) {
		minBW = 1
	}
	var work, data float64
	data += app.In
	for _, st := range app.Stages {
		work += st.Work
		data += st.Out
	}
	return data/minBW + work/minSpeed
}

// energyBudget draws a global energy budget between one processor's idle
// power and the whole platform running flat out; the low end is often
// infeasible, the high end always feasible.
func (s Space) energyBudget(rng *rand.Rand, inst *pipeline.Instance) float64 {
	var max float64
	for p := range inst.Platform.Processors {
		speeds := inst.Platform.Processors[p].Speeds
		max += inst.Energy.Power(speeds[len(speeds)-1])
	}
	return (0.1 + 1.1*rng.Float64()) * max
}

func className(c pipeline.Class) string {
	switch c {
	case pipeline.FullyHomogeneous:
		return "fully-hom"
	case pipeline.CommHomogeneous:
		return "comm-hom"
	case pipeline.FullyHeterogeneous:
		return "fully-het"
	}
	return fmt.Sprintf("class-%d", int(c))
}
