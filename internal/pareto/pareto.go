// Package pareto builds period/energy trade-off frontiers — the
// laptop-problem ("best schedule within an energy budget") and
// server-problem ("least energy for a performance target") curves discussed
// in the paper's introduction. On the platform classes where the paper's
// bi-criteria algorithms are polynomial, the frontier itself is computed in
// polynomial time by sweeping the exact candidate set of achievable
// periods; elsewhere the exhaustive exact.ParetoFront applies.
//
// The candidate sweeps are incremental queries against one compiled plan
// (internal/plan): the instance is validated, classified and preprocessed
// once, the exact candidate set comes from the plan's precomputed state, and
// every candidate is then an independent min-energy query — embarrassingly
// parallel, so both builders fan the queries across a bounded goroutine pool
// and collect the frontier from the in-order results, which keeps the output
// deterministic while using every core. With a shared batch.Cache (via
// Options.Cache) the plan itself is fetched from the cache's plan tier, so
// successive sweeps over one instance — or a sweep after a batch that
// already touched it — compile nothing at all.
package pareto

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"

	"repro/internal/algo/exact"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/plan"
)

// Point is one (weighted global period, total energy) trade-off with a
// witness mapping.
type Point struct {
	Period  float64
	Energy  float64
	Mapping mapping.Mapping
}

// Filter returns the non-dominated subset, sorted by increasing period. A
// point dominates another when it is no worse on both coordinates and
// strictly better on one.
func Filter(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	// Sort by period then energy (insertion sort: frontiers are small).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && (sorted[j].Period < sorted[j-1].Period ||
			//lint:allow floatcmp sort comparator needs an exact total order (tolerant EQ is not transitive)
			(sorted[j].Period == sorted[j-1].Period && sorted[j].Energy < sorted[j-1].Energy)); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var out []Point
	bestE := math.Inf(1)
	for _, pt := range sorted {
		if fmath.LT(pt.Energy, bestE) {
			out = append(out, pt)
			bestE = pt.Energy
		}
	}
	return out
}

// planFor resolves the compiled plan for a sweep: through the shared
// cache's plan tier when a cache was provided (so successive sweeps and
// batches over the same instance compile once between them), otherwise a
// private compilation scoped to this sweep.
func planFor(inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, opts batch.Options) (*plan.Plan, error) {
	if opts.Cache != nil {
		pl, err, _ := opts.Cache.PlanFor(inst, rule, model)
		return pl, err
	}
	return plan.Compile(inst, rule, model)
}

// sweepFrontier solves the min-energy-under-period problem at every
// candidate period as concurrent incremental queries against one compiled
// plan (each query dispatches to the paper's polynomial algorithm for the
// platform class; validation and classification were paid once at compile
// time) and filters the feasible results down to the frontier. A candidate
// whose bounds no mapping can satisfy (core.ErrInfeasible — including
// platform shapes the rule cannot map at all, e.g. one-to-one with fewer
// processors than stages) is skipped, matching the sequential
// implementation: an empty frontier, not an error, reports that nothing is
// achievable. Every other query error — an unsupported criteria
// combination, a cancelled context — is propagated: swallowing it would
// disguise a broken query as "nothing achievable".
func sweepFrontier(ctx context.Context, pl *plan.Plan, cands []float64, opts batch.Options) ([]Point, error) {
	results := make([]struct {
		res core.Result
		err error
	}, len(cands))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					results[i].err = err
					continue
				}
				results[i].res, results[i].err = pl.Solve(plan.Query{
					Objective:    core.Energy,
					PeriodBounds: core.UniformBounds(pl.Instance(), cands[i]),
				})
			}
		}()
	}
dispatch:
	for i := 0; i < len(cands); i++ {
		select {
		case <-ctx.Done():
			// Undelivered candidates never reached a worker, so writing
			// their slots here is race-free.
			for j := i; j < len(cands); j++ {
				results[j].err = ctx.Err()
			}
			break dispatch
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	var points []Point
	for i := range results {
		if results[i].err != nil {
			if errors.Is(results[i].err, core.ErrInfeasible) {
				continue // not achievable at this candidate period
			}
			return nil, results[i].err
		}
		points = append(points, Point{
			Period:  results[i].res.Metrics.Period,
			Energy:  results[i].res.Value,
			Mapping: results[i].res.Mapping,
		})
	}
	return Filter(points), nil
}

// PeriodEnergyFullyHom computes the full period/energy frontier of interval
// mappings on a fully homogeneous multi-modal platform, by solving the
// Theorem 18+21 dynamic program at every candidate period (in parallel
// across the batch worker pool). Each frontier point's mapping is a witness
// achieving (period <= Point.Period, Point.Energy) with minimal energy.
func PeriodEnergyFullyHom(inst *pipeline.Instance, model pipeline.CommModel) ([]Point, error) {
	return PeriodEnergyFullyHomCtx(context.Background(), inst, model, batch.Options{})
}

// PeriodEnergyFullyHomCtx is PeriodEnergyFullyHom with cancellation and
// batch options (worker bound, shared cache): a server can abort a sweep on
// request timeout and, through the cache's plan tier, reuse the compiled
// plan — and its memoized candidate solves — across requests.
func PeriodEnergyFullyHomCtx(ctx context.Context, inst *pipeline.Instance, model pipeline.CommModel, opts batch.Options) ([]Point, error) {
	pl, err := planFor(inst, mapping.Interval, model, opts)
	if err != nil {
		return nil, err
	}
	return sweepFrontier(ctx, pl, pl.ParetoCandidates(), opts)
}

// PeriodEnergyOneToOneCommHom computes the one-to-one period/energy
// frontier on a communication homogeneous platform by running the Theorem
// 19 matching at every candidate period (W_a times any stage cycle time at
// any processor mode), in parallel across the batch worker pool.
func PeriodEnergyOneToOneCommHom(inst *pipeline.Instance, model pipeline.CommModel) ([]Point, error) {
	return PeriodEnergyOneToOneCommHomCtx(context.Background(), inst, model, batch.Options{})
}

// PeriodEnergyOneToOneCommHomCtx is PeriodEnergyOneToOneCommHom with
// cancellation and batch options (worker bound, shared cache).
func PeriodEnergyOneToOneCommHomCtx(ctx context.Context, inst *pipeline.Instance, model pipeline.CommModel, opts batch.Options) ([]Point, error) {
	pl, err := planFor(inst, mapping.OneToOne, model, opts)
	if err != nil {
		return nil, err
	}
	return sweepFrontier(ctx, pl, pl.ParetoCandidates(), opts)
}

// PeriodEnergyCtx computes the period/energy trade-off frontier under the
// given rule, dispatching per platform class: on the classes where the
// paper's bi-criteria algorithms are polynomial (fully homogeneous interval
// mappings, communication homogeneous one-to-one mappings) the frontier is
// built by the polynomial candidate sweeps above; otherwise it falls back
// to exhaustive enumeration, subject to the same search-space limits as
// core.Solve. The context cancels the candidate sweeps between jobs; the
// exhaustive fallback only honours it up front (the enumeration itself is
// not preemptible).
func PeriodEnergyCtx(ctx context.Context, inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, opts batch.Options) ([]Point, error) {
	cls := inst.Platform.Classify()
	switch {
	case rule == mapping.Interval && cls == pipeline.FullyHomogeneous:
		return PeriodEnergyFullyHomCtx(ctx, inst, model, opts)
	case rule == mapping.OneToOne && cls != pipeline.FullyHeterogeneous:
		return PeriodEnergyOneToOneCommHomCtx(ctx, inst, model, opts)
	default:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		full, err := exact.ParetoFront(inst, rule, model)
		if err != nil {
			return nil, err
		}
		pts := make([]Point, 0, len(full))
		for _, pt := range full {
			pts = append(pts, Point{Period: pt.Period, Energy: pt.Energy, Mapping: pt.Mapping})
		}
		return Filter(pts), nil
	}
}

// MinEnergyUnderPeriod answers the server problem from a frontier: the
// least energy whose period does not exceed the target, or +Inf.
func MinEnergyUnderPeriod(front []Point, target float64) float64 {
	best := math.Inf(1)
	for _, pt := range front {
		if fmath.LE(pt.Period, target) && pt.Energy < best {
			best = pt.Energy
		}
	}
	return best
}

// MinPeriodUnderEnergy answers the laptop problem from a frontier: the best
// period achievable within the energy budget, or +Inf.
func MinPeriodUnderEnergy(front []Point, budget float64) float64 {
	best := math.Inf(1)
	for _, pt := range front {
		if fmath.LE(pt.Energy, budget) && pt.Period < best {
			best = pt.Period
		}
	}
	return best
}
