// Package pareto builds period/energy trade-off frontiers — the
// laptop-problem ("best schedule within an energy budget") and
// server-problem ("least energy for a performance target") curves discussed
// in the paper's introduction. On the platform classes where the paper's
// bi-criteria algorithms are polynomial, the frontier itself is computed in
// polynomial time by sweeping the exact candidate set of achievable
// periods; elsewhere the exhaustive exact.ParetoFront applies.
//
// The candidate sweeps are embarrassingly parallel — every candidate period
// is an independent min-energy subproblem — so both builders fan their
// candidates across the internal/batch worker pool and collect the
// frontier from the in-order results, which keeps the output deterministic
// while using every core.
package pareto

import (
	"context"
	"errors"
	"math"

	"repro/internal/algo/exact"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// Point is one (weighted global period, total energy) trade-off with a
// witness mapping.
type Point struct {
	Period  float64
	Energy  float64
	Mapping mapping.Mapping
}

// Filter returns the non-dominated subset, sorted by increasing period. A
// point dominates another when it is no worse on both coordinates and
// strictly better on one.
func Filter(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	// Sort by period then energy (insertion sort: frontiers are small).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && (sorted[j].Period < sorted[j-1].Period ||
			(sorted[j].Period == sorted[j-1].Period && sorted[j].Energy < sorted[j-1].Energy)); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var out []Point
	bestE := math.Inf(1)
	for _, pt := range sorted {
		if fmath.LT(pt.Energy, bestE) {
			out = append(out, pt)
			bestE = pt.Energy
		}
	}
	return out
}

// periodCandidates returns every achievable weighted global period value of
// interval mappings on a fully homogeneous platform: W_a times the cycle
// time of any stage interval at any common speed.
func periodCandidates(inst *pipeline.Instance, model pipeline.CommModel) []float64 {
	speeds := inst.Platform.Processors[0].Speeds
	b, _ := inst.Platform.HomogeneousLinks()
	var cands []float64
	for a := range inst.Apps {
		w := inst.Apps[a].EffectiveWeight()
		app := &inst.Apps[a]
		pre := app.WorkPrefix()
		n := app.NumStages()
		for _, s := range speeds {
			for f := 0; f < n; f++ {
				for t := f; t < n; t++ {
					in, out := 0.0, 0.0
					if v := app.InputSize(f); v > 0 {
						in = v / b
					}
					if v := app.OutputSize(t); v > 0 {
						out = v / b
					}
					cands = append(cands, w*mapping.IntervalCost(model, in, (pre[t+1]-pre[f])/s, out))
				}
			}
		}
	}
	return fmath.SortedUnique(cands)
}

// sweepFrontier solves the min-energy-under-period problem at every
// candidate period concurrently (one batch job per candidate; core.Solve
// dispatches each to the paper's polynomial algorithm for the platform
// class) and filters the feasible results down to the frontier. A
// candidate whose bounds no mapping can satisfy (core.ErrInfeasible —
// including platform shapes the rule cannot map at all, e.g. one-to-one
// with fewer processors than stages) is skipped, matching the sequential
// implementation: an empty frontier, not an error, reports that nothing is
// achievable. Every other job error — an unsupported criteria combination,
// an invalid instance, a cancelled context — is propagated: swallowing it
// would disguise a broken query as "nothing achievable".
func sweepFrontier(ctx context.Context, inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, cands []float64, opts batch.Options) ([]Point, error) {
	jobs := make([]batch.Job, len(cands))
	for i, cand := range cands {
		jobs[i] = batch.Job{Inst: inst, Req: core.Request{
			Rule: rule, Model: model, Objective: core.Energy,
			PeriodBounds: core.UniformBounds(inst, cand),
		}}
	}
	results, _ := batch.SolveCtx(ctx, jobs, opts)
	var points []Point
	for _, jr := range results {
		if jr.Err != nil {
			if errors.Is(jr.Err, core.ErrInfeasible) {
				continue // not achievable at this candidate period
			}
			return nil, jr.Err
		}
		points = append(points, Point{
			Period:  jr.Result.Metrics.Period,
			Energy:  jr.Result.Value,
			Mapping: jr.Result.Mapping,
		})
	}
	return Filter(points), nil
}

// PeriodEnergyFullyHom computes the full period/energy frontier of interval
// mappings on a fully homogeneous multi-modal platform, by solving the
// Theorem 18+21 dynamic program at every candidate period (in parallel
// across the batch worker pool). Each frontier point's mapping is a witness
// achieving (period <= Point.Period, Point.Energy) with minimal energy.
func PeriodEnergyFullyHom(inst *pipeline.Instance, model pipeline.CommModel) ([]Point, error) {
	return PeriodEnergyFullyHomCtx(context.Background(), inst, model, batch.Options{})
}

// PeriodEnergyFullyHomCtx is PeriodEnergyFullyHom with cancellation and
// batch options (worker bound, shared cache): a server can abort a sweep on
// request timeout and reuse memoized candidate solves across requests.
func PeriodEnergyFullyHomCtx(ctx context.Context, inst *pipeline.Instance, model pipeline.CommModel, opts batch.Options) ([]Point, error) {
	return sweepFrontier(ctx, inst, mapping.Interval, model, periodCandidates(inst, model), opts)
}

// PeriodEnergyOneToOneCommHom computes the one-to-one period/energy
// frontier on a communication homogeneous platform by running the Theorem
// 19 matching at every candidate period (W_a times any stage cycle time at
// any processor mode), in parallel across the batch worker pool.
func PeriodEnergyOneToOneCommHom(inst *pipeline.Instance, model pipeline.CommModel) ([]Point, error) {
	return PeriodEnergyOneToOneCommHomCtx(context.Background(), inst, model, batch.Options{})
}

// PeriodEnergyOneToOneCommHomCtx is PeriodEnergyOneToOneCommHom with
// cancellation and batch options (worker bound, shared cache).
func PeriodEnergyOneToOneCommHomCtx(ctx context.Context, inst *pipeline.Instance, model pipeline.CommModel, opts batch.Options) ([]Point, error) {
	b, _ := inst.Platform.HomogeneousLinks()
	var cands []float64
	for a := range inst.Apps {
		app := &inst.Apps[a]
		w := app.EffectiveWeight()
		for k := range app.Stages {
			in, out := 0.0, 0.0
			if v := app.InputSize(k); v > 0 {
				in = v / b
			}
			if v := app.OutputSize(k); v > 0 {
				out = v / b
			}
			for u := range inst.Platform.Processors {
				for _, s := range inst.Platform.Processors[u].Speeds {
					cands = append(cands, w*mapping.IntervalCost(model, in, app.Stages[k].Work/s, out))
				}
			}
		}
	}
	return sweepFrontier(ctx, inst, mapping.OneToOne, model, fmath.SortedUnique(cands), opts)
}

// PeriodEnergyCtx computes the period/energy trade-off frontier under the
// given rule, dispatching per platform class: on the classes where the
// paper's bi-criteria algorithms are polynomial (fully homogeneous interval
// mappings, communication homogeneous one-to-one mappings) the frontier is
// built by the polynomial candidate sweeps above; otherwise it falls back
// to exhaustive enumeration, subject to the same search-space limits as
// core.Solve. The context cancels the candidate sweeps between jobs; the
// exhaustive fallback only honours it up front (the enumeration itself is
// not preemptible).
func PeriodEnergyCtx(ctx context.Context, inst *pipeline.Instance, rule mapping.Rule, model pipeline.CommModel, opts batch.Options) ([]Point, error) {
	cls := inst.Platform.Classify()
	switch {
	case rule == mapping.Interval && cls == pipeline.FullyHomogeneous:
		return PeriodEnergyFullyHomCtx(ctx, inst, model, opts)
	case rule == mapping.OneToOne && cls != pipeline.FullyHeterogeneous:
		return PeriodEnergyOneToOneCommHomCtx(ctx, inst, model, opts)
	default:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		full, err := exact.ParetoFront(inst, rule, model)
		if err != nil {
			return nil, err
		}
		pts := make([]Point, 0, len(full))
		for _, pt := range full {
			pts = append(pts, Point{Period: pt.Period, Energy: pt.Energy, Mapping: pt.Mapping})
		}
		return Filter(pts), nil
	}
}

// MinEnergyUnderPeriod answers the server problem from a frontier: the
// least energy whose period does not exceed the target, or +Inf.
func MinEnergyUnderPeriod(front []Point, target float64) float64 {
	best := math.Inf(1)
	for _, pt := range front {
		if fmath.LE(pt.Period, target) && pt.Energy < best {
			best = pt.Energy
		}
	}
	return best
}

// MinPeriodUnderEnergy answers the laptop problem from a frontier: the best
// period achievable within the energy budget, or +Inf.
func MinPeriodUnderEnergy(front []Point, budget float64) float64 {
	best := math.Inf(1)
	for _, pt := range front {
		if fmath.LE(pt.Energy, budget) && pt.Period < best {
			best = pt.Period
		}
	}
	return best
}
