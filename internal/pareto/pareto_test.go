package pareto

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/algo/exact"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func TestFilter(t *testing.T) {
	pts := []Point{
		{Period: 1, Energy: 10},
		{Period: 2, Energy: 5},
		{Period: 2, Energy: 7}, // dominated
		{Period: 3, Energy: 5}, // dominated (same energy, worse period)
		{Period: 4, Energy: 1},
		{Period: 0.5, Energy: 20},
	}
	front := Filter(pts)
	want := []Point{{Period: 0.5, Energy: 20}, {Period: 1, Energy: 10}, {Period: 2, Energy: 5}, {Period: 4, Energy: 1}}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i].Period != want[i].Period || front[i].Energy != want[i].Energy {
			t.Fatalf("front[%d] = %+v, want %+v", i, front[i], want[i])
		}
	}
	if out := Filter(nil); len(out) != 0 {
		t.Error("Filter(nil) not empty")
	}
}

// TestPeriodEnergyFullyHomMatchesExhaustive: on small fully homogeneous
// instances, the polynomial frontier must equal the projection of the
// exhaustive Pareto front onto (period, energy).
func TestPeriodEnergyFullyHomMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		inst := workload.MustInstance(rng, workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 3,
			Procs: 3, Modes: 2, Class: pipeline.FullyHomogeneous,
			MaxWork: 6, MaxData: 3, MaxSpeed: 5,
		})
		model := []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap}[trial%2]
		front, err := PeriodEnergyFullyHom(&inst, model)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		full, err := exact.ParetoFront(&inst, mapping.Interval, model)
		if err != nil {
			t.Fatalf("trial %d oracle: %v", trial, err)
		}
		// Project the exhaustive 3-criteria front onto (period, energy).
		var proj []Point
		for _, pt := range full {
			proj = append(proj, Point{Period: pt.Period, Energy: pt.Energy})
		}
		wantFront := Filter(proj)
		if len(front) != len(wantFront) {
			t.Fatalf("trial %d (%v): frontier sizes differ: dp=%d oracle=%d\ndp=%v\noracle=%v",
				trial, model, len(front), len(wantFront), points(front), points(wantFront))
		}
		for i := range front {
			if !fmath.EQ(front[i].Period, wantFront[i].Period) || !fmath.EQ(front[i].Energy, wantFront[i].Energy) {
				t.Fatalf("trial %d: point %d: dp (%g,%g) oracle (%g,%g)", trial, i,
					front[i].Period, front[i].Energy, wantFront[i].Period, wantFront[i].Energy)
			}
		}
		// Witness mappings achieve their points.
		for i, pt := range front {
			if !fmath.LE(mapping.Period(&inst, &pt.Mapping, model), pt.Period) {
				t.Errorf("trial %d: witness %d misses its period", trial, i)
			}
			if !fmath.EQ(mapping.Energy(&inst, &pt.Mapping), pt.Energy) {
				t.Errorf("trial %d: witness %d misses its energy", trial, i)
			}
		}
	}
}

func points(ps []Point) [][2]float64 {
	out := make([][2]float64, len(ps))
	for i, p := range ps {
		out[i] = [2]float64{p.Period, p.Energy}
	}
	return out
}

// TestPeriodEnergyOneToOneMatchesExhaustive does the same for the Theorem
// 19 matching frontier on communication homogeneous platforms.
func TestPeriodEnergyOneToOneMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 10; trial++ {
		cfg := workload.Config{
			Apps: 1, MinStages: 2, MaxStages: 3, Procs: 1, Modes: 2,
			Class: pipeline.CommHomogeneous, MaxWork: 6, MaxData: 3, MaxSpeed: 6,
		}
		inst := workload.MustInstance(rng, cfg)
		cfg.Procs = inst.TotalStages() + 1
		inst.Platform = workload.Platform(rng, cfg)
		front, err := PeriodEnergyOneToOneCommHom(&inst, pipeline.Overlap)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		full, err := exact.ParetoFront(&inst, mapping.OneToOne, pipeline.Overlap)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var proj []Point
		for _, pt := range full {
			proj = append(proj, Point{Period: pt.Period, Energy: pt.Energy})
		}
		wantFront := Filter(proj)
		if len(front) != len(wantFront) {
			t.Fatalf("trial %d: frontier sizes differ: %v vs %v", trial, points(front), points(wantFront))
		}
		for i := range front {
			if !fmath.EQ(front[i].Period, wantFront[i].Period) || !fmath.EQ(front[i].Energy, wantFront[i].Energy) {
				t.Fatalf("trial %d: point %d mismatch", trial, i)
			}
		}
	}
}

// TestOneToOneImpossiblePlatformYieldsEmptyFrontier pins the sequential
// contract kept by the batch sweep: when the rule cannot map the instance
// at all (one-to-one with fewer processors than stages), the frontier is
// empty and no error is raised.
func TestOneToOneImpossiblePlatformYieldsEmptyFrontier(t *testing.T) {
	inst := pipeline.MotivatingExample() // 7 stages, 3 processors
	front, err := PeriodEnergyOneToOneCommHom(&inst, pipeline.Overlap)
	if err != nil {
		t.Fatalf("impossible platform returned error %v, want empty frontier", err)
	}
	if len(front) != 0 {
		t.Fatalf("impossible platform returned %d points", len(front))
	}
}

// TestSweepPropagatesNonInfeasibleErrors is the silent-error regression: a
// broken query (here, an instance whose platform is sized for a different
// application count, which fails validation inside core.Solve) must surface
// as an error, not as a silently empty frontier. Only genuine
// infeasibility may be skipped.
func TestSweepPropagatesNonInfeasibleErrors(t *testing.T) {
	bad := pipeline.Instance{
		Apps: []pipeline.Application{pipeline.NewUniformApplication("a", 2, 1)},
		// Virtual links sized for two applications, instance has one.
		Platform: pipeline.NewHomogeneousPlatform(3, []float64{1, 2}, 1, 2),
		Energy:   pipeline.DefaultEnergy,
	}
	front, err := PeriodEnergyFullyHom(&bad, pipeline.Overlap)
	if err == nil {
		t.Fatalf("invalid instance produced frontier %v, want error", points(front))
	}
	if errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("validation failure misreported as infeasibility: %v", err)
	}
}

// TestSweepCancellation: a cancelled context aborts the sweep with the
// context's error instead of returning a truncated frontier.
func TestSweepCancellation(t *testing.T) {
	inst := workload.MustInstance(rand.New(rand.NewSource(74)), workload.Config{
		Apps: 2, MinStages: 2, MaxStages: 3, Procs: 4, Modes: 2,
		Class: pipeline.FullyHomogeneous, MaxWork: 6, MaxData: 3, MaxSpeed: 5,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PeriodEnergyFullyHomCtx(ctx, &inst, pipeline.Overlap, batch.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if _, err := PeriodEnergyCtx(ctx, &inst, mapping.Interval, pipeline.Overlap, batch.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled dispatch returned %v, want context.Canceled", err)
	}
}

// TestPeriodEnergyCtxSharedCache: a server-shaped caller hands the same
// cache to two sweeps; the second must be answered from memo hits.
func TestPeriodEnergyCtxSharedCache(t *testing.T) {
	inst := workload.MustInstance(rand.New(rand.NewSource(75)), workload.Config{
		Apps: 1, MinStages: 2, MaxStages: 2, Procs: 3, Modes: 2,
		Class: pipeline.FullyHomogeneous, MaxWork: 5, MaxData: 2, MaxSpeed: 4,
	})
	cache := batch.NewCacheCap(1024)
	first, err := PeriodEnergyCtx(context.Background(), &inst, mapping.Interval, pipeline.Overlap, batch.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	misses := cache.Stats().Misses
	second, err := PeriodEnergyCtx(context.Background(), &inst, mapping.Interval, pipeline.Overlap, batch.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != misses {
		t.Errorf("second sweep recomputed %d candidates despite the shared cache", got-misses)
	}
	if len(first) != len(second) {
		t.Fatalf("cached sweep changed the frontier: %d vs %d points", len(first), len(second))
	}
	for i := range first {
		if !fmath.EQ(first[i].Period, second[i].Period) || !fmath.EQ(first[i].Energy, second[i].Energy) {
			t.Errorf("point %d differs across cached sweeps", i)
		}
	}
}

// TestEmptyFrontierQueries pins the degenerate-frontier contract relied on
// by the CLI and server encoders: both queries answer +Inf on an empty (or
// nil) frontier, and the JSON layer must render that as null (stdlib
// json.Marshal errors on non-finite floats; see internal/jobspec).
func TestEmptyFrontierQueries(t *testing.T) {
	for _, front := range [][]Point{nil, {}} {
		if got := MinEnergyUnderPeriod(front, 2); !math.IsInf(got, 1) {
			t.Errorf("MinEnergyUnderPeriod(empty) = %g, want +Inf", got)
		}
		if got := MinPeriodUnderEnergy(front, 100); !math.IsInf(got, 1) {
			t.Errorf("MinPeriodUnderEnergy(empty) = %g, want +Inf", got)
		}
	}
}

func TestLaptopAndServerQueries(t *testing.T) {
	front := []Point{{Period: 1, Energy: 100}, {Period: 2, Energy: 40}, {Period: 5, Energy: 10}}
	if got := MinEnergyUnderPeriod(front, 2); got != 40 {
		t.Errorf("server(2) = %g, want 40", got)
	}
	if got := MinEnergyUnderPeriod(front, 0.5); !math.IsInf(got, 1) {
		t.Errorf("server(0.5) = %g, want +Inf", got)
	}
	if got := MinPeriodUnderEnergy(front, 45); got != 2 {
		t.Errorf("laptop(45) = %g, want 2", got)
	}
	if got := MinPeriodUnderEnergy(front, 5); !math.IsInf(got, 1) {
		t.Errorf("laptop(5) = %g, want +Inf", got)
	}
}

// TestFrontierIsMonotone: period up, energy down along any frontier.
func TestFrontierIsMonotone(t *testing.T) {
	inst := workload.MustInstance(rand.New(rand.NewSource(73)), workload.Config{
		Apps: 2, MinStages: 2, MaxStages: 4, Procs: 6, Modes: 3,
		Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 4, MaxSpeed: 8,
	})
	front, err := PeriodEnergyFullyHom(&inst, pipeline.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(front); i++ {
		if front[i].Period <= front[i-1].Period || front[i].Energy >= front[i-1].Energy {
			t.Errorf("frontier not monotone at %d: %v", i, points(front))
		}
	}
}
