// Package pipeline defines the applicative and platform model of the paper
// (Section 3 and Figure 2): a set of independent linear-chain applications
// processed in pipelined fashion, and a target platform of fully
// interconnected multi-modal (DVFS) processors plus per-application virtual
// input/output processors.
//
// Indices are 0-based throughout: application a has stages 0..n-1, the
// paper's delta^k (output size of stage k, 1-based) is Stages[k-1].Out, and
// the paper's delta^0 (application input size) is Application.In.
package pipeline

import (
	"errors"
	"fmt"
)

// Stage is one stage S^k of a linear chain application: it reads the output
// of its predecessor, performs Work operations, and emits Out data units to
// its successor (Section 3.1).
type Stage struct {
	// Work is the computation requirement w^k (operations per data set).
	Work float64
	// Out is the size delta^k of the data produced for the next stage (or
	// returned to the outside world for the last stage).
	Out float64
}

// Application is one linear chain workflow. Successive data sets traverse
// the stages in pipelined fashion.
type Application struct {
	// Name identifies the application in reports; optional.
	Name string
	// In is the size delta^0 of the input read from the virtual input
	// processor P_in by the first stage.
	In float64
	// Stages are the chain stages in order.
	Stages []Stage
	// Weight is the priority ratio W_a of Equation (6). The global
	// objective for criterion X is max_a Weight_a * X_a. A zero value is
	// treated as 1 by Validate.
	Weight float64
}

// NumStages returns the number of stages n_a.
func (a *Application) NumStages() int { return len(a.Stages) }

// TotalWork returns the sum of all stage computation requirements.
func (a *Application) TotalWork() float64 {
	var s float64
	for _, st := range a.Stages {
		s += st.Work
	}
	return s
}

// WorkPrefix returns the prefix-sum array P of length n+1 with
// P[i] = sum of Work of stages 0..i-1, so that the work of the interval
// [i, j] (inclusive) is P[j+1]-P[i]. Algorithms use it for O(1) range sums.
func (a *Application) WorkPrefix() []float64 {
	p := make([]float64, len(a.Stages)+1)
	for i, st := range a.Stages {
		p[i+1] = p[i] + st.Work
	}
	return p
}

// IntervalWork returns the total work of stages from..to inclusive.
func (a *Application) IntervalWork(from, to int) float64 {
	var s float64
	for i := from; i <= to; i++ {
		s += a.Stages[i].Work
	}
	return s
}

// InputSize returns the size of the data entering stage k: delta^0 for the
// first stage, otherwise the output of stage k-1.
func (a *Application) InputSize(k int) float64 {
	if k == 0 {
		return a.In
	}
	return a.Stages[k-1].Out
}

// OutputSize returns the size of the data leaving stage k (delta^{k+1} in
// 1-based paper notation).
func (a *Application) OutputSize(k int) float64 { return a.Stages[k].Out }

// EffectiveWeight returns Weight, or 1 if Weight is unset (zero).
func (a *Application) EffectiveWeight() float64 {
	if a.Weight == 0 {
		return 1
	}
	return a.Weight
}

// Validate checks structural invariants: at least one stage, strictly
// positive works, non-negative data sizes and a non-negative weight.
func (a *Application) Validate() error {
	if len(a.Stages) == 0 {
		return fmt.Errorf("pipeline: application %q has no stages", a.Name)
	}
	if a.In < 0 {
		return fmt.Errorf("pipeline: application %q has negative input size", a.Name)
	}
	if a.Weight < 0 {
		return fmt.Errorf("pipeline: application %q has negative weight", a.Name)
	}
	for k, st := range a.Stages {
		if st.Work <= 0 {
			return fmt.Errorf("pipeline: application %q stage %d has non-positive work %g", a.Name, k, st.Work)
		}
		if st.Out < 0 {
			return fmt.Errorf("pipeline: application %q stage %d has negative output size", a.Name, k)
		}
	}
	return nil
}

// Clone returns a deep copy of the application.
func (a *Application) Clone() Application {
	c := *a
	c.Stages = append([]Stage(nil), a.Stages...)
	return c
}

// NewUniformApplication builds an application of n stages, each with the
// given work, with no communication at all (all data sizes zero). This is
// the "homogeneous pipeline without communication" shape used by the
// special-app NP-hardness results (Theorems 5-11).
func NewUniformApplication(name string, n int, work float64) Application {
	st := make([]Stage, n)
	for i := range st {
		st[i].Work = work
	}
	return Application{Name: name, Stages: st, Weight: 1}
}

// ErrNoStages is returned by helpers that require a non-empty application.
var ErrNoStages = errors.New("pipeline: application has no stages")
