package pipeline

import (
	"fmt"
	"math"

	"repro/internal/fmath"
)

// Processor is a multi-modal computation resource (Section 3.2). Its Speeds
// are the discrete DVFS modes, kept sorted ascending; the last entry is the
// fastest mode. A uni-modal processor has exactly one speed.
type Processor struct {
	// Name identifies the processor in reports; optional.
	Name string
	// Speeds is the mode set S_u = {s_u,1 ... s_u,m_u}, ascending.
	Speeds []float64
}

// MaxSpeed returns the fastest mode.
func (p *Processor) MaxSpeed() float64 { return p.Speeds[len(p.Speeds)-1] }

// MinSpeed returns the slowest mode.
func (p *Processor) MinSpeed() float64 { return p.Speeds[0] }

// NumModes returns the number of execution modes m_u.
func (p *Processor) NumModes() int { return len(p.Speeds) }

// Class describes where a platform sits in the paper's heterogeneity
// hierarchy (Section 3.2).
type Class int

const (
	// FullyHomogeneous: identical processors (same speed set) and a single
	// common bandwidth on every link, including virtual in/out links.
	FullyHomogeneous Class = iota
	// CommHomogeneous: identical link bandwidths but processor speed sets
	// may differ. Models networks of workstations on a uniform LAN.
	CommHomogeneous
	// FullyHeterogeneous: both speeds and link capacities may differ.
	FullyHeterogeneous
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case FullyHomogeneous:
		return "fully-homogeneous"
	case CommHomogeneous:
		return "communication-homogeneous"
	case FullyHeterogeneous:
		return "fully-heterogeneous"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Platform is the target execution platform: p fully interconnected
// processors plus, for each of the A applications, virtual input and output
// processors P_in_a and P_out_a connected to every real processor.
type Platform struct {
	// Processors are the real compute resources.
	Processors []Processor
	// Bandwidth[u][v] is the capacity b_{u,v} of the bidirectional link
	// between P_u and P_v. It must be symmetric with positive
	// off-diagonal entries; the diagonal is ignored (an interval never
	// communicates with itself).
	Bandwidth [][]float64
	// InBandwidth[a][u] is the bandwidth between the virtual input
	// processor of application a and P_u.
	InBandwidth [][]float64
	// OutBandwidth[a][u] is the bandwidth between P_u and the virtual
	// output processor of application a.
	OutBandwidth [][]float64
}

// NumProcessors returns p.
func (pl *Platform) NumProcessors() int { return len(pl.Processors) }

// NumApplications returns the number of applications the platform's virtual
// in/out links were sized for.
func (pl *Platform) NumApplications() int { return len(pl.InBandwidth) }

// Link returns the bandwidth between two distinct real processors.
func (pl *Platform) Link(u, v int) float64 { return pl.Bandwidth[u][v] }

// InLink returns the bandwidth from P_in_a to processor u.
func (pl *Platform) InLink(a, u int) float64 { return pl.InBandwidth[a][u] }

// OutLink returns the bandwidth from processor u to P_out_a.
func (pl *Platform) OutLink(a, u int) float64 { return pl.OutBandwidth[a][u] }

// UniModal reports whether every processor has a single execution mode.
func (pl *Platform) UniModal() bool {
	for i := range pl.Processors {
		if len(pl.Processors[i].Speeds) != 1 {
			return false
		}
	}
	return true
}

// HomogeneousProcessors reports whether all processors share the same speed
// set (within tolerance).
func (pl *Platform) HomogeneousProcessors() bool {
	if len(pl.Processors) == 0 {
		return true
	}
	ref := pl.Processors[0].Speeds
	for i := 1; i < len(pl.Processors); i++ {
		s := pl.Processors[i].Speeds
		if len(s) != len(ref) {
			return false
		}
		for j := range s {
			if !fmath.EQ(s[j], ref[j]) {
				return false
			}
		}
	}
	return true
}

// HomogeneousLinks reports whether every link (including virtual in/out
// links) has the same bandwidth, and returns that bandwidth.
func (pl *Platform) HomogeneousLinks() (float64, bool) {
	b := math.NaN()
	check := func(x float64) bool {
		if math.IsNaN(b) {
			b = x
			return true
		}
		return fmath.EQ(b, x)
	}
	p := len(pl.Processors)
	for u := 0; u < p; u++ {
		for v := 0; v < p; v++ {
			if u == v {
				continue
			}
			if !check(pl.Bandwidth[u][v]) {
				return 0, false
			}
		}
	}
	for a := range pl.InBandwidth {
		for u := 0; u < p; u++ {
			if !check(pl.InBandwidth[a][u]) || !check(pl.OutBandwidth[a][u]) {
				return 0, false
			}
		}
	}
	if math.IsNaN(b) {
		b = 1 // single-processor platform with no apps; irrelevant
	}
	return b, true
}

// Classify returns the platform class in the paper's hierarchy.
func (pl *Platform) Classify() Class {
	_, linksHom := pl.HomogeneousLinks()
	if !linksHom {
		return FullyHeterogeneous
	}
	if pl.HomogeneousProcessors() {
		return FullyHomogeneous
	}
	return CommHomogeneous
}

// Validate checks structural invariants: at least one processor, sorted
// positive speed sets, and symmetric positive bandwidth matrices of
// consistent dimensions.
func (pl *Platform) Validate() error {
	p := len(pl.Processors)
	if p == 0 {
		return fmt.Errorf("pipeline: platform has no processors")
	}
	for u, proc := range pl.Processors {
		if len(proc.Speeds) == 0 {
			return fmt.Errorf("pipeline: processor %d has no speeds", u)
		}
		for i, s := range proc.Speeds {
			if s <= 0 {
				return fmt.Errorf("pipeline: processor %d has non-positive speed %g", u, s)
			}
			if i > 0 && s < proc.Speeds[i-1] {
				return fmt.Errorf("pipeline: processor %d speeds not sorted ascending", u)
			}
		}
	}
	if len(pl.Bandwidth) != p {
		return fmt.Errorf("pipeline: bandwidth matrix has %d rows, want %d", len(pl.Bandwidth), p)
	}
	for u := 0; u < p; u++ {
		if len(pl.Bandwidth[u]) != p {
			return fmt.Errorf("pipeline: bandwidth row %d has %d entries, want %d", u, len(pl.Bandwidth[u]), p)
		}
		for v := 0; v < p; v++ {
			if u == v {
				continue
			}
			if pl.Bandwidth[u][v] <= 0 {
				return fmt.Errorf("pipeline: bandwidth[%d][%d] = %g must be positive", u, v, pl.Bandwidth[u][v])
			}
			if !fmath.EQ(pl.Bandwidth[u][v], pl.Bandwidth[v][u]) {
				return fmt.Errorf("pipeline: bandwidth matrix not symmetric at (%d,%d)", u, v)
			}
		}
	}
	if len(pl.InBandwidth) != len(pl.OutBandwidth) {
		return fmt.Errorf("pipeline: in/out bandwidth matrices disagree on application count")
	}
	for a := range pl.InBandwidth {
		if len(pl.InBandwidth[a]) != p || len(pl.OutBandwidth[a]) != p {
			return fmt.Errorf("pipeline: in/out bandwidth row %d has wrong width", a)
		}
		for u := 0; u < p; u++ {
			if pl.InBandwidth[a][u] <= 0 || pl.OutBandwidth[a][u] <= 0 {
				return fmt.Errorf("pipeline: in/out bandwidth for app %d proc %d must be positive", a, u)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the platform.
func (pl *Platform) Clone() Platform {
	c := Platform{Processors: make([]Processor, len(pl.Processors))}
	for i, pr := range pl.Processors {
		c.Processors[i] = Processor{Name: pr.Name, Speeds: append([]float64(nil), pr.Speeds...)}
	}
	c.Bandwidth = cloneMatrix(pl.Bandwidth)
	c.InBandwidth = cloneMatrix(pl.InBandwidth)
	c.OutBandwidth = cloneMatrix(pl.OutBandwidth)
	return c
}

func cloneMatrix(m [][]float64) [][]float64 {
	if m == nil {
		return nil
	}
	c := make([][]float64, len(m))
	for i := range m {
		c[i] = append([]float64(nil), m[i]...)
	}
	return c
}

func uniformMatrix(rows, cols int, x float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = x
		}
	}
	return m
}

// NewHomogeneousPlatform builds a fully homogeneous platform of p identical
// processors with the given mode set, a uniform bandwidth b on every link,
// sized for numApps applications.
func NewHomogeneousPlatform(p int, speeds []float64, b float64, numApps int) Platform {
	procs := make([]Processor, p)
	for i := range procs {
		procs[i] = Processor{Name: fmt.Sprintf("P%d", i+1), Speeds: append([]float64(nil), speeds...)}
	}
	return Platform{
		Processors:   procs,
		Bandwidth:    uniformMatrix(p, p, b),
		InBandwidth:  uniformMatrix(numApps, p, b),
		OutBandwidth: uniformMatrix(numApps, p, b),
	}
}

// NewCommHomogeneousPlatform builds a communication homogeneous platform:
// per-processor speed sets with a uniform bandwidth b, sized for numApps
// applications.
func NewCommHomogeneousPlatform(speedSets [][]float64, b float64, numApps int) Platform {
	procs := make([]Processor, len(speedSets))
	for i, s := range speedSets {
		procs[i] = Processor{Name: fmt.Sprintf("P%d", i+1), Speeds: append([]float64(nil), s...)}
	}
	p := len(procs)
	return Platform{
		Processors:   procs,
		Bandwidth:    uniformMatrix(p, p, b),
		InBandwidth:  uniformMatrix(numApps, p, b),
		OutBandwidth: uniformMatrix(numApps, p, b),
	}
}

// NewHeterogeneousPlatform builds a fully heterogeneous platform from
// explicit speed sets and bandwidth matrices. The matrices are cloned.
func NewHeterogeneousPlatform(speedSets [][]float64, bw, in, out [][]float64) Platform {
	procs := make([]Processor, len(speedSets))
	for i, s := range speedSets {
		procs[i] = Processor{Name: fmt.Sprintf("P%d", i+1), Speeds: append([]float64(nil), s...)}
	}
	return Platform{
		Processors:   procs,
		Bandwidth:    cloneMatrix(bw),
		InBandwidth:  cloneMatrix(in),
		OutBandwidth: cloneMatrix(out),
	}
}
