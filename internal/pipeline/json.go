package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON schema accepted by the cmd/ tools. A uniform bandwidth may be
// given instead of full matrices; explicit matrices win when both appear.
//
//	{
//	  "apps": [
//	    {"name": "app1", "weight": 1, "in": 1,
//	     "stages": [{"work": 3, "out": 3}, ...]}
//	  ],
//	  "platform": {
//	    "processors": [{"name": "P1", "speeds": [3, 6]}, ...],
//	    "uniformBandwidth": 1.0,
//	    "bandwidth": [[...]], "inBandwidth": [[...]], "outBandwidth": [[...]]
//	  },
//	  "energy": {"static": 0, "alpha": 2}
//	}
type instanceJSON struct {
	Apps     []appJSON   `json:"apps"`
	Platform platJSON    `json:"platform"`
	Energy   *energyJSON `json:"energy,omitempty"`
}

type appJSON struct {
	Name   string      `json:"name,omitempty"`
	Weight float64     `json:"weight,omitempty"`
	In     float64     `json:"in"`
	Stages []stageJSON `json:"stages"`
}

type stageJSON struct {
	Work float64 `json:"work"`
	Out  float64 `json:"out"`
}

type platJSON struct {
	Processors       []procJSON  `json:"processors"`
	UniformBandwidth float64     `json:"uniformBandwidth,omitempty"`
	Bandwidth        [][]float64 `json:"bandwidth,omitempty"`
	InBandwidth      [][]float64 `json:"inBandwidth,omitempty"`
	OutBandwidth     [][]float64 `json:"outBandwidth,omitempty"`
}

type procJSON struct {
	Name   string    `json:"name,omitempty"`
	Speeds []float64 `json:"speeds"`
}

type energyJSON struct {
	Static float64 `json:"static"`
	Alpha  float64 `json:"alpha"`
}

// EncodeJSON writes the instance to w in the tool schema.
func EncodeJSON(w io.Writer, in *Instance) error {
	doc := instanceJSON{}
	for i := range in.Apps {
		a := &in.Apps[i]
		aj := appJSON{Name: a.Name, Weight: a.Weight, In: a.In}
		for _, st := range a.Stages {
			aj.Stages = append(aj.Stages, stageJSON{Work: st.Work, Out: st.Out})
		}
		doc.Apps = append(doc.Apps, aj)
	}
	for i := range in.Platform.Processors {
		pr := &in.Platform.Processors[i]
		doc.Platform.Processors = append(doc.Platform.Processors, procJSON{Name: pr.Name, Speeds: pr.Speeds})
	}
	if b, ok := in.Platform.HomogeneousLinks(); ok {
		doc.Platform.UniformBandwidth = b
	} else {
		doc.Platform.Bandwidth = in.Platform.Bandwidth
		doc.Platform.InBandwidth = in.Platform.InBandwidth
		doc.Platform.OutBandwidth = in.Platform.OutBandwidth
	}
	doc.Energy = &energyJSON{Static: in.Energy.Static, Alpha: in.Energy.alpha()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeJSON parses an instance from r and validates it.
func DecodeJSON(r io.Reader) (Instance, error) {
	var doc instanceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return Instance{}, fmt.Errorf("pipeline: decoding instance: %w", err)
	}
	var in Instance
	for _, aj := range doc.Apps {
		app := Application{Name: aj.Name, Weight: aj.Weight, In: aj.In}
		for _, sj := range aj.Stages {
			app.Stages = append(app.Stages, Stage{Work: sj.Work, Out: sj.Out})
		}
		in.Apps = append(in.Apps, app)
	}
	p := len(doc.Platform.Processors)
	for _, pj := range doc.Platform.Processors {
		in.Platform.Processors = append(in.Platform.Processors, Processor{Name: pj.Name, Speeds: pj.Speeds})
	}
	a := len(in.Apps)
	if doc.Platform.Bandwidth != nil {
		in.Platform.Bandwidth = doc.Platform.Bandwidth
		in.Platform.InBandwidth = doc.Platform.InBandwidth
		in.Platform.OutBandwidth = doc.Platform.OutBandwidth
	} else {
		b := doc.Platform.UniformBandwidth
		if b == 0 {
			b = 1
		}
		in.Platform.Bandwidth = uniformMatrix(p, p, b)
		in.Platform.InBandwidth = uniformMatrix(a, p, b)
		in.Platform.OutBandwidth = uniformMatrix(a, p, b)
	}
	if doc.Energy != nil {
		in.Energy = EnergyModel{Static: doc.Energy.Static, Alpha: doc.Energy.Alpha}
	} else {
		in.Energy = DefaultEnergy
	}
	if err := in.Validate(); err != nil {
		return Instance{}, err
	}
	return in, nil
}
