package pipeline

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestApplicationValidate(t *testing.T) {
	cases := []struct {
		name string
		app  Application
		ok   bool
	}{
		{"valid", Application{Stages: []Stage{{Work: 1}}}, true},
		{"no stages", Application{}, false},
		{"zero work", Application{Stages: []Stage{{Work: 0}}}, false},
		{"negative work", Application{Stages: []Stage{{Work: -1}}}, false},
		{"negative out", Application{Stages: []Stage{{Work: 1, Out: -2}}}, false},
		{"negative in", Application{In: -1, Stages: []Stage{{Work: 1}}}, false},
		{"negative weight", Application{Weight: -1, Stages: []Stage{{Work: 1}}}, false},
		{"zero data ok", Application{Stages: []Stage{{Work: 1, Out: 0}}}, true},
	}
	for _, c := range cases {
		err := c.app.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestApplicationAccessors(t *testing.T) {
	app := Application{
		In:     5,
		Stages: []Stage{{Work: 1, Out: 2}, {Work: 3, Out: 4}, {Work: 5, Out: 6}},
	}
	if got := app.NumStages(); got != 3 {
		t.Errorf("NumStages = %d, want 3", got)
	}
	if got := app.TotalWork(); got != 9 {
		t.Errorf("TotalWork = %g, want 9", got)
	}
	if got := app.IntervalWork(1, 2); got != 8 {
		t.Errorf("IntervalWork(1,2) = %g, want 8", got)
	}
	if got := app.InputSize(0); got != 5 {
		t.Errorf("InputSize(0) = %g, want 5 (delta^0)", got)
	}
	if got := app.InputSize(2); got != 4 {
		t.Errorf("InputSize(2) = %g, want 4", got)
	}
	if got := app.OutputSize(2); got != 6 {
		t.Errorf("OutputSize(2) = %g, want 6", got)
	}
	if got := app.EffectiveWeight(); got != 1 {
		t.Errorf("EffectiveWeight of zero weight = %g, want 1", got)
	}
	app.Weight = 2.5
	if got := app.EffectiveWeight(); got != 2.5 {
		t.Errorf("EffectiveWeight = %g, want 2.5", got)
	}
	pre := app.WorkPrefix()
	want := []float64{0, 1, 4, 9}
	for i := range want {
		if pre[i] != want[i] {
			t.Errorf("WorkPrefix[%d] = %g, want %g", i, pre[i], want[i])
		}
	}
}

func TestWorkPrefixMatchesIntervalWork(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		app := Application{}
		for _, r := range raw {
			app.Stages = append(app.Stages, Stage{Work: float64(r%50) + 1})
		}
		pre := app.WorkPrefix()
		n := app.NumStages()
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if math.Abs(pre[j+1]-pre[i]-app.IntervalWork(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformApplication(t *testing.T) {
	app := NewUniformApplication("u", 4, 2)
	if app.NumStages() != 4 || app.TotalWork() != 8 {
		t.Fatalf("unexpected uniform application %+v", app)
	}
	for _, st := range app.Stages {
		if st.Out != 0 {
			t.Fatalf("uniform application should have no communication")
		}
	}
}

func TestPlatformClassification(t *testing.T) {
	hom := NewHomogeneousPlatform(3, []float64{1, 2}, 1, 1)
	if got := hom.Classify(); got != FullyHomogeneous {
		t.Errorf("homogeneous platform classified as %v", got)
	}
	ch := NewCommHomogeneousPlatform([][]float64{{1}, {2}}, 1, 1)
	if got := ch.Classify(); got != CommHomogeneous {
		t.Errorf("comm-homogeneous platform classified as %v", got)
	}
	het := NewCommHomogeneousPlatform([][]float64{{1}, {2}}, 1, 1)
	het.Bandwidth[0][1] = 3
	het.Bandwidth[1][0] = 3
	if got := het.Classify(); got != FullyHeterogeneous {
		t.Errorf("heterogeneous platform classified as %v", got)
	}
	// Identical speed sets with heterogeneous links is still fully het.
	het2 := NewHomogeneousPlatform(2, []float64{1}, 1, 1)
	het2.InBandwidth[0][0] = 9
	if got := het2.Classify(); got != FullyHeterogeneous {
		t.Errorf("het-links platform classified as %v", got)
	}
}

func TestPlatformValidate(t *testing.T) {
	good := NewHomogeneousPlatform(2, []float64{1, 2}, 1, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid platform rejected: %v", err)
	}
	bad := good.Clone()
	bad.Bandwidth[0][1] = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative bandwidth accepted")
	}
	bad = good.Clone()
	bad.Bandwidth[0][1] = 2 // asymmetric
	if err := bad.Validate(); err == nil {
		t.Error("asymmetric bandwidth accepted")
	}
	bad = good.Clone()
	bad.Processors[0].Speeds = []float64{2, 1}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted speeds accepted")
	}
	bad = good.Clone()
	bad.Processors[1].Speeds = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty speed set accepted")
	}
	bad = good.Clone()
	bad.InBandwidth[0][0] = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero virtual bandwidth accepted")
	}
}

func TestUniModal(t *testing.T) {
	uni := NewHomogeneousPlatform(2, []float64{3}, 1, 1)
	if !uni.UniModal() {
		t.Error("uni-modal platform not detected")
	}
	multi := NewHomogeneousPlatform(2, []float64{1, 3}, 1, 1)
	if multi.UniModal() {
		t.Error("multi-modal platform reported uni-modal")
	}
}

func TestEnergyModel(t *testing.T) {
	e := EnergyModel{Static: 1, Alpha: 3}
	if got := e.Power(2); got != 9 {
		t.Errorf("Power(2) = %g, want 9", got)
	}
	def := EnergyModel{}
	if got := def.Power(3); got != 9 {
		t.Errorf("default alpha Power(3) = %g, want 9", got)
	}
	if err := (EnergyModel{Alpha: 1}).Validate(); err == nil {
		t.Error("alpha = 1 accepted")
	}
	if err := (EnergyModel{Alpha: 0.5}).Validate(); err == nil {
		t.Error("alpha < 1 accepted")
	}
	if err := (EnergyModel{Static: -1, Alpha: 2}).Validate(); err == nil {
		t.Error("negative static accepted")
	}
}

func TestInstanceValidate(t *testing.T) {
	inst := MotivatingExample()
	if err := inst.Validate(); err != nil {
		t.Fatalf("motivating example invalid: %v", err)
	}
	if got := inst.TotalStages(); got != 7 {
		t.Errorf("TotalStages = %d, want 7", got)
	}
	if got := inst.NumApps(); got != 2 {
		t.Errorf("NumApps = %d, want 2", got)
	}
	// Platform sized for the wrong number of apps must fail.
	bad := inst.Clone()
	bad.Apps = bad.Apps[:1]
	if err := bad.Validate(); err == nil {
		t.Error("mis-sized virtual links accepted")
	}
}

func TestSpecialApp(t *testing.T) {
	inst := Instance{
		Apps: []Application{
			NewUniformApplication("a", 3, 1),
			NewUniformApplication("b", 5, 1),
		},
		Platform: NewCommHomogeneousPlatform([][]float64{{1}, {2}, {3}}, 1, 2),
		Energy:   DefaultEnergy,
	}
	if !inst.SpecialApp() {
		t.Error("special-app instance not detected")
	}
	inst.Apps[0].Stages[1].Work = 2
	if inst.SpecialApp() {
		t.Error("non-uniform works accepted as special-app")
	}
	inst.Apps[0].Stages[1].Work = 1
	inst.Apps[1].Stages[0].Out = 1
	if inst.SpecialApp() {
		t.Error("instance with communication accepted as special-app")
	}
	if (&Instance{}).SpecialApp() {
		t.Error("empty instance accepted as special-app")
	}
}

func TestMotivatingExampleShape(t *testing.T) {
	inst := MotivatingExample()
	if inst.Platform.Classify() != CommHomogeneous {
		t.Errorf("motivating example platform class = %v, want comm-homogeneous", inst.Platform.Classify())
	}
	wantW1 := []float64{3, 2, 1}
	wantW2 := []float64{2, 6, 4, 2}
	for i, w := range wantW1 {
		if inst.Apps[0].Stages[i].Work != w {
			t.Errorf("app1 stage %d work = %g, want %g", i, inst.Apps[0].Stages[i].Work, w)
		}
	}
	for i, w := range wantW2 {
		if inst.Apps[1].Stages[i].Work != w {
			t.Errorf("app2 stage %d work = %g, want %g", i, inst.Apps[1].Stages[i].Work, w)
		}
	}
	if inst.Apps[0].In != 1 || inst.Apps[0].Stages[2].Out != 0 {
		t.Error("app1 endpoint data sizes wrong")
	}
	if inst.Apps[1].In != 0 || inst.Apps[1].Stages[3].Out != 1 {
		t.Error("app2 endpoint data sizes wrong")
	}
	// delta^2 of app2 must be 1 (used by the period-optimal split in Eq. 1).
	if inst.Apps[1].Stages[1].Out != 1 {
		t.Error("app2 delta^2 must be 1 to match Equation (1)")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	inst := MotivatingExample()
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, &inst); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back.Apps) != 2 || back.Apps[1].Stages[1].Work != 6 {
		t.Fatalf("round trip lost data: %+v", back.Apps)
	}
	if b, ok := back.Platform.HomogeneousLinks(); !ok || b != 1 {
		t.Fatalf("round trip lost uniform bandwidth")
	}
	if back.Energy.Alpha != 2 {
		t.Fatalf("round trip lost energy model: %+v", back.Energy)
	}
}

func TestJSONHeterogeneousRoundTrip(t *testing.T) {
	inst := MotivatingExample()
	inst.Platform.Bandwidth[0][1] = 4
	inst.Platform.Bandwidth[1][0] = 4
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, &inst); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Platform.Bandwidth[0][1] != 4 {
		t.Fatalf("heterogeneous bandwidth lost in round trip")
	}
}

func TestJSONDecodeRejectsInvalid(t *testing.T) {
	bad := `{"apps":[{"in":0,"stages":[{"work":-1,"out":0}]}],"platform":{"processors":[{"speeds":[1]}]}}`
	if _, err := DecodeJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid instance accepted")
	}
	if _, err := DecodeJSON(strings.NewReader(`{"unknown":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestClassStrings(t *testing.T) {
	if FullyHomogeneous.String() == "" || CommHomogeneous.String() == "" || FullyHeterogeneous.String() == "" {
		t.Error("empty class strings")
	}
	if Overlap.String() != "overlap" || NoOverlap.String() != "no-overlap" {
		t.Error("unexpected comm model strings")
	}
}

func TestCloneIsDeep(t *testing.T) {
	inst := MotivatingExample()
	c := inst.Clone()
	c.Apps[0].Stages[0].Work = 99
	c.Platform.Bandwidth[0][1] = 99
	c.Platform.Processors[0].Speeds[0] = 99
	if inst.Apps[0].Stages[0].Work == 99 || inst.Platform.Bandwidth[0][1] == 99 || inst.Platform.Processors[0].Speeds[0] == 99 {
		t.Error("Clone shares memory with original")
	}
}
