package pipeline

import (
	"fmt"
	"math"
)

// EnergyModel is the platform energy model of Section 3.5. The energy
// consumed (per time unit) by an enrolled processor running at speed s is
// E(u) = Static + s^Alpha; processors that are not enrolled consume nothing.
type EnergyModel struct {
	// Static is the fixed overhead E_stat for a processor to be in service.
	Static float64
	// Alpha is the dynamic exponent (alpha > 1). The paper's example uses 2.
	Alpha float64
}

// DefaultEnergy is the model used in the paper's motivating example.
var DefaultEnergy = EnergyModel{Static: 0, Alpha: 2}

// Power returns the energy per time unit consumed by a processor running at
// speed s: Static + s^Alpha.
func (e EnergyModel) Power(s float64) float64 {
	return e.Static + math.Pow(s, e.alpha())
}

func (e EnergyModel) alpha() float64 {
	if e.Alpha == 0 {
		return 2
	}
	return e.Alpha
}

// Validate checks alpha > 1 (or the 0 sentinel meaning "default 2") and a
// non-negative static part.
func (e EnergyModel) Validate() error {
	if e.Alpha != 0 && e.Alpha <= 1 {
		return fmt.Errorf("pipeline: energy exponent alpha = %g must exceed 1", e.Alpha)
	}
	if e.Static < 0 {
		return fmt.Errorf("pipeline: negative static energy %g", e.Static)
	}
	return nil
}

// CommModel selects how a processor's send, compute and receive operations
// interact (Section 3.2).
type CommModel int

const (
	// Overlap: communications and computations are parallel (multi-threaded
	// communication library); the cycle time of a processor is the max of
	// its three operations (Equation 3).
	Overlap CommModel = iota
	// NoOverlap: the three operations are serialized (single-threaded
	// program); the cycle time is their sum (Equation 4).
	NoOverlap
)

// String implements fmt.Stringer.
func (m CommModel) String() string {
	switch m {
	case Overlap:
		return "overlap"
	case NoOverlap:
		return "no-overlap"
	}
	return fmt.Sprintf("CommModel(%d)", int(m))
}

// ParseCommModel is the inverse of String, shared by the cmd/ tools.
func ParseCommModel(s string) (CommModel, error) {
	switch s {
	case "overlap":
		return Overlap, nil
	case "no-overlap":
		return NoOverlap, nil
	}
	return 0, fmt.Errorf("unknown model %q (want overlap | no-overlap)", s)
}

// Instance bundles the concurrent applications, the target platform and the
// energy model: one complete problem input.
type Instance struct {
	Apps     []Application
	Platform Platform
	Energy   EnergyModel
}

// NumApps returns A.
func (in *Instance) NumApps() int { return len(in.Apps) }

// TotalStages returns N = sum of n_a.
func (in *Instance) TotalStages() int {
	n := 0
	for i := range in.Apps {
		n += len(in.Apps[i].Stages)
	}
	return n
}

// Validate checks all components and their mutual consistency (the
// platform's virtual in/out links must be sized for the application count).
func (in *Instance) Validate() error {
	if len(in.Apps) == 0 {
		return fmt.Errorf("pipeline: instance has no applications")
	}
	for a := range in.Apps {
		if err := in.Apps[a].Validate(); err != nil {
			return err
		}
	}
	if err := in.Platform.Validate(); err != nil {
		return err
	}
	if err := in.Energy.Validate(); err != nil {
		return err
	}
	if got, want := in.Platform.NumApplications(), len(in.Apps); got != want {
		return fmt.Errorf("pipeline: platform virtual links sized for %d applications, instance has %d", got, want)
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() Instance {
	c := Instance{Energy: in.Energy, Platform: in.Platform.Clone()}
	c.Apps = make([]Application, len(in.Apps))
	for i := range in.Apps {
		c.Apps[i] = in.Apps[i].Clone()
	}
	return c
}

// SpecialApp reports whether the instance is in the paper's "special-app"
// case: homogeneous pipelines without communication. All data sizes
// (including inputs and outputs) are zero and every stage of every
// application has the same work requirement.
func (in *Instance) SpecialApp() bool {
	if len(in.Apps) == 0 {
		return false
	}
	w := in.Apps[0].Stages[0].Work
	for a := range in.Apps {
		app := &in.Apps[a]
		if app.In != 0 {
			return false
		}
		for _, st := range app.Stages {
			//lint:allow floatcmp structural classification: the special-app shape is defined by bit-identical input works
			if st.Out != 0 || st.Work != w {
				return false
			}
		}
	}
	return true
}

// MotivatingExample builds the Section 2 / Figure 1 instance: two
// applications and three processors with two modes each, all bandwidths 1,
// energy = speed squared.
//
// App1 has stages of work (3, 2, 1) with input size 1 and output size 0;
// App2 has stages of work (2, 6, 4, 2) with input size 0 and output size 1.
// The inner data sizes not printed in the paper are chosen consistently
// with every number computed in Section 2 (see EXPERIMENTS.md).
func MotivatingExample() Instance {
	app1 := Application{
		Name:   "App1",
		In:     1,
		Stages: []Stage{{Work: 3, Out: 3}, {Work: 2, Out: 2}, {Work: 1, Out: 0}},
		Weight: 1,
	}
	app2 := Application{
		Name:   "App2",
		In:     0,
		Stages: []Stage{{Work: 2, Out: 2}, {Work: 6, Out: 1}, {Work: 4, Out: 2}, {Work: 2, Out: 1}},
		Weight: 1,
	}
	plat := NewCommHomogeneousPlatform([][]float64{{3, 6}, {6, 8}, {1, 6}}, 1, 2)
	return Instance{Apps: []Application{app1, app2}, Platform: plat, Energy: DefaultEnergy}
}
