// Package diffcheck is the differential verification harness: it validates
// the complexity-aware solver dispatcher (internal/core) against two
// independent oracles on randomly generated instances (internal/gen).
//
// For every scenario it checks five properties, mirroring how the KR-Benes
// line of work validates constructions by exhaustive comparison against the
// classical baseline:
//
//  1. Exactness. Whatever path the dispatcher took — a polynomial theorem
//     algorithm or the exhaustive fallback — a result flagged Optimal must
//     equal the brute-force optimum bit-for-bit (within the float tolerance
//     of internal/fmath), and the solver and brute force must agree on
//     feasibility.
//  2. Consistency. The returned mapping must validate under the request's
//     rule, its reported metrics must equal a fresh analytic evaluation,
//     the achieved objective must equal the reported value, every requested
//     bound must hold, and the discrete-event simulator must measure
//     exactly the analytic period and latency (sim.Verify).
//  3. Heuristic soundness. A heuristic result can never beat the exact
//     optimum: forcing the heuristic path on the same instance must produce
//     a value bounded below by the brute-force optimum, and its mapping
//     must pass the same consistency replay.
//  4. Plan equivalence. Compiling the scenario's instance once
//     (internal/plan) and replaying a battery of queries against the plan —
//     the scenario's own request plus a derived one with a different
//     objective, issued in an order that varies per scenario and each
//     repeated to exercise the memo — must reproduce fresh one-shot
//     core.Solve results bit-for-bit: same value, metrics, method,
//     optimality flag and mapping, or the same error.
//  5. Pruning equivalence. The branch-and-bound exact search
//     (exact.Minimize) with its cuts and symmetry breaking enabled must
//     agree bit-for-bit with the NoPrune reference walk of the entire
//     space on the scenario's own problem: identical optimal value (exact
//     float bits, not a tolerance) and identical feasibility verdict,
//     with error strings compared verbatim. Skipped only when either side
//     overruns the search-space limit.
//  6. Degraded-mode soundness. A result must carry Degraded exactly when
//     the exact path was abandoned for the heuristic (Method ==
//     MethodHeuristic, including forced budget-capped solves), and a
//     degraded result must publish a provable lower bound: LowerBound <=
//     its own value and LowerBound <= the brute-force optimum whenever
//     the oracle is available — graceful degradation, never silent.
//
// Check runs one scenario; Run fans a whole corpus out over a worker pool
// and aggregates a Summary. Both are deterministic per (seed, n).
package diffcheck

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sort"
	"sync"

	"repro/internal/algo/exact"
	"repro/internal/core"
	"repro/internal/fmath"
	"repro/internal/gen"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Options tunes the oracle.
type Options struct {
	// OracleLimit caps the brute-force enumeration per scenario; above it
	// the value cross-check is skipped (the consistency replay still
	// runs). 0 means 800,000 mappings.
	OracleLimit int64
	// Tol is the simulator verification tolerance; 0 means 1e-9.
	Tol float64
	// HeurEvery forces the heuristic path and checks its lower bound on
	// every k-th scenario; 0 means every 4th, negative disables.
	HeurEvery int
	// HeurIters and HeurRestarts tune the forced heuristic run (defaults
	// 300 and 1: enough to find a feasible point on oracle-sized
	// instances while keeping a large corpus fast).
	HeurIters, HeurRestarts int
	// Workers bounds Run's parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (o Options) oracleLimit() int64 {
	if o.OracleLimit <= 0 {
		return 800_000
	}
	return o.OracleLimit
}

func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-9
	}
	return o.Tol
}

func (o Options) heurEvery() int {
	if o.HeurEvery == 0 {
		return 4
	}
	return o.HeurEvery
}

func (o Options) heurIters() int {
	if o.HeurIters <= 0 {
		return 300
	}
	return o.HeurIters
}

func (o Options) heurRestarts() int {
	if o.HeurRestarts <= 0 {
		return 1
	}
	return o.HeurRestarts
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Outcome reports one scenario's differential check.
type Outcome struct {
	Scenario gen.Scenario
	// Feasible reports whether the problem has any feasible mapping.
	Feasible bool
	// Method, Optimal and Value mirror the solver result (feasible only).
	Method  core.Method
	Optimal bool
	Value   float64
	// OracleValue is the brute-force optimum (NaN when skipped or
	// infeasible); OracleSkipped reports a search space over the limit.
	OracleValue   float64
	OracleSkipped bool
	// HeurChecked reports that the forced-heuristic lower-bound check ran;
	// HeurValue is its achieved value (NaN when it found nothing) and
	// HeurMissed that it failed to find any feasible mapping even though
	// one exists (allowed: the heuristic is incomplete).
	HeurChecked bool
	HeurValue   float64
	HeurMissed  bool
	// PlanQueries counts the plan-equivalence queries replayed against the
	// scenario's compiled plan, each asserted bit-identical to a fresh
	// one-shot solve.
	PlanQueries int
	// PruneChecked reports that the pruned-vs-NoPrune equivalence property
	// ran (it is skipped when either side overruns the oracle limit).
	PruneChecked bool
	// DegradedChecked counts the degraded-mode soundness assertions that
	// ran on this scenario (the flag/method agreement on the normal solve
	// plus, when the forced heuristic produced a result, its Degraded tag
	// and lower-bound checks).
	DegradedChecked int
}

// Check runs the full differential oracle on one scenario. A non-nil error
// is a genuine disagreement (or an unexpected solver failure), never an
// artifact of an infeasible or oversized draw.
func Check(sc *gen.Scenario, opt Options) (Outcome, error) {
	out := Outcome{Scenario: *sc, OracleValue: math.NaN(), HeurValue: math.NaN()}

	res, serr := core.Solve(&sc.Inst, sc.Req)
	if serr != nil && !errors.Is(serr, core.ErrInfeasible) {
		return out, fmt.Errorf("%s (seed %d, index %d): solver failed: %w", sc.Name, sc.Seed, sc.Index, serr)
	}

	// Plan equivalence runs on every scenario, feasible or not: an
	// infeasibility verdict must also reproduce identically through the
	// compiled plan.
	var perr error
	out.PlanQueries, perr = planEquivalence(sc)
	if perr != nil {
		return out, fmt.Errorf("%s (seed %d, index %d): plan equivalence: %w", sc.Name, sc.Seed, sc.Index, perr)
	}

	// Pruning equivalence likewise runs regardless of feasibility: an
	// infeasibility verdict must be reproduced by the pruned search too.
	var prerr error
	out.PruneChecked, prerr = pruneEquivalence(sc, opt.oracleLimit())
	if prerr != nil {
		return out, fmt.Errorf("%s (seed %d, index %d): pruning equivalence: %w", sc.Name, sc.Seed, sc.Index, prerr)
	}

	oracle, oerr := bruteForce(&sc.Inst, sc.Req, opt.oracleLimit())
	switch {
	case errors.Is(oerr, exact.ErrSearchSpace):
		out.OracleSkipped = true
	case errors.Is(oerr, exact.ErrInfeasible):
		if serr == nil {
			return out, fmt.Errorf("%s (seed %d, index %d): solver returned %q with value %g on an instance brute force proves infeasible",
				sc.Name, sc.Seed, sc.Index, res.Method, res.Value)
		}
		return out, nil // both sides agree: infeasible
	case oerr != nil:
		return out, fmt.Errorf("%s (seed %d, index %d): oracle failed: %w", sc.Name, sc.Seed, sc.Index, oerr)
	}

	if serr != nil {
		if out.OracleSkipped {
			return out, nil // cannot adjudicate; solver said infeasible
		}
		return out, fmt.Errorf("%s (seed %d, index %d): solver claims infeasible but brute force found optimum %g",
			sc.Name, sc.Seed, sc.Index, oracle)
	}

	out.Feasible = true
	out.Method, out.Optimal, out.Value = res.Method, res.Optimal, res.Value
	// Degraded-mode soundness (property 6) on the dispatcher's own result:
	// the flag must mean exactly "the exact path was abandoned".
	if err := checkDegraded(&res, oracle, !out.OracleSkipped); err != nil {
		return out, fmt.Errorf("%s (seed %d, index %d): %w", sc.Name, sc.Seed, sc.Index, err)
	}
	out.DegradedChecked++
	if !out.OracleSkipped {
		out.OracleValue = oracle
		if res.Optimal && !fmath.EQ(res.Value, oracle) {
			return out, fmt.Errorf("%s (seed %d, index %d): %q value %g differs from brute-force optimum %g",
				sc.Name, sc.Seed, sc.Index, res.Method, res.Value, oracle)
		}
		if !res.Optimal && !fmath.GE(res.Value, oracle) {
			return out, fmt.Errorf("%s (seed %d, index %d): heuristic value %g beats the proven optimum %g",
				sc.Name, sc.Seed, sc.Index, res.Value, oracle)
		}
	}
	if err := replay(sc, &res, opt); err != nil {
		return out, fmt.Errorf("%s (seed %d, index %d): %w", sc.Name, sc.Seed, sc.Index, err)
	}

	// Heuristic soundness: force the heuristic path on the same problem
	// and bound it below by the exact optimum.
	if k := opt.heurEvery(); k > 0 && sc.Index%k == 0 && !out.OracleSkipped {
		out.HeurChecked = true
		hreq := sc.Req
		hreq.ExactLimit = 1 // any real search space exceeds 1: forces the heuristic
		hreq.HeurIters, hreq.HeurRestarts = opt.heurIters(), opt.heurRestarts()
		hres, herr := core.Solve(&sc.Inst, hreq)
		switch {
		case errors.Is(herr, core.ErrInfeasible):
			out.HeurMissed = true // incomplete search is allowed to miss
		case herr != nil:
			return out, fmt.Errorf("%s (seed %d, index %d): forced heuristic failed: %w", sc.Name, sc.Seed, sc.Index, herr)
		default:
			out.HeurValue = hres.Value
			if !fmath.GE(hres.Value, oracle) {
				return out, fmt.Errorf("%s (seed %d, index %d): forced heuristic value %g beats the proven optimum %g",
					sc.Name, sc.Seed, sc.Index, hres.Value, oracle)
			}
			if err := replay(sc, &hres, opt); err != nil {
				return out, fmt.Errorf("%s (seed %d, index %d): forced heuristic %w", sc.Name, sc.Seed, sc.Index, err)
			}
			// Property 6 on the budget-capped solve: ExactLimit 1 abandons
			// the exhaustive path wherever the cell needed it, and the
			// result must be tagged Degraded exactly then (polynomial
			// theorem cells ignore the cap — they abandoned nothing).
			if hres.Method == core.MethodHeuristic && !hres.Degraded {
				return out, fmt.Errorf("%s (seed %d, index %d): budget-capped heuristic result is not tagged Degraded",
					sc.Name, sc.Seed, sc.Index)
			}
			if err := checkDegraded(&hres, oracle, true); err != nil {
				return out, fmt.Errorf("%s (seed %d, index %d): forced heuristic %w", sc.Name, sc.Seed, sc.Index, err)
			}
			out.DegradedChecked++
		}
	}
	return out, nil
}

// checkDegraded is property 6: Degraded iff the heuristic method, and a
// degraded result's LowerBound must be a genuine lower bound — no larger
// than the achieved value, and (when the oracle ran) no larger than the
// brute-force optimum it claims to bound.
func checkDegraded(res *core.Result, oracle float64, haveOracle bool) error {
	if res.Degraded != (res.Method == core.MethodHeuristic) {
		return fmt.Errorf("degraded flag %v disagrees with method %q", res.Degraded, res.Method)
	}
	if !res.Degraded {
		return nil
	}
	if !fmath.LE(res.LowerBound, res.Value) {
		return fmt.Errorf("degraded lower bound %g exceeds the achieved value %g", res.LowerBound, res.Value)
	}
	if haveOracle && !fmath.LE(res.LowerBound, oracle) {
		return fmt.Errorf("degraded lower bound %g exceeds the true optimum %g: the bound is not provable", res.LowerBound, oracle)
	}
	return nil
}

// replay is the consistency oracle: the returned mapping must be legal, its
// reported metrics must match a fresh analytic evaluation bit-for-bit, the
// reported value must be the requested objective of those metrics, every
// bound in the request must hold, and the discrete-event simulator must
// measure exactly the analytic period and latency.
func replay(sc *gen.Scenario, res *core.Result, opt Options) error {
	inst, req := &sc.Inst, sc.Req
	if err := res.Mapping.Validate(inst, req.Rule); err != nil {
		return fmt.Errorf("returned mapping invalid: %w", err)
	}
	mt := mapping.Evaluate(inst, &res.Mapping, req.Model)
	//lint:allow floatcmp the oracle asserts bit-for-bit agreement; tolerance would mask drift
	if mt.Period != res.Metrics.Period || mt.Latency != res.Metrics.Latency || mt.Energy != res.Metrics.Energy {
		return fmt.Errorf("reported metrics (T %g, L %g, E %g) differ from re-evaluation (T %g, L %g, E %g)",
			res.Metrics.Period, res.Metrics.Latency, res.Metrics.Energy, mt.Period, mt.Latency, mt.Energy)
	}
	want := mt.Period
	switch req.Objective {
	case core.Latency:
		want = mt.Latency
	case core.Energy:
		want = mt.Energy
	}
	if !fmath.EQ(res.Value, want) {
		return fmt.Errorf("reported value %g is not the mapping's %v %g", res.Value, req.Objective, want)
	}
	for a := range inst.Apps {
		if req.PeriodBounds != nil && !fmath.LE(mt.AppPeriods[a], req.PeriodBounds[a]) {
			return fmt.Errorf("app %d period %g violates bound %g", a, mt.AppPeriods[a], req.PeriodBounds[a])
		}
		if req.LatencyBounds != nil && !fmath.LE(mt.AppLatencies[a], req.LatencyBounds[a]) {
			return fmt.Errorf("app %d latency %g violates bound %g", a, mt.AppLatencies[a], req.LatencyBounds[a])
		}
	}
	if req.EnergyBudget > 0 && !fmath.LE(mt.Energy, req.EnergyBudget) {
		return fmt.Errorf("energy %g violates budget %g", mt.Energy, req.EnergyBudget)
	}
	if err := sim.Verify(inst, &res.Mapping, req.Model, opt.tol()); err != nil {
		return fmt.Errorf("simulator disagrees with the analytic model: %w", err)
	}
	return nil
}

// planEquivalence is the compiled-plan oracle: Compile the scenario's
// instance once and replay a small query battery against the plan — the
// scenario's own request plus a derived query with a different objective,
// first in an order that alternates per scenario index, then each a second
// time so the repeat goes through the plan's memo. Every answer must be
// bit-for-bit identical to a fresh one-shot core.Solve of the materialized
// request: reflect.DeepEqual on the Result (exact float bits, method,
// optimality flag, mapping and metrics slices including their nil-ness) and
// string equality on errors. Returns the number of queries replayed.
func planEquivalence(sc *gen.Scenario) (int, error) {
	pl, err := plan.Compile(&sc.Inst, sc.Req.Rule, sc.Req.Model)
	if err != nil {
		return 0, fmt.Errorf("compile failed: %w", err)
	}
	base := plan.QueryOf(sc.Req)
	derived := base
	if base.Objective == core.Period {
		derived.Objective = core.Latency
	} else {
		derived.Objective = core.Period
	}
	distinct := []plan.Query{base, derived}
	if sc.Index%2 == 1 {
		distinct[0], distinct[1] = distinct[1], distinct[0]
	}
	// One fresh one-shot solve per distinct query (core.Solve is
	// deterministic per request, so the repeat expects the same answer).
	type expect struct {
		res core.Result
		err error
	}
	want := make([]expect, len(distinct))
	for i, q := range distinct {
		want[i].res, want[i].err = core.Solve(&sc.Inst, pl.Request(q))
	}
	queries := 0
	for pass := 0; pass < 2; pass++ { // second pass repeats every query: memo path
		for i, q := range distinct {
			got, gerr := pl.Solve(q)
			queries++
			switch {
			case (gerr == nil) != (want[i].err == nil),
				gerr != nil && gerr.Error() != want[i].err.Error():
				//lint:allow errclass diagnostic compares two error texts and either may be nil, which %w cannot format
				return queries, fmt.Errorf("pass %d query %v: plan error %v, one-shot error %v",
					pass, q.Objective, gerr, want[i].err)
			case !reflect.DeepEqual(got, want[i].res):
				return queries, fmt.Errorf("pass %d query %v: plan result %+v differs from one-shot %+v",
					pass, q.Objective, got, want[i].res)
			}
		}
	}
	return queries, nil
}

// pruneEquivalence is the branch-and-bound oracle: solve the scenario's own
// problem once with the full bag of tricks (bound pruning, symmetry
// breaking, incremental evaluation) and once with Options.NoPrune walking
// the entire space, and demand bit-for-bit agreement — the same optimal
// value down to the last float bit, or the same error string. Witness
// mappings may legitimately differ under symmetry breaking (two
// interchangeable processors yield distinct mappings with identical
// metrics), so only values and verdicts are compared. Returns false
// (skipped) when either side overruns the limit: the NoPrune walk visits
// the whole space, so it hits the cap long before the pruned search does.
func pruneEquivalence(sc *gen.Scenario, limit int64) (bool, error) {
	req := sc.Req
	modes := exact.FastestOnly
	if req.Objective == core.Energy || req.EnergyBudget > 0 {
		modes = exact.AllModes
	}
	obj := exact.ObjPeriod
	switch req.Objective {
	case core.Latency:
		obj = exact.ObjLatency
	case core.Energy:
		obj = exact.ObjEnergy
	}
	spec := exact.Spec{
		Objective:     obj,
		Model:         req.Model,
		PeriodBounds:  req.PeriodBounds,
		LatencyBounds: req.LatencyBounds,
		EnergyBudget:  req.EnergyBudget,
	}
	opt := exact.Options{Rule: req.Rule, Modes: modes, Limit: limit}
	pruned, perr := exact.Minimize(&sc.Inst, opt, spec)
	opt.NoPrune = true
	ref, rerr := exact.Minimize(&sc.Inst, opt, spec)
	if errors.Is(perr, exact.ErrSearchSpace) || errors.Is(rerr, exact.ErrSearchSpace) {
		return false, nil
	}
	switch {
	case (perr == nil) != (rerr == nil),
		perr != nil && perr.Error() != rerr.Error():
		//lint:allow errclass diagnostic compares two error texts and either may be nil, which %w cannot format
		return true, fmt.Errorf("pruned error %v, NoPrune error %v", perr, rerr)
	case perr == nil:
		//lint:allow floatcmp the oracle asserts bit-for-bit agreement; tolerance would mask drift
		if pruned.Value != ref.Value {
			return true, fmt.Errorf("pruned value %v differs from NoPrune value %v (stats %+v)",
				pruned.Value, ref.Value, pruned.Stats)
		}
	}
	return true, nil
}

// bruteForce enumerates every valid mapping under the request's rule and
// returns the optimum of the requested objective among those satisfying the
// request's bounds. It is the ground truth: a single exhaustive pass with
// no algorithmic insight beyond the mode-restriction soundness argument
// (FastestOnly is lossless without an energy criterion, Section 2). It
// returns exact.ErrInfeasible when no mapping satisfies the bounds and
// exact.ErrSearchSpace past the limit.
func bruteForce(inst *pipeline.Instance, req core.Request, limit int64) (float64, error) {
	modes := exact.FastestOnly
	if req.Objective == core.Energy || req.EnergyBudget > 0 {
		modes = exact.AllModes
	}
	best := math.Inf(1)
	found := false
	err := exact.Enumerate(inst, exact.Options{Rule: req.Rule, Modes: modes, Limit: limit}, func(m *mapping.Mapping) {
		for a := range m.Apps {
			if req.PeriodBounds != nil && !fmath.LE(mapping.AppPeriod(inst, m, a, req.Model), req.PeriodBounds[a]) {
				return
			}
			if req.LatencyBounds != nil && !fmath.LE(mapping.AppLatency(inst, m, a), req.LatencyBounds[a]) {
				return
			}
		}
		if req.EnergyBudget > 0 && !fmath.LE(mapping.Energy(inst, m), req.EnergyBudget) {
			return
		}
		var v float64
		switch req.Objective {
		case core.Period:
			v = mapping.Period(inst, m, req.Model)
		case core.Latency:
			v = mapping.Latency(inst, m)
		default:
			v = mapping.Energy(inst, m)
		}
		if !found || v < best {
			best, found = v, true
		}
	})
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, exact.ErrInfeasible
	}
	return best, nil
}

// Summary aggregates a corpus run.
type Summary struct {
	// Checked is the number of scenarios examined. Feasible counts those
	// whose returned mapping passed the consistency replay; Infeasible
	// counts those where solver AND brute force agree no mapping exists
	// (a solver infeasibility verdict whose oracle was skipped counts in
	// neither — only in OracleSkips).
	Checked, Feasible, Infeasible int
	// OracleSkips counts scenarios whose brute-force space exceeded the
	// limit (their consistency replay still ran).
	OracleSkips int
	// Combos counts scenarios per (class, rule, model, criterion) label.
	Combos map[string]int
	// Methods counts solver dispatch methods across feasible scenarios.
	Methods map[core.Method]int
	// HeurChecked and HeurMisses report the forced-heuristic runs and how
	// many found no feasible mapping despite one existing.
	HeurChecked, HeurMisses int
	// PlanChecked counts scenarios whose plan-equivalence battery ran to
	// completion; PlanQueries totals the individual plan queries asserted
	// bit-identical to fresh one-shot solves across them.
	PlanChecked, PlanQueries int
	// PruneChecked counts scenarios where the branch-and-bound search was
	// asserted bit-identical (value, feasibility, error strings) to the
	// NoPrune reference walk.
	PruneChecked int
	// DegradedChecked totals the degraded-mode soundness assertions
	// (property 6): flag/method agreement on every feasible solve plus
	// the Degraded tag and lower-bound checks on forced budget-capped
	// solves.
	DegradedChecked int
}

// ComboNames returns the observed combination labels, sorted.
func (s *Summary) ComboNames() []string {
	names := make([]string, 0, len(s.Combos))
	//lint:allow determinism keys are sorted immediately after collection
	for k := range s.Combos {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// maxReported caps how many disagreements Run reports, so a systematic bug
// does not drown the report.
const maxReported = 8

// Run samples n scenarios from the space and differentially checks each on
// a bounded worker pool. It returns the aggregate summary plus a joined
// error of the reported disagreements. Deterministic per (seed, n).
func Run(space gen.Space, seed int64, n int, opt Options) (Summary, error) {
	if err := space.Validate(); err != nil {
		return Summary{}, err
	}
	outcomes := make([]Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.workers())
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			sc := space.Sample(seed, i)
			outcomes[i], errs[i] = Check(&sc, opt)
		}(i)
	}
	wg.Wait()

	sum := Summary{Combos: make(map[string]int), Methods: make(map[core.Method]int)}
	var reported []error
	for i := range outcomes {
		out := &outcomes[i]
		sum.Checked++
		sum.Combos[out.Scenario.Combo()]++
		if errs[i] != nil {
			if len(reported) < maxReported {
				reported = append(reported, errs[i])
			}
			continue
		}
		if out.OracleSkipped {
			sum.OracleSkips++
		}
		switch {
		case out.Feasible:
			// Even with a skipped oracle, the consistency replay
			// adjudicated the returned mapping.
			sum.Feasible++
			sum.Methods[out.Method]++
		case !out.OracleSkipped:
			sum.Infeasible++
			// A solver infeasibility verdict with a skipped oracle is
			// unadjudicated: it counts only in OracleSkips, never as an
			// agreement.
		}
		if out.HeurChecked {
			sum.HeurChecked++
			if out.HeurMissed {
				sum.HeurMisses++
			}
		}
		if out.PlanQueries > 0 {
			sum.PlanChecked++
			sum.PlanQueries += out.PlanQueries
		}
		if out.PruneChecked {
			sum.PruneChecked++
		}
		sum.DegradedChecked += out.DegradedChecked
	}
	return sum, errors.Join(reported...)
}
