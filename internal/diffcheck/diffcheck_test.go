package diffcheck

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// TestDifferential is the acceptance gate of the differential harness: it
// checks a corpus of seeded instances spanning every (class, comm model,
// rule, criterion) combination. Exact solver paths must match brute force,
// every returned mapping must replay through the simulator at exactly its
// analytic metrics, and heuristic results must be bounded below by the
// exact optimum. With -short the corpus shrinks to 6 combination windows.
func TestDifferential(t *testing.T) {
	space := gen.DefaultSpace()
	n := 30 * space.CombinationCount() // 1080 instances
	if testing.Short() {
		n = 6 * space.CombinationCount()
	}
	sum, err := Run(space, 1, n, Options{})
	if err != nil {
		t.Fatalf("differential corpus failed:\n%v", err)
	}
	if sum.Checked != n {
		t.Fatalf("checked %d of %d scenarios", sum.Checked, n)
	}
	if want := space.CombinationCount(); len(sum.Combos) != want {
		t.Errorf("covered %d combinations, want %d: %v", len(sum.Combos), want, sum.ComboNames())
	}
	if sum.Feasible == 0 || sum.Infeasible == 0 {
		t.Errorf("corpus must exercise both feasible and infeasible draws (feasible %d, infeasible %d)",
			sum.Feasible, sum.Infeasible)
	}
	if sum.OracleSkips > n/20 {
		t.Errorf("%d of %d oracle runs skipped (space cap too tight for the generator sizes)", sum.OracleSkips, n)
	}
	if sum.HeurChecked == 0 {
		t.Error("no forced-heuristic lower-bound checks ran")
	}
	// Plan equivalence must have run on every scenario: each compiled the
	// instance once and replayed 4 queries (2 distinct, each twice) that
	// were asserted bit-identical to fresh one-shot solves.
	if sum.PlanChecked != n {
		t.Errorf("plan-equivalence battery ran on %d of %d scenarios", sum.PlanChecked, n)
	}
	if want := 4 * n; sum.PlanQueries != want {
		t.Errorf("plan-equivalence replayed %d queries, want %d", sum.PlanQueries, want)
	}
	// Pruning equivalence skips only where the NoPrune reference walk
	// overruns the oracle limit; it must still run on the vast majority.
	if sum.PruneChecked < n-n/10 {
		t.Errorf("pruned-vs-NoPrune equivalence ran on %d of %d scenarios", sum.PruneChecked, n)
	}
	// The corpus must actually route through the paper's polynomial
	// algorithms, not only the exhaustive fallback.
	poly := 0
	for _, m := range []core.Method{
		core.MethodGreedyBinarySearch, core.MethodDynProgAlloc, core.MethodEnergyDP,
		core.MethodMatching, core.MethodTrivial, core.MethodUniModalBudget,
	} {
		poly += sum.Methods[m]
	}
	if poly == 0 {
		t.Errorf("no polynomial dispatch path exercised: %v", sum.Methods)
	}
	if sum.Methods[core.MethodExact] == 0 {
		t.Errorf("exhaustive fallback never exercised: %v", sum.Methods)
	}
	t.Logf("checked %d scenarios: %d feasible, %d infeasible, %d oracle skips, %d/%d heuristic checks missed, %d plan queries, methods %v",
		sum.Checked, sum.Feasible, sum.Infeasible, sum.OracleSkips, sum.HeurMisses, sum.HeurChecked, sum.PlanQueries, sum.Methods)
}

// TestReplayFlagsPlantedBugs asserts the consistency oracle actually
// detects corrupted results: a wrong reported value, wrong metrics, and an
// out-of-bounds mapping must each fail the replay.
func TestReplayFlagsPlantedBugs(t *testing.T) {
	space := gen.DefaultSpace()
	var sc gen.Scenario
	var res core.Result
	found := false
	for i := 0; i < 200 && !found; i++ {
		sc = space.Sample(5, i)
		r, err := core.Solve(&sc.Inst, sc.Req)
		if err == nil {
			res, found = r, true
		}
	}
	if !found {
		t.Fatal("no feasible scenario in the first 200 draws")
	}
	if err := replay(&sc, &res, Options{}); err != nil {
		t.Fatalf("genuine result must replay cleanly: %v", err)
	}

	wrongValue := res
	wrongValue.Value = res.Value*2 + 1
	if err := replay(&sc, &wrongValue, Options{}); err == nil {
		t.Error("replay accepted a corrupted objective value")
	}

	wrongMetrics := res
	wrongMetrics.Metrics.Energy = res.Metrics.Energy + 1
	if err := replay(&sc, &wrongMetrics, Options{}); err == nil {
		t.Error("replay accepted corrupted metrics")
	}

	wrongMapping := res
	wrongMapping.Mapping = res.Mapping.Clone()
	if len(wrongMapping.Mapping.Apps) > 0 && len(wrongMapping.Mapping.Apps[0].Intervals) > 0 {
		// Point two intervals at the same processor-mode pair twice by
		// duplicating the first interval's processor onto itself with an
		// impossible stage range.
		wrongMapping.Mapping.Apps[0].Intervals[0].To = -1
		if err := replay(&sc, &wrongMapping, Options{}); err == nil {
			t.Error("replay accepted an invalid mapping")
		}
	}
}

// TestBruteForceMotivatingExample pins the brute-force oracle itself to the
// paper's Section 2 ground truth.
func TestBruteForceMotivatingExample(t *testing.T) {
	inst := pipeline.MotivatingExample()
	cases := []struct {
		name string
		req  core.Request
		want float64
	}{
		{"period", core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Period}, 1},
		{"latency", core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Latency}, 2.75},
		{"energy|T<=2", core.Request{Rule: mapping.Interval, Model: pipeline.Overlap, Objective: core.Energy,
			PeriodBounds: []float64{2, 2}}, 46},
	}
	for _, c := range cases {
		got, err := bruteForce(&inst, c.req, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: brute force %g, paper %g", c.name, got, c.want)
		}
	}
}

// TestRunDeterministic asserts two identical runs aggregate identically.
func TestRunDeterministic(t *testing.T) {
	space := gen.DefaultSpace()
	a, errA := Run(space, 9, 40, Options{})
	b, errB := Run(space, 9, 40, Options{})
	if (errA == nil) != (errB == nil) {
		t.Fatalf("error mismatch: %v vs %v", errA, errB)
	}
	if a.Checked != b.Checked || a.Feasible != b.Feasible || a.Infeasible != b.Infeasible ||
		a.OracleSkips != b.OracleSkips || a.HeurChecked != b.HeurChecked || a.HeurMisses != b.HeurMisses {
		t.Errorf("summaries differ:\n%+v\n%+v", a, b)
	}
}
