package workload

import (
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pipeline"
)

func TestInstanceGeneratorClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, cls := range []pipeline.Class{pipeline.FullyHomogeneous, pipeline.CommHomogeneous, pipeline.FullyHeterogeneous} {
		cfg := DefaultConfig()
		cfg.Class = cls
		for trial := 0; trial < 20; trial++ {
			inst := MustInstance(rng, cfg)
			if err := inst.Validate(); err != nil {
				t.Fatalf("%v trial %d: %v", cls, trial, err)
			}
			got := inst.Platform.Classify()
			// A random "heterogeneous" draw can come out homogeneous by
			// chance; the class may only be *less* heterogeneous than
			// requested, never more.
			if got > cls {
				t.Errorf("%v trial %d: generated class %v exceeds requested", cls, trial, got)
			}
		}
	}
}

func TestInstanceGeneratorRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	cfg := Config{
		Apps: 3, MinStages: 2, MaxStages: 5, Procs: 7, Modes: 3,
		Class: pipeline.CommHomogeneous, MaxWork: 4, MaxData: 2, MaxSpeed: 5,
	}
	for trial := 0; trial < 30; trial++ {
		inst := MustInstance(rng, cfg)
		if len(inst.Apps) != 3 || inst.Platform.NumProcessors() != 7 {
			t.Fatal("shape mismatch")
		}
		for _, app := range inst.Apps {
			if app.NumStages() < 2 || app.NumStages() > 5 {
				t.Errorf("stage count %d out of bounds", app.NumStages())
			}
			for _, st := range app.Stages {
				if st.Work < 1 || st.Work > 4 {
					t.Errorf("work %g out of bounds", st.Work)
				}
				if st.Out < 0 || st.Out > 2 {
					t.Errorf("data %g out of bounds", st.Out)
				}
			}
		}
		for _, pr := range inst.Platform.Processors {
			if pr.NumModes() != 3 {
				t.Errorf("mode count %d", pr.NumModes())
			}
			for i := 1; i < 3; i++ {
				if pr.Speeds[i] <= pr.Speeds[i-1] {
					t.Errorf("speeds not strictly ascending: %v", pr.Speeds)
				}
			}
		}
	}
}

func TestInstanceGeneratorRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	bad := []Config{
		{Apps: 0, MinStages: 1, MaxStages: 1, Procs: 1, Modes: 1, MaxWork: 1, MaxSpeed: 1},
		{Apps: 1, MinStages: 0, MaxStages: 1, Procs: 1, Modes: 1, MaxWork: 1, MaxSpeed: 1},
		{Apps: 1, MinStages: 3, MaxStages: 2, Procs: 1, Modes: 1, MaxWork: 1, MaxSpeed: 1},
		{Apps: 1, MinStages: 1, MaxStages: 1, Procs: 1, Modes: 1, MaxWork: 0, MaxSpeed: 1},
	}
	for i, cfg := range bad {
		if _, err := Instance(rng, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRandomMappingValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 200; trial++ {
		cfg := DefaultConfig()
		cfg.Apps = 1 + rng.Intn(3)
		cfg.Procs = cfg.Apps + rng.Intn(6)
		inst := MustInstance(rng, cfg)
		m, err := RandomMapping(rng, &inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := m.Validate(&inst, mapping.Interval); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRandomMappingTooFewProcs(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	inst := pipeline.Instance{
		Apps: []pipeline.Application{
			pipeline.NewUniformApplication("a", 2, 1),
			pipeline.NewUniformApplication("b", 2, 1),
		},
		Platform: pipeline.NewHomogeneousPlatform(1, []float64{1}, 1, 2),
		Energy:   pipeline.DefaultEnergy,
	}
	if _, err := RandomMapping(rng, &inst); err == nil {
		t.Error("undersized platform accepted")
	}
}

func TestPresets(t *testing.T) {
	for _, app := range []pipeline.Application{VideoEncoding("v"), AudioFilterBank("a"), ImageAnalysis("i")} {
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
	}
	inst := StreamingCenter(8)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Platform.Classify() != pipeline.CommHomogeneous {
		t.Errorf("streaming center class = %v", inst.Platform.Classify())
	}
	if len(inst.Apps) != 3 {
		t.Errorf("streaming center apps = %d", len(inst.Apps))
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := MustInstance(rand.New(rand.NewSource(7)), DefaultConfig())
	b := MustInstance(rand.New(rand.NewSource(7)), DefaultConfig())
	if a.Apps[0].Stages[0].Work != b.Apps[0].Stages[0].Work {
		t.Error("generator not deterministic for equal seeds")
	}
}
