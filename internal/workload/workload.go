// Package workload generates random and realistic problem instances and
// random valid mappings. All generators take an explicit *rand.Rand so
// experiments are reproducible from a seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// Config parameterizes random instance generation.
type Config struct {
	// Apps is the number of concurrent applications A.
	Apps int
	// MinStages and MaxStages bound each application's chain length.
	MinStages, MaxStages int
	// Procs is the number of processors p.
	Procs int
	// Modes is the number of DVFS modes per processor (1 for uni-modal).
	Modes int
	// Class selects the platform heterogeneity level.
	Class pipeline.Class
	// MaxWork bounds stage computation requirements (integers in
	// [1, MaxWork]).
	MaxWork int
	// MaxData bounds data sizes (integers in [0, MaxData]). Zero disables
	// communication entirely.
	MaxData int
	// MaxSpeed bounds processor speeds (integers in [1, MaxSpeed]).
	MaxSpeed int
	// MaxBandwidth bounds link bandwidths for fully heterogeneous
	// platforms (integers in [1, MaxBandwidth]); homogeneous classes use
	// bandwidth 1... unless Bandwidth is set.
	MaxBandwidth int
	// Bandwidth, if non-zero, is the uniform bandwidth for homogeneous
	// link classes.
	Bandwidth float64
	// Energy is the energy model; zero value means Static 0, Alpha 2.
	Energy pipeline.EnergyModel
}

// DefaultConfig returns a mid-size mixed workload configuration.
func DefaultConfig() Config {
	return Config{
		Apps: 2, MinStages: 2, MaxStages: 5,
		Procs: 8, Modes: 3, Class: pipeline.CommHomogeneous,
		MaxWork: 10, MaxData: 5, MaxSpeed: 8, MaxBandwidth: 4,
		Bandwidth: 1,
	}
}

func (c Config) validate() error {
	if c.Apps < 1 || c.Procs < 1 || c.Modes < 1 {
		return fmt.Errorf("workload: Apps, Procs and Modes must be positive (%+v)", c)
	}
	if c.MinStages < 1 || c.MaxStages < c.MinStages {
		return fmt.Errorf("workload: invalid stage bounds [%d,%d]", c.MinStages, c.MaxStages)
	}
	if c.MaxWork < 1 || c.MaxSpeed < 1 {
		return fmt.Errorf("workload: MaxWork and MaxSpeed must be positive")
	}
	return nil
}

// Instance generates a random instance from the configuration.
func Instance(rng *rand.Rand, c Config) (pipeline.Instance, error) {
	if err := c.validate(); err != nil {
		return pipeline.Instance{}, err
	}
	inst := pipeline.Instance{Energy: c.Energy}
	for a := 0; a < c.Apps; a++ {
		n := c.MinStages
		if c.MaxStages > c.MinStages {
			n += rng.Intn(c.MaxStages - c.MinStages + 1)
		}
		inst.Apps = append(inst.Apps, Application(rng, fmt.Sprintf("app%d", a+1), n, c.MaxWork, c.MaxData))
	}
	inst.Platform = Platform(rng, c)
	if err := inst.Validate(); err != nil {
		return pipeline.Instance{}, fmt.Errorf("workload: generated invalid instance: %w", err)
	}
	return inst, nil
}

// MustInstance is Instance, panicking on error; convenient in tests and
// benchmarks where the config is a literal.
func MustInstance(rng *rand.Rand, c Config) pipeline.Instance {
	inst, err := Instance(rng, c)
	if err != nil {
		panic(err)
	}
	return inst
}

// Application generates one random chain of n stages with integer works in
// [1, maxWork] and integer data sizes in [0, maxData].
func Application(rng *rand.Rand, name string, n, maxWork, maxData int) pipeline.Application {
	app := pipeline.Application{Name: name, Weight: 1}
	if maxData > 0 {
		app.In = float64(rng.Intn(maxData + 1))
	}
	for i := 0; i < n; i++ {
		st := pipeline.Stage{Work: float64(1 + rng.Intn(maxWork))}
		if maxData > 0 {
			st.Out = float64(rng.Intn(maxData + 1))
		}
		app.Stages = append(app.Stages, st)
	}
	return app
}

// Platform generates a random platform of the configured class.
func Platform(rng *rand.Rand, c Config) pipeline.Platform {
	b := c.Bandwidth
	if b == 0 {
		b = 1
	}
	switch c.Class {
	case pipeline.FullyHomogeneous:
		return pipeline.NewHomogeneousPlatform(c.Procs, speedSet(rng, c.Modes, c.MaxSpeed), b, c.Apps)
	case pipeline.CommHomogeneous:
		sets := make([][]float64, c.Procs)
		for i := range sets {
			sets[i] = speedSet(rng, c.Modes, c.MaxSpeed)
		}
		return pipeline.NewCommHomogeneousPlatform(sets, b, c.Apps)
	default:
		sets := make([][]float64, c.Procs)
		for i := range sets {
			sets[i] = speedSet(rng, c.Modes, c.MaxSpeed)
		}
		maxBW := c.MaxBandwidth
		if maxBW < 1 {
			maxBW = 4
		}
		bw := make([][]float64, c.Procs)
		for u := range bw {
			bw[u] = make([]float64, c.Procs)
		}
		for u := 0; u < c.Procs; u++ {
			for v := u + 1; v < c.Procs; v++ {
				x := float64(1 + rng.Intn(maxBW))
				bw[u][v], bw[v][u] = x, x
			}
		}
		in := make([][]float64, c.Apps)
		out := make([][]float64, c.Apps)
		for a := 0; a < c.Apps; a++ {
			in[a] = make([]float64, c.Procs)
			out[a] = make([]float64, c.Procs)
			for u := 0; u < c.Procs; u++ {
				in[a][u] = float64(1 + rng.Intn(maxBW))
				out[a][u] = float64(1 + rng.Intn(maxBW))
			}
		}
		return pipeline.NewHeterogeneousPlatform(sets, bw, in, out)
	}
}

// speedSet draws `modes` distinct speeds from [1, maxSpeed] (with graceful
// degradation when maxSpeed < modes) and returns them ascending.
func speedSet(rng *rand.Rand, modes, maxSpeed int) []float64 {
	seen := map[int]bool{}
	var out []float64
	for len(out) < modes {
		s := 1 + rng.Intn(maxSpeed)
		if seen[s] && maxSpeed >= modes {
			continue
		}
		seen[s] = true
		out = append(out, float64(s))
	}
	// Insertion sort: mode sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RandomMapping generates a uniformly random valid interval mapping of inst:
// each application is split into a random number of intervals and assigned
// random distinct processors at random modes. It returns an error when the
// platform has fewer processors than applications.
func RandomMapping(rng *rand.Rand, inst *pipeline.Instance) (mapping.Mapping, error) {
	p := inst.Platform.NumProcessors()
	if p < len(inst.Apps) {
		return mapping.Mapping{}, fmt.Errorf("workload: %d processors cannot host %d applications", p, len(inst.Apps))
	}
	perm := rng.Perm(p)
	next := 0
	m := mapping.Mapping{Apps: make([]mapping.AppMapping, len(inst.Apps))}
	// First decide interval counts so the total fits within p.
	counts := make([]int, len(inst.Apps))
	budget := p - len(inst.Apps) // reserve one processor per application
	for a := range inst.Apps {
		n := inst.Apps[a].NumStages()
		maxIv := n
		if maxIv > budget+1 {
			maxIv = budget + 1
		}
		counts[a] = 1 + rng.Intn(maxIv)
		budget -= counts[a] - 1
	}
	for a := range inst.Apps {
		n := inst.Apps[a].NumStages()
		cuts := randomComposition(rng, n, counts[a])
		from := 0
		for _, size := range cuts {
			proc := perm[next]
			next++
			mode := rng.Intn(inst.Platform.Processors[proc].NumModes())
			m.Apps[a].Intervals = append(m.Apps[a].Intervals, mapping.PlacedInterval{
				From: from, To: from + size - 1, Proc: proc, Mode: mode,
			})
			from += size
		}
	}
	if err := m.Validate(inst, mapping.Interval); err != nil {
		return mapping.Mapping{}, fmt.Errorf("workload: generated invalid mapping: %w", err)
	}
	return m, nil
}

// randomComposition splits n into k positive parts uniformly at random.
func randomComposition(rng *rand.Rand, n, k int) []int {
	// Choose k-1 distinct cut points in [1, n-1].
	cutSet := map[int]bool{}
	for len(cutSet) < k-1 {
		cutSet[1+rng.Intn(n-1)] = true
	}
	cuts := make([]int, 0, k+1)
	cuts = append(cuts, 0)
	for c := 1; c < n; c++ {
		if cutSet[c] {
			cuts = append(cuts, c)
		}
	}
	cuts = append(cuts, n)
	parts := make([]int, 0, k)
	for i := 1; i < len(cuts); i++ {
		parts = append(parts, cuts[i]-cuts[i-1])
	}
	return parts
}
