package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/pipeline"
	"repro/internal/repl"
)

// RandomReplicated draws a random valid replicated mapping of inst: a
// random interval partition per application, with some of the leftover
// processors handed out as extra replicas of random intervals at random
// modes.
func RandomReplicated(rng *rand.Rand, inst *pipeline.Instance) (repl.Mapping, error) {
	base, err := RandomMapping(rng, inst)
	if err != nil {
		return repl.Mapping{}, err
	}
	rm := repl.Lift(&base)
	used := map[int]bool{}
	for _, u := range rm.UsedProcessors() {
		used[u] = true
	}
	var free []int
	for u := 0; u < inst.Platform.NumProcessors(); u++ {
		if !used[u] {
			free = append(free, u)
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for _, u := range free {
		if rng.Intn(2) == 0 {
			continue
		}
		a := rng.Intn(len(rm.Apps))
		j := rng.Intn(len(rm.Apps[a].Intervals))
		mode := rng.Intn(inst.Platform.Processors[u].NumModes())
		rm.Apps[a].Intervals[j].Replicas = append(rm.Apps[a].Intervals[j].Replicas, repl.Replica{Proc: u, Mode: mode})
	}
	if err := rm.Validate(inst); err != nil {
		return repl.Mapping{}, fmt.Errorf("workload: generated invalid replicated mapping: %w", err)
	}
	return rm, nil
}
