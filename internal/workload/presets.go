package workload

import "repro/internal/pipeline"

// The presets below model the streaming workloads the paper's introduction
// motivates (video/audio coding, DSP, image processing). Works and data
// sizes are in abstract operation and data units; their ratios follow the
// usual shape of these pipelines (a heavy transform surrounded by lighter
// glue stages).

// VideoEncoding returns an H.26x-like encoder chain: capture, preprocess,
// motion estimation (dominant), DCT+quantize, entropy coding.
func VideoEncoding(name string) pipeline.Application {
	return pipeline.Application{
		Name:   name,
		In:     8,
		Weight: 1,
		Stages: []pipeline.Stage{
			{Work: 2, Out: 8},  // capture / colour conversion
			{Work: 4, Out: 8},  // preprocessing, denoise
			{Work: 16, Out: 4}, // motion estimation
			{Work: 6, Out: 2},  // DCT + quantization
			{Work: 3, Out: 1},  // entropy coding
		},
	}
}

// AudioFilterBank returns a DSP chain: windowing, FFT, per-band filtering,
// inverse FFT, framing.
func AudioFilterBank(name string) pipeline.Application {
	return pipeline.Application{
		Name:   name,
		In:     2,
		Weight: 1,
		Stages: []pipeline.Stage{
			{Work: 1, Out: 2},
			{Work: 5, Out: 2}, // FFT
			{Work: 3, Out: 2}, // filter bank
			{Work: 5, Out: 2}, // inverse FFT
			{Work: 1, Out: 1},
		},
	}
}

// ImageAnalysis returns an image-processing chain: decode, segment, feature
// extraction (dominant), classify.
func ImageAnalysis(name string) pipeline.Application {
	return pipeline.Application{
		Name:   name,
		In:     6,
		Weight: 1,
		Stages: []pipeline.Stage{
			{Work: 3, Out: 6},
			{Work: 8, Out: 3},
			{Work: 12, Out: 1},
			{Work: 2, Out: 1},
		},
	}
}

// StreamingCenter returns a concurrent instance mixing the three preset
// applications on a communication homogeneous cluster of p processors with
// three DVFS modes each, the scenario a computer-center platform manager
// faces in Section 3.3.
func StreamingCenter(p int) pipeline.Instance {
	apps := []pipeline.Application{
		VideoEncoding("video"),
		AudioFilterBank("audio"),
		ImageAnalysis("image"),
	}
	sets := make([][]float64, p)
	for i := range sets {
		// Alternate big/little speed sets to model a mixed cluster.
		if i%2 == 0 {
			sets[i] = []float64{2, 4, 8}
		} else {
			sets[i] = []float64{1, 2, 4}
		}
	}
	return pipeline.Instance{
		Apps:     apps,
		Platform: pipeline.NewCommHomogeneousPlatform(sets, 4, len(apps)),
		Energy:   pipeline.EnergyModel{Static: 1, Alpha: 2},
	}
}
