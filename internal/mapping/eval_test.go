package mapping

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fmath"
	"repro/internal/pipeline"
)

// Fig. 1 processor indices.
const (
	p1 = 0
	p2 = 1
	p3 = 2
)

// periodOptimal is the Section 2 period-optimal mapping: App1 entirely on
// P3, App2's first half on P2 and second half on P1, all fastest modes.
func periodOptimal() Mapping {
	return Mapping{Apps: []AppMapping{
		{Intervals: []PlacedInterval{{From: 0, To: 2, Proc: p3, Mode: 1}}},
		{Intervals: []PlacedInterval{
			{From: 0, To: 1, Proc: p2, Mode: 1},
			{From: 2, To: 3, Proc: p1, Mode: 1},
		}},
	}}
}

// latencyOptimal maps App1 on P1 and App2 on P2, both whole, fastest modes.
func latencyOptimal() Mapping {
	return Mapping{Apps: []AppMapping{
		{Intervals: []PlacedInterval{{From: 0, To: 2, Proc: p1, Mode: 1}}},
		{Intervals: []PlacedInterval{{From: 0, To: 3, Proc: p2, Mode: 1}}},
	}}
}

// energyMinimal maps App1 on P1 and App2 on P3, slowest modes.
func energyMinimal() Mapping {
	return Mapping{Apps: []AppMapping{
		{Intervals: []PlacedInterval{{From: 0, To: 2, Proc: p1, Mode: 0}}},
		{Intervals: []PlacedInterval{{From: 0, To: 3, Proc: p3, Mode: 0}}},
	}}
}

// tradeOff is the Section 2 compromise: all processors in first mode, App1
// on P1, App2 stages 1-3 on P2 and stage 4 on P3.
func tradeOff() Mapping {
	return Mapping{Apps: []AppMapping{
		{Intervals: []PlacedInterval{{From: 0, To: 2, Proc: p1, Mode: 0}}},
		{Intervals: []PlacedInterval{
			{From: 0, To: 2, Proc: p2, Mode: 0},
			{From: 3, To: 3, Proc: p3, Mode: 0},
		}},
	}}
}

func TestMotivatingExamplePeriodOptimal(t *testing.T) {
	inst := pipeline.MotivatingExample()
	m := periodOptimal()
	if err := m.Validate(&inst, Interval); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	if got := Period(&inst, &m, pipeline.Overlap); !fmath.EQ(got, 1) {
		t.Errorf("Equation (1): period = %g, want 1", got)
	}
	if got := Energy(&inst, &m); !fmath.EQ(got, 136) {
		t.Errorf("period-optimal energy = %g, want 136 (6^2+8^2+6^2)", got)
	}
}

func TestMotivatingExampleLatencyOptimal(t *testing.T) {
	inst := pipeline.MotivatingExample()
	m := latencyOptimal()
	if err := m.Validate(&inst, Interval); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	if got := Latency(&inst, &m); !fmath.EQ(got, 2.75) {
		t.Errorf("Equation (2): latency = %g, want 2.75", got)
	}
	if got := AppLatency(&inst, &m, 0); !fmath.EQ(got, 2) {
		t.Errorf("App1 latency = %g, want 2", got)
	}
	if got := AppLatency(&inst, &m, 1); !fmath.EQ(got, 2.75) {
		t.Errorf("App2 latency = %g, want 2.75", got)
	}
}

func TestMotivatingExampleEnergyMinimal(t *testing.T) {
	inst := pipeline.MotivatingExample()
	m := energyMinimal()
	if err := m.Validate(&inst, Interval); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	if got := Energy(&inst, &m); !fmath.EQ(got, 10) {
		t.Errorf("minimum energy = %g, want 10 (3^2+1^2)", got)
	}
	if got := Period(&inst, &m, pipeline.Overlap); !fmath.EQ(got, 14) {
		t.Errorf("energy-minimal period = %g, want 14", got)
	}
}

func TestMotivatingExampleTradeOff(t *testing.T) {
	inst := pipeline.MotivatingExample()
	m := tradeOff()
	if err := m.Validate(&inst, Interval); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	if got := Period(&inst, &m, pipeline.Overlap); !fmath.EQ(got, 2) {
		t.Errorf("trade-off period = %g, want 2", got)
	}
	if got := Energy(&inst, &m); !fmath.EQ(got, 46) {
		t.Errorf("trade-off energy = %g, want 46 (3^2+6^2+1^2)", got)
	}
}

func TestNoOverlapPeriodIsSum(t *testing.T) {
	inst := pipeline.MotivatingExample()
	m := periodOptimal()
	// App2 second interval on P1: in 1/1 + comp 6/6 + out 1/1 = 3 under
	// no-overlap; App1 on P3: 1 + 1 + 0 = 2.
	if got := AppPeriod(&inst, &m, 1, pipeline.NoOverlap); !fmath.EQ(got, 3) {
		t.Errorf("no-overlap App2 period = %g, want 3", got)
	}
	if got := AppPeriod(&inst, &m, 0, pipeline.NoOverlap); !fmath.EQ(got, 2) {
		t.Errorf("no-overlap App1 period = %g, want 2", got)
	}
	if got := Period(&inst, &m, pipeline.NoOverlap); !fmath.EQ(got, 3) {
		t.Errorf("no-overlap global period = %g, want 3", got)
	}
}

func TestLatencyIdenticalAcrossModels(t *testing.T) {
	// Equation (5): latency does not depend on the communication model.
	inst := pipeline.MotivatingExample()
	for _, m := range []Mapping{periodOptimal(), latencyOptimal(), energyMinimal(), tradeOff()} {
		for a := range m.Apps {
			l := AppLatency(&inst, &m, a)
			if l <= 0 {
				t.Errorf("non-positive latency %g", l)
			}
		}
	}
}

func TestValidateRejections(t *testing.T) {
	inst := pipeline.MotivatingExample()
	cases := []struct {
		name string
		m    Mapping
		rule Rule
	}{
		{"wrong app count", Mapping{Apps: []AppMapping{{}}}, Interval},
		{"gap in coverage", Mapping{Apps: []AppMapping{
			{Intervals: []PlacedInterval{{From: 0, To: 0, Proc: 0, Mode: 0}, {From: 2, To: 2, Proc: 1, Mode: 0}}},
			{Intervals: []PlacedInterval{{From: 0, To: 3, Proc: 2, Mode: 0}}},
		}}, Interval},
		{"reused processor", Mapping{Apps: []AppMapping{
			{Intervals: []PlacedInterval{{From: 0, To: 2, Proc: 0, Mode: 0}}},
			{Intervals: []PlacedInterval{{From: 0, To: 3, Proc: 0, Mode: 0}}},
		}}, Interval},
		{"bad mode", Mapping{Apps: []AppMapping{
			{Intervals: []PlacedInterval{{From: 0, To: 2, Proc: 0, Mode: 5}}},
			{Intervals: []PlacedInterval{{From: 0, To: 3, Proc: 1, Mode: 0}}},
		}}, Interval},
		{"incomplete coverage", Mapping{Apps: []AppMapping{
			{Intervals: []PlacedInterval{{From: 0, To: 1, Proc: 0, Mode: 0}}},
			{Intervals: []PlacedInterval{{From: 0, To: 3, Proc: 1, Mode: 0}}},
		}}, Interval},
		{"interval under one-to-one", Mapping{Apps: []AppMapping{
			{Intervals: []PlacedInterval{{From: 0, To: 2, Proc: 0, Mode: 0}}},
			{Intervals: []PlacedInterval{{From: 0, To: 3, Proc: 1, Mode: 0}}},
		}}, OneToOne},
		{"unknown processor", Mapping{Apps: []AppMapping{
			{Intervals: []PlacedInterval{{From: 0, To: 2, Proc: 9, Mode: 0}}},
			{Intervals: []PlacedInterval{{From: 0, To: 3, Proc: 1, Mode: 0}}},
		}}, Interval},
	}
	for _, c := range cases {
		if err := c.m.Validate(&inst, c.rule); err == nil {
			t.Errorf("%s: invalid mapping accepted", c.name)
		}
	}
}

func TestValidOneToOne(t *testing.T) {
	inst := pipeline.Instance{
		Apps:     []pipeline.Application{pipeline.NewUniformApplication("a", 3, 1)},
		Platform: pipeline.NewHomogeneousPlatform(4, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	m := Mapping{Apps: []AppMapping{OneToOneChain([]int{2, 0, 3}, FastestMode(&inst))}}
	if err := m.Validate(&inst, OneToOne); err != nil {
		t.Fatalf("valid one-to-one rejected: %v", err)
	}
	if err := m.Validate(&inst, Interval); err != nil {
		t.Fatalf("one-to-one must be a valid interval mapping: %v", err)
	}
	if got := m.NumIntervals(); got != 3 {
		t.Errorf("NumIntervals = %d, want 3", got)
	}
	used := m.UsedProcessors()
	if len(used) != 3 || used[0] != 0 || used[1] != 2 || used[2] != 3 {
		t.Errorf("UsedProcessors = %v", used)
	}
	iv, j := m.ProcOf(0, 1)
	if iv.Proc != 0 || j != 1 {
		t.Errorf("ProcOf(0,1) = %+v,%d", iv, j)
	}
}

func TestWholeApp(t *testing.T) {
	inst := pipeline.MotivatingExample()
	am := WholeApp(&inst, 1, 2, 0)
	if len(am.Intervals) != 1 || am.Intervals[0].To != 3 {
		t.Errorf("WholeApp = %+v", am)
	}
}

func TestIntervalCost(t *testing.T) {
	if got := IntervalCost(pipeline.Overlap, 1, 5, 3); got != 5 {
		t.Errorf("overlap cost = %g, want 5", got)
	}
	if got := IntervalCost(pipeline.NoOverlap, 1, 5, 3); got != 9 {
		t.Errorf("no-overlap cost = %g, want 9", got)
	}
}

func TestWeightedObjective(t *testing.T) {
	inst := pipeline.MotivatingExample()
	inst.Apps[0].Weight = 10
	m := latencyOptimal()
	// App1 latency 2 weighted by 10 dominates App2's 2.75.
	if got := Latency(&inst, &m); !fmath.EQ(got, 20) {
		t.Errorf("weighted latency = %g, want 20", got)
	}
}

// TestPeriodLatencyInvariants checks structural properties on random
// single-application fully homogeneous instances: the no-overlap period
// dominates the overlap period, the latency dominates both, and scaling all
// speeds by c divides pure-compute costs by c.
func TestPeriodLatencyInvariants(t *testing.T) {
	f := func(rawW []uint8, split uint8, speedSel uint8) bool {
		if len(rawW) < 2 {
			return true
		}
		if len(rawW) > 12 {
			rawW = rawW[:12]
		}
		app := pipeline.Application{In: 1, Weight: 1}
		for _, r := range rawW {
			app.Stages = append(app.Stages, pipeline.Stage{Work: float64(r%9) + 1, Out: float64(r % 4)})
		}
		speed := float64(speedSel%5) + 1
		inst := pipeline.Instance{
			Apps:     []pipeline.Application{app},
			Platform: pipeline.NewHomogeneousPlatform(2, []float64{speed}, 2, 1),
			Energy:   pipeline.DefaultEnergy,
		}
		cut := int(split) % (app.NumStages() - 1)
		m := Mapping{Apps: []AppMapping{{Intervals: []PlacedInterval{
			{From: 0, To: cut, Proc: 0, Mode: 0},
			{From: cut + 1, To: app.NumStages() - 1, Proc: 1, Mode: 0},
		}}}}
		if err := m.Validate(&inst, Interval); err != nil {
			return false
		}
		to := Period(&inst, &m, pipeline.Overlap)
		tn := Period(&inst, &m, pipeline.NoOverlap)
		l := Latency(&inst, &m)
		if !fmath.LE(to, tn) {
			return false
		}
		// The latency includes every interval's compute and comms, so it
		// dominates any single cycle time.
		if !fmath.LE(to, l) {
			return false
		}
		// Energy of two enrolled processors at speed s.
		if !fmath.EQ(Energy(&inst, &m), 2*speed*speed) {
			return false
		}
		// The period is at least the bottleneck compute time.
		slowest := math.Max(app.IntervalWork(0, cut), app.IntervalWork(cut+1, app.NumStages()-1)) / speed
		return fmath.GE(to, slowest)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluateBundles(t *testing.T) {
	inst := pipeline.MotivatingExample()
	m := tradeOff()
	mt := Evaluate(&inst, &m, pipeline.Overlap)
	if !fmath.EQ(mt.Period, 2) || !fmath.EQ(mt.Energy, 46) {
		t.Errorf("Evaluate = %+v", mt)
	}
	if len(mt.AppPeriods) != 2 || len(mt.AppLatencies) != 2 {
		t.Errorf("per-app metrics missing: %+v", mt)
	}
	if !fmath.EQ(mt.AppPeriods[0], 2) {
		t.Errorf("App1 period = %g, want 2", mt.AppPeriods[0])
	}
}

func TestMappingString(t *testing.T) {
	m := periodOptimal()
	s := m.String()
	if s == "" {
		t.Error("empty mapping string")
	}
	c := m.Clone()
	c.Apps[0].Intervals[0].Proc = 9
	if m.Apps[0].Intervals[0].Proc == 9 {
		t.Error("Clone shares interval storage")
	}
}

func TestRuleString(t *testing.T) {
	if OneToOne.String() != "one-to-one" || Interval.String() != "interval" {
		t.Error("unexpected rule strings")
	}
}
