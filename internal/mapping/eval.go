package mapping

import (
	"math"

	"repro/internal/pipeline"
)

// IntervalCost combines the three operation times of a processor into its
// cycle time: the max under the overlap model (Equation 3) and the sum under
// the no-overlap model (Equation 4).
func IntervalCost(model pipeline.CommModel, in, comp, out float64) float64 {
	if model == pipeline.Overlap {
		return math.Max(in, math.Max(comp, out))
	}
	return in + comp + out
}

// intervalTimes returns the incoming communication time, computation time
// and outgoing communication time of interval j of application a under m.
func intervalTimes(inst *pipeline.Instance, m *Mapping, a, j int) (in, comp, out float64) {
	app := &inst.Apps[a]
	ivs := m.Apps[a].Intervals
	iv := ivs[j]
	speed := inst.Platform.Processors[iv.Proc].Speeds[iv.Mode]
	comp = app.IntervalWork(iv.From, iv.To) / speed

	inVol := app.InputSize(iv.From)
	if j == 0 {
		in = safeDiv(inVol, inst.Platform.InLink(a, iv.Proc))
	} else {
		in = safeDiv(inVol, inst.Platform.Link(ivs[j-1].Proc, iv.Proc))
	}

	outVol := app.OutputSize(iv.To)
	if j == len(ivs)-1 {
		out = safeDiv(outVol, inst.Platform.OutLink(a, iv.Proc))
	} else {
		out = safeDiv(outVol, inst.Platform.Link(iv.Proc, ivs[j+1].Proc))
	}
	return in, comp, out
}

func safeDiv(vol, bw float64) float64 {
	if vol == 0 {
		return 0
	}
	return vol / bw
}

// AppPeriod returns the period T_a of application a under m: the maximum
// cycle time over its enrolled processors (Equations 3 and 4).
func AppPeriod(inst *pipeline.Instance, m *Mapping, a int, model pipeline.CommModel) float64 {
	var t float64
	for j := range m.Apps[a].Intervals {
		in, comp, out := intervalTimes(inst, m, a, j)
		t = math.Max(t, IntervalCost(model, in, comp, out))
	}
	return t
}

// AppLatency returns the latency L_a of application a under m (Equation 5):
// the input communication plus, for every interval, its computation and
// outgoing communication. The latency is identical under both communication
// models.
func AppLatency(inst *pipeline.Instance, m *Mapping, a int) float64 {
	var l float64
	for j := range m.Apps[a].Intervals {
		in, comp, out := intervalTimes(inst, m, a, j)
		if j == 0 {
			l += in
		}
		l += comp + out
	}
	return l
}

// Period returns the global period max_a W_a * T_a (Equation 6).
func Period(inst *pipeline.Instance, m *Mapping, model pipeline.CommModel) float64 {
	var t float64
	for a := range m.Apps {
		t = math.Max(t, inst.Apps[a].EffectiveWeight()*AppPeriod(inst, m, a, model))
	}
	return t
}

// Latency returns the global latency max_a W_a * L_a (Equation 6).
func Latency(inst *pipeline.Instance, m *Mapping) float64 {
	var l float64
	for a := range m.Apps {
		l = math.Max(l, inst.Apps[a].EffectiveWeight()*AppLatency(inst, m, a))
	}
	return l
}

// Energy returns the total energy consumption per time unit of the enrolled
// processors (Section 3.5): sum over used processors of Static + speed^Alpha.
func Energy(inst *pipeline.Instance, m *Mapping) float64 {
	var e float64
	for a := range m.Apps {
		for _, iv := range m.Apps[a].Intervals {
			s := inst.Platform.Processors[iv.Proc].Speeds[iv.Mode]
			e += inst.Energy.Power(s)
		}
	}
	return e
}

// Metrics bundles all three criteria of a mapping.
type Metrics struct {
	// Period is the weighted global period max_a W_a*T_a.
	Period float64
	// Latency is the weighted global latency max_a W_a*L_a.
	Latency float64
	// Energy is the total power of enrolled processors.
	Energy float64
	// AppPeriods and AppLatencies are the unweighted per-application
	// values T_a and L_a.
	AppPeriods   []float64
	AppLatencies []float64
}

// Evaluate computes all metrics of m on inst under the given communication
// model.
func Evaluate(inst *pipeline.Instance, m *Mapping, model pipeline.CommModel) Metrics {
	mt := Metrics{Energy: Energy(inst, m)}
	for a := range m.Apps {
		ta := AppPeriod(inst, m, a, model)
		la := AppLatency(inst, m, a)
		mt.AppPeriods = append(mt.AppPeriods, ta)
		mt.AppLatencies = append(mt.AppLatencies, la)
		w := inst.Apps[a].EffectiveWeight()
		mt.Period = math.Max(mt.Period, w*ta)
		mt.Latency = math.Max(mt.Latency, w*la)
	}
	return mt
}
