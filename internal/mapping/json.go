package mapping

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON schema for mappings, used by the cmd/ tools:
//
//	{"apps": [{"intervals": [{"from":0,"to":2,"proc":1,"mode":0}, ...]}, ...]}
type mappingJSON struct {
	Apps []appMappingJSON `json:"apps"`
}

type appMappingJSON struct {
	Intervals []intervalJSON `json:"intervals"`
}

type intervalJSON struct {
	From int `json:"from"`
	To   int `json:"to"`
	Proc int `json:"proc"`
	Mode int `json:"mode"`
}

// EncodeJSON writes m to w.
func EncodeJSON(w io.Writer, m *Mapping) error {
	doc := mappingJSON{}
	for a := range m.Apps {
		aj := appMappingJSON{}
		for _, iv := range m.Apps[a].Intervals {
			aj.Intervals = append(aj.Intervals, intervalJSON{From: iv.From, To: iv.To, Proc: iv.Proc, Mode: iv.Mode})
		}
		doc.Apps = append(doc.Apps, aj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeJSON parses a mapping from r. Structural validity against an
// instance is checked separately via Validate.
func DecodeJSON(r io.Reader) (Mapping, error) {
	var doc mappingJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return Mapping{}, fmt.Errorf("mapping: decoding: %w", err)
	}
	m := Mapping{}
	for _, aj := range doc.Apps {
		am := AppMapping{}
		for _, ij := range aj.Intervals {
			am.Intervals = append(am.Intervals, PlacedInterval{From: ij.From, To: ij.To, Proc: ij.Proc, Mode: ij.Mode})
		}
		m.Apps = append(m.Apps, am)
	}
	return m, nil
}
