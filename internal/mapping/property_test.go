package mapping_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fmath"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestRelabelingInvarianceFullyHom: on fully homogeneous platforms, the
// metrics of a mapping are invariant under any permutation of the enrolled
// processors.
func TestRelabelingInvarianceFullyHom(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 60; trial++ {
		cfg := workload.DefaultConfig()
		cfg.Class = pipeline.FullyHomogeneous
		inst := workload.MustInstance(rng, cfg)
		m, err := workload.RandomMapping(rng, &inst)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(inst.Platform.NumProcessors())
		relabeled := m.Clone()
		for a := range relabeled.Apps {
			for j := range relabeled.Apps[a].Intervals {
				relabeled.Apps[a].Intervals[j].Proc = perm[relabeled.Apps[a].Intervals[j].Proc]
			}
		}
		if err := relabeled.Validate(&inst, mapping.Interval); err != nil {
			t.Fatal(err)
		}
		for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
			if !fmath.EQ(mapping.Period(&inst, &m, model), mapping.Period(&inst, &relabeled, model)) {
				t.Fatalf("trial %d: period not relabeling-invariant", trial)
			}
		}
		if !fmath.EQ(mapping.Latency(&inst, &m), mapping.Latency(&inst, &relabeled)) {
			t.Fatalf("trial %d: latency not relabeling-invariant", trial)
		}
		if !fmath.EQ(mapping.Energy(&inst, &m), mapping.Energy(&inst, &relabeled)) {
			t.Fatalf("trial %d: energy not relabeling-invariant", trial)
		}
	}
}

// TestSpeedMonotonicity: raising any interval's mode never increases the
// period or the latency, and never decreases the energy.
func TestSpeedMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 80; trial++ {
		cfg := workload.DefaultConfig()
		cfg.Modes = 3
		inst := workload.MustInstance(rng, cfg)
		m, err := workload.RandomMapping(rng, &inst)
		if err != nil {
			t.Fatal(err)
		}
		// Pick an interval with headroom.
		a := rng.Intn(len(m.Apps))
		j := rng.Intn(len(m.Apps[a].Intervals))
		iv := &m.Apps[a].Intervals[j]
		if iv.Mode >= inst.Platform.Processors[iv.Proc].NumModes()-1 {
			continue
		}
		before := mapping.Evaluate(&inst, &m, pipeline.Overlap)
		iv.Mode++
		after := mapping.Evaluate(&inst, &m, pipeline.Overlap)
		if fmath.GT(after.Period, before.Period) {
			t.Fatalf("trial %d: speeding up increased the period", trial)
		}
		if fmath.GT(after.Latency, before.Latency) {
			t.Fatalf("trial %d: speeding up increased the latency", trial)
		}
		if fmath.LT(after.Energy, before.Energy) {
			t.Fatalf("trial %d: speeding up decreased the energy", trial)
		}
	}
}

// TestBandwidthMonotonicity: uniformly increasing all bandwidths never
// increases period or latency.
func TestBandwidthMonotonicity(t *testing.T) {
	f := func(seed int64, boost uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig()
		inst := workload.MustInstance(rng, cfg)
		m, err := workload.RandomMapping(rng, &inst)
		if err != nil {
			return false
		}
		before := mapping.Evaluate(&inst, &m, pipeline.NoOverlap)
		factor := 1 + float64(boost%7)
		fast := inst.Clone()
		for u := range fast.Platform.Bandwidth {
			for v := range fast.Platform.Bandwidth[u] {
				fast.Platform.Bandwidth[u][v] *= factor
			}
		}
		for a := range fast.Platform.InBandwidth {
			for u := range fast.Platform.InBandwidth[a] {
				fast.Platform.InBandwidth[a][u] *= factor
				fast.Platform.OutBandwidth[a][u] *= factor
			}
		}
		after := mapping.Evaluate(&fast, &m, pipeline.NoOverlap)
		return fmath.LE(after.Period, before.Period) && fmath.LE(after.Latency, before.Latency)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSimulatorAgreesWithEvalQuick: quick-generated shapes, the simulator
// is the ground truth for the analytic evaluation.
func TestSimulatorAgreesWithEvalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 5,
			Procs: 3 + rng.Intn(4), Modes: 1 + rng.Intn(2),
			Class:   pipeline.Class(rng.Intn(3)),
			MaxWork: 9, MaxData: 5, MaxSpeed: 6, MaxBandwidth: 4,
		}
		inst := workload.MustInstance(rng, cfg)
		m, err := workload.RandomMapping(rng, &inst)
		if err != nil {
			return false
		}
		model := pipeline.CommModel(rng.Intn(2))
		return sim.Verify(&inst, &m, model, 1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
