// Package mapping defines one-to-one and interval mappings of concurrent
// pipelined applications onto processors (Section 3.3) and the analytic
// evaluation of their period, latency and energy (Sections 3.4-3.5,
// Equations 3-6).
package mapping

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pipeline"
)

// Rule selects the mapping strategy.
type Rule int

const (
	// OneToOne: each application stage is allocated to a distinct
	// processor.
	OneToOne Rule = iota
	// Interval: each participating processor is assigned an interval of
	// consecutive stages of a single application. One-to-one mappings are
	// a special case.
	Interval
)

// String implements fmt.Stringer.
func (r Rule) String() string {
	switch r {
	case OneToOne:
		return "one-to-one"
	case Interval:
		return "interval"
	}
	return fmt.Sprintf("Rule(%d)", int(r))
}

// ParseRule is the inverse of String, shared by the cmd/ tools.
func ParseRule(s string) (Rule, error) {
	switch s {
	case "one-to-one":
		return OneToOne, nil
	case "interval":
		return Interval, nil
	}
	return 0, fmt.Errorf("unknown rule %q (want one-to-one | interval)", s)
}

// PlacedInterval assigns the stages From..To (inclusive, 0-based) of one
// application to a processor running in a fixed mode.
type PlacedInterval struct {
	From, To int
	// Proc is the processor index in the platform.
	Proc int
	// Mode indexes into the processor's Speeds slice; the chosen speed is
	// fixed for the whole execution (Section 3.2).
	Mode int
}

// Len returns the number of stages in the interval.
func (iv PlacedInterval) Len() int { return iv.To - iv.From + 1 }

// AppMapping is the ordered interval decomposition of one application.
type AppMapping struct {
	Intervals []PlacedInterval
}

// Mapping maps every application of an instance. Processors may not be
// shared across intervals, whether of the same or of different applications
// (Section 3.3).
type Mapping struct {
	Apps []AppMapping
}

// Clone returns a deep copy.
func (m *Mapping) Clone() Mapping {
	c := Mapping{Apps: make([]AppMapping, len(m.Apps))}
	for i := range m.Apps {
		c.Apps[i].Intervals = append([]PlacedInterval(nil), m.Apps[i].Intervals...)
	}
	return c
}

// UsedProcessors returns the sorted list of enrolled processor indices.
func (m *Mapping) UsedProcessors() []int {
	var out []int
	for a := range m.Apps {
		for _, iv := range m.Apps[a].Intervals {
			out = append(out, iv.Proc)
		}
	}
	sort.Ints(out)
	return out
}

// NumIntervals returns the total number of placed intervals (= enrolled
// processors, since sharing is forbidden).
func (m *Mapping) NumIntervals() int {
	n := 0
	for a := range m.Apps {
		n += len(m.Apps[a].Intervals)
	}
	return n
}

// ProcOf returns the placed interval covering stage k of application a and
// its index within the application's interval list.
func (m *Mapping) ProcOf(a, k int) (PlacedInterval, int) {
	for j, iv := range m.Apps[a].Intervals {
		if iv.From <= k && k <= iv.To {
			return iv, j
		}
	}
	panic(fmt.Sprintf("mapping: stage %d of application %d not covered", k, a))
}

// String renders a compact human-readable description.
func (m *Mapping) String() string {
	var sb strings.Builder
	for a := range m.Apps {
		if a > 0 {
			sb.WriteString("; ")
		}
		fmt.Fprintf(&sb, "app%d:", a)
		for j, iv := range m.Apps[a].Intervals {
			if j > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " [%d-%d]->P%d/m%d", iv.From, iv.To, iv.Proc, iv.Mode)
		}
	}
	return sb.String()
}

// Validate checks that m is a legal mapping of inst under the given rule:
// the intervals of each application partition its stages in order, no
// processor is reused, modes are valid, and under OneToOne every interval
// has length 1.
func (m *Mapping) Validate(inst *pipeline.Instance, rule Rule) error {
	if len(m.Apps) != len(inst.Apps) {
		return fmt.Errorf("mapping: covers %d applications, instance has %d", len(m.Apps), len(inst.Apps))
	}
	used := make(map[int]bool)
	for a := range m.Apps {
		ivs := m.Apps[a].Intervals
		n := inst.Apps[a].NumStages()
		if len(ivs) == 0 {
			return fmt.Errorf("mapping: application %d has no intervals", a)
		}
		next := 0
		for j, iv := range ivs {
			if iv.From != next {
				return fmt.Errorf("mapping: application %d interval %d starts at %d, want %d", a, j, iv.From, next)
			}
			if iv.To < iv.From || iv.To >= n {
				return fmt.Errorf("mapping: application %d interval %d range [%d,%d] invalid for %d stages", a, j, iv.From, iv.To, n)
			}
			if rule == OneToOne && iv.Len() != 1 {
				return fmt.Errorf("mapping: application %d interval %d has %d stages; one-to-one requires 1", a, j, iv.Len())
			}
			if iv.Proc < 0 || iv.Proc >= inst.Platform.NumProcessors() {
				return fmt.Errorf("mapping: application %d interval %d uses unknown processor %d", a, j, iv.Proc)
			}
			if used[iv.Proc] {
				return fmt.Errorf("mapping: processor %d assigned twice (no sharing allowed)", iv.Proc)
			}
			used[iv.Proc] = true
			if iv.Mode < 0 || iv.Mode >= inst.Platform.Processors[iv.Proc].NumModes() {
				return fmt.Errorf("mapping: application %d interval %d uses invalid mode %d on processor %d", a, j, iv.Mode, iv.Proc)
			}
			next = iv.To + 1
		}
		if next != n {
			return fmt.Errorf("mapping: application %d intervals cover %d stages, want %d", a, next, n)
		}
	}
	return nil
}

// WholeApp maps application a entirely onto one processor/mode.
func WholeApp(inst *pipeline.Instance, a, proc, mode int) AppMapping {
	return AppMapping{Intervals: []PlacedInterval{{From: 0, To: inst.Apps[a].NumStages() - 1, Proc: proc, Mode: mode}}}
}

// OneToOneChain maps the stages of application a to the given processors in
// order, one stage per processor, all at the given mode selector.
func OneToOneChain(procs []int, modeOf func(proc int) int) AppMapping {
	am := AppMapping{}
	for k, u := range procs {
		am.Intervals = append(am.Intervals, PlacedInterval{From: k, To: k, Proc: u, Mode: modeOf(u)})
	}
	return am
}

// FastestMode returns a mode selector choosing each processor's highest
// speed, the right choice whenever energy is not among the criteria
// (Section 2).
func FastestMode(inst *pipeline.Instance) func(proc int) int {
	return func(proc int) int { return inst.Platform.Processors[proc].NumModes() - 1 }
}
