package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestTraceConsistencyRandom audits the explicit ASAP schedules on random
// instances: unit-capacity resources never double-booked, data-set
// precedences respected, and the trace agrees with Simulate's departures.
func TestTraceConsistencyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		cfg := workload.DefaultConfig()
		cfg.Class = []pipeline.Class{pipeline.FullyHomogeneous, pipeline.CommHomogeneous, pipeline.FullyHeterogeneous}[trial%3]
		inst := workload.MustInstance(rng, cfg)
		m, err := workload.RandomMapping(rng, &inst)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
			for a := range inst.Apps {
				tr, err := TraceRun(&inst, &m, a, model, 25)
				if err != nil {
					t.Fatal(err)
				}
				if err := tr.CheckConsistency(); err != nil {
					t.Fatalf("trial %d app %d (%v): %v", trial, a, model, err)
				}
				// The trace's final transfers are Simulate's departures.
				results, err := Simulate(&inst, &m, model, Options{Datasets: 25})
				if err != nil {
					t.Fatal(err)
				}
				nn := len(m.Apps[a].Intervals)
				for _, op := range tr.Ops {
					if op.Kind == OpTransfer && op.Node == nn {
						if math.Abs(op.End-results[a].Departures[op.Dataset]) > 1e-9 {
							t.Fatalf("trial %d: trace departure %g vs simulate %g", trial, op.End, results[a].Departures[op.Dataset])
						}
					}
				}
			}
		}
	}
}

// TestTraceBottleneckUtilization: in steady state the bottleneck resource
// is busy almost all the time; its busy time over the makespan approaches
// its cycle time over the period.
func TestTraceBottleneckUtilization(t *testing.T) {
	inst := pipeline.Instance{
		Apps: []pipeline.Application{{
			Stages: []pipeline.Stage{{Work: 1, Out: 1}, {Work: 8, Out: 1}},
			In:     1, Weight: 1,
		}},
		Platform: pipeline.NewHomogeneousPlatform(2, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	m := mapping.Mapping{Apps: []mapping.AppMapping{{Intervals: []mapping.PlacedInterval{
		{From: 0, To: 0, Proc: 0, Mode: 0},
		{From: 1, To: 1, Proc: 1, Mode: 0},
	}}}}
	tr, err := TraceRun(&inst, &m, 0, pipeline.Overlap, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// cpu:1 is the bottleneck (8 per data set, period 8).
	busy := tr.BusyTime("cpu:1")
	if busy != 200*8 {
		t.Errorf("bottleneck busy time = %g, want 1600", busy)
	}
	util := busy / tr.Makespan()
	if util < 0.99 {
		t.Errorf("bottleneck utilization = %g, want ~1", util)
	}
}

func TestTraceRejectsInvalid(t *testing.T) {
	inst := pipeline.MotivatingExample()
	bad := mapping.Mapping{Apps: []mapping.AppMapping{{}}}
	if _, err := TraceRun(&inst, &bad, 0, pipeline.Overlap, 5); err == nil {
		t.Error("invalid mapping accepted")
	}
}

func TestCheckConsistencyDetectsViolations(t *testing.T) {
	overlapping := Trace{Ops: []Op{
		{Kind: OpCompute, Node: 0, Dataset: 0, Resources: []string{"cpu:0"}, Start: 0, End: 5},
		{Kind: OpCompute, Node: 0, Dataset: 1, Resources: []string{"cpu:0"}, Start: 3, End: 8},
	}}
	if err := overlapping.CheckConsistency(); err == nil {
		t.Error("double-booked resource not detected")
	}
	backwards := Trace{Ops: []Op{
		{Kind: OpTransfer, Node: 0, Dataset: 0, Resources: []string{"edge:0"}, Start: 5, End: 6},
		{Kind: OpCompute, Node: 0, Dataset: 0, Resources: []string{"cpu:0"}, Start: 0, End: 2},
	}}
	if err := backwards.CheckConsistency(); err == nil {
		t.Error("precedence violation not detected")
	}
	if OpCompute.String() != "compute" || OpTransfer.String() != "transfer" {
		t.Error("op kind strings")
	}
}
