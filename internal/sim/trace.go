package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// OpKind classifies a scheduled operation.
type OpKind int

const (
	// OpTransfer is a data transfer along an edge (including the virtual
	// input and output edges).
	OpTransfer OpKind = iota
	// OpCompute is an interval computation on a processor.
	OpCompute
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if k == OpCompute {
		return "compute"
	}
	return "transfer"
}

// Op is one scheduled operation of the ASAP execution: the Gantt-chart
// building block.
type Op struct {
	Kind OpKind
	// Node is the interval index within the application's chain; for
	// transfers it identifies the receiving node (Node == number of nodes
	// marks the final transfer to the virtual output).
	Node int
	// Dataset is the data set index.
	Dataset int
	// Resource names the unit-capacity resource the operation occupies:
	// "edge:<j>" or "cpu:<j>" under the overlap model, "proc:<j>" under
	// the no-overlap model (rendezvous transfers occupy two).
	Resources []string
	Start     float64
	End       float64
}

// Trace is the full schedule of one application.
type Trace struct {
	Ops []Op
}

// TraceRun simulates mapping m recording every operation. It is the
// explicit-schedule counterpart of Simulate, used to audit the ASAP
// execution (no resource conflicts, correct precedences).
func TraceRun(inst *pipeline.Instance, m *mapping.Mapping, a int, model pipeline.CommModel, datasets int) (Trace, error) {
	if err := m.Validate(inst, mapping.Interval); err != nil {
		return Trace{}, fmt.Errorf("sim: %w", err)
	}
	nodes := appNodes(inst, m, a)
	nn := len(nodes)
	if datasets <= 0 {
		datasets = 20
	}
	var tr Trace
	if model == pipeline.Overlap {
		edgeFree := make([]float64, nn+1)
		cpuFree := make([]float64, nn)
		for t := 0; t < datasets; t++ {
			ready := 0.0
			for j := 0; j < nn; j++ {
				start := math.Max(ready, edgeFree[j])
				end := start + nodes[j].inTime
				edgeFree[j] = end
				tr.Ops = append(tr.Ops, Op{Kind: OpTransfer, Node: j, Dataset: t,
					Resources: []string{fmt.Sprintf("edge:%d", j)}, Start: start, End: end})
				cstart := math.Max(end, cpuFree[j])
				cend := cstart + nodes[j].compTime
				cpuFree[j] = cend
				tr.Ops = append(tr.Ops, Op{Kind: OpCompute, Node: j, Dataset: t,
					Resources: []string{fmt.Sprintf("cpu:%d", j)}, Start: cstart, End: cend})
				ready = cend
			}
			start := math.Max(ready, edgeFree[nn])
			end := start + nodes[nn-1].outTime
			edgeFree[nn] = end
			tr.Ops = append(tr.Ops, Op{Kind: OpTransfer, Node: nn, Dataset: t,
				Resources: []string{fmt.Sprintf("edge:%d", nn)}, Start: start, End: end})
		}
		return tr, nil
	}
	free := make([]float64, nn)
	for t := 0; t < datasets; t++ {
		for j := 0; j < nn; j++ {
			start := free[j]
			res := []string{fmt.Sprintf("proc:%d", j)}
			if j > 0 {
				start = math.Max(start, free[j-1])
				res = append(res, fmt.Sprintf("proc:%d", j-1))
			}
			end := start + nodes[j].inTime
			if j > 0 {
				free[j-1] = end
			}
			tr.Ops = append(tr.Ops, Op{Kind: OpTransfer, Node: j, Dataset: t, Resources: res, Start: start, End: end})
			cend := end + nodes[j].compTime
			free[j] = cend
			tr.Ops = append(tr.Ops, Op{Kind: OpCompute, Node: j, Dataset: t,
				Resources: []string{fmt.Sprintf("proc:%d", j)}, Start: end, End: cend})
		}
		start := free[nn-1]
		end := start + nodes[nn-1].outTime
		free[nn-1] = end
		tr.Ops = append(tr.Ops, Op{Kind: OpTransfer, Node: nn, Dataset: t,
			Resources: []string{fmt.Sprintf("proc:%d", nn-1)}, Start: start, End: end})
	}
	return tr, nil
}

// CheckConsistency audits a trace: no two operations overlap on any
// unit-capacity resource, every data set's operations form a precedence
// chain, and operations on a resource run in data-set order.
func (tr Trace) CheckConsistency() error {
	// Resource exclusivity.
	byRes := map[string][]Op{}
	for _, op := range tr.Ops {
		for _, r := range op.Resources {
			byRes[r] = append(byRes[r], op)
		}
	}
	//lint:allow determinism verdict is order-independent; only which violation reports first can vary
	for res, ops := range byRes {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
		for i := 1; i < len(ops); i++ {
			if ops[i].Start < ops[i-1].End-1e-9 {
				return fmt.Errorf("sim: resource %s double-booked: [%g,%g] overlaps [%g,%g]",
					res, ops[i-1].Start, ops[i-1].End, ops[i].Start, ops[i].End)
			}
		}
	}
	// Precedence within each data set: ops sorted by (node, kind) must be
	// non-decreasing in time.
	byDS := map[int][]Op{}
	maxDS := 0
	for _, op := range tr.Ops {
		byDS[op.Dataset] = append(byDS[op.Dataset], op)
		if op.Dataset > maxDS {
			maxDS = op.Dataset
		}
	}
	//lint:allow determinism verdict is order-independent; only which violation reports first can vary
	for ds, ops := range byDS {
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].Node != ops[j].Node {
				return ops[i].Node < ops[j].Node
			}
			return ops[i].Kind == OpTransfer && ops[j].Kind == OpCompute
		})
		for i := 1; i < len(ops); i++ {
			if ops[i].Start < ops[i-1].End-1e-9 {
				return fmt.Errorf("sim: data set %d precedence violated between %v@%d and %v@%d",
					ds, ops[i-1].Kind, ops[i-1].Node, ops[i].Kind, ops[i].Node)
			}
		}
	}
	return nil
}

// Makespan returns the completion time of the last operation.
func (tr Trace) Makespan() float64 {
	var end float64
	for _, op := range tr.Ops {
		end = math.Max(end, op.End)
	}
	return end
}

// BusyTime returns the total busy time of one resource.
func (tr Trace) BusyTime(resource string) float64 {
	var busy float64
	for _, op := range tr.Ops {
		for _, r := range op.Resources {
			if r == resource {
				busy += op.End - op.Start
			}
		}
	}
	return busy
}
