package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/repl"
	"repro/internal/workload"
)

// TestReplicatedSimMatchesAnalyticRandom is the replication counterpart of
// the Equations 3-5 validation: on random instances with random replicated
// mappings, the round-robin ASAP execution must reproduce the analytic
// replicated period and worst-path latency exactly, under both
// communication models and all platform classes.
func TestReplicatedSimMatchesAnalyticRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	classes := []pipeline.Class{pipeline.FullyHomogeneous, pipeline.CommHomogeneous, pipeline.FullyHeterogeneous}
	for trial := 0; trial < 200; trial++ {
		cfg := workload.Config{
			Apps: 1 + rng.Intn(2), MinStages: 1, MaxStages: 5,
			Procs: 4 + rng.Intn(5), Modes: 1 + rng.Intn(3),
			Class:   classes[trial%len(classes)],
			MaxWork: 9, MaxData: 6, MaxSpeed: 7, MaxBandwidth: 4,
		}
		inst := workload.MustInstance(rng, cfg)
		rm, err := workload.RandomReplicated(rng, &inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
			if err := VerifyReplicated(&inst, &rm, model, 1e-9); err != nil {
				t.Fatalf("trial %d (class %v): %v\nmapping: %s", trial, cfg.Class, err, rm.String())
			}
		}
	}
}

// TestReplicatedSimSingleReplicaEqualsPlain: a lifted plain mapping must
// behave identically in both simulators.
func TestReplicatedSimSingleReplicaEqualsPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 40; trial++ {
		inst := workload.MustInstance(rng, workload.DefaultConfig())
		m, err := workload.RandomMapping(rng, &inst)
		if err != nil {
			t.Fatal(err)
		}
		rm := repl.Lift(&m)
		for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
			plain, err := Simulate(&inst, &m, model, Options{Datasets: 100})
			if err != nil {
				t.Fatal(err)
			}
			lifted, err := SimulateReplicated(&inst, &rm, model, Options{Datasets: 100})
			if err != nil {
				t.Fatal(err)
			}
			for a := range plain {
				for i := range plain[a].Departures {
					if math.Abs(plain[a].Departures[i]-lifted[a].Departures[i]) > 1e-9 {
						t.Fatalf("trial %d app %d dataset %d: plain %g vs lifted %g (%v)",
							trial, a, i, plain[a].Departures[i], lifted[a].Departures[i], model)
					}
				}
			}
		}
	}
}

// TestReplicatedThroughputGain: replicating the bottleneck genuinely
// doubles the measured throughput.
func TestReplicatedThroughputGain(t *testing.T) {
	inst := pipeline.Instance{
		Apps: []pipeline.Application{{
			Stages: []pipeline.Stage{{Work: 1, Out: 0}, {Work: 8, Out: 0}},
			Weight: 1,
		}},
		Platform: pipeline.NewHomogeneousPlatform(3, []float64{1}, 1, 1),
		Energy:   pipeline.DefaultEnergy,
	}
	plain := repl.Mapping{Apps: []repl.AppMapping{{Intervals: []repl.Interval{
		{From: 0, To: 0, Replicas: []repl.Replica{{Proc: 0}}},
		{From: 1, To: 1, Replicas: []repl.Replica{{Proc: 1}}},
	}}}}
	doubled := repl.Mapping{Apps: []repl.AppMapping{{Intervals: []repl.Interval{
		{From: 0, To: 0, Replicas: []repl.Replica{{Proc: 0}}},
		{From: 1, To: 1, Replicas: []repl.Replica{{Proc: 1}, {Proc: 2}}},
	}}}}
	rp, err := SimulateReplicated(&inst, &plain, pipeline.Overlap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := SimulateReplicated(&inst, &doubled, pipeline.Overlap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rp[0].SteadyPeriod-8) > 1e-9 {
		t.Errorf("plain period = %g, want 8", rp[0].SteadyPeriod)
	}
	if math.Abs(rd[0].SteadyPeriod-4) > 1e-9 {
		t.Errorf("replicated period = %g, want 4", rd[0].SteadyPeriod)
	}
}

// TestReleaseIntervalThrottlesPlainSim: with releases slower than the
// bottleneck, the measured inter-departure time equals the release
// interval; the per-dataset latency collapses to the first-dataset value.
func TestReleaseIntervalThrottlesPlainSim(t *testing.T) {
	inst := workload.StreamingCenter(8)
	rng := rand.New(rand.NewSource(46))
	m, err := workload.RandomMapping(rng, &inst)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Simulate(&inst, &m, pipeline.Overlap, Options{Datasets: 80, ReleaseInterval: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	for a, r := range results {
		if math.Abs(r.SteadyPeriod-1e6) > 1 {
			t.Errorf("app %d: throttled period = %g, want 1e6", a, r.SteadyPeriod)
		}
		if math.Abs(r.MaxLatency-r.FirstLatency) > 1e-9 {
			t.Errorf("app %d: idle-pipeline latency %g differs from first %g", a, r.MaxLatency, r.FirstLatency)
		}
	}
}

// TestReplicatedRejectsInvalid mirrors the plain simulator's behaviour.
func TestReplicatedRejectsInvalid(t *testing.T) {
	inst := pipeline.MotivatingExample()
	bad := repl.Mapping{Apps: []repl.AppMapping{{}}}
	if _, err := SimulateReplicated(&inst, &bad, pipeline.Overlap, Options{}); err == nil {
		t.Error("invalid replicated mapping accepted")
	}
}
