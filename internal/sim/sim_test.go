package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func motivatingMappings() (pipeline.Instance, []mapping.Mapping) {
	inst := pipeline.MotivatingExample()
	ms := []mapping.Mapping{
		{Apps: []mapping.AppMapping{ // period optimal
			{Intervals: []mapping.PlacedInterval{{From: 0, To: 2, Proc: 2, Mode: 1}}},
			{Intervals: []mapping.PlacedInterval{{From: 0, To: 1, Proc: 1, Mode: 1}, {From: 2, To: 3, Proc: 0, Mode: 1}}},
		}},
		{Apps: []mapping.AppMapping{ // latency optimal
			{Intervals: []mapping.PlacedInterval{{From: 0, To: 2, Proc: 0, Mode: 1}}},
			{Intervals: []mapping.PlacedInterval{{From: 0, To: 3, Proc: 1, Mode: 1}}},
		}},
		{Apps: []mapping.AppMapping{ // trade-off
			{Intervals: []mapping.PlacedInterval{{From: 0, To: 2, Proc: 0, Mode: 0}}},
			{Intervals: []mapping.PlacedInterval{{From: 0, To: 2, Proc: 1, Mode: 0}, {From: 3, To: 3, Proc: 2, Mode: 0}}},
		}},
	}
	return inst, ms
}

func TestSimulatorMatchesAnalyticOnMotivatingExample(t *testing.T) {
	inst, ms := motivatingMappings()
	for i, m := range ms {
		for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
			if err := Verify(&inst, &m, model, 1e-9); err != nil {
				t.Errorf("mapping %d under %v: %v", i, model, err)
			}
		}
	}
}

func TestSimulatorPeriodOptimalNumbers(t *testing.T) {
	inst, ms := motivatingMappings()
	results, err := Simulate(&inst, &ms[0], pipeline.Overlap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for a, r := range results {
		if math.Abs(r.SteadyPeriod-1) > 1e-9 {
			t.Errorf("app %d measured period %g, want 1 (Equation 1)", a, r.SteadyPeriod)
		}
	}
	// Latency-optimal mapping: dataset 0 of app2 completes at 2.75.
	results, err = Simulate(&inst, &ms[1], pipeline.Overlap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(results[1].FirstLatency-2.75) > 1e-9 {
		t.Errorf("app2 measured latency %g, want 2.75 (Equation 2)", results[1].FirstLatency)
	}
}

func TestSimulatorDeparturesMonotone(t *testing.T) {
	inst, ms := motivatingMappings()
	for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
		results, err := Simulate(&inst, &ms[2], model, Options{Datasets: 40})
		if err != nil {
			t.Fatal(err)
		}
		for a, r := range results {
			if len(r.Departures) != 40 {
				t.Fatalf("app %d: %d departures, want 40", a, len(r.Departures))
			}
			for i := 1; i < len(r.Departures); i++ {
				if r.Departures[i] < r.Departures[i-1] {
					t.Errorf("app %d: departures not monotone at %d", a, i)
				}
			}
			if r.MaxLatency < r.FirstLatency {
				t.Errorf("app %d: max latency below first latency", a)
			}
		}
	}
}

func TestSimulatorRejectsInvalidMapping(t *testing.T) {
	inst := pipeline.MotivatingExample()
	bad := mapping.Mapping{Apps: []mapping.AppMapping{{}}}
	if _, err := Simulate(&inst, &bad, pipeline.Overlap, Options{}); err == nil {
		t.Error("invalid mapping accepted")
	}
}

// TestSimulatorMatchesAnalyticRandom is the central substrate validation:
// on hundreds of random instances and random mappings across all platform
// classes, the ASAP execution must reproduce Equations 3-5 exactly.
func TestSimulatorMatchesAnalyticRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	classes := []pipeline.Class{pipeline.FullyHomogeneous, pipeline.CommHomogeneous, pipeline.FullyHeterogeneous}
	for trial := 0; trial < 300; trial++ {
		cfg := workload.Config{
			Apps:      1 + rng.Intn(3),
			MinStages: 1, MaxStages: 6,
			Procs: 3 + rng.Intn(6), Modes: 1 + rng.Intn(3),
			Class:   classes[trial%len(classes)],
			MaxWork: 9, MaxData: 6, MaxSpeed: 7, MaxBandwidth: 4,
		}
		if cfg.Procs < cfg.Apps {
			cfg.Procs = cfg.Apps
		}
		inst := workload.MustInstance(rng, cfg)
		m, err := workload.RandomMapping(rng, &inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
			if err := Verify(&inst, &m, model, 1e-9); err != nil {
				t.Fatalf("trial %d (%v, class %v): %v\nmapping: %v", trial, model, cfg.Class, err, m.String())
			}
		}
	}
}

func TestSimulatorStreamingPreset(t *testing.T) {
	inst := workload.StreamingCenter(8)
	if err := inst.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	m, err := workload.RandomMapping(rng, &inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(&inst, &m, pipeline.Overlap, 1e-9); err != nil {
		t.Error(err)
	}
	if err := Verify(&inst, &m, pipeline.NoOverlap, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestNoOverlapSlowerThanOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		inst := workload.MustInstance(rng, workload.DefaultConfig())
		m, err := workload.RandomMapping(rng, &inst)
		if err != nil {
			t.Fatal(err)
		}
		ro, _ := Simulate(&inst, &m, pipeline.Overlap, Options{})
		rn, _ := Simulate(&inst, &m, pipeline.NoOverlap, Options{})
		for a := range ro {
			if ro[a].SteadyPeriod > rn[a].SteadyPeriod+1e-9 {
				t.Errorf("trial %d app %d: overlap period %g exceeds no-overlap %g", trial, a, ro[a].SteadyPeriod, rn[a].SteadyPeriod)
			}
		}
	}
}
