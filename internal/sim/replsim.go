package sim

import (
	"fmt"
	"math"

	"repro/internal/pipeline"
	"repro/internal/repl"
)

// SimulateReplicated executes a replicated mapping (package repl): data set
// t is served, in every replicated interval, by replica t mod k, results
// are delivered to the output in data set order (streaming semantics, which
// is what gates a group by its slowest replica), and inter-group transfers
// are charged at the group's worst-case bandwidth — the same model as the
// analytic formulas, so measured and analytic values agree exactly.
//
// Options.ReleaseInterval spaces out data-set arrivals (data set t enters
// at t * ReleaseInterval); with a large spacing every data set traverses an
// empty pipeline, which exposes the per-path latencies of the different
// replica combinations.
func SimulateReplicated(inst *pipeline.Instance, rm *repl.Mapping, model pipeline.CommModel, opt Options) ([]Result, error) {
	if err := rm.Validate(inst); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	out := make([]Result, len(inst.Apps))
	for a := range inst.Apps {
		out[a] = simulateReplApp(inst, rm, a, model, opt)
	}
	return out, nil
}

// replGroup precomputes one replicated interval's timing parameters.
type replGroup struct {
	inTime  float64   // worst-case input transfer time
	outTime float64   // worst-case output transfer time
	comp    []float64 // per-replica computation time
}

func replGroups(inst *pipeline.Instance, rm *repl.Mapping, a int) []replGroup {
	app := &inst.Apps[a]
	ivs := rm.Apps[a].Intervals
	groups := make([]replGroup, len(ivs))
	for j, iv := range ivs {
		in, out := repl.IntervalComm(inst, rm, a, j)
		groups[j].inTime = in
		groups[j].outTime = out
		work := app.IntervalWork(iv.From, iv.To)
		for _, r := range iv.Replicas {
			s := inst.Platform.Processors[r.Proc].Speeds[r.Mode]
			groups[j].comp = append(groups[j].comp, work/s)
		}
	}
	return groups
}

func simulateReplApp(inst *pipeline.Instance, rm *repl.Mapping, a int, model pipeline.CommModel, opt Options) Result {
	groups := replGroups(inst, rm, a)
	// Enough data sets for every replica combination to appear several
	// times after the transient.
	cycle := 1
	for _, g := range groups {
		cycle = lcm(cycle, len(g.comp))
	}
	k := opt.Datasets
	if k <= 0 {
		k = (10*(len(groups)+2) + 50) * cycle
	}
	departures := make([]float64, k)
	switch model {
	case pipeline.Overlap:
		simulateReplOverlap(groups, departures, opt.ReleaseInterval)
	default:
		simulateReplNoOverlap(groups, departures, opt.ReleaseInterval)
	}
	res := Result{Departures: departures, FirstLatency: departures[0]}
	for t, d := range departures {
		res.MaxLatency = math.Max(res.MaxLatency, d-float64(t)*opt.ReleaseInterval)
	}
	if k >= 2 {
		half := k / 2
		res.SteadyPeriod = (departures[k-1] - departures[half-1]) / float64(k-half)
	}
	return res
}

// simulateReplOverlap: per replica, an input port, a CPU and an output
// port; a transfer jointly occupies the sender's output port and the
// receiver's input port (the virtual input/output processors are always
// ready).
func simulateReplOverlap(groups []replGroup, departures []float64, release float64) {
	nn := len(groups)
	inPort := make([][]float64, nn)
	cpu := make([][]float64, nn)
	outPort := make([][]float64, nn)
	for j, g := range groups {
		inPort[j] = make([]float64, len(g.comp))
		cpu[j] = make([]float64, len(g.comp))
		outPort[j] = make([]float64, len(g.comp))
	}
	for t := range departures {
		ready := float64(t) * release
		prevRep := -1
		for j := 0; j < nn; j++ {
			r := t % len(groups[j].comp)
			// Input transfer: joint with the upstream replica's out port.
			start := math.Max(ready, inPort[j][r])
			if j > 0 {
				start = math.Max(start, outPort[j-1][prevRep])
			}
			end := start + groups[j].inTime
			inPort[j][r] = end
			if j > 0 {
				outPort[j-1][prevRep] = end
			}
			// Computation.
			cstart := math.Max(end, cpu[j][r])
			cend := cstart + groups[j].comp[r]
			cpu[j][r] = cend
			ready = cend
			prevRep = r
		}
		// Final transfer to the virtual output processor.
		last := nn - 1
		start := math.Max(ready, outPort[last][prevRep])
		end := start + groups[last].outTime
		outPort[last][prevRep] = end
		// In-order delivery: the output consumer accepts results in data
		// set order, which is what gates a round-robin group by its
		// slowest replica (faster replicas cannot overtake the stream).
		if t > 0 {
			end = math.Max(end, departures[t-1])
		}
		departures[t] = end
	}
}

// simulateReplNoOverlap: each replica's processor serializes receive,
// compute, send in program order; transfers are rendezvous between the two
// endpoint replicas.
func simulateReplNoOverlap(groups []replGroup, departures []float64, release float64) {
	nn := len(groups)
	free := make([][]float64, nn)
	for j, g := range groups {
		free[j] = make([]float64, len(g.comp))
	}
	for t := range departures {
		avail := float64(t) * release
		prevRep := -1
		for j := 0; j < nn; j++ {
			r := t % len(groups[j].comp)
			start := math.Max(free[j][r], avail)
			if j > 0 {
				start = math.Max(start, free[j-1][prevRep])
			}
			end := start + groups[j].inTime
			if j > 0 {
				free[j-1][prevRep] = end
			}
			end += groups[j].comp[r]
			free[j][r] = end
			avail = end
			prevRep = r
		}
		last := nn - 1
		end := free[last][prevRep] + groups[last].outTime
		free[last][prevRep] = end
		// In-order delivery at the output, as in the overlap engine. The
		// replica itself is released at the raw completion time; only the
		// visible departure is ordered.
		if t > 0 {
			end = math.Max(end, departures[t-1])
		}
		departures[t] = end
	}
}

func lcm(a, b int) int {
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// VerifyReplicated simulates rm and checks the measured steady-state
// period of every application against the analytic replicated-period
// formula, and the measured worst-path latency (with well-spaced releases)
// against the analytic worst-path latency.
func VerifyReplicated(inst *pipeline.Instance, rm *repl.Mapping, model pipeline.CommModel, tol float64) error {
	results, err := SimulateReplicated(inst, rm, model, Options{})
	if err != nil {
		return err
	}
	for a, r := range results {
		wantT := repl.AppPeriod(inst, rm, a, model)
		if math.Abs(r.SteadyPeriod-wantT) > tol*math.Max(1, wantT) {
			return fmt.Errorf("sim: app %d replicated period: measured %g, analytic %g (%v)", a, r.SteadyPeriod, wantT, model)
		}
	}
	// Latency: release data sets far enough apart that each one traverses
	// an empty pipeline; the max per-data-set latency over one replica
	// cycle is the worst path. The spacing is a computed upper bound on
	// any path latency rather than a huge constant, to keep t*release
	// exactly representable next to the latencies themselves.
	spacing := 1.0
	for a := range rm.Apps {
		spacing += repl.AppLatency(inst, rm, a)
	}
	spaced, err := SimulateReplicated(inst, rm, model, Options{ReleaseInterval: spacing, Datasets: latencyProbeCount(rm)})
	if err != nil {
		return err
	}
	for a, r := range spaced {
		wantL := repl.AppLatency(inst, rm, a)
		if math.Abs(r.MaxLatency-wantL) > tol*math.Max(1, wantL) {
			return fmt.Errorf("sim: app %d replicated latency: measured %g, analytic %g (%v)", a, r.MaxLatency, wantL, model)
		}
	}
	return nil
}

// latencyProbeCount returns enough data sets to cover every replica
// combination at least once.
func latencyProbeCount(rm *repl.Mapping) int {
	c := 1
	for a := range rm.Apps {
		for _, iv := range rm.Apps[a].Intervals {
			c = lcm(c, len(iv.Replicas))
		}
	}
	return c
}
