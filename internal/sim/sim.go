// Package sim executes a mapping dataset-by-dataset and measures the
// observed steady-state period and per-dataset latency. It is the runtime
// substrate that validates the closed-form expressions of Equations 3-5:
// the ASAP schedule enabled by interval mappings (Section 3.3) must achieve
// exactly the analytic period and latency.
//
// # Execution model
//
// Every placed interval is a node. For dataset t, node j must
//
//  1. receive its input from node j-1 (or from the application's virtual
//     input processor for j = 0),
//  2. compute for (sum of stage works)/speed time units,
//  3. send its output to node j+1 (or to the virtual output processor).
//
// Under the overlap model the three operations of a node proceed in
// parallel across datasets, constrained by one incoming transfer, one
// computation and one outgoing transfer at a time (the one-port model of
// Section 3.2). A transfer occupies the link between the two nodes, so the
// "out" resource of node j and the "in" resource of node j+1 are one and
// the same edge; each edge and each CPU is therefore a unit-capacity
// resource used once per dataset.
//
// Under the no-overlap model a node's processor serializes receive, compute
// and send of each dataset in program order, and a transfer is a rendezvous
// that occupies the sending and the receiving processor simultaneously for
// volume/bandwidth time units. This is exactly the single-threaded
// semantics behind Equation 4: every transfer is counted in the cycle time
// of both endpoints but takes wall-clock time once, which also keeps the
// latency (Equation 5) identical across the two models.
//
// Because the execution graph of an interval mapping is a linear chain and
// operations are issued in dataset order, the ASAP schedule is computed by
// a direct recurrence over (dataset, node) rather than a general event
// queue; this is exact and O(datasets x nodes).
package sim

import (
	"fmt"
	"math"

	"repro/internal/mapping"
	"repro/internal/pipeline"
)

// Result reports the measured behaviour of one application.
type Result struct {
	// FirstLatency is the completion time of dataset 0, which enters a
	// fully idle pipeline: it must equal Equation 5's latency.
	FirstLatency float64
	// SteadyPeriod is the averaged inter-departure time of the last half
	// of the simulated datasets: it converges to the analytic period.
	SteadyPeriod float64
	// Departures[t] is the time dataset t's result reaches the virtual
	// output processor.
	Departures []float64
	// MaxLatency is the largest completion-minus-release time over all
	// datasets. Releases all happen at time 0 under saturation, so this
	// grows linearly; it is reported for completeness.
	MaxLatency float64
}

// Options configures a simulation run.
type Options struct {
	// Datasets is the number of data sets pushed through each
	// application. Defaults to 10*(nodes+2)+50, enough for the ASAP
	// schedule to reach its steady state.
	Datasets int
	// ReleaseInterval spaces out arrivals: data set t becomes available at
	// the virtual input processor at time t * ReleaseInterval. The default
	// 0 saturates the pipeline (all data sets available at time 0), which
	// is how the steady-state period is measured; a large spacing makes
	// every data set traverse an empty pipeline, which exposes per-path
	// latencies.
	ReleaseInterval float64
}

// Simulate runs every application of the instance under mapping m and the
// given communication model. Applications do not interact (no processor is
// shared), so they are simulated independently.
func Simulate(inst *pipeline.Instance, m *mapping.Mapping, model pipeline.CommModel, opt Options) ([]Result, error) {
	if err := m.Validate(inst, mapping.Interval); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	out := make([]Result, len(inst.Apps))
	for a := range inst.Apps {
		out[a] = simulateApp(inst, m, a, model, opt)
	}
	return out, nil
}

// nodeParams precomputes, for each node of one application's chain, its
// compute time and the transfer times of its input and output edges.
type nodeParams struct {
	inTime   float64 // duration of the transfer on the node's input edge
	compTime float64
	outTime  float64 // duration of the transfer on the node's output edge
}

func appNodes(inst *pipeline.Instance, m *mapping.Mapping, a int) []nodeParams {
	app := &inst.Apps[a]
	ivs := m.Apps[a].Intervals
	nodes := make([]nodeParams, len(ivs))
	for j, iv := range ivs {
		speed := inst.Platform.Processors[iv.Proc].Speeds[iv.Mode]
		nodes[j].compTime = app.IntervalWork(iv.From, iv.To) / speed
		inVol := app.InputSize(iv.From)
		if j == 0 {
			nodes[j].inTime = div(inVol, inst.Platform.InLink(a, iv.Proc))
		} else {
			nodes[j].inTime = div(inVol, inst.Platform.Link(ivs[j-1].Proc, iv.Proc))
		}
		outVol := app.OutputSize(iv.To)
		if j == len(ivs)-1 {
			nodes[j].outTime = div(outVol, inst.Platform.OutLink(a, iv.Proc))
		} else {
			nodes[j].outTime = div(outVol, inst.Platform.Link(iv.Proc, ivs[j+1].Proc))
		}
	}
	return nodes
}

func div(vol, bw float64) float64 {
	if vol == 0 {
		return 0
	}
	return vol / bw
}

func simulateApp(inst *pipeline.Instance, m *mapping.Mapping, a int, model pipeline.CommModel, opt Options) Result {
	nodes := appNodes(inst, m, a)
	nn := len(nodes)
	k := opt.Datasets
	if k <= 0 {
		k = 10*(nn+2) + 50
	}
	departures := make([]float64, k)
	switch model {
	case pipeline.Overlap:
		simulateOverlap(nodes, departures, opt.ReleaseInterval)
	default:
		simulateNoOverlap(nodes, departures, opt.ReleaseInterval)
	}
	res := Result{Departures: departures, FirstLatency: departures[0]}
	for t, d := range departures {
		res.MaxLatency = math.Max(res.MaxLatency, d-float64(t)*opt.ReleaseInterval)
	}
	if k >= 2 {
		half := k / 2
		res.SteadyPeriod = (departures[k-1] - departures[half-1]) / float64(k-half)
	}
	return res
}

// simulateOverlap computes the ASAP schedule under the overlap model.
// Resources: edge j (input of node j; edge nn is the final output edge) and
// cpu j, each a unit-capacity FIFO resource.
func simulateOverlap(nodes []nodeParams, departures []float64, release float64) {
	nn := len(nodes)
	edgeFree := make([]float64, nn+1) // edge j feeds node j; edge nn feeds P_out
	cpuFree := make([]float64, nn)
	for t := range departures {
		// Dataset t is available at the virtual input processor at
		// t * release (0 under saturation).
		ready := float64(t) * release
		for j := 0; j < nn; j++ {
			// Input transfer on edge j.
			start := math.Max(ready, edgeFree[j])
			end := start + nodes[j].inTime
			edgeFree[j] = end
			// Computation.
			cstart := math.Max(end, cpuFree[j])
			cend := cstart + nodes[j].compTime
			cpuFree[j] = cend
			ready = cend
		}
		// Final transfer to the virtual output processor.
		start := math.Max(ready, edgeFree[nn])
		end := start + nodes[nn-1].outTime
		edgeFree[nn] = end
		departures[t] = end
	}
}

// simulateNoOverlap computes the ASAP schedule under the no-overlap model:
// each node's processor executes receive(t), compute(t), send(t) in program
// order, and each inter-node transfer is a rendezvous holding both endpoint
// processors. The virtual input/output processors are always ready, so the
// first receive and the last send only hold the real endpoint.
//
// The sequential scan below is the exact ASAP schedule: datasets are
// processed in order and, within a dataset, operations in chain order,
// which is precisely each processor's program order.
func simulateNoOverlap(nodes []nodeParams, departures []float64, release float64) {
	nn := len(nodes)
	free := make([]float64, nn)
	for t := range departures {
		for j := 0; j < nn; j++ {
			// Receive: joint with node j-1 (its send of dataset t), or
			// with the virtual input (which holds data set t from
			// t * release on) for j = 0.
			start := free[j]
			if j == 0 {
				start = math.Max(start, float64(t)*release)
			} else {
				start = math.Max(start, free[j-1])
			}
			end := start + nodes[j].inTime
			if j > 0 {
				free[j-1] = end
			}
			// Compute.
			end += nodes[j].compTime
			free[j] = end
		}
		// Send of the last node to the always-ready virtual output.
		departures[t] = free[nn-1] + nodes[nn-1].outTime
		free[nn-1] = departures[t]
	}
}

// Verify simulates mapping m and compares the measured first-dataset
// latency and steady-state period of every application against the analytic
// formulas, returning a descriptive error on any disagreement beyond tol.
func Verify(inst *pipeline.Instance, m *mapping.Mapping, model pipeline.CommModel, tol float64) error {
	results, err := Simulate(inst, m, model, Options{})
	if err != nil {
		return err
	}
	for a, r := range results {
		wantT := mapping.AppPeriod(inst, m, a, model)
		wantL := mapping.AppLatency(inst, m, a)
		if math.Abs(r.FirstLatency-wantL) > tol*math.Max(1, wantL) {
			return fmt.Errorf("sim: app %d latency: measured %g, analytic %g (model %v)", a, r.FirstLatency, wantL, model)
		}
		if math.Abs(r.SteadyPeriod-wantT) > tol*math.Max(1, wantT) {
			return fmt.Errorf("sim: app %d period: measured %g, analytic %g (model %v)", a, r.SteadyPeriod, wantT, model)
		}
	}
	return nil
}
