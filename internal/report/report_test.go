package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.Add("alpha", "1")
	tb.Add("beta-longer", "22")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// The value column starts at the same offset on every data row.
	h := strings.Index(lines[1], "value")
	r1 := strings.Index(lines[3], "1")
	r2 := strings.Index(lines[4], "22")
	if h < 0 || r1 != h || r2 != h {
		t.Errorf("columns not aligned: header@%d row1@%d row2@%d\n%s", h, r1, r2, out)
	}
}

func TestAddf(t *testing.T) {
	tb := New("", "a", "b", "c", "d")
	tb.Addf("s", 1.5, 7, int64(9))
	if tb.Rows[0][0] != "s" || tb.Rows[0][1] != "1.5" || tb.Rows[0][2] != "7" || tb.Rows[0][3] != "9" {
		t.Errorf("Addf row = %v", tb.Rows[0])
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "x", "y")
	tb.Add("1", "2")
	tb.Add("3", "4,4") // needs quoting
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,\"4,4\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFmt(t *testing.T) {
	cases := []struct {
		x    float64
		want string
	}{
		{1, "1"},
		{1.5, "1.5"},
		{2.75, "2.75"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{math.NaN(), "nan"},
		{1234567, "1234567"},
		{1.0 / 3.0, "0.3333"},
	}
	for _, c := range cases {
		if got := Fmt(c.x); got != c.want {
			t.Errorf("Fmt(%g) = %q, want %q", c.x, got, c.want)
		}
	}
}

func TestRenderUntitledAndRagged(t *testing.T) {
	tb := New("", "a")
	tb.Add("1", "extra")
	var buf bytes.Buffer
	tb.Render(&buf)
	if strings.Contains(buf.String(), "==") {
		t.Error("unexpected title banner")
	}
	if !strings.Contains(buf.String(), "extra") {
		t.Error("extra cell dropped")
	}
}
