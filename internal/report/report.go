// Package report renders the experiment harness output: aligned text tables
// (mirroring the paper's Tables 1-2 and the derived measurement tables) and
// CSV for downstream plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row; missing cells render empty, extras are kept.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted values: strings pass through, float64
// are compacted with Fmt, ints printed plainly, everything else via %v.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = Fmt(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned text rendering to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(row []string) {
		var sb strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	writeRow(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total+2*(cols-1)))
	for _, r := range t.Rows {
		writeRow(r)
	}
}

// CSV writes the table (headers then rows) as CSV.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fmt renders a float compactly: integers without decimals, infinities as
// "inf", otherwise up to four significant decimals.
func Fmt(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return "inf"
	case math.IsInf(x, -1):
		return "-inf"
	case math.IsNaN(x):
		return "nan"
	//lint:allow floatcmp integrality test for formatting; tolerance would print 0.99999999 as 1
	case x == math.Trunc(x) && math.Abs(x) < 1e15:
		return fmt.Sprintf("%.0f", x)
	default:
		return fmt.Sprintf("%.4g", x)
	}
}
