// Command pipebench regenerates the paper's reproducible artifacts (see
// EXPERIMENTS.md): the Section 2 motivating example, the
// Table 1 and Table 2 complexity maps, the simulator validation of
// Equations 3-5, the period/energy Pareto frontier, the NP-hardness gadget
// equivalences, and the polynomial/exponential scaling split.
//
// Usage:
//
//	pipebench -exp all            # everything (default)
//	pipebench -exp fig1           # one experiment:
//	                              #   fig1 table1 table2 sim pareto npc scaling diff
//	pipebench -seed 7             # reseed the randomized validations
//	pipebench -exp diff -instances 1080
//	                              # differential verification corpus size
//	pipebench -exp benchdiff      # fresh corpus timing vs BENCH_solver.json,
//	                              # fail on >2x regression of any variant
//	pipebench -exp chaos -instances 36
//	                              # fault-injection chains over the corpus:
//	                              # re-solve p50/p99, degraded rate, shed rate
//	pipebench -exp load           # in-process gateway cluster under zipf and
//	                              # uniform batch traffic: throughput, p50/p99,
//	                              # cache-policy duel -> BENCH_service.json
//
// pipebench exits non-zero if any paper claim failed to reproduce.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pipebench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipebench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: all | fig1 | table1 | table2 | sim | pareto | npc | extensions | scaling | diff | benchdiff | chaos | load")
	seed := fs.Int64("seed", 1, "seed for the randomized validations")
	trials := fs.Int("trials", 60, "trials for the simulator validation")
	instances := fs.Int("instances", 0, "scenarios for the differential check (0 = six combination windows)")
	benchFile := fs.String("bench-file", "BENCH_solver.json", "committed baseline for -exp benchdiff")
	benchFactor := fs.Float64("bench-factor", 2.0, "per-variant ns/op regression tolerance for -exp benchdiff")
	loadBatches := fs.Int("load-batches", 0, "batches per (traffic, policy) measurement for -exp load (0 = 100)")
	serviceFile := fs.String("service-file", "BENCH_service.json", "output artifact for -exp load")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *exp {
	case "all":
		return experiments.All(stdout, *seed)
	case "fig1":
		return experiments.Fig1(stdout)
	case "table1":
		return experiments.Table1(stdout, *seed)
	case "table2":
		return experiments.Table2(stdout, *seed)
	case "sim":
		return experiments.SimValidation(stdout, *seed, *trials)
	case "pareto":
		return experiments.Pareto(stdout)
	case "npc":
		return experiments.NPC(stdout)
	case "extensions":
		return experiments.Extensions(stdout, *seed)
	case "scaling":
		return experiments.Scaling(stdout, *seed)
	case "diff":
		return experiments.Diff(stdout, *seed, *instances)
	case "benchdiff":
		return experiments.BenchDiff(stdout, *benchFile, *benchFactor)
	case "chaos":
		return experiments.Chaos(stdout, *seed, *instances)
	case "load":
		return experiments.Load(stdout, *seed, *loadBatches, *serviceFile)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}
