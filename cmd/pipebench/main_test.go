package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestPipebenchFig1(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig1"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2.75") {
		t.Errorf("fig1 output missing latency 2.75:\n%s", out.String())
	}
}

func TestPipebenchPareto(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "pareto"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "laptop") {
		t.Errorf("pareto output missing laptop problem:\n%s", out.String())
	}
}

func TestPipebenchSim(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "sim", "-trials", "10", "-seed", "3"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
}

func TestPipebenchDiff(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "diff", "-instances", "36", "-seed", "2"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "variant combinations covered") {
		t.Errorf("diff output missing coverage row:\n%s", out.String())
	}
}

func TestPipebenchUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}, new(bytes.Buffer)); err == nil {
		t.Error("unknown experiment accepted")
	}
}
