// Command pipelint runs the repo-specific static analyzer suite
// (internal/lint) over the module: five analyzers enforcing the solver's
// safety invariants — memo-aliasing, context flow, error classification,
// tolerant float comparison and (seed,index) determinism. See
// internal/lint's package documentation for what each analyzer guards and
// how to suppress a finding with a justification.
//
// Usage:
//
//	pipelint [-list] [-C dir] [packages]
//
// packages default to ./... and use the go tool's pattern syntax; -C
// changes into dir (the module root) first. The exit status is 0 when the
// tree is clean, 1 on findings, 2 on usage or load errors. Run it from
// the module root, e.g.:
//
//	go run ./cmd/pipelint ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", ".", "module root directory to lint from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pipelint [-list] [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipelint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipelint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pipelint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
