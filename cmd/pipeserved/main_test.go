package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// freePort grabs an ephemeral port for the test server.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestServeSolveAndGracefulShutdown boots the real daemon, serves one
// solve over TCP, and shuts it down with SIGTERM — the full lifecycle.
func TestServeSolveAndGracefulShutdown(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-cache-cap", "64", "-timeout", "5s", "-drain", "2s"})
	}()

	// Wait for the listener.
	url := "http://" + addr
	var up bool
	for i := 0; i < 100; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !up {
		t.Fatal("server did not come up")
	}

	inst := pipeline.MotivatingExample()
	var buf bytes.Buffer
	if err := pipeline.EncodeJSON(&buf, &inst); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"instance": %s, "request": {"objective": "energy", "periodBound": 2}}`, buf.String())
	resp, err := http.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, payload)
	}
	if !strings.Contains(string(payload), `"value": 46`) {
		t.Errorf("solve response missing the paper's 46: %s", payload)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down within the drain budget")
	}
}

// TestBadFlags pins the non-zero exit path.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
