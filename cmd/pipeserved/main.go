// Command pipeserved runs the solver as a long-running HTTP JSON service
// (see internal/server for the endpoints and document schemas):
//
//	pipeserved [-addr :8080] [-workers 0] [-cache-cap 65536] [-timeout 30s]
//
//	POST /v1/solve     one request         -> one result
//	POST /v1/batch     pipebatch job file  -> per-job results + stats
//	POST /v1/pareto    instance + rule     -> period/energy frontier
//	POST /v1/simulate  instance + mapping  -> measured vs analytic metrics
//	POST /v1/resolve   instance + request + fault event -> re-solve + diff
//	GET  /healthz      liveness probe
//	GET  /readyz       readiness probe (503 while draining)
//	GET  /stats        cache/method/in-flight/shed counters
//
// Flags:
//
//	-addr       listen address (default :8080)
//	-workers    solver worker pool per request (0 = GOMAXPROCS)
//	-cache-cap  entry cap of the shared memo cache (0 = unbounded,
//	            default 65536); the cache is a sharded LRU that lives for
//	            the whole process, so repeated and overlapping requests
//	            are answered from memory
//	-cache-policy  replacement policy of the bounded cache: adaptive
//	            (default; set-duels LRU against cost-aware eviction and
//	            steers follower shards to the winner), lru, or cost
//	-timeout    per-request wall-clock budget (0 = none, default 30s);
//	            an expired budget cancels the request's remaining solver
//	            jobs and reports 504
//	-max-body   request body cap in bytes (default 8 MiB); an oversized
//	            body is rejected with a structured 413 JSON error
//
// Resilience flags (see internal/server):
//
//	-max-in-flight      solver requests running concurrently (0 = no
//	                    admission control)
//	-max-queue          solver requests allowed to wait for admission;
//	                    beyond it requests are shed with 429 + Retry-After
//	-solve-budget       per-job degraded-mode budget (0 = none): a job
//	                    whose exact solve outlives it answers from the
//	                    heuristic path, tagged "degraded", instead of 504
//	-breaker-threshold  consecutive 504s on one endpoint that trip its
//	                    circuit breaker (0 = breakers off)
//	-breaker-cooldown   how long a tripped breaker sheds before probing
//
// A quick session against the Section 2 instance:
//
//	pipegen -preset fig1 > fig1.json
//	pipeserved -addr :8080 &
//	curl -s localhost:8080/v1/solve -d '{"instance": '"$(cat fig1.json)"',
//	  "request": {"objective": "energy", "periodBound": 2}}'
//	# -> {"value": 46, "method": "...", "period": 2, ...}
//	curl -s localhost:8080/stats
//
// pipeserved shuts down gracefully on SIGINT/SIGTERM: /readyz flips to
// 503 so load balancers drain the instance, the listener closes,
// in-flight requests get a drain budget, and then the process exits.
// /healthz stays 200 throughout — restarting a draining process would
// kill exactly the requests the drain protects.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pipeserved:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pipeserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "solver worker pool per request (0 = GOMAXPROCS)")
	cacheCap := fs.Int("cache-cap", 65536, "memo cache entry cap (0 = unbounded)")
	cachePolicy := fs.String("cache-policy", "adaptive", "cache replacement policy: adaptive, lru or cost")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request budget (0 = none)")
	maxBody := fs.Int64("max-body", 0, "request body cap in bytes (0 = 8 MiB default, negative = unlimited)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain budget for in-flight requests")
	maxInFlight := fs.Int("max-in-flight", 0, "concurrent solver requests admitted (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 0, "solver requests allowed to queue for admission before shedding")
	solveBudget := fs.Duration("solve-budget", 0, "per-job degraded-mode budget (0 = none)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive 504s tripping an endpoint's circuit breaker (0 = off)")
	breakerCooldown := fs.Duration("breaker-cooldown", server.DefaultBreakerCooldown, "cooldown of a tripped circuit breaker")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := batch.ParsePolicy(*cachePolicy)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "pipeserved: ", log.LstdFlags)
	srv := server.New(server.Config{
		Workers:          *workers,
		CacheCap:         *cacheCap,
		CachePolicy:      policy,
		Timeout:          *timeout,
		MaxBody:          *maxBody,
		Logger:           logger,
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		SolveBudget:      *solveBudget,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (workers=%d cache-cap=%d timeout=%v)",
			*addr, *workers, *cacheCap, *timeout)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	logger.Printf("shutting down, draining in-flight requests (budget %v)", *drain)
	srv.SetDraining(true) // /readyz answers 503 from here on; /healthz stays up
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("bye")
	return nil
}
