package main

import (
	"bytes"
	"testing"

	"repro/internal/pipeline"
)

func gen(t *testing.T, args ...string) pipeline.Instance {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("args %v: %v", args, err)
	}
	inst, err := pipeline.DecodeJSON(&out)
	if err != nil {
		t.Fatalf("generated instance invalid: %v", err)
	}
	return inst
}

func TestPipegenRandom(t *testing.T) {
	inst := gen(t, "-apps", "3", "-stages", "2:4", "-procs", "9", "-modes", "2", "-class", "het", "-seed", "5")
	if len(inst.Apps) != 3 || inst.Platform.NumProcessors() != 9 {
		t.Errorf("wrong shape: %d apps, %d procs", len(inst.Apps), inst.Platform.NumProcessors())
	}
	for _, app := range inst.Apps {
		if n := app.NumStages(); n < 2 || n > 4 {
			t.Errorf("stage count %d out of range", n)
		}
	}
}

func TestPipegenDeterministic(t *testing.T) {
	a := gen(t, "-seed", "9")
	b := gen(t, "-seed", "9")
	if a.Apps[0].Stages[0].Work != b.Apps[0].Stages[0].Work {
		t.Error("same seed produced different instances")
	}
}

func TestPipegenPresets(t *testing.T) {
	fig1 := gen(t, "-preset", "fig1")
	if fig1.TotalStages() != 7 {
		t.Errorf("fig1 preset has %d stages, want 7", fig1.TotalStages())
	}
	streaming := gen(t, "-preset", "streaming", "-procs", "6")
	if len(streaming.Apps) != 3 || streaming.Platform.NumProcessors() != 6 {
		t.Error("streaming preset shape wrong")
	}
}

func TestPipegenNoComm(t *testing.T) {
	inst := gen(t, "-max-data", "0", "-class", "hom")
	for _, app := range inst.Apps {
		if app.In != 0 {
			t.Error("input data generated despite -max-data 0")
		}
		for _, st := range app.Stages {
			if st.Out != 0 {
				t.Error("communication generated despite -max-data 0")
			}
		}
	}
}

func TestPipegenErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-class", "bogus"},
		{"-preset", "bogus"},
		{"-stages", "x:y"},
		{"-stages", "5:2"},
		{"-apps", "0"},
	} {
		if err := run(args, new(bytes.Buffer)); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
