// Command pipegen generates random problem instances in the JSON schema
// consumed by pipemap and pipesim, for reproducible experiment setups.
//
// Usage:
//
//	pipegen -apps 3 -stages 4:8 -procs 12 -modes 3 -class com-hom -seed 7 > problem.json
//	pipegen -preset streaming -procs 10 > center.json
//	pipegen -preset fig1 > fig1.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pipegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipegen", flag.ContinueOnError)
	preset := fs.String("preset", "", "preset instance: fig1 | streaming (overrides random generation)")
	apps := fs.Int("apps", 2, "number of applications")
	stages := fs.String("stages", "2:5", "stage count range min:max")
	procs := fs.Int("procs", 8, "number of processors")
	modes := fs.Int("modes", 3, "DVFS modes per processor")
	class := fs.String("class", "com-hom", "platform class: hom | com-hom | het")
	maxWork := fs.Int("max-work", 10, "max stage work")
	maxData := fs.Int("max-data", 5, "max data size (0 = no communication)")
	maxSpeed := fs.Int("max-speed", 8, "max processor speed")
	maxBW := fs.Int("max-bandwidth", 4, "max link bandwidth (het class)")
	bandwidth := fs.Float64("bandwidth", 1, "uniform bandwidth (hom classes)")
	static := fs.Float64("static", 0, "static energy per enrolled processor")
	alpha := fs.Float64("alpha", 2, "dynamic energy exponent")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *preset {
	case "fig1":
		inst := pipeline.MotivatingExample()
		return pipeline.EncodeJSON(stdout, &inst)
	case "streaming":
		inst := workload.StreamingCenter(*procs)
		return pipeline.EncodeJSON(stdout, &inst)
	case "":
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}

	parts := strings.SplitN(*stages, ":", 2)
	minStages, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad -stages %q: %w", *stages, err)
	}
	maxStages := minStages
	if len(parts) == 2 {
		if maxStages, err = strconv.Atoi(parts[1]); err != nil {
			return fmt.Errorf("bad -stages %q: %w", *stages, err)
		}
	}
	cfg := workload.Config{
		Apps: *apps, MinStages: minStages, MaxStages: maxStages,
		Procs: *procs, Modes: *modes,
		MaxWork: *maxWork, MaxData: *maxData, MaxSpeed: *maxSpeed, MaxBandwidth: *maxBW,
		Bandwidth: *bandwidth,
		Energy:    pipeline.EnergyModel{Static: *static, Alpha: *alpha},
	}
	switch *class {
	case "hom":
		cfg.Class = pipeline.FullyHomogeneous
	case "com-hom":
		cfg.Class = pipeline.CommHomogeneous
	case "het":
		cfg.Class = pipeline.FullyHeterogeneous
	default:
		return fmt.Errorf("unknown class %q", *class)
	}
	inst, err := workload.Instance(rand.New(rand.NewSource(*seed)), cfg)
	if err != nil {
		return err
	}
	return pipeline.EncodeJSON(stdout, &inst)
}
