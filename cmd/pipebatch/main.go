// Command pipebatch solves many mapping problems in one shot on the
// concurrent batch engine (repro.SolveBatch): it reads a JSON job file,
// fans the jobs across a bounded worker pool with duplicate-job
// memoization, and emits one JSON document with the per-job results (in
// input order) and the aggregate batch statistics.
//
// Usage:
//
//	pipebatch -in jobs.json [-workers 8] [-no-dedup]
//
// The job file holds an optional default instance plus a list of jobs;
// each job may carry its own instance (overriding the default) and a
// request:
//
//	{
//	  "instance": { ... pipegen/pipemap instance schema ... },
//	  "jobs": [
//	    {"request": {"rule": "interval", "model": "overlap",
//	                 "objective": "energy", "periodBound": 2}},
//	    {"request": {"rule": "interval", "objective": "period"}},
//	    {"instance": { ... }, "request": {"objective": "latency",
//	                                      "latencyBounds": [3, 4]}}
//	  ]
//	}
//
// Request fields: rule (one-to-one | interval, default interval), model
// (overlap | no-overlap, default overlap), objective (period | latency |
// energy, default period), periodBound / latencyBound (global weighted
// thresholds expanded to per-application bounds as X / W_a),
// periodBounds / latencyBounds (explicit per-application arrays, which
// win over the global forms), energyBudget, seed, exactLimit, heurIters,
// heurRestarts.
//
// The output document mirrors the job order:
//
//	{
//	  "results": [
//	    {"value": 46, "method": "...", "optimal": true,
//	     "period": 2, "latency": 5, "energy": 46, "mapping": {...}},
//	    {"error": "core: no mapping satisfies the bounds"}
//	  ],
//	  "stats": {"jobs": 2, "cacheHits": 0, "errors": 1,
//	            "wallMs": 1.62, "methods": {"...": 1}}
//	}
//
// The document schemas live in internal/jobspec and are shared with the
// pipeserved HTTP service: a pipebatch job file can be POSTed verbatim to
// its /v1/batch endpoint. Non-finite result values are rendered as null.
//
// pipebatch exits non-zero on malformed input; per-job solver failures are
// reported in the results array and do not abort the batch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/batch"
	"repro/internal/jobspec"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pipebatch:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipebatch", flag.ContinueOnError)
	in := fs.String("in", "", "job file JSON (default: stdin)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	noDedup := fs.Bool("no-dedup", false, "disable duplicate-job memoization")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	doc, err := jobspec.DecodeFile(r)
	if err != nil {
		return err
	}
	jobs, err := doc.BatchJobs()
	if err != nil {
		return err
	}

	results, stats := batch.Solve(jobs, batch.Options{Workers: *workers, NoDedup: *noDedup})
	out, err := jobspec.EncodeOutput(results, stats)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
