// Command pipebatch solves many mapping problems in one shot on the
// concurrent batch engine (repro.SolveBatch): it reads a JSON job file,
// fans the jobs across a bounded worker pool with duplicate-job
// memoization, and emits one JSON document with the per-job results (in
// input order) and the aggregate batch statistics.
//
// Usage:
//
//	pipebatch -in jobs.json [-workers 8] [-no-dedup]
//	pipebatch -in jobs.json -server http://host:8080 [-retries 5] [-retry-base 200ms] [-http-timeout 60s]
//
// The job file holds an optional default instance plus a list of jobs;
// each job may carry its own instance (overriding the default) and a
// request:
//
//	{
//	  "instance": { ... pipegen/pipemap instance schema ... },
//	  "jobs": [
//	    {"request": {"rule": "interval", "model": "overlap",
//	                 "objective": "energy", "periodBound": 2}},
//	    {"request": {"rule": "interval", "objective": "period"}},
//	    {"instance": { ... }, "request": {"objective": "latency",
//	                                      "latencyBounds": [3, 4]}}
//	  ]
//	}
//
// Request fields: rule (one-to-one | interval, default interval), model
// (overlap | no-overlap, default overlap), objective (period | latency |
// energy, default period), periodBound / latencyBound (global weighted
// thresholds expanded to per-application bounds as X / W_a),
// periodBounds / latencyBounds (explicit per-application arrays, which
// win over the global forms), energyBudget, seed, exactLimit, heurIters,
// heurRestarts.
//
// The output document mirrors the job order:
//
//	{
//	  "results": [
//	    {"value": 46, "method": "...", "optimal": true,
//	     "period": 2, "latency": 5, "energy": 46, "mapping": {...}},
//	    {"error": "core: no mapping satisfies the bounds"}
//	  ],
//	  "stats": {"jobs": 2, "cacheHits": 0, "errors": 1,
//	            "wallMs": 1.62, "methods": {"...": 1}}
//	}
//
// The document schemas live in internal/jobspec and are shared with the
// pipeserved HTTP service: a pipebatch job file can be POSTed verbatim to
// its /v1/batch endpoint. Non-finite result values are rendered as null.
//
// With -server, pipebatch does exactly that instead of solving locally:
// it POSTs the job file to <server>/v1/batch and prints the response.
// A shed response (429 or 503, the service's admission control or an
// open circuit breaker) is retried with jittered exponential backoff —
// honoring the server's Retry-After header (both RFC 7231 forms,
// delta-seconds and HTTP-date) when it asks for a longer wait — up to
// -retries times before giving up; any other non-200 is a hard error.
// Transport failures, including a hung connection hitting the
// -http-timeout per-attempt deadline, retry on the same schedule: each
// attempt is bounded, so a wedged server can never stall the retry loop
// forever.
//
// pipebatch exits non-zero on malformed input; per-job solver failures are
// reported in the results array and do not abort the batch.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/gateway"
	"repro/internal/jobspec"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pipebatch:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipebatch", flag.ContinueOnError)
	in := fs.String("in", "", "job file JSON (default: stdin)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	noDedup := fs.Bool("no-dedup", false, "disable duplicate-job memoization")
	serverURL := fs.String("server", "", "POST the job file to this pipeserved base URL instead of solving locally")
	retries := fs.Int("retries", 5, "retries after a shed (429/503) or transport failure in -server mode")
	retryBase := fs.Duration("retry-base", 200*time.Millisecond, "base delay of the jittered exponential backoff")
	httpTimeout := fs.Duration("http-timeout", gateway.DefaultClientTimeout,
		"per-attempt HTTP deadline in -server mode (default twice the server's own 30s request deadline)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if *serverURL != "" {
		return runRemote(stdout, *serverURL, raw, *retries, *retryBase, gateway.NewClient(*httpTimeout))
	}
	doc, err := jobspec.DecodeFile(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	jobs, err := doc.BatchJobs()
	if err != nil {
		return err
	}

	results, stats := batch.Solve(jobs, batch.Options{Workers: *workers, NoDedup: *noDedup})
	out, err := jobspec.EncodeOutput(results, stats)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runRemote POSTs the raw job file to <base>/v1/batch and streams the
// response document to stdout. Shed responses (429/503) and transport
// failures — including attempts cut off by the client's own timeout —
// are retried with jittered exponential backoff; a Retry-After header
// stretches the wait when the server asks for more. The client comes
// from the shared gateway plumbing, so every attempt has a deadline.
func runRemote(stdout io.Writer, base string, body []byte, retries int, retryBase time.Duration, client *http.Client) error {
	url := strings.TrimSuffix(base, "/") + "/v1/batch"
	// The jitter decorrelates clients retrying after a shared shed; it
	// has no bearing on solver results, which the server computes.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var lastErr error
	for attempt := 0; ; attempt++ {
		retryAfter, err := postBatch(stdout, client, url, body)
		if err == nil {
			return nil
		}
		lastErr = err
		if !isRetryable(err) {
			return err
		}
		if attempt >= retries {
			return fmt.Errorf("giving up after %d attempts: %w", attempt+1, lastErr)
		}
		delay := backoffDelay(retryBase, attempt, rng)
		if retryAfter > delay {
			delay = retryAfter
		}
		fmt.Fprintf(os.Stderr, "pipebatch: attempt %d: %v; retrying in %v\n", attempt+1, err, delay.Round(time.Millisecond))
		time.Sleep(delay)
	}
}

// shedError marks a retryable failure: the server shed the request (429
// admission overflow or 503 open circuit) or the transport failed.
type shedError struct{ err error }

func (e *shedError) Error() string { return e.err.Error() }
func (e *shedError) Unwrap() error { return e.err }

func isRetryable(err error) bool {
	var se *shedError
	return errors.As(err, &se)
}

// postBatch performs one POST on the timed client. On a shed it returns
// the server's Retry-After — either RFC 7231 form, parsed by the shared
// gateway helper — as a duration (zero when absent or malformed)
// alongside the retryable error; on any other failure retryAfter is zero.
func postBatch(stdout io.Writer, client *http.Client, url string, body []byte) (retryAfter time.Duration, err error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		// Transport failure or the per-attempt timeout: both retryable —
		// the server may be restarting, or this attempt raced a stall.
		return 0, &shedError{fmt.Errorf("posting batch: %w", err)}
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, &shedError{fmt.Errorf("reading response: %w", err)}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		_, err := stdout.Write(out)
		return 0, err
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		retryAfter = gateway.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return retryAfter, &shedError{fmt.Errorf("server shed the batch: %s: %s", resp.Status, strings.TrimSpace(string(out)))}
	default:
		return 0, fmt.Errorf("server answered %s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
}

// backoffDelay is the jittered exponential schedule: the nth retry waits
// a uniformly random duration in [base·2ⁿ/2, base·2ⁿ], capped at 10s.
func backoffDelay(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base << uint(attempt)
	const maxDelay = 10 * time.Second
	if d > maxDelay || d <= 0 {
		d = maxDelay
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}
