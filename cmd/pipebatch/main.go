// Command pipebatch solves many mapping problems in one shot on the
// concurrent batch engine (repro.SolveBatch): it reads a JSON job file,
// fans the jobs across a bounded worker pool with duplicate-job
// memoization, and emits one JSON document with the per-job results (in
// input order) and the aggregate batch statistics.
//
// Usage:
//
//	pipebatch -in jobs.json [-workers 8] [-no-dedup]
//
// The job file holds an optional default instance plus a list of jobs;
// each job may carry its own instance (overriding the default) and a
// request:
//
//	{
//	  "instance": { ... pipegen/pipemap instance schema ... },
//	  "jobs": [
//	    {"request": {"rule": "interval", "model": "overlap",
//	                 "objective": "energy", "periodBound": 2}},
//	    {"request": {"rule": "interval", "objective": "period"}},
//	    {"instance": { ... }, "request": {"objective": "latency",
//	                                      "latencyBounds": [3, 4]}}
//	  ]
//	}
//
// Request fields: rule (one-to-one | interval, default interval), model
// (overlap | no-overlap, default overlap), objective (period | latency |
// energy, default period), periodBound / latencyBound (global weighted
// thresholds expanded to per-application bounds as X / W_a),
// periodBounds / latencyBounds (explicit per-application arrays, which
// win over the global forms), energyBudget, seed, exactLimit, heurIters,
// heurRestarts.
//
// The output document mirrors the job order:
//
//	{
//	  "results": [
//	    {"value": 46, "method": "...", "optimal": true,
//	     "period": 2, "latency": 5, "energy": 46, "mapping": {...}},
//	    {"error": "core: no mapping satisfies the bounds"}
//	  ],
//	  "stats": {"jobs": 2, "cacheHits": 0, "errors": 1,
//	            "wallMs": 1.62, "methods": {"...": 1}}
//	}
//
// pipebatch exits non-zero on malformed input; per-job solver failures are
// reported in the results array and do not abort the batch.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pipebatch:", err)
		os.Exit(1)
	}
}

// jobFileJSON is the top-level input schema.
type jobFileJSON struct {
	// Instance is the default instance, used by jobs without their own.
	Instance json.RawMessage `json:"instance,omitempty"`
	Jobs     []jobJSON       `json:"jobs"`
}

type jobJSON struct {
	Instance json.RawMessage `json:"instance,omitempty"`
	Request  requestJSON     `json:"request"`
}

type requestJSON struct {
	Rule          string    `json:"rule,omitempty"`
	Model         string    `json:"model,omitempty"`
	Objective     string    `json:"objective,omitempty"`
	PeriodBound   float64   `json:"periodBound,omitempty"`
	LatencyBound  float64   `json:"latencyBound,omitempty"`
	PeriodBounds  []float64 `json:"periodBounds,omitempty"`
	LatencyBounds []float64 `json:"latencyBounds,omitempty"`
	EnergyBudget  float64   `json:"energyBudget,omitempty"`
	Seed          int64     `json:"seed,omitempty"`
	ExactLimit    int64     `json:"exactLimit,omitempty"`
	HeurIters     int       `json:"heurIters,omitempty"`
	HeurRestarts  int       `json:"heurRestarts,omitempty"`
}

// resultJSON is one output slot; Error excludes the solver fields.
type resultJSON struct {
	Value   float64          `json:"value,omitempty"`
	Method  string           `json:"method,omitempty"`
	Optimal bool             `json:"optimal,omitempty"`
	Period  float64          `json:"period,omitempty"`
	Latency float64          `json:"latency,omitempty"`
	Energy  float64          `json:"energy,omitempty"`
	Mapping *json.RawMessage `json:"mapping,omitempty"`
	Error   string           `json:"error,omitempty"`
}

type statsJSON struct {
	Jobs      int            `json:"jobs"`
	CacheHits int            `json:"cacheHits"`
	Errors    int            `json:"errors"`
	WallMs    float64        `json:"wallMs"`
	Methods   map[string]int `json:"methods"`
}

type outputJSON struct {
	Results []resultJSON `json:"results"`
	Stats   statsJSON    `json:"stats"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipebatch", flag.ContinueOnError)
	in := fs.String("in", "", "job file JSON (default: stdin)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	noDedup := fs.Bool("no-dedup", false, "disable duplicate-job memoization")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var doc jobFileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("decoding job file: %w", err)
	}
	if len(doc.Jobs) == 0 {
		return fmt.Errorf("job file has no jobs")
	}

	var defaultInst *pipeline.Instance
	if doc.Instance != nil {
		inst, err := pipeline.DecodeJSON(bytes.NewReader(doc.Instance))
		if err != nil {
			return fmt.Errorf("default instance: %w", err)
		}
		defaultInst = &inst
	}
	jobs := make([]batch.Job, len(doc.Jobs))
	for i, jj := range doc.Jobs {
		inst := defaultInst
		if jj.Instance != nil {
			dec, err := pipeline.DecodeJSON(bytes.NewReader(jj.Instance))
			if err != nil {
				return fmt.Errorf("job %d instance: %w", i, err)
			}
			inst = &dec
		}
		if inst == nil {
			return fmt.Errorf("job %d has no instance and no default is set", i)
		}
		req, err := buildRequest(inst, jj.Request)
		if err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
		jobs[i] = batch.Job{Inst: inst, Req: req}
	}

	results, stats := batch.Solve(jobs, batch.Options{Workers: *workers, NoDedup: *noDedup})

	out := outputJSON{Stats: statsJSON{
		Jobs:      stats.Jobs,
		CacheHits: stats.CacheHits,
		Errors:    stats.Errors,
		WallMs:    float64(stats.Wall.Microseconds()) / 1000,
		Methods:   make(map[string]int, len(stats.Methods)),
	}}
	for m, n := range stats.Methods {
		out.Stats.Methods[string(m)] = n
	}
	for i := range results {
		if err := results[i].Err; err != nil {
			out.Results = append(out.Results, resultJSON{Error: err.Error()})
			continue
		}
		res := &results[i].Result
		var buf bytes.Buffer
		if err := mapping.EncodeJSON(&buf, &res.Mapping); err != nil {
			return err
		}
		raw := json.RawMessage(buf.Bytes())
		out.Results = append(out.Results, resultJSON{
			Value:   res.Value,
			Method:  string(res.Method),
			Optimal: res.Optimal,
			Period:  res.Metrics.Period,
			Latency: res.Metrics.Latency,
			Energy:  res.Metrics.Energy,
			Mapping: &raw,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// buildRequest translates the JSON request into a core.Request, expanding
// the global weighted thresholds into per-application bounds.
func buildRequest(inst *pipeline.Instance, rj requestJSON) (core.Request, error) {
	req := core.Request{
		EnergyBudget: rj.EnergyBudget,
		Seed:         rj.Seed,
		ExactLimit:   rj.ExactLimit,
		HeurIters:    rj.HeurIters,
		HeurRestarts: rj.HeurRestarts,
	}
	var err error
	if req.Rule, err = mapping.ParseRule(orDefault(rj.Rule, "interval")); err != nil {
		return core.Request{}, err
	}
	if req.Model, err = pipeline.ParseCommModel(orDefault(rj.Model, "overlap")); err != nil {
		return core.Request{}, err
	}
	if req.Objective, err = core.ParseCriterion(orDefault(rj.Objective, "period")); err != nil {
		return core.Request{}, err
	}
	req.PeriodBounds = rj.PeriodBounds
	if req.PeriodBounds == nil && rj.PeriodBound > 0 {
		req.PeriodBounds = core.UniformBounds(inst, rj.PeriodBound)
	}
	req.LatencyBounds = rj.LatencyBounds
	if req.LatencyBounds == nil && rj.LatencyBound > 0 {
		req.LatencyBounds = core.UniformBounds(inst, rj.LatencyBound)
	}
	return req, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
