package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fmath"
	"repro/internal/pipeline"
	"repro/internal/server"
)

// writeJobFile encodes the motivating example as the default instance with
// the given jobs array appended.
func writeJobFile(t *testing.T, jobsJSON string) string {
	t.Helper()
	inst := pipeline.MotivatingExample()
	var instBuf bytes.Buffer
	if err := pipeline.EncodeJSON(&instBuf, &inst); err != nil {
		t.Fatal(err)
	}
	doc := `{"instance": ` + instBuf.String() + `, "jobs": ` + jobsJSON + `}`
	path := filepath.Join(t.TempDir(), "jobs.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func decodeOutput(t *testing.T, out *bytes.Buffer) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	return doc
}

// TestPipebatchFig1 runs the Section 2 headline requests as one batch,
// including a duplicate that must be answered from the cache.
func TestPipebatchFig1(t *testing.T) {
	path := writeJobFile(t, `[
		{"request": {"rule": "interval", "objective": "period"}},
		{"request": {"rule": "interval", "objective": "energy", "periodBound": 2}},
		{"request": {"rule": "interval", "objective": "period"}},
		{"request": {"rule": "interval", "objective": "latency"}}
	]`)
	var out bytes.Buffer
	if err := run([]string{"-in", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	doc := decodeOutput(t, &out)
	results := doc["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}
	wantValues := []float64{1, 46, 1, 2.75}
	for i, want := range wantValues {
		r := results[i].(map[string]any)
		if errMsg, ok := r["error"]; ok {
			t.Fatalf("job %d failed: %v", i, errMsg)
		}
		if got := r["value"].(float64); !fmath.EQ(got, want) {
			t.Errorf("job %d value = %g, want %g", i, got, want)
		}
		if _, ok := r["mapping"]; !ok {
			t.Errorf("job %d has no mapping", i)
		}
	}
	stats := doc["stats"].(map[string]any)
	if hits := stats["cacheHits"].(float64); hits < 1 {
		t.Errorf("cacheHits = %g, want >= 1 (job 2 duplicates job 0)", hits)
	}
	if errs := stats["errors"].(float64); errs != 0 {
		t.Errorf("errors = %g, want 0", errs)
	}
}

// TestPipebatchPerJobErrors checks a failing job reports in place without
// aborting the others.
func TestPipebatchPerJobErrors(t *testing.T) {
	path := writeJobFile(t, `[
		{"request": {"objective": "energy"}},
		{"request": {"objective": "period"}}
	]`)
	var out bytes.Buffer
	if err := run([]string{"-in", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	doc := decodeOutput(t, &out)
	results := doc["results"].([]any)
	first := results[0].(map[string]any)
	if _, ok := first["error"]; !ok {
		t.Error("energy without period bound did not report an error")
	}
	second := results[1].(map[string]any)
	if v := second["value"].(float64); !fmath.EQ(v, 1) {
		t.Errorf("period job value = %g, want 1", v)
	}
	if errs := doc["stats"].(map[string]any)["errors"].(float64); errs != 1 {
		t.Errorf("stats.errors = %g, want 1", errs)
	}
}

// TestPipebatchStdinAndFlags exercises stdin input, -workers and -no-dedup.
func TestPipebatchStdinAndFlags(t *testing.T) {
	path := writeJobFile(t, `[
		{"request": {"objective": "period"}},
		{"request": {"objective": "period"}}
	]`)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-workers", "2", "-no-dedup"}, bytes.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
	doc := decodeOutput(t, &out)
	if hits := doc["stats"].(map[string]any)["cacheHits"].(float64); hits != 0 {
		t.Errorf("cacheHits = %g with -no-dedup", hits)
	}
}

// TestPipebatchPerJobInstance gives one job its own instance overriding
// the default.
func TestPipebatchPerJobInstance(t *testing.T) {
	small := `{"apps": [{"weight": 1, "in": 0, "stages": [{"work": 4, "out": 0}]}],
		"platform": {"processors": [{"speeds": [2]}], "uniformBandwidth": 1}}`
	path := writeJobFile(t, `[
		{"request": {"objective": "period"}},
		{"instance": `+small+`, "request": {"objective": "period"}}
	]`)
	var out bytes.Buffer
	if err := run([]string{"-in", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	doc := decodeOutput(t, &out)
	results := doc["results"].([]any)
	if v := results[1].(map[string]any)["value"].(float64); !fmath.EQ(v, 2) {
		t.Errorf("per-job instance value = %g, want 2 (work 4 / speed 2)", v)
	}
}

// TestPipebatchBadInput rejects malformed documents.
func TestPipebatchBadInput(t *testing.T) {
	cases := []string{
		`not json`,
		`{"jobs": []}`,
		`{"jobs": [{"request": {"rule": "bogus"}}]}`,
		`{"jobs": [{"request": {"objective": "period"}}]}`, // no instance anywhere
	}
	for _, doc := range cases {
		if err := run(nil, strings.NewReader(doc), new(bytes.Buffer)); err == nil {
			t.Errorf("input %q accepted", doc)
		}
	}
	if err := run([]string{"-in", "/nope.json"}, nil, new(bytes.Buffer)); err == nil {
		t.Error("missing file accepted")
	}
}

// TestPipebatchServerRetry points -server at a flaky front end that sheds
// the first two attempts (a 429 with Retry-After, then a bare 503) before
// proxying to a real pipeserved handler: pipebatch must back off, retry,
// and come home with the same results a local run produces.
func TestPipebatchServerRetry(t *testing.T) {
	real := server.New(server.Config{})
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error": "server saturated", "code": "shed"}`)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error": "circuit open", "code": "shed"}`)
		default:
			real.ServeHTTP(w, r)
		}
	}))
	defer flaky.Close()

	path := writeJobFile(t, `[
		{"request": {"rule": "interval", "objective": "period"}},
		{"request": {"rule": "interval", "objective": "latency"}}
	]`)
	var remote bytes.Buffer
	start := time.Now()
	if err := run([]string{"-in", path, "-server", flaky.URL, "-retries", "4", "-retry-base", "10ms"}, nil, &remote); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two sheds + one success)", got)
	}
	// The first shed carried Retry-After: 1, which must stretch the wait
	// beyond the 10ms backoff base.
	if waited := time.Since(start); waited < time.Second {
		t.Fatalf("retries took %v; Retry-After: 1 was not honored", waited)
	}

	var local bytes.Buffer
	if err := run([]string{"-in", path}, nil, &local); err != nil {
		t.Fatal(err)
	}
	want := decodeOutput(t, &local)["results"].([]any)
	got := decodeOutput(t, &remote)["results"].([]any)
	if len(got) != len(want) {
		t.Fatalf("%d remote results, want %d", len(got), len(want))
	}
	for i := range want {
		wv := want[i].(map[string]any)["value"].(float64)
		gv := got[i].(map[string]any)["value"].(float64)
		if !fmath.EQ(wv, gv) {
			t.Errorf("result %d: remote value %g != local %g", i, gv, wv)
		}
	}
}

// TestPipebatchServerTimeoutRetries is the untimed-client satellite
// regression: a server that hangs used to stall the retry loop forever
// (http.Post has no deadline). With -http-timeout the hung attempt is cut
// off, classified retryable, and the next attempt succeeds.
func TestPipebatchServerTimeoutRetries(t *testing.T) {
	real := server.New(server.Config{})
	var calls atomic.Int32
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // hang until the test ends; the client must not wait for us
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer func() { close(release); hung.Close() }()

	path := writeJobFile(t, `[{"request": {"objective": "period"}}]`)
	var out bytes.Buffer
	start := time.Now()
	err := run([]string{"-in", path, "-server", hung.URL,
		"-http-timeout", "150ms", "-retries", "3", "-retry-base", "1ms"}, nil, &out)
	if err != nil {
		t.Fatalf("hung first attempt was not retried: %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("run took %v; the per-attempt timeout did not bound the hung attempt", waited)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (one hung + one success)", got)
	}
	results := decodeOutput(t, &out)["results"].([]any)
	if v := results[0].(map[string]any)["value"].(float64); !fmath.EQ(v, 1) {
		t.Errorf("value = %g, want 1", v)
	}
}

// TestPipebatchServerHTTPDateRetryAfter is the Retry-After satellite
// regression: the RFC 7231 HTTP-date form must stretch the wait exactly
// like delta-seconds (the old parser silently ignored it).
func TestPipebatchServerHTTPDateRetryAfter(t *testing.T) {
	real := server.New(server.Config{})
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error": "circuit open", "code": "shed"}`)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	path := writeJobFile(t, `[{"request": {"objective": "period"}}]`)
	start := time.Now()
	if err := run([]string{"-in", path, "-server", flaky.URL, "-retries", "2", "-retry-base", "1ms"},
		nil, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	// HTTP-date resolution is whole seconds, so formatting truncates the
	// 2s target to somewhere in (1s, 2s] remaining; a wait past 500ms
	// proves the date was parsed (the backoff alone would wait ~1ms).
	if waited := time.Since(start); waited < 500*time.Millisecond {
		t.Fatalf("retry waited only %v; the HTTP-date Retry-After was ignored", waited)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestPipebatchServerGivesUp bounds the retry loop: a server that sheds
// forever exhausts -retries and surfaces the shed as the final error.
func TestPipebatchServerGivesUp(t *testing.T) {
	var calls atomic.Int32
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error": "server saturated", "code": "shed"}`)
	}))
	defer always.Close()

	path := writeJobFile(t, `[{"request": {"objective": "period"}}]`)
	err := run([]string{"-in", path, "-server", always.URL, "-retries", "2", "-retry-base", "1ms"}, nil, new(bytes.Buffer))
	if err == nil || !strings.Contains(err.Error(), "shed") {
		t.Fatalf("got %v, want a shed error after exhausted retries", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestPipebatchServerHardError pins that a non-shed failure (a 400 from
// a malformed document) is not retried.
func TestPipebatchServerHardError(t *testing.T) {
	var calls atomic.Int32
	real := server.New(server.Config{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		real.ServeHTTP(w, r)
	}))
	defer ts.Close()

	err := run([]string{"-server", ts.URL, "-retries", "5", "-retry-base", "1ms"},
		strings.NewReader(`{"jobs": "not an array"}`), new(bytes.Buffer))
	if err == nil {
		t.Fatal("malformed remote batch accepted")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 400)", got)
	}
}
