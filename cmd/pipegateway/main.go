// Command pipegateway fronts a cluster of pipeserved replicas (see
// internal/gateway): it computes each job's canonical key, routes keys
// over a consistent-hash ring so every replica's memo and plan caches
// stay hot for a stable slice of the key space, fans /v1/batch
// sub-batches out concurrently, and reassembles the results in input
// order — bit-identical to a single replica answering the whole batch.
//
//	pipegateway -replicas http://10.0.0.1:8080,http://10.0.0.2:8080
//
//	POST /v1/batch     fan out sub-batches, reassemble in input order
//	POST /v1/solve     route by the job's canonical key
//	POST /v1/pareto    route by document hash (plans stay warm per replica)
//	POST /v1/simulate  route by document hash
//	POST /v1/resolve   route by document hash
//	GET  /healthz      gateway liveness
//	GET  /readyz       200 while >= 1 replica is healthy
//	GET  /stats        gateway counters + per-replica and merged stats
//
// Flags:
//
//	-addr            listen address (default :8081)
//	-replicas        comma-separated replica base URLs (required)
//	-vnodes          virtual points per replica on the hash ring
//	-retries         retry attempts per upstream request beyond the first
//	-retry-base      base of the jittered exponential retry backoff
//	-http-timeout    per-attempt upstream HTTP timeout; the default (60s)
//	                 is twice pipeserved's default request deadline, so a
//	                 slow-but-alive reply gets through while a hung
//	                 connection cannot stall the gateway forever
//	-probe-interval  period of the /readyz health sweep over the replicas
//	-max-body        request body cap in bytes (default 8 MiB)
//
// Replicas that fail probes or requests are taken out of the ring and
// their keys served by the ring successors; probes bring a recovered
// replica back automatically. pipegateway drains on SIGINT/SIGTERM the
// same way pipeserved does.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pipegateway:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pipegateway", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	replicas := fs.String("replicas", "", "comma-separated pipeserved base URLs (required)")
	vnodes := fs.Int("vnodes", gateway.DefaultVirtualNodes, "virtual points per replica on the hash ring")
	retries := fs.Int("retries", gateway.DefaultRetries, "upstream retry attempts beyond the first (negative = none)")
	retryBase := fs.Duration("retry-base", gateway.DefaultRetryBase, "base of the jittered retry backoff")
	httpTimeout := fs.Duration("http-timeout", gateway.DefaultClientTimeout, "per-attempt upstream HTTP timeout")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "period of the replica /readyz health sweep")
	maxBody := fs.Int64("max-body", 0, "request body cap in bytes (0 = 8 MiB default)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain budget for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return errors.New("no replicas: pass -replicas http://host:port[,http://host:port...]")
	}

	logger := log.New(os.Stderr, "pipegateway: ", log.LstdFlags)
	gw, err := gateway.New(gateway.Config{
		Replicas:  urls,
		Client:    gateway.NewClient(*httpTimeout),
		Router:    gateway.NewRing(len(urls), *vnodes),
		Retries:   *retries,
		RetryBase: *retryBase,
		MaxBody:   *maxBody,
		Logger:    logger,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	gw.StartProbes(ctx, *probeInterval)

	httpSrv := &http.Server{Addr: *addr, Handler: gw}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s, routing %d replicas (vnodes=%d retries=%d http-timeout=%v)",
			*addr, len(urls), *vnodes, *retries, *httpTimeout)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	logger.Printf("shutting down, draining in-flight requests (budget %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("bye")
	return nil
}
