// Command pipemap solves a multi-criteria mapping problem described by a
// JSON instance file and prints the resulting mapping, its metrics and the
// algorithm used.
//
// Usage:
//
//	pipemap -in problem.json -objective period [flags]
//
// Flags:
//
//	-in path          instance JSON (default: stdin)
//	-rule             one-to-one | interval (default interval)
//	-model            overlap | no-overlap (default overlap)
//	-objective        period | latency | energy
//	-period-bound x   global weighted period threshold (per-app bound x/W_a)
//	-latency-bound x  global weighted latency threshold
//	-energy-budget x  global energy budget
//	-seed n           heuristic seed
//	-json             emit the mapping as JSON instead of text
//
// Example (the paper's Section 2 trade-off):
//
//	pipemap -in fig1.json -objective energy -period-bound 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pipemap:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipemap", flag.ContinueOnError)
	in := fs.String("in", "", "instance JSON file (default: stdin)")
	ruleFlag := fs.String("rule", "interval", "mapping rule: one-to-one | interval")
	modelFlag := fs.String("model", "overlap", "communication model: overlap | no-overlap")
	objFlag := fs.String("objective", "period", "objective: period | latency | energy")
	periodBound := fs.Float64("period-bound", 0, "global weighted period threshold (0 = none)")
	latencyBound := fs.Float64("latency-bound", 0, "global weighted latency threshold (0 = none)")
	energyBudget := fs.Float64("energy-budget", 0, "global energy budget (0 = none)")
	seed := fs.Int64("seed", 1, "heuristic seed")
	asJSON := fs.Bool("json", false, "emit the mapping as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	inst, err := pipeline.DecodeJSON(r)
	if err != nil {
		return err
	}

	req := core.Request{Seed: *seed}
	if req.Rule, err = mapping.ParseRule(*ruleFlag); err != nil {
		return err
	}
	if req.Model, err = pipeline.ParseCommModel(*modelFlag); err != nil {
		return err
	}
	if req.Objective, err = core.ParseCriterion(*objFlag); err != nil {
		return err
	}
	if *periodBound > 0 {
		req.PeriodBounds = core.UniformBounds(&inst, *periodBound)
	}
	if *latencyBound > 0 {
		req.LatencyBounds = core.UniformBounds(&inst, *latencyBound)
	}
	req.EnergyBudget = *energyBudget

	res, err := core.Solve(&inst, req)
	if err != nil {
		return err
	}
	if *asJSON {
		return mapping.EncodeJSON(stdout, &res.Mapping)
	}

	fmt.Fprintf(stdout, "objective  : %v\n", req.Objective)
	fmt.Fprintf(stdout, "method     : %s\n", res.Method)
	fmt.Fprintf(stdout, "optimal    : %v\n", res.Optimal)
	fmt.Fprintf(stdout, "value      : %s\n", report.Fmt(res.Value))
	fmt.Fprintf(stdout, "period     : %s\n", report.Fmt(res.Metrics.Period))
	fmt.Fprintf(stdout, "latency    : %s\n", report.Fmt(res.Metrics.Latency))
	fmt.Fprintf(stdout, "energy     : %s\n", report.Fmt(res.Metrics.Energy))
	tb := report.New("mapping", "app", "stages", "processor", "speed")
	for a := range res.Mapping.Apps {
		name := inst.Apps[a].Name
		if name == "" {
			name = fmt.Sprintf("app%d", a+1)
		}
		for _, iv := range res.Mapping.Apps[a].Intervals {
			proc := inst.Platform.Processors[iv.Proc]
			pname := proc.Name
			if pname == "" {
				pname = fmt.Sprintf("P%d", iv.Proc+1)
			}
			tb.Addf(name, fmt.Sprintf("%d-%d", iv.From+1, iv.To+1), pname, proc.Speeds[iv.Mode])
		}
	}
	tb.Render(stdout)
	return nil
}
