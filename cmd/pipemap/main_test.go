package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pipeline"
)

func writeFig1(t *testing.T) string {
	t.Helper()
	inst := pipeline.MotivatingExample()
	path := filepath.Join(t.TempDir(), "fig1.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pipeline.EncodeJSON(f, &inst); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPipemapTradeOff(t *testing.T) {
	path := writeFig1(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-objective", "energy", "-period-bound", "2"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "value      : 46") {
		t.Errorf("expected energy 46 in output:\n%s", s)
	}
	if !strings.Contains(s, "period     : 2") {
		t.Errorf("expected period 2 in output:\n%s", s)
	}
}

func TestPipemapPeriodFromStdin(t *testing.T) {
	inst := pipeline.MotivatingExample()
	var in bytes.Buffer
	if err := pipeline.EncodeJSON(&in, &inst); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-objective", "period"}, &in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "value      : 1") {
		t.Errorf("expected period 1:\n%s", out.String())
	}
}

func TestPipemapJSONOutput(t *testing.T) {
	path := writeFig1(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-objective", "latency", "-json"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"intervals"`) {
		t.Errorf("expected JSON mapping:\n%s", out.String())
	}
}

func TestPipemapBadFlags(t *testing.T) {
	path := writeFig1(t)
	for _, args := range [][]string{
		{"-in", path, "-rule", "bogus"},
		{"-in", path, "-model", "bogus"},
		{"-in", path, "-objective", "bogus"},
		{"-in", "/does/not/exist.json"},
		{"-in", path, "-objective", "energy"}, // energy without period bound
	} {
		if err := run(args, nil, new(bytes.Buffer)); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
