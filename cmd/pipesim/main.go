// Command pipesim executes a mapping through the discrete-event simulator
// and reports measured versus analytic period and latency for every
// application, under both communication models.
//
// Usage:
//
//	pipesim -in problem.json -mapping mapping.json [-datasets 200]
//
// The mapping file uses the schema emitted by `pipemap -json`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pipesim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipesim", flag.ContinueOnError)
	in := fs.String("in", "", "instance JSON file")
	mapFile := fs.String("mapping", "", "mapping JSON file (from pipemap -json)")
	datasets := fs.Int("datasets", 0, "number of data sets to push through (0 = auto)")
	trace := fs.Int("trace", 0, "print the explicit schedule of the first N data sets (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *mapFile == "" {
		return fmt.Errorf("both -in and -mapping are required")
	}
	instF, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer instF.Close()
	inst, err := pipeline.DecodeJSON(instF)
	if err != nil {
		return err
	}
	mapF, err := os.Open(*mapFile)
	if err != nil {
		return err
	}
	defer mapF.Close()
	m, err := mapping.DecodeJSON(mapF)
	if err != nil {
		return err
	}
	if err := m.Validate(&inst, mapping.Interval); err != nil {
		return err
	}

	for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
		results, err := sim.Simulate(&inst, &m, model, sim.Options{Datasets: *datasets})
		if err != nil {
			return err
		}
		tb := report.New(fmt.Sprintf("simulation (%v model)", model),
			"app", "analytic period", "measured period", "analytic latency", "measured latency")
		for a, r := range results {
			name := inst.Apps[a].Name
			if name == "" {
				name = fmt.Sprintf("app%d", a+1)
			}
			tb.Addf(name,
				mapping.AppPeriod(&inst, &m, a, model), r.SteadyPeriod,
				mapping.AppLatency(&inst, &m, a), r.FirstLatency)
		}
		tb.Render(stdout)
		fmt.Fprintln(stdout)

		if *trace > 0 {
			for a := range inst.Apps {
				tr, err := sim.TraceRun(&inst, &m, a, model, *trace)
				if err != nil {
					return err
				}
				if err := tr.CheckConsistency(); err != nil {
					return fmt.Errorf("schedule audit failed: %w", err)
				}
				name := inst.Apps[a].Name
				if name == "" {
					name = fmt.Sprintf("app%d", a+1)
				}
				gt := report.New(fmt.Sprintf("schedule of %s (%v model, audited)", name, model),
					"data set", "op", "node", "resources", "start", "end")
				for _, op := range tr.Ops {
					gt.Addf(op.Dataset, op.Kind.String(), op.Node, strings.Join(op.Resources, "+"), op.Start, op.End)
				}
				gt.Render(stdout)
				fmt.Fprintln(stdout)
			}
		}
	}
	return nil
}
