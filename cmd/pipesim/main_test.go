package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pipeline"
)

func writeFixtures(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	inst := pipeline.MotivatingExample()
	instPath := filepath.Join(dir, "fig1.json")
	f, err := os.Create(instPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.EncodeJSON(f, &inst); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The Section 2 period-optimal mapping.
	m := mapping.Mapping{Apps: []mapping.AppMapping{
		{Intervals: []mapping.PlacedInterval{{From: 0, To: 2, Proc: 2, Mode: 1}}},
		{Intervals: []mapping.PlacedInterval{{From: 0, To: 1, Proc: 1, Mode: 1}, {From: 2, To: 3, Proc: 0, Mode: 1}}},
	}}
	mapPath := filepath.Join(dir, "map.json")
	g, err := os.Create(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapping.EncodeJSON(g, &m); err != nil {
		t.Fatal(err)
	}
	g.Close()
	return instPath, mapPath
}

func TestPipesimMeasuresPeriodOne(t *testing.T) {
	instPath, mapPath := writeFixtures(t)
	var out bytes.Buffer
	if err := run([]string{"-in", instPath, "-mapping", mapPath}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "overlap") || !strings.Contains(s, "no-overlap") {
		t.Errorf("expected both models in output:\n%s", s)
	}
	// Both applications reach steady period 1 under overlap.
	if !strings.Contains(s, "App1  1") && !strings.Contains(s, "App1") {
		t.Errorf("missing application rows:\n%s", s)
	}
}

func TestPipesimMappingRoundTrip(t *testing.T) {
	_, mapPath := writeFixtures(t)
	f, err := os.Open(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := mapping.DecodeJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Apps) != 2 || len(m.Apps[1].Intervals) != 2 {
		t.Errorf("round trip lost intervals: %+v", m)
	}
}

func TestPipesimErrors(t *testing.T) {
	instPath, mapPath := writeFixtures(t)
	cases := [][]string{
		{},
		{"-in", instPath},
		{"-mapping", mapPath},
		{"-in", "/nope.json", "-mapping", mapPath},
		{"-in", instPath, "-mapping", "/nope.json"},
	}
	for _, args := range cases {
		if err := run(args, new(bytes.Buffer)); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestPipesimTrace(t *testing.T) {
	instPath, mapPath := writeFixtures(t)
	var out bytes.Buffer
	if err := run([]string{"-in", instPath, "-mapping", mapPath, "-trace", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "schedule of App1") || !strings.Contains(s, "compute") {
		t.Errorf("trace output missing:\n%s", s)
	}
	if !strings.Contains(s, "audited") {
		t.Errorf("schedule not audited:\n%s", s)
	}
}
