package repro

// Smoke tests for the examples/ programs: every example must build and run
// to completion with a zero exit status and produce output. The examples
// are documentation that executes — this keeps them from rotting as the
// API evolves (they are main packages, so nothing else compiles them
// against their actual behaviour).

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildExamples compiles every example binary once into a temp dir and
// returns their paths keyed by example name.
func buildExamples(t *testing.T) map[string]string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bins := make(map[string]string)
	args := []string{"build", "-o", dir + string(os.PathSeparator)}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		args = append(args, "./examples/"+e.Name())
		bins[e.Name()] = filepath.Join(dir, e.Name())
	}
	if len(bins) == 0 {
		t.Fatal("no example programs found under examples/")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building examples: %v\n%s", err, out)
	}
	return bins
}

// TestExamplesSmoke builds and runs all examples/ programs, asserting exit
// status zero and non-empty output for each.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example binaries skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	for name, bin := range buildExamples(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, bin).CombinedOutput()
			if err != nil {
				t.Fatalf("example exited non-zero: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
