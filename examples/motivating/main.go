// Motivating: reproduces every number of the paper's Section 2 example
// (Figure 1) — the period-optimal, latency-optimal and energy-minimal
// mappings, and the period/energy trade-off — then prints the full Pareto
// frontier the example hints at.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	inst := repro.MotivatingExample()

	solve := func(req repro.Request) repro.Result {
		res, err := repro.Solve(&inst, req)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Equation (1): the optimal period is 1.
	period := solve(repro.Request{Rule: repro.Interval, Model: repro.Overlap, Objective: repro.Period})
	fmt.Printf("optimal period          : %g   (paper: 1)\n", period.Value)
	fmt.Printf("  its energy            : %g   (paper: 136 = 6^2+8^2+6^2)\n", period.Metrics.Energy)

	// Equation (2): the optimal latency is 2.75.
	latency := solve(repro.Request{Rule: repro.Interval, Model: repro.Overlap, Objective: repro.Latency})
	fmt.Printf("optimal latency         : %g  (paper: 2.75)\n", latency.Value)

	// Minimum energy to run both applications at all: 10.
	energy := solve(repro.Request{Rule: repro.Interval, Model: repro.Overlap, Objective: repro.Energy,
		PeriodBounds: repro.UniformBounds(&inst, math.Inf(1))})
	fmt.Printf("minimum energy          : %g    (paper: 10 = 3^2+1^2)\n", energy.Value)

	// The Section 2 compromise: energy 46 under period <= 2.
	tradeoff := solve(repro.Request{Rule: repro.Interval, Model: repro.Overlap, Objective: repro.Energy,
		PeriodBounds: repro.UniformBounds(&inst, 2)})
	fmt.Printf("energy with period <= 2 : %g   (paper: 46 = 3^2+6^2+1^2)\n", tradeoff.Value)
	fmt.Println()

	fmt.Println("the mapping behind the trade-off:")
	for a := range tradeoff.Mapping.Apps {
		for _, iv := range tradeoff.Mapping.Apps[a].Intervals {
			proc := inst.Platform.Processors[iv.Proc]
			fmt.Printf("  %s stages %d-%d -> %s at speed %g\n",
				inst.Apps[a].Name, iv.From+1, iv.To+1, proc.Name, proc.Speeds[iv.Mode])
		}
	}
	fmt.Println()

	// The whole period/energy frontier of the example.
	front, err := repro.ParetoPeriodEnergy(&inst, repro.Interval, repro.Overlap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("period/energy Pareto frontier:")
	for _, pt := range front {
		fmt.Printf("  period %6.3f  energy %7.3f\n", pt.Period, pt.Energy)
	}
}
