// Replication: the paper's Section 6 future-work extension — mapping a
// stage interval onto several processors that serve successive data sets
// round-robin. A motion-estimation-style bottleneck stage caps the plain
// interval mapping's throughput; replication breaks through that cap, at
// the price of energy (every replica is enrolled) while the latency is
// unchanged on identical replicas.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A recognizer chain whose middle stage dominates: preprocess (2),
	// detect (18!), postprocess (2).
	inst := repro.Instance{
		Apps: []repro.Application{{
			Name: "recognizer", In: 1, Weight: 1,
			Stages: []repro.Stage{
				{Work: 2, Out: 1},
				{Work: 18, Out: 1},
				{Work: 2, Out: 1},
			},
		}},
		Platform: repro.NewHomogeneousPlatform(6, []float64{2}, 4, 1),
		Energy:   repro.DefaultEnergy,
	}

	// Plain interval mappings cannot beat the bottleneck stage: even
	// alone on a processor, stage 2 costs 18/2 = 9 per data set.
	plain, err := repro.Solve(&inst, repro.Request{
		Rule: repro.Interval, Model: repro.Overlap, Objective: repro.Period,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain interval mapping:  period %5.2f  latency %5.2f  energy %5.1f (%s)\n",
		plain.Metrics.Period, plain.Metrics.Latency, plain.Metrics.Energy, plain.Method)

	// Replication divides the bottleneck among round-robin replicas.
	rm, period, err := repro.ReplicatedMinPeriod(&inst, repro.Overlap)
	if err != nil {
		log.Fatal(err)
	}
	mt := repro.EvaluateReplicated(&inst, &rm, repro.Overlap)
	fmt.Printf("replicated mapping:      period %5.2f  latency %5.2f  energy %5.1f\n",
		period, mt.Latency, mt.Energy)
	for _, iv := range rm.Apps[0].Intervals {
		fmt.Printf("  stages %d-%d on %d replica(s)\n", iv.From+1, iv.To+1, len(iv.Replicas))
	}

	// The round-robin executor must reproduce the analytic numbers.
	if err := repro.VerifyReplicatedMapping(&inst, &rm, repro.Overlap, 1e-9); err != nil {
		log.Fatal(err)
	}
	sims, err := repro.SimulateReplicated(&inst, &rm, repro.Overlap, repro.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated steady period: %5.2f (in-order delivery, round-robin dispatch)\n",
		sims[0].SteadyPeriod)
	fmt.Printf("speedup over plain:      %.2fx at %.1fx the energy\n",
		plain.Metrics.Period/period, mt.Energy/plain.Metrics.Energy)

	// Replication can also SAVE energy: with a cubic power model, a
	// single stage of work 8 that must finish every 2 time units needs
	// one speed-4 processor (energy 64) without replication, but only
	// four speed-1 replicas (energy 4) with it.
	cubic := repro.Instance{
		Apps: []repro.Application{{
			Stages: []repro.Stage{{Work: 8}},
			Weight: 1,
		}},
		Platform: repro.NewHomogeneousPlatform(4, []float64{1, 2, 4}, 1, 1),
		Energy:   repro.EnergyModel{Alpha: 3},
	}
	_, eco, err := repro.ReplicatedMinEnergy(&cubic, repro.Overlap, []float64{2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncubic-power single stage, period <= 2: replicated energy %.0f (vs 64 unreplicated)\n", eco)
}
