// Paretofront: the laptop problem — "what is the best schedule achievable
// using a particular energy budget?" (Section 1). Builds the full
// period/energy frontier of a fully homogeneous multi-modal platform with
// the polynomial dynamic programs, prints it as an ASCII curve, and answers
// budget queries.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro"
)

func main() {
	// Two concurrent DSP chains on a battery-powered 6-core device with
	// four DVFS modes per core.
	apps := []repro.Application{
		{
			Name: "radar-fft", In: 2, Weight: 1,
			Stages: []repro.Stage{
				{Work: 3, Out: 2}, {Work: 9, Out: 2}, {Work: 5, Out: 2}, {Work: 9, Out: 1}, {Work: 2, Out: 1},
			},
		},
		{
			Name: "beamform", In: 1, Weight: 1,
			Stages: []repro.Stage{
				{Work: 4, Out: 2}, {Work: 7, Out: 1}, {Work: 4, Out: 1},
			},
		},
	}
	inst := repro.Instance{
		Apps:     apps,
		Platform: repro.NewHomogeneousPlatform(6, []float64{1, 2, 3, 4}, 2, len(apps)),
		Energy:   repro.EnergyModel{Static: 1, Alpha: 3}, // cubic dynamic power
	}

	front, err := repro.ParetoPeriodEnergy(&inst, repro.Interval, repro.Overlap)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("period/energy frontier (computed by the Thm 18+21 dynamic programs):")
	maxE := front[0].Energy
	for _, pt := range front {
		bar := strings.Repeat("#", int(40*pt.Energy/maxE))
		fmt.Printf("  T=%7.3f  E=%8.2f %s\n", pt.Period, pt.Energy, bar)
	}

	for _, budget := range []float64{maxE, maxE / 2, maxE / 4, front[len(front)-1].Energy} {
		best := repro.MinPeriodUnderEnergy(front, budget)
		if math.IsInf(best, 1) {
			fmt.Printf("battery budget %7.2f: infeasible\n", budget)
			continue
		}
		fmt.Printf("battery budget %7.2f -> best period %.3f\n", budget, best)
	}

	// Cross-check one frontier point end to end: its witness mapping must
	// simulate to exactly its period.
	pt := front[len(front)/2]
	if err := repro.VerifyMapping(&inst, &pt.Mapping, repro.Overlap, 1e-9); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmid-frontier witness mapping verified by simulation")
}
